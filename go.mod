module pjoin

go 1.22
