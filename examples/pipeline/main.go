// Pipeline: the declarative plan API. The same Fig. 1 query as
// examples/auction, but described as a named dataflow graph — including
// a KeyPunctuate node that DERIVES the Open stream's punctuations from
// its key constraint (paper §1.1: the query system itself can insert a
// punctuation after each tuple of a keyed stream), a filter, and a
// projection.
//
// Run with: go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/plan"
	"pjoin/internal/stream"
)

func main() {
	// Auction workload WITHOUT source-side Open punctuations: the plan
	// derives them instead.
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed:            42,
		Items:           60,
		OpenMean:        2 * stream.Millisecond,
		AuctionLength:   50 * stream.Millisecond,
		BidMean:         3 * stream.Millisecond,
		UniqueOpenPunct: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	var open, bids []stream.Item
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bids = append(bids, a.Item)
		}
	}

	p := plan.New()
	p.Source("open-raw", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bids, false)
	p.KeyPunctuate("open", "open-raw", "item_id") // derive <item_id, *, *> after each Open tuple
	p.PJoin("joined", "open", "bid", plan.JoinOptions{Verify: true})
	p.Select("big-bids", "joined", func(t *stream.Tuple) bool {
		return t.Values[5].FloatVal() >= 5 // bid_increase >= 5
	})
	p.Project("slim", "big-bids", "item_id", "bidder", "bid_increase")
	p.GroupBy("per-bidder", "slim", "bidder", "bid_increase", op.AggSum)
	p.Sink("out", "per-bidder")

	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("total bid increase per bidder (bids >= 5):")
	for _, t := range res.Sinks["out"].Tuples() {
		fmt.Printf("  %-4s %7.1f\n", t.Values[0].StrVal(), t.Values[1].FloatVal())
	}

	kp := res.Operators["open"].(*op.KeyPunctuator)
	j := res.Operators["joined"].(*core.PJoin)
	fmt.Printf("\nderived punctuations: %d\n", kp.Derived())
	m := j.Metrics()
	fmt.Printf("join: results=%d purged=%d dropped-on-fly=%d state-at-end=%d\n",
		m.TuplesOut, m.Purged, m.DroppedOnFly, j.StateTuples())
}
