// Nary: the paper's §6 n-ary extension — a three-way punctuated join.
// An order-fulfilment scenario: Orders, Payments, and Shipments streams
// joined on order_id. An order appears in the output once all three
// events exist; punctuations (an order id will never appear again on a
// stream) purge state and let results be certified complete.
//
// Run with: go run ./examples/nary
package main

import (
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

func main() {
	orders := stream.MustSchema("Orders",
		stream.Field{Name: "order_id", Kind: value.KindInt},
		stream.Field{Name: "customer", Kind: value.KindString},
	)
	payments := stream.MustSchema("Payments",
		stream.Field{Name: "order_id", Kind: value.KindInt},
		stream.Field{Name: "amount", Kind: value.KindFloat},
	)
	shipments := stream.MustSchema("Shipments",
		stream.Field{Name: "order_id", Kind: value.KindInt},
		stream.Field{Name: "carrier", Kind: value.KindString},
	)

	sink := &op.Collector{}
	join, err := core.NewNary(
		[]*stream.Schema{orders, payments, shipments},
		[]int{0, 0, 0},
		sink,
	)
	if err != nil {
		log.Fatal(err)
	}

	rng := vtime.NewRNG(11)
	customers := []string{"ada", "bob", "cho"}
	carriers := []string{"ups", "dhl"}

	var ts stream.Time
	feed := func(port int, it stream.Item) {
		if err := join.Process(port, it, it.Ts); err != nil {
			log.Fatal(err)
		}
	}
	next := func() stream.Time { ts++; return ts }

	// Each order flows through the three stages; each stream punctuates
	// the order id once its stage is done (ids are keys per stream).
	const nOrders = 8
	maxState := 0
	for id := int64(0); id < nOrders; id++ {
		feed(0, stream.TupleItem(stream.MustTuple(orders, next(),
			value.Int(id), value.Str(customers[rng.Intn(len(customers))]))))
		feed(0, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(id))), next()))

		feed(1, stream.TupleItem(stream.MustTuple(payments, next(),
			value.Int(id), value.Float(float64(10+rng.Intn(90))))))
		feed(1, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(id))), next()))

		if s := join.StateTuples(); s > maxState {
			maxState = s
		}

		// Shipment arrives last and completes the result.
		feed(2, stream.TupleItem(stream.MustTuple(shipments, next(),
			value.Int(id), value.Str(carriers[rng.Intn(len(carriers))]))))
		feed(2, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(id))), next()))
	}

	for port := 0; port < 3; port++ {
		feed(port, stream.EOSItem(next()))
	}
	if err := join.Finish(next()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fulfilled orders (order x payment x shipment):")
	for _, t := range sink.Tuples() {
		fmt.Printf("  #%d %-3s paid %5.1f shipped via %s\n",
			t.Values[0].IntVal(), t.Values[1].StrVal(), t.Values[3].FloatVal(), t.Values[5].StrVal())
	}
	fmt.Printf("\nresults=%d purged=%d dropped-on-fly=%d state=%d (max during run %d)\n",
		join.ResultsOut(), join.Purged(), join.DroppedOnFly(), join.StateTuples(), maxState)
	fmt.Printf("punctuations propagated: %d\n", len(sink.Puncts()))
}
