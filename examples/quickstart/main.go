// Quickstart: build a PJoin, push a punctuated stream fragment through
// it by hand, and watch punctuations purge the join state and propagate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

func main() {
	// Two streams joined on their first attribute.
	open := stream.MustSchema("Open",
		stream.Field{Name: "item_id", Kind: value.KindInt},
		stream.Field{Name: "seller", Kind: value.KindString},
	)
	bid := stream.MustSchema("Bid",
		stream.Field{Name: "item_id", Kind: value.KindInt},
		stream.Field{Name: "amount", Kind: value.KindFloat},
	)

	// Collect everything the join emits.
	sink := &op.Collector{}

	cfg := core.Config{
		SchemaA: open, SchemaB: bid,
		AttrA: 0, AttrB: 0,
		VerifyPunctuations: true,
	}
	cfg.Thresholds.Purge = 1          // eager purge
	cfg.Thresholds.PropagateCount = 2 // push propagation every 2 punctuations
	join, err := core.New(cfg, sink)
	if err != nil {
		log.Fatal(err)
	}

	// Helpers to feed items; timestamps must strictly increase.
	var ts stream.Time
	feed := func(port int, it stream.Item) {
		if err := join.Process(port, it, it.Ts); err != nil {
			log.Fatal(err)
		}
	}
	tuple := func(port int, sc *stream.Schema, vals ...value.Value) {
		ts++
		feed(port, stream.TupleItem(stream.MustTuple(sc, ts, vals...)))
	}
	punctuate := func(port int, width int, itemID int64) {
		ts++
		p := punct.MustKeyOnly(width, 0, punct.Const(value.Int(itemID)))
		feed(port, stream.PunctItem(p, ts))
	}

	fmt.Println("== feeding tuples ==")
	tuple(0, open, value.Int(1), value.Str("ada"))
	tuple(1, bid, value.Int(1), value.Float(10)) // joins immediately
	tuple(1, bid, value.Int(1), value.Float(12)) // joins immediately
	tuple(0, open, value.Int(2), value.Str("bob"))
	fmt.Printf("state after 4 tuples: %d stored tuples\n", join.StateTuples())

	fmt.Println("\n== punctuating item 1 on both streams ==")
	punctuate(1, bid.Width(), 1)  // auction 1 closed: no more bids
	punctuate(0, open.Width(), 1) // Open's item_id is unique: no more item 1
	fmt.Printf("state after punctuations: %d stored tuples (item 1 purged)\n", join.StateTuples())

	// End both streams and flush.
	ts++
	feed(0, stream.EOSItem(ts))
	ts++
	feed(1, stream.EOSItem(ts))
	if err := join.Finish(ts + 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== join output ==")
	for _, it := range sink.Items {
		switch it.Kind {
		case stream.KindTuple:
			fmt.Printf("  result  %s\n", it.Tuple)
		case stream.KindPunct:
			fmt.Printf("  punct   %s\n", it.Punct)
		case stream.KindEOS:
			fmt.Println("  eos")
		}
	}

	m := join.Metrics()
	fmt.Printf("\nresults=%d purged=%d punctuations out=%d\n",
		m.TuplesOut, m.Purged, m.PunctsOut)
	fmt.Println("\nevent-listener registry (paper Table 1 style):")
	fmt.Print(join.Registry().String())
}
