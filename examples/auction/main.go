// Auction: the paper's running example (§1.1, Fig. 1) as a live
// pipeline. The sellers portal merges items for sale into the Open
// stream; the buyers portal merges bids into the Bid stream. PJoin joins
// them on item_id; a punctuation-aware group-by sums bid_increase per
// item — and thanks to the punctuations inserted when each auction
// expires, every item's total is emitted as soon as its auction closes,
// not at end-of-stream.
//
// Run with: go run ./examples/auction
package main

import (
	"context"
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/exec"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

func main() {
	// Generate a deterministic auction workload: 40 items, bids every
	// ~3ms while each auction runs, punctuations at auction close.
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed:            2026,
		Items:           40,
		OpenMean:        2 * stream.Millisecond,
		AuctionLength:   40 * stream.Millisecond,
		BidMean:         3 * stream.Millisecond,
		UniqueOpenPunct: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var open, bids []stream.Item
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bids = append(bids, a.Item)
		}
	}
	st := gen.Summarize(arrs)
	fmt.Printf("workload: %d Open tuples, %d bids, %d+%d punctuations\n",
		st.Tuples[gen.AuctionPortOpen], st.Tuples[gen.AuctionPortBid],
		st.Puncts[gen.AuctionPortOpen], st.Puncts[gen.AuctionPortBid])

	// Assemble the Fig. 1(c) plan: join -> group-by -> sink.
	p := exec.NewPipeline()
	srcOpen, srcBid, joined, grouped := p.Edge(), p.Edge(), p.Edge(), p.Edge()

	cfg := core.Config{
		SchemaA: gen.OpenSchema, SchemaB: gen.BidSchema,
		AttrA: 0, AttrB: 0,
		OutName: "Out1",
	}
	cfg.Thresholds.Purge = 1          // eager purge
	cfg.Thresholds.PropagateCount = 1 // propagate as soon as possible
	join, err := core.New(cfg, joined)
	if err != nil {
		log.Fatal(err)
	}

	sumAttr := join.OutSchema().MustIndexOf("bid_increase")
	groupBy, err := op.NewGroupBy(join.OutSchema(), 0, sumAttr, op.AggSum, grouped)
	if err != nil {
		log.Fatal(err)
	}

	p.SourceItems(srcOpen, open, false)
	p.SourceItems(srcBid, bids, false)
	if err := p.Spawn(join, srcOpen, srcBid); err != nil {
		log.Fatal(err)
	}
	if err := p.Spawn(groupBy, joined); err != nil {
		log.Fatal(err)
	}
	sink := p.Sink(grouped)

	if err := p.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-item bid totals (in emission order):")
	for _, t := range sink.Tuples() {
		fmt.Printf("  item %2d: %6.1f\n", t.Values[0].IntVal(), t.Values[1].FloatVal())
	}
	m := join.Metrics()
	fmt.Printf("\njoin: results=%d purged=%d dropped-on-fly=%d puncts-out=%d\n",
		m.TuplesOut, m.Purged, m.DroppedOnFly, m.PunctsOut)
	fmt.Printf("group-by: %d of %d groups emitted early (before end-of-stream)\n",
		groupBy.EarlyEmitted(), groupBy.EarlyEmitted()+int64(groupBy.Groups()))
	fmt.Printf("join state at end: %d tuples (fully purged by punctuations)\n", join.StateTuples())
}
