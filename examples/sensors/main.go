// Sensors: joining two sensor-network streams (the paper's §1
// motivation) with BOTH a sliding window and punctuations — the §6
// extension. Readings and zone alerts are joined on the observation
// epoch; a 50ms window bounds how stale a pair may be, while per-epoch
// punctuations purge exactly and propagate downstream.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

func main() {
	readings := stream.MustSchema("Readings",
		stream.Field{Name: "epoch", Kind: value.KindInt},
		stream.Field{Name: "sensor", Kind: value.KindString},
		stream.Field{Name: "temp", Kind: value.KindFloat},
	)
	alerts := stream.MustSchema("Alerts",
		stream.Field{Name: "epoch", Kind: value.KindInt},
		stream.Field{Name: "zone", Kind: value.KindString},
	)

	sink := &op.Collector{}
	cfg := core.Config{
		SchemaA: readings, SchemaB: alerts,
		AttrA: 0, AttrB: 0,
		Window:             50 * stream.Millisecond,
		VerifyPunctuations: true,
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 2
	join, err := core.New(cfg, sink)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 20 epochs of 10ms each: sensors report a few readings per
	// epoch, occasionally a zone alert fires, and when an epoch ends both
	// streams punctuate it — the base station knows no more data for that
	// epoch will arrive.
	rng := vtime.NewRNG(7)
	sensors := []string{"s1", "s2", "s3", "s4"}
	zones := []string{"north", "south"}
	var ts stream.Time
	stamp := func(at stream.Time) stream.Time {
		if at <= ts {
			at = ts + 1
		}
		ts = at
		return ts
	}
	feed := func(port int, it stream.Item) {
		if err := join.Process(port, it, it.Ts); err != nil {
			log.Fatal(err)
		}
	}

	const epochLen = 10 * stream.Millisecond
	maxState := 0
	for epoch := int64(0); epoch < 20; epoch++ {
		start := stream.Time(epoch) * epochLen
		// Readings within the epoch.
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			at := stamp(start + stream.Time(rng.Int63n(int64(epochLen))))
			t := stream.MustTuple(readings, at,
				value.Int(epoch),
				value.Str(sensors[rng.Intn(len(sensors))]),
				value.Float(15+10*rng.Float64()),
			)
			feed(0, stream.TupleItem(t))
		}
		// Maybe an alert for this epoch.
		if rng.Intn(3) != 0 {
			at := stamp(start + stream.Time(rng.Int63n(int64(epochLen))))
			t := stream.MustTuple(alerts, at,
				value.Int(epoch), value.Str(zones[rng.Intn(len(zones))]))
			feed(1, stream.TupleItem(t))
		}
		if s := join.StateTuples(); s > maxState {
			maxState = s
		}
		// Epoch over: both streams punctuate it.
		for _, pw := range []struct{ port, width int }{{0, readings.Width()}, {1, alerts.Width()}} {
			p := punct.MustKeyOnly(pw.width, 0, punct.Const(value.Int(epoch)))
			feed(pw.port, stream.PunctItem(p, stamp(start+epochLen)))
		}
	}
	feed(0, stream.EOSItem(stamp(ts+1)))
	feed(1, stream.EOSItem(stamp(ts+1)))
	if err := join.Finish(ts + 1); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("alerts matched with readings: %d results\n", len(sink.Tuples()))
	for _, t := range sink.Tuples()[:min(5, len(sink.Tuples()))] {
		fmt.Printf("  epoch %2d sensor %s temp %.1f zone %s\n",
			t.Values[0].IntVal(), t.Values[1].StrVal(), t.Values[2].FloatVal(), t.Values[4].StrVal())
	}
	fmt.Printf("punctuations propagated downstream: %d\n", len(sink.Puncts()))
	fmt.Printf("max state during run: %d tuples; final state: %d\n", maxState, join.StateTuples())
	m := join.Metrics()
	fmt.Printf("purged=%d dropped-on-fly=%d\n", m.Purged, m.DroppedOnFly)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
