package metrics

import (
	"math"
	"strings"
	"testing"
)

func sample() Series {
	s := Series{Name: "s"}
	s.Add(0, 0)
	s.Add(1000, 10)
	s.Add(2000, 30)
	return s
}

func TestSeriesStats(t *testing.T) {
	s := sample()
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Mean(); math.Abs(got-40.0/3) > 1e-9 {
		t.Errorf("Mean = %g", got)
	}
	if s.Max() != 30 || s.Last() != 30 {
		t.Errorf("Max/Last = %g/%g", s.Max(), s.Last())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Max() != 0 || empty.Last() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestRate(t *testing.T) {
	src := sample()
	r := src.Rate("r")
	if r.Len() != 2 {
		t.Fatalf("rate points = %d", r.Len())
	}
	// 10 units over 1000 ms = 10/s; then 20 over 1000 ms = 20/s.
	if r.Points[0].V != 10 || r.Points[1].V != 20 {
		t.Errorf("rates = %v", r.Points)
	}
	// Zero-dt points are skipped.
	s := Series{Name: "z"}
	s.Add(5, 1)
	s.Add(5, 2)
	zr := s.Rate("r")
	if zr.Len() != 0 {
		t.Error("zero-dt rate not skipped")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,t_ms,value\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "s,1000,10") {
		t.Errorf("missing row: %q", out)
	}
	if got := strings.Count(out, "\n"); got != 4 {
		t.Errorf("lines = %d", got)
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	s2 := Series{Name: "other"}
	s2.Add(0, 5)
	s2.Add(2000, 25)
	if err := Chart(&b, 40, 8, sample(), s2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("chart glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "s") || !strings.Contains(out, "other") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "30") {
		t.Errorf("y axis max missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Errorf("empty chart = %q", b.String())
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var b strings.Builder
	s := Series{Name: "flat"}
	s.Add(5, 7)
	s.Add(5, 7)
	if err := Chart(&b, 20, 4, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("degenerate chart missing point")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, 1, 1, sample()); err != nil {
		t.Fatal(err)
	}
	if len(b.String()) == 0 {
		t.Error("chart with tiny dims should still render")
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, [][]string{
		{"name", "value"},
		{"pjoin-1", "123"},
		{"xjoin", "45678"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing rule: %q", lines[1])
	}
	// Columns aligned: "value" starts at the same offset in all rows.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][off:], "123") {
		t.Errorf("misaligned: %q", lines[2])
	}
	if err := Table(&b, nil); err != nil {
		t.Errorf("empty table: %v", err)
	}
}
