// Package metrics holds the time-series and reporting helpers the
// experiment harness uses to render the paper's charts: series
// collection, derived rate series, CSV export, ASCII line charts for the
// terminal, and aligned text tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one sample of a series: a time in milliseconds (the unit the
// paper's charts use) and a value.
type Point struct {
	T float64
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the average value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Rate returns the per-second rate of change of a cumulative series:
// point i of the result is (v_i - v_{i-1}) / (t_i - t_{i-1}) with time
// in milliseconds, scaled to per-second.
func (s *Series) Rate(name string) Series {
	out := Series{Name: name}
	for i := 1; i < len(s.Points); i++ {
		dt := s.Points[i].T - s.Points[i-1].T
		if dt <= 0 {
			continue
		}
		rate := (s.Points[i].V - s.Points[i-1].V) / dt * 1000
		out.Add(s.Points[i].T, rate)
	}
	return out
}

// WriteCSV writes the series in long format: name,t_ms,value.
func WriteCSV(w io.Writer, series ...Series) error {
	if _, err := fmt.Fprintln(w, "series,t_ms,value"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, p.T, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// chartGlyphs mark the different series in an ASCII chart.
var chartGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders the series as an ASCII line chart of the given width and
// height (in characters), with a legend. All series share one x/y range.
func Chart(w io.Writer, width, height int, series ...Series) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := 0.0, math.Inf(-1) // y axis anchored at 0, as in the paper's charts
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			minT = math.Min(minT, p.T)
			maxT = math.Max(maxT, p.T)
			minV = math.Min(minV, p.V)
			maxV = math.Max(maxV, p.V)
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := chartGlyphs[si%len(chartGlyphs)]
		for _, p := range s.Points {
			x := int((p.T - minT) / (maxT - minT) * float64(width-1))
			y := int((p.V - minV) / (maxV - minV) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = g
			}
		}
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.4g ", maxV)
		case height - 1:
			label = fmt.Sprintf("%9.4g ", minV)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s%-*s%s\n", fmt.Sprintf("%.4g ms ", minT), width-len(fmt.Sprintf("%.4g ms", maxT))+1, "", fmt.Sprintf("%.4g ms", maxT)); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", chartGlyphs[si%len(chartGlyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows with aligned columns. The first row is treated as
// the header and separated by a rule.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(rows[0]); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range rows[1:] {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}
