package event

import (
	"fmt"

	"pjoin/internal/stream"
)

// Side identifies one of a binary join's inputs in event payloads and
// monitor counters.
type Side int

// The two sides of a binary join.
const (
	SideA Side = 0
	SideB Side = 1
)

// String returns "A" or "B".
func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// Opposite returns the other side.
func (s Side) Opposite() Side { return 1 - s }

// Thresholds are the monitor's runtime parameters (paper §3.6: "all
// parameters for invoking the events ... are specified inside the
// monitor and can also be changed at runtime"). Zero or negative values
// disable the corresponding event.
type Thresholds struct {
	// Purge is the number of punctuations to arrive between two state
	// purges (§3.4). 1 = eager purge.
	Purge int
	// MemoryBytes is the in-memory state size that triggers StateFull
	// (state relocation).
	MemoryBytes int64
	// DiskJoinIdle is how long both inputs must be stalled before
	// DiskJoinActivate fires (the disk join's activation threshold, §3.2).
	DiskJoinIdle stream.Time
	// PropagateCount is the count propagation threshold: punctuations
	// received since the last propagation (push mode, §3.5).
	PropagateCount int
	// PropagateTime is the time propagation threshold (push mode, §3.5).
	PropagateTime stream.Time
}

// Monitor tracks the runtime parameters of a running join and invokes
// events through the registry when thresholds are reached. The join
// calls the On* hooks from its processing path; listeners registered for
// the resulting events implement the actual components.
type Monitor struct {
	reg *Registry
	th  Thresholds

	punctsSincePurge [2]int // per side
	punctsSinceProp  int
	lastProp         stream.Time
	lastActivity     stream.Time
	idleFired        bool
}

// NewMonitor returns a monitor dispatching through reg with the given
// initial thresholds.
func NewMonitor(reg *Registry, th Thresholds) (*Monitor, error) {
	if reg == nil {
		return nil, fmt.Errorf("event: NewMonitor: nil registry")
	}
	return &Monitor{reg: reg, th: th}, nil
}

// SetThresholds replaces the runtime parameters; effective immediately.
func (m *Monitor) SetThresholds(th Thresholds) { m.th = th }

// CurrentThresholds returns the active runtime parameters.
func (m *Monitor) CurrentThresholds() Thresholds { return m.th }

// PunctsSincePurge returns the punctuation count for side since that
// side's last purge (a monitored runtime parameter).
func (m *Monitor) PunctsSincePurge(s Side) int { return m.punctsSincePurge[s] }

// PunctArrived records a punctuation arrival on side s and fires
// PurgeThresholdReach and/or PropagateCountReach when their counters
// reach the thresholds. Counters reset when their event fires.
//
// A punctuation from side s purges the OPPOSITE state (§2.2 purge
// rules), so the purge counter is tracked per arrival side and the event
// argument carries the side whose punctuations accumulated.
func (m *Monitor) PunctArrived(s Side, now stream.Time) error {
	m.lastActivity = now
	m.idleFired = false
	m.punctsSincePurge[s]++
	if m.th.Purge > 0 && m.punctsSincePurge[s] >= m.th.Purge {
		m.punctsSincePurge[s] = 0
		if err := m.reg.Dispatch(Event{Kind: PurgeThresholdReach, At: now, Arg: s}); err != nil {
			return err
		}
	}
	m.punctsSinceProp++
	if m.th.PropagateCount > 0 && m.punctsSinceProp >= m.th.PropagateCount {
		m.punctsSinceProp = 0
		if err := m.reg.Dispatch(Event{Kind: PropagateCountReach, At: now}); err != nil {
			return err
		}
	}
	return nil
}

// TupleArrived records data activity (resets the idle tracking) and
// checks the time propagation threshold.
func (m *Monitor) TupleArrived(now stream.Time) error {
	m.lastActivity = now
	m.idleFired = false
	return m.checkPropagateTime(now)
}

// StateSize reports the current in-memory state size; StateFull fires
// each time the size is at or above the memory threshold.
func (m *Monitor) StateSize(bytes int64, now stream.Time) error {
	if m.th.MemoryBytes > 0 && bytes >= m.th.MemoryBytes {
		return m.reg.Dispatch(Event{Kind: StateFull, At: now, Arg: bytes})
	}
	return nil
}

// Idle reports that both inputs are currently stalled at time now.
// DiskJoinActivate fires once per stall when the idle duration reaches
// the activation threshold; StreamEmpty is separate (see StreamsEnded).
func (m *Monitor) Idle(now stream.Time) error {
	if m.idleFired || m.th.DiskJoinIdle <= 0 {
		return nil
	}
	if now-m.lastActivity >= m.th.DiskJoinIdle {
		m.idleFired = true
		return m.reg.Dispatch(Event{Kind: DiskJoinActivate, At: now})
	}
	return nil
}

// StreamsEnded fires StreamEmpty: both inputs have run out of tuples.
func (m *Monitor) StreamsEnded(now stream.Time) error {
	return m.reg.Dispatch(Event{Kind: StreamEmpty, At: now})
}

// RequestPropagation fires PropagateRequest on behalf of a downstream
// operator (pull mode, §3.5).
func (m *Monitor) RequestPropagation(now stream.Time) error {
	return m.reg.Dispatch(Event{Kind: PropagateRequest, At: now})
}

// checkPropagateTime fires PropagateTimeExpire when the time threshold
// has elapsed since the last propagation tick.
func (m *Monitor) checkPropagateTime(now stream.Time) error {
	if m.th.PropagateTime <= 0 {
		return nil
	}
	if now-m.lastProp >= m.th.PropagateTime {
		m.lastProp = now
		return m.reg.Dispatch(Event{Kind: PropagateTimeExpire, At: now})
	}
	return nil
}
