package event

import (
	"errors"
	"testing"

	"pjoin/internal/stream"
)

func countingRegistry(kinds ...Kind) (*Registry, map[Kind]*int) {
	r := NewRegistry()
	counts := map[Kind]*int{}
	for _, k := range kinds {
		n := new(int)
		counts[k] = n
		r.Register(k, nil, "", ListenerFunc{ID: k.String(), Fn: func(Event) error {
			*n++
			return nil
		}})
	}
	return r, counts
}

func TestNewMonitorNilRegistry(t *testing.T) {
	if _, err := NewMonitor(nil, Thresholds{}); err == nil {
		t.Error("nil registry should error")
	}
}

func TestPurgeThresholdPerSide(t *testing.T) {
	r, counts := countingRegistry(PurgeThresholdReach)
	m, _ := NewMonitor(r, Thresholds{Purge: 3})
	// Two As and two Bs: neither side reaches 3.
	for i := 0; i < 2; i++ {
		m.PunctArrived(SideA, stream.Time(i))
		m.PunctArrived(SideB, stream.Time(i))
	}
	if *counts[PurgeThresholdReach] != 0 {
		t.Fatal("fired before threshold")
	}
	if m.PunctsSincePurge(SideA) != 2 || m.PunctsSincePurge(SideB) != 2 {
		t.Error("per-side counters wrong")
	}
	m.PunctArrived(SideA, 10)
	if *counts[PurgeThresholdReach] != 1 {
		t.Fatal("side A should have fired")
	}
	if m.PunctsSincePurge(SideA) != 0 {
		t.Error("counter should reset after firing")
	}
	if m.PunctsSincePurge(SideB) != 2 {
		t.Error("side B counter must be untouched")
	}
}

func TestPurgeEventCarriesSide(t *testing.T) {
	r := NewRegistry()
	var gotSide Side = -1
	r.Register(PurgeThresholdReach, nil, "", ListenerFunc{ID: "p", Fn: func(e Event) error {
		gotSide = e.Arg.(Side)
		return nil
	}})
	m, _ := NewMonitor(r, Thresholds{Purge: 1})
	m.PunctArrived(SideB, 5)
	if gotSide != SideB {
		t.Errorf("event side = %v", gotSide)
	}
}

func TestEagerPurgeIsThresholdOne(t *testing.T) {
	r, counts := countingRegistry(PurgeThresholdReach)
	m, _ := NewMonitor(r, Thresholds{Purge: 1})
	for i := 0; i < 5; i++ {
		m.PunctArrived(SideA, stream.Time(i))
	}
	if *counts[PurgeThresholdReach] != 5 {
		t.Errorf("eager purge fired %d times, want 5", *counts[PurgeThresholdReach])
	}
}

func TestPurgeDisabled(t *testing.T) {
	r, counts := countingRegistry(PurgeThresholdReach)
	m, _ := NewMonitor(r, Thresholds{Purge: 0})
	for i := 0; i < 10; i++ {
		m.PunctArrived(SideA, stream.Time(i))
	}
	if *counts[PurgeThresholdReach] != 0 {
		t.Error("disabled purge threshold fired")
	}
}

func TestPropagateCountThreshold(t *testing.T) {
	r, counts := countingRegistry(PropagateCountReach)
	m, _ := NewMonitor(r, Thresholds{PropagateCount: 4})
	// Propagation counter is global across sides.
	m.PunctArrived(SideA, 1)
	m.PunctArrived(SideB, 2)
	m.PunctArrived(SideA, 3)
	if *counts[PropagateCountReach] != 0 {
		t.Fatal("fired early")
	}
	m.PunctArrived(SideB, 4)
	if *counts[PropagateCountReach] != 1 {
		t.Fatal("should fire at 4 punctuations")
	}
	m.PunctArrived(SideA, 5)
	if *counts[PropagateCountReach] != 1 {
		t.Error("counter should have reset")
	}
}

func TestStateFull(t *testing.T) {
	r, counts := countingRegistry(StateFull)
	m, _ := NewMonitor(r, Thresholds{MemoryBytes: 1000})
	m.StateSize(999, 1)
	if *counts[StateFull] != 0 {
		t.Fatal("fired below threshold")
	}
	m.StateSize(1000, 2)
	m.StateSize(2000, 3)
	if *counts[StateFull] != 2 {
		t.Errorf("fired %d times, want 2", *counts[StateFull])
	}
	// Disabled threshold never fires.
	m.SetThresholds(Thresholds{MemoryBytes: 0})
	m.StateSize(1<<40, 4)
	if *counts[StateFull] != 2 {
		t.Error("disabled memory threshold fired")
	}
}

func TestDiskJoinActivateOncePerStall(t *testing.T) {
	r, counts := countingRegistry(DiskJoinActivate)
	m, _ := NewMonitor(r, Thresholds{DiskJoinIdle: 10})
	m.TupleArrived(100)
	m.Idle(105)
	if *counts[DiskJoinActivate] != 0 {
		t.Fatal("fired before activation threshold")
	}
	m.Idle(110)
	if *counts[DiskJoinActivate] != 1 {
		t.Fatal("should fire at threshold")
	}
	m.Idle(500)
	if *counts[DiskJoinActivate] != 1 {
		t.Error("must fire once per stall")
	}
	// New activity resets; a new stall fires again.
	m.TupleArrived(600)
	m.Idle(610)
	if *counts[DiskJoinActivate] != 2 {
		t.Error("new stall should fire again")
	}
	// Punctuation activity also resets the stall tracking.
	m.PunctArrived(SideA, 700)
	m.Idle(710)
	if *counts[DiskJoinActivate] != 3 {
		t.Error("stall after punctuation should fire")
	}
}

func TestDiskJoinDisabled(t *testing.T) {
	r, counts := countingRegistry(DiskJoinActivate)
	m, _ := NewMonitor(r, Thresholds{})
	m.Idle(1000)
	if *counts[DiskJoinActivate] != 0 {
		t.Error("disabled idle threshold fired")
	}
}

func TestPropagateTimeExpire(t *testing.T) {
	r, counts := countingRegistry(PropagateTimeExpire)
	m, _ := NewMonitor(r, Thresholds{PropagateTime: 100})
	m.TupleArrived(50)
	if *counts[PropagateTimeExpire] != 0 {
		t.Fatal("fired before interval")
	}
	m.TupleArrived(100)
	if *counts[PropagateTimeExpire] != 1 {
		t.Fatal("should fire at interval")
	}
	m.TupleArrived(150)
	if *counts[PropagateTimeExpire] != 1 {
		t.Error("should not fire again until another interval passes")
	}
	m.TupleArrived(200)
	if *counts[PropagateTimeExpire] != 2 {
		t.Error("second interval should fire")
	}
}

func TestStreamsEndedAndPullRequest(t *testing.T) {
	r, counts := countingRegistry(StreamEmpty, PropagateRequest)
	m, _ := NewMonitor(r, Thresholds{})
	m.StreamsEnded(9)
	if *counts[StreamEmpty] != 1 {
		t.Error("StreamEmpty not dispatched")
	}
	m.RequestPropagation(10)
	if *counts[PropagateRequest] != 1 {
		t.Error("PropagateRequest not dispatched")
	}
}

func TestThresholdsChangeableAtRuntime(t *testing.T) {
	r, counts := countingRegistry(PurgeThresholdReach)
	m, _ := NewMonitor(r, Thresholds{Purge: 100})
	m.PunctArrived(SideA, 1)
	m.SetThresholds(Thresholds{Purge: 2})
	if got := m.CurrentThresholds().Purge; got != 2 {
		t.Fatalf("threshold = %d", got)
	}
	m.PunctArrived(SideA, 2)
	if *counts[PurgeThresholdReach] != 1 {
		t.Error("lowered threshold should fire with existing counter")
	}
}

func TestMonitorPropagatesListenerErrors(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.Register(PurgeThresholdReach, nil, "", ListenerFunc{ID: "p", Fn: func(Event) error { return boom }})
	m, _ := NewMonitor(r, Thresholds{Purge: 1})
	if err := m.PunctArrived(SideA, 1); err == nil {
		t.Error("listener error should surface from PunctArrived")
	}
}
