// Package event implements PJoin's event-driven component framework
// (paper §3.6): typed events modelling runtime-parameter status changes,
// an event-listener registry whose entries pair an event with guard
// conditions and an ordered list of listener components, and a monitor
// that tracks runtime parameters against thresholds and invokes events
// when thresholds are reached. Registry entries and thresholds can be
// changed at runtime, which is how the paper's "flexible configuration of
// different join solutions" is realised.
package event

import (
	"fmt"
	"strings"

	"pjoin/internal/stream"
)

// Kind enumerates the events of §3.6.
type Kind uint8

// The event kinds. These mirror the paper's list; DiskJoinActivate is the
// paper's item 4 (the disk-join activation threshold being reached while
// the inputs are stalled).
const (
	// StreamEmpty signals both input streams have run out of tuples.
	StreamEmpty Kind = iota
	// PurgeThresholdReach signals the purge threshold is reached.
	PurgeThresholdReach
	// StateFull signals the in-memory join state reached the memory
	// threshold.
	StateFull
	// DiskJoinActivate signals the disk-join activation threshold is
	// reached (inputs stalled long enough to schedule background work).
	DiskJoinActivate
	// PropagateRequest signals a propagation request from a downstream
	// operator (pull mode).
	PropagateRequest
	// PropagateTimeExpire signals the time propagation threshold elapsed.
	PropagateTimeExpire
	// PropagateCountReach signals the count propagation threshold is
	// reached.
	PropagateCountReach

	numKinds
)

// String returns the event kind's name as used in the paper.
func (k Kind) String() string {
	switch k {
	case StreamEmpty:
		return "StreamEmptyEvent"
	case PurgeThresholdReach:
		return "PurgeThresholdReachEvent"
	case StateFull:
		return "StateFullEvent"
	case DiskJoinActivate:
		return "DiskJoinActivateEvent"
	case PropagateRequest:
		return "PropagateRequestEvent"
	case PropagateTimeExpire:
		return "PropagateTimeExpireEvent"
	case PropagateCountReach:
		return "PropagateCountReachEvent"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one occurrence dispatched through the registry.
type Event struct {
	Kind Kind
	At   stream.Time
	Arg  any // event-specific payload (e.g. which side's threshold fired)
}

// Listener is a component that can handle events: in PJoin, the state
// purge, state relocation, disk join, index build and punctuation
// propagation components.
type Listener interface {
	// Name identifies the component in the registry (for ordering,
	// removal, and Table-1-style printouts).
	Name() string
	// Handle processes the event. Errors abort the dispatch and surface
	// to the operator.
	Handle(Event) error
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc struct {
	ID string
	Fn func(Event) error
}

// Name implements Listener.
func (l ListenerFunc) Name() string { return l.ID }

// Handle implements Listener.
func (l ListenerFunc) Handle(e Event) error { return l.Fn(e) }

// Condition guards a registry entry: the listeners run only when it
// returns true. A nil Condition always passes.
type Condition func(Event) bool

// entry is one row of the event-listener registry (paper Table 1).
type entry struct {
	cond      Condition
	condDesc  string
	listeners []Listener
}

// Registry is the event-listener registry: for each event kind, the
// guard condition and the ordered listeners that handle it ("if an event
// has multiple listeners, these listeners will be executed in an order
// specified in the event-listener registry"). It may be updated at
// runtime between dispatches.
type Registry struct {
	entries [numKinds][]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a registry row: when an event of the given kind is
// dispatched and cond passes (nil = always), the listeners run in order.
// condDesc documents the condition for String; use "" for none.
func (r *Registry) Register(kind Kind, cond Condition, condDesc string, listeners ...Listener) error {
	if kind >= numKinds {
		return fmt.Errorf("event: register: unknown kind %d", kind)
	}
	if len(listeners) == 0 {
		return fmt.Errorf("event: register %s: no listeners", kind)
	}
	for _, l := range listeners {
		if l == nil {
			return fmt.Errorf("event: register %s: nil listener", kind)
		}
	}
	ls := make([]Listener, len(listeners))
	copy(ls, listeners)
	r.entries[kind] = append(r.entries[kind], entry{cond: cond, condDesc: condDesc, listeners: ls})
	return nil
}

// Unregister removes the named listener from every row of the given
// kind, dropping rows that become empty. It reports whether anything was
// removed. This is the runtime-reconfiguration hook.
func (r *Registry) Unregister(kind Kind, name string) bool {
	if kind >= numKinds {
		return false
	}
	removed := false
	rows := r.entries[kind][:0]
	for _, e := range r.entries[kind] {
		kept := e.listeners[:0]
		for _, l := range e.listeners {
			if l.Name() == name {
				removed = true
			} else {
				kept = append(kept, l)
			}
		}
		e.listeners = kept
		if len(e.listeners) > 0 {
			rows = append(rows, e)
		}
	}
	r.entries[kind] = rows
	return removed
}

// Listeners returns the names of the listeners registered for kind, in
// dispatch order.
func (r *Registry) Listeners(kind Kind) []string {
	if kind >= numKinds {
		return nil
	}
	var out []string
	for _, e := range r.entries[kind] {
		for _, l := range e.listeners {
			out = append(out, l.Name())
		}
	}
	return out
}

// Dispatch delivers the event to every matching row's listeners in
// order. The first listener error aborts and is returned.
func (r *Registry) Dispatch(e Event) error {
	if e.Kind >= numKinds {
		return fmt.Errorf("event: dispatch: unknown kind %d", e.Kind)
	}
	for _, row := range r.entries[e.Kind] {
		if row.cond != nil && !row.cond(e) {
			continue
		}
		for _, l := range row.listeners {
			if err := l.Handle(e); err != nil {
				return fmt.Errorf("event: %s -> %s: %w", e.Kind, l.Name(), err)
			}
		}
	}
	return nil
}

// String renders the registry as a Table-1-style listing:
//
//	PurgeThresholdReachEvent [threshold reached] -> state-purge
func (r *Registry) String() string {
	var b strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		for _, row := range r.entries[k] {
			b.WriteString(k.String())
			if row.condDesc != "" {
				b.WriteString(" [" + row.condDesc + "]")
			}
			b.WriteString(" -> ")
			for i, l := range row.listeners {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(l.Name())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
