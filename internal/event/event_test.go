package event

import (
	"errors"
	"strings"
	"testing"
)

type recorder struct {
	name string
	got  []Event
	err  error
}

func (r *recorder) Name() string { return r.name }
func (r *recorder) Handle(e Event) error {
	r.got = append(r.got, e)
	return r.err
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		StreamEmpty:         "StreamEmptyEvent",
		PurgeThresholdReach: "PurgeThresholdReachEvent",
		StateFull:           "StateFullEvent",
		DiskJoinActivate:    "DiskJoinActivateEvent",
		PropagateRequest:    "PropagateRequestEvent",
		PropagateTimeExpire: "PropagateTimeExpireEvent",
		PropagateCountReach: "PropagateCountReachEvent",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Kind(99), nil, ""); err == nil {
		t.Error("unknown kind should error")
	}
	if err := r.Register(StateFull, nil, ""); err == nil {
		t.Error("no listeners should error")
	}
	if err := r.Register(StateFull, nil, "", nil); err == nil {
		t.Error("nil listener should error")
	}
}

func TestDispatchOrderAndPayload(t *testing.T) {
	r := NewRegistry()
	a := &recorder{name: "a"}
	b := &recorder{name: "b"}
	c := &recorder{name: "c"}
	if err := r.Register(PurgeThresholdReach, nil, "", a, b); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(PurgeThresholdReach, nil, "", c); err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: PurgeThresholdReach, At: 42, Arg: SideB}
	if err := r.Dispatch(ev); err != nil {
		t.Fatal(err)
	}
	for _, rec := range []*recorder{a, b, c} {
		if len(rec.got) != 1 {
			t.Fatalf("%s saw %d events", rec.name, len(rec.got))
		}
		if rec.got[0].At != 42 || rec.got[0].Arg != SideB {
			t.Errorf("%s event = %+v", rec.name, rec.got[0])
		}
	}
}

func TestDispatchCondition(t *testing.T) {
	r := NewRegistry()
	rec := &recorder{name: "x"}
	cond := func(e Event) bool { return e.Arg == SideA }
	r.Register(PurgeThresholdReach, cond, "only side A", rec)
	r.Dispatch(Event{Kind: PurgeThresholdReach, Arg: SideB})
	if len(rec.got) != 0 {
		t.Error("condition should have blocked dispatch")
	}
	r.Dispatch(Event{Kind: PurgeThresholdReach, Arg: SideA})
	if len(rec.got) != 1 {
		t.Error("condition should have passed dispatch")
	}
}

func TestDispatchWrongKindNotDelivered(t *testing.T) {
	r := NewRegistry()
	rec := &recorder{name: "x"}
	r.Register(StateFull, nil, "", rec)
	r.Dispatch(Event{Kind: StreamEmpty})
	if len(rec.got) != 0 {
		t.Error("listener got an event of a different kind")
	}
	if err := r.Dispatch(Event{Kind: Kind(99)}); err == nil {
		t.Error("unknown kind dispatch should error")
	}
}

func TestDispatchErrorAborts(t *testing.T) {
	r := NewRegistry()
	bad := &recorder{name: "bad", err: errors.New("boom")}
	after := &recorder{name: "after"}
	r.Register(StateFull, nil, "", bad, after)
	err := r.Dispatch(Event{Kind: StateFull})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error should name the listener: %v", err)
	}
	if len(after.got) != 0 {
		t.Error("listener after the failing one should not run")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	a := &recorder{name: "a"}
	b := &recorder{name: "b"}
	r.Register(StateFull, nil, "", a, b)
	if !r.Unregister(StateFull, "a") {
		t.Fatal("Unregister should report removal")
	}
	if r.Unregister(StateFull, "a") {
		t.Error("second Unregister should report false")
	}
	if r.Unregister(Kind(99), "a") {
		t.Error("unknown kind Unregister should report false")
	}
	r.Dispatch(Event{Kind: StateFull})
	if len(a.got) != 0 || len(b.got) != 1 {
		t.Error("unregistered listener still receiving")
	}
	got := r.Listeners(StateFull)
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("Listeners = %v", got)
	}
	// Removing the last listener drops the row entirely.
	r.Unregister(StateFull, "b")
	if got := r.Listeners(StateFull); len(got) != 0 {
		t.Errorf("Listeners after emptying = %v", got)
	}
}

func TestListenerFunc(t *testing.T) {
	calls := 0
	l := ListenerFunc{ID: "fn", Fn: func(Event) error { calls++; return nil }}
	if l.Name() != "fn" {
		t.Error("Name wrong")
	}
	r := NewRegistry()
	r.Register(PropagateRequest, nil, "", l)
	r.Dispatch(Event{Kind: PropagateRequest})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestRegistryStringTableOne(t *testing.T) {
	// Reproduce the shape of the paper's Table 1: lazy purge, lazy index
	// build + push-mode (count) propagation.
	r := NewRegistry()
	r.Register(PurgeThresholdReach, nil, "purge threshold reached",
		ListenerFunc{ID: "state-purge", Fn: func(Event) error { return nil }})
	r.Register(PropagateCountReach, nil, "count propagation threshold reached",
		ListenerFunc{ID: "index-build", Fn: func(Event) error { return nil }},
		ListenerFunc{ID: "punctuation-propagation", Fn: func(Event) error { return nil }})
	r.Register(StateFull, nil, "memory threshold reached",
		ListenerFunc{ID: "state-relocation", Fn: func(Event) error { return nil }})
	s := r.String()
	for _, want := range []string{
		"PurgeThresholdReachEvent [purge threshold reached] -> state-purge",
		"PropagateCountReachEvent [count propagation threshold reached] -> index-build, punctuation-propagation",
		"StateFullEvent [memory threshold reached] -> state-relocation",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("registry table missing %q in:\n%s", want, s)
		}
	}
	// Listener order within a row is the execution order.
	if idx, jdx := strings.Index(s, "index-build"), strings.Index(s, "punctuation-propagation"); idx > jdx {
		t.Error("listener order not preserved in table")
	}
}

func TestSide(t *testing.T) {
	if SideA.String() != "A" || SideB.String() != "B" {
		t.Error("side names wrong")
	}
	if SideA.Opposite() != SideB || SideB.Opposite() != SideA {
		t.Error("Opposite broken")
	}
}
