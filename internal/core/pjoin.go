// Package core implements PJoin, the punctuation-exploiting stream join
// operator of "Joining Punctuated Streams" (EDBT 2004). PJoin is a
// binary hash-based equi-join that uses punctuations embedded in its
// input streams to purge no-longer-useful tuples from its state (purge
// rules, paper eq. 1) and to propagate punctuations to downstream
// operators (propagation rules, eq. 2 / Theorem 1).
//
// The operator is assembled from the paper's six components — memory
// join, disk join, state relocation, state purge, punctuation index
// build, and punctuation propagation — wired together through the
// event-driven framework of internal/event (§3.6): the memory join is
// the processing path; the other components are listeners invoked when
// the monitor detects a threshold being reached.
package core

import (
	"fmt"
	"sort"
	"time"

	"pjoin/internal/event"
	"pjoin/internal/joinbase"
	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Config configures a PJoin instance.
type Config struct {
	// SchemaA and SchemaB describe the two inputs (ports 0 and 1).
	SchemaA, SchemaB *stream.Schema
	// AttrA and AttrB are the join attribute positions in each schema.
	// The attributes must have identical kinds.
	AttrA, AttrB int
	// OutName names the result schema (default "join").
	OutName string
	// NumBuckets is the hash table size per state (default 64).
	NumBuckets int
	// SpillA and SpillB provide secondary storage for the two states
	// (default: fresh in-memory simulated disks).
	SpillA, SpillB store.SpillStore
	// Thresholds are the monitor's initial runtime parameters. The zero
	// value disables relocation, disk-join activation and push-mode
	// propagation, and sets eager purge (threshold 1).
	Thresholds event.Thresholds
	// DiskChunkBytes, when positive, makes the disk-join component
	// incremental: instead of one stop-the-world pass, disk joins run as
	// a resumable background task that reads spill data in chunks of at
	// most this many bytes and yields to the hot path after every chunk.
	// Process steps the task once per input item, so result latency is
	// bounded by one chunk instead of one full pass. 0 keeps the
	// blocking pass.
	DiskChunkBytes int
	// EagerIndex selects eager punctuation index building (build on
	// every punctuation arrival) instead of the default lazy building
	// (build only when propagation is invoked). §3.5.
	EagerIndex bool
	// DisablePropagation turns the propagation machinery off entirely;
	// punctuations still purge state but are never forwarded. Most of
	// the paper's experiments run in this mode.
	DisablePropagation bool
	// DisableDropOnTheFly disables the optimisation of never inserting
	// a tuple that already matches the opposite punctuation set (§4.3).
	DisableDropOnTheFly bool
	// DisablePurge turns the state-purge component off (for ablation:
	// PJoin then keeps state like XJoin).
	DisablePurge bool
	// VerifyPunctuations enables checking the paper's nested-or-disjoint
	// assumption on the join attribute and that no tuple arrives after a
	// punctuation it matches (stream integrity).
	VerifyPunctuations bool
	// RetainPropagated keeps propagated punctuations in their set (marked
	// Entry.Propagated) instead of removing them (§3.5 removes
	// immediately). Retention trades set growth for purge power that is
	// independent of propagation timing: a punctuation keeps dropping and
	// purging matching tuples even after it was released downstream. This
	// is what makes hash-partitioned parallel PJoin (internal/parallel)
	// exactly equivalent to a single instance on punctuations that span
	// several join keys — each partition reaches count zero at its own
	// pace, and an early partition must not forget the punctuation while
	// late tuples it covers can still arrive. An extension beyond the
	// paper.
	RetainPropagated bool
	// DisableDiskPurge stops disk passes from purging disk-resident
	// tuples that match the opposite punctuation set (purging them is
	// the default behaviour of the paper's disk join; disable for
	// ablation).
	DisableDiskPurge bool
	// DisableStateIndex reverts the join states to the pre-index
	// behaviour: probes scan the whole bucket and purge runs
	// predicate-scan every bucket against the full punctuation set (for
	// equivalence regression tests and baseline benchmarks; the grouped
	// layout is still maintained, only the probe/purge paths and their
	// cost accounting change).
	DisableStateIndex bool
	// CompactSets periodically merges not-yet-indexed punctuations whose
	// join-attribute patterns union into one pattern (e.g. runs of
	// per-key constants become one range). This keeps the punctuation
	// sets — which purge and drop-on-the-fly consult — small in long
	// runs without propagation. An extension beyond the paper; see
	// punct.Set.Compact.
	CompactSets bool
	// Instr is the observability handle (tracing + live metrics). nil
	// disables observability entirely; the hot paths then pay a single
	// nil check and zero allocations (see internal/obs).
	Instr *obs.Instr
	// Window, when positive, adds time-based sliding-window semantics on
	// top of the punctuation machinery (paper §6, "extension for
	// supporting sliding window"): a pair joins only if the older
	// tuple's timestamp is within Window of the newer one's, and expired
	// tuples are invalidated during probing — bucket order is arrival
	// order, so invalidation stops at the first in-window tuple. Window
	// mode is memory-only: it cannot be combined with a memory threshold
	// (relocation), since the window already bounds the state.
	Window stream.Time
}

func (c *Config) setDefaults() {
	if c.OutName == "" {
		c.OutName = "join"
	}
	if c.NumBuckets == 0 {
		c.NumBuckets = 64
	}
	if c.SpillA == nil {
		c.SpillA = store.NewMemSpill()
	}
	if c.SpillB == nil {
		c.SpillB = store.NewMemSpill()
	}
	if c.Thresholds.Purge == 0 && !c.DisablePurge {
		c.Thresholds.Purge = 1 // eager purge is the default strategy
	}
}

// PJoin is the punctuation-exploiting stream join operator. It
// implements op.Operator with two input ports: port 0 = stream A,
// port 1 = stream B.
type PJoin struct {
	cfg   Config
	base  *joinbase.Base
	out   op.Emitter
	reg   *event.Registry
	mon   *event.Monitor
	psets [2]*punct.Set
	attrs [2]int
	outSc *stream.Schema

	// diskPending, per side: punctuation entries whose index build ran
	// while that side's state had disk-resident tuples; their counts may
	// under-count until a disk pass indexes the disk portion, so they
	// must not propagate before then.
	diskPending [2]map[punct.PID]bool

	// purgeMark, per victim side: the largest pid of the opposite
	// punctuation set already applied by a purge run. Valid only while
	// drop-on-the-fly is active — it guarantees no tuple matching an
	// already-applied punctuation re-enters the state, so later runs
	// need only the entries above the mark (see purgeState).
	purgeMark [2]punct.PID

	// diskTask is the in-flight incremental disk pass (nil when none, or
	// when cfg.DiskChunkBytes == 0 — blocking mode). Process steps it one
	// bounded chunk per input item and OnIdle steps it per idle tick, so
	// left-over joins complete in the background.
	diskTask      *joinbase.ChunkPass
	diskTaskStart time.Time
	// propPending records that a propagation release arrived while an
	// incremental pass was in flight; the pass's completion re-runs it.
	propPending bool
	// passTrace is the provenance trace of the in-flight (or, for the
	// blocking path, current) disk pass; passIOBase / passWorkBase are
	// the I/O and work counters at pass start, passStepIO at the start
	// of the current chunk step. Maintained only when spans are on.
	passTrace    uint64
	passIOBase   passIO
	passStepIO   passIO
	passExamBase int64
	passJoinBase int64
	passStepExam int64
	passStepJoin int64
	// resultSpanBudget caps tuple_result spans per probe burst at
	// span.ResultCap; reset before each memory probe and disk-pass step.
	resultSpanBudget int
	// dropBound, per side: the largest pid in that side's punctuation
	// set when the current pass bucket opened. Disk purge only drops on
	// entries at or below the bound — see passHooks.
	dropBound [2]punct.PID
	// pendBound, per side: the largest pid when the current incremental
	// pass STARTED. Only disk-pending marks at or below it clear on the
	// pass's completion — an entry index-built mid-pass may have missed
	// disk tuples in buckets the pass had already read, so its count
	// stays untrusted until the next pass completes.
	pendBound [2]punct.PID

	obs *obs.Instr
	// lat holds the operator's latency histograms: result latency (one
	// sample per emitted result), punctuation propagation delay (one per
	// propagated punctuation) and purge-pass duration (one per purge
	// run). Always allocated — recording is lock-free atomic adds, cheap
	// enough to stay on unconditionally (see internal/obs/hist).
	lat *obs.Lat
	// lastPropTs is the arrival timestamp of the newest punctuation whose
	// propagation has been released downstream; PunctLag measures how far
	// the inputs have run ahead of it.
	lastPropTs stream.Time

	now      stream.Time
	eos      [2]bool
	finished bool
}

var (
	_ op.Operator       = (*PJoin)(nil)
	_ op.BatchProcessor = (*PJoin)(nil)
)

// New builds a PJoin with its event-listener registry configured from
// cfg (paper Table 1) and bound to out for results and propagated
// punctuations.
func New(cfg Config, out op.Emitter) (*PJoin, error) {
	if cfg.SchemaA == nil || cfg.SchemaB == nil {
		return nil, fmt.Errorf("core: PJoin needs both input schemas")
	}
	if out == nil {
		return nil, fmt.Errorf("core: PJoin needs an output emitter")
	}
	if cfg.AttrA < 0 || cfg.AttrA >= cfg.SchemaA.Width() {
		return nil, fmt.Errorf("core: join attribute A %d out of range for %s", cfg.AttrA, cfg.SchemaA)
	}
	if cfg.AttrB < 0 || cfg.AttrB >= cfg.SchemaB.Width() {
		return nil, fmt.Errorf("core: join attribute B %d out of range for %s", cfg.AttrB, cfg.SchemaB)
	}
	ka := cfg.SchemaA.FieldAt(cfg.AttrA).Kind
	kb := cfg.SchemaB.FieldAt(cfg.AttrB).Kind
	if ka != kb {
		return nil, fmt.Errorf("core: join attribute kinds differ: %s vs %s", ka, kb)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("core: negative window %d", cfg.Window)
	}
	if cfg.Window > 0 && cfg.Thresholds.MemoryBytes > 0 {
		return nil, fmt.Errorf("core: window mode is memory-only; clear Thresholds.MemoryBytes")
	}
	cfg.setDefaults()

	outSc, err := cfg.SchemaA.Concat(cfg.OutName, cfg.SchemaB)
	if err != nil {
		return nil, err
	}
	stA, err := store.NewState(cfg.SchemaA.Name(), cfg.AttrA, cfg.NumBuckets, cfg.SpillA)
	if err != nil {
		return nil, err
	}
	stB, err := store.NewState(cfg.SchemaB.Name(), cfg.AttrB, cfg.NumBuckets, cfg.SpillB)
	if err != nil {
		return nil, err
	}
	if cfg.DisableStateIndex {
		stA.SetScanFallback(true)
		stB.SetScanFallback(true)
	}

	j := &PJoin{
		cfg:   cfg,
		out:   out,
		attrs: [2]int{cfg.AttrA, cfg.AttrB},
		outSc: outSc,
		diskPending: [2]map[punct.PID]bool{
			make(map[punct.PID]bool), make(map[punct.PID]bool),
		},
		lat: obs.NewLat(),
	}
	j.base, err = joinbase.New(stA, stB, outSc, func(t *stream.Tuple) error {
		// A result's timestamp is the max of its constituents' (Tuple.Join),
		// so now − Ts is how long the older partner waited in state.
		j.lat.RecordResult(j.now, t.Ts)
		if t.Span != 0 && j.resultSpanBudget > 0 && j.obs.SpansEnabled() {
			j.resultSpanBudget--
			j.obs.Span(span.KindTupleResult, t.Span, j.now, -1, 0, 0, 0, int64(j.now-t.Ts))
		}
		return out.Emit(stream.TupleItem(t))
	})
	if err != nil {
		return nil, err
	}
	j.psets[0] = punct.NewKeyedSet(cfg.AttrA, cfg.VerifyPunctuations)
	j.psets[1] = punct.NewKeyedSet(cfg.AttrB, cfg.VerifyPunctuations)

	j.obs = cfg.Instr
	j.base.Obs = j.obs
	j.registerGauges()

	if err := j.buildRegistry(); err != nil {
		return nil, err
	}
	return j, nil
}

// registerGauges exposes the operator's live metrics through the
// attached sampler. The gauge closures read operator state directly;
// they are safe because Live runs them from this operator's own
// processing path (Instr.Tick inside Process) — see obs.Live.
func (j *PJoin) registerGauges() {
	lv := j.obs.Live()
	if lv == nil {
		return
	}
	name := j.obs.Op()
	if name == "" {
		name = j.Name()
	}
	lv.Register(name+".mem_bytes.a", func() float64 { return float64(j.base.States[0].MemBytes()) })
	lv.Register(name+".mem_bytes.b", func() float64 { return float64(j.base.States[1].MemBytes()) })
	lv.Register(name+".disk_bytes", func() float64 {
		a, b := j.StateStats()
		return float64(a.DiskBytes + b.DiskBytes)
	})
	lv.Register(name+".state_tuples", func() float64 { return float64(j.StateTuples()) })
	lv.Register(name+".bucket_skew", func() float64 {
		sk := j.base.States[0].MemBucketSkew()
		if s1 := j.base.States[1].MemBucketSkew(); s1 > sk {
			sk = s1
		}
		return sk
	})
	lv.Register(name+".mem_groups", func() float64 {
		a, b := j.StateStats()
		return float64(a.MemGroups + b.MemGroups)
	})
	lv.Register(name+".punct_lag_ms", func() float64 { return j.PunctLag().Millis() })
	// Cumulative; the output rate is its metrics.Series.Rate. tuples_in
	// and puncts_out are what the health detector's stall window watches
	// (auctiond polls LastValues — it must not read Metrics() while the
	// operator goroutine runs).
	lv.Register(name+".tuples_out", func() float64 { return float64(j.base.M.TuplesOut) })
	lv.Register(name+".tuples_in", func() float64 {
		return float64(j.base.M.TuplesIn[0] + j.base.M.TuplesIn[1])
	})
	lv.Register(name+".puncts_out", func() float64 { return float64(j.base.M.PunctsOut) })
}

// Latencies returns a snapshot of the operator's latency histograms.
// Safe to call from any goroutine while the operator runs (the
// histograms are atomic; see internal/obs/hist).
func (j *PJoin) Latencies() obs.LatSnapshot { return j.lat.Snapshot() }

// PunctLag returns how far the inputs have run ahead of the newest
// punctuation released downstream: newest input timestamp minus the
// emission timestamp of the last propagated punctuation. A steadily
// growing lag means downstream operators are starved of punctuations
// (propagation disabled, thresholds too lazy, or match counts stuck
// above zero).
func (j *PJoin) PunctLag() stream.Time { return j.now - j.lastPropTs }

// buildRegistry assembles the event-listener registry (paper Table 1)
// from the configuration.
func (j *PJoin) buildRegistry() error {
	j.reg = event.NewRegistry()

	purge := event.ListenerFunc{ID: "state-purge", Fn: func(e event.Event) error {
		side := e.Arg.(event.Side)
		if err := j.purgeState(int(side.Opposite()), e.At); err != nil {
			return err
		}
		if j.cfg.CompactSets {
			j.psets[side].Compact(j.attrs[side])
		}
		return nil
	}}
	relocate := event.ListenerFunc{ID: "state-relocation", Fn: func(e event.Event) error {
		return j.relocate(e.At)
	}}
	diskJoin := event.ListenerFunc{ID: "disk-join", Fn: func(e event.Event) error {
		return j.diskPass(e.At)
	}}
	indexBuild := event.ListenerFunc{ID: "index-build", Fn: func(e event.Event) error {
		j.indexBuild(0)
		j.indexBuild(1)
		return nil
	}}
	propagate := event.ListenerFunc{ID: "punctuation-propagation", Fn: func(e event.Event) error {
		return j.propagate(e.At)
	}}

	if !j.cfg.DisablePurge {
		if err := j.reg.Register(event.PurgeThresholdReach, nil, "purge threshold reached", purge); err != nil {
			return err
		}
	}
	if err := j.reg.Register(event.StateFull, nil, "memory threshold reached", relocate); err != nil {
		return err
	}
	if err := j.reg.Register(event.DiskJoinActivate, nil, "inputs stalled", diskJoin); err != nil {
		return err
	}
	if err := j.reg.Register(event.StreamEmpty, nil, "both inputs ended", diskJoin); err != nil {
		return err
	}

	if !j.cfg.DisablePropagation {
		// Lazy index building couples index build with propagation;
		// eager building runs on punctuation arrival instead (§3.5/§3.6).
		propListeners := []event.Listener{indexBuild, propagate}
		if j.cfg.EagerIndex {
			propListeners = []event.Listener{propagate}
		}
		for _, k := range []event.Kind{event.PropagateCountReach, event.PropagateTimeExpire, event.PropagateRequest} {
			if err := j.reg.Register(k, nil, "", propListeners...); err != nil {
				return err
			}
		}
		if err := j.reg.Register(event.StreamEmpty, nil, "both inputs ended", propListeners...); err != nil {
			return err
		}
	}

	mon, err := event.NewMonitor(j.reg, j.cfg.Thresholds)
	if err != nil {
		return err
	}
	j.mon = mon
	return nil
}

// Name implements op.Operator.
func (j *PJoin) Name() string { return "pjoin" }

// NumPorts implements op.Operator.
func (j *PJoin) NumPorts() int { return 2 }

// OutSchema implements op.Operator.
func (j *PJoin) OutSchema() *stream.Schema { return j.outSc }

// Registry exposes the event-listener registry for runtime
// reconfiguration and Table-1-style introspection.
func (j *PJoin) Registry() *event.Registry { return j.reg }

// Monitor exposes the monitor so thresholds can be changed at runtime.
func (j *PJoin) Monitor() *event.Monitor { return j.mon }

// Metrics returns the work counters accumulated so far.
func (j *PJoin) Metrics() joinbase.Metrics { return j.base.M }

// StateStats returns the size accounting of both states.
func (j *PJoin) StateStats() (a, b store.Stats) {
	return j.base.States[0].Stats(), j.base.States[1].Stats()
}

// StateTuples returns the total number of tuples currently held in the
// join state (both sides, memory + purge buffers + disk) — the metric
// the paper's memory-overhead charts plot.
func (j *PJoin) StateTuples() int {
	a, b := j.StateStats()
	return a.TotalTuples() + b.TotalTuples()
}

// PunctSetSizes returns the number of punctuations currently held per
// side (arrived but not yet propagated).
func (j *PJoin) PunctSetSizes() (a, b int) {
	return j.psets[0].Len(), j.psets[1].Len()
}

// Process implements op.Operator. Items on each port must have strictly
// increasing timestamps, and timestamps must be unique across ports (the
// executor and simulator both guarantee this); the duplicate-avoidance
// logic of the disk join relies on it.
func (j *PJoin) Process(port int, it stream.Item, now stream.Time) error {
	if err := op.ValidatePort(j.Name(), port, 2); err != nil {
		return err
	}
	if j.finished {
		return fmt.Errorf("core: pjoin: Process after Finish")
	}
	j.now = maxTime(j.now, now)
	j.obs.Tick(j.now)
	switch it.Kind {
	case stream.KindTuple:
		if err := j.processTuple(port, it.Tuple); err != nil {
			return err
		}
		return j.pumpDisk(j.now)
	case stream.KindPunct:
		if err := j.processPunct(port, it.Punct, it.Ts, it.Span); err != nil {
			return err
		}
		return j.pumpDisk(j.now)
	case stream.KindEOS:
		if j.eos[port] {
			return fmt.Errorf("core: pjoin: duplicate EOS on port %d", port)
		}
		j.eos[port] = true
		if j.eos[0] && j.eos[1] {
			return j.mon.StreamsEnded(j.now)
		}
		return nil
	default:
		return fmt.Errorf("core: pjoin: unknown item kind %v", it.Kind)
	}
}

// ProcessBatch implements op.BatchProcessor: one driver wakeup delivers
// a whole batch. Semantics are exactly per-item Process in order — the
// batch path exists so the driver amortizes its per-call overhead and
// so hot-key runs inside the batch hit the memoized probe (see
// joinbase.Base.ProbeOpposite). The probe cache is released at the
// batch boundary so it never pins purged tuples across wakeups.
func (j *PJoin) ProcessBatch(port int, items []stream.Item, now stream.Time) error {
	j.base.M.Batches++
	j.lat.RecordBatchFill(len(items))
	for _, it := range items {
		if err := j.Process(port, it, it.Ts); err != nil {
			return err
		}
	}
	j.base.InvalidateProbeCache()
	return nil
}

// processTuple is the memory join (§3.2): probe the opposite state's
// memory-resident portion, emit matches, then insert the tuple into its
// own state — unless the opposite punctuation set already rules out any
// future partner, in which case the tuple is dropped on the fly.
func (j *PJoin) processTuple(s int, t *stream.Tuple) error {
	j.base.M.TuplesIn[s]++
	j.obs.Event(obs.KindTupleIn, t.Ts, s, 0, 0)
	if err := j.mon.TupleArrived(t.Ts); err != nil {
		return err
	}
	key := t.Values[j.attrs[s]]

	if j.cfg.VerifyPunctuations && j.psets[s].SetMatchAttr(j.attrs[s], key) {
		return fmt.Errorf("core: pjoin: stream %d violates punctuation semantics: tuple %s matches an earlier punctuation",
			s, t)
	}

	// Sliding-window invalidation (§6): expire the out-of-window prefix
	// of both buckets this key touches before probing, so the probe only
	// sees in-window partners and the state stays bounded by the window.
	if j.cfg.Window > 0 && t.Ts > j.cfg.Window {
		cutoff := t.Ts - j.cfg.Window
		bucket := j.base.States[s].BucketOf(key)
		for side := 0; side < 2; side++ {
			for _, sd := range j.base.States[side].ExpireMemPrefix(bucket, cutoff) {
				j.discard(side, sd)
			}
		}
	}

	examBefore := j.base.M.Examined
	j.resultSpanBudget = span.ResultCap
	matches, err := j.base.ProbeOpposite(s, t)
	if err != nil {
		return err
	}
	j.obs.Event(obs.KindProbe, t.Ts, s, int64(matches), 0)
	if t.Span != 0 && j.obs.SpansEnabled() {
		j.obs.Span(span.KindTupleProbe, t.Span, t.Ts, s,
			int64(matches), j.base.M.Examined-examBefore, 0, 0)
	}

	// Drop-on-the-fly (§4.3): the opposite punctuation set promises no
	// future opposite tuple matches this key, so the tuple need never
	// enter the state — unless the opposite state still has
	// disk-resident tuples in this bucket, which this tuple has not yet
	// joined against; then it parks in the purge buffer until the next
	// disk pass. FirstMatchAttr (what SetMatchAttr wraps) also resolves
	// the earliest punctuation promising the exhaustion — the one span
	// tracing attributes the drop to.
	if !j.cfg.DisableDropOnTheFly && !j.cfg.DisablePurge {
		if e := j.psets[1-s].FirstMatchAttr(j.attrs[1-s], key); e != nil {
			own := j.base.States[s]
			bucket := own.BucketOf(key)
			parked := j.base.States[1-s].HasDisk(bucket)
			if parked {
				st := &store.StoredTuple{T: t, PID: punct.NoPID, DTS: store.InMemory}
				own.AddToPurgeBuffer(bucket, st, t.Ts)
			} else {
				j.base.M.DroppedOnFly++
			}
			if e.TraceID != 0 && j.obs.SpansEnabled() {
				var dropped, park int64 = 1, 0
				if parked {
					dropped, park = 0, 1
				}
				j.obs.Span(span.KindPunctDropFly, e.TraceID, t.Ts, s,
					dropped, park, int64(t.EncodedSize()), 0)
			}
			return nil
		}
	}

	if _, err := j.base.States[s].Insert(t); err != nil {
		return err
	}
	return j.mon.StateSize(j.base.States[0].MemBytes()+j.base.States[1].MemBytes(), t.Ts)
}

// processPunct records a punctuation into its side's set and lets the
// monitor fire whatever components are due (state purge, index build,
// propagation). trace is the punctuation's provenance trace if an
// upstream component (the sharded router) already allocated one; 0
// makes this operator the trace root.
func (j *PJoin) processPunct(s int, p punct.Punctuation, ts stream.Time, trace uint64) error {
	j.base.M.PunctsIn[s]++
	j.obs.Event(obs.KindPunctIn, ts, s, 0, 0)
	if p.IsEmpty() {
		// An empty punctuation matches nothing: it carries no
		// information and is dropped without counting toward thresholds.
		return nil
	}
	if p.Width() != j.schema(s).Width() {
		return fmt.Errorf("core: pjoin: punctuation %s has width %d, stream %d schema is %s",
			p, p.Width(), s, j.schema(s))
	}
	e, err := j.psets[s].Add(p)
	if err != nil {
		return err
	}
	e.ArrivedAt = int64(ts)
	if j.obs.SpansEnabled() {
		if trace == 0 {
			trace = span.NewID()
		}
		e.TraceID = trace
		j.obs.Span(span.KindPunctArrive, trace, ts, s, int64(e.PID), 0, 0, 0)
	}
	if j.cfg.EagerIndex && !j.cfg.DisablePropagation {
		j.indexBuild(s)
	}
	return j.mon.PunctArrived(event.Side(s), ts)
}

func (j *PJoin) schema(s int) *stream.Schema {
	if s == 0 {
		return j.cfg.SchemaA
	}
	return j.cfg.SchemaB
}

// purgeState applies the purge rules (eq. 1) to state `victim`: every
// tuple whose join value matches the opposite side's punctuation set is
// removed. Tuples that may still owe left-over joins against the
// opposite state's disk-resident portion go to the purge buffer instead
// of being freed (§3.1); the disk join clears them.
//
// On the indexed path, punctuations whose join pattern is a constant or
// an enumeration purge by direct key-group removal — cost O(tuples
// removed), no non-matching group is touched — while range and wildcard
// patterns fall back to an ordered scan of every bucket. With
// drop-on-the-fly active the run is also incremental: after a run, no
// state tuple matches any set entry (the run removed them and
// drop-on-the-fly keeps later matching arrivals out — the entry stays
// in the set as long as it is in force), so the next run only needs the
// entries that arrived since (purgeMark). CompactSets preserves this:
// Compact runs right after a purge run, when every entry — including
// the ones it merges into an earlier pid — is already below the fresh
// watermark. PurgeScanned counts work actually done: removed tuples on
// the direct path, full occupancy on scans — the cost model prices what
// the index saves.
func (j *PJoin) purgeState(victim int, now stream.Time) error {
	j.base.M.PurgeRuns++
	// Purge duration is wall clock: virtual time cannot advance inside
	// one operator call. Recorded at both exits; no defer closure, to
	// keep the eager-purge path allocation-light.
	purgeStart := time.Now()
	var removedRun, scannedRun int64
	pset := j.psets[1-victim] // punctuations from the opposite stream
	st := j.base.States[victim]
	opp := j.base.States[1-victim]
	attr := j.attrs[victim]
	oppAttr := j.attrs[1-victim]

	// Provenance attribution: each removed tuple is charged to the
	// earliest-arrived punctuation that exhausts its key — the entry the
	// purge logic itself reasons from (FirstMatchAttr). Shares accumulate
	// per trace across the whole run and flush as one punct_purge_mem
	// span per punctuation when the run ends. Only allocated when spans
	// are on; the untraced purge path is unchanged.
	spansOn := j.obs.SpansEnabled()
	var shares map[uint64]*purgeShare
	if spansOn {
		shares = make(map[uint64]*purgeShare)
	}
	emitPurgeSpans := func() {
		if len(shares) == 0 {
			return
		}
		d := time.Since(purgeStart).Nanoseconds()
		for tr, sh := range shares {
			j.obs.Span(span.KindPunctPurgeMem, tr, now, victim, sh.freed, sh.parked, sh.bytes, d)
		}
	}

	// finish completes the removal of one bucket's matching tuples,
	// identically on every path: park them in the purge buffer when the
	// opposite bucket still has disk-resident partners, else discard.
	finish := func(i int, removed []*store.StoredTuple) {
		if len(removed) == 0 {
			return
		}
		removedRun += int64(len(removed))
		park := opp.HasDisk(i)
		if spansOn {
			for _, sd := range removed {
				e := pset.FirstMatchAttr(oppAttr, sd.T.Values[attr])
				if e == nil || e.TraceID == 0 {
					continue
				}
				sh := shares[e.TraceID]
				if sh == nil {
					sh = &purgeShare{}
					shares[e.TraceID] = sh
				}
				if park {
					sh.parked++
				} else {
					sh.freed++
					sh.bytes += int64(sd.T.EncodedSize())
				}
			}
		}
		if park {
			for _, sd := range removed {
				st.AddToPurgeBuffer(i, sd, now)
			}
		} else {
			for _, sd := range removed {
				j.discard(victim, sd)
			}
			j.base.M.Purged += int64(len(removed))
		}
	}

	if j.cfg.DisableStateIndex {
		// Pre-index behaviour: predicate-scan every bucket against the
		// full set; the scan examines each bucket's whole occupancy.
		for i := 0; i < st.NumBuckets(); i++ {
			bucketLen := st.Bucket(i).MemLen()
			if bucketLen == 0 {
				continue
			}
			j.base.M.PurgeScanned += int64(bucketLen)
			scannedRun += int64(bucketLen)
			finish(i, st.FilterMem(i, func(sd *store.StoredTuple) bool {
				return pset.SetMatchAttr(oppAttr, sd.T.Values[attr])
			}))
		}
		emitPurgeSpans()
		j.lat.RecordPurge(time.Since(purgeStart).Nanoseconds())
		j.obs.Event(obs.KindPurge, now, victim, removedRun, scannedRun)
		return nil
	}

	after := punct.NoPID
	if !j.cfg.DisableDropOnTheFly {
		after = j.purgeMark[victim]
	}
	direct, scanEntries := pset.PurgePlan(oppAttr, after)

	if len(direct) == 1 && len(scanEntries) == 0 {
		// The dominant shape — one per-key constant punctuation under
		// eager purge — stays allocation-light: one group removal.
		bucket, removed := st.TakeKeyGroup(direct[0])
		j.base.M.PurgeScanned += int64(len(removed))
		scannedRun += int64(len(removed))
		finish(bucket, removed)
	} else if len(direct) > 0 || len(scanEntries) > 0 {
		// General shape: collect all removals per bucket, restore each
		// bucket's arrival order (groups come out key-contiguous), then
		// finish buckets in ascending order — byte-for-byte the purge
		// buffers the bucket-ordered scan would have produced.
		removedBy := make(map[int][]*store.StoredTuple)
		for _, v := range direct {
			bucket, removed := st.TakeKeyGroup(v)
			if len(removed) == 0 {
				continue
			}
			j.base.M.PurgeScanned += int64(len(removed))
			scannedRun += int64(len(removed))
			removedBy[bucket] = append(removedBy[bucket], removed...)
		}
		if len(scanEntries) > 0 {
			match := func(v value.Value) bool {
				for _, e := range scanEntries {
					if e.P.PatternAt(oppAttr).Matches(v) {
						return true
					}
				}
				return false
			}
			for i := 0; i < st.NumBuckets(); i++ {
				bucketLen := st.Bucket(i).MemLen()
				if bucketLen == 0 {
					continue
				}
				j.base.M.PurgeScanned += int64(bucketLen)
				scannedRun += int64(bucketLen)
				removed := st.FilterMem(i, func(sd *store.StoredTuple) bool {
					return match(sd.T.Values[attr])
				})
				if len(removed) > 0 {
					removedBy[i] = append(removedBy[i], removed...)
				}
			}
		}
		buckets := make([]int, 0, len(removedBy))
		for i := range removedBy {
			buckets = append(buckets, i)
		}
		sort.Ints(buckets)
		for _, i := range buckets {
			removed := removedBy[i]
			sort.Slice(removed, func(a, b int) bool { return removed[a].ATS() < removed[b].ATS() })
			finish(i, removed)
		}
	}

	if !j.cfg.DisableDropOnTheFly {
		j.purgeMark[victim] = pset.MaxPID()
	}
	emitPurgeSpans()
	j.lat.RecordPurge(time.Since(purgeStart).Nanoseconds())
	j.obs.Event(obs.KindPurge, now, victim, removedRun, scannedRun)
	return nil
}

// purgeShare accumulates one punctuation's slice of a purge run for
// provenance: tuples freed outright, tuples parked for a disk pass, and
// the bytes the freed tuples occupied (stream.Tuple.EncodedSize — the
// same measure the state's MemBytes accounting uses).
type purgeShare struct {
	freed, parked, bytes int64
}

// discard finalises a tuple's removal from the state: its punctuation's
// match count (own side's index) is decremented, possibly making that
// punctuation propagable.
func (j *PJoin) discard(side int, sd *store.StoredTuple) {
	if sd.PID == punct.NoPID {
		return
	}
	if e := j.psets[side].Get(sd.PID); e != nil && e.Count > 0 {
		e.Count--
	}
}

// indexBuild runs the punctuation index building algorithm (paper
// Fig. 3, Index-Build): tuples with a null pid are matched against the
// not-yet-indexed punctuations of their own side; matching tuples get
// that punctuation's pid and bump its count. If the state has
// disk-resident tuples, the newly indexed punctuations are marked
// disk-pending: their counts cannot be trusted until a disk pass indexes
// the disk portion.
func (j *PJoin) indexBuild(s int) {
	pending := j.psets[s].Unindexed()
	if len(pending) == 0 {
		return
	}
	st := j.base.States[s]
	scanOne := func(sd *store.StoredTuple) {
		j.base.M.IndexScanned++
		if sd.PID != punct.NoPID {
			return
		}
		for _, e := range pending {
			if e.P.Matches(sd.T.Values) {
				sd.PID = e.PID
				e.Count++
				break
			}
		}
	}
	for i := 0; i < st.NumBuckets(); i++ {
		st.Bucket(i).ForEachMem(scanOne)
		for _, sd := range st.Bucket(i).PurgeBuf {
			scanOne(sd)
		}
	}
	hasDisk := st.AnyDisk()
	for _, e := range pending {
		e.Indexed = true
		if hasDisk {
			j.diskPending[s][e.PID] = true
		}
	}
}

// indexDiskTuple assigns a pid to a disk-resident tuple that was spilled
// before its matching punctuation arrived. Called from disk passes.
func (j *PJoin) indexDiskTuple(side int, sd *store.StoredTuple) {
	if sd.PID != punct.NoPID {
		return
	}
	j.base.M.IndexScanned++
	if e := j.psets[side].FirstMatch(sd.T.Values); e != nil {
		sd.PID = e.PID
		e.Count++
	}
}

// propagate implements Propagate (paper Fig. 3, lines 16-21): release
// every indexed punctuation whose match count is zero — by Theorem 1 no
// future join result can match it — rewritten over the output schema,
// and remove it from the set. If left-over joins are still pending on
// disk or in purge buffers, a disk pass runs first (§3.2: "when
// punctuation propagation needs to finish up all the left-over joins,
// will the disk join be scheduled to run").
func (j *PJoin) propagate(now stream.Time) error {
	if j.chunked() {
		if j.diskTask != nil {
			// An incremental pass is in flight: defer the release to its
			// completion (stepDiskTask re-invokes propagate), which is
			// when the disk-pending marks clear. With no pass in flight
			// we release directly instead of forcing a blocking pass —
			// entries whose counts may under-count disk-resident tuples
			// are disk-pending and skipped below, so this is safe; the
			// next completed pass releases them.
			if !j.propPending && j.obs.SpansEnabled() {
				// Record the deferral once per in-flight pass on every
				// punctuation that would otherwise release now, so
				// pjointrace can apportion propagation delay to the pass.
				for s := 0; s < 2; s++ {
					for _, e := range j.psets[s].Propagable() {
						if e.TraceID != 0 && !j.diskPending[s][e.PID] {
							j.obs.Span(span.KindPunctDefer, e.TraceID, now, s, int64(e.PID), 1, 0, 0)
						}
					}
				}
			}
			j.propPending = true
			return nil
		}
	} else if j.base.NeedsPass() {
		if err := j.diskPass(now); err != nil {
			return err
		}
	}
	for s := 0; s < 2; s++ {
		// A disk-pending mark claims the entry's match count may miss
		// disk-resident side-s tuples. With no disk on side s such
		// misses cannot exist (passes rewrite kept tuples to disk, never
		// back to memory), so the marks are stale — drop them. Without
		// this, an entry index-built mid-pass (pid above the running
		// pass's pendBound snapshot) stays marked when that very pass
		// drains the disk: NeedsPass goes false, no pass ever runs
		// again, and the entry would never release — not even at Finish.
		if len(j.diskPending[s]) > 0 && !j.base.States[s].AnyDisk() {
			j.diskPending[s] = make(map[punct.PID]bool)
		}
		for _, e := range j.psets[s].Propagable() {
			if j.diskPending[s][e.PID] {
				if e.TraceID != 0 && j.obs.SpansEnabled() {
					j.obs.Span(span.KindPunctDefer, e.TraceID, now, s, int64(e.PID), 2, 0, 0)
				}
				continue
			}
			outP, err := j.outputPunctuation(s, e.P)
			if err != nil {
				return err
			}
			outIt := stream.PunctItem(outP, now)
			// The released punctuation keeps its provenance trace, so the
			// sharded merger (and any downstream consumer) can close the
			// lifecycle under the same trace.
			outIt.Span = e.TraceID
			if err := j.out.Emit(outIt); err != nil {
				return err
			}
			j.base.M.PunctsOut++
			j.lastPropTs = maxTime(j.lastPropTs, now)
			j.lat.RecordPunctDelay(now, stream.Time(e.ArrivedAt))
			j.obs.Event(obs.KindPropagate, now, s, 0, 0)
			if e.TraceID != 0 && j.obs.SpansEnabled() {
				j.obs.Span(span.KindPunctEmit, e.TraceID, now, s,
					int64(e.PID), 0, 0, int64(now)-e.ArrivedAt)
			}
			if j.cfg.RetainPropagated {
				e.Propagated = true
			} else {
				j.psets[s].Remove(e.PID)
			}
		}
	}
	return nil
}

// outputPunctuation rewrites a punctuation from input side s over the
// join's output schema: its patterns keep their (offset) positions and
// the other side's attributes are wildcards. This is exactly what
// Theorem 1 licenses — no future result will match the punctuation's own
// patterns. (An equi-join result also repeats the join value in the
// other side's join column, but stating that here would make the
// punctuation look like a multi-column constraint and stop conservative
// downstream operators such as group-by from exploiting it.)
func (j *PJoin) outputPunctuation(s int, p punct.Punctuation) (punct.Punctuation, error) {
	return OutputPunctuation(j.cfg.SchemaA, j.cfg.SchemaB, s, p)
}

// OutputPunctuation is the rewrite as a standalone function, shared with
// the sharded join's router (internal/parallel), which must compute the
// same output form to key its merge-alignment bookkeeping before the
// shards propagate.
func OutputPunctuation(schemaA, schemaB *stream.Schema, s int, p punct.Punctuation) (punct.Punctuation, error) {
	wa, wb := schemaA.Width(), schemaB.Width()
	pats := make([]punct.Pattern, wa+wb)
	for i := range pats {
		pats[i] = punct.Star()
	}
	off := 0
	if s == 1 {
		off = wa
	}
	for i := 0; i < p.Width(); i++ {
		pats[off+i] = p.PatternAt(i)
	}
	return punct.New(pats...)
}

// relocate is the state-relocation component (§3.3): on StateFull, spill
// the largest buckets until the memory-resident size is under the
// threshold. Before a bucket is spilled its tuples are indexed against
// the full own-side punctuation set so disk-resident tuples carry pids.
func (j *PJoin) relocate(now stream.Time) error {
	// DTS is stamped now+1: the tuples were memory-resident for every
	// probe processed at `now`, including the arrival that triggered the
	// relocation.
	return j.base.Relocate(now+1, j.mon.CurrentThresholds().MemoryBytes, func(side, bucket int) error {
		if j.cfg.DisablePropagation {
			return nil
		}
		j.base.States[side].Bucket(bucket).ForEachMem(func(sd *store.StoredTuple) {
			if sd.PID != punct.NoPID {
				return
			}
			j.base.M.IndexScanned++
			if e := j.psets[side].FirstMatch(sd.T.Values); e != nil {
				sd.PID = e.PID
				e.Count++
			}
		})
		return nil
	})
}

// chunked reports whether the disk join runs incrementally.
func (j *PJoin) chunked() bool { return j.cfg.DiskChunkBytes > 0 }

// passHooks assembles the disk-pass callbacks shared by the blocking
// and the incremental pass: discard bookkeeping, disk-tuple indexing
// (unless propagation is off) and disk purge (unless disabled).
func (j *PJoin) passHooks() joinbase.PassHooks {
	hooks := joinbase.PassHooks{
		OnDiscard: func(side int, sd *store.StoredTuple) {
			j.discard(side, sd)
		},
	}
	if !j.cfg.DisablePropagation {
		hooks.IndexDisk = j.indexDiskTuple
	}
	if !j.cfg.DisablePurge && !j.cfg.DisableDiskPurge {
		// The drop decision is bounded by the punctuations present when
		// the bucket opened (dropBound, captured in OnBucketOpen): an
		// incremental pass's finalise runs after arrivals have
		// interleaved with the bucket, and a punctuation that arrived
		// mid-pass may still owe left-over joins between the disk tuples
		// it matches and tuples parked after the bucket's snapshot —
		// those pairs are the next pass's job, so the next pass is also
		// the earliest allowed to drop the disk side of them.
		// FirstMatchAttr returns the earliest-arrived matching entry, so
		// comparing its pid against the bound is exact. For the blocking
		// pass nothing can interleave and the bound is vacuous.
		hooks.OnBucketOpen = func() {
			j.dropBound[0] = j.psets[0].MaxPID()
			j.dropBound[1] = j.psets[1].MaxPID()
		}
		hooks.DropDisk = func(side int, sd *store.StoredTuple) bool {
			e := j.psets[1-side].FirstMatchAttr(j.attrs[1-side], sd.T.Values[j.attrs[side]])
			drop := e != nil && e.PID <= j.dropBound[1-side]
			if drop && e.TraceID != 0 && j.obs.SpansEnabled() {
				j.obs.Span(span.KindPunctPurgeDisk, e.TraceID, j.now, side,
					1, 0, int64(sd.T.EncodedSize()), 0)
			}
			return drop
		}
	}
	return hooks
}

// diskPass is the disk-join component (§3.2): it finishes every
// left-over join that state relocation caused, clears the purge
// buffers, purges disk-resident tuples that match the opposite
// punctuation set, and completes the punctuation index over the disk
// portion (clearing disk-pending entries). In chunked mode the call
// advances the background task by one bounded step instead of running
// the whole pass.
func (j *PJoin) diskPass(now stream.Time) error {
	if j.chunked() {
		return j.stepDiskTask(now)
	}
	if !j.base.NeedsPass() {
		return nil
	}
	start := time.Now()
	j.beginPassTrace(now, false)
	if err := j.base.DiskPass(now, j.passHooks()); err != nil {
		return err
	}
	wall := time.Since(start).Nanoseconds()
	j.lat.RecordDiskPass(wall)
	j.endPassTrace(now, wall)
	j.passComplete()
	return nil
}

// passIO is the spill-side traffic picture a pass trace attributes:
// read operations (seeks + chunk continuations), spill-cache hits and
// bytes actually read (post-cache), summed over both states.
type passIO struct {
	reads, hits, bytes int64
}

func (j *PJoin) passIOSnapshot() passIO {
	var p passIO
	for s := 0; s < 2; s++ {
		st := j.base.States[s]
		if io, err := st.IOStats(); err == nil {
			p.reads += io.ReadOps + io.ChunkReads
			p.bytes += io.BytesRead
		}
		p.hits += st.SpillCacheStats().Hits
	}
	return p
}

// beginPassTrace opens a provenance trace for a disk pass; chunked
// marks it resumable (pass_start N = 1). No-op with spans disabled, so
// call sites stay unconditional (spanpair pairs them on all paths).
//
//pjoin:span begin pass
func (j *PJoin) beginPassTrace(now stream.Time, chunked bool) {
	if !j.obs.SpansEnabled() {
		return
	}
	j.passTrace = span.NewID()
	j.passIOBase = j.passIOSnapshot()
	j.passExamBase = j.base.M.DiskExamined
	j.passJoinBase = j.base.M.DiskJoins
	var n int64
	if chunked {
		n = 1
	}
	j.obs.Span(span.KindPassStart, j.passTrace, now, -1, n, 0, 0, 0)
}

// endPassTrace closes a pass trace: one pass_io span attributing the
// spill/cache traffic the pass caused, one pass_end span with the
// pass's work totals and wall time. No-op with spans disabled.
//
//pjoin:span end pass
func (j *PJoin) endPassTrace(now stream.Time, wall int64) {
	if !j.obs.SpansEnabled() {
		return
	}
	io := j.passIOSnapshot()
	j.obs.Span(span.KindPassIO, j.passTrace, now, -1,
		io.reads-j.passIOBase.reads, io.hits-j.passIOBase.hits,
		io.bytes-j.passIOBase.bytes, 0)
	j.obs.Span(span.KindPassEnd, j.passTrace, now, -1,
		j.base.M.DiskExamined-j.passExamBase, j.base.M.DiskJoins-j.passJoinBase,
		io.bytes-j.passIOBase.bytes, wall)
}

// passComplete runs once a disk pass — blocking or chunked — finished:
// the pass read and indexed every disk-resident tuple, so punctuation
// match counts are complete again.
func (j *PJoin) passComplete() {
	for s := 0; s < 2; s++ {
		if len(j.diskPending[s]) > 0 {
			j.diskPending[s] = make(map[punct.PID]bool)
		}
	}
}

// stepDiskTask advances the incremental disk pass by one bounded step,
// starting a fresh pass first if none is in flight and the state has
// left-over work. On pass completion it clears the disk-pending marks
// and re-runs any propagation release that was deferred mid-pass.
func (j *PJoin) stepDiskTask(now stream.Time) error {
	spansOn := j.obs.SpansEnabled()
	if j.diskTask == nil {
		if !j.base.NeedsPass() {
			return nil
		}
		j.diskTask = j.base.StartChunkPass(j.passHooks(), j.cfg.DiskChunkBytes)
		j.diskTaskStart = time.Now()
		j.pendBound[0] = j.psets[0].MaxPID()
		j.pendBound[1] = j.psets[1].MaxPID()
		j.beginPassTrace(now, true)
	}
	if spansOn {
		j.passStepIO = j.passIOSnapshot()
		j.passStepExam = j.base.M.DiskExamined
		j.passStepJoin = j.base.M.DiskJoins
	}
	start := time.Now()
	j.resultSpanBudget = span.ResultCap
	done, err := j.diskTask.Step(now)
	if err != nil {
		j.diskTask = nil
		return err
	}
	stepWall := time.Since(start).Nanoseconds()
	if spansOn {
		// One pass_chunk span per resumable step, so pjointrace can show
		// how a pass's work spread across event-loop pumps.
		io := j.passIOSnapshot()
		j.obs.Span(span.KindPassChunk, j.passTrace, now, -1,
			j.base.M.DiskExamined-j.passStepExam, j.base.M.DiskJoins-j.passStepJoin,
			io.bytes-j.passStepIO.bytes, stepWall)
	}
	if !done {
		j.lat.RecordDiskChunk(stepWall)
		//pjoin:allow spanpair a resumable pass stays open across steps by design; the completing step closes it, EOS-close covers aborts
		return nil
	}
	j.diskTask = nil
	passWall := time.Since(j.diskTaskStart).Nanoseconds()
	j.lat.RecordDiskPass(passWall)
	j.endPassTrace(now, passWall)
	// Only marks present when the pass started are provably complete:
	// an entry index-built mid-pass may have missed disk tuples in
	// buckets the pass had already read past (see pendBound).
	for s := 0; s < 2; s++ {
		for pid := range j.diskPending[s] {
			if pid <= j.pendBound[s] {
				delete(j.diskPending[s], pid)
			}
		}
	}
	if j.propPending {
		j.propPending = false
		j.indexBuild(0)
		j.indexBuild(1)
		return j.propagate(now)
	}
	return nil
}

// pumpDisk gives the incremental disk pass one step of background
// progress; Process calls it after every input item. Free in blocking
// mode and when there is no left-over work.
func (j *PJoin) pumpDisk(now stream.Time) error {
	if !j.chunked() {
		return nil
	}
	if j.diskTask == nil && !j.base.NeedsPass() {
		return nil
	}
	return j.stepDiskTask(now)
}

// drainDiskTask steps the in-flight incremental pass to completion.
func (j *PJoin) drainDiskTask(now stream.Time) error {
	for j.diskTask != nil {
		if err := j.stepDiskTask(now); err != nil {
			return err
		}
	}
	return nil
}

// OnIdle implements op.Operator: it informs the monitor that the inputs
// are stalled, which fires DiskJoinActivate once the activation
// threshold elapses (§3.2's reactive scheduling).
func (j *PJoin) OnIdle(now stream.Time) (bool, error) {
	j.now = maxTime(j.now, now)
	if j.chunked() {
		// One chunk of background progress per idle tick; "worked" means
		// a chunk actually executed, so the driver keeps ticking while
		// left-over work remains.
		before := j.base.M.DiskChunks
		if err := j.mon.Idle(j.now); err != nil {
			return false, err
		}
		if err := j.pumpDisk(j.now); err != nil {
			return false, err
		}
		return j.base.M.DiskChunks > before, nil
	}
	before := j.base.M.DiskPasses
	if err := j.mon.Idle(j.now); err != nil {
		return false, err
	}
	return j.base.M.DiskPasses > before, nil
}

// RequestPropagation serves the pull propagation mode (§3.5): a
// downstream operator asks for whatever punctuations are propagable.
func (j *PJoin) RequestPropagation(now stream.Time) error {
	j.now = maxTime(j.now, now)
	return j.mon.RequestPropagation(j.now)
}

// Finish implements op.Operator: after both inputs ended, any remaining
// left-over joins are completed, propagable punctuations are released
// (the StreamEmpty listeners have already run from Process), and EOS is
// forwarded.
func (j *PJoin) Finish(now stream.Time) error {
	if j.finished {
		return fmt.Errorf("core: pjoin: double Finish")
	}
	if !j.eos[0] || !j.eos[1] {
		return fmt.Errorf("core: pjoin: Finish before EOS on both ports")
	}
	j.now = maxTime(j.now, now)
	if !j.cfg.DisablePurge && j.cfg.RetainPropagated {
		// One last purge run per side before the final disk pass: the
		// lazy purge threshold may not have fired since the last
		// punctuations arrived, leaving purgeable tuples in memory and
		// their punctuations' match counts above zero. Without this the
		// set propagated below depends on whether memory pressure
		// happened to relocate those tuples to disk (where the final
		// pass purges them) — i.e. on thresholds, not on stream
		// content. The differential oracle holds the propagated
		// multiset schedule-independent across the config matrix.
		//
		// Gated on RetainPropagated: only a retained set has
		// schedule-independent purge power (see the Config comment).
		// With removal-on-propagation, an entry whose own-side state
		// is already clean propagates — and vanishes — the moment it
		// arrives, before any purge can apply it to the opposite
		// state, and *when* that happens differs between blocking and
		// deferred (chunked) schedules; a final purge would amplify
		// that difference into divergent propagation at Finish.
		for victim := 0; victim < 2; victim++ {
			if err := j.purgeState(victim, j.now); err != nil {
				return err
			}
		}
	}
	if !j.cfg.DisablePropagation {
		// Index punctuations that arrived since the last build BEFORE
		// the final pass: the pass completes their match counts over the
		// disk-resident portion and its completion clears their
		// disk-pending marks. Indexing after the pass would leave fresh
		// entries marked pending with no pass left to run, so the
		// release below would skip them — while a schedule whose pass
		// happened to start later releases them (caught by the
		// differential oracle as a blocking/chunked divergence).
		j.indexBuild(0)
		j.indexBuild(1)
	}
	if j.chunked() {
		// Complete any in-flight incremental pass, then run one final
		// pass to completion — the same single pass the blocking path
		// runs here.
		if err := j.drainDiskTask(j.now); err != nil {
			return err
		}
		if j.base.NeedsPass() {
			if err := j.stepDiskTask(j.now); err != nil {
				return err
			}
			if err := j.drainDiskTask(j.now); err != nil {
				return err
			}
		}
	} else if err := j.diskPass(j.now); err != nil {
		return err
	}
	if !j.cfg.DisablePropagation {
		if err := j.propagate(j.now); err != nil {
			return err
		}
	}
	if j.obs.SpansEnabled() {
		// Close the lifecycle of every punctuation that never propagated
		// (propagation disabled, count still positive, or disk-pending at
		// the end) so no trace dangles: pjointrace treats punct_eos_close
		// as an administrative terminal.
		for s := 0; s < 2; s++ {
			for _, e := range j.psets[s].Entries() {
				if e.TraceID != 0 && !e.Propagated {
					j.obs.Span(span.KindPunctEOSClose, e.TraceID, j.now, s, int64(e.PID), 0, 0, 0)
				}
			}
		}
	}
	j.finished = true
	j.base.InvalidateProbeCache()
	if lv := j.obs.Live(); lv != nil {
		lv.Flush(j.now) // final sample so the series ends at the run's last state
	}
	return j.out.Emit(stream.EOSItem(j.now))
}

func maxTime(a, b stream.Time) stream.Time {
	if a > b {
		return a
	}
	return b
}
