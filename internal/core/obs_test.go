package core

import (
	"errors"
	"testing"

	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// obsConfig is a configuration that exercises every traced path: eager
// purge, propagation, and a memory threshold low enough that the bulk
// phase of the workload forces state relocation (and therefore a disk
// pass at the end).
func obsConfig(rec obs.Tracer) Config {
	cfg := defaultConfig()
	cfg.Instr = obs.NewInstr(rec, nil, "pjoin")
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	cfg.Thresholds.MemoryBytes = 256
	return cfg
}

// obsWorkload grows the state first (tuples only, so relocation fires),
// then punctuates every key on both sides (purge runs, left-over joins
// park in purge buffers, propagation becomes possible).
func obsWorkload() []feedItem {
	var items []feedItem
	ts := stream.Time(1)
	for k := int64(0); k < 30; k++ {
		items = append(items, tupA(k, "a", ts))
		ts++
		items = append(items, tupB(k, "b", ts))
		ts++
	}
	for k := int64(0); k < 30; k++ {
		items = append(items, punctFor(0, k, ts))
		ts++
		items = append(items, punctFor(1, k, ts))
		ts++
	}
	return items
}

// TestObsEventsReconcileWithMetrics is the trace/metrics consistency
// contract: every counted state transition emits exactly one event, so
// an offline trace analysis reaches the same totals as the operator's
// own counters.
func TestObsEventsReconcileWithMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	j, err := New(obsConfig(rec), &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, j, obsWorkload())

	m := j.Metrics()
	// The workload must actually reach the spill and propagation paths,
	// or the reconciliation below is vacuous.
	if m.Relocations == 0 || m.DiskPasses == 0 || m.PurgeRuns == 0 || m.PunctsOut == 0 {
		t.Fatalf("workload missed a traced path: %+v", m)
	}
	checks := []struct {
		kind obs.Kind
		want int64
	}{
		{obs.KindTupleIn, m.TuplesIn[0] + m.TuplesIn[1]},
		{obs.KindProbe, m.TuplesIn[0] + m.TuplesIn[1]},
		{obs.KindPunctIn, m.PunctsIn[0] + m.PunctsIn[1]},
		{obs.KindPurge, m.PurgeRuns},
		{obs.KindPropagate, m.PunctsOut},
		{obs.KindRelocate, m.Relocations},
		{obs.KindDiskPass, m.DiskPasses},
	}
	for _, c := range checks {
		if got := rec.Count(c.kind); got != c.want {
			t.Errorf("%v events: got %d, want %d", c.kind, got, c.want)
		}
	}
	// Purge work totals must reconcile too, not just run counts.
	var removed, scanned int64
	for _, e := range rec.Events() {
		if e.Kind == obs.KindPurge {
			removed += e.N
			scanned += e.M
		}
	}
	if scanned != m.PurgeScanned {
		t.Errorf("purge events scanned %d tuples, metrics say %d", scanned, m.PurgeScanned)
	}
	// Event N counts memory removals only; Metrics.Purged additionally
	// counts disk-pass drops, so it can only be larger.
	if removed == 0 || removed > m.Purged {
		t.Errorf("purge events removed %d tuples, metrics purged %d (want 0 < removed <= purged)", removed, m.Purged)
	}
}

// TestPunctLag checks the punctuation-lag gauge source: before any
// propagation the lag is the full stream time; after the final
// propagation it collapses to now - lastPropagation.
func TestPunctLag(t *testing.T) {
	j, err := New(obsConfig(obs.NewRecorder()), &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	items := obsWorkload()
	mid := items[:len(items)/2]
	var last stream.Time
	for _, fi := range mid {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatalf("Process: %v", err)
		}
		last = fi.item.Ts
	}
	if got := j.PunctLag(); got != last {
		t.Errorf("lag before any propagation: got %v, want full elapsed time %v", got, last)
	}
	for _, fi := range items[len(items)/2:] {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatalf("Process: %v", err)
		}
		last = fi.item.Ts
	}
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatalf("EOS: %v", err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if j.Metrics().PunctsOut == 0 {
		t.Fatal("workload propagated nothing")
	}
	if got := j.PunctLag(); got < 0 || got >= last {
		t.Errorf("lag after propagation: got %v, want small non-negative (< %v)", got, last)
	}
}

// TestSpillAppendErrorSurfaces proves a failing spill device during
// state relocation surfaces as a Process error (not a panic, not silent
// state corruption) and is recorded as a spill-error trace event.
func TestSpillAppendErrorSurfaces(t *testing.T) {
	rec := obs.NewRecorder()
	boom := errors.New("disk gone")
	cfg := obsConfig(rec)
	cfg.SpillA = store.NewFaultSpill(store.NewMemSpill(), store.FaultAppend, 1, boom)
	cfg.SpillB = store.NewFaultSpill(store.NewMemSpill(), store.FaultAppend, 1, boom)
	j, err := New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	var procErr error
	for _, fi := range obsWorkload() {
		if procErr = j.Process(fi.port, fi.item, fi.item.Ts); procErr != nil {
			break
		}
	}
	if !errors.Is(procErr, boom) {
		t.Fatalf("Process error: got %v, want injected %v", procErr, boom)
	}
	if n := rec.Count(obs.KindSpillError); n == 0 {
		t.Error("no spill-error event recorded")
	}
}

// TestSpillReadErrorSurfaces proves a read failure during the disk-join
// pass surfaces from Finish and is traced.
func TestSpillReadErrorSurfaces(t *testing.T) {
	rec := obs.NewRecorder()
	boom := errors.New("unreadable sector")
	cfg := obsConfig(rec)
	cfg.SpillA = store.NewFaultSpill(store.NewMemSpill(), store.FaultRead, 1, boom)
	cfg.SpillB = store.NewFaultSpill(store.NewMemSpill(), store.FaultRead, 1, boom)
	j, err := New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	var last stream.Time
	var runErr error
	for _, fi := range obsWorkload() {
		if runErr = j.Process(fi.port, fi.item, fi.item.Ts); runErr != nil {
			break
		}
		last = fi.item.Ts
	}
	if runErr == nil {
		for port := 0; port < 2; port++ {
			last++
			if runErr = j.Process(port, stream.EOSItem(last), last); runErr != nil {
				break
			}
		}
	}
	if runErr == nil {
		runErr = j.Finish(last + 1)
	}
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error: got %v, want injected %v", runErr, boom)
	}
	if n := rec.Count(obs.KindSpillError); n == 0 {
		t.Error("no spill-error event recorded")
	}
}
