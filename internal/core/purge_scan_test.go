package core

import (
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestTargetedPurgeScansOnlyMatches pins the indexed purge's cost claim:
// a constant punctuation resolves to one group removal, so PurgeScanned
// grows by the number of tuples REMOVED, not by the bucket occupancy the
// pre-index scan walked. Range punctuations still scan (the fallback the
// cost model prices), and DisableStateIndex restores the old accounting
// everywhere.
func TestTargetedPurgeScansOnlyMatches(t *testing.T) {
	build := func(disableIndex bool) *PJoin {
		cfg := defaultConfig()
		cfg.NumBuckets = 1 // every key in one bucket: scans cost full occupancy
		cfg.Thresholds.Purge = 1
		cfg.DisableStateIndex = disableIndex
		j, err := New(cfg, &op.Collector{})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	fill := func(j *PJoin) stream.Time {
		ts := stream.Time(0)
		for k := int64(0); k < 10; k++ {
			ts++
			if err := j.Process(1, tupB(k, "b", ts).item, ts); err != nil {
				t.Fatal(err)
			}
		}
		return ts
	}

	j := build(false)
	ts := fill(j)

	// Constant punctuation from A for key 3: the B group is removed
	// directly; the other nine tuples are not examined.
	ts++
	if err := j.Process(0, punctFor(0, 3, ts).item, ts); err != nil {
		t.Fatal(err)
	}
	m := j.Metrics()
	if m.Purged != 1 {
		t.Fatalf("Purged = %d, want 1", m.Purged)
	}
	if m.PurgeScanned != 1 {
		t.Errorf("PurgeScanned after constant punctuation = %d, want 1 (removed tuple only)", m.PurgeScanned)
	}

	// Range punctuation covering keys 5..7: no direct resolution, the
	// purge scans the remaining 9-tuple bucket.
	ts++
	rng := feedItem{0, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.MustRange(value.Int(5), value.Int(7))), ts)}
	if err := j.Process(0, rng.item, ts); err != nil {
		t.Fatal(err)
	}
	m = j.Metrics()
	if m.Purged != 4 {
		t.Fatalf("Purged = %d, want 4", m.Purged)
	}
	if got := m.PurgeScanned - 1; got != 9 {
		t.Errorf("range punctuation scanned %d, want 9 (full occupancy)", got)
	}

	// The pre-index fallback pays occupancy even for the constant case.
	j = build(true)
	ts = fill(j)
	ts++
	if err := j.Process(0, punctFor(0, 3, ts).item, ts); err != nil {
		t.Fatal(err)
	}
	m = j.Metrics()
	if m.Purged != 1 {
		t.Fatalf("fallback Purged = %d, want 1", m.Purged)
	}
	if m.PurgeScanned != 10 {
		t.Errorf("fallback PurgeScanned = %d, want 10 (full scan)", m.PurgeScanned)
	}
}
