package core

import (
	"testing"

	"pjoin/internal/event"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// TestNoPropagationWhileMatchingTupleOnDisk exercises the subtle
// interaction between relocation and Theorem 1: a punctuation whose
// matching tuples sit on disk must not propagate — its count only
// becomes trustworthy once a disk pass has indexed the disk-resident
// portion, and it only reaches zero once those tuples are actually
// purged.
func TestNoPropagationWhileMatchingTupleOnDisk(t *testing.T) {
	cfg := defaultConfig()
	cfg.NumBuckets = 1
	sink := &op.Collector{}
	j, err := New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	// a1 arrives and is relocated to disk before any punctuation exists,
	// so it reaches disk with a null pid.
	fi := tupA(1, "a1", 1)
	if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
		t.Fatal(err)
	}
	if _, err := j.base.States[0].SpillBucket(0, 2); err != nil {
		t.Fatal(err)
	}

	// A punctuates key 1. Index build (triggered by the propagation
	// request below) scans only memory — a1 is invisible, so without the
	// disk machinery the count would be 0 and the punctuation would leak
	// out in violation of Theorem 1.
	if err := j.Process(0, punctFor(0, 1, 3).item, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.RequestPropagation(4); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Puncts()); got != 0 {
		t.Fatalf("punctuation propagated while its tuple is on disk (%d)", got)
	}
	// The propagation attempt ran a disk pass, which indexed a1: the
	// punctuation's count is now 1.
	a, _ := j.StateStats()
	if a.DiskTuples != 1 {
		t.Fatalf("a1 should still be on disk: %+v", a)
	}

	// B punctuates key 1: a1 becomes purgeable, but disk purge is lazy.
	if err := j.Process(1, punctFor(1, 1, 5).item, 5); err != nil {
		t.Fatal(err)
	}
	// The next propagation runs a disk pass, purges a1 from disk
	// (decrementing the count to zero) and can then release BOTH
	// punctuations.
	if err := j.RequestPropagation(6); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Puncts()); got != 2 {
		t.Fatalf("propagated %d punctuations, want 2", got)
	}
	if got := j.StateTuples(); got != 0 {
		t.Errorf("state = %d at end", got)
	}
	aSet, bSet := j.PunctSetSizes()
	if aSet != 0 || bSet != 0 {
		t.Errorf("punctuation sets not drained: %d, %d", aSet, bSet)
	}
}

// TestEagerIndexCountsOnArrival verifies the eager index-building mode:
// counts are maintained as punctuations arrive, so a propagation request
// can be served without a separate index-build step.
func TestEagerIndexCountsOnArrival(t *testing.T) {
	cfg := defaultConfig()
	cfg.EagerIndex = true
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		tupA(1, "a1", 1),
		tupA(1, "a2", 2),
		punctFor(0, 1, 3), // eagerly indexed: count = 2 immediately
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	e := j.psets[0].Entries()[0]
	if !e.Indexed || e.Count != 2 {
		t.Fatalf("eager index: Indexed=%v Count=%d, want true/2", e.Indexed, e.Count)
	}
	// Purge both via B's punctuation; count drains to 0.
	if err := j.Process(1, punctFor(1, 1, 4).item, 4); err != nil {
		t.Fatal(err)
	}
	if e.Count != 0 {
		t.Fatalf("count after purge = %d", e.Count)
	}
	if err := j.RequestPropagation(5); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Puncts()); got != 2 {
		t.Errorf("propagated %d, want 2", got)
	}
}

// TestLazyIndexDefersScans verifies that in lazy mode nothing is indexed
// until a propagation trigger fires.
func TestLazyIndexDefersScans(t *testing.T) {
	cfg := defaultConfig() // lazy index by default
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		tupA(1, "a1", 1),
		punctFor(0, 1, 2),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	e := j.psets[0].Entries()[0]
	if e.Indexed {
		t.Fatal("lazy mode indexed on arrival")
	}
	if m := j.Metrics(); m.IndexScanned != 0 {
		t.Fatalf("IndexScanned = %d before any propagation trigger", m.IndexScanned)
	}
	if err := j.RequestPropagation(3); err != nil {
		t.Fatal(err)
	}
	if !e.Indexed || e.Count != 1 {
		t.Errorf("after pull: Indexed=%v Count=%d", e.Indexed, e.Count)
	}
}

// TestRuntimeReconfiguration exercises §3.6's claim that the registry
// and thresholds can be changed while the join runs: the purge strategy
// switches from lazy to eager mid-stream, and the purge component can be
// unplugged entirely.
func TestRuntimeReconfiguration(t *testing.T) {
	cfg := defaultConfig()
	cfg.Thresholds.Purge = 100 // start very lazy
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	var ts stream.Time
	feed := func(fi feedItem) {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 10; k++ {
		ts++
		feed(tupB(k, "b", ts))
		ts++
		feed(punctFor(0, k, ts))
	}
	if got := j.StateTuples(); got != 10 {
		t.Fatalf("lazy threshold purged early: state = %d", got)
	}
	// Switch to eager purge at runtime.
	th := j.Monitor().CurrentThresholds()
	th.Purge = 1
	j.Monitor().SetThresholds(th)
	ts++
	feed(punctFor(0, 10, ts)) // any punctuation now triggers a purge
	if got := j.StateTuples(); got != 0 {
		t.Fatalf("eager purge after reconfiguration left state = %d", got)
	}
	// Unplug the purge component from the registry entirely: further
	// punctuations stop purging.
	if !j.Registry().Unregister(event.PurgeThresholdReach, "state-purge") {
		t.Fatal("state-purge listener not found")
	}
	ts++
	feed(tupB(50, "b", ts))
	ts++
	feed(punctFor(0, 50, ts))
	if got := j.StateTuples(); got != 1 {
		t.Errorf("unplugged purge still ran: state = %d", got)
	}
}
