package core

import (
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// Equivalence regression for the incremental disk join: a PJoin whose
// disk passes run as chunked background tasks (DiskChunkBytes > 0) must
// emit exactly the result multiset and punctuation count of one whose
// passes block, in both state-index regimes. The chunk budget is tiny
// (512 bytes) so a single pass spans many steps and the task is
// routinely in flight while tuples, punctuations, purges and further
// relocations interleave with it — the exactly-once argument of
// joinbase.ChunkPass under real traffic.
//
// Counters that only reflect *when* left-over work ran (DiskExamined,
// DiskPasses, DiskChunks, Purged, DroppedOnFly, IndexScanned,
// PurgeScanned) legitimately differ between the two schedules; the
// stable set below must not.
func TestChunkedBlockingEquivalence(t *testing.T) {
	for _, ec := range equivCases() {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			for _, disableIndex := range []bool{false, true} {
				for seed := uint64(1); seed <= 3; seed++ {
					gcfg := gen.Config{
						Seed:     seed,
						Duration: 1500 * stream.Millisecond,
						A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
						B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 25, Batched: ec.batched},
					}
					arrs, err := gen.Synthetic(gcfg)
					if err != nil {
						t.Fatal(err)
					}

					build := func(chunkBytes int) (*PJoin, *op.Collector) {
						sink := &op.Collector{}
						cfg := Config{
							SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
							AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
						}
						ec.mutate(&cfg)
						cfg.DisableStateIndex = disableIndex
						cfg.DiskChunkBytes = chunkBytes
						j, err := New(cfg, sink)
						if err != nil {
							t.Fatal(err)
						}
						return j, sink
					}
					blocking, outBlk := build(0)
					chunked, outChk := build(512)
					driveEquiv(t, blocking, arrs)
					driveEquiv(t, chunked, arrs)

					diffMultisets(t, multiset(outChk.Tuples()), multiset(outBlk.Tuples()))
					if gb, gc := len(outBlk.Puncts()), len(outChk.Puncts()); gb != gc {
						t.Errorf("index=%v seed %d: propagated %d puncts blocking vs %d chunked",
							!disableIndex, seed, gb, gc)
					}
					mb, mc := blocking.Metrics(), chunked.Metrics()
					type stable struct {
						tuplesInA, tuplesInB   int64
						punctsInA, punctsInB   int64
						tuplesOut, punctsOut   int64
						relocations, spilledTu int64
					}
					sb := stable{mb.TuplesIn[0], mb.TuplesIn[1], mb.PunctsIn[0], mb.PunctsIn[1],
						mb.TuplesOut, mb.PunctsOut, mb.Relocations, mb.SpilledTuples}
					sc := stable{mc.TuplesIn[0], mc.TuplesIn[1], mc.PunctsIn[0], mc.PunctsIn[1],
						mc.TuplesOut, mc.PunctsOut, mc.Relocations, mc.SpilledTuples}
					if sb != sc {
						t.Errorf("index=%v seed %d: stable counters diverge\nblocking: %+v\nchunked:  %+v",
							!disableIndex, seed, sb, sc)
					}
					// A tiny budget over a relocating run must actually have
					// exercised the incremental machinery.
					if mc.Relocations > 0 && mc.DiskChunks == 0 {
						t.Errorf("index=%v seed %d: relocating chunked run executed no chunks", !disableIndex, seed)
					}
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}
