package core

import (
	"fmt"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// NaryPJoin is the n-ary extension of PJoin sketched in the paper's §6:
// an n-input hash equi-join on one attribute per stream, where a
// punctuation from stream i lets the operator purge tuples from the
// other n-1 states and drop covered arrivals on the fly.
//
// The purge condition is the sound generalisation of eq. 1 implemented
// by deadValue: a tuple is useless once no future result can contain it,
// which refines the paper's sketch ("purge the states of all other n-1
// streams") with the state-emptiness condition that makes it safe.
//
// NaryPJoin is memory-only (no relocation/disk join) and uses eager
// purge; it exists to demonstrate the extension, not to replace the
// binary operator.
type NaryPJoin struct {
	schemas []*stream.Schema
	attrs   []int
	outSc   *stream.Schema
	out     op.Emitter

	// Per stream: join value -> stored tuples (with pid for counts).
	tables []map[value.Value][]*naryTuple
	sizes  []int
	psets  []*punct.Set

	eos      []bool
	eosSeen  int
	finished bool
	now      stream.Time

	// Metrics.
	resultsOut int64
	punctsOut  int64
	purged     int64
	droppedFly int64
}

type naryTuple struct {
	t   *stream.Tuple
	pid punct.PID
}

var _ op.Operator = (*NaryPJoin)(nil)

// NewNary builds an n-ary PJoin over the given schemas joining on the
// given attribute of each (len(schemas) == len(attrs) >= 2; all join
// attributes must share one kind).
func NewNary(schemas []*stream.Schema, attrs []int, out op.Emitter) (*NaryPJoin, error) {
	if len(schemas) < 2 {
		return nil, fmt.Errorf("core: nary: need at least 2 inputs, got %d", len(schemas))
	}
	if len(attrs) != len(schemas) {
		return nil, fmt.Errorf("core: nary: %d schemas but %d attributes", len(schemas), len(attrs))
	}
	if out == nil {
		return nil, fmt.Errorf("core: nary: output emitter required")
	}
	var kind value.Kind
	for i, sc := range schemas {
		if sc == nil {
			return nil, fmt.Errorf("core: nary: schema %d is nil", i)
		}
		if attrs[i] < 0 || attrs[i] >= sc.Width() {
			return nil, fmt.Errorf("core: nary: attribute %d out of range for %s", attrs[i], sc)
		}
		k := sc.FieldAt(attrs[i]).Kind
		if i == 0 {
			kind = k
		} else if k != kind {
			return nil, fmt.Errorf("core: nary: join attribute kinds differ: %s vs %s", kind, k)
		}
	}
	outSc := schemas[0]
	var err error
	for i := 1; i < len(schemas); i++ {
		outSc, err = outSc.Concat("join", schemas[i])
		if err != nil {
			return nil, err
		}
	}
	n := len(schemas)
	j := &NaryPJoin{
		schemas: schemas,
		attrs:   append([]int(nil), attrs...),
		outSc:   outSc,
		out:     out,
		tables:  make([]map[value.Value][]*naryTuple, n),
		sizes:   make([]int, n),
		psets:   make([]*punct.Set, n),
		eos:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		j.tables[i] = make(map[value.Value][]*naryTuple)
		j.psets[i] = punct.NewKeyedSet(attrs[i], false)
	}
	return j, nil
}

// Name implements op.Operator.
func (j *NaryPJoin) Name() string { return fmt.Sprintf("pjoin%d", len(j.schemas)) }

// NumPorts implements op.Operator.
func (j *NaryPJoin) NumPorts() int { return len(j.schemas) }

// OutSchema implements op.Operator.
func (j *NaryPJoin) OutSchema() *stream.Schema { return j.outSc }

// StateTuples returns the total stored tuples across all states.
func (j *NaryPJoin) StateTuples() int {
	total := 0
	for _, n := range j.sizes {
		total += n
	}
	return total
}

// Purged returns the number of tuples removed by punctuation purges.
func (j *NaryPJoin) Purged() int64 { return j.purged }

// DroppedOnFly returns the number of arrivals never stored.
func (j *NaryPJoin) DroppedOnFly() int64 { return j.droppedFly }

// ResultsOut returns the number of join results emitted.
func (j *NaryPJoin) ResultsOut() int64 { return j.resultsOut }

// Process implements op.Operator.
func (j *NaryPJoin) Process(port int, it stream.Item, now stream.Time) error {
	if err := op.ValidatePort(j.Name(), port, len(j.schemas)); err != nil {
		return err
	}
	if j.finished {
		return fmt.Errorf("core: nary: Process after Finish")
	}
	if now > j.now {
		j.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		return j.processTuple(port, it.Tuple)
	case stream.KindPunct:
		return j.processPunct(port, it.Punct, it.Ts)
	case stream.KindEOS:
		if j.eos[port] {
			return fmt.Errorf("core: nary: duplicate EOS on port %d", port)
		}
		j.eos[port] = true
		j.eosSeen++
		return nil
	default:
		return fmt.Errorf("core: nary: unknown item kind %v", it.Kind)
	}
}

func (j *NaryPJoin) processTuple(s int, t *stream.Tuple) error {
	key := t.Values[j.attrs[s]]

	// Probe: emit every combination of one matching tuple from each
	// other state together with t.
	if err := j.emitCombos(s, t, key); err != nil {
		return err
	}

	// Drop-on-the-fly (§6): if the join value is already dead — some
	// other stream has punctuated it and holds no matching tuples — the
	// arrival can never appear in a future result.
	if j.deadValue(s, key) {
		j.droppedFly++
		return nil
	}
	nt := &naryTuple{t: t, pid: punct.NoPID}
	if e := j.psets[s].FirstMatchAttr(j.attrs[s], key); e != nil {
		// Defensive: own-stream punctuation violations insert unindexed.
		return fmt.Errorf("core: nary: stream %d tuple %s violates an earlier punctuation", s, t)
	}
	j.tables[s][key] = append(j.tables[s][key], nt)
	j.sizes[s]++
	return nil
}

// deadValue reports whether, from stream s's perspective, the join
// value can never appear in a future result. A future result through an
// s-tuple needs one member from every other stream, at least one of them
// yet to arrive (all-current combinations were emitted on arrival). That
// is impossible exactly when
//
//   - every other stream has punctuated the value (no future member
//     anywhere), or
//   - some other stream k has punctuated it AND holds no matching tuple
//     (a k-member can be neither future nor current).
//
// For n = 2 both cases collapse to the paper's binary rule "the opposite
// stream punctuated it".
func (j *NaryPJoin) deadValue(s int, key value.Value) bool {
	allPunctuated := true
	for k := range j.schemas {
		if k == s {
			continue
		}
		punctuated := j.psets[k].SetMatchAttr(j.attrs[k], key)
		if !punctuated {
			allPunctuated = false
			continue
		}
		if len(j.tables[k][key]) == 0 {
			return true
		}
	}
	return allPunctuated
}

// emitCombos emits t joined with the cross product of matches from every
// other state.
func (j *NaryPJoin) emitCombos(s int, t *stream.Tuple, key value.Value) error {
	parts := make([][]*naryTuple, 0, len(j.schemas)-1)
	for k := range j.schemas {
		if k == s {
			continue
		}
		ms := j.tables[k][key]
		if len(ms) == 0 {
			return nil // no result possible
		}
		parts = append(parts, ms)
	}
	// Assemble results recursively in stream order.
	combo := make([]*stream.Tuple, len(j.schemas))
	combo[s] = t
	var rec func(pi, k int) error
	rec = func(pi, k int) error {
		if k == len(j.schemas) {
			vals := make([]value.Value, 0, j.outSc.Width())
			var ts stream.Time
			for _, m := range combo {
				vals = append(vals, m.Values...)
				if m.Ts > ts {
					ts = m.Ts
				}
			}
			j.resultsOut++
			return j.out.Emit(stream.TupleItem(&stream.Tuple{Values: vals, Ts: ts}))
		}
		if k == s {
			return rec(pi, k+1)
		}
		for _, m := range parts[pi] {
			combo[k] = m.t
			if err := rec(pi+1, k+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0)
}

// processPunct records the punctuation, eagerly indexes its own state
// (counts for propagation), and purges every other state per the n-ary
// purge rule.
func (j *NaryPJoin) processPunct(s int, p punct.Punctuation, ts stream.Time) error {
	if p.IsEmpty() {
		return nil
	}
	if p.Width() != j.schemas[s].Width() {
		return fmt.Errorf("core: nary: punctuation %s width %d, stream %d schema %s",
			p, p.Width(), s, j.schemas[s])
	}
	e, err := j.psets[s].Add(p)
	if err != nil {
		return err
	}
	// Eager index build over stream s's own state.
	for _, ts2 := range j.tables[s] {
		for _, nt := range ts2 {
			if nt.pid == punct.NoPID && p.Matches(nt.t.Values) {
				nt.pid = e.PID
				e.Count++
			}
		}
	}
	e.Indexed = true

	// Eager purge of every other state (§6): remove tuples whose join
	// value is now dead.
	for k := range j.schemas {
		if k == s {
			continue
		}
		for key, tuples := range j.tables[k] {
			if !j.deadValue(k, key) {
				continue
			}
			for _, nt := range tuples {
				j.decrement(k, nt)
			}
			j.purged += int64(len(tuples))
			j.sizes[k] -= len(tuples)
			delete(j.tables[k], key)
		}
	}
	return nil
}

// RequestPropagation releases every currently propagable punctuation
// (pull mode). NaryPJoin otherwise propagates only at Finish, so the
// punctuation sets keep serving the purge and drop-on-the-fly rules
// during the run.
func (j *NaryPJoin) RequestPropagation(now stream.Time) error {
	if now > j.now {
		j.now = now
	}
	return j.propagate(j.now)
}

func (j *NaryPJoin) decrement(side int, nt *naryTuple) {
	if nt.pid == punct.NoPID {
		return
	}
	if e := j.psets[side].Get(nt.pid); e != nil && e.Count > 0 {
		e.Count--
	}
}

// propagate releases every punctuation whose own-state count reached
// zero, rewritten over the output schema (its own positions keep their
// patterns; every stream's join attribute inherits the join pattern).
func (j *NaryPJoin) propagate(ts stream.Time) error {
	offsets := make([]int, len(j.schemas))
	off := 0
	for i, sc := range j.schemas {
		offsets[i] = off
		off += sc.Width()
	}
	for s, set := range j.psets {
		for _, e := range set.Propagable() {
			pats := make([]punct.Pattern, j.outSc.Width())
			for i := range pats {
				pats[i] = punct.Star()
			}
			for i := 0; i < e.P.Width(); i++ {
				pats[offsets[s]+i] = e.P.PatternAt(i)
			}
			outP, err := punct.New(pats...)
			if err != nil {
				return err
			}
			if err := j.out.Emit(stream.PunctItem(outP, ts)); err != nil {
				return err
			}
			j.punctsOut++
			set.Remove(e.PID)
		}
	}
	return nil
}

// OnIdle implements op.Operator.
func (j *NaryPJoin) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements op.Operator.
func (j *NaryPJoin) Finish(now stream.Time) error {
	if j.finished {
		return fmt.Errorf("core: nary: double Finish")
	}
	if j.eosSeen != len(j.schemas) {
		return fmt.Errorf("core: nary: Finish before EOS on all %d ports", len(j.schemas))
	}
	if now > j.now {
		j.now = now
	}
	if err := j.propagate(j.now); err != nil {
		return err
	}
	j.finished = true
	return j.out.Emit(stream.EOSItem(j.now))
}
