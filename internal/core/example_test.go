package core_test

import (
	"fmt"
	"log"

	"pjoin/internal/core"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// The smallest complete PJoin run: two tuples join, punctuations purge
// the state and propagate at finish.
func Example() {
	a := stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "x", Kind: value.KindString},
	)
	b := stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "y", Kind: value.KindString},
	)
	sink := &op.Collector{}
	cfg := core.Config{SchemaA: a, SchemaB: b} // join on attribute 0, eager purge
	cfg.Thresholds.PropagateCount = 2
	j, err := core.New(cfg, sink)
	if err != nil {
		log.Fatal(err)
	}

	feed := func(port int, it stream.Item) {
		if err := j.Process(port, it, it.Ts); err != nil {
			log.Fatal(err)
		}
	}
	feed(0, stream.TupleItem(stream.MustTuple(a, 1, value.Int(7), value.Str("left"))))
	feed(1, stream.TupleItem(stream.MustTuple(b, 2, value.Int(7), value.Str("right"))))
	// Both streams promise they are done with key 7.
	feed(1, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(7))), 3))
	feed(0, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(7))), 4))
	feed(0, stream.EOSItem(5))
	feed(1, stream.EOSItem(6))
	if err := j.Finish(7); err != nil {
		log.Fatal(err)
	}

	for _, it := range sink.Items {
		fmt.Println(it.Kind, it)
	}
	fmt.Println("state:", j.StateTuples())
	// Output:
	// tuple (7, "left", 7, "right")@2
	// punct <7, *, *, *>@4
	// punct <*, *, 7, *>@4
	// eos EOS@7
	// state: 0
}
