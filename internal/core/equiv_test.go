package core

import (
	"fmt"
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// Equivalence regression for the key-grouped state index: an indexed
// PJoin and one forced onto the pre-index scan fallback
// (DisableStateIndex) must emit identical result multisets and agree on
// every work counter except the two the index is allowed to shrink
// (Examined, PurgeScanned). The two joins are driven through identical
// Process/OnIdle/Finish sequences — no simulator, so the comparison is
// about operator semantics, not cost feedback.

// equivCase is one configuration regime of the comparison matrix.
type equivCase struct {
	name    string
	batched bool // range punctuations (exercises the purge scan path)
	mutate  func(*Config)
}

func equivCases() []equivCase {
	return []equivCase{
		{name: "eager-const-puncts", mutate: func(c *Config) {
			c.Thresholds.Purge = 1
		}},
		{name: "lazy-range-puncts", batched: true, mutate: func(c *Config) {
			c.Thresholds.Purge = 20
		}},
		{name: "relocation", mutate: func(c *Config) {
			c.Thresholds.Purge = 4
			c.Thresholds.MemoryBytes = 8 << 10
			c.Thresholds.DiskJoinIdle = 4 * stream.Millisecond
		}},
		{name: "no-drop-on-the-fly", mutate: func(c *Config) {
			c.Thresholds.Purge = 1
			c.DisableDropOnTheFly = true
		}},
		{name: "compact-sets", batched: true, mutate: func(c *Config) {
			c.Thresholds.Purge = 8
			c.CompactSets = true
		}},
		{name: "window", mutate: func(c *Config) {
			c.Thresholds.Purge = 2
			c.Window = 200 * stream.Millisecond
		}},
	}
}

// driveEquiv runs one PJoin over the schedule with a deterministic
// OnIdle cadence.
func driveEquiv(t *testing.T, j *PJoin, arrs []gen.Arrival) {
	t.Helper()
	var last stream.Time
	for i, a := range arrs {
		// Idle pulses at a fixed cadence so the reactive disk join runs
		// identically for both joins.
		if i%64 == 63 && a.Item.Ts > last+1 {
			if _, err := j.OnIdle(a.Item.Ts - 1); err != nil {
				t.Fatalf("OnIdle before arrival %d: %v", i, err)
			}
		}
		if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		last = a.Item.Ts
	}
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatalf("EOS port %d: %v", port, err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestIndexedScanEquivalence(t *testing.T) {
	for _, ec := range equivCases() {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				gcfg := gen.Config{
					Seed:     seed,
					Duration: 1500 * stream.Millisecond,
					A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
					B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 25, Batched: ec.batched},
				}
				arrs, err := gen.Synthetic(gcfg)
				if err != nil {
					t.Fatal(err)
				}

				build := func(disableIndex bool) (*PJoin, *op.Collector) {
					sink := &op.Collector{}
					cfg := Config{
						SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
						AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
					}
					ec.mutate(&cfg)
					cfg.DisableStateIndex = disableIndex
					j, err := New(cfg, sink)
					if err != nil {
						t.Fatal(err)
					}
					return j, sink
				}
				indexed, outIdx := build(false)
				scan, outScan := build(true)
				driveEquiv(t, indexed, arrs)
				driveEquiv(t, scan, arrs)

				diffMultisets(t, multiset(outIdx.Tuples()), multiset(outScan.Tuples()))
				if gi, gs := len(outIdx.Puncts()), len(outScan.Puncts()); gi != gs {
					t.Errorf("seed %d: propagated %d puncts indexed vs %d scan", seed, gi, gs)
				}
				mi, ms := indexed.Metrics(), scan.Metrics()
				// The index may only reduce work examined; everything
				// observable must be bit-identical.
				if mi.Examined > ms.Examined {
					t.Errorf("seed %d: indexed Examined %d > scan %d", seed, mi.Examined, ms.Examined)
				}
				if mi.PurgeScanned > ms.PurgeScanned {
					t.Errorf("seed %d: indexed PurgeScanned %d > scan %d", seed, mi.PurgeScanned, ms.PurgeScanned)
				}
				mi.Examined, mi.PurgeScanned = 0, 0
				ms.Examined, ms.PurgeScanned = 0, 0
				if gi, gs := fmt.Sprintf("%+v", mi), fmt.Sprintf("%+v", ms); gi != gs {
					t.Errorf("seed %d: metrics diverge\nindexed: %s\nscan:    %s", seed, gi, gs)
				}
				if t.Failed() {
					return
				}
			}
		})
	}
}
