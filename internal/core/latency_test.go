package core

import (
	"testing"

	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// TestLatencyReconciliation is the histogram-count contract for PJoin:
// exactly one Result sample per emitted result tuple, one PunctDelay
// sample per propagated punctuation, one Purge sample per purge run —
// no double counting across the memory-probe, disk-pass and Finish
// emit paths.
func TestLatencyReconciliation(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "scan"
		}
		t.Run(name, func(t *testing.T) {
			cfg := obsConfig(obs.NewRecorder())
			cfg.DisableStateIndex = !indexed
			sink := &op.Collector{}
			j, err := New(cfg, sink)
			if err != nil {
				t.Fatal(err)
			}
			run(t, j, obsWorkload())

			m := j.Metrics()
			lat := j.Latencies()
			if m.TuplesOut == 0 || m.PunctsOut == 0 || m.PurgeRuns == 0 {
				t.Fatalf("workload vacuous: %+v", m)
			}
			if lat.Result.Count != m.TuplesOut {
				t.Errorf("Result samples %d != TuplesOut %d", lat.Result.Count, m.TuplesOut)
			}
			if lat.PunctDelay.Count != m.PunctsOut {
				t.Errorf("PunctDelay samples %d != PunctsOut %d", lat.PunctDelay.Count, m.PunctsOut)
			}
			if lat.Purge.Count != m.PurgeRuns {
				t.Errorf("Purge samples %d != PurgeRuns %d", lat.Purge.Count, m.PurgeRuns)
			}
			// The emitted-result count in the sink is the ground truth.
			var results int64
			for _, it := range sink.Items {
				if it.Kind == stream.KindTuple {
					results++
				}
			}
			if lat.Result.Count != results {
				t.Errorf("Result samples %d != collected results %d", lat.Result.Count, results)
			}
		})
	}
}

// TestDiskLatencyReconciliation extends the histogram-count contract to
// the disk join: one DiskPass sample per completed pass (blocking or
// chunked) and one DiskChunk sample per executed incremental step, in
// both scheduling modes and both state-index regimes. This is the
// regression for the chunked sampling rule: a pass spanning N chunks
// records N chunk samples AND exactly one end-to-end pass sample, never
// one per chunk.
func TestDiskLatencyReconciliation(t *testing.T) {
	for _, chunkBytes := range []int{0, 256} {
		name := "blocking"
		if chunkBytes > 0 {
			name = "chunked"
		}
		for _, indexed := range []bool{true, false} {
			iname := name + "-indexed"
			if !indexed {
				iname = name + "-scan"
			}
			t.Run(iname, func(t *testing.T) {
				cfg := obsConfig(obs.NewRecorder())
				cfg.DisableStateIndex = !indexed
				cfg.DiskChunkBytes = chunkBytes
				sink := &op.Collector{}
				j, err := New(cfg, sink)
				if err != nil {
					t.Fatal(err)
				}
				run(t, j, obsWorkload())

				m := j.Metrics()
				lat := j.Latencies()
				if m.DiskPasses == 0 {
					t.Fatalf("workload ran no disk passes: %+v", m)
				}
				if lat.DiskPass.Count != m.DiskPasses {
					t.Errorf("DiskPass samples %d != DiskPasses %d", lat.DiskPass.Count, m.DiskPasses)
				}
				if lat.DiskChunk.Count != m.DiskChunks {
					t.Errorf("DiskChunk samples %d != DiskChunks %d", lat.DiskChunk.Count, m.DiskChunks)
				}
				if chunkBytes == 0 {
					if m.DiskChunks != 0 {
						t.Errorf("blocking mode executed %d chunks, want 0", m.DiskChunks)
					}
				} else {
					// A 256-byte budget over this relocating workload must
					// split every pass into several steps.
					if m.DiskChunks < m.DiskPasses {
						t.Errorf("chunked mode: %d chunks over %d passes, want at least one per pass",
							m.DiskChunks, m.DiskPasses)
					}
				}
				// Purge sampling must be untouched by the scheduling mode.
				if lat.Purge.Count != m.PurgeRuns {
					t.Errorf("Purge samples %d != PurgeRuns %d", lat.Purge.Count, m.PurgeRuns)
				}
			})
		}
	}
}

// TestLatencyValues pins the semantics of the recorded values on a
// hand-built workload: a memory-probe result has zero latency (the
// result's timestamp is the probing tuple's own), while a punctuation
// that must wait for the partner side's purge shows a positive delay.
func TestLatencyValues(t *testing.T) {
	cfg := obsConfig(obs.NewRecorder())
	j, err := New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	items := []feedItem{
		tupA(1, "a", 10),   // waits in state
		tupB(1, "b", 20),   // probes A: result at ts 20, latency 0
		punctFor(0, 1, 30), // A-punct: B's key-1 tuple purged; count A-side
		punctFor(1, 1, 40), // B-punct: purges A's tuple, A-punct count → 0
	}
	run(t, j, items)

	lat := j.Latencies()
	if lat.Result.Count != 1 {
		t.Fatalf("Result count = %d, want 1", lat.Result.Count)
	}
	// The probe result's latency is now − max(constituent ts) = 0.
	if lat.Result.Max != 0 {
		t.Errorf("memory-probe result latency = %d, want 0", lat.Result.Max)
	}
	if lat.PunctDelay.Count != 2 {
		t.Fatalf("PunctDelay count = %d, want 2", lat.PunctDelay.Count)
	}
	// The A-punctuation arrived at ts 30 but could only propagate once
	// the B-punctuation (ts 40) purged A's matching tuple: delay >= 10.
	if lat.PunctDelay.Max < 10 {
		t.Errorf("max punct delay = %d, want >= 10 (held until partner purge)", lat.PunctDelay.Max)
	}
}

// TestXJoinStyleNoPropagationNoDelaySamples: with propagation disabled
// the PunctDelay histogram stays empty while purges still record.
func TestNoPropagationNoDelaySamples(t *testing.T) {
	cfg := obsConfig(obs.NewRecorder())
	cfg.DisablePropagation = true
	j, err := New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, j, obsWorkload())
	m := j.Metrics()
	lat := j.Latencies()
	if m.PunctsOut != 0 {
		t.Fatalf("propagation disabled but PunctsOut = %d", m.PunctsOut)
	}
	if lat.PunctDelay.Count != 0 {
		t.Errorf("PunctDelay samples %d, want 0", lat.PunctDelay.Count)
	}
	if lat.Purge.Count != m.PurgeRuns || lat.Purge.Count == 0 {
		t.Errorf("Purge samples %d, PurgeRuns %d (want equal, nonzero)", lat.Purge.Count, m.PurgeRuns)
	}
}
