package core

import (
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
)

func windowConfig(w stream.Time) Config {
	cfg := defaultConfig()
	cfg.Window = w
	return cfg
}

func TestWindowValidation(t *testing.T) {
	sink := &op.Collector{}
	cfg := windowConfig(-1)
	if _, err := New(cfg, sink); err == nil {
		t.Error("negative window should error")
	}
	cfg = windowConfig(100)
	cfg.Thresholds.MemoryBytes = 1000
	if _, err := New(cfg, sink); err == nil {
		t.Error("window + relocation should error")
	}
}

func TestWindowLimitsJoinPairs(t *testing.T) {
	sink := &op.Collector{}
	j, err := New(windowConfig(10*stream.Millisecond), sink)
	if err != nil {
		t.Fatal(err)
	}
	ms := stream.Millisecond
	run(t, j, []feedItem{
		tupA(1, "old", 1*ms),
		tupA(1, "fresh", 14*ms),
		// b arrives at t=20ms: "old" (19ms ago) is out of the window,
		// "fresh" (6ms ago) is in.
		tupB(1, "b", 20*ms),
	})
	got := sink.Tuples()
	if len(got) != 1 {
		t.Fatalf("results = %d, want 1", len(got))
	}
	if got[0].Values[1].StrVal() != "fresh" {
		t.Errorf("joined with wrong tuple: %v", got[0])
	}
}

func TestWindowExpiresState(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(windowConfig(5*stream.Millisecond), sink)
	ms := stream.Millisecond
	var items []feedItem
	// All same key so every arrival touches the same bucket.
	for i := 0; i < 50; i++ {
		items = append(items, tupA(1, "a", stream.Time(i)*ms))
	}
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// The state holds only the last ~5ms of tuples (plus the newest).
	if got := j.StateTuples(); got > 8 {
		t.Errorf("window state = %d tuples, want <= 8", got)
	}
}

func TestWindowWithPunctuationsStillExact(t *testing.T) {
	// Within-window pairs must match a window-filtered oracle even when
	// punctuations purge concurrently.
	sink := &op.Collector{}
	w := 20 * stream.Millisecond
	j, _ := New(windowConfig(w), sink)
	ms := stream.Millisecond
	items := []feedItem{
		tupA(1, "a1", 1*ms),
		tupB(1, "b1", 5*ms),  // joins a1
		tupA(2, "a2", 8*ms),  //
		punctFor(0, 1, 9*ms), // A closes key 1: purge b1? No (b1 is B side; punct from A purges B): yes
		tupB(2, "b2", 12*ms), // joins a2
		tupB(1, "b3", 30*ms), // key 1: A closed it; drop on fly; a1 out of window anyway
		tupA(2, "a3", 45*ms), // b2 (33ms ago) out of window: no result
	}
	run(t, j, items)
	got := multiset(sink.Tuples())
	want := map[string]int{
		`1|"a1"|1|"b1"`: 1,
		`2|"a2"|2|"b2"`: 1,
	}
	diffMultisets(t, got, want)
}

func TestWindowEarlyPropagation(t *testing.T) {
	// §6: window expiry can make a punctuation propagable before the
	// opposite stream punctuates — the matching tuples simply expired.
	cfg := windowConfig(5 * stream.Millisecond)
	cfg.Thresholds.PropagateCount = 1
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	ms := stream.Millisecond
	seq := []feedItem{
		tupA(1, "a1", 1*ms),
		punctFor(0, 1, 2*ms), // count(A punct for key1) = 1: not propagable yet
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.Puncts()); got != 0 {
		t.Fatalf("premature propagation: %d", got)
	}
	// A same-bucket arrival far in the future expires a1 and the next
	// punctuation triggers propagation, releasing key 1's punctuation.
	// The arrival must come from B: key 1 is closed on the A side.
	late := tupB(1, "late", 100*ms)
	if err := j.Process(late.port, late.item, late.item.Ts); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(0, punctFor(0, 2, 101*ms).item, 101*ms); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pi := range sink.Puncts() {
		if pi.Punct.PatternAt(0).Kind() == punct.Constant {
			found = true
		}
	}
	if !found {
		t.Error("expired tuple did not unlock propagation")
	}
}
