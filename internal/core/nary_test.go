package core

import (
	"fmt"
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

var schemaC = stream.MustSchema("C",
	stream.Field{Name: "k", Kind: value.KindInt},
	stream.Field{Name: "pc", Kind: value.KindString},
)

func threeWay(t *testing.T, sink op.Emitter) *NaryPJoin {
	t.Helper()
	j, err := NewNary(
		[]*stream.Schema{schemaA, schemaB, schemaC},
		[]int{0, 0, 0}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func tupC(key int64, payload string, ts stream.Time) feedItem {
	return feedItem{2, stream.TupleItem(stream.MustTuple(schemaC, ts, value.Int(key), value.Str(payload)))}
}

func runNary(t *testing.T, j *NaryPJoin, items []feedItem) {
	t.Helper()
	var last stream.Time
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatalf("Process(%d, %v): %v", fi.port, fi.item, err)
		}
		last = fi.item.Ts
	}
	for port := 0; port < j.NumPorts(); port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatal(err)
	}
}

func TestNaryValidation(t *testing.T) {
	sink := &op.Collector{}
	if _, err := NewNary([]*stream.Schema{schemaA}, []int{0}, sink); err == nil {
		t.Error("single input should error")
	}
	if _, err := NewNary([]*stream.Schema{schemaA, schemaB}, []int{0}, sink); err == nil {
		t.Error("attr count mismatch should error")
	}
	if _, err := NewNary([]*stream.Schema{schemaA, nil}, []int{0, 0}, sink); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := NewNary([]*stream.Schema{schemaA, schemaB}, []int{0, 9}, sink); err == nil {
		t.Error("attr range should error")
	}
	if _, err := NewNary([]*stream.Schema{schemaA, schemaB}, []int{0, 1}, sink); err == nil {
		t.Error("kind mismatch should error")
	}
	if _, err := NewNary([]*stream.Schema{schemaA, schemaB}, []int{0, 0}, nil); err == nil {
		t.Error("nil emitter should error")
	}
}

func TestNaryThreeWayJoin(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	runNary(t, j, []feedItem{
		tupA(1, "a1", 1),
		tupB(1, "b1", 2),
		tupC(1, "c1", 3), // completes (a1,b1,c1)
		tupA(1, "a2", 4), // completes (a2,b1,c1)
		tupC(2, "c2", 5), // no partners
	})
	got := sink.Tuples()
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2", len(got))
	}
	for _, r := range got {
		if r.Width() != 6 {
			t.Fatalf("result width = %d", r.Width())
		}
		// Stream order preserved: A fields, then B, then C.
		if r.Values[3].StrVal() != "b1" || r.Values[5].StrVal() != "c1" {
			t.Errorf("result order wrong: %v", r)
		}
	}
	if j.ResultsOut() != 2 {
		t.Errorf("ResultsOut = %d", j.ResultsOut())
	}
}

func TestNaryCrossProductCount(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	var items []feedItem
	ts := stream.Time(0)
	add := func(fi feedItem) { items = append(items, fi) }
	for i := 0; i < 2; i++ {
		ts++
		add(tupA(7, fmt.Sprintf("a%d", i), ts))
	}
	for i := 0; i < 3; i++ {
		ts++
		add(tupB(7, fmt.Sprintf("b%d", i), ts))
	}
	for i := 0; i < 4; i++ {
		ts++
		add(tupC(7, fmt.Sprintf("c%d", i), ts))
	}
	runNary(t, j, items)
	if got := len(sink.Tuples()); got != 2*3*4 {
		t.Errorf("results = %d, want 24", got)
	}
}

func TestNaryPurgeNeedsEmptyState(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	seq := []feedItem{
		tupA(1, "a1", 1),
		tupB(1, "b1", 2),
		tupC(1, "c1", 3),
		// A punctuates key 1 while A's state still holds a1: b1 and c1
		// must NOT be purged — they can still join with a1 and a future
		// B or C tuple.
		punctFor(0, 1, 4),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 3 {
		t.Fatalf("state = %d, want 3 (nothing purgeable yet)", got)
	}
	// A future B tuple for key 1 must still produce a result (with a1, c1).
	before := len(sink.Tuples())
	fi := tupB(1, "b2", 5)
	if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()) - before; got != 1 {
		t.Errorf("late B tuple produced %d results, want 1", got)
	}
}

func TestNaryPurgeWhenValueDead(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	seq := []feedItem{
		tupB(1, "b1", 1),
		tupC(1, "c1", 2),
		// A punctuates key 1 with NO a-tuple in state: key 1 can never
		// complete a result again; b1 and c1 are purged.
		punctFor(0, 1, 3),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 0 {
		t.Errorf("state = %d, want 0", got)
	}
	if j.Purged() != 2 {
		t.Errorf("Purged = %d", j.Purged())
	}
}

func TestNaryDropOnTheFly(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	seq := []feedItem{
		punctFor(0, 5, 1), // A closes key 5, state A empty
		tupB(5, "b1", 2),  // dead value: dropped on the fly
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if j.StateTuples() != 0 || j.DroppedOnFly() != 1 {
		t.Errorf("state=%d dropped=%d", j.StateTuples(), j.DroppedOnFly())
	}
}

func TestNaryPunctuationViolationDetected(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	if err := j.Process(0, punctFor(0, 5, 1).item, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(0, tupA(5, "bad", 2).item, 2); err == nil {
		t.Error("own-stream punctuation violation should error")
	}
}

func TestNaryPropagation(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	seq := []feedItem{
		tupA(1, "a1", 1),
		tupB(1, "b1", 2),
		tupC(1, "c1", 3),
		punctFor(1, 1, 4), // B closes key 1: A state still holds a1... purges nothing for A? b1 dead? For B's punct: purge others where dead.
		punctFor(2, 1, 5), // C closes key 1
		punctFor(0, 1, 6), // A closes key 1: everything for key 1 is dead
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 0 {
		t.Errorf("state = %d after all three punctuations", got)
	}
	// All three punctuations become propagable once their own states
	// hold no matching tuples; pull them.
	if err := j.RequestPropagation(7); err != nil {
		t.Fatal(err)
	}
	ps := sink.Puncts()
	if len(ps) != 3 {
		t.Fatalf("propagated %d punctuations, want 3", len(ps))
	}
	seen := map[int]bool{}
	for _, pi := range ps {
		if pi.Punct.Width() != 6 {
			t.Fatalf("output punctuation width = %d", pi.Punct.Width())
		}
		// Each punctuation constrains its own stream's join column.
		for _, pos := range []int{0, 2, 4} {
			if pi.Punct.PatternAt(pos).Kind() == punct.Constant {
				seen[pos] = true
			}
		}
	}
	for _, pos := range []int{0, 2, 4} {
		if !seen[pos] {
			t.Errorf("no punctuation constrained join column %d", pos)
		}
	}
}

func TestNaryWidthMismatchPunct(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	p := stream.PunctItem(punct.MustNew(punct.Const(value.Int(1))), 1)
	if err := j.Process(0, p, 1); err == nil {
		t.Error("narrow punctuation should error")
	}
}

func TestNaryProtocol(t *testing.T) {
	sink := &op.Collector{}
	j := threeWay(t, sink)
	if err := j.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	if err := j.Process(5, tupA(1, "x", 1).item, 1); err == nil {
		t.Error("bad port should error")
	}
	for p := 0; p < 3; p++ {
		if err := j.Process(p, stream.EOSItem(stream.Time(p+1)), stream.Time(p+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Process(0, stream.EOSItem(9), 9); err == nil {
		t.Error("dup EOS should error")
	}
	if err := j.Finish(10); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(11); err == nil {
		t.Error("double Finish should error")
	}
	if did, _ := j.OnIdle(12); did {
		t.Error("nary has no idle work")
	}
	if j.Name() != "pjoin3" || j.NumPorts() != 3 || j.OutSchema().Width() != 6 {
		t.Error("metadata wrong")
	}
}

// Differential test: a random 3-way punctuated workload must produce the
// exact 3-way equi-join (computed by a nested-loop oracle), regardless
// of purging and drop-on-the-fly.
func TestNaryDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		rng := vtime.NewRNG(seed)
		const nKeys = 6
		var items []feedItem
		var all [3][]*stream.Tuple
		counts := [3][nKeys]int{}
		var planned [3][nKeys]int
		total := 90
		for i := 0; i < total; i++ {
			s := rng.Intn(3)
			k := rng.Intn(nKeys)
			planned[s][k]++
		}
		ts := stream.Time(0)
		emitted := [3][nKeys]int{}
		for i := 0; i < total; i++ {
			// Pick a stream/key with remaining quota.
			var s, k int
			for {
				s, k = rng.Intn(3), rng.Intn(nKeys)
				if emitted[s][k] < planned[s][k] {
					break
				}
			}
			emitted[s][k]++
			ts++
			var fi feedItem
			payload := fmt.Sprintf("s%dk%d#%d", s, k, emitted[s][k])
			switch s {
			case 0:
				fi = tupA(int64(k), payload, ts)
			case 1:
				fi = tupB(int64(k), payload, ts)
			default:
				fi = tupC(int64(k), payload, ts)
			}
			all[s] = append(all[s], fi.item.Tuple)
			counts[s][k]++
			items = append(items, fi)
			// Punctuate exhausted keys sometimes.
			if emitted[s][k] == planned[s][k] && rng.Intn(2) == 0 {
				ts++
				items = append(items, feedItem{s, stream.PunctItem(
					punct.MustKeyOnly(2, 0, punct.Const(value.Int(int64(k)))), ts)})
			}
		}
		sink := &op.Collector{}
		j := threeWay(t, sink)
		runNary(t, j, items)

		// Oracle: full nested-loop 3-way join count per key.
		want := 0
		for k := 0; k < nKeys; k++ {
			want += counts[0][k] * counts[1][k] * counts[2][k]
		}
		if got := len(sink.Tuples()); got != want {
			t.Errorf("seed %d: results = %d, want %d", seed, got, want)
		}
	}
}
