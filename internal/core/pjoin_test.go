package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/shj"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

var (
	schemaA = stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "pa", Kind: value.KindString},
	)
	schemaB = stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "pb", Kind: value.KindString},
	)
)

func defaultConfig() Config {
	return Config{SchemaA: schemaA, SchemaB: schemaB, AttrA: 0, AttrB: 0}
}

// feedItem is one input event for a test run.
type feedItem struct {
	port int
	item stream.Item
}

func tupA(key int64, payload string, ts stream.Time) feedItem {
	return feedItem{0, stream.TupleItem(stream.MustTuple(schemaA, ts, value.Int(key), value.Str(payload)))}
}

func tupB(key int64, payload string, ts stream.Time) feedItem {
	return feedItem{1, stream.TupleItem(stream.MustTuple(schemaB, ts, value.Int(key), value.Str(payload)))}
}

func punctFor(port int, key int64, ts stream.Time) feedItem {
	return feedItem{port, stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(key))), ts)}
}

// run feeds the items, sends EOS on both ports and calls Finish.
func run(t *testing.T, j op.Operator, items []feedItem) {
	t.Helper()
	var last stream.Time
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatalf("Process(%d, %v): %v", fi.port, fi.item, err)
		}
		last = fi.item.Ts
	}
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatalf("EOS port %d: %v", port, err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// resultKey renders a join result's values (ignoring timestamps) so
// multisets can be compared.
func resultKey(tp *stream.Tuple) string {
	parts := make([]string, len(tp.Values))
	for i, v := range tp.Values {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

func multiset(tuples []*stream.Tuple) map[string]int {
	m := map[string]int{}
	for _, tp := range tuples {
		m[resultKey(tp)]++
	}
	return m
}

func diffMultisets(t *testing.T, got, want map[string]int) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("result %q: got %d, want %d", k, got[k], want[k])
		}
	}
}

func TestNewValidation(t *testing.T) {
	sink := &op.Collector{}
	cases := []struct {
		name string
		cfg  Config
		out  op.Emitter
	}{
		{"nil schemas", Config{}, sink},
		{"nil emitter", defaultConfig(), nil},
		{"attrA range", Config{SchemaA: schemaA, SchemaB: schemaB, AttrA: 5}, sink},
		{"attrB range", Config{SchemaA: schemaA, SchemaB: schemaB, AttrB: -1}, sink},
		{"kind mismatch", Config{SchemaA: schemaA, SchemaB: schemaB, AttrA: 0, AttrB: 1}, sink},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBasicEquiJoin(t *testing.T) {
	sink := &op.Collector{}
	j, err := New(defaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	run(t, j, []feedItem{
		tupA(1, "a1", 1),
		tupB(1, "b1", 2), // joins with a1
		tupB(2, "b2", 3),
		tupA(2, "a2", 4), // joins with b2
		tupA(1, "a3", 5), // joins with b1
		tupB(3, "b3", 6), // no partner
	})
	got := multiset(sink.Tuples())
	want := map[string]int{
		`1|"a1"|1|"b1"`: 1,
		`2|"a2"|2|"b2"`: 1,
		`1|"a3"|1|"b1"`: 1,
	}
	diffMultisets(t, got, want)
	// Output schema: A fields then B fields with collision prefix.
	if j.OutSchema().Width() != 4 {
		t.Errorf("out schema = %v", j.OutSchema())
	}
	// EOS forwarded exactly once, at the end.
	if n := len(sink.Items); sink.Items[n-1].Kind != stream.KindEOS {
		t.Error("EOS should be the last item")
	}
}

func TestManyToManyJoin(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	var items []feedItem
	ts := stream.Time(0)
	for i := 0; i < 3; i++ {
		ts++
		items = append(items, tupA(7, fmt.Sprintf("a%d", i), ts))
	}
	for i := 0; i < 4; i++ {
		ts++
		items = append(items, tupB(7, fmt.Sprintf("b%d", i), ts))
	}
	run(t, j, items)
	if got := len(sink.Tuples()); got != 12 {
		t.Errorf("3x4 join produced %d results", got)
	}
}

func TestPurgeShrinksState(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink) // eager purge by default
	var items []feedItem
	ts := stream.Time(0)
	for k := int64(0); k < 10; k++ {
		ts++
		items = append(items, tupA(k, "a", ts))
		ts++
		items = append(items, tupB(k, "b", ts))
	}
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 20 {
		t.Fatalf("state before punctuation = %d", got)
	}
	// A punctuation from A for key 3 purges B's key-3 tuple.
	ts++
	if err := j.Process(0, punctFor(0, 3, ts).item, ts); err != nil {
		t.Fatal(err)
	}
	if got := j.StateTuples(); got != 19 {
		t.Errorf("state after A punctuation = %d, want 19", got)
	}
	// The corresponding B punctuation purges A's key-3 tuple.
	ts++
	if err := j.Process(1, punctFor(1, 3, ts).item, ts); err != nil {
		t.Fatal(err)
	}
	if got := j.StateTuples(); got != 18 {
		t.Errorf("state after both punctuations = %d, want 18", got)
	}
	if m := j.Metrics(); m.Purged != 2 {
		t.Errorf("Purged = %d", m.Purged)
	}
	// Join results are unaffected: each pair joined once.
	if got := len(sink.Tuples()); got != 10 {
		t.Errorf("results = %d", got)
	}
}

func TestRangePunctuationPurges(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	var items []feedItem
	for k := int64(0); k < 10; k++ {
		items = append(items, tupB(k, "b", stream.Time(k+1)))
	}
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// A range punctuation from A covering keys [0,4] purges five B tuples.
	p := stream.PunctItem(punct.MustKeyOnly(2, 0, punct.MustRange(value.Int(0), value.Int(4))), 100)
	if err := j.Process(0, p, 100); err != nil {
		t.Fatal(err)
	}
	if got := j.StateTuples(); got != 5 {
		t.Errorf("state = %d, want 5", got)
	}
}

func TestDropOnTheFly(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	// A tuples for key 5, then A closes key 5.
	seq := []feedItem{
		tupA(5, "a1", 1),
		tupA(5, "a2", 2),
		punctFor(0, 5, 3),
		// This B tuple joins with both As but must not enter the state.
		tupB(5, "b1", 4),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.Tuples()); got != 2 {
		t.Errorf("results = %d, want 2", got)
	}
	_, b := j.StateStats()
	if b.TotalTuples() != 0 {
		t.Errorf("B state = %d tuples, want 0 (dropped on the fly)", b.TotalTuples())
	}
	if m := j.Metrics(); m.DroppedOnFly != 1 {
		t.Errorf("DroppedOnFly = %d", m.DroppedOnFly)
	}
}

func TestDropOnTheFlyDisabled(t *testing.T) {
	cfg := defaultConfig()
	cfg.DisableDropOnTheFly = true
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		tupA(5, "a1", 1),
		punctFor(0, 5, 2),
		tupB(5, "b1", 3),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	_, b := j.StateStats()
	if b.TotalTuples() != 1 {
		t.Errorf("B state = %d, want 1 with drop-on-the-fly disabled", b.TotalTuples())
	}
}

func TestLazyPurgeThreshold(t *testing.T) {
	cfg := defaultConfig()
	cfg.Thresholds.Purge = 3 // lazy purge: every 3 punctuations
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	for k := int64(0); k < 5; k++ {
		fi := tupB(k, "b", stream.Time(k+1))
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// Two punctuations: below threshold, nothing purged yet.
	for i, k := range []int64{0, 1} {
		fi := punctFor(0, k, stream.Time(10+i))
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 5 {
		t.Fatalf("state = %d before threshold, want 5", got)
	}
	// Third punctuation reaches the threshold: all three keys purge.
	fi := punctFor(0, 2, 20)
	if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
		t.Fatal(err)
	}
	if got := j.StateTuples(); got != 2 {
		t.Errorf("state = %d after threshold, want 2", got)
	}
}

func TestPurgeDisabledKeepsState(t *testing.T) {
	cfg := defaultConfig()
	cfg.DisablePurge = true
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		tupB(1, "b", 1),
		punctFor(0, 1, 2),
		punctFor(0, 1, 3),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 1 {
		t.Errorf("state = %d, want 1 (purge disabled)", got)
	}
}

func TestVerifyPunctuationsDetectsViolation(t *testing.T) {
	cfg := defaultConfig()
	cfg.VerifyPunctuations = true
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	if err := j.Process(0, punctFor(0, 7, 1).item, 1); err != nil {
		t.Fatal(err)
	}
	// A tuple with key 7 on stream A violates the punctuation.
	err := j.Process(0, tupA(7, "bad", 2).item, 2)
	if err == nil || !strings.Contains(err.Error(), "violates") {
		t.Errorf("violation not detected: %v", err)
	}
}

func TestPunctuationWidthMismatch(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	p := stream.PunctItem(punct.MustNew(punct.Const(value.Int(1))), 1) // width 1, schema width 2
	if err := j.Process(0, p, 1); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestEmptyPunctuationIgnored(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	p := stream.PunctItem(punct.MustNew(punct.None(), punct.Star()), 1)
	if err := j.Process(0, p, 1); err != nil {
		t.Fatal(err)
	}
	if a, _ := j.PunctSetSizes(); a != 0 {
		t.Errorf("empty punctuation entered the set")
	}
}

func TestEOSProtocol(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	if err := j.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	if err := j.Process(0, stream.EOSItem(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("duplicate EOS should error")
	}
	if err := j.Process(1, stream.EOSItem(3), 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(4); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(5); err == nil {
		t.Error("double Finish should error")
	}
	if err := j.Process(0, tupA(1, "x", 6).item, 6); err == nil {
		t.Error("Process after Finish should error")
	}
	if err := j.Process(9, tupA(1, "x", 7).item, 7); err == nil {
		t.Error("bad port should error")
	}
}

func TestRegistryTableMatchesConfig(t *testing.T) {
	cfg := defaultConfig()
	cfg.Thresholds.PropagateCount = 2
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	table := j.Registry().String()
	for _, want := range []string{"state-purge", "state-relocation", "disk-join", "index-build", "punctuation-propagation"} {
		if !strings.Contains(table, want) {
			t.Errorf("registry table missing %s:\n%s", want, table)
		}
	}
	// Lazy index building: index-build runs before propagation on the
	// count event.
	if i, j := strings.Index(table, "index-build"), strings.Index(table, "punctuation-propagation"); i > j {
		t.Error("index-build should precede propagation")
	}
	// Eager index building drops the coupled index-build listener.
	cfg.EagerIndex = true
	j2, _ := New(cfg, sink)
	for _, line := range strings.Split(j2.Registry().String(), "\n") {
		if strings.Contains(line, "PropagateCountReachEvent") && strings.Contains(line, "index-build") {
			t.Errorf("eager config still couples index build to propagation: %s", line)
		}
	}
}

// --- propagation ---

func propagationConfig() Config {
	cfg := defaultConfig()
	cfg.Thresholds.PropagateCount = 2
	return cfg
}

func TestPropagationAfterPairOfPunctuations(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "lazy-index"
		if eager {
			name = "eager-index"
		}
		t.Run(name, func(t *testing.T) {
			cfg := propagationConfig()
			cfg.EagerIndex = eager
			sink := &op.Collector{}
			j, _ := New(cfg, sink)
			seq := []feedItem{
				tupA(1, "a", 1),
				tupB(1, "b", 2),
				punctFor(0, 1, 3), // purges B's key-1 tuple
				punctFor(1, 1, 4), // purges A's key-1 tuple; count threshold reached
			}
			for _, fi := range seq {
				if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
					t.Fatal(err)
				}
			}
			ps := sink.Puncts()
			if len(ps) != 2 {
				t.Fatalf("propagated %d punctuations, want 2 (one per side)", len(ps))
			}
			// Each output punctuation constrains its own side's join
			// column over the output schema and leaves the rest wildcard.
			sawA, sawB := false, false
			for _, pi := range ps {
				if pi.Punct.Width() != 4 {
					t.Fatalf("output punctuation width = %d", pi.Punct.Width())
				}
				if pi.Punct.PatternAt(0).Kind() == punct.Constant {
					sawA = true
				}
				if pi.Punct.PatternAt(2).Kind() == punct.Constant {
					sawB = true
				}
			}
			if !sawA || !sawB {
				t.Errorf("expected one punctuation per side: A=%v B=%v", sawA, sawB)
			}
			// Sets are emptied.
			a, b := j.PunctSetSizes()
			if a != 0 || b != 0 {
				t.Errorf("punctuation sets not drained: %d, %d", a, b)
			}
		})
	}
}

func TestNoPropagationWhileTuplesMatch(t *testing.T) {
	cfg := propagationConfig()
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		tupA(1, "a", 1), // stays in state: B never closes key 1
		punctFor(0, 2, 2),
		punctFor(0, 3, 3), // count threshold reached; key-1 tuple still present
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// Punctuations for keys 2 and 3 have no matching tuples: propagable.
	// No punctuation mentioning key 1 exists, so nothing blocks them.
	if got := len(sink.Puncts()); got != 2 {
		t.Fatalf("propagated %d, want 2", got)
	}
	// Now close key 1 from A while the tuple is still in A's state: the
	// punctuation must NOT propagate (Theorem 1) until B purges it.
	sink.Reset()
	for _, fi := range []feedItem{punctFor(0, 1, 4), punctFor(0, 4, 5)} {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	for _, pi := range sink.Puncts() {
		if pi.Punct.PatternAt(0).Kind() == punct.Constant &&
			pi.Punct.PatternAt(0).ConstVal().Equal(value.Int(1)) {
			t.Error("punctuation for key 1 propagated while its tuple is in state")
		}
	}
	// B closes key 1: A's tuple purges, and the blocked punctuation can go.
	sink.Reset()
	for _, fi := range []feedItem{punctFor(1, 1, 6), punctFor(1, 9, 7)} {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, pi := range sink.Puncts() {
		if pi.Punct.PatternAt(0).Kind() == punct.Constant &&
			pi.Punct.PatternAt(0).ConstVal().Equal(value.Int(1)) {
			found = true
		}
	}
	if !found {
		t.Error("punctuation for key 1 never propagated after purge")
	}
}

func TestPullModePropagation(t *testing.T) {
	cfg := defaultConfig() // no push thresholds
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	seq := []feedItem{
		punctFor(0, 1, 1),
		punctFor(0, 2, 2),
	}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.Puncts()); got != 0 {
		t.Fatalf("push-mode propagation fired without thresholds: %d", got)
	}
	if err := j.RequestPropagation(3); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Puncts()); got != 2 {
		t.Errorf("pull propagation produced %d punctuations, want 2", got)
	}
}

func TestTimeModePropagation(t *testing.T) {
	cfg := defaultConfig()
	cfg.Thresholds.PropagateTime = 10 * stream.Millisecond
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	if err := j.Process(0, punctFor(0, 1, stream.Millisecond).item, stream.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Data activity advances time past the interval.
	fi := tupA(9, "x", 20*stream.Millisecond)
	if err := j.Process(0, fi.item, fi.item.Ts); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Puncts()); got != 1 {
		t.Errorf("time-mode propagation produced %d, want 1", got)
	}
}

func TestPropagationAtFinish(t *testing.T) {
	cfg := propagationConfig()
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	// One punctuation: below the count threshold, but Finish must flush it.
	run(t, j, []feedItem{punctFor(0, 1, 1)})
	if got := len(sink.Puncts()); got != 1 {
		t.Errorf("Finish flushed %d punctuations, want 1", got)
	}
}

func TestPropagationDisabled(t *testing.T) {
	cfg := propagationConfig()
	cfg.DisablePropagation = true
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	run(t, j, []feedItem{punctFor(0, 1, 1), punctFor(1, 1, 2), punctFor(0, 2, 3), punctFor(1, 2, 4)})
	if got := len(sink.Puncts()); got != 0 {
		t.Errorf("propagation disabled but %d punctuations emitted", got)
	}
}

// --- relocation / disk join ---

func spillConfig() Config {
	cfg := defaultConfig()
	cfg.NumBuckets = 4
	cfg.Thresholds.MemoryBytes = 200 // tiny: forces frequent relocation
	return cfg
}

func TestRelocationAndFinishCompleteness(t *testing.T) {
	cfg := spillConfig()
	sink := &op.Collector{}
	j, err := New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	oracleSink := &op.Collector{}
	oracle, _ := shj.New(schemaA, schemaB, 0, 0, oracleSink)

	var items []feedItem
	ts := stream.Time(0)
	rng := vtime.NewRNG(1)
	for i := 0; i < 200; i++ {
		ts++
		key := int64(rng.Intn(10))
		if rng.Intn(2) == 0 {
			items = append(items, tupA(key, fmt.Sprintf("a%d", i), ts))
		} else {
			items = append(items, tupB(key, fmt.Sprintf("b%d", i), ts))
		}
	}
	run(t, j, items)
	run(t, oracle, items)

	if j.Metrics().Relocations == 0 {
		t.Fatal("test did not exercise relocation; lower the threshold")
	}
	if j.Metrics().DiskJoins == 0 {
		t.Fatal("no disk joins happened; completeness untested")
	}
	diffMultisets(t, multiset(sink.Tuples()), multiset(oracleSink.Tuples()))
}

func TestOnIdleRunsReactiveDiskJoin(t *testing.T) {
	cfg := spillConfig()
	cfg.Thresholds.DiskJoinIdle = 5
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	var ts stream.Time
	for i := 0; i < 50; i++ {
		ts++
		fi := tupA(int64(i%5), "a", ts)
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if !j.base.States[0].AnyDisk() {
		t.Fatal("no spill happened")
	}
	did, err := j.OnIdle(ts + 100)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Error("OnIdle should have run a disk pass after the activation threshold")
	}
	// Without new activity, a second idle call does nothing.
	did, err = j.OnIdle(ts + 200)
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Error("second OnIdle in the same stall should be a no-op")
	}
}

func TestPurgeBufferViaDiskPath(t *testing.T) {
	// Force B's bucket to disk, then purge A tuples that still owe
	// left-over joins against B's disk portion: they must park in the
	// purge buffer and the results must still be complete.
	cfg := defaultConfig()
	cfg.NumBuckets = 1
	sink := &op.Collector{}
	j, _ := New(cfg, sink)

	seq := []feedItem{tupB(1, "b1", 1), tupB(2, "b2", 2)}
	for _, fi := range seq {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// Manually spill B's bucket (as the relocation component would).
	if _, err := j.base.States[1].SpillBucket(0, 3); err != nil {
		t.Fatal(err)
	}
	// A tuple with key 1 arrives: probes B memory (empty now), misses b1.
	fi := tupA(1, "a1", 4)
	if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
		t.Fatal(err)
	}
	// B closes key 1: A's tuple matches PS_B but B has disk data in the
	// bucket, so it must go to the purge buffer, not vanish.
	if err := j.Process(1, punctFor(1, 1, 5).item, 5); err != nil {
		t.Fatal(err)
	}
	a, _ := j.StateStats()
	if a.PurgeTuples != 1 {
		t.Fatalf("purge buffer = %d tuples, want 1", a.PurgeTuples)
	}
	if len(sink.Tuples()) != 0 {
		t.Fatalf("no results expected before the disk pass")
	}
	// Disk pass completes the left-over join and clears the buffer.
	if err := j.diskPass(6); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 1 {
		t.Errorf("disk pass produced %d results, want 1 (a1 x b1)", got)
	}
	a, _ = j.StateStats()
	if a.PurgeTuples != 0 {
		t.Errorf("purge buffer not cleared: %d", a.PurgeTuples)
	}
	// b1 itself must have been purged from disk (matches A's... no wait,
	// no A punctuation exists; b1 stays on disk).
	_, b := j.StateStats()
	if b.DiskTuples != 2 {
		t.Errorf("B disk tuples = %d, want 2", b.DiskTuples)
	}
}

func TestDiskPurgeRemovesMatchedDiskTuples(t *testing.T) {
	cfg := defaultConfig()
	cfg.NumBuckets = 1
	sink := &op.Collector{}
	j, _ := New(cfg, sink)
	for _, fi := range []feedItem{tupB(1, "b1", 1), tupB(2, "b2", 2)} {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.base.States[1].SpillBucket(0, 3); err != nil {
		t.Fatal(err)
	}
	// A closes key 1: b1 (on disk) is now useless, but only a disk pass
	// can drop it.
	if err := j.Process(0, punctFor(0, 1, 4).item, 4); err != nil {
		t.Fatal(err)
	}
	_, b := j.StateStats()
	if b.DiskTuples != 2 {
		t.Fatalf("disk purge should be lazy; disk = %d", b.DiskTuples)
	}
	if err := j.diskPass(5); err != nil {
		t.Fatal(err)
	}
	_, b = j.StateStats()
	if b.DiskTuples != 1 {
		t.Errorf("disk tuples after pass = %d, want 1 (b1 purged)", b.DiskTuples)
	}
}

// --- randomized differential test against the oracle ---

// genPunctuatedStreams builds a random interleaving of honest punctuated
// streams: for each stream, a punctuation for key k appears only after
// the stream's last tuple with key k.
func genPunctuatedStreams(rng *vtime.RNG, nTuples, nKeys int, punctEvery int) []feedItem {
	type perStream struct {
		items []feedItem
	}
	var streams [2]perStream
	for s := 0; s < 2; s++ {
		counts := make([]int, nKeys)
		var tuples []int64
		for i := 0; i < nTuples; i++ {
			k := rng.Intn(nKeys)
			counts[k]++
			tuples = append(tuples, int64(k))
		}
		seen := make([]int, nKeys)
		for i, k := range tuples {
			var fi feedItem
			if s == 0 {
				fi = tupA(k, fmt.Sprintf("a%d", i), 0)
			} else {
				fi = tupB(k, fmt.Sprintf("b%d", i), 0)
			}
			streams[s].items = append(streams[s].items, fi)
			seen[k]++
			// Once a key is exhausted, maybe punctuate it right away.
			if seen[k] == counts[k] && punctEvery > 0 && rng.Intn(punctEvery) == 0 {
				streams[s].items = append(streams[s].items, punctFor(s, k, 0))
			}
		}
		// Close every key at the end.
		for k := 0; k < nKeys; k++ {
			streams[s].items = append(streams[s].items, punctFor(s, int64(k), 0))
		}
	}
	// Interleave with strictly increasing timestamps.
	var out []feedItem
	idx := [2]int{}
	ts := stream.Time(0)
	for idx[0] < len(streams[0].items) || idx[1] < len(streams[1].items) {
		s := rng.Intn(2)
		if idx[s] >= len(streams[s].items) {
			s = 1 - s
		}
		fi := streams[s].items[idx[s]]
		idx[s]++
		ts++
		// Restamp with the global arrival time.
		switch fi.item.Kind {
		case stream.KindTuple:
			tt := *fi.item.Tuple
			tt.Ts = ts
			fi.item = stream.TupleItem(&tt)
		case stream.KindPunct:
			fi.item = stream.PunctItem(fi.item.Punct, ts)
		}
		out = append(out, fi)
	}
	return out
}

func TestDifferentialAgainstOracle(t *testing.T) {
	configs := map[string]func() Config{
		"eager-purge": func() Config { return defaultConfig() },
		"lazy-purge-10": func() Config {
			cfg := defaultConfig()
			cfg.Thresholds.Purge = 10
			return cfg
		},
		"with-propagation": func() Config {
			cfg := propagationConfig()
			cfg.VerifyPunctuations = true
			return cfg
		},
		"eager-index": func() Config {
			cfg := propagationConfig()
			cfg.EagerIndex = true
			return cfg
		},
		"tiny-memory": func() Config {
			cfg := spillConfig()
			cfg.Thresholds.MemoryBytes = 300
			return cfg
		},
		"tiny-memory-lazy": func() Config {
			cfg := spillConfig()
			cfg.Thresholds.Purge = 7
			cfg.Thresholds.PropagateCount = 5
			return cfg
		},
		"no-drop-on-fly": func() Config {
			cfg := defaultConfig()
			cfg.DisableDropOnTheFly = true
			return cfg
		},
		"no-disk-purge": func() Config {
			cfg := spillConfig()
			cfg.DisableDiskPurge = true
			return cfg
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				rng := vtime.NewRNG(seed)
				items := genPunctuatedStreams(rng, 150, 12, 2)

				oracleSink := &op.Collector{}
				oracle, err := shj.New(schemaA, schemaB, 0, 0, oracleSink)
				if err != nil {
					t.Fatal(err)
				}
				run(t, oracle, items)

				sink := &op.Collector{}
				j, err := New(mk(), sink)
				if err != nil {
					t.Fatal(err)
				}
				run(t, j, items)

				got, want := multiset(sink.Tuples()), multiset(oracleSink.Tuples())
				if len(got) == 0 && len(want) != 0 {
					t.Fatalf("seed %d: no results at all", seed)
				}
				diffMultisets(t, got, want)
				if t.Failed() {
					t.Fatalf("seed %d: result mismatch", seed)
				}
				// With full punctuation coverage and a final purge, the
				// state should be (nearly) empty at the end for purge
				// configs. At minimum it must not exceed the input size.
				if j.StateTuples() > 300 {
					t.Errorf("seed %d: state = %d tuples at end", seed, j.StateTuples())
				}
			}
		})
	}
}

// The state at end-of-run must be completely empty when every key is
// closed on both sides (eager purge, no spilling).
func TestStateFullyDrainedAfterFullPunctuation(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(defaultConfig(), sink)
	rng := vtime.NewRNG(99)
	items := genPunctuatedStreams(rng, 100, 8, 3)
	run(t, j, items)
	if got := j.StateTuples(); got != 0 {
		t.Errorf("state = %d tuples after closing every key on both sides", got)
	}
}

func TestCompactSetsBoundsPunctuationSets(t *testing.T) {
	run := func(compact bool) (setLen int, results int) {
		cfg := defaultConfig()
		cfg.CompactSets = compact
		sink := &op.Collector{}
		j, err := New(cfg, sink)
		if err != nil {
			t.Fatal(err)
		}
		// A long run of per-key punctuations over consecutive keys: with
		// compaction they collapse to a single range punctuation.
		var ts stream.Time
		for k := int64(0); k < 300; k++ {
			ts++
			fi := tupA(k, "a", ts)
			if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
				t.Fatal(err)
			}
			ts++
			fi = tupB(k, "b", ts)
			if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
				t.Fatal(err)
			}
			ts++
			if err := j.Process(0, punctFor(0, k, ts).item, ts); err != nil {
				t.Fatal(err)
			}
			ts++
			if err := j.Process(1, punctFor(1, k, ts).item, ts); err != nil {
				t.Fatal(err)
			}
		}
		a, b := j.PunctSetSizes()
		return a + b, len(sink.Tuples())
	}
	lenOff, resOff := run(false)
	lenOn, resOn := run(true)
	if resOff != resOn {
		t.Fatalf("compaction changed results: %d vs %d", resOff, resOn)
	}
	if lenOff != 600 {
		t.Fatalf("without compaction expected 600 stored punctuations, got %d", lenOff)
	}
	if lenOn > 4 {
		t.Errorf("with compaction sets should collapse, got %d entries", lenOn)
	}
}

// A larger-scale differential run: thousands of tuples with frequent
// relocation, lazy purge, propagation and punctuation compaction all
// active at once. Catches interactions that small inputs miss (bucket
// skew, repeated disk passes, purge buffers refilling).
func TestDifferentialAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	for seed := uint64(11); seed <= 12; seed++ {
		rng := vtime.NewRNG(seed)
		items := genPunctuatedStreams(rng, 3000, 40, 3)

		oracleSink := &op.Collector{}
		oracle, err := shj.New(schemaA, schemaB, 0, 0, oracleSink)
		if err != nil {
			t.Fatal(err)
		}
		run(t, oracle, items)

		cfg := defaultConfig()
		cfg.NumBuckets = 8
		cfg.Thresholds.Purge = 13
		cfg.Thresholds.MemoryBytes = 2 << 10
		cfg.Thresholds.PropagateCount = 9
		cfg.CompactSets = true
		cfg.VerifyPunctuations = true
		sink := &op.Collector{}
		j, err := New(cfg, sink)
		if err != nil {
			t.Fatal(err)
		}
		run(t, j, items)

		if j.Metrics().Relocations == 0 || j.Metrics().DiskJoins == 0 {
			t.Fatalf("seed %d: scale test failed to exercise the disk path", seed)
		}
		diffMultisets(t, multiset(sink.Tuples()), multiset(oracleSink.Tuples()))
		if t.Failed() {
			t.Fatalf("seed %d: mismatch at scale", seed)
		}
	}
}
