package punct

import (
	"testing"
)

func TestKeyedSetConstLookup(t *testing.T) {
	s := NewKeyedSet(0, false)
	e5, _ := s.Add(MustKeyOnly(2, 0, Const(iv(5))))
	e7, _ := s.Add(MustKeyOnly(2, 0, Const(iv(7))))
	if got := s.FirstMatchAttr(0, iv(5)); got != e5 {
		t.Errorf("FirstMatchAttr(5) = %v", got)
	}
	if got := s.FirstMatchAttr(0, iv(7)); got != e7 {
		t.Errorf("FirstMatchAttr(7) = %v", got)
	}
	if s.SetMatchAttr(0, iv(6)) {
		t.Error("6 should not match")
	}
}

func TestKeyedSetMixedPatterns(t *testing.T) {
	s := NewKeyedSet(0, false)
	eRange, _ := s.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(100))))
	eConst, _ := s.Add(MustKeyOnly(2, 0, Const(iv(50))))
	// 50 matches both; the range arrived first so it wins.
	if got := s.FirstMatchAttr(0, iv(50)); got != eRange {
		t.Errorf("FirstMatchAttr(50) = pid %d, want range entry", got.PID)
	}
	// 200 matches neither.
	if s.SetMatchAttr(0, iv(200)) {
		t.Error("200 should not match")
	}
	// Constant arriving before a covering range: constant wins for its key.
	s2 := NewKeyedSet(0, false)
	c, _ := s2.Add(MustKeyOnly(2, 0, Const(iv(50))))
	s2.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(100))))
	if got := s2.FirstMatchAttr(0, iv(50)); got != c {
		t.Errorf("earliest arrival should win, got pid %d", got.PID)
	}
	_ = eConst
}

func TestKeyedSetRemoveMaintainsIndex(t *testing.T) {
	s := NewKeyedSet(0, false)
	e1, _ := s.Add(MustKeyOnly(2, 0, Const(iv(1))))
	e2, _ := s.Add(MustKeyOnly(2, 0, Const(iv(1)))) // duplicate key, later pid
	r, _ := s.Add(MustKeyOnly(2, 0, MustRange(iv(10), iv(20))))
	if got := s.FirstMatchAttr(0, iv(1)); got != e1 {
		t.Fatalf("first = pid %d", got.PID)
	}
	s.Remove(e1.PID)
	if got := s.FirstMatchAttr(0, iv(1)); got != e2 {
		t.Errorf("after remove, first = %v, want second const", got)
	}
	s.Remove(e2.PID)
	if s.SetMatchAttr(0, iv(1)) {
		t.Error("key 1 should be gone")
	}
	s.Remove(r.PID)
	if s.SetMatchAttr(0, iv(15)) {
		t.Error("range should be gone")
	}
}

func TestKeyedSetNonKeyAttrFallsBack(t *testing.T) {
	s := NewKeyedSet(0, false)
	s.Add(MustNew(Star(), Const(iv(9))))
	if !s.SetMatchAttr(1, iv(9)) {
		t.Error("non-key attribute lookup should still work")
	}
	if s.SetMatchAttr(1, iv(8)) {
		t.Error("non-key attribute lookup false positive")
	}
}

func TestKeyedSetAgreesWithLinear(t *testing.T) {
	keyed := NewKeyedSet(0, false)
	plain := NewSet()
	pats := []Pattern{
		Const(iv(3)), Const(iv(8)), MustRange(iv(10), iv(20)),
		MustEnum(iv(30), iv(40)), Const(iv(15)),
	}
	for _, p := range pats {
		kp := MustKeyOnly(2, 0, p)
		keyed.Add(kp)
		plain.Add(kp)
	}
	for k := int64(0); k < 50; k++ {
		kg, pg := keyed.FirstMatchAttr(0, iv(k)), plain.FirstMatchAttr(0, iv(k))
		switch {
		case kg == nil && pg == nil:
		case kg == nil || pg == nil:
			t.Errorf("key %d: keyed=%v plain=%v", k, kg, pg)
		case kg.PID != pg.PID:
			t.Errorf("key %d: keyed pid %d, plain pid %d", k, kg.PID, pg.PID)
		}
	}
}

func TestKeyedSetNarrowPunctuation(t *testing.T) {
	s := NewKeyedSet(3, false)
	// Punctuation narrower than the key attribute: goes to the
	// non-constant list, never matches on the key attribute.
	if _, err := s.Add(MustNew(Const(iv(1)))); err != nil {
		t.Fatal(err)
	}
	if s.SetMatchAttr(3, iv(1)) {
		t.Error("narrow punctuation must not match on missing attribute")
	}
}

// A punctuation that constrains OTHER attributes makes no exhaustion
// promise about the queried attribute: <*, c> must not license purging
// by attribute 0, even though its attribute-0 pattern (wildcard)
// "matches" every value. This is the soundness condition cascaded joins
// rely on — an upstream join propagates punctuations that constrain only
// one side's columns.
func TestSetMatchAttrRequiresExhaustiveness(t *testing.T) {
	for _, keyed := range []bool{true, false} {
		var s *Set
		if keyed {
			s = NewKeyedSet(0, false)
		} else {
			s = NewSet()
		}
		// Constrains attribute 1 only: exhausts nothing on attribute 0.
		s.Add(MustNew(Star(), Const(iv(7))))
		if s.SetMatchAttr(0, iv(123)) {
			t.Errorf("keyed=%v: non-exhaustive punctuation licensed a purge", keyed)
		}
		// But it IS exhaustive on attribute 1.
		if !s.SetMatchAttr(1, iv(7)) {
			t.Errorf("keyed=%v: exhaustive-on-1 punctuation not found", keyed)
		}
		// A pure end-of-stream punctuation <*, *> exhausts everything.
		s2 := NewKeyedSet(0, false)
		s2.Add(MustNew(Star(), Star()))
		if !s2.SetMatchAttr(0, iv(5)) {
			t.Error("all-wildcard punctuation should exhaust every value")
		}
	}
}

func TestEntryExhaustiveOn(t *testing.T) {
	e := &Entry{P: MustNew(Const(iv(1)), Star())}
	if !e.ExhaustiveOn(0) {
		t.Error("keyed punctuation should be exhaustive on its key")
	}
	if e.ExhaustiveOn(5) {
		t.Error("attribute beyond width cannot be exhausted")
	}
	mixed := &Entry{P: MustNew(Const(iv(1)), Const(iv(2)))}
	if mixed.ExhaustiveOn(0) || mixed.ExhaustiveOn(1) {
		t.Error("multi-constraint punctuation exhausts no single attribute")
	}
}
