package punct

import (
	"strings"
	"testing"

	"pjoin/internal/value"
)

func TestNewRequiresPatterns(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no patterns should error")
	}
}

func TestPunctuationMatches(t *testing.T) {
	p := MustNew(Const(iv(5)), Star())
	if !p.Matches([]value.Value{iv(5), value.Str("anything")}) {
		t.Error("(5, *) should match (5, anything)")
	}
	if p.Matches([]value.Value{iv(6), value.Str("x")}) {
		t.Error("(5, *) should not match (6, x)")
	}
	if p.Matches([]value.Value{iv(5)}) {
		t.Error("width mismatch should not match")
	}
	if p.Matches([]value.Value{iv(5), value.Str("x"), iv(1)}) {
		t.Error("wider tuple should not match")
	}
}

func TestKeyOnly(t *testing.T) {
	p := MustKeyOnly(3, 1, Const(iv(7)))
	if p.Width() != 3 {
		t.Fatalf("width = %d", p.Width())
	}
	if p.PatternAt(0).Kind() != Wildcard || p.PatternAt(2).Kind() != Wildcard {
		t.Error("non-key attributes should be wildcard")
	}
	if !p.Matches([]value.Value{iv(1), iv(7), iv(9)}) {
		t.Error("KeyOnly should match on key")
	}
	if p.Matches([]value.Value{iv(1), iv(8), iv(9)}) {
		t.Error("KeyOnly should reject wrong key")
	}
	if _, err := KeyOnly(0, 0, Star()); err == nil {
		t.Error("zero width should error")
	}
	if _, err := KeyOnly(2, 2, Star()); err == nil {
		t.Error("attr out of range should error")
	}
	if _, err := KeyOnly(2, -1, Star()); err == nil {
		t.Error("negative attr should error")
	}
}

func TestPunctuationAnd(t *testing.T) {
	a := MustNew(MustRange(iv(0), iv(10)), Star())
	b := MustNew(MustRange(iv(5), iv(20)), Const(value.Str("x")))
	got, err := a.And(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(MustRange(iv(5), iv(10)), Const(value.Str("x")))
	if !got.Equal(want) {
		t.Errorf("And = %v, want %v", got, want)
	}
	if _, err := a.And(MustNew(Star())); err == nil {
		t.Error("width mismatch And should error")
	}
}

func TestPunctuationAndIsPunctuation(t *testing.T) {
	// §2.2: the and of any two punctuations is also a punctuation — here,
	// verify it still behaves as a predicate equal to the conjunction.
	a := MustNew(MustEnum(iv(1), iv(2), iv(3)))
	b := MustNew(MustRange(iv(2), iv(9)))
	ab, err := a.And(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 12; i++ {
		tu := []value.Value{iv(i)}
		want := a.Matches(tu) && b.Matches(tu)
		if got := ab.Matches(tu); got != want {
			t.Errorf("and punctuation mismatch at %d: got %v want %v", i, got, want)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	if MustNew(Star(), Const(iv(1))).IsEmpty() {
		t.Error("non-empty punctuation reported empty")
	}
	if !MustNew(Star(), None()).IsEmpty() {
		t.Error("punctuation with empty pattern should be empty")
	}
	var zero Punctuation
	if !zero.IsEmpty() || !zero.IsZero() {
		t.Error("zero punctuation should be empty and zero")
	}
}

func TestPunctuationEqual(t *testing.T) {
	a := MustNew(Const(iv(1)), Star())
	b := MustNew(Const(iv(1)), Star())
	c := MustNew(Const(iv(2)), Star())
	if !a.Equal(b) || a.Equal(c) || a.Equal(MustNew(Star())) {
		t.Error("punctuation Equal broken")
	}
}

func TestPunctuationStringAndParse(t *testing.T) {
	ps := []Punctuation{
		MustNew(Star()),
		MustNew(Const(iv(5)), Star()),
		MustNew(MustRange(iv(1), iv(10)), MustEnum(iv(1), iv(2)), None()),
		MustNew(Const(value.Str("hello, world")), Star()),
		MustNew(Const(value.Str(`with "quote" and ]`))),
	}
	for _, p := range ps {
		got, err := Parse(p.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", p.String(), err)
			continue
		}
		if !got.Equal(p) {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "<>", "no brackets", "<", "<*", "*>",
		"<*,>", "<,*>", "<[1..>", "<{1,2>", "<[1 .. 2}>",
		"<\"unterminated>", "<[x .. 2]>", "<{1, \"a\"}>", "<]>",
	}
	for _, s := range bad {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %v, expected error", s, p)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{"", "[1..2", "[1,2]", "{1,2", "12a", "[1 .. oops]"}
	for _, s := range bad {
		if p, err := ParsePattern(s); err == nil {
			t.Errorf("ParsePattern(%q) = %v, expected error", s, p)
		}
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	p, err := Parse("  < * ,  [1 .. 3] , {4, 5} >  ")
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(Star(), MustRange(iv(1), iv(3)), MustEnum(iv(4), iv(5)))
	if !p.Equal(want) {
		t.Errorf("parsed %v, want %v", p, want)
	}
}

func TestPunctuationStringFormat(t *testing.T) {
	s := MustNew(Const(iv(5)), Star()).String()
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") || !strings.Contains(s, "*") {
		t.Errorf("unexpected punctuation format %q", s)
	}
}
