package punct

import (
	"testing"

	"pjoin/internal/value"
)

func keyPunct(t *testing.T, key int64) Punctuation {
	t.Helper()
	return MustKeyOnly(2, 0, Const(iv(key)))
}

func TestSetAddAssignsSequentialPIDs(t *testing.T) {
	s := NewSet()
	for i := int64(1); i <= 3; i++ {
		e, err := s.Add(keyPunct(t, i))
		if err != nil {
			t.Fatal(err)
		}
		if e.PID != PID(i) {
			t.Errorf("pid = %d, want %d", e.PID, i)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetAddZeroPunctuation(t *testing.T) {
	if _, err := NewSet().Add(Punctuation{}); err == nil {
		t.Error("adding zero punctuation should error")
	}
}

func TestSetMatchAndFirstMatch(t *testing.T) {
	s := NewSet()
	e1, _ := s.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(10))))
	e2, _ := s.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(100))))
	tup := []value.Value{iv(5), value.Str("x")}
	if !s.SetMatch(tup) {
		t.Error("SetMatch should be true")
	}
	if got := s.FirstMatch(tup); got != e1 {
		t.Errorf("FirstMatch = %v, want first-arrived entry", got)
	}
	tup2 := []value.Value{iv(50), value.Str("x")}
	if got := s.FirstMatch(tup2); got != e2 {
		t.Errorf("FirstMatch = %v, want second entry", got)
	}
	tup3 := []value.Value{iv(500), value.Str("x")}
	if s.SetMatch(tup3) || s.FirstMatch(tup3) != nil {
		t.Error("no entry should match 500")
	}
}

func TestSetRemoveAndGet(t *testing.T) {
	s := NewSet()
	e1, _ := s.Add(keyPunct(t, 1))
	e2, _ := s.Add(keyPunct(t, 2))
	if s.Get(e1.PID) != e1 || s.Get(e2.PID) != e2 {
		t.Fatal("Get broken")
	}
	if !s.Remove(e1.PID) {
		t.Error("Remove existing should be true")
	}
	if s.Remove(e1.PID) {
		t.Error("double Remove should be false")
	}
	if s.Get(e1.PID) != nil {
		t.Error("removed entry still gettable")
	}
	if s.Len() != 1 || s.Entries()[0] != e2 {
		t.Error("remaining entries wrong")
	}
	// PIDs must not be reused after removal.
	e3, _ := s.Add(keyPunct(t, 3))
	if e3.PID <= e2.PID {
		t.Errorf("pid reuse: %d after %d", e3.PID, e2.PID)
	}
}

func TestUnindexedAndPropagable(t *testing.T) {
	s := NewSet()
	e1, _ := s.Add(keyPunct(t, 1))
	e2, _ := s.Add(keyPunct(t, 2))
	if got := s.Unindexed(); len(got) != 2 {
		t.Fatalf("Unindexed = %d entries", len(got))
	}
	e1.Indexed = true
	e1.Count = 2
	e2.Indexed = true
	e2.Count = 0
	if got := s.Unindexed(); len(got) != 0 {
		t.Errorf("Unindexed after indexing = %d entries", len(got))
	}
	prop := s.Propagable()
	if len(prop) != 1 || prop[0] != e2 {
		t.Errorf("Propagable = %v, want only count-0 entry", prop)
	}
	// An unindexed count-0 entry must not be propagable: its count is
	// meaningless until index build has scanned the state for it.
	e3, _ := s.Add(keyPunct(t, 3))
	_ = e3
	if got := s.Propagable(); len(got) != 1 {
		t.Errorf("unindexed entry leaked into Propagable: %v", got)
	}
}

func TestVerifiedSetAcceptsDisjointAndNested(t *testing.T) {
	s := NewVerifiedSet(0)
	if _, err := s.Add(MustKeyOnly(2, 0, Const(iv(1)))); err != nil {
		t.Fatal(err)
	}
	// Disjoint constant: fine.
	if _, err := s.Add(MustKeyOnly(2, 0, Const(iv(2)))); err != nil {
		t.Errorf("disjoint constant rejected: %v", err)
	}
	// Superset range containing both earlier constants: fine.
	if _, err := s.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(10)))); err != nil {
		t.Errorf("containing range rejected: %v", err)
	}
}

func TestVerifiedSetRejectsPartialOverlap(t *testing.T) {
	s := NewVerifiedSet(0)
	if _, err := s.Add(MustKeyOnly(2, 0, MustRange(iv(0), iv(10)))); err != nil {
		t.Fatal(err)
	}
	// [5..20] overlaps [0..10] without containing it: violates §2.2.
	if _, err := s.Add(MustKeyOnly(2, 0, MustRange(iv(5), iv(20)))); err == nil {
		t.Error("partially overlapping punctuation accepted")
	}
	if s.Len() != 1 {
		t.Errorf("failed Add mutated the set: len=%d", s.Len())
	}
}

func TestVerifiedSetAttrOutOfRange(t *testing.T) {
	s := NewVerifiedSet(5)
	if _, err := s.Add(keyPunct(t, 1)); err == nil {
		t.Error("attr beyond punctuation width should error")
	}
}

func TestNewVerifiedSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewVerifiedSet(-1)
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add(keyPunct(t, 1))
	if str := s.String(); str == "" || str == "{}" {
		t.Errorf("Set.String() = %q", str)
	}
}
