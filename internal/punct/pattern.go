// Package punct implements the punctuation semantics of Tucker et al. as
// used by the PJoin paper (EDBT 2004, §2.2): a punctuation is an ordered
// set of patterns, one per tuple attribute, and promises that no tuple
// arriving after it will match it. Five pattern kinds are supported —
// wildcard, constant, range, enumeration list, and the empty pattern —
// and the conjunction ("and") of any two punctuations is again a
// punctuation.
package punct

import (
	"fmt"
	"sort"
	"strings"

	"pjoin/internal/value"
)

// PatternKind identifies one of the paper's five pattern kinds.
type PatternKind uint8

// The five pattern kinds of §2.2.
const (
	Wildcard PatternKind = iota // matches every value
	Constant                    // matches exactly one value
	Range                       // matches values in an inclusive [lo,hi] interval
	Enum                        // matches any value in a finite list
	Empty                       // matches nothing
)

// String returns the kind's name.
func (k PatternKind) String() string {
	switch k {
	case Wildcard:
		return "wildcard"
	case Constant:
		return "constant"
	case Range:
		return "range"
	case Enum:
		return "enum"
	case Empty:
		return "empty"
	default:
		return fmt.Sprintf("PatternKind(%d)", uint8(k))
	}
}

// Pattern is a predicate over a single attribute value. Patterns are
// immutable once constructed; constructors normalise so that semantically
// equal patterns are structurally equal:
//
//   - enumerations are sorted and deduplicated,
//   - a one-element enumeration becomes a Constant,
//   - a zero-element enumeration becomes Empty,
//   - a range with lo == hi becomes a Constant,
//   - an inverted range (lo > hi) becomes Empty.
//
// The zero Pattern is the wildcard, so a freshly allocated punctuation
// matches everything until patterns are assigned.
type Pattern struct {
	kind   PatternKind
	lo, hi value.Value   // Constant stores the value in lo; Range uses both
	set    []value.Value // Enum members, sorted ascending, deduplicated
}

// Star returns the wildcard pattern.
func Star() Pattern { return Pattern{kind: Wildcard} }

// None returns the empty pattern.
func None() Pattern { return Pattern{kind: Empty} }

// Const returns a constant pattern matching exactly v.
func Const(v value.Value) Pattern {
	if !v.IsValid() {
		panic("punct: Const with invalid value")
	}
	return Pattern{kind: Constant, lo: v}
}

// NewRange returns a range pattern matching lo <= v <= hi (inclusive).
// lo and hi must share an orderable kind. An inverted range normalises to
// Empty and a degenerate range (lo == hi) to a Constant.
func NewRange(lo, hi value.Value) (Pattern, error) {
	c, err := lo.Compare(hi)
	if err != nil {
		return Pattern{}, fmt.Errorf("punct: range bounds: %w", err)
	}
	switch {
	case c > 0:
		return None(), nil
	case c == 0:
		return Const(lo), nil
	default:
		return Pattern{kind: Range, lo: lo, hi: hi}, nil
	}
}

// MustRange is NewRange that panics on error; for tests and literals.
func MustRange(lo, hi value.Value) Pattern {
	p, err := NewRange(lo, hi)
	if err != nil {
		panic(err)
	}
	return p
}

// NewEnum returns an enumeration pattern matching any of vs. All members
// must share one kind so the list can be kept sorted. Duplicates are
// removed; empty and singleton lists normalise to Empty and Constant.
func NewEnum(vs ...value.Value) (Pattern, error) {
	if len(vs) == 0 {
		return None(), nil
	}
	kind := vs[0].Kind()
	for _, v := range vs {
		if !v.IsValid() {
			return Pattern{}, fmt.Errorf("punct: enum with invalid value")
		}
		if v.Kind() != kind {
			return Pattern{}, fmt.Errorf("punct: enum mixes %s and %s values", kind, v.Kind())
		}
	}
	sorted := make([]value.Value, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	dedup := sorted[:1]
	for _, v := range sorted[1:] {
		if !v.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, v)
		}
	}
	if len(dedup) == 1 {
		return Const(dedup[0]), nil
	}
	return Pattern{kind: Enum, set: dedup}, nil
}

// MustEnum is NewEnum that panics on error; for tests and literals.
func MustEnum(vs ...value.Value) Pattern {
	p, err := NewEnum(vs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Kind reports the pattern kind.
func (p Pattern) Kind() PatternKind { return p.kind }

// ConstVal returns the value of a Constant pattern; it panics otherwise.
func (p Pattern) ConstVal() value.Value {
	if p.kind != Constant {
		panic("punct: ConstVal on " + p.kind.String() + " pattern")
	}
	return p.lo
}

// Bounds returns the inclusive bounds of a Range pattern; it panics
// otherwise.
func (p Pattern) Bounds() (lo, hi value.Value) {
	if p.kind != Range {
		panic("punct: Bounds on " + p.kind.String() + " pattern")
	}
	return p.lo, p.hi
}

// Members returns the sorted member list of an Enum pattern; it panics
// otherwise. The returned slice must not be modified.
func (p Pattern) Members() []value.Value {
	if p.kind != Enum {
		panic("punct: Members on " + p.kind.String() + " pattern")
	}
	return p.set
}

// Matches reports whether v satisfies the pattern. Values of a kind the
// pattern cannot describe (e.g. a string against an int range) do not
// match; they are not an error, mirroring predicate evaluation to false.
//
// The Enum case hand-rolls its binary search instead of calling
// sort.Search: Matches sits on the per-tuple purge/probe path and the
// sort.Search closure is a per-call allocation there.
//
//pjoin:hotpath
func (p Pattern) Matches(v value.Value) bool {
	switch p.kind {
	case Wildcard:
		return true
	case Empty:
		return false
	case Constant:
		return v.Equal(p.lo)
	case Range:
		cl, err := p.lo.Compare(v)
		if err != nil || cl > 0 {
			return false
		}
		ch, err := v.Compare(p.hi)
		return err == nil && ch <= 0
	case Enum:
		lo, hi := 0, len(p.set)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if p.set[mid].Less(v) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(p.set) && p.set[lo].Equal(v)
	default:
		return false
	}
}

// And returns the conjunction of p and q: the pattern matching exactly the
// values both match. The result is always well-defined (the "and" of two
// punctuation patterns is a pattern, §2.2); incompatible combinations
// normalise to Empty. Range∧Range across different value kinds is Empty
// because no single value can satisfy both.
func (p Pattern) And(q Pattern) Pattern {
	// Order so the simpler kind is on the left where convenient.
	if p.kind == Empty || q.kind == Empty {
		return None()
	}
	if p.kind == Wildcard {
		return q
	}
	if q.kind == Wildcard {
		return p
	}
	if q.kind == Constant && p.kind != Constant {
		p, q = q, p
	}
	switch p.kind {
	case Constant:
		if q.Matches(p.lo) {
			return p
		}
		return None()
	case Range:
		switch q.kind {
		case Range:
			lo, hi := p.lo, p.hi
			if c, err := q.lo.Compare(lo); err != nil {
				return None()
			} else if c > 0 {
				lo = q.lo
			}
			if c, err := q.hi.Compare(hi); err != nil {
				return None()
			} else if c < 0 {
				hi = q.hi
			}
			r, err := NewRange(lo, hi)
			if err != nil {
				return None()
			}
			return r
		case Enum:
			return filterEnum(q.set, p.Matches)
		}
	case Enum:
		switch q.kind {
		case Range:
			return filterEnum(p.set, q.Matches)
		case Enum:
			return filterEnum(p.set, q.Matches)
		}
	}
	return None()
}

// filterEnum builds the normalised pattern over the members of set that
// satisfy keep. set is already sorted and deduplicated, so the result can
// be assembled directly.
func filterEnum(set []value.Value, keep func(value.Value) bool) Pattern {
	var out []value.Value
	for _, v := range set {
		if keep(v) {
			out = append(out, v)
		}
	}
	switch len(out) {
	case 0:
		return None()
	case 1:
		return Const(out[0])
	default:
		return Pattern{kind: Enum, set: out}
	}
}

// Equal reports semantic equality. Because constructors normalise,
// structural comparison suffices.
func (p Pattern) Equal(q Pattern) bool {
	if p.kind != q.kind {
		return false
	}
	switch p.kind {
	case Wildcard, Empty:
		return true
	case Constant:
		return p.lo.Equal(q.lo)
	case Range:
		return p.lo.Equal(q.lo) && p.hi.Equal(q.hi)
	case Enum:
		if len(p.set) != len(q.set) {
			return false
		}
		for i := range p.set {
			if !p.set[i].Equal(q.set[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Contains reports whether every value matching q also matches p
// (pattern subsumption: q ⊆ p). It is exact for all kind combinations
// except Wildcard ⊆ Range/Enum, which is correctly false, and is used to
// verify the paper's nested-or-disjoint assumption on the join attribute.
func (p Pattern) Contains(q Pattern) bool {
	if p.kind == Wildcard || q.kind == Empty {
		return true
	}
	if q.kind == Wildcard {
		return false // p is not wildcard here, so it excludes some value
	}
	switch q.kind {
	case Constant:
		return p.Matches(q.lo)
	case Range:
		switch p.kind {
		case Range:
			cl, err1 := p.lo.Compare(q.lo)
			ch, err2 := q.hi.Compare(p.hi)
			return err1 == nil && err2 == nil && cl <= 0 && ch <= 0
		default:
			// A finite pattern can contain a range only over a discrete
			// kind; approximate by checking the endpoints and, for ints,
			// every member in between via the enum itself.
			if p.kind == Enum && q.lo.Kind() == value.KindInt {
				return enumCoversIntRange(p.set, q.lo.IntVal(), q.hi.IntVal())
			}
			return false
		}
	case Enum:
		for _, v := range q.set {
			if !p.Matches(v) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// enumCoversIntRange reports whether the sorted member set includes every
// integer in [lo,hi].
func enumCoversIntRange(set []value.Value, lo, hi int64) bool {
	if hi < lo {
		return true
	}
	span := uint64(hi-lo) + 1
	if span > uint64(len(set)) {
		return false
	}
	i := sort.Search(len(set), func(i int) bool { return !set[i].Less(value.Int(lo)) })
	for want := lo; want <= hi; want++ {
		if i >= len(set) || set[i].Kind() != value.KindInt || set[i].IntVal() != want {
			return false
		}
		i++
	}
	return true
}

// Disjoint reports whether p and q share no matching value.
func (p Pattern) Disjoint(q Pattern) bool { return p.And(q).kind == Empty }

// String renders the pattern in punctuation syntax: `*` for wildcard,
// a value literal for constants, `[lo..hi]` for ranges, `{a, b}` for
// enumerations and `{}` for empty. Parse reverses it.
func (p Pattern) String() string {
	switch p.kind {
	case Wildcard:
		return "*"
	case Empty:
		return "{}"
	case Constant:
		return p.lo.String()
	case Range:
		return "[" + p.lo.String() + " .. " + p.hi.String() + "]"
	case Enum:
		var b strings.Builder
		b.WriteByte('{')
		for i, v := range p.set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('}')
		return b.String()
	default:
		return "<bad pattern>"
	}
}
