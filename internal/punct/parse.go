package punct

import (
	"fmt"
	"strings"

	"pjoin/internal/value"
)

// ParsePattern parses the textual pattern syntax emitted by
// Pattern.String:
//
//	"*"                 wildcard
//	{}                  empty
//	5, 1.5, "x", true   constant
//	[lo .. hi]          inclusive range
//	{a, b, c}           enumeration
func ParsePattern(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Pattern{}, fmt.Errorf("punct: empty pattern text")
	case s == "*":
		return Star(), nil
	case s[0] == '[':
		if s[len(s)-1] != ']' {
			return Pattern{}, fmt.Errorf("punct: unterminated range %q", s)
		}
		body := s[1 : len(s)-1]
		parts := strings.SplitN(body, "..", 2)
		if len(parts) != 2 {
			return Pattern{}, fmt.Errorf("punct: range %q needs 'lo .. hi'", s)
		}
		lo, err := value.Parse(parts[0])
		if err != nil {
			return Pattern{}, fmt.Errorf("punct: range low bound: %w", err)
		}
		hi, err := value.Parse(parts[1])
		if err != nil {
			return Pattern{}, fmt.Errorf("punct: range high bound: %w", err)
		}
		return NewRange(lo, hi)
	case s[0] == '{':
		if s[len(s)-1] != '}' {
			return Pattern{}, fmt.Errorf("punct: unterminated enum %q", s)
		}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return None(), nil
		}
		items, err := splitTopLevel(body)
		if err != nil {
			return Pattern{}, err
		}
		vals := make([]value.Value, 0, len(items))
		for _, it := range items {
			v, err := value.Parse(it)
			if err != nil {
				return Pattern{}, fmt.Errorf("punct: enum member: %w", err)
			}
			vals = append(vals, v)
		}
		return NewEnum(vals...)
	default:
		v, err := value.Parse(s)
		if err != nil {
			return Pattern{}, fmt.Errorf("punct: constant pattern: %w", err)
		}
		return Const(v), nil
	}
}

// Parse parses the punctuation syntax emitted by Punctuation.String:
// `<pat, pat, ...>` with at least one pattern.
func Parse(s string) (Punctuation, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '<' || s[len(s)-1] != '>' {
		return Punctuation{}, fmt.Errorf("punct: punctuation text must be <...>, got %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return Punctuation{}, fmt.Errorf("punct: punctuation %q has no patterns", s)
	}
	parts, err := splitTopLevel(body)
	if err != nil {
		return Punctuation{}, err
	}
	pats := make([]Pattern, 0, len(parts))
	for _, p := range parts {
		pat, err := ParsePattern(p)
		if err != nil {
			return Punctuation{}, err
		}
		pats = append(pats, pat)
	}
	return New(pats...)
}

// splitTopLevel splits on commas that are not nested inside brackets,
// braces, or string quotes.
func splitTopLevel(s string) ([]string, error) {
	var (
		parts    []string
		depth    int
		inString bool
		start    int
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inString {
			switch c {
			case '\\':
				i++ // skip escaped char
			case '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case '[', '{':
			depth++
		case ']', '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("punct: unbalanced %q in %q", string(c), s)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if inString {
		return nil, fmt.Errorf("punct: unterminated string in %q", s)
	}
	if depth != 0 {
		return nil, fmt.Errorf("punct: unbalanced brackets in %q", s)
	}
	parts = append(parts, s[start:])
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, fmt.Errorf("punct: empty element in %q", s)
		}
	}
	return parts, nil
}
