package punct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pjoin/internal/value"
)

// randomPattern draws a pattern over a small integer domain so
// properties get dense coverage.
func randomPattern(rng *rand.Rand) Pattern {
	switch rng.Intn(5) {
	case 0:
		return Star()
	case 1:
		return None()
	case 2:
		return Const(iv(int64(rng.Intn(20))))
	case 3:
		lo := int64(rng.Intn(20))
		return MustRange(iv(lo), iv(lo+int64(rng.Intn(10))))
	default:
		n := 1 + rng.Intn(5)
		vs := make([]value.Value, 0, n)
		for i := 0; i < n; i++ {
			vs = append(vs, iv(int64(rng.Intn(20))))
		}
		return MustEnum(vs...)
	}
}

// Property: p.Contains(q) == (∀v: q.Matches(v) ⇒ p.Matches(v)) over the
// whole finite domain the patterns are drawn from. Contains is allowed
// to be exact here because the domain is integers, where the
// implementation's discrete reasoning applies.
func TestContainsMatchesSemanticsOnIntDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		p, q := randomPattern(rng), randomPattern(rng)
		want := true
		for v := int64(-1); v <= 31; v++ {
			if q.Matches(iv(v)) && !p.Matches(iv(v)) {
				want = false
				break
			}
		}
		got := p.Contains(q)
		if got && !want {
			// Contains claiming containment that does not hold would be
			// UNSOUND (verification and subsumption rely on it).
			t.Fatalf("UNSOUND: %v.Contains(%v) = true but %v escapes", p, q, q)
		}
		if !got && want && q.Kind() != Wildcard {
			// The implementation is allowed to be conservative only for
			// continuous kinds; over ints it should be exact.
			t.Errorf("incomplete: %v.Contains(%v) = false but containment holds", p, q)
		}
	}
}

// Property: Contains is reflexive and transitive on random patterns.
func TestContainsReflexiveTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pats []Pattern
	for i := 0; i < 40; i++ {
		pats = append(pats, randomPattern(rng))
	}
	for _, p := range pats {
		if !p.Contains(p) {
			t.Fatalf("%v does not contain itself", p)
		}
	}
	for _, a := range pats {
		for _, b := range pats {
			if !a.Contains(b) {
				continue
			}
			for _, c := range pats {
				if b.Contains(c) && !a.Contains(c) {
					t.Fatalf("transitivity broken: %v ⊇ %v ⊇ %v", a, b, c)
				}
			}
		}
	}
}

// Property: And is the greatest lower bound w.r.t. Contains — both
// operands contain the conjunction.
func TestAndBoundedByOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		a, b := randomPattern(rng), randomPattern(rng)
		ab := a.And(b)
		if !a.Contains(ab) || !b.Contains(ab) {
			t.Fatalf("%v.And(%v) = %v escapes an operand", a, b, ab)
		}
	}
}

// Property: TryUnion is an upper bound — the union contains both
// operands.
func TestUnionContainsOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a, b := randomPattern(rng), randomPattern(rng)
		u, ok := a.TryUnion(b)
		if !ok {
			continue
		}
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("%v ∪ %v = %v does not contain both", a, b, u)
		}
	}
}

// quick.Check variant over arbitrary int64 constants: containment of
// constants is just equality-or-coverage.
func TestQuickConstContainment(t *testing.T) {
	f := func(a, b int64) bool {
		ca, cb := Const(iv(a)), Const(iv(b))
		return ca.Contains(cb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
