package punct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pjoin/internal/value"
)

func iv(i int64) value.Value { return value.Int(i) }

func TestPatternKindString(t *testing.T) {
	names := map[PatternKind]string{
		Wildcard: "wildcard", Constant: "constant", Range: "range",
		Enum: "enum", Empty: "empty", PatternKind(99): "PatternKind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestZeroPatternIsWildcard(t *testing.T) {
	var p Pattern
	if p.Kind() != Wildcard || !p.Matches(iv(123)) {
		t.Error("zero Pattern should be wildcard")
	}
}

func TestWildcardMatchesEverything(t *testing.T) {
	w := Star()
	for _, v := range []value.Value{iv(0), value.Float(1.5), value.Str("x"), value.Bool(false)} {
		if !w.Matches(v) {
			t.Errorf("wildcard should match %v", v)
		}
	}
}

func TestEmptyMatchesNothing(t *testing.T) {
	e := None()
	for _, v := range []value.Value{iv(0), value.Str(""), value.Bool(true)} {
		if e.Matches(v) {
			t.Errorf("empty should not match %v", v)
		}
	}
}

func TestConstantMatch(t *testing.T) {
	c := Const(iv(5))
	if !c.Matches(iv(5)) {
		t.Error("Const(5) should match 5")
	}
	if c.Matches(iv(6)) || c.Matches(value.Float(5)) || c.Matches(value.Str("5")) {
		t.Error("Const(5) should only match int 5")
	}
}

func TestConstInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Const(zero Value) should panic")
		}
	}()
	Const(value.Value{})
}

func TestRangeMatch(t *testing.T) {
	r := MustRange(iv(10), iv(20))
	for _, c := range []struct {
		v    value.Value
		want bool
	}{
		{iv(10), true}, {iv(15), true}, {iv(20), true},
		{iv(9), false}, {iv(21), false},
		{value.Str("15"), false}, {value.Float(15), false},
	} {
		if got := r.Matches(c.v); got != c.want {
			t.Errorf("[10..20].Matches(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestRangeNormalisation(t *testing.T) {
	if p := MustRange(iv(5), iv(5)); p.Kind() != Constant || !p.ConstVal().Equal(iv(5)) {
		t.Errorf("degenerate range should be Constant, got %v", p)
	}
	if p := MustRange(iv(7), iv(3)); p.Kind() != Empty {
		t.Errorf("inverted range should be Empty, got %v", p)
	}
	if _, err := NewRange(iv(1), value.Str("x")); err == nil {
		t.Error("mixed-kind range should error")
	}
}

func TestStringRange(t *testing.T) {
	r := MustRange(value.Str("apple"), value.Str("mango"))
	if !r.Matches(value.Str("banana")) || r.Matches(value.Str("zebra")) {
		t.Error("string range matching broken")
	}
}

func TestEnumMatchAndNormalisation(t *testing.T) {
	e := MustEnum(iv(3), iv(1), iv(2), iv(3))
	if e.Kind() != Enum {
		t.Fatalf("enum kind = %v", e.Kind())
	}
	ms := e.Members()
	if len(ms) != 3 || !ms[0].Equal(iv(1)) || !ms[1].Equal(iv(2)) || !ms[2].Equal(iv(3)) {
		t.Errorf("enum should be sorted deduped, got %v", ms)
	}
	if !e.Matches(iv(2)) || e.Matches(iv(4)) {
		t.Error("enum matching broken")
	}
	if p := MustEnum(iv(9)); p.Kind() != Constant {
		t.Errorf("singleton enum should normalise to Constant, got %v", p)
	}
	if p := MustEnum(); p.Kind() != Empty {
		t.Errorf("empty enum should normalise to Empty, got %v", p)
	}
	if _, err := NewEnum(iv(1), value.Str("a")); err == nil {
		t.Error("mixed-kind enum should error")
	}
	if _, err := NewEnum(value.Value{}); err == nil {
		t.Error("invalid value in enum should error")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("ConstVal on wildcard", func() { Star().ConstVal() })
	mustPanic("Bounds on constant", func() { Const(iv(1)).Bounds() })
	mustPanic("Members on range", func() { MustRange(iv(1), iv(2)).Members() })
}

func TestAndTruthTable(t *testing.T) {
	r1020 := MustRange(iv(10), iv(20))
	r1530 := MustRange(iv(15), iv(30))
	r2530 := MustRange(iv(25), iv(30))
	e123 := MustEnum(iv(1), iv(2), iv(3))
	e234 := MustEnum(iv(2), iv(3), iv(4))
	cases := []struct {
		name string
		a, b Pattern
		want Pattern
	}{
		{"star and star", Star(), Star(), Star()},
		{"star and const", Star(), Const(iv(5)), Const(iv(5))},
		{"const and star", Const(iv(5)), Star(), Const(iv(5))},
		{"empty absorbs", None(), Star(), None()},
		{"empty absorbs rhs", r1020, None(), None()},
		{"equal consts", Const(iv(5)), Const(iv(5)), Const(iv(5))},
		{"diff consts", Const(iv(5)), Const(iv(6)), None()},
		{"const in range", Const(iv(12)), r1020, Const(iv(12))},
		{"range and const inside", r1020, Const(iv(12)), Const(iv(12))},
		{"const outside range", Const(iv(9)), r1020, None()},
		{"const in enum", Const(iv(2)), e123, Const(iv(2))},
		{"const not in enum", Const(iv(9)), e123, None()},
		{"overlapping ranges", r1020, r1530, MustRange(iv(15), iv(20))},
		{"disjoint ranges", r1020, r2530, None()},
		{"touching ranges", r1020, MustRange(iv(20), iv(40)), Const(iv(20))},
		{"enum and enum", e123, e234, MustEnum(iv(2), iv(3))},
		{"enum and range", e123, MustRange(iv(2), iv(9)), MustEnum(iv(2), iv(3))},
		{"range and enum", MustRange(iv(2), iv(9)), e123, MustEnum(iv(2), iv(3))},
		{"enum vs disjoint range", e123, MustRange(iv(7), iv(9)), None()},
		{"mixed-kind ranges", r1020, MustRange(value.Str("a"), value.Str("z")), None()},
		{"enum singleton result", e123, MustRange(iv(3), iv(9)), Const(iv(3))},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); !got.Equal(c.want) {
			t.Errorf("%s: %v.And(%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestAndCommutative(t *testing.T) {
	pats := samplePatterns()
	for _, a := range pats {
		for _, b := range pats {
			ab, ba := a.And(b), b.And(a)
			if !ab.Equal(ba) {
				t.Errorf("And not commutative: %v.And(%v)=%v but %v.And(%v)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestAndIdempotent(t *testing.T) {
	for _, a := range samplePatterns() {
		if got := a.And(a); !got.Equal(a) {
			t.Errorf("%v.And(itself) = %v", a, got)
		}
	}
}

// TestAndSemantics cross-checks And against direct evaluation: for every
// probe value, v matches a.And(b) iff it matches both a and b.
func TestAndSemantics(t *testing.T) {
	pats := samplePatterns()
	probes := []value.Value{}
	for i := int64(-2); i <= 35; i++ {
		probes = append(probes, iv(i))
	}
	probes = append(probes, value.Str("m"), value.Float(12))
	for _, a := range pats {
		for _, b := range pats {
			ab := a.And(b)
			for _, v := range probes {
				want := a.Matches(v) && b.Matches(v)
				if got := ab.Matches(v); got != want {
					t.Fatalf("(%v And %v)=%v: Matches(%v)=%v, want %v", a, b, ab, v, got, want)
				}
			}
		}
	}
}

func samplePatterns() []Pattern {
	return []Pattern{
		Star(), None(),
		Const(iv(5)), Const(iv(12)), Const(value.Str("m")),
		MustRange(iv(10), iv(20)), MustRange(iv(0), iv(30)), MustRange(iv(21), iv(25)),
		MustRange(value.Str("a"), value.Str("z")),
		MustEnum(iv(1), iv(2), iv(3)), MustEnum(iv(12), iv(21)), MustEnum(iv(5), iv(15), iv(25)),
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		name string
		p, q Pattern
		want bool
	}{
		{"star contains range", Star(), MustRange(iv(1), iv(9)), true},
		{"star contains star", Star(), Star(), true},
		{"range contains empty", MustRange(iv(1), iv(2)), None(), true},
		{"range not contains star", MustRange(iv(1), iv(2)), Star(), false},
		{"range contains subrange", MustRange(iv(0), iv(100)), MustRange(iv(10), iv(20)), true},
		{"range not contains overlap", MustRange(iv(0), iv(15)), MustRange(iv(10), iv(20)), false},
		{"range contains const", MustRange(iv(0), iv(10)), Const(iv(5)), true},
		{"range not contains const", MustRange(iv(0), iv(10)), Const(iv(50)), false},
		{"enum contains enum", MustEnum(iv(1), iv(2), iv(3)), MustEnum(iv(1), iv(3)), true},
		{"enum not contains enum", MustEnum(iv(1), iv(2)), MustEnum(iv(1), iv(3)), false},
		{"enum covers int range", MustEnum(iv(4), iv(5), iv(6), iv(7)), MustRange(iv(5), iv(7)), true},
		{"enum gap misses int range", MustEnum(iv(5), iv(7)), MustRange(iv(5), iv(7)), false},
		{"enum cannot cover float range", MustEnum(value.Float(1), value.Float(2)), MustRange(value.Float(1), value.Float(2)), false},
		{"const contains itself", Const(iv(3)), Const(iv(3)), true},
		{"const not contains range", Const(iv(3)), MustRange(iv(3), iv(4)), false},
	}
	for _, c := range cases {
		if got := c.p.Contains(c.q); got != c.want {
			t.Errorf("%s: %v.Contains(%v) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

// Contains must be consistent with And: p.Contains(q) implies p.And(q)
// equals q.
func TestContainsConsistentWithAnd(t *testing.T) {
	pats := samplePatterns()
	for _, p := range pats {
		for _, q := range pats {
			if p.Contains(q) {
				if got := p.And(q); !got.Equal(q) {
					t.Errorf("%v.Contains(%v) but And = %v", p, q, got)
				}
			}
		}
	}
}

func TestDisjoint(t *testing.T) {
	if !MustRange(iv(1), iv(5)).Disjoint(MustRange(iv(6), iv(9))) {
		t.Error("disjoint ranges not detected")
	}
	if Const(iv(3)).Disjoint(MustRange(iv(1), iv(5))) {
		t.Error("overlapping patterns reported disjoint")
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	for _, p := range samplePatterns() {
		got, err := ParsePattern(p.String())
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", p.String(), err)
			continue
		}
		if !got.Equal(p) {
			t.Errorf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
}

func TestQuickRangeAndIsIntersection(t *testing.T) {
	f := func(a, b, c, d, probe int16) bool {
		lo1, hi1 := int64(min(a, b)), int64(max(a, b))
		lo2, hi2 := int64(min(c, d)), int64(max(c, d))
		r1 := MustRange(iv(lo1), iv(hi1))
		r2 := MustRange(iv(lo2), iv(hi2))
		v := iv(int64(probe))
		want := r1.Matches(v) && r2.Matches(v)
		return r1.And(r2).Matches(v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEnumAndIsIntersection(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(42))}
	f := func(xs, ys []int8, probe int8) bool {
		toEnum := func(ns []int8) Pattern {
			vs := make([]value.Value, len(ns))
			for i, n := range ns {
				vs[i] = iv(int64(n))
			}
			p, err := NewEnum(vs...)
			return ignoreErr(p, err)
		}
		e1, e2 := toEnum(xs), toEnum(ys)
		v := iv(int64(probe))
		want := e1.Matches(v) && e2.Matches(v)
		return e1.And(e2).Matches(v) == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func ignoreErr(p Pattern, err error) Pattern {
	if err != nil {
		panic(err)
	}
	return p
}
