package punct

import (
	"pjoin/internal/value"
)

// maxUnionEnum bounds the size of enumeration patterns produced by
// TryUnion so compaction never trades a small set of punctuations for
// one enormous pattern.
const maxUnionEnum = 32

// TryUnion returns a single pattern matching exactly the union of the
// values p and q match, when such a pattern exists (and is worth
// having). It reports ok=false when the union is not representable as
// one pattern — e.g. two disjoint, non-adjacent ranges.
//
// Unions are what punctuation-set compaction needs: two active
// punctuations may be replaced by one that matches exactly their union,
// since both promises are in force. (Contrast And/conjunction, which the
// paper defines; union is this repository's extension.)
func (p Pattern) TryUnion(q Pattern) (Pattern, bool) {
	if p.kind == Wildcard || q.kind == Wildcard {
		return Star(), true
	}
	if p.kind == Empty {
		return q, true
	}
	if q.kind == Empty {
		return p, true
	}
	// Normalise so ranges come first, then enums, then constants.
	if rank(q.kind) < rank(p.kind) {
		p, q = q, p
	}
	switch p.kind {
	case Range:
		switch q.kind {
		case Range:
			return unionRanges(p, q)
		case Enum:
			return unionRangeValues(p, q.set)
		case Constant:
			return unionRangeValues(p, []value.Value{q.lo})
		}
	case Enum:
		switch q.kind {
		case Enum:
			return unionEnums(append(append([]value.Value{}, p.set...), q.set...))
		case Constant:
			return unionEnums(append(append([]value.Value{}, p.set...), q.lo))
		}
	case Constant:
		if q.kind == Constant {
			if p.lo.Equal(q.lo) {
				return p, true
			}
			if sameOrderedKind(p.lo, q.lo) {
				lo, hi := p.lo, q.lo
				if hi.Less(lo) {
					lo, hi = hi, lo
				}
				if adjacent(lo, hi) {
					r, err := NewRange(lo, hi)
					return r, err == nil
				}
			}
			return unionEnums([]value.Value{p.lo, q.lo})
		}
	}
	return Pattern{}, false
}

func rank(k PatternKind) int {
	switch k {
	case Range:
		return 0
	case Enum:
		return 1
	case Constant:
		return 2
	default:
		return 3
	}
}

func sameOrderedKind(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	_, err := a.Compare(b)
	return err == nil
}

// adjacent reports whether hi immediately follows lo in a discrete
// domain (ints, bools), so [lo..hi] covers exactly {lo, hi}… or their
// in-betweens when they are farther apart — callers only use it for the
// "touching" test, i.e. succ(lo) == hi.
func adjacent(lo, hi value.Value) bool {
	s, ok := lo.Succ()
	return ok && s.Equal(hi)
}

func unionRanges(p, q Pattern) (Pattern, bool) {
	if !sameOrderedKind(p.lo, q.lo) {
		return Pattern{}, false
	}
	// Overlapping or touching (for discrete kinds, off-by-one touching
	// also merges).
	overlaps := func(a, b Pattern) bool {
		c1, _ := a.lo.Compare(b.hi)
		c2, _ := b.lo.Compare(a.hi)
		return c1 <= 0 && c2 <= 0
	}
	touching := adjacent(p.hi, q.lo) || adjacent(q.hi, p.lo)
	if !overlaps(p, q) && !touching {
		return Pattern{}, false
	}
	lo := p.lo
	if q.lo.Less(lo) {
		lo = q.lo
	}
	hi := p.hi
	if hi.Less(q.hi) {
		hi = q.hi
	}
	r, err := NewRange(lo, hi)
	return r, err == nil
}

// unionRangeValues extends a range by values that are inside or
// discretely adjacent to it; any value that would leave a gap defeats
// the union.
func unionRangeValues(r Pattern, vs []value.Value) (Pattern, bool) {
	lo, hi := r.lo, r.hi
	for _, v := range vs {
		if !sameOrderedKind(lo, v) {
			return Pattern{}, false
		}
		switch {
		case r.Matches(v):
			// already covered
		case adjacent(v, lo):
			lo = v
		case adjacent(hi, v):
			hi = v
		default:
			return Pattern{}, false
		}
		nr, err := NewRange(lo, hi)
		if err != nil || nr.kind != Range {
			return Pattern{}, false
		}
		r = nr
	}
	out, err := NewRange(lo, hi)
	return out, err == nil
}

func unionEnums(vs []value.Value) (Pattern, bool) {
	p, err := NewEnum(vs...)
	if err != nil {
		return Pattern{}, false
	}
	if p.kind == Enum && len(p.set) > maxUnionEnum {
		return Pattern{}, false
	}
	// A dense integer enum collapses to a range.
	if p.kind == Enum && p.set[0].Kind() == value.KindInt {
		lo, hi := p.set[0].IntVal(), p.set[len(p.set)-1].IntVal()
		if hi-lo+1 == int64(len(p.set)) {
			r, err := NewRange(value.Int(lo), value.Int(hi))
			if err == nil {
				return r, true
			}
		}
	}
	return p, true
}

// Compact merges pairs of not-yet-indexed punctuations that differ only
// in attribute attr and whose attr patterns union into a single pattern.
// Indexed entries are left alone: stored tuples may reference their pids
// and their counts must stay attributable. Compact returns the number of
// entries removed.
//
// Compaction matters for long propagation-less runs: the purge and
// drop-on-the-fly rules consult the punctuation set on every tuple, and
// constant-per-key punctuations otherwise accumulate without bound.
func (s *Set) Compact(attr int) int {
	removed := 0
	for i := 0; i < len(s.entries); i++ {
		a := s.entries[i]
		if a.Indexed || attr >= a.P.Width() {
			continue
		}
		for j := i + 1; j < len(s.entries); {
			b := s.entries[j]
			if b.Indexed || b.P.Width() != a.P.Width() {
				j++
				continue
			}
			if !samePatternsExcept(a.P, b.P, attr) {
				j++
				continue
			}
			u, ok := a.P.PatternAt(attr).TryUnion(b.P.PatternAt(attr))
			if !ok {
				j++
				continue
			}
			// Merge b into a: a keeps its (earlier) pid and position.
			pats := make([]Pattern, a.P.Width())
			for k := 0; k < a.P.Width(); k++ {
				pats[k] = a.P.PatternAt(k)
			}
			pats[attr] = u
			merged, err := New(pats...)
			if err != nil {
				j++
				continue
			}
			s.dropFromIndex(a)
			s.dropFromIndex(b)
			a.P = merged
			s.entries = append(s.entries[:j], s.entries[j+1:]...)
			delete(s.byPID, b.PID)
			s.reindex(a)
			removed++
		}
	}
	return removed
}

func samePatternsExcept(p, q Punctuation, attr int) bool {
	for i := 0; i < p.Width(); i++ {
		if i == attr {
			continue
		}
		if !p.PatternAt(i).Equal(q.PatternAt(i)) {
			return false
		}
	}
	return true
}

// reindex re-registers an entry whose punctuation changed in the keyed
// fast-path index, preserving arrival order within each bucket.
func (s *Set) reindex(e *Entry) {
	if s.keyAttr < 0 || !exhaustiveOn(e.P, s.keyAttr) {
		return
	}
	if e.P.PatternAt(s.keyAttr).Kind() == Constant {
		v := e.P.PatternAt(s.keyAttr).ConstVal()
		s.constIdx[v] = append(s.constIdx[v], e)
		sortEntriesByPID(s.constIdx[v])
		return
	}
	s.nonConst = append(s.nonConst, e)
	sortEntriesByPID(s.nonConst)
}

func sortEntriesByPID(es []*Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].PID < es[j-1].PID; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
