package punct

import (
	"testing"

	"pjoin/internal/value"
)

// Allocation micro-benchmarks for the punctuation matching hot paths:
// SetMatchAttr runs once per arriving tuple (drop-on-the-fly) and once
// per stored tuple in every purge scan; Matches runs per tuple during
// index building. None of them may allocate.

func benchSet(b *testing.B, keys, ranges int) *Set {
	b.Helper()
	s := NewKeyedSet(0, false)
	for k := 0; k < keys; k++ {
		if _, err := s.Add(MustKeyOnly(2, 0, Const(value.Int(int64(k))))); err != nil {
			b.Fatal(err)
		}
	}
	for r := 0; r < ranges; r++ {
		lo := int64(1000 + 10*r)
		p := MustKeyOnly(2, 0, MustRange(value.Int(lo), value.Int(lo+9)))
		if _, err := s.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSetMatchAttrConst: the keyed fast path — constant
// punctuations resolved through the per-value index. Expected: 0
// allocs/op regardless of set size.
func BenchmarkSetMatchAttrConst(b *testing.B) {
	s := benchSet(b, 512, 0)
	hit := value.Int(100)
	miss := value.Int(1 << 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.SetMatchAttr(0, hit) {
			b.Fatal("expected hit")
		}
		if s.SetMatchAttr(0, miss) {
			b.Fatal("expected miss")
		}
	}
}

// BenchmarkSetMatchAttrRange: range punctuations fall off the constant
// index onto the linear non-constant scan.
func BenchmarkSetMatchAttrRange(b *testing.B) {
	s := benchSet(b, 0, 64)
	hit := value.Int(1005)
	miss := value.Int(1 << 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.SetMatchAttr(0, hit) {
			b.Fatal("expected hit")
		}
		if s.SetMatchAttr(0, miss) {
			b.Fatal("expected miss")
		}
	}
}

// BenchmarkPunctMatches: full-width pattern matching, the per-tuple
// predicate of index building (Fig. 3).
func BenchmarkPunctMatches(b *testing.B) {
	p := MustKeyOnly(4, 0, Const(value.Int(7)))
	hit := []value.Value{value.Int(7), value.Str("x"), value.Int(1), value.Str("y")}
	miss := []value.Value{value.Int(8), value.Str("x"), value.Int(1), value.Str("y")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Matches(hit) {
			b.Fatal("expected match")
		}
		if p.Matches(miss) {
			b.Fatal("expected no match")
		}
	}
}

// TestSetMatchAttrDoesNotAllocate enforces the zero-allocation claim on
// the per-tuple matching paths.
func TestSetMatchAttrDoesNotAllocate(t *testing.T) {
	s := NewKeyedSet(0, false)
	for k := 0; k < 64; k++ {
		if _, err := s.Add(MustKeyOnly(2, 0, Const(value.Int(int64(k))))); err != nil {
			t.Fatal(err)
		}
	}
	v := value.Int(33)
	allocs := testing.AllocsPerRun(100, func() {
		if !s.SetMatchAttr(0, v) {
			t.Fatal("expected hit")
		}
	})
	if allocs != 0 {
		t.Errorf("SetMatchAttr allocates %.1f objects per call, want 0", allocs)
	}
}
