package punct

import (
	"testing"

	"pjoin/internal/value"
)

func TestTryUnionTable(t *testing.T) {
	cases := []struct {
		name string
		a, b Pattern
		want Pattern
		ok   bool
	}{
		{"wildcard absorbs", Star(), Const(iv(1)), Star(), true},
		{"empty identity", None(), Const(iv(1)), Const(iv(1)), true},
		{"empty identity rhs", MustRange(iv(1), iv(3)), None(), MustRange(iv(1), iv(3)), true},
		{"equal consts", Const(iv(5)), Const(iv(5)), Const(iv(5)), true},
		{"adjacent ints", Const(iv(5)), Const(iv(6)), MustRange(iv(5), iv(6)), true},
		{"adjacent ints reversed", Const(iv(6)), Const(iv(5)), MustRange(iv(5), iv(6)), true},
		{"distant ints make enum", Const(iv(1)), Const(iv(9)), MustEnum(iv(1), iv(9)), true},
		{"overlapping ranges", MustRange(iv(1), iv(5)), MustRange(iv(3), iv(9)), MustRange(iv(1), iv(9)), true},
		{"touching int ranges", MustRange(iv(1), iv(5)), MustRange(iv(6), iv(9)), MustRange(iv(1), iv(9)), true},
		{"gapped ranges fail", MustRange(iv(1), iv(3)), MustRange(iv(7), iv(9)), Pattern{}, false},
		{"const inside range", MustRange(iv(1), iv(5)), Const(iv(3)), MustRange(iv(1), iv(5)), true},
		{"const extends range", MustRange(iv(1), iv(5)), Const(iv(6)), MustRange(iv(1), iv(6)), true},
		{"const below range", Const(iv(0)), MustRange(iv(1), iv(5)), MustRange(iv(0), iv(5)), true},
		{"const gap from range fails", MustRange(iv(1), iv(5)), Const(iv(9)), Pattern{}, false},
		{"enum union", MustEnum(iv(1), iv(3)), MustEnum(iv(5), iv(7)), MustEnum(iv(1), iv(3), iv(5), iv(7)), true},
		{"dense enum collapses to range", MustEnum(iv(1), iv(3)), MustEnum(iv(2), iv(4)), MustRange(iv(1), iv(4)), true},
		{"enum plus const", MustEnum(iv(1), iv(5)), Const(iv(9)), MustEnum(iv(1), iv(5), iv(9)), true},
		{"range plus covered enum", MustRange(iv(1), iv(9)), MustEnum(iv(2), iv(5)), MustRange(iv(1), iv(9)), true},
		{"range plus stray enum fails", MustRange(iv(1), iv(4)), MustEnum(iv(2), iv(9)), Pattern{}, false},
		{"mixed kinds fail", Const(iv(1)), Const(value.Str("a")), Pattern{}, false},
		{"string ranges only overlap", MustRange(value.Str("a"), value.Str("f")), MustRange(value.Str("d"), value.Str("k")), MustRange(value.Str("a"), value.Str("k")), true},
		{"string ranges no adjacency", MustRange(value.Str("a"), value.Str("b")), MustRange(value.Str("c"), value.Str("d")), Pattern{}, false},
		{"float consts enum", Const(value.Float(1.5)), Const(value.Float(2.5)), MustEnum(value.Float(1.5), value.Float(2.5)), true},
	}
	for _, c := range cases {
		got, ok := c.a.TryUnion(c.b)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("%s: union = %v, want %v", c.name, got, c.want)
		}
		// Union must be symmetric.
		got2, ok2 := c.b.TryUnion(c.a)
		if ok2 != ok || (ok && !got2.Equal(got)) {
			t.Errorf("%s: not symmetric: %v/%v vs %v/%v", c.name, got, ok, got2, ok2)
		}
	}
}

// Union semantics: v matches the union iff it matches either input.
func TestTryUnionSemantics(t *testing.T) {
	pats := samplePatterns()
	probes := []value.Value{}
	for i := int64(-2); i <= 35; i++ {
		probes = append(probes, iv(i))
	}
	for _, a := range pats {
		for _, b := range pats {
			u, ok := a.TryUnion(b)
			if !ok {
				continue
			}
			for _, v := range probes {
				want := a.Matches(v) || b.Matches(v)
				if got := u.Matches(v); got != want {
					t.Fatalf("(%v ∪ %v)=%v: Matches(%v)=%v want %v", a, b, u, v, got, want)
				}
			}
		}
	}
}

func TestTryUnionEnumCap(t *testing.T) {
	var vs1, vs2 []value.Value
	for i := int64(0); i < 40; i++ {
		vs1 = append(vs1, iv(i*10))
		vs2 = append(vs2, iv(i*10+5))
	}
	a := MustEnum(vs1...)
	b := MustEnum(vs2...)
	if _, ok := a.TryUnion(b); ok {
		t.Error("oversized enum union should be refused")
	}
}

func TestSetCompactMergesConstants(t *testing.T) {
	s := NewKeyedSet(0, false)
	for k := int64(0); k < 10; k++ {
		if _, err := s.Add(MustKeyOnly(2, 0, Const(iv(k)))); err != nil {
			t.Fatal(err)
		}
	}
	removed := s.Compact(0)
	if removed != 9 {
		t.Errorf("removed = %d, want 9", removed)
	}
	if s.Len() != 1 {
		t.Fatalf("set len = %d", s.Len())
	}
	e := s.Entries()[0]
	if !e.P.PatternAt(0).Equal(MustRange(iv(0), iv(9))) {
		t.Errorf("merged pattern = %v", e.P)
	}
	// Matching still works through the keyed index.
	for k := int64(0); k < 10; k++ {
		if !s.SetMatchAttr(0, iv(k)) {
			t.Errorf("key %d lost after compaction", k)
		}
	}
	if s.SetMatchAttr(0, iv(10)) {
		t.Error("compaction over-promised")
	}
}

func TestSetCompactSkipsIndexedEntries(t *testing.T) {
	s := NewKeyedSet(0, false)
	e1, _ := s.Add(MustKeyOnly(2, 0, Const(iv(1))))
	e1.Indexed = true
	e1.Count = 3
	s.Add(MustKeyOnly(2, 0, Const(iv(2))))
	if removed := s.Compact(0); removed != 0 {
		t.Errorf("compaction touched an indexed entry (removed %d)", removed)
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestSetCompactRespectsOtherPatterns(t *testing.T) {
	s := NewKeyedSet(0, false)
	// Same key-adjacent constants but DIFFERENT second patterns: no merge.
	s.Add(MustNew(Const(iv(1)), Const(iv(100))))
	s.Add(MustNew(Const(iv(2)), Const(iv(200))))
	if removed := s.Compact(0); removed != 0 {
		t.Errorf("merged punctuations with differing non-key patterns: %d", removed)
	}
	// Same second pattern: merge.
	s2 := NewKeyedSet(0, false)
	s2.Add(MustNew(Const(iv(1)), Const(iv(100))))
	s2.Add(MustNew(Const(iv(2)), Const(iv(100))))
	if removed := s2.Compact(0); removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
}

func TestSetCompactPreservesSemantics(t *testing.T) {
	// Property: compaction never changes SetMatchAttr for any probe.
	s := NewKeyedSet(0, false)
	keys := []int64{1, 2, 3, 7, 8, 20, 21, 22, 40}
	for _, k := range keys {
		s.Add(MustKeyOnly(2, 0, Const(iv(k))))
	}
	before := map[int64]bool{}
	for k := int64(0); k < 50; k++ {
		before[k] = s.SetMatchAttr(0, iv(k))
	}
	s.Compact(0)
	for k := int64(0); k < 50; k++ {
		if got := s.SetMatchAttr(0, iv(k)); got != before[k] {
			t.Errorf("key %d: %v -> %v after compaction", k, before[k], got)
		}
	}
	if s.Len() >= len(keys) {
		t.Errorf("compaction did nothing: len = %d", s.Len())
	}
}
