package punct_test

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/value"
)

// A punctuation is an ordered set of patterns, one per attribute; a
// tuple matching it will never appear later in the stream.
func Example() {
	// "No more tuples with item_id 5" over an (item_id, bid) stream.
	p := punct.MustKeyOnly(2, 0, punct.Const(value.Int(5)))
	fmt.Println(p)
	fmt.Println(p.Matches([]value.Value{value.Int(5), value.Float(10)}))
	fmt.Println(p.Matches([]value.Value{value.Int(6), value.Float(10)}))

	// Patterns come in five kinds; the conjunction of two punctuations
	// is a punctuation (§2.2).
	q := punct.MustKeyOnly(2, 0, punct.MustRange(value.Int(0), value.Int(9)))
	and, _ := p.And(q)
	fmt.Println(and)
	// Output:
	// <5, *>
	// true
	// false
	// <5, *>
}

// Sets keep punctuations in arrival order and support the purge rules'
// setMatch predicate plus the propagation index (pid + count).
func ExampleSet() {
	s := punct.NewKeyedSet(0, false)
	s.Add(punct.MustKeyOnly(2, 0, punct.Const(value.Int(1))))
	s.Add(punct.MustKeyOnly(2, 0, punct.MustRange(value.Int(10), value.Int(19))))

	fmt.Println(s.SetMatchAttr(0, value.Int(1)))
	fmt.Println(s.SetMatchAttr(0, value.Int(15)))
	fmt.Println(s.SetMatchAttr(0, value.Int(5)))
	// Output:
	// true
	// true
	// false
}

// Compaction merges punctuations whose key patterns union cleanly:
// a run of per-key constants becomes one range.
func ExampleSet_Compact() {
	s := punct.NewKeyedSet(0, false)
	for k := int64(0); k < 5; k++ {
		s.Add(punct.MustKeyOnly(2, 0, punct.Const(value.Int(k))))
	}
	removed := s.Compact(0)
	fmt.Println(removed, s.Entries()[0].P)
	// Output:
	// 4 <[0 .. 4], *>
}

func ExamplePattern_TryUnion() {
	a := punct.MustRange(value.Int(1), value.Int(5))
	b := punct.Const(value.Int(6))
	u, ok := a.TryUnion(b)
	fmt.Println(u, ok)
	// Output:
	// [1 .. 6] true
}
