package punct

import (
	"fmt"
	"strings"

	"pjoin/internal/value"
)

// Punctuation is an ordered set of patterns, one per attribute of the
// tuples in the stream it punctuates (§2.2). A tuple t matches
// punctuation p — match(t, p) — when every attribute value of t matches
// the pattern at the same position. The semantics promise that no tuple
// arriving after p in its stream matches p.
type Punctuation struct {
	patterns []Pattern
}

// New builds a punctuation from its per-attribute patterns. At least one
// pattern is required: a zero-width punctuation has no meaning.
func New(patterns ...Pattern) (Punctuation, error) {
	if len(patterns) == 0 {
		return Punctuation{}, fmt.Errorf("punct: punctuation needs at least one pattern")
	}
	ps := make([]Pattern, len(patterns))
	copy(ps, patterns)
	return Punctuation{patterns: ps}, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(patterns ...Pattern) Punctuation {
	p, err := New(patterns...)
	if err != nil {
		panic(err)
	}
	return p
}

// KeyOnly builds the common punctuation shape used on the join attribute:
// the pattern at position attr is pat and every other of width attributes
// is wildcard. For example KeyOnly(2, 0, Const(5)) over an Open(item_id,
// seller) stream is the paper's "no more tuples with item_id 5".
func KeyOnly(width, attr int, pat Pattern) (Punctuation, error) {
	if width <= 0 {
		return Punctuation{}, fmt.Errorf("punct: width must be positive, got %d", width)
	}
	if attr < 0 || attr >= width {
		return Punctuation{}, fmt.Errorf("punct: attribute %d out of range [0,%d)", attr, width)
	}
	ps := make([]Pattern, width)
	for i := range ps {
		ps[i] = Star()
	}
	ps[attr] = pat
	return Punctuation{patterns: ps}, nil
}

// MustKeyOnly is KeyOnly that panics on error.
func MustKeyOnly(width, attr int, pat Pattern) Punctuation {
	p, err := KeyOnly(width, attr, pat)
	if err != nil {
		panic(err)
	}
	return p
}

// IsZero reports whether p is the zero Punctuation (no patterns).
func (p Punctuation) IsZero() bool { return p.patterns == nil }

// Width returns the number of attribute patterns.
func (p Punctuation) Width() int { return len(p.patterns) }

// PatternAt returns the pattern for attribute i.
func (p Punctuation) PatternAt(i int) Pattern { return p.patterns[i] }

// Matches implements match(t, p) for a tuple given as its attribute
// values. A tuple of different width never matches.
//
//pjoin:hotpath
func (p Punctuation) Matches(attrs []value.Value) bool {
	if len(attrs) != len(p.patterns) {
		return false
	}
	for i, pat := range p.patterns {
		if !pat.Matches(attrs[i]) {
			return false
		}
	}
	return true
}

// And returns the conjunction of two punctuations of equal width —
// "the 'and' of any two punctuations is also a punctuation" (§2.2).
func (p Punctuation) And(q Punctuation) (Punctuation, error) {
	if len(p.patterns) != len(q.patterns) {
		return Punctuation{}, fmt.Errorf("punct: and of widths %d and %d", len(p.patterns), len(q.patterns))
	}
	out := make([]Pattern, len(p.patterns))
	for i := range out {
		out[i] = p.patterns[i].And(q.patterns[i])
	}
	return Punctuation{patterns: out}, nil
}

// IsEmpty reports whether the punctuation can match no tuple at all, i.e.
// some attribute pattern is Empty. Empty punctuations carry no
// information and operators drop them.
func (p Punctuation) IsEmpty() bool {
	for _, pat := range p.patterns {
		if pat.Kind() == Empty {
			return true
		}
	}
	return len(p.patterns) == 0
}

// Equal reports whether the two punctuations have identical pattern lists.
func (p Punctuation) Equal(q Punctuation) bool {
	if len(p.patterns) != len(q.patterns) {
		return false
	}
	for i := range p.patterns {
		if !p.patterns[i].Equal(q.patterns[i]) {
			return false
		}
	}
	return true
}

// String renders the punctuation as `<p1, p2, ...>`.
func (p Punctuation) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, pat := range p.patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(pat.String())
	}
	b.WriteByte('>')
	return b.String()
}
