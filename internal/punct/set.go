package punct

import (
	"fmt"
	"sort"
	"strings"

	"pjoin/internal/value"
)

// PID identifies a punctuation inside one Set. PIDs are assigned in
// arrival order starting at 1; 0 means "no punctuation" and is the pid of
// unindexed tuples (the paper's null pid, Fig. 2(b)).
type PID uint64

// NoPID is the null pid: the tuple has not been matched to any
// punctuation yet.
const NoPID PID = 0

// Entry is one punctuation held in a Set together with the propagation
// bookkeeping of the paper's punctuation index (Fig. 2(a)): a unique pid,
// the count of state tuples currently matched to it, and whether the
// index-build component has processed it yet.
type Entry struct {
	PID     PID
	P       Punctuation
	Count   int  // state tuples whose pid == PID
	Indexed bool // index build has assigned tuples to this punctuation

	// ArrivedAt is the stream timestamp (ns, a stream.Time value — this
	// package sits below internal/stream) at which the punctuation
	// arrived at the operator. Propagation records now − ArrivedAt as the
	// punctuation's propagation delay (internal/obs.Lat.PunctDelay).
	ArrivedAt int64

	// Propagated marks an entry that was already released downstream but
	// retained in the set (instead of removed, §3.5) so it keeps serving
	// the purge and drop-on-the-fly rules. Retention keeps a set's
	// membership independent of propagation timing, which hash-partitioned
	// parallel joins need: each partition reaches count zero at its own
	// pace, and an early partition must not lose the punctuation's purge
	// power over later arrivals. See core.Config.RetainPropagated.
	Propagated bool

	// TraceID is the punctuation's provenance trace (internal/obs/span),
	// assigned by the operator at arrival when span tracing is on. Purge
	// and drop attribution resolve the responsible entry and stamp its
	// TraceID on the span; zero when tracing is off.
	TraceID uint64
}

// ExhaustiveOn reports whether the punctuation promises exhaustion of a
// single attribute: "no future tuple whose attribute attr has value v"
// follows from a punctuation only when EVERY other pattern is wildcard
// (otherwise it merely excludes a subset of such tuples). This is the
// precondition for using a punctuation in the cross-stream purge and
// drop-on-the-fly rules, which reason about the join attribute alone.
func (e *Entry) ExhaustiveOn(attr int) bool {
	return exhaustiveOn(e.P, attr)
}

func exhaustiveOn(p Punctuation, attr int) bool {
	if attr >= p.Width() {
		return false
	}
	for i := 0; i < p.Width(); i++ {
		if i == attr {
			continue
		}
		if p.PatternAt(i).Kind() != Wildcard {
			return false
		}
	}
	return true
}

// Set is an arrival-ordered punctuation set PS(T) for one input stream
// (§2.2). It supports the two derived predicates the purge and
// propagation rules need — setMatch and count-to-zero detection — and
// optionally verifies the paper's nested-or-disjoint assumption over the
// join attribute.
type Set struct {
	entries []*Entry
	next    PID

	// verifyAttr >= 0 enables checking that each newly added punctuation's
	// pattern on that attribute is either disjoint from or a superset of
	// every earlier pattern (§2.2's Ptn_i ∧ Ptn_j ∈ {∅, Ptn_i}).
	verifyAttr int

	// keyAttr >= 0 enables a fast-path index over that attribute for
	// SetMatchAttr/FirstMatchAttr: entries whose key pattern is a
	// constant live in constIdx, the rest in nonConst. Per-tuple set
	// matching (drop-on-the-fly, purge scans) is then O(1) amortised for
	// the common constant-punctuation workloads instead of O(set size).
	keyAttr  int
	constIdx map[value.Value][]*Entry
	nonConst []*Entry

	// byPID resolves pids to entries in O(1); Get is on the per-purged-
	// tuple path (count decrements).
	byPID map[PID]*Entry
}

// NewSet returns an empty punctuation set with assumption verification
// and key indexing disabled.
func NewSet() *Set {
	return &Set{next: 1, verifyAttr: -1, keyAttr: -1, byPID: make(map[PID]*Entry)}
}

// NewVerifiedSet returns an empty set that checks the nested-or-disjoint
// assumption on join attribute attr for every Add, and indexes that
// attribute for fast SetMatchAttr lookups.
func NewVerifiedSet(attr int) *Set { return NewKeyedSet(attr, true) }

// NewKeyedSet returns an empty set that indexes attribute attr for fast
// SetMatchAttr/FirstMatchAttr lookups; verify additionally enables the
// nested-or-disjoint assumption check on that attribute.
func NewKeyedSet(attr int, verify bool) *Set {
	if attr < 0 {
		panic("punct: NewKeyedSet with negative attribute")
	}
	s := &Set{
		next: 1, verifyAttr: -1, keyAttr: attr,
		constIdx: make(map[value.Value][]*Entry),
		byPID:    make(map[PID]*Entry),
	}
	if verify {
		s.verifyAttr = attr
	}
	return s
}

// Len returns the number of punctuations currently in the set.
func (s *Set) Len() int { return len(s.entries) }

// Add appends p to the set, assigning the next pid, and returns its
// entry. If verification is enabled and p violates the nested-or-disjoint
// assumption against an earlier punctuation, Add reports an error and the
// set is unchanged.
func (s *Set) Add(p Punctuation) (*Entry, error) {
	if p.IsZero() {
		return nil, fmt.Errorf("punct: Add of zero punctuation")
	}
	if s.verifyAttr >= 0 {
		if s.verifyAttr >= p.Width() {
			return nil, fmt.Errorf("punct: verified attribute %d out of range for width %d", s.verifyAttr, p.Width())
		}
		np := p.PatternAt(s.verifyAttr)
		for _, e := range s.entries {
			old := e.P.PatternAt(s.verifyAttr)
			// §2.2 requires each pair to be disjoint or nested. A new
			// pattern CONTAINED in an earlier one is also accepted: it
			// is a redundant re-promise (possible when the earlier
			// entry is the union of compacted punctuations) and
			// violates nothing semantically.
			if !np.Disjoint(old) && !np.Contains(old) && !old.Contains(np) {
				return nil, fmt.Errorf("punct: punctuation %s overlaps earlier %s on attribute %d without nesting",
					p, e.P, s.verifyAttr)
			}
		}
	}
	e := &Entry{PID: s.next, P: p}
	s.next++
	s.entries = append(s.entries, e)
	s.byPID[e.PID] = e
	s.addToIndex(e)
	return e, nil
}

// addToIndex classifies an entry for the keyed fast path. Entries that
// are not exhaustive on the key attribute are indexed NOWHERE: they can
// never satisfy an attribute-exhaustion query.
func (s *Set) addToIndex(e *Entry) {
	if s.keyAttr < 0 || !exhaustiveOn(e.P, s.keyAttr) {
		return
	}
	if e.P.PatternAt(s.keyAttr).Kind() == Constant {
		v := e.P.PatternAt(s.keyAttr).ConstVal()
		s.constIdx[v] = append(s.constIdx[v], e)
	} else {
		s.nonConst = append(s.nonConst, e)
	}
}

// Entries returns the entries in arrival order. The slice is shared; do
// not append to it.
func (s *Set) Entries() []*Entry { return s.entries }

// Get returns the entry with the given pid, or nil.
func (s *Set) Get(pid PID) *Entry { return s.byPID[pid] }

// Remove deletes the entry with the given pid, preserving arrival order
// of the rest, and reports whether it was present. Propagated
// punctuations "are immediately removed from the punctuation set" (§3.5).
func (s *Set) Remove(pid PID) bool {
	for i, e := range s.entries {
		if e.PID == pid {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			delete(s.byPID, pid)
			s.dropFromIndex(e)
			return true
		}
	}
	return false
}

func (s *Set) dropFromIndex(e *Entry) {
	if s.keyAttr < 0 || !exhaustiveOn(e.P, s.keyAttr) {
		return
	}
	if e.P.PatternAt(s.keyAttr).Kind() == Constant {
		v := e.P.PatternAt(s.keyAttr).ConstVal()
		es := s.constIdx[v]
		for i, x := range es {
			if x == e {
				es = append(es[:i], es[i+1:]...)
				break
			}
		}
		if len(es) == 0 {
			delete(s.constIdx, v)
		} else {
			s.constIdx[v] = es
		}
		return
	}
	for i, x := range s.nonConst {
		if x == e {
			s.nonConst = append(s.nonConst[:i], s.nonConst[i+1:]...)
			return
		}
	}
}

// SetMatch implements setMatch(t, PS): whether any punctuation in the set
// matches the tuple's attribute values (§2.2). This is the predicate of
// the purge rules (eq. 1).
//
//pjoin:hotpath
func (s *Set) SetMatch(attrs []value.Value) bool {
	for _, e := range s.entries {
		if e.P.Matches(attrs) {
			return true
		}
	}
	return false
}

// SetMatchAttr reports whether any punctuation promises that no future
// tuple will carry value v in attribute attr. This is the cross-stream
// form of setMatch the purge rules use: a tuple of stream B is purged
// when its join value is exhausted by stream A's punctuation set (§2.2,
// "we only focus on exploiting punctuations over the join attribute").
//
// Only entries exhaustive on attr qualify (every other pattern
// wildcard): a punctuation that also constrains other attributes merely
// excludes a subset of the tuples carrying v, which licenses nothing.
//
//pjoin:hotpath
func (s *Set) SetMatchAttr(attr int, v value.Value) bool {
	return s.FirstMatchAttr(attr, v) != nil
}

// FirstMatchAttr returns the earliest-arrived entry that exhausts value
// v on attribute attr (see SetMatchAttr), or nil. When attr is the
// set's indexed key attribute the lookup is O(1) plus the number of
// non-constant patterns.
//
//pjoin:hotpath
func (s *Set) FirstMatchAttr(attr int, v value.Value) *Entry {
	if attr != s.keyAttr {
		for _, e := range s.entries {
			if exhaustiveOn(e.P, attr) && e.P.PatternAt(attr).Matches(v) {
				return e
			}
		}
		return nil
	}
	var best *Entry
	if es := s.constIdx[v]; len(es) > 0 {
		best = es[0] // append order = arrival order
	}
	for _, e := range s.nonConst {
		if best != nil && e.PID >= best.PID {
			break // nonConst is in arrival order; nothing earlier follows
		}
		if e.P.PatternAt(attr).Matches(v) {
			best = e
			break
		}
	}
	return best
}

// FirstMatch returns the earliest-arrived entry whose punctuation matches
// the tuple, or nil. The punctuation index always assigns a tuple "the
// pid of the first arrived punctuation found to be matched" (§3.5).
//
//pjoin:hotpath
func (s *Set) FirstMatch(attrs []value.Value) *Entry {
	for _, e := range s.entries {
		if e.P.Matches(attrs) {
			return e
		}
	}
	return nil
}

// MaxPID returns the largest pid assigned so far (NoPID if the set has
// never held an entry). PIDs are assigned in arrival order, so together
// with PurgePlan's `after` parameter this supports incremental purge
// watermarks.
func (s *Set) MaxPID() PID { return s.next - 1 }

// PurgePlan partitions the entries usable for purging on attribute attr
// — those exhaustive on attr (see SetMatchAttr) — into values that can
// be purged by direct key-group lookup (Constant patterns and
// Enumeration members) and entries that require a state scan (Range and
// Wildcard patterns). Entries with PID <= after are skipped: a caller
// that knows the state holds no tuple matching them (e.g. because a
// previous purge run removed them and drop-on-the-fly has kept matching
// arrivals out since) passes its watermark to plan only the new
// punctuations. Pass NoPID to plan over the whole set. Entries are
// PID-sorted, so the plan costs O(log n + new entries).
func (s *Set) PurgePlan(attr int, after PID) (direct []value.Value, scan []*Entry) {
	start := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].PID > after })
	for _, e := range s.entries[start:] {
		if !exhaustiveOn(e.P, attr) {
			continue
		}
		switch p := e.P.PatternAt(attr); p.Kind() {
		case Constant:
			direct = append(direct, p.ConstVal())
		case Enum:
			direct = append(direct, p.Members()...)
		case Empty:
			// Matches nothing; no purge power.
		default: // Range, Wildcard
			scan = append(scan, e)
		}
	}
	return direct, scan
}

// Unindexed returns the entries not yet processed by index build, in
// arrival order (the pIndexSet of Fig. 3, lines 2-6).
func (s *Set) Unindexed() []*Entry {
	var out []*Entry
	for _, e := range s.entries {
		if !e.Indexed {
			out = append(out, e)
		}
	}
	return out
}

// Propagable returns the indexed entries whose count is zero and that
// have not been released yet: by Theorem 1 these punctuations can be
// propagated downstream now. Entries retained after propagation
// (Entry.Propagated) are excluded so they are released at most once.
func (s *Set) Propagable() []*Entry {
	var out []*Entry
	for _, e := range s.entries {
		if e.Indexed && e.Count == 0 && !e.Propagated {
			out = append(out, e)
		}
	}
	return out
}

// String renders the set as "{pid:punct#count, ...}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%s#%d", e.PID, e.P, e.Count)
	}
	b.WriteByte('}')
	return b.String()
}
