package punct

import (
	"testing"
)

// FuzzParse checks the punctuation parser never panics and accepted
// punctuations round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<*>", "<5, *>", "<[1 .. 9], {2, 3}, \"x\">", "<{}>",
		"<", "<>", "<*,>", "<[1..>", `<"a,b", *>`, "<[1 .. 2], [3 .. x]>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("accepted %q -> %v, but %q does not re-parse: %v", s, p, p.String(), err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip %q -> %v -> %v", s, p, back)
		}
	})
}

// FuzzPatternAnd checks that And never panics on parsed patterns and
// always yields a pattern contained in both inputs.
func FuzzPatternAnd(f *testing.F) {
	f.Add("[1 .. 9]", "{2, 3, 4}")
	f.Add("*", "7")
	f.Add("{}", `"x"`)
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, err := ParsePattern(sa)
		if err != nil {
			return
		}
		b, err := ParsePattern(sb)
		if err != nil {
			return
		}
		ab := a.And(b)
		if !a.Contains(ab) || !b.Contains(ab) {
			t.Fatalf("And(%v, %v) = %v escapes an operand", a, b, ab)
		}
	})
}
