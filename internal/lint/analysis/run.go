package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run executes every analyzer over every package, applies
// //pjoin:allow suppressions, and reports malformed markers and stale
// allows as findings of the pseudo-analyzers "marker" and "allow".
// The returned slice contains suppressed diagnostics too (flagged as
// such) so callers can render or export the full picture; gating
// should count only the unsuppressed ones (see Unsuppressed).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Markers:  pkg.Markers,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range raw {
			if dir, ok := pkg.Markers.Suppress(d.Analyzer, d.Pos.Filename, d.Pos.Line); ok {
				d.Suppressed = true
				d.Reason = dir.Reason
			}
			all = append(all, d)
		}
		for _, bad := range pkg.Markers.Bad {
			all = append(all, Diagnostic{
				Analyzer: "marker",
				Pos:      fset.Position(bad.Pos),
				Message:  bad.Msg,
			})
		}
		for _, stale := range pkg.Markers.StaleAllows() {
			all = append(all, Diagnostic{
				Analyzer: "allow",
				Pos:      fset.Position(stale.Pos),
				Message:  fmt.Sprintf("stale //pjoin:allow %s: no %s diagnostic here anymore — delete it", stale.Args[0], stale.Args[0]),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// Unsuppressed filters to the diagnostics that should gate a build.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
