// Package analysis is the hermetic core of pjoinlint: a small,
// stdlib-only re-implementation of the golang.org/x/tools/go/analysis
// surface the suite needs (Analyzer, Pass, Diagnostic), plus the
// pjoin marker grammar, an export-data package loader and the shared
// intra-package call-graph machinery.
//
// The repo deliberately has zero module dependencies (go.mod pins
// nothing, builds are hermetic and offline), so instead of importing
// x/tools this package mirrors its API shape on top of go/ast,
// go/types and the toolchain's own export data (`go list -export`).
// Analyzers written against it port to the real framework mechanically
// if the dependency policy ever changes.
//
// # Marker grammar
//
// Analyzers are steered by machine-checked source markers (DESIGN.md
// §14 documents each analyzer's semantics):
//
//	//pjoin:hotpath
//	    on a function: the function and everything it calls
//	    (intra-package, static calls) must not allocate, read the wall
//	    clock, block, or take locks.
//	//pjoin:pool get | //pjoin:pool put
//	    on a function: it returns / consumes a pooled object; poolsafe
//	    tracks values between the two.
//	//pjoin:span begin <family> | //pjoin:span end <family>
//	    on a function: it opens / closes a provenance trace family;
//	    spanpair pairs them on all paths.
//	//pjoin:lockrank <n|leaf>
//	    on a mutex field declaration: its position in the documented
//	    lock hierarchy; locksafe enforces strictly increasing ranks
//	    and forbids any acquisition under a leaf.
//	//pjoin:allow <analyzer> <reason>
//	    on (or immediately above) a diagnosed line: suppress that
//	    analyzer's findings there. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and requires
// (markers play the role of facts; see the package comment).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pjoin:allow suppressions.
	Name string
	// Doc is the one-paragraph description `pjoinlint -list` prints.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Markers  *MarkerSet

	report func(Diagnostic)
}

// Diagnostic is one finding. Position is resolved eagerly so the
// driver can sort and render without holding the FileSet.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Suppressed marks findings covered by a //pjoin:allow marker;
	// Reason carries the marker's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// SetReporter installs the diagnostic sink for a pass. The driver in
// Run does this itself; it is exported for linttest, which constructs
// passes directly.
func SetReporter(p *Pass, fn func(Diagnostic)) { p.report = fn }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportWithSuffix returns the directly imported package whose path is
// exactly suffix or ends in "/"+suffix, or the package itself when its
// own path matches. Analyzers use it to locate contract-defining
// packages (op, stream, span) in both the real tree and self-contained
// test fixtures, where the fixture stubs live at the bare path.
func ImportWithSuffix(pkg *types.Package, suffix string) *types.Package {
	if pathHasSuffix(pkg.Path(), suffix) {
		return pkg
	}
	for _, im := range pkg.Imports() {
		if pathHasSuffix(im.Path(), suffix) {
			return im
		}
	}
	return nil
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix ||
		(len(path) > len(suffix)+1 && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix)
}

// FuncFor resolves the *types.Func a call expression statically
// dispatches to, or nil for dynamic calls (interface methods, func
// values, field closures). Conversions and builtins also return nil.
func (p *Pass) FuncFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsErrorReturning reports whether the function type's final result is
// the built-in error type.
func IsErrorReturning(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// IsNilIdent reports whether e is the predeclared nil.
func IsNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
