package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// demoSrc drives the suppression machinery: the demo analyzer below
// flags every var whose name starts with "flag".
const demoSrc = `package fix

var flagA int //pjoin:allow demo covered by design

var flagB int

//pjoin:allow demo allowed from the line above
var flagC int

//pjoin:allow demo stale: nothing is reported on the next line
var quiet int

//pjoin:frobnicate
var other int

//pjoin:pool recycle
var wrongArg int
`

// demo flags every package-level var named flag*.
var demo = &Analyzer{
	Name: "demo",
	Doc:  "flag vars named flag*",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "flag") {
						pass.Reportf(name.Pos(), "flagged %s", name.Name)
					}
				}
				return true
			})
		}
		return nil
	},
}

func loadSrc(t *testing.T, src string) (*token.FileSet, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	tpkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &Package{
		PkgPath: "fix",
		Files:   []*ast.File{f},
		Types:   tpkg,
		Info:    info,
		Markers: CollectMarkers(fset, []*ast.File{f}),
	}
}

func TestRunSuppressionAndMarkers(t *testing.T) {
	fset, pkg := loadSrc(t, demoSrc)
	diags, err := Run(fset, []*Package{pkg}, []*Analyzer{demo})
	if err != nil {
		t.Fatal(err)
	}

	byMsg := make(map[string]Diagnostic)
	for _, d := range diags {
		byMsg[d.Message] = d
	}

	// Same-line allow suppresses and records the reason.
	a, ok := byMsg["flagged flagA"]
	if !ok || !a.Suppressed || a.Reason != "covered by design" {
		t.Errorf("flagA: want suppressed with reason %q, got %+v", "covered by design", a)
	}
	// No allow: the diagnostic gates.
	if b, ok := byMsg["flagged flagB"]; !ok || b.Suppressed {
		t.Errorf("flagB: want unsuppressed diagnostic, got %+v", b)
	}
	// Line-above allow suppresses too.
	if c, ok := byMsg["flagged flagC"]; !ok || !c.Suppressed {
		t.Errorf("flagC: want suppressed diagnostic, got %+v", c)
	}

	var stale, badVerb, badArgs *Diagnostic
	for i := range diags {
		d := &diags[i]
		switch {
		case d.Analyzer == "allow":
			stale = d
		case d.Analyzer == "marker" && strings.Contains(d.Message, "frobnicate"):
			badVerb = d
		case d.Analyzer == "marker" && strings.Contains(d.Message, "pool"):
			badArgs = d
		}
	}
	if stale == nil || !strings.Contains(stale.Message, "stale //pjoin:allow demo") {
		t.Errorf("want a stale-allow diagnostic, got %+v", stale)
	}
	if badVerb == nil || !strings.Contains(badVerb.Message, "unknown //pjoin: verb frobnicate") {
		t.Errorf("want an unknown-verb marker diagnostic, got %+v", badVerb)
	}
	if badArgs == nil || !strings.Contains(badArgs.Message, "want get or put") {
		t.Errorf("want a bad pool-arg marker diagnostic, got %+v", badArgs)
	}

	// Gating counts only unsuppressed findings: flagB + the three
	// marker/allow pseudo-diagnostics.
	if got := len(Unsuppressed(diags)); got != 4 {
		for _, d := range Unsuppressed(diags) {
			t.Logf("unsuppressed: %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
		t.Errorf("Unsuppressed: want 4 diagnostics, got %d", got)
	}

	// Output is sorted by position.
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos.Line > diags[i].Pos.Line {
			t.Errorf("diagnostics out of order: line %d before line %d", diags[i-1].Pos.Line, diags[i].Pos.Line)
		}
	}
}

func TestAllowRequiresReason(t *testing.T) {
	fset, pkg := loadSrc(t, "package fix\n\n//pjoin:allow demo\nvar flagD int\n")
	diags, err := Run(fset, []*Package{pkg}, []*Analyzer{demo})
	if err != nil {
		t.Fatal(err)
	}
	var sawMarker, sawFlag bool
	for _, d := range diags {
		if d.Analyzer == "marker" && strings.Contains(d.Message, "wrong argument count") {
			sawMarker = true
		}
		if d.Message == "flagged flagD" && !d.Suppressed {
			sawFlag = true
		}
	}
	if !sawMarker {
		t.Error("reason-less allow: want a wrong-argument-count marker diagnostic")
	}
	if !sawFlag {
		t.Error("reason-less allow must not suppress the diagnostic it precedes")
	}
}
