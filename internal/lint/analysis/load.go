package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package, ready for analyzers.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Markers *MarkerSet
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns in the module rooted
// at dir, with full syntax and types.Info, without any dependency on
// x/tools: dependencies are resolved through the toolchain's own
// export data, which `go list -export` materializes in the build cache
// (an offline, hermetic operation).
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	exports, err := ListExports(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	targets, err := listTargets(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		p, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// ListExports maps every import path in the targets' dependency
// closure to its export-data file. The -export flag makes `go list`
// build whatever is stale, so the mapping is always complete for a
// compiling tree. Exported for the fixture loader in linttest.
func ListExports(dir string, patterns []string) (map[string]string, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Standard",
	}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// listTargets resolves the analysis targets themselves (no -deps).
func listTargets(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-json=ImportPath,Dir,GoFiles,Error",
	}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkgName := "main"
	if len(files) > 0 {
		pkgName = files[0].Name.Name
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s (%s): %v", t.ImportPath, pkgName, typeErrs[0])
	}
	return &Package{
		PkgPath: t.ImportPath,
		Dir:     t.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Markers: CollectMarkers(fset, files),
	}, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated. Shared with the fixture loader in linttest.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
