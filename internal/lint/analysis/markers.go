package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //pjoin: marker comment.
type Directive struct {
	Verb string   // "hotpath", "allow", "lockrank", "pool", "span"
	Args []string // verb-specific arguments (see package doc)
	// Reason is the free-text tail of an allow directive.
	Reason string
	Pos    token.Pos
	File   string
	Line   int

	used bool // an allow that suppressed at least one diagnostic
}

// BadDirective is a //pjoin: comment that failed to parse. The driver
// reports these as errors: a typo in a suppression must not silently
// re-enable (or half-apply) a check.
type BadDirective struct {
	Pos token.Pos
	Msg string
}

// MarkerSet indexes every //pjoin: directive in one package.
type MarkerSet struct {
	All []*Directive
	Bad []BadDirective

	// allows indexes allow directives by file, then line.
	allows map[string]map[int][]*Directive
}

const prefix = "//pjoin:"

var verbs = map[string]struct{ minArgs, maxArgs int }{
	"hotpath":  {0, 0},
	"pool":     {1, 1}, // get | put
	"span":     {2, 2}, // begin|end <family>
	"lockrank": {1, 1}, // <n> | leaf
	"allow":    {2, -1},
}

// CollectMarkers parses every //pjoin: directive in files (which must
// have been parsed with parser.ParseComments).
func CollectMarkers(fset *token.FileSet, files []*ast.File) *MarkerSet {
	m := &MarkerSet{allows: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m.add(fset, c)
			}
		}
	}
	return m
}

func (m *MarkerSet) add(fset *token.FileSet, c *ast.Comment) {
	d, bad, ok := parseDirective(fset, c)
	if !ok {
		return
	}
	if bad != nil {
		m.Bad = append(m.Bad, *bad)
		return
	}
	m.All = append(m.All, d)
	if d.Verb == "allow" {
		byLine := m.allows[d.File]
		if byLine == nil {
			byLine = make(map[int][]*Directive)
			m.allows[d.File] = byLine
		}
		byLine[d.Line] = append(byLine[d.Line], d)
	}
}

// parseDirective returns (directive, nil, true) for a well-formed
// marker, (nil, bad, true) for a malformed one, and ok=false for
// comments that are not //pjoin: markers at all.
func parseDirective(fset *token.FileSet, c *ast.Comment) (*Directive, *BadDirective, bool) {
	text, isMarker := strings.CutPrefix(c.Text, prefix)
	if !isMarker {
		return nil, nil, false
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, &BadDirective{c.Pos(), "empty //pjoin: directive"}, true
	}
	verb := fields[0]
	spec, known := verbs[verb]
	if !known {
		return nil, &BadDirective{c.Pos(), "unknown //pjoin: verb " + verb}, true
	}
	args := fields[1:]
	if len(args) < spec.minArgs || (spec.maxArgs >= 0 && len(args) > spec.maxArgs) {
		return nil, &BadDirective{c.Pos(), "//pjoin:" + verb + ": wrong argument count (see DESIGN.md §14)"}, true
	}
	pos := fset.Position(c.Pos())
	d := &Directive{Verb: verb, Args: args, Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
	switch verb {
	case "pool":
		if a := args[0]; a != "get" && a != "put" {
			return nil, &BadDirective{c.Pos(), "//pjoin:pool: want get or put, got " + a}, true
		}
	case "span":
		if a := args[0]; a != "begin" && a != "end" {
			return nil, &BadDirective{c.Pos(), "//pjoin:span: want begin or end, got " + a}, true
		}
	case "allow":
		d.Args = args[:1]
		d.Reason = strings.Join(args[1:], " ")
		if d.Reason == "" {
			return nil, &BadDirective{c.Pos(), "//pjoin:allow: a justification is mandatory"}, true
		}
	}
	return d, nil, true
}

// FuncDirectives parses the markers in a function's doc comment.
func FuncDirectives(decl *ast.FuncDecl) []Directive {
	return groupDirectives(decl.Doc)
}

// FieldDirectives parses the markers attached to a struct field, in
// either its doc comment or its trailing line comment.
func FieldDirectives(field *ast.Field) []Directive {
	ds := groupDirectives(field.Doc)
	return append(ds, groupDirectives(field.Comment)...)
}

func groupDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var ds []Directive
	for _, c := range cg.List {
		text, isMarker := strings.CutPrefix(c.Text, prefix)
		if !isMarker {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		ds = append(ds, Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return ds
}

// HasFuncDirective reports whether decl carries the given marker verb,
// optionally filtered by first argument ("" matches any).
func HasFuncDirective(decl *ast.FuncDecl, verb, arg0 string) bool {
	for _, d := range FuncDirectives(decl) {
		if d.Verb == verb && (arg0 == "" || (len(d.Args) > 0 && d.Args[0] == arg0)) {
			return true
		}
	}
	return false
}

// Suppress looks for an //pjoin:allow covering the diagnostic: same
// line, or the line directly above (for markers on their own line).
// It marks the winning directive used, for stale-allow detection.
func (m *MarkerSet) Suppress(analyzer, file string, line int) (*Directive, bool) {
	byLine := m.allows[file]
	if byLine == nil {
		return nil, false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.Args[0] == analyzer {
				d.used = true
				return d, true
			}
		}
	}
	return nil, false
}

// StaleAllows returns allow directives that suppressed nothing. A
// suppression that no longer fires is dead weight and, worse, hides
// that the underlying code changed; the driver reports them.
func (m *MarkerSet) StaleAllows() []*Directive {
	var stale []*Directive
	for _, d := range m.All {
		if d.Verb == "allow" && !d.used {
			stale = append(stale, d)
		}
	}
	return stale
}
