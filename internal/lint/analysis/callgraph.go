package analysis

import (
	"go/ast"
	"go/types"
)

// Edge is one static call site: caller → callee within the package.
type Edge struct {
	Callee *types.Func
	Call   *ast.CallExpr
}

// CallGraph is the intra-package static call graph. Dynamic dispatch —
// interface methods, func-typed fields, closures passed around as
// values — is invisible by design; analyzers that use reachability
// document that approximation (DESIGN.md §14). Code inside a FuncLit
// counts as part of the declaring function: a closure built in Finish
// is Finish-reachable.
type CallGraph struct {
	// Decls maps every function and method declared in the package
	// (with a body) to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Out lists each declared function's static calls that resolve to
	// another function declared in the same package.
	Out map[*types.Func][]Edge
}

// BuildCallGraph constructs the intra-package call graph for the pass.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Out:   make(map[*types.Func][]Edge),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
		}
	}
	for fn, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.FuncFor(call)
			if callee == nil {
				return true
			}
			if _, declared := g.Decls[callee]; declared {
				g.Out[fn] = append(g.Out[fn], Edge{Callee: callee, Call: call})
			}
			return true
		})
	}
	return g
}

// Reachable returns the set of declared functions reachable from roots
// (inclusive) over static intra-package edges.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		for _, e := range g.Out[fn] {
			if !seen[e.Callee] {
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}
