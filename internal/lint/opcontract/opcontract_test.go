package opcontract

import (
	"testing"

	"pjoin/internal/lint/linttest"
)

func TestOpcontract(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "ops")
}
