// Package op stubs the operator driver contract for the opcontract
// fixtures.
package op

import "stream"

// Emitter is the driver's emission funnel.
type Emitter interface {
	Emit(it stream.Item)
}

// Operator is the per-item contract.
type Operator interface {
	Process(in int, it stream.Item, em Emitter) error
	Finish(em Emitter) error
}

// BatchProcessor extends Operator with batched delivery.
type BatchProcessor interface {
	Operator
	ProcessBatch(in int, its []stream.Item, em Emitter) error
}
