// Package ops holds one operator that violates every driver-contract
// rule and one that observes them all.
package ops

import (
	"op"
	"stream"
	"time"
)

// Bad breaks every rule in one type.
type Bad struct {
	out chan stream.Item
}

func (b *Bad) Process(in int, it stream.Item, em op.Emitter) error { // want "^Bad\\.Process never inspects stream\\.KindEOS: operators must count EOS per port \\(driver contract\\)$"
	em.Emit(stream.EOSItem(it.At)) // want "constructs stream\\.EOSItem in Process-reachable code"
	b.out <- it                    // want "raw channel send of stream items from operator code"
	close(b.out)                   // want "closes a stream-item channel from operator code"
	return nil
}

func (b *Bad) Finish(em op.Emitter) error { // want "Bad\\.Finish never emits stream\\.EOSItem: Finish must emit EOS exactly once"
	return nil
}

// nowStamp derives stream time from the wall clock — the executor's
// clamp is the only sanctioned place for this.
func nowStamp() stream.Time {
	return stream.Time(time.Now().UnixNano()) // want "stamps stream\\.Time from the wall clock: stream time is data time"
}

// Good observes the contract: EOS counted in Process, emitted once
// from Finish, all emission through the Emitter.
type Good struct {
	eos int
}

func (g *Good) Process(in int, it stream.Item, em op.Emitter) error {
	if it.Kind == stream.KindEOS {
		g.eos++
		return nil
	}
	em.Emit(it)
	return nil
}

func (g *Good) Finish(em op.Emitter) error {
	em.Emit(stream.EOSItem(0))
	return nil
}
