// Package stream stubs the item/time contract types for the
// opcontract fixtures; only the names the analyzer keys on matter.
package stream

// Kind tags an item.
type Kind uint8

// The item kinds the contract cares about.
const (
	KindTuple Kind = iota
	KindPunct
	KindEOS
)

// Time is virtual stream time.
type Time int64

// Item is one stream element.
type Item struct {
	Kind Kind
	At   Time
}

// EOSItem builds the end-of-stream item.
func EOSItem(at Time) Item { return Item{Kind: KindEOS, At: at} }
