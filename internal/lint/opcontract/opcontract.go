// Package opcontract implements the pjoinlint analyzer for the
// operator driver contract (internal/op, contract rules 1–5):
//
//   - EOS is emitted exactly once, from Finish: stream.EOSItem must
//     not be constructed in code reachable from Process / OnIdle /
//     ProcessBatch, and every Finish must reach an EOSItem call.
//   - All emission is routed through the driver's Emitter: no raw
//     sends on (and no closing of) channels carrying stream.Item or
//     []stream.Item from operator-reachable code.
//   - Operators must observe EOS per port: code reachable from
//     Process/ProcessBatch must inspect stream.KindEOS.
//   - Stream time is data time: conversions stream.Time(x) where x is
//     wall-clock derived (time.Now/Since/Until, directly or through
//     one intra-package call) are flagged; the executor's sanctioned
//     wall→stream clamp carries an //pjoin:allow.
//
// Reachability is the intra-package static call graph; dynamic
// dispatch is invisible (DESIGN.md §14 documents the approximation).
package opcontract

import (
	"go/ast"
	"go/types"
	"sort"

	"pjoin/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "opcontract",
	Doc: "check op.Operator/op.BatchProcessor implementations against the driver " +
		"contract: EOS only from Finish, emission only via the Emitter, EOS observed " +
		"per port, and no wall-clock-derived stream.Time",
	Run: run,
}

func run(pass *analysis.Pass) error {
	streamPkg := analysis.ImportWithSuffix(pass.Pkg, "stream")
	if streamPkg == nil {
		return nil // nothing stream-typed to misuse
	}
	g := analysis.BuildCallGraph(pass)
	checkWallClock(pass, g, streamPkg)
	if pass.Pkg == streamPkg {
		return nil // the contract types' own package is exempt
	}

	opPkg := analysis.ImportWithSuffix(pass.Pkg, "op")
	if opPkg == nil {
		return nil
	}
	operator := ifaceOf(opPkg, "Operator")
	batcher := ifaceOf(opPkg, "BatchProcessor")
	if operator == nil {
		return nil
	}

	var impls []implType
	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		ptr := types.NewPointer(T)
		if !types.Implements(T, operator) && !types.Implements(ptr, operator) {
			continue
		}
		im := implType{name: name}
		im.process = methodDecl(pass, g, T, "Process")
		im.onIdle = methodDecl(pass, g, T, "OnIdle")
		im.finish = methodDecl(pass, g, T, "Finish")
		if batcher != nil && (types.Implements(T, batcher) || types.Implements(ptr, batcher)) {
			im.processBatch = methodDecl(pass, g, T, "ProcessBatch")
		}
		impls = append(impls, im)
	}
	if len(impls) == 0 {
		return nil
	}

	var processRoots, allRoots []*types.Func
	for _, im := range impls {
		for _, fn := range []*types.Func{im.process, im.processBatch, im.onIdle} {
			if fn != nil {
				processRoots = append(processRoots, fn)
				allRoots = append(allRoots, fn)
			}
		}
		if im.finish != nil {
			allRoots = append(allRoots, im.finish)
		}
	}
	reachProcess := g.Reachable(processRoots...)
	reachAll := g.Reachable(allRoots...)

	checkEOSAndSends(pass, g, streamPkg, reachProcess, reachAll)
	for _, im := range impls {
		checkPerType(pass, g, streamPkg, im)
	}
	return nil
}

type implType struct {
	name         string
	process      *types.Func
	processBatch *types.Func
	onIdle       *types.Func
	finish       *types.Func
}

func ifaceOf(pkg *types.Package, name string) *types.Interface {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// methodDecl resolves T's method by name to its in-package declaration
// (nil for promoted methods declared elsewhere — those bodies are
// outside this package's view).
func methodDecl(pass *analysis.Pass, g *analysis.CallGraph, T types.Type, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(T), true, pass.Pkg, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := g.Decls[fn]; !declared {
		return nil
	}
	return fn
}

// checkEOSAndSends walks every operator-reachable function body for
// EOSItem construction outside Finish and for raw stream-item channel
// traffic.
func checkEOSAndSends(pass *analysis.Pass, g *analysis.CallGraph, streamPkg *types.Package, reachProcess, reachAll map[*types.Func]bool) {
	for fn := range reachAll {
		fd := g.Decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if callee := pass.FuncFor(n); callee != nil &&
					callee.Pkg() == streamPkg && callee.Name() == "EOSItem" && reachProcess[fn] {
					pass.Reportf(n.Pos(), "constructs stream.EOSItem in Process-reachable code: the driver contract emits EOS exactly once, from Finish")
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 &&
						isStreamItemChan(pass.Info.TypeOf(n.Args[0]), streamPkg) {
						pass.Reportf(n.Pos(), "closes a stream-item channel from operator code: EOS is signaled with stream.KindEOS via the Emitter, not channel close")
					}
				}
			case *ast.SendStmt:
				if isStreamItemChan(pass.Info.TypeOf(n.Chan), streamPkg) {
					pass.Reportf(n.Pos(), "raw channel send of stream items from operator code: route emission through the driver's Emitter")
				}
			}
			return true
		})
	}
}

// isStreamItemChan reports whether t is chan stream.Item or
// chan []stream.Item (any direction).
func isStreamItemChan(t types.Type, streamPkg *types.Package) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	elem := ch.Elem()
	if sl, ok := elem.Underlying().(*types.Slice); ok {
		elem = sl.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Pkg() == streamPkg && named.Obj().Name() == "Item"
}

// checkPerType enforces the per-implementation obligations: Process
// must observe KindEOS, Finish must reach an EOSItem emission.
func checkPerType(pass *analysis.Pass, g *analysis.CallGraph, streamPkg *types.Package, im implType) {
	if im.process != nil {
		roots := []*types.Func{im.process}
		if im.processBatch != nil {
			roots = append(roots, im.processBatch)
		}
		if !reachReferences(pass, g, g.Reachable(roots...), streamPkg, "KindEOS") {
			pass.Reportf(g.Decls[im.process].Name.Pos(),
				"%s.Process never inspects stream.KindEOS: operators must count EOS per port (driver contract)", im.name)
		}
	}
	if im.finish != nil {
		if !reachCalls(pass, g, g.Reachable(im.finish), streamPkg, "EOSItem") {
			pass.Reportf(g.Decls[im.finish].Name.Pos(),
				"%s.Finish never emits stream.EOSItem: Finish must emit EOS exactly once (driver contract)", im.name)
		}
	}
}

func reachReferences(pass *analysis.Pass, g *analysis.CallGraph, reach map[*types.Func]bool, pkg *types.Package, name string) bool {
	for fn := range reach {
		found := false
		ast.Inspect(g.Decls[fn].Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				if obj := pass.Info.Uses[id]; obj != nil && obj.Pkg() == pkg {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func reachCalls(pass *analysis.Pass, g *analysis.CallGraph, reach map[*types.Func]bool, pkg *types.Package, name string) bool {
	for fn := range reach {
		found := false
		ast.Inspect(g.Decls[fn].Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := pass.FuncFor(call); callee != nil && callee.Pkg() == pkg && callee.Name() == name {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkWallClock flags stream.Time(x) conversions whose operand is
// wall-clock derived: x contains a call to time.Now/Since/Until, or to
// an intra-package function that itself calls one directly (one level
// of taint — deeper laundering is out of scope and documented).
func checkWallClock(pass *analysis.Pass, g *analysis.CallGraph, streamPkg *types.Package) {
	wallDirect := make(map[*types.Func]bool)
	for fn, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := pass.FuncFor(call); callee != nil && isWallClockFunc(callee) {
					wallDirect[fn] = true
				}
			}
			return !wallDirect[fn]
		})
	}
	for _, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() || !isStreamTime(tv.Type, streamPkg) || len(call.Args) != 1 {
				return true
			}
			if tainted(pass, wallDirect, call.Args[0]) {
				pass.Reportf(call.Pos(), "stamps stream.Time from the wall clock: stream time is data time (item timestamps), not time.Now")
			}
			return true
		})
	}
}

func isWallClockFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

func isStreamTime(t types.Type, streamPkg *types.Package) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == streamPkg && named.Obj().Name() == "Time"
}

func tainted(pass *analysis.Pass, wallDirect map[*types.Func]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if callee := pass.FuncFor(call); callee != nil && (isWallClockFunc(callee) || wallDirect[callee]) {
			found = true
		}
		return !found
	})
	return found
}
