package locksafe

import (
	"testing"

	"pjoin/internal/lint/linttest"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "locks")
}
