// Package locks exercises locksafe: the copylocks check and the
// //pjoin:lockrank acquisition-order check.
package locks

import "sync"

type inner struct {
	mu sync.Mutex //pjoin:lockrank 10
	n  int
}

type outer struct {
	mu sync.Mutex //pjoin:lockrank 20
}

type leafy struct {
	mu sync.Mutex //pjoin:lockrank leaf
}

// byValue copies its receiver's mutex on every call.
func (i inner) byValue() {} // want "^receives lock-bearing inner by value: it contains sync\\.Mutex; use a pointer$"

// use copies its parameter's mutex on every call.
func use(v inner) {} // want "passes lock-bearing inner by value: it contains sync\\.Mutex; use a pointer"

// copies demonstrates value copies of lock-bearing values.
func copies(p *inner, xs []inner) {
	v := *p // want "assignment copies a lock-bearing value: it contains sync\\.Mutex"
	_ = &v
	for _, x := range xs { // want "range copies a lock-bearing value: it contains sync\\.Mutex"
		_ = &x
	}
	use(*p) // want "call passes a lock-bearing value: it contains sync\\.Mutex"
}

// goodOrder acquires in strictly increasing rank: clean.
func goodOrder(i *inner, o *outer) {
	i.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	i.mu.Unlock()
}

// wrongOrder acquires rank 10 while holding rank 20.
func wrongOrder(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock() // want "^lock order violation: acquires sync\\.Mutex field mu \\(rank 10\\) while holding sync\\.Mutex field mu \\(rank 20\\); ranks must strictly increase$"
	i.mu.Unlock()
	o.mu.Unlock()
}

// underLeaf acquires while holding a leaf lock.
func underLeaf(l *leafy, i *inner) {
	l.mu.Lock()
	i.mu.Lock() // want "acquires a lock while holding leaf-ranked sync\\.Mutex field mu"
	i.mu.Unlock()
	l.mu.Unlock()
}

// lockInner's may-acquire summary includes inner.mu.
func lockInner(i *inner) {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

// viaCall hits the same inversion transitively, through a callee.
func viaCall(o *outer, i *inner) {
	o.mu.Lock()
	lockInner(i) // want "calls lockInner, which may acquire sync\\.Mutex field mu \\(rank 10\\), while holding sync\\.Mutex field mu \\(rank 20\\)"
	o.mu.Unlock()
}

// deferred unlocks hold to function end; acquiring upward under them
// is still clean.
func deferred(i *inner, o *outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}
