// Package locksafe implements the pjoinlint analyzer for the mutex
// discipline:
//
//  1. copylocks-lite — values whose type transitively contains a sync
//     lock (Mutex, RWMutex, WaitGroup, Cond, Once, Pool, Map) must not
//     be copied: not passed, received, returned, assigned, or ranged
//     over by value.
//  2. lockrank — mutex fields carry //pjoin:lockrank <n|leaf> markers
//     encoding the documented hierarchy (DESIGN.md §14). Within a
//     function (and through intra-package calls, via transitive
//     may-acquire summaries), ranks must be strictly increasing in
//     acquisition order, and nothing at all may be acquired while a
//     leaf lock — the edge flush mutex and its peers — is held.
//
// Held-lock tracking is source-order within a function: Lock pushes,
// Unlock pops, a deferred Unlock holds to the end. Closure bodies are
// excluded from both tracking and summaries (a gauge closure locking
// the merge mutex runs under the sampler, not at its definition site).
package locksafe

import (
	"go/ast"
	"go/types"
	"math"
	"sort"
	"strconv"

	"pjoin/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "check that lock-bearing values are never copied and that locks are " +
		"acquired in the documented //pjoin:lockrank hierarchy order",
	Run: run,
}

// LeafRank marks locks under which nothing may be acquired.
const LeafRank = math.MaxInt

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

func run(pass *analysis.Pass) error {
	checkCopies(pass)

	ranks := collectRanks(pass)
	g := analysis.BuildCallGraph(pass)
	acq := summarize(pass, g, ranks)

	var fns []*types.Func
	for fn := range g.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name() < fns[j].Name() })
	for _, fn := range fns {
		trackHeld(pass, g.Decls[fn], ranks, acq)
	}
	return nil
}

// --- copylocks-lite ---

func containsLock(t types.Type) *types.Named {
	return containsLock1(t, make(map[types.Type]bool))
}

func containsLock1(t types.Type, seen map[types.Type]bool) *types.Named {
	if seen[t] {
		return nil
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return named
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hit := containsLock1(u.Field(i).Type(), seen); hit != nil {
				return hit
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return nil
}

func checkCopies(pass *analysis.Pass) {
	qual := types.RelativeTo(pass.Pkg)
	lockName := func(t types.Type) (string, bool) {
		if t == nil {
			return "", false
		}
		if hit := containsLock(t); hit != nil {
			return types.TypeString(hit, qual), true
		}
		return "", false
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if name, bad := lockName(t); bad {
				pass.Reportf(f.Type.Pos(), "%s lock-bearing %s by value: it contains %s; use a pointer",
					what, types.TypeString(t, qual), name)
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkFieldList(fd.Recv, "receives")
			checkFieldList(fd.Type.Params, "passes")
			checkFieldList(fd.Type.Results, "returns")
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						if !copiesValue(rhs) {
							continue
						}
						if name, bad := lockName(pass.Info.TypeOf(rhs)); bad {
							pass.Reportf(rhs.Pos(), "assignment copies a lock-bearing value: it contains %s", name)
						}
					}
				case *ast.RangeStmt:
					if n.Value == nil {
						return true
					}
					if name, bad := lockName(pass.Info.TypeOf(n.Value)); bad {
						pass.Reportf(n.Value.Pos(), "range copies a lock-bearing value: it contains %s", name)
					}
				case *ast.CallExpr:
					if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
						return true // conversions restate, not copy-call
					}
					for _, arg := range n.Args {
						if !copiesValue(arg) {
							continue
						}
						if name, bad := lockName(pass.Info.TypeOf(arg)); bad {
							pass.Reportf(arg.Pos(), "call passes a lock-bearing value: it contains %s", name)
						}
					}
				}
				return true
			})
		}
	}
}

// copiesValue reports expression shapes that copy an existing value
// (as opposed to constructing a fresh one or taking an address).
func copiesValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.TypeAssertExpr:
		return copiesValue(e.X)
	}
	return false
}

// --- lockrank ---

// collectRanks parses //pjoin:lockrank markers off struct fields.
func collectRanks(pass *analysis.Pass) map[*types.Var]int {
	ranks := make(map[*types.Var]int)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, d := range analysis.FieldDirectives(field) {
					if d.Verb != "lockrank" || len(d.Args) != 1 {
						continue
					}
					rank := LeafRank
					if d.Args[0] != "leaf" {
						n, err := strconv.Atoi(d.Args[0])
						if err != nil {
							pass.Reportf(d.Pos, "//pjoin:lockrank: want an integer or leaf, got %q", d.Args[0])
							continue
						}
						rank = n
					}
					if t := pass.Info.TypeOf(field.Type); t == nil || containsLock(t) == nil {
						pass.Reportf(d.Pos, "//pjoin:lockrank on a field that is not a sync lock")
						continue
					}
					for _, name := range field.Names {
						if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
							ranks[obj] = rank
						}
					}
				}
			}
			return true
		})
	}
	return ranks
}

// lockOp classifies a call as a lock or unlock of a sync primitive and
// resolves the field it targets (nil for non-field locks).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (field *types.Var, acquire, release bool) {
	callee := pass.FuncFor(call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return nil, false, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return nil, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, acquire, release
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[recv]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				field = v
			}
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[recv].(*types.Var); ok {
			field = v
		}
	}
	return field, acquire, release
}

// summarize computes, to a fixpoint over the intra-package call graph,
// the set of ranked locks each function may acquire.
func summarize(pass *analysis.Pass, g *analysis.CallGraph, ranks map[*types.Var]int) map[*types.Func]map[*types.Var]bool {
	acq := make(map[*types.Func]map[*types.Var]bool)
	for fn, fd := range g.Decls {
		set := make(map[*types.Var]bool)
		inspectSkippingClosures(fd.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if field, acquire, _ := lockOp(pass, call); acquire && field != nil {
					if _, ranked := ranks[field]; ranked {
						set[field] = true
					}
				}
			}
		})
		acq[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.Decls {
			for _, e := range g.Out[fn] {
				for f := range acq[e.Callee] {
					if !acq[fn][f] {
						acq[fn][f] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// inspectSkippingClosures is ast.Inspect minus FuncLit bodies.
func inspectSkippingClosures(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

type heldLock struct {
	field *types.Var
	rank  int
}

// trackHeld walks one function in source order, maintaining the set of
// held ranked locks and reporting hierarchy violations.
func trackHeld(pass *analysis.Pass, fd *ast.FuncDecl, ranks map[*types.Var]int, acq map[*types.Func]map[*types.Var]bool) {
	qual := types.RelativeTo(pass.Pkg)
	var held []heldLock
	maxHeld := func() (heldLock, bool) {
		var top heldLock
		for _, h := range held {
			if h.rank >= top.rank {
				top = h
			}
		}
		return top, len(held) > 0
	}
	lockLabel := func(f *types.Var) string {
		return types.TypeString(f.Type(), qual) + " field " + f.Name()
	}
	rankLabel := func(r int) string {
		if r == LeafRank {
			return "leaf"
		}
		return strconv.Itoa(r)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end; a
			// deferred closure is out of scope like any closure.
			return false
		case *ast.CallExpr:
			field, acquire, release := lockOp(pass, n)
			if acquire || release {
				rank, ranked := 0, false
				if field != nil {
					rank, ranked = ranks[field]
				}
				if acquire {
					if top, holding := maxHeld(); holding {
						switch {
						case top.rank == LeafRank:
							pass.Reportf(n.Pos(), "acquires a lock while holding leaf-ranked %s: nothing may be acquired under a leaf lock", lockLabel(top.field))
						case ranked && rank <= top.rank:
							pass.Reportf(n.Pos(), "lock order violation: acquires %s (rank %s) while holding %s (rank %s); ranks must strictly increase", lockLabel(field), rankLabel(rank), lockLabel(top.field), rankLabel(top.rank))
						}
					}
					if ranked {
						held = append(held, heldLock{field, rank})
					}
				}
				if release && ranked {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].field == field {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			// A call into the package while holding: consult the
			// callee's may-acquire summary.
			if top, holding := maxHeld(); holding {
				if callee := pass.FuncFor(n); callee != nil {
					var fields []*types.Var
					for f := range acq[callee] {
						fields = append(fields, f)
					}
					sort.Slice(fields, func(i, j int) bool { return fields[i].Name() < fields[j].Name() })
					for _, f := range fields {
						r := ranks[f]
						switch {
						case top.rank == LeafRank:
							pass.Reportf(n.Pos(), "calls %s, which may acquire %s, while holding leaf-ranked %s", callee.Name(), lockLabel(f), lockLabel(top.field))
						case r <= top.rank:
							pass.Reportf(n.Pos(), "calls %s, which may acquire %s (rank %s), while holding %s (rank %s); ranks must strictly increase", callee.Name(), lockLabel(f), rankLabel(r), lockLabel(top.field), rankLabel(top.rank))
						}
					}
				}
			}
		}
		return true
	})
}
