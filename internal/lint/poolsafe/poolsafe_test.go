package poolsafe

import (
	"testing"

	"pjoin/internal/lint/linttest"
)

func TestPoolsafe(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "pool")
}
