// Package pool exercises poolsafe: a batch from the get accessor must
// be recycled or ownership-transferred on every path, and never used
// after it is put back.
package pool

type batch []int

var free []batch

// getBatch hands out a pooled batch.
//
//pjoin:pool get
func getBatch() batch {
	if n := len(free); n > 0 {
		b := free[n-1]
		free = free[:n-1]
		return b
	}
	return make(batch, 0, 16)
}

// putBatch recycles a batch.
//
//pjoin:pool put
func putBatch(b batch) {
	free = append(free, b[:0])
}

func sink(b batch) {}

var shipped = make(chan batch, 1)

type boom struct{}

func (boom) Error() string { return "boom" }

var errBoom error = boom{}

// leak drops the batch on the early-return path.
func leak(cond bool) {
	b := getBatch()
	if cond {
		return // want "^pooled batch b \\(obtained at line 41\\) is not recycled on this path: put it back or transfer ownership$"
	}
	putBatch(b)
}

// useAfterPut touches the batch after recycling it.
func useAfterPut() int {
	b := getBatch()
	putBatch(b)
	return len(b) // want "use of pooled batch b after it was recycled at line \\d+"
}

// loopLeak obtains a fresh batch each iteration without discharging it.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		b := getBatch() // want "pooled batch b is not recycled before the next loop iteration"
		if len(b) > 0 {
			b[0] = i
		}
	}
}

// handOff transfers ownership to the caller: clean.
func handOff() batch {
	return getBatch()
}

// process transfers ownership to a callee: clean.
func process() {
	b := getBatch()
	b = append(b, 1)
	sink(b)
}

// ship transfers ownership over a channel: clean.
func ship() {
	b := getBatch()
	shipped <- b
}

// failable leaks only on the error path, which is exempt: pipeline
// teardown refills pools from scratch.
func failable(fail bool) error {
	b := getBatch()
	if fail {
		return errBoom
	}
	putBatch(b)
	return nil
}
