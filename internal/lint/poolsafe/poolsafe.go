// Package poolsafe implements the pjoinlint analyzer for pooled-batch
// discipline. The exec and parallel layers recycle []stream.Item
// batches through sync.Pools behind accessors marked //pjoin:pool get
// and //pjoin:pool put; every batch obtained from a get must, on every
// path out of the obtaining function, either be recycled (put) or have
// its ownership transferred — sent on a channel, returned, stored into
// a longer-lived structure, or passed to another function. After a
// put, the batch must not be touched again.
//
// The analysis is flow-sensitive within a function and purely
// structural: branches fork the tracking state and fall-throughs merge
// by union (a batch live on any surviving path stays an obligation).
// Documented approximations (DESIGN.md §14): passing a batch to any
// call or composite literal counts as an ownership transfer; error
// returns (a non-nil error result) are exempt, since pipeline
// teardown refills pools from scratch; obligations escaping through
// break/continue are not tracked.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pjoin/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "check that pooled batches from //pjoin:pool get accessors are recycled or " +
		"ownership-transferred on every path, and never used after //pjoin:pool put",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	gets := make(map[*types.Func]bool)
	puts := make(map[*types.Func]bool)
	for fn, fd := range g.Decls {
		if analysis.HasFuncDirective(fd, "pool", "get") {
			gets[fn] = true
		}
		if analysis.HasFuncDirective(fd, "pool", "put") {
			puts[fn] = true
		}
	}
	if len(gets) == 0 {
		return nil
	}
	var fns []*types.Func
	for fn := range g.Decls {
		if !gets[fn] && !puts[fn] { // the accessors themselves are exempt
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name() < fns[j].Name() })
	for _, fn := range fns {
		w := &walker{pass: pass, gets: gets, puts: puts, sig: fn.Type().(*types.Signature)}
		w.checkFunc(g.Decls[fn])
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	gets map[*types.Func]bool
	puts map[*types.Func]bool
	sig  *types.Signature // of the body being walked (func or closure)
}

// state is the per-path tracking state.
type state struct {
	live    map[types.Object]token.Pos // unrecycled batch → birth
	retired map[types.Object]token.Pos // recycled batch → put site
}

func newState() *state {
	return &state{live: map[types.Object]token.Pos{}, retired: map[types.Object]token.Pos{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.live {
		c.live[k] = v
	}
	for k, v := range s.retired {
		c.retired[k] = v
	}
	return c
}

// merge folds a fall-through sibling path in by union: an obligation
// alive on either path survives, a retirement on either path sticks.
func (s *state) merge(o *state) {
	for k, v := range o.live {
		if _, ok := s.live[k]; !ok {
			s.live[k] = v
		}
	}
	for k, v := range o.retired {
		if _, ok := s.retired[k]; !ok {
			s.retired[k] = v
		}
	}
}

func (w *walker) checkFunc(fd *ast.FuncDecl) {
	st := newState()
	terminated := w.walkStmts(fd.Body.List, st)
	if !terminated {
		// Fell off the end of the function body.
		w.reportLive(st, fd.Body.Rbrace)
	}
	// Closures get the same treatment, independently: obligations do
	// not flow across the closure boundary (a batch captured by a
	// goroutine body has escaped anyway).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			sig, ok := w.pass.Info.TypeOf(lit).(*types.Signature)
			if !ok {
				return true
			}
			wc := &walker{pass: w.pass, gets: w.gets, puts: w.puts, sig: sig}
			st := newState()
			if !wc.walkStmts(lit.Body.List, st) {
				wc.reportLive(st, lit.Body.Rbrace)
			}
		}
		return true
	})
}

func (w *walker) reportLive(st *state, at token.Pos) {
	type leak struct {
		obj   types.Object
		birth token.Pos
	}
	var leaks []leak
	for obj, birth := range st.live {
		leaks = append(leaks, leak{obj, birth})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].birth < leaks[j].birth })
	for _, l := range leaks {
		w.pass.Reportf(at, "pooled batch %s (obtained at line %d) is not recycled on this path: put it back or transfer ownership",
			l.obj.Name(), w.pass.Fset.Position(l.birth).Line)
	}
}

// walkStmts walks a statement list, mutating st; it reports leaks at
// terminators and returns whether the list always terminates the path.
func (w *walker) walkStmts(stmts []ast.Stmt, st *state) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st, true)
		}
		if !w.errorExempt(s) {
			w.reportLive(st, s.Pos())
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto: obligations crossing these edges are
		// out of scope (documented); treat as path end, no report.
		return true
	case *ast.AssignStmt:
		w.walkAssign(s, st)
	case *ast.ExprStmt:
		w.scanExpr(s.X, st, false)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st, false)
		w.scanExpr(s.Value, st, true) // ownership rides the channel
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		w.scanExpr(call, st, false)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st, false)
					}
				}
			}
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st, false)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		return w.mergeFork(st, []*state{thenSt, elseSt}, []bool{thenTerm, elseTerm})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranching(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st, false)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.scanExpr(s.X, st, false)
		w.walkLoopBody(s.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// walkLoopBody checks the body as its own scope: a batch born inside
// one iteration must be discharged before the next.
func (w *walker) walkLoopBody(body *ast.BlockStmt, outer *state) {
	st := outer.clone()
	before := make(map[types.Object]bool)
	for obj := range st.live {
		before[obj] = true
	}
	if !w.walkStmts(body.List, st) {
		for obj, birth := range st.live {
			if !before[obj] {
				w.pass.Reportf(birth, "pooled batch %s is not recycled before the next loop iteration", obj.Name())
			}
		}
	}
	// Conservative continuation: the loop may run zero times, so the
	// outer state is unchanged (releases of outer batches inside the
	// body do not count).
}

// walkBranching handles switch/type-switch/select uniformly: each case
// forks, fall-throughs merge by union.
func (w *walker) walkBranching(s ast.Stmt, st *state) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st, false)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var states []*state
	var terms []bool
	for _, c := range clauses {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			hasDefault = true // select always takes exactly one clause
			if c.Comm != nil {
				w.walkStmt(c.Comm, cs)
			}
			body = c.Body
		}
		states = append(states, cs)
		terms = append(terms, w.walkStmts(body, cs))
	}
	if !hasDefault {
		// An implicit fall-through when no case matches.
		states = append(states, st.clone())
		terms = append(terms, false)
	}
	return w.mergeFork(st, states, terms)
}

// mergeFork replaces st with the union of the non-terminated branch
// states; it returns true when every branch terminated.
func (w *walker) mergeFork(st *state, states []*state, terms []bool) bool {
	st.live = map[types.Object]token.Pos{}
	st.retired = map[types.Object]token.Pos{}
	all := true
	for i, bs := range states {
		if terms[i] {
			continue
		}
		all = false
		st.merge(bs)
	}
	return all
}

// walkAssign handles births (RHS contains a get call, LHS is a simple
// local), releases (RHS feeds a put / escapes), and retirement resets.
func (w *walker) walkAssign(a *ast.AssignStmt, st *state) {
	for _, rhs := range a.Rhs {
		w.scanExpr(rhs, st, false)
	}
	// Positional matching only when the counts line up; tuple
	// assignments from a single call cannot carry a batch birth.
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			// Assigning into a field or element is an ownership
			// transfer for any tracked batch on the RHS.
			if len(a.Rhs) == len(a.Lhs) {
				w.releaseTracked(a.Rhs[i], st)
			}
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		delete(st.retired, obj) // reassignment revives the name
		if len(a.Rhs) == len(a.Lhs) && w.containsGet(a.Rhs[i]) {
			st.live[obj] = id.Pos()
		} else {
			// Overwritten without a recycle: tracking stops here
			// (documented approximation rather than a diagnostic).
			delete(st.live, obj)
		}
	}
}

func (w *walker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.Info.Uses[id]
}

func (w *walker) containsGet(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := w.pass.FuncFor(call); callee != nil && w.gets[callee] {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanExpr classifies uses of tracked variables inside an expression:
// put-call arguments retire them, other call arguments and composite
// literals transfer ownership, plain reads flag use-after-put. With
// transfer=true the whole expression transfers ownership (returns,
// channel sends).
func (w *walker) scanExpr(e ast.Expr, st *state, transfer bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		if obj == nil {
			return
		}
		if putPos, ok := st.retired[obj]; ok {
			w.pass.Reportf(e.Pos(), "use of pooled batch %s after it was recycled at line %d",
				e.Name, w.pass.Fset.Position(putPos).Line)
		}
		if transfer {
			delete(st.live, obj)
		}
	case *ast.CallExpr:
		callee := w.pass.FuncFor(e)
		w.scanExpr(e.Fun, st, false)
		switch {
		case callee != nil && w.puts[callee]:
			for _, arg := range e.Args {
				w.retireTracked(arg, st, e.Pos())
			}
		case w.isKeepAliveBuiltin(e):
			// len/cap/append do not move ownership: x = append(x, it)
			// keeps the obligation on x.
			for _, arg := range e.Args {
				w.scanExpr(arg, st, false)
			}
		default:
			for _, arg := range e.Args {
				w.scanExpr(arg, st, true) // conservatively escapes
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.scanExpr(elt, st, true) // ownership moves into the value
		}
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, st, transfer)
	case *ast.ParenExpr:
		w.scanExpr(e.X, st, transfer)
	case *ast.UnaryExpr:
		w.scanExpr(e.X, st, transfer)
	case *ast.StarExpr:
		w.scanExpr(e.X, st, false)
	case *ast.BinaryExpr:
		w.scanExpr(e.X, st, false)
		w.scanExpr(e.Y, st, false)
	case *ast.IndexExpr:
		w.scanExpr(e.X, st, false)
		w.scanExpr(e.Index, st, false)
	case *ast.SliceExpr:
		w.scanExpr(e.X, st, transfer) // a reslice aliases the array
		w.scanExpr(e.Low, st, false)
		w.scanExpr(e.High, st, false)
		w.scanExpr(e.Max, st, false)
	case *ast.SelectorExpr:
		w.scanExpr(e.X, st, false)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, st, transfer)
	case *ast.FuncLit:
		// Bodies are walked separately in checkFunc; captures of
		// outer batches escape.
		w.releaseCaptured(e, st)
	}
}

// retireTracked marks every tracked variable inside a put argument as
// recycled (descending through append chains and reslices).
func (w *walker) retireTracked(e ast.Expr, st *state, putPos token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				if _, tracked := st.live[obj]; tracked {
					delete(st.live, obj)
					st.retired[obj] = putPos
				}
			}
		}
		return true
	})
}

// releaseTracked drops obligations for variables inside e (ownership
// moved somewhere the walker cannot follow).
func (w *walker) releaseTracked(e ast.Expr, st *state) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				delete(st.live, obj)
			}
		}
		return true
	})
}

func (w *walker) releaseCaptured(lit *ast.FuncLit, st *state) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				delete(st.live, obj)
			}
		}
		return true
	})
}

func (w *walker) isKeepAliveBuiltin(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := w.pass.Info.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	switch b.Name() {
	case "len", "cap", "append":
		return true
	}
	return false
}

// errorExempt reports whether the return is a failure path: the
// function's last result is error and the returned error expression is
// not the nil literal. Teardown refills pools from scratch, so leaking
// a batch on the way out of a failing pipeline is not a bug.
func (w *walker) errorExempt(ret *ast.ReturnStmt) bool {
	if !analysis.IsErrorReturning(w.sig) {
		return false
	}
	if len(ret.Results) == 0 {
		return true // named results: assume the error path set them
	}
	last := ret.Results[len(ret.Results)-1]
	return !analysis.IsNilIdent(w.pass.Info, last)
}
