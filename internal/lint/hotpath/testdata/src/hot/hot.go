// Package hot exercises the hotpath analyzer: //pjoin:hotpath roots
// and their intra-package callees must not allocate, read the wall
// clock, block, or acquire locks.
package hot

import (
	"sync"
	"time"
)

type probe struct {
	mu  sync.Mutex
	buf []byte
	out chan int
}

// Hot is a marked root; every violation in its call graph is
// attributed back to it.
//
//pjoin:hotpath
func (p *probe) Hot(n int) int {
	b := make([]byte, n) // want "^hot path \\(\\*probe\\)\\.Hot: allocates: make \\(root \\(\\*probe\\)\\.Hot\\)$"
	p.buf = b
	p.mu.Lock()                         // want "acquires a lock: \\(\\*sync\\.Mutex\\)\\.Lock"
	_ = time.Now()                      // want "reads the wall clock: time\\.Now"
	p.out <- n                          // want "blocks: channel send"
	f := func() int { _ = b; return n } // want "allocates: closure literal"
	return helper(n) + f()
}

// helper is unmarked but reachable from Hot, so its body is checked
// with Hot as the attributed root.
func helper(n int) int {
	s := []int{n} // want "hot path helper: allocates: slice literal \\(root \\(\\*probe\\)\\.Hot\\)"
	return s[0]
}

// Boxing and string conversions allocate.
//
//pjoin:hotpath
func Describe(name string, v int) int {
	var sink interface{} = v // no diagnostic: assignment boxing is implicit, only conversions are flagged
	_ = sink
	_ = interface{}(v)   // want "boxes int into interface interface\\{\\}"
	bs := []byte(name)   // want "allocates: conversion between string and byte/rune slice"
	n := name + "suffix" // want "allocates: string concatenation"
	return len(bs) + len(n)
}

// Cold is unmarked and unreachable from any root: it may allocate
// freely.
func Cold(n int) []byte {
	return make([]byte, n)
}

// Lean is marked but clean: index loops, arithmetic, appends to a
// caller-owned slice, and constant concatenation are all allowed.
//
//pjoin:hotpath
func Lean(dst []int, xs []int) []int {
	const greeting = "hello, " + "world" // constant-folded: free
	_ = greeting
	for _, x := range xs {
		dst = append(dst, x*2)
	}
	return dst
}
