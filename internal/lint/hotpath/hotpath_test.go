package hotpath

import (
	"testing"

	"pjoin/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "hot")
}
