// Package hotpath implements the pjoinlint analyzer that proves the
// //pjoin:hotpath zero-alloc contract: functions on the probe /
// insert / punctuation-match / span-record paths must not allocate,
// read the wall clock, block, or take locks. The marker propagates
// through the intra-package static call graph, so marking ProbeMem
// also covers the index lookups it calls.
//
// The check is deliberately syntactic and conservative where escape
// analysis would be needed:
//
//   - append is NOT flagged: amortized growth is part of the design
//     and the runtime AllocsPerRun guards pin the steady state.
//   - calls that cross a package boundary or dispatch dynamically
//     (interface methods, func fields) are invisible; the dynamic
//     alloc guards remain the backstop there.
//   - &composite escapes are flagged even when escape analysis might
//     stack-allocate them — on a hot path that gamble is not taken.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pjoin/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "check that //pjoin:hotpath functions and their intra-package callees " +
		"do not allocate, read the wall clock, block, or acquire locks",
	Run: run,
}

// forbiddenPkgs allocate or format on essentially every call.
var forbiddenPkgs = map[string]bool{
	"fmt": true, "log": true, "reflect": true, "sort": true,
	"errors": true, "strconv": true, "regexp": true, "os": true,
}

// wallClockFuncs in package time read the clock or arm timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true, "Sleep": true,
}

// lockMethods in package sync block or serialize.
var lockMethods = map[string]bool{"Lock": true, "RLock": true, "Wait": true}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	var roots []*types.Func
	for fn, fd := range g.Decls {
		if analysis.HasFuncDirective(fd, "hotpath", "") {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	// rootOf attributes each reachable function to the first root that
	// reaches it, so diagnostics say which marker pulled the function
	// onto the hot path.
	rootOf := make(map[*types.Func]*types.Func)
	for _, root := range roots {
		for fn := range g.Reachable(root) {
			if _, claimed := rootOf[fn]; !claimed {
				rootOf[fn] = root
			}
		}
	}

	var fns []*types.Func
	for fn := range rootOf {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name() < fns[j].Name() })
	for _, fn := range fns {
		checkBody(pass, fn, g.Decls[fn], rootOf[fn])
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl, root *types.Func) {
	qual := types.RelativeTo(pass.Pkg)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "hot path %s: %s (root %s)", funcLabel(fn, qual), what, funcLabel(root, qual))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return checkCall(pass, n, report)
		case *ast.FuncLit:
			report(n.Pos(), "allocates: closure literal")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "starts a goroutine")
			return false
		case *ast.SendStmt:
			report(n.Pos(), "blocks: channel send")
		case *ast.SelectStmt:
			report(n.Pos(), "blocks: select")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				report(n.Pos(), "blocks: channel receive")
			case token.AND:
				if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); lit {
					report(n.Pos(), "allocates: &composite literal escapes")
					return false
				}
			}
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "allocates: slice literal")
				return false
			case *types.Map:
				report(n.Pos(), "allocates: map literal")
				return false
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				report(n.Pos(), "allocates: string concatenation")
			}
		}
		return true
	})
}

// checkCall vets one call expression; its return value is the Inspect
// descend decision.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string)) bool {
	// Conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type, report)
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "allocates: make")
			case "new":
				report(call.Pos(), "allocates: new")
			}
			return true
		}
	}
	callee := pass.FuncFor(call)
	if callee == nil || callee.Pkg() == nil {
		return true // dynamic or universe call: invisible, documented
	}
	qual := types.RelativeTo(pass.Pkg)
	switch path := callee.Pkg().Path(); {
	case forbiddenPkgs[path]:
		report(call.Pos(), "calls "+funcLabel(callee, qual)+" (forbidden package "+path+")")
	case path == "time" && wallClockFuncs[callee.Name()]:
		report(call.Pos(), "reads the wall clock: "+funcLabel(callee, qual))
	case path == "sync" && lockMethods[callee.Name()]:
		report(call.Pos(), "acquires a lock: "+funcLabel(callee, qual))
	}
	return true
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	from := pass.Info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	qual := types.RelativeTo(pass.Pkg)
	if types.IsInterface(to) && !types.IsInterface(from) {
		report(call.Pos(), "boxes "+types.TypeString(from, qual)+" into interface "+types.TypeString(to, qual))
		return
	}
	if stringBytesConversion(from, to) || stringBytesConversion(to, from) {
		report(call.Pos(), "allocates: conversion between string and byte/rune slice")
	}
}

// stringBytesConversion reports a string → []byte / []rune shape.
func stringBytesConversion(from, to types.Type) bool {
	if b, ok := from.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := to.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// funcLabel renders a function for diagnostics: methods as
// (recv).Name, cross-package functions as pkg.Name.
func funcLabel(fn *types.Func, qual types.Qualifier) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		if q := qual(fn.Pkg()); q != "" {
			return q + "." + fn.Name()
		}
	}
	return fn.Name()
}
