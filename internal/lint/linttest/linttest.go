// Package linttest runs a pjoinlint analyzer over source fixtures and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which the repo
// does not depend on; see internal/lint/analysis).
//
// Fixtures live under <dir>/src/<pkgpath>/. Imports between fixture
// packages resolve within that tree — fixtures stub the contract
// packages (op, stream, span) they need, so they are self-contained —
// and all other imports (sync, time, fmt, ...) resolve through the
// toolchain's export data, exactly as the production loader does.
//
// A want comment asserts that the analyzer reports, on that line, a
// diagnostic matching the regexp. Every want must be matched and every
// diagnostic must be wanted; either direction of mismatch fails the
// test with the exact position and message.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pjoin/internal/lint/analysis"
)

// Run analyzes each fixture package (a path relative to dir/src) and
// verifies the diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := newLoader(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkgPath := range pkgs {
		pkg, err := l.load(pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     l.fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Markers:  pkg.Markers,
		}
		analysis.SetReporter(pass, func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, l.fset, pkg, diags)
	}
}

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	base types.Importer
}

func newLoader(root string) (*loader, error) {
	l := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*analysis.Package),
	}
	ext, err := l.externalImports()
	if err != nil {
		return nil, err
	}
	exports, err := analysis.ListExports(root, ext)
	if err != nil {
		return nil, err
	}
	l.base = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// externalImports walks the whole fixture tree and collects the import
// paths that are not fixture packages, so one `go list` resolves their
// export data up front.
func (l *loader) externalImports() ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.Walk(l.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, im := range f.Imports {
			p, _ := strconv.Unquote(im.Path.Value)
			if !l.isFixture(p) {
				seen[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	return out, nil
}

func (l *loader) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// Import implements types.Importer over the two-tier scheme.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isFixture(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.base.Import(path)
}

func (l *loader) load(pkgPath string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files", pkgPath)
	}
	info := analysis.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking fixture %s: %v", pkgPath, typeErrs[0])
	}
	pkg := &analysis.Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Markers: analysis.CollectMarkers(l.fset, files),
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func checkWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the `"re1" "re2"` tail of a want comment.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want regexp", pos)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string: %v", pos, err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
