package spanpair

import (
	"testing"

	"pjoin/internal/lint/linttest"
)

func TestSpanpair(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "spans", "nopair", "arrive")
}
