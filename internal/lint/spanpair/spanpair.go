// Package spanpair implements the pjoinlint analyzer for span
// lifecycle pairing — the static mirror of the traced-oracle's "every
// lifecycle closes" reconciliation (DESIGN.md §13).
//
// Two rules:
//
//  1. Intra-function: a call to a //pjoin:span begin <family> function
//     opens an obligation that every clean exit path must discharge
//     with a //pjoin:span end <family> call. Error returns (non-nil
//     error result) are exempt — the run is tearing down and the
//     oracle's EOS-close accounting takes over. Begin/end-marked
//     functions themselves are exempt (they are the primitive).
//  2. Package-level: a package that emits the opening span kind of a
//     lifecycle (span.KindPunctArrive, or a begin-marked declaration
//     for a family) must also contain its terminal — KindPunctEmit or
//     KindPunctEOSClose for punctuations, an end-marked function or
//     KindPassEnd for passes. This catches lifecycles whose halves
//     span event handlers, where path analysis cannot follow.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pjoin/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc: "check that every span-begin call site is matched by a terminal " +
		"(end/close) on all paths, and that packages opening a span lifecycle " +
		"also emit its terminal kind",
	Run: run,
}

// terminalKinds maps a lifecycle family to the span kinds that close it.
var terminalKinds = map[string][]string{
	"pass":  {"KindPassEnd"},
	"punct": {"KindPunctEmit", "KindPunctEOSClose"},
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	begins := make(map[*types.Func]string) // begin-marked fn → family
	ends := make(map[*types.Func]string)
	marked := make(map[*types.Func]bool)
	for fn, fd := range g.Decls {
		for _, d := range analysis.FuncDirectives(fd) {
			if d.Verb != "span" || len(d.Args) != 2 {
				continue
			}
			marked[fn] = true
			if d.Args[0] == "begin" {
				begins[fn] = d.Args[1]
			} else {
				ends[fn] = d.Args[1]
			}
		}
	}

	var fns []*types.Func
	for fn := range g.Decls {
		if !marked[fn] {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name() < fns[j].Name() })
	for _, fn := range fns {
		sig := fn.Type().(*types.Signature)
		w := &walker{pass: pass, begins: begins, ends: ends, sig: sig}
		w.checkBody(g.Decls[fn].Body)
		ast.Inspect(g.Decls[fn].Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if lsig, ok := pass.Info.TypeOf(lit).(*types.Signature); ok {
					wc := &walker{pass: pass, begins: begins, ends: ends, sig: lsig}
					wc.checkBody(lit.Body)
				}
			}
			return true
		})
	}

	checkPackageLevel(pass, g, begins, ends)
	return nil
}

type walker struct {
	pass   *analysis.Pass
	begins map[*types.Func]string
	ends   map[*types.Func]string
	sig    *types.Signature
}

type open map[string]token.Pos // family → begin site

func (o open) clone() open {
	c := make(open, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

func (w *walker) checkBody(body *ast.BlockStmt) {
	st := make(open)
	if !w.walkStmts(body.List, st) {
		w.reportOpen(st, body.Rbrace)
	}
}

func (w *walker) reportOpen(st open, at token.Pos) {
	fams := make([]string, 0, len(st))
	for f := range st {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		w.pass.Reportf(at, "span family %q opened at line %d is not closed on this path",
			f, w.pass.Fset.Position(st[f]).Line)
	}
}

func (w *walker) walkStmts(stmts []ast.Stmt, st open) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt, st open) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.scanEvents(s, st)
		if !w.errorExempt(s) {
			w.reportOpen(st, s.Pos())
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue edges: out of scope, documented
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanEvents(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		return mergeFork(st, []open{thenSt, elseSt}, []bool{thenTerm, elseTerm})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranching(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanEvents(s.Cond, st)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.scanEvents(s.X, st)
		w.walkLoopBody(s.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	default:
		w.scanEvents(s, st)
	}
	return false
}

func (w *walker) walkLoopBody(body *ast.BlockStmt, outer open) {
	st := outer.clone()
	before := make(map[string]bool)
	for f := range st {
		before[f] = true
	}
	if !w.walkStmts(body.List, st) {
		for f, pos := range st {
			if !before[f] {
				w.pass.Reportf(pos, "span family %q is not closed before the next loop iteration", f)
			}
		}
	}
}

func (w *walker) walkBranching(s ast.Stmt, st open) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanEvents(s.Tag, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var states []open
	var terms []bool
	for _, c := range clauses {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			hasDefault = true
			if c.Comm != nil {
				w.walkStmt(c.Comm, cs)
			}
			body = c.Body
		}
		states = append(states, cs)
		terms = append(terms, w.walkStmts(body, cs))
	}
	if !hasDefault {
		states = append(states, st.clone())
		terms = append(terms, false)
	}
	return mergeFork(st, states, terms)
}

func mergeFork(st open, states []open, terms []bool) bool {
	for f := range st {
		delete(st, f)
	}
	all := true
	for i, bs := range states {
		if terms[i] {
			continue
		}
		all = false
		for f, pos := range bs {
			if _, ok := st[f]; !ok {
				st[f] = pos
			}
		}
	}
	return all
}

// scanEvents applies begin/end calls found anywhere in the node.
// Defers count: a deferred end runs on every exit.
func (w *walker) scanEvents(n ast.Node, st open) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // closure bodies are walked separately
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := w.pass.FuncFor(call)
		if callee == nil {
			return true
		}
		if fam, ok := w.begins[callee]; ok {
			st[fam] = call.Pos()
		}
		if fam, ok := w.ends[callee]; ok {
			delete(st, fam)
		}
		return true
	})
}

func (w *walker) errorExempt(ret *ast.ReturnStmt) bool {
	if !analysis.IsErrorReturning(w.sig) {
		return false
	}
	if len(ret.Results) == 0 {
		return true
	}
	last := ret.Results[len(ret.Results)-1]
	return !analysis.IsNilIdent(w.pass.Info, last)
}

// checkPackageLevel enforces that lifecycles opened in this package
// can also terminate in it.
func checkPackageLevel(pass *analysis.Pass, g *analysis.CallGraph, begins, ends map[*types.Func]string) {
	spanPkg := analysis.ImportWithSuffix(pass.Pkg, "span")

	// A family with a begin-marked declaration needs an end-marked one
	// (or a direct terminal-kind emission).
	endFams := make(map[string]bool)
	for _, fam := range ends {
		endFams[fam] = true
	}
	type beginDecl struct {
		fn  *types.Func
		fam string
	}
	var decls []beginDecl
	for fn, fam := range begins {
		decls = append(decls, beginDecl{fn, fam})
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].fn.Name() < decls[j].fn.Name() })
	for _, d := range decls {
		if endFams[d.fam] {
			continue
		}
		if spanPkg != nil && referencesAnyKind(pass, spanPkg, terminalKinds[d.fam]) != 0 {
			continue
		}
		pass.Reportf(g.Decls[d.fn].Name.Pos(),
			"span family %q has a begin-marked function but no end-marked counterpart in this package", d.fam)
	}

	// Punctuation lifecycles: arrivals need a terminal.
	if spanPkg == nil || spanPkg == pass.Pkg {
		return
	}
	arrivePos := referencesAnyKind(pass, spanPkg, []string{"KindPunctArrive"})
	if arrivePos == 0 {
		return
	}
	if referencesAnyKind(pass, spanPkg, terminalKinds["punct"]) == 0 {
		pass.Reportf(arrivePos,
			"package emits span.KindPunctArrive but never a punctuation terminal (KindPunctEmit / KindPunctEOSClose): lifecycles opened here can never close")
	}
}

// referencesAnyKind returns the position of the first use of any named
// constant from spanPkg, or 0.
func referencesAnyKind(pass *analysis.Pass, spanPkg *types.Package, names []string) token.Pos {
	if len(names) == 0 {
		return 0
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var found token.Pos
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found != 0 {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || !want[id.Name] {
				return true
			}
			if obj, ok := pass.Info.Uses[id].(*types.Const); ok && obj.Pkg() == spanPkg {
				found = id.Pos()
			}
			return true
		})
	}
	return found
}
