// Package arrive emits punctuation-arrival spans but never a
// punctuation terminal, so every lifecycle it opens dangles.
package arrive

import "span"

// Observe records a punctuation arrival.
func Observe() span.Kind {
	return span.KindPunctArrive // want "package emits span\\.KindPunctArrive but never a punctuation terminal"
}
