// Package spans exercises spanpair's path rule: every span-begin call
// must be matched by a span-end on all clean exit paths.
package spans

import "span"

var sink span.Kind

type boom struct{}

func (boom) Error() string { return "boom" }

var errBoom error = boom{}

// beginPass opens a pass span.
//
//pjoin:span begin pass
func beginPass() { sink = span.KindPassBegin }

// endPass closes a pass span.
//
//pjoin:span end pass
func endPass() { sink = span.KindPassEnd }

// balanced pairs begin and end on the only path: clean.
func balanced() {
	beginPass()
	endPass()
}

// unbalanced leaks the open span on the early-return path.
func unbalanced(cond bool) {
	beginPass()
	if cond {
		return // want "^span family \"pass\" opened at line 33 is not closed on this path$"
	}
	endPass()
}

// loopLeak opens a span each iteration without closing it.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		beginPass() // want "span family \"pass\" is not closed before the next loop iteration"
	}
}

// branched closes the span on both arms: clean.
func branched(cond bool) {
	beginPass()
	if cond {
		endPass()
		return
	}
	endPass()
}

// failing leaks only on the error path, which is exempt: the traced
// oracle's EOS-close accounting covers teardown.
func failing(fail bool) error {
	beginPass()
	if fail {
		return errBoom
	}
	endPass()
	return nil
}
