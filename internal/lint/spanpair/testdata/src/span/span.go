// Package span stubs the span kinds the spanpair analyzer keys on.
package span

// Kind tags a span.
type Kind uint8

// The lifecycle kinds.
const (
	KindPassBegin Kind = iota
	KindPassEnd
	KindPunctArrive
	KindPunctEmit
	KindPunctEOSClose
)
