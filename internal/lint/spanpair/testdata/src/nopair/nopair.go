// Package nopair opens the pass lifecycle but declares no way to
// close it: no end-marked counterpart and no terminal kind reference.
package nopair

import "span"

var sink span.Kind

// beginPass opens a pass span.
//
//pjoin:span begin pass
func beginPass() { sink = span.KindPassBegin } // want "span family \"pass\" has a begin-marked function but no end-marked counterpart in this package"
