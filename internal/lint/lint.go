// Package lint assembles the pjoinlint analyzer suite. The analyzers
// prove, at compile time, invariants the dynamic tiers (alloc guards,
// race detector, oracle soak) can only sample: the zero-alloc hot
// paths, the operator driver contract, pooled-batch recycling, span
// lifecycle pairing, and the lock hierarchy. See DESIGN.md §14.
package lint

import (
	"pjoin/internal/lint/analysis"
	"pjoin/internal/lint/hotpath"
	"pjoin/internal/lint/locksafe"
	"pjoin/internal/lint/opcontract"
	"pjoin/internal/lint/poolsafe"
	"pjoin/internal/lint/spanpair"
)

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpath.Analyzer,
		opcontract.Analyzer,
		poolsafe.Analyzer,
		spanpair.Analyzer,
		locksafe.Analyzer,
	}
}
