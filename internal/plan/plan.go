// Package plan is the declarative layer over the mini engine: it lets a
// query be described as a named dataflow graph (sources, joins,
// relational operators, sinks) that is validated up front and then
// instantiated onto the live executor. It plays the role the Raindrop
// query plans play for the paper's PJoin (§4: "implemented ... as a
// query operator in the Raindrop XQuery subscription system").
//
//	p := plan.New()
//	p.Source("open", gen.OpenSchema, openItems, false)
//	p.Source("bid", gen.BidSchema, bidItems, false)
//	p.PJoin("j", "open", "bid", plan.JoinOptions{PurgeThreshold: 1})
//	p.GroupBySum("totals", "j", "item_id", "bid_increase")
//	p.Sink("out", "totals")
//	results, err := p.Run(ctx)
//	rows := results["out"].Tuples()
package plan

import (
	"context"
	"fmt"

	"pjoin/internal/core"
	"pjoin/internal/event"
	"pjoin/internal/exec"
	"pjoin/internal/op"
	"pjoin/internal/parallel"
	"pjoin/internal/stream"
	"pjoin/internal/xjoin"
)

// JoinOptions configures a PJoin or XJoin node.
type JoinOptions struct {
	// LeftAttr and RightAttr are the join attribute positions (default
	// 0, 0).
	LeftAttr, RightAttr int
	// PurgeThreshold is PJoin's purge threshold (default 1 = eager).
	PurgeThreshold int
	// PropagateCount enables push-mode propagation every N punctuations
	// (default 1; 0 disables push propagation).
	PropagateCount int
	// MemoryBytes enables state relocation above this in-memory size.
	MemoryBytes int64
	// Window enables sliding-window semantics (PJoin only).
	Window stream.Time
	// Verify enables punctuation integrity checking (PJoin only).
	Verify bool
	// Shards > 1 runs the PJoin hash-partitioned across that many
	// parallel shards (internal/parallel). Punctuations spanning several
	// join keys then need RetainPropagated for exact equivalence; see the
	// parallel package doc.
	Shards int
	// RetainPropagated keeps propagated punctuations in their sets; see
	// core.Config.RetainPropagated.
	RetainPropagated bool
}

type node struct {
	name   string
	inputs []string
	// build constructs the operator bound to emit; inSchemas match
	// inputs. Nil for sources and sinks.
	build func(inSchemas []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error)
	// source fields
	sourceItems []stream.Item
	sourceSch   *stream.Schema
	paced       bool
	isSink      bool
}

// Plan is a dataflow under construction. Methods record definition
// errors; Run reports the first one.
type Plan struct {
	nodes  []*node
	byName map[string]*node
	err    error
}

// New returns an empty plan.
func New() *Plan {
	return &Plan{byName: make(map[string]*node)}
}

func (p *Plan) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

func (p *Plan) add(n *node) {
	if p.err != nil {
		return
	}
	if n.name == "" {
		p.fail(fmt.Errorf("plan: empty node name"))
		return
	}
	if _, dup := p.byName[n.name]; dup {
		p.fail(fmt.Errorf("plan: duplicate node %q", n.name))
		return
	}
	for _, in := range n.inputs {
		ref, ok := p.byName[in]
		if !ok {
			p.fail(fmt.Errorf("plan: node %q references unknown input %q", n.name, in))
			return
		}
		if ref.isSink {
			p.fail(fmt.Errorf("plan: node %q reads from sink %q", n.name, in))
			return
		}
	}
	p.nodes = append(p.nodes, n)
	p.byName[n.name] = n
}

// Source adds a stream source feeding the given items (paced sources
// honour item timestamps in real time).
func (p *Plan) Source(name string, schema *stream.Schema, items []stream.Item, paced bool) {
	if schema == nil {
		p.fail(fmt.Errorf("plan: source %q: nil schema", name))
		return
	}
	p.add(&node{name: name, sourceItems: items, sourceSch: schema, paced: paced})
}

// PJoin adds a punctuation-exploiting join of left and right.
func (p *Plan) PJoin(name, left, right string, opts JoinOptions) {
	p.add(&node{
		name:   name,
		inputs: []string{left, right},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			cfg := core.Config{
				SchemaA: in[0], SchemaB: in[1],
				AttrA: opts.LeftAttr, AttrB: opts.RightAttr,
				OutName:            name,
				Window:             opts.Window,
				VerifyPunctuations: opts.Verify,
				RetainPropagated:   opts.RetainPropagated,
			}
			cfg.Thresholds = event.Thresholds{
				Purge:          defaultInt(opts.PurgeThreshold, 1),
				PropagateCount: defaultInt(opts.PropagateCount, 1),
				MemoryBytes:    opts.MemoryBytes,
			}
			if opts.Shards > 1 {
				j, err := parallel.New(parallel.Config{Shards: opts.Shards, Join: cfg}, emit)
				if err != nil {
					return nil, nil, err
				}
				return j, j.OutSchema(), nil
			}
			j, err := core.New(cfg, emit)
			if err != nil {
				return nil, nil, err
			}
			return j, j.OutSchema(), nil
		},
	})
}

// XJoin adds the baseline join (ignores punctuations).
func (p *Plan) XJoin(name, left, right string, opts JoinOptions) {
	p.add(&node{
		name:   name,
		inputs: []string{left, right},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			j, err := xjoin.New(xjoin.Config{
				SchemaA: in[0], SchemaB: in[1],
				AttrA: opts.LeftAttr, AttrB: opts.RightAttr,
				OutName:     name,
				MemoryBytes: opts.MemoryBytes,
			}, emit)
			if err != nil {
				return nil, nil, err
			}
			return j, j.OutSchema(), nil
		},
	})
}

// GroupBy adds a grouped aggregate over the named attributes.
func (p *Plan) GroupBy(name, input, groupField, aggField string, agg op.AggKind) {
	p.add(&node{
		name:   name,
		inputs: []string{input},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			g, err := in[0].IndexOf(groupField)
			if err != nil {
				return nil, nil, err
			}
			a := 0
			if agg != op.AggCount {
				if a, err = in[0].IndexOf(aggField); err != nil {
					return nil, nil, err
				}
			}
			gb, err := op.NewGroupBy(in[0], g, a, agg, emit)
			if err != nil {
				return nil, nil, err
			}
			return gb, gb.OutSchema(), nil
		},
	})
}

// GroupBySum is GroupBy with the sum aggregate.
func (p *Plan) GroupBySum(name, input, groupField, sumField string) {
	p.GroupBy(name, input, groupField, sumField, op.AggSum)
}

// Select adds a filter.
func (p *Plan) Select(name, input string, pred func(*stream.Tuple) bool) {
	p.add(&node{
		name:   name,
		inputs: []string{input},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			s, err := op.NewSelect(in[0], pred, emit)
			if err != nil {
				return nil, nil, err
			}
			return s, s.OutSchema(), nil
		},
	})
}

// Project adds a projection keeping the named fields in order.
func (p *Plan) Project(name, input string, fields ...string) {
	p.add(&node{
		name:   name,
		inputs: []string{input},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			keep := make([]int, 0, len(fields))
			for _, f := range fields {
				i, err := in[0].IndexOf(f)
				if err != nil {
					return nil, nil, err
				}
				keep = append(keep, i)
			}
			pr, err := op.NewProject(in[0], keep, emit)
			if err != nil {
				return nil, nil, err
			}
			return pr, pr.OutSchema(), nil
		},
	})
}

// Union adds a two-input union (inputs must share a schema).
func (p *Plan) Union(name, left, right string) {
	p.add(&node{
		name:   name,
		inputs: []string{left, right},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			if in[0].Width() != in[1].Width() {
				return nil, nil, fmt.Errorf("plan: union %q: schema widths differ", name)
			}
			u, err := op.NewUnion(in[0], emit)
			if err != nil {
				return nil, nil, err
			}
			return u, u.OutSchema(), nil
		},
	})
}

// KeyPunctuate adds a punctuation-deriving node for a unique-key field.
func (p *Plan) KeyPunctuate(name, input, keyField string) {
	p.add(&node{
		name:   name,
		inputs: []string{input},
		build: func(in []*stream.Schema, emit op.Emitter) (op.Operator, *stream.Schema, error) {
			k, err := in[0].IndexOf(keyField)
			if err != nil {
				return nil, nil, err
			}
			kp, err := op.NewKeyPunctuator(in[0], k, emit)
			if err != nil {
				return nil, nil, err
			}
			return kp, kp.OutSchema(), nil
		},
	})
}

// Sink marks a node's output for collection; Run returns its collector
// under the sink's name.
func (p *Plan) Sink(name, input string) {
	p.add(&node{name: name, inputs: []string{input}, isSink: true})
}

// Operators built during the last Run, by node name, for metric
// inspection after the run.
type RunResult struct {
	Sinks     map[string]*op.Collector
	Operators map[string]op.Operator
}

// Run validates, instantiates and executes the plan, blocking until the
// dataflow drains. Every non-sink node must be consumed by exactly the
// nodes that reference it (each output edge has one reader; fan-out
// would need an explicit split node and is rejected).
func (p *Plan) Run(ctx context.Context) (*RunResult, error) {
	if p.err != nil {
		return nil, p.err
	}
	if len(p.nodes) == 0 {
		return nil, fmt.Errorf("plan: empty plan")
	}
	// Each node's output may feed at most one consumer.
	readers := map[string]int{}
	for _, n := range p.nodes {
		for _, in := range n.inputs {
			readers[in]++
		}
	}
	for _, n := range p.nodes {
		if n.isSink {
			continue
		}
		switch readers[n.name] {
		case 0:
			return nil, fmt.Errorf("plan: node %q has no consumer (add a Sink)", n.name)
		case 1:
		default:
			return nil, fmt.Errorf("plan: node %q has %d consumers; fan-out is not supported", n.name, readers[n.name])
		}
	}

	pipe := exec.NewPipeline()
	edges := map[string]*exec.Edge{}
	schemas := map[string]*stream.Schema{}
	res := &RunResult{
		Sinks:     map[string]*op.Collector{},
		Operators: map[string]op.Operator{},
	}
	for _, n := range p.nodes {
		switch {
		case n.sourceSch != nil:
			e := pipe.Edge()
			pipe.SourceItems(e, n.sourceItems, n.paced)
			edges[n.name] = e
			schemas[n.name] = n.sourceSch
		case n.isSink:
			res.Sinks[n.name] = pipe.Sink(edges[n.inputs[0]])
		default:
			inSchemas := make([]*stream.Schema, len(n.inputs))
			inEdges := make([]*exec.Edge, len(n.inputs))
			for i, in := range n.inputs {
				inSchemas[i] = schemas[in]
				inEdges[i] = edges[in]
			}
			out := pipe.Edge()
			o, outSchema, err := n.build(inSchemas, out)
			if err != nil {
				return nil, fmt.Errorf("plan: node %q: %w", n.name, err)
			}
			if err := pipe.Spawn(o, inEdges...); err != nil {
				return nil, fmt.Errorf("plan: node %q: %w", n.name, err)
			}
			edges[n.name] = out
			schemas[n.name] = outSchema
			res.Operators[n.name] = o
		}
	}
	if err := pipe.Run(ctx); err != nil {
		return nil, err
	}
	return res, nil
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0 // explicit negative disables
	}
	return v
}
