package plan_test

import (
	"context"
	"fmt"
	"log"

	"pjoin/internal/gen"
	"pjoin/internal/plan"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// The paper's Fig. 1 query as a declarative plan: join the Open and Bid
// streams on item_id, then sum bid_increase per item. Punctuations
// flow through the whole plan, so each item's total is final the moment
// its auction closes.
func Example() {
	mkOpen := func(ts stream.Time, id int64, seller string) stream.Item {
		return stream.TupleItem(stream.MustTuple(gen.OpenSchema, ts,
			value.Int(id), value.Str(seller), value.Float(10)))
	}
	mkBid := func(ts stream.Time, id int64, inc float64) stream.Item {
		return stream.TupleItem(stream.MustTuple(gen.BidSchema, ts,
			value.Int(id), value.Str("bidder"), value.Float(inc)))
	}
	closeItem := func(ts stream.Time, width int, id int64) stream.Item {
		return stream.PunctItem(punct.MustKeyOnly(width, 0, punct.Const(value.Int(id))), ts)
	}

	open := []stream.Item{
		mkOpen(1, 7, "ada"),
		closeItem(2, 3, 7), // item_id is a key of Open
	}
	bid := []stream.Item{
		mkBid(3, 7, 5),
		mkBid(4, 7, 2.5),
		closeItem(5, 3, 7), // auction 7 expired
	}

	p := plan.New()
	p.Source("open", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bid, false)
	p.PJoin("j", "open", "bid", plan.JoinOptions{})
	p.GroupBySum("totals", "j", "item_id", "bid_increase")
	p.Sink("out", "totals")

	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Sinks["out"].Tuples() {
		fmt.Printf("item %d total %.1f\n", t.Values[0].IntVal(), t.Values[1].FloatVal())
	}
	// Output:
	// item 7 total 7.5
}
