package plan

import (
	"context"
	"fmt"
	"testing"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/parallel"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

func auctionItems(t *testing.T) (open, bid []stream.Item) {
	t.Helper()
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed: 9, Items: 25,
		OpenMean: stream.Time(200_000), AuctionLength: stream.Time(4_000_000),
		BidMean: stream.Time(600_000), UniqueOpenPunct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bid = append(bid, a.Item)
		}
	}
	return open, bid
}

func TestFig1PlanEndToEnd(t *testing.T) {
	open, bid := auctionItems(t)
	p := New()
	p.Source("open", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bid, false)
	p.PJoin("j", "open", "bid", JoinOptions{Verify: true})
	p.GroupBySum("totals", "j", "item_id", "bid_increase")
	p.Sink("out", "totals")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sinks["out"].Tuples()
	if len(rows) == 0 || len(rows) > 25 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The join operator is inspectable after the run.
	j, ok := res.Operators["j"].(*core.PJoin)
	if !ok {
		t.Fatal("join operator not exposed")
	}
	if j.StateTuples() != 0 {
		t.Errorf("join state = %d", j.StateTuples())
	}
	if len(res.Sinks["out"].Puncts()) == 0 {
		t.Error("no punctuations reached the sink")
	}
}

func TestPlanWithSelectAndProject(t *testing.T) {
	open, bid := auctionItems(t)
	p := New()
	p.Source("open", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bid, false)
	p.PJoin("j", "open", "bid", JoinOptions{})
	p.Select("big", "j", func(tp *stream.Tuple) bool {
		return tp.Values[5].FloatVal() >= 10 // bid_increase >= 10
	})
	p.Project("slim", "big", "item_id", "bid_increase")
	p.Sink("out", "slim")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Sinks["out"].Tuples() {
		if tp.Width() != 2 {
			t.Fatalf("projected width = %d", tp.Width())
		}
		if tp.Values[1].FloatVal() < 10 {
			t.Fatalf("selection leaked %v", tp)
		}
	}
}

func TestPlanKeyPunctuateFeedsJoin(t *testing.T) {
	// Open tuples WITHOUT derived punctuations; the plan derives them
	// with KeyPunctuate, which lets PJoin drop unmatched bids on the fly.
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed: 3, Items: 20,
		OpenMean: stream.Time(200_000), AuctionLength: stream.Time(3_000_000),
		BidMean: stream.Time(500_000), UniqueOpenPunct: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	var open, bid []stream.Item
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bid = append(bid, a.Item)
		}
	}
	p := New()
	p.Source("open-raw", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bid, false)
	p.KeyPunctuate("open", "open-raw", "item_id")
	p.PJoin("j", "open", "bid", JoinOptions{})
	p.Sink("out", "j")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kp := res.Operators["open"].(*op.KeyPunctuator)
	if kp.Derived() != 20 {
		t.Errorf("derived = %d", kp.Derived())
	}
	j := res.Operators["j"].(*core.PJoin)
	if j.Metrics().DroppedOnFly == 0 {
		t.Error("derived punctuations never enabled drop-on-the-fly")
	}
}

func TestPlanUnion(t *testing.T) {
	mk := func(n int, base int64) []stream.Item {
		var out []stream.Item
		for i := 0; i < n; i++ {
			out = append(out, stream.TupleItem(stream.MustTuple(gen.SchemaA,
				stream.Time(i+1), value.Int(base+int64(i)), value.Str("x"))))
		}
		return out
	}
	p := New()
	p.Source("a1", gen.SchemaA, mk(5, 0), false)
	p.Source("a2", gen.SchemaA, mk(7, 100), false)
	p.Union("u", "a1", "a2")
	p.Sink("out", "u")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sinks["out"].Tuples()); got != 12 {
		t.Errorf("union tuples = %d", got)
	}
}

func TestPlanXJoinNode(t *testing.T) {
	open, bid := auctionItems(t)
	p := New()
	p.Source("open", gen.OpenSchema, open, false)
	p.Source("bid", gen.BidSchema, bid, false)
	p.XJoin("j", "open", "bid", JoinOptions{})
	p.Sink("out", "j")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks["out"].Tuples()) == 0 {
		t.Error("xjoin produced nothing")
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(p *Plan)
	}{
		{"empty plan", func(p *Plan) {}},
		{"duplicate name", func(p *Plan) {
			p.Source("s", gen.SchemaA, nil, false)
			p.Source("s", gen.SchemaA, nil, false)
			p.Sink("out", "s")
		}},
		{"unknown input", func(p *Plan) {
			p.Select("f", "nope", func(*stream.Tuple) bool { return true })
		}},
		{"nil source schema", func(p *Plan) {
			p.Source("s", nil, nil, false)
		}},
		{"dangling node", func(p *Plan) {
			p.Source("s", gen.SchemaA, nil, false)
		}},
		{"fan-out", func(p *Plan) {
			p.Source("s", gen.SchemaA, nil, false)
			p.Sink("out1", "s")
			p.Sink("out2", "s")
		}},
		{"read from sink", func(p *Plan) {
			p.Source("s", gen.SchemaA, nil, false)
			p.Sink("out", "s")
			p.Select("f", "out", func(*stream.Tuple) bool { return true })
		}},
		{"empty name", func(p *Plan) {
			p.Source("", gen.SchemaA, nil, false)
		}},
		{"bad field", func(p *Plan) {
			p.Source("s", gen.SchemaA, nil, false)
			p.Project("pr", "s", "no_such_field")
			p.Sink("out", "pr")
		}},
		{"union width mismatch", func(p *Plan) {
			p.Source("s1", gen.SchemaA, nil, false)
			p.Source("s2", gen.OpenSchema, nil, false)
			p.Union("u", "s1", "s2")
			p.Sink("out", "u")
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := New()
			c.build(p)
			if _, err := p.Run(context.Background()); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPlanGroupByCount(t *testing.T) {
	var items []stream.Item
	for i := 0; i < 9; i++ {
		items = append(items, stream.TupleItem(stream.MustTuple(gen.SchemaA,
			stream.Time(i+1), value.Int(int64(i%3)), value.Str(fmt.Sprintf("x%d", i)))))
	}
	p := New()
	p.Source("s", gen.SchemaA, items, false)
	p.GroupBy("g", "s", "k", "", op.AggCount)
	p.Sink("out", "g")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sinks["out"].Tuples()
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if r.Values[1].IntVal() != 3 {
			t.Errorf("count = %v", r)
		}
	}
}

// TestPlanShardedPJoin runs the fig.1 auction plan with the join
// hash-partitioned across 4 shards and checks the aggregate results
// match the single-instance plan value-for-value.
func TestPlanShardedPJoin(t *testing.T) {
	open, bid := auctionItems(t)
	run := func(shards int) map[string]int {
		p := New()
		p.Source("open", gen.OpenSchema, open, false)
		p.Source("bid", gen.BidSchema, bid, false)
		p.PJoin("j", "open", "bid", JoinOptions{Verify: true, Shards: shards})
		p.GroupBySum("totals", "j", "item_id", "bid_increase")
		p.Sink("out", "totals")
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 {
			j, ok := res.Operators["j"].(*parallel.ShardedPJoin)
			if !ok {
				t.Fatal("sharded join operator not exposed")
			}
			if j.Shards() != shards {
				t.Errorf("shards = %d, want %d", j.Shards(), shards)
			}
			if j.StateTuples() != 0 {
				t.Errorf("residual sharded state = %d", j.StateTuples())
			}
		}
		rows := map[string]int{}
		for _, r := range res.Sinks["out"].Tuples() {
			rows[fmt.Sprintf("%v|%v", r.Values[0], r.Values[1])]++
		}
		return rows
	}
	single := run(1)
	sharded := run(4)
	if len(single) == 0 {
		t.Fatal("no aggregate rows")
	}
	for k, n := range single {
		if sharded[k] != n {
			t.Errorf("row %q: single %d, sharded %d", k, n, sharded[k])
		}
	}
	if len(sharded) != len(single) {
		t.Errorf("row count: single %d, sharded %d", len(single), len(sharded))
	}
}
