package plan

import (
	"context"
	"fmt"
	"testing"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestCascadedJoinsPropagationPaysOff is the end-to-end payoff of
// punctuation propagation (§3.5): in a plan with TWO chained PJoins,
// the punctuations the first join propagates must let the SECOND join
// purge its state — the exact benefit the paper promises downstream
// operators.
func TestCascadedJoinsPropagationPaysOff(t *testing.T) {
	scC := stream.MustSchema("C",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "pc", Kind: value.KindString},
	)
	keyP := func(width int, k int64) punct.Punctuation {
		return punct.MustKeyOnly(width, 0, punct.Const(value.Int(k)))
	}
	// Three streams over the same keys; every stream punctuates each key
	// right after its tuples.
	var a, b, c []stream.Item
	var ts stream.Time
	next := func() stream.Time { ts++; return ts }
	const keys = 30
	for k := int64(0); k < keys; k++ {
		a = append(a,
			stream.TupleItem(stream.MustTuple(gen.SchemaA, next(), value.Int(k), value.Str(fmt.Sprintf("a%d", k)))),
			stream.PunctItem(keyP(2, k), next()))
		b = append(b,
			stream.TupleItem(stream.MustTuple(gen.SchemaB, next(), value.Int(k), value.Str(fmt.Sprintf("b%d", k)))),
			stream.PunctItem(keyP(2, k), next()))
		c = append(c,
			stream.TupleItem(stream.MustTuple(scC, next(), value.Int(k), value.Str(fmt.Sprintf("c%d", k)))),
			stream.PunctItem(keyP(2, k), next()))
	}

	p := New()
	p.Source("a", gen.SchemaA, a, false)
	p.Source("b", gen.SchemaB, b, false)
	p.Source("c", scC, c, false)
	p.PJoin("j1", "a", "b", JoinOptions{Verify: true})
	// j1's output joins with C on the same key (attribute 0 of both).
	p.PJoin("j2", "j1", "c", JoinOptions{Verify: true})
	p.Sink("out", "j2")

	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sinks["out"].Tuples()
	if len(rows) != keys {
		t.Fatalf("results = %d, want %d", len(rows), keys)
	}
	for _, r := range rows {
		if r.Width() != 6 {
			t.Fatalf("cascaded result width = %d", r.Width())
		}
	}

	j2 := res.Operators["j2"].(*core.PJoin)
	// The decisive assertions: j1's PROPAGATED punctuations reached j2
	// and purged its state.
	if j2.Metrics().PunctsIn[0] == 0 {
		t.Fatal("no punctuations flowed from j1 into j2")
	}
	if j2.Metrics().Purged == 0 && j2.Metrics().DroppedOnFly == 0 {
		t.Error("j2 exploited no punctuations at all")
	}
	if got := j2.StateTuples(); got != 0 {
		t.Errorf("j2 state = %d at end; upstream punctuations should have purged it", got)
	}
	// And j2 itself propagates punctuations over the cascaded schema.
	if got := len(res.Sinks["out"].Puncts()); got == 0 {
		t.Error("no punctuations propagated out of the cascade")
	}
}
