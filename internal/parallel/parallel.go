// Package parallel implements ShardedPJoin: a hash-partitioned parallel
// composition of N independent core.PJoin instances, the repository's
// first concurrent hot path.
//
// # Architecture
//
// The join-key space is partitioned by hash: a router (the caller's
// Process goroutine) hashes each data tuple's join attribute once and
// forwards the tuple to the shard owning that hash slice over a bounded
// queue, so every pair of matching tuples meets inside exactly one
// shard. Each shard runs a full, unmodified core.PJoin — its own hash
// buckets, punctuation sets, purge buffers, spill stores and event
// monitor — on its own goroutine, which keeps the single-join invariants
// (operators are single-threaded state machines) intact per shard.
//
// # Punctuation routing and merge alignment
//
// Punctuations are broadcast to every shard: a punctuation describes a
// slice of the key space, and each shard applies it to the partition it
// owns (a shard holding no matching tuples simply purges nothing and can
// propagate the punctuation immediately). On the way out the shards'
// propagated punctuations must be re-aligned: the sharded join may only
// promise "no more results matching p" downstream once EVERY shard has
// made that promise, because any shard still holding a matching tuple
// could still emit a result. The merge stage therefore keeps a
// per-punctuation countdown, forwarding a punctuation exactly when the
// last of the N shards propagates it. Result tuples are never held up:
// they flow through the merge as they are produced, serialised only by
// the output mutex.
//
// Result-tuple output is always exactly the single instance's (matching
// pairs meet in exactly one shard). Propagated punctuations are exactly
// the single instance's too, with one caveat: when punctuations span
// SEVERAL join keys (range patterns), set core.Config.RetainPropagated.
// Default PJoin removes a punctuation from its set upon propagation; a
// shard owning only part of a range reaches count zero (and forgets the
// punctuation) earlier than the whole join would, losing its purge and
// drop-on-the-fly power over later covered arrivals in that shard.
// Retention makes set membership independent of propagation timing, so
// every shard's counts are an exact partition of the single instance's
// and the merged output multiset matches a RetainPropagated single
// instance on any valid input. Single-key (constant) punctuations need
// no retention: a key's tuples all live in one shard, which then
// behaves exactly like the single instance restricted to its slice.
//
// # Timestamp contract
//
// core.PJoin's duplicate-avoidance bookkeeping requires strictly
// increasing item timestamps per instance. The executor restamps items
// on the sharded operator's driver goroutine (one strictly increasing
// sequence), the router dispatches in arrival order, and each shard's
// queue is FIFO — so every shard observes a subsequence of a strictly
// increasing sequence, which is again strictly increasing. This is what
// makes the restamping contract shard-safe without any shared clock.
//
// # Metrics
//
// Shard work counters are owned by the shard goroutines; Metrics,
// StateTuples and ShardStats snapshot each shard under its lock and sum
// with joinbase.Metrics.Add, so monitoring a running sharded join is
// race-free (verified by `go test -race`, see Makefile `check`).
package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pjoin/internal/core"
	"pjoin/internal/joinbase"
	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// DefaultQueueSize is the per-shard input queue capacity when
// Config.QueueSize is zero.
const DefaultQueueSize = 1024

// Config configures a ShardedPJoin.
type Config struct {
	// Shards is the number of key-space partitions (>= 1). Shards == 1
	// is a single PJoin behind the routing/merge machinery (useful as a
	// baseline; the equivalence tests exploit it).
	Shards int
	// QueueSize is the per-shard bounded input queue capacity (default
	// DefaultQueueSize). The router blocks when a shard's queue is full,
	// which is the operator's back-pressure.
	QueueSize int
	// Join is the per-shard PJoin configuration. SpillA/SpillB must be
	// nil: every shard owns fresh spill stores. NumBuckets and
	// Thresholds (purge, memory, propagation) apply per shard. Join.Instr
	// must be nil too: shards receive handles derived from Instr.
	Join core.Config
	// SpillFactory, when non-nil, supplies each shard's spill stores:
	// it is called with (shard, side) for side 0 (A) and 1 (B) of every
	// shard. Shards must never share a store, so the factory returns a
	// fresh one per call. Nil keeps the default (per-shard MemSpill via
	// core.New). This is how cached or fault-injected spill stacks are
	// threaded under sharding.
	SpillFactory func(shard, side int) store.SpillStore
	// Instr is the sharded operator's observability handle. Tracing is
	// forwarded to the shards (each stamps its shard index); the live
	// sampler is NOT — shard goroutines must never run the aggregated
	// gauges, which take the shard locks. The router goroutine ticks the
	// sampler instead.
	Instr *obs.Instr
}

type msgKind uint8

const (
	msgItem msgKind = iota
	msgBatch
	msgIdle
	msgPull
	msgFinish
)

// message is one unit of work queued to a shard. A msgBatch carries a
// router-owned items slice (pool-recycled by the shard goroutine after
// processing); all other kinds use item.
type message struct {
	kind  msgKind
	port  int
	item  stream.Item
	items []stream.Item
	now   stream.Time
}

// shard is one key-space partition: a PJoin instance plus its queue.
type shard struct {
	pj   *core.PJoin
	in   chan message
	done chan struct{}

	// mu is held by the shard goroutine around every pj call and by
	// metric readers around every pj snapshot; it is the only
	// synchronisation of the shard's join state.
	mu sync.Mutex //pjoin:lockrank 20

	// failed is shard-goroutine-local: after an error the goroutine
	// drains its queue without processing so the router never blocks.
	failed bool

	routed    atomic.Int64 // data tuples routed here (router-side)
	highWater atomic.Int64 // max observed queue depth after a send
}

// ShardedPJoin is the hash-partitioned parallel PJoin operator. It
// implements op.Operator (two ports, like core.PJoin) and the
// executor's PropagationPuller; Process/OnIdle/Finish must be called
// from a single goroutine, exactly as for any other operator — the
// concurrency lives behind the router.
type ShardedPJoin struct {
	cfg    Config
	out    op.Emitter
	outSc  *stream.Schema
	merge  *merger
	shards []*shard
	attrs  [2]int
	instr  *obs.Instr
	// lat holds the router-level punctuation-propagation-delay histogram:
	// the join-wide delay is arrival-at-router → merge-alignment-complete,
	// one sample per forwarded punctuation (shard-level PunctDelay would
	// give N samples per punctuation and measure only shard-local delay).
	// Result/Purge latencies live in the shards; Latencies() merges them.
	lat *obs.Lat

	eos      [2]bool
	finished bool

	// shardBufs are the router's per-shard tuple accumulation buffers:
	// ProcessBatch collects each shard's run of routed tuples here and
	// flushes one msgBatch per shard instead of one channel send per
	// tuple. Buffers are only ever non-empty inside one ProcessBatch
	// call (every exit path flushes), so OnIdle / pull / Finish — which
	// enqueue directly — can never overtake a buffered tuple and break
	// the per-shard monotone timestamp contract. Router goroutine only.
	shardBufs [][]stream.Item
	batchPool sync.Pool

	errMu sync.Mutex //pjoin:lockrank leaf
	err   error
}

var (
	_ op.Operator       = (*ShardedPJoin)(nil)
	_ op.BatchProcessor = (*ShardedPJoin)(nil)
)

// New builds a ShardedPJoin with cfg.Shards independent PJoin instances
// and starts their goroutines. The shards are live from this point on;
// the operator contract (EOS on both ports, then Finish) shuts them
// down.
func New(cfg Config, out op.Emitter) (*ShardedPJoin, error) {
	if out == nil {
		return nil, fmt.Errorf("parallel: ShardedPJoin needs an output emitter")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("parallel: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Join.SpillA != nil || cfg.Join.SpillB != nil {
		return nil, fmt.Errorf("parallel: per-shard spill stores are created internally; leave SpillA/SpillB nil")
	}
	if cfg.Join.Instr != nil {
		return nil, fmt.Errorf("parallel: per-shard instrumentation is derived internally; set Config.Instr, leave Join.Instr nil")
	}
	q := cfg.QueueSize
	if q <= 0 {
		q = DefaultQueueSize
	}
	j := &ShardedPJoin{
		cfg:   cfg,
		out:   out,
		attrs: [2]int{cfg.Join.AttrA, cfg.Join.AttrB},
		instr: cfg.Instr,
		lat:   obs.NewLat(),
	}
	j.merge = &merger{out: out, n: cfg.Shards, in: cfg.Instr, lat: j.lat, pending: make(map[string]*pendingPunct)}
	shardName := cfg.Instr.Op()
	if shardName == "" {
		shardName = "pjoin"
	}
	for i := 0; i < cfg.Shards; i++ {
		shardCfg := cfg.Join
		// Tracing only: a shard goroutine running the aggregated gauges
		// (which lock every shard) would deadlock against itself.
		shardCfg.Instr = cfg.Instr.WithoutLive().Derive(shardName, i)
		if cfg.SpillFactory != nil {
			shardCfg.SpillA = cfg.SpillFactory(i, 0)
			shardCfg.SpillB = cfg.SpillFactory(i, 1)
		}
		pj, err := core.New(shardCfg, j.merge.emitter())
		if err != nil {
			// Unwind shards already started so their goroutines exit.
			for _, sh := range j.shards {
				close(sh.in)
			}
			return nil, fmt.Errorf("parallel: shard %d: %w", i, err)
		}
		sh := &shard{pj: pj, in: make(chan message, q), done: make(chan struct{})}
		j.shards = append(j.shards, sh)
		go j.runShard(sh)
	}
	j.outSc = j.shards[0].pj.OutSchema()
	j.shardBufs = make([][]stream.Item, cfg.Shards)
	j.registerGauges()
	return j, nil
}

// getBatch takes a recycled items slice from the pool (or allocates).
//
//pjoin:pool get
func (j *ShardedPJoin) getBatch() []stream.Item {
	if b, ok := j.batchPool.Get().(*[]stream.Item); ok {
		return (*b)[:0]
	}
	return make([]stream.Item, 0, 64)
}

// putBatch clears a batch (so it pins no tuples) and returns it to the
// pool. Called by shard goroutines after processing a msgBatch.
//
//pjoin:pool put
func (j *ShardedPJoin) putBatch(b []stream.Item) {
	for i := range b {
		b[i] = stream.Item{}
	}
	b = b[:0]
	j.batchPool.Put(&b)
}

// registerGauges exposes the aggregated (cross-shard) live metrics. The
// gauges snapshot shards under their locks; they run only from the
// router goroutine (Instr.Tick in Process), never from a shard.
func (j *ShardedPJoin) registerGauges() {
	lv := j.instr.Live()
	if lv == nil {
		return
	}
	name := j.instr.Op()
	if name == "" {
		name = j.Name()
	}
	lv.Register(name+".state_tuples", func() float64 { return float64(j.StateTuples()) })
	lv.Register(name+".mem_groups", func() float64 { return float64(j.MemGroups()) })
	lv.Register(name+".route_skew", func() float64 { return Skew(j.ShardStats()) })
	lv.Register(name+".pending_puncts", func() float64 { return float64(j.PendingPunctuations()) })
	lv.Register(name+".tuples_out", func() float64 { return float64(j.Metrics().TuplesOut) })
	lv.Register(name+".puncts_out", func() float64 {
		j.merge.mu.Lock()
		defer j.merge.mu.Unlock()
		return float64(j.merge.punctsOut)
	})
}

// runShard is a shard's goroutine: it applies queued work to the
// shard's PJoin under the shard lock until the queue closes.
func (j *ShardedPJoin) runShard(sh *shard) {
	defer close(sh.done)
	for msg := range sh.in {
		if sh.failed {
			if msg.kind == msgBatch {
				j.putBatch(msg.items)
			}
			continue // drain so the router never blocks on a dead shard
		}
		sh.mu.Lock()
		var err error
		switch msg.kind {
		case msgItem:
			err = sh.pj.Process(msg.port, msg.item, msg.now)
		case msgBatch:
			err = sh.pj.ProcessBatch(msg.port, msg.items, msg.now)
		case msgIdle:
			_, err = sh.pj.OnIdle(msg.now)
		case msgPull:
			err = sh.pj.RequestPropagation(msg.now)
		case msgFinish:
			err = sh.pj.Finish(msg.now)
		}
		sh.mu.Unlock()
		if msg.kind == msgBatch {
			j.putBatch(msg.items)
		}
		if err != nil {
			sh.failed = true
			j.fail(err)
		}
	}
}

func (j *ShardedPJoin) fail(err error) {
	j.errMu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.errMu.Unlock()
}

func (j *ShardedPJoin) errNow() error {
	j.errMu.Lock()
	defer j.errMu.Unlock()
	return j.err
}

// Name implements op.Operator.
func (j *ShardedPJoin) Name() string {
	return fmt.Sprintf("sharded-pjoin[%d]", len(j.shards))
}

// NumPorts implements op.Operator.
func (j *ShardedPJoin) NumPorts() int { return 2 }

// OutSchema implements op.Operator.
func (j *ShardedPJoin) OutSchema() *stream.Schema { return j.outSc }

// Shards returns the shard count.
func (j *ShardedPJoin) Shards() int { return len(j.shards) }

// send enqueues work to a shard, blocking under back-pressure, and
// tracks the queue-depth high-water mark. Only the router goroutine
// sends, so the load/store pair on highWater needs no CAS.
func (j *ShardedPJoin) send(sh *shard, m message) {
	sh.in <- m
	if d := int64(len(sh.in)); d > sh.highWater.Load() {
		sh.highWater.Store(d)
	}
}

// Process implements op.Operator: data tuples are routed to the shard
// owning their join key; punctuations and EOS are broadcast to every
// shard.
func (j *ShardedPJoin) Process(port int, it stream.Item, now stream.Time) error {
	if err := op.ValidatePort(j.Name(), port, 2); err != nil {
		return err
	}
	if j.finished {
		return fmt.Errorf("parallel: %s: Process after Finish", j.Name())
	}
	if err := j.errNow(); err != nil {
		return fmt.Errorf("parallel: %s: shard failed: %w", j.Name(), err)
	}
	// The router goroutine owns the live sampler: shard handles are
	// trace-only (see Config.Instr), so the aggregated gauges run here.
	j.instr.Tick(now)
	switch it.Kind {
	case stream.KindTuple:
		attr := j.attrs[port]
		if len(it.Tuple.Values) <= attr {
			return fmt.Errorf("parallel: %s: tuple width %d lacks join attribute %d",
				j.Name(), len(it.Tuple.Values), attr)
		}
		s := int(it.Tuple.Values[attr].Hash() % uint64(len(j.shards)))
		j.shards[s].routed.Add(1)
		j.instr.Event(obs.KindShardRoute, now, port, int64(s), 0)
		j.send(j.shards[s], message{kind: msgItem, port: port, item: it, now: now})
	case stream.KindPunct:
		// Note the arrival time under the merge key BEFORE broadcasting,
		// so the merger can measure arrival → alignment-complete delay
		// when the countdown finishes. Gated on propagation being on:
		// otherwise shards never propagate and entries would accumulate.
		inSc := j.cfg.Join.SchemaA
		if port == 1 {
			inSc = j.cfg.Join.SchemaB
		}
		if !j.cfg.Join.DisablePropagation && !it.Punct.IsEmpty() && it.Punct.Width() == inSc.Width() {
			outP, err := core.OutputPunctuation(j.cfg.Join.SchemaA, j.cfg.Join.SchemaB, port, it.Punct)
			if err != nil {
				return fmt.Errorf("parallel: %s: %w", j.Name(), err)
			}
			// One provenance trace per punctuation join-wide: the router
			// allocates it before broadcasting so every shard's lifecycle
			// spans (arrival, purges, shard-local propagation) attach to
			// the SAME trace, and the merger closes it with the terminal
			// punct_emit when alignment completes. The router-level
			// arrive span (Shard = -1, N = 0) marks trace birth.
			var trace uint64
			if j.instr.SpansEnabled() {
				trace = span.NewID()
				it.Span = trace
				j.instr.Span(span.KindPunctArrive, trace, it.Ts, port, 0, 0, 0, 0)
			}
			j.merge.notePunctArrival(outP.String(), it.Ts, trace)
		}
		for _, sh := range j.shards {
			j.send(sh, message{kind: msgItem, port: port, item: it, now: now})
		}
	case stream.KindEOS:
		if j.eos[port] {
			return fmt.Errorf("parallel: %s: duplicate EOS on port %d", j.Name(), port)
		}
		j.eos[port] = true
		for _, sh := range j.shards {
			j.send(sh, message{kind: msgItem, port: port, item: it, now: now})
		}
	default:
		return fmt.Errorf("parallel: %s: unknown item kind %v", j.Name(), it.Kind)
	}
	return nil
}

// ProcessBatch implements op.BatchProcessor for the router: one call
// routes a whole batch, accumulating each shard's run of tuples into a
// per-shard buffer and sending one msgBatch per shard instead of one
// queue operation per tuple. Punctuations and EOS are batch boundaries:
// every buffered tuple is flushed to its shard first, then the item
// goes through the per-item Process path unchanged — which preserves
// both the notePunctArrival-before-broadcast ordering the merger's
// delay accounting relies on and the per-shard FIFO of tuples before
// the punctuation. Per-tuple routing observability (routed counters,
// shard-route trace events) is identical to the per-item path.
func (j *ShardedPJoin) ProcessBatch(port int, items []stream.Item, now stream.Time) error {
	if err := op.ValidatePort(j.Name(), port, 2); err != nil {
		return err
	}
	if j.finished {
		return fmt.Errorf("parallel: %s: Process after Finish", j.Name())
	}
	if err := j.errNow(); err != nil {
		return fmt.Errorf("parallel: %s: shard failed: %w", j.Name(), err)
	}
	j.lat.RecordBatchFill(len(items))
	j.instr.Tick(now)
	attr := j.attrs[port]
	for _, it := range items {
		if it.Kind != stream.KindTuple {
			j.flushShardBufs(port)
			if err := j.Process(port, it, it.Ts); err != nil {
				return err
			}
			continue
		}
		if len(it.Tuple.Values) <= attr {
			j.flushShardBufs(port)
			return fmt.Errorf("parallel: %s: tuple width %d lacks join attribute %d",
				j.Name(), len(it.Tuple.Values), attr)
		}
		s := int(it.Tuple.Values[attr].Hash() % uint64(len(j.shards)))
		j.shards[s].routed.Add(1)
		j.instr.Event(obs.KindShardRoute, it.Ts, port, int64(s), 0)
		if j.shardBufs[s] == nil {
			j.shardBufs[s] = j.getBatch()
		}
		j.shardBufs[s] = append(j.shardBufs[s], it)
	}
	j.flushShardBufs(port)
	return nil
}

// flushShardBufs sends every non-empty per-shard buffer as one msgBatch
// (ownership passes to the shard goroutine, which recycles it).
func (j *ShardedPJoin) flushShardBufs(port int) {
	for s, buf := range j.shardBufs {
		if buf == nil {
			continue
		}
		j.shardBufs[s] = nil
		if len(buf) == 0 {
			j.putBatch(buf)
			continue
		}
		j.send(j.shards[s], message{kind: msgBatch, port: port, items: buf, now: buf[len(buf)-1].Ts})
	}
}

// OnIdle implements op.Operator: the idle signal is offered to every
// shard without blocking (a shard with queued work is not idle). Work
// triggered by it happens asynchronously, so OnIdle itself reports
// false.
func (j *ShardedPJoin) OnIdle(now stream.Time) (bool, error) {
	if j.finished {
		return false, nil
	}
	if err := j.errNow(); err != nil {
		return false, fmt.Errorf("parallel: %s: shard failed: %w", j.Name(), err)
	}
	for _, sh := range j.shards {
		select {
		case sh.in <- message{kind: msgIdle, now: now}:
		default:
		}
	}
	return false, nil
}

// RequestPropagation implements the executor's pull-mode propagation:
// the request is broadcast so every shard releases what it can, and the
// merge forwards whatever completes its countdown.
func (j *ShardedPJoin) RequestPropagation(now stream.Time) error {
	if j.finished {
		return fmt.Errorf("parallel: %s: RequestPropagation after Finish", j.Name())
	}
	if err := j.errNow(); err != nil {
		return err
	}
	for _, sh := range j.shards {
		j.send(sh, message{kind: msgPull, now: now})
	}
	return nil
}

// Finish implements op.Operator: it finishes every shard (final disk
// passes, index builds and propagation run inside the shards), waits
// for them to drain, and emits the single downstream EOS.
func (j *ShardedPJoin) Finish(now stream.Time) error {
	if j.finished {
		return fmt.Errorf("parallel: %s: double Finish", j.Name())
	}
	if !j.eos[0] || !j.eos[1] {
		return fmt.Errorf("parallel: %s: Finish before EOS on both ports", j.Name())
	}
	for _, sh := range j.shards {
		j.send(sh, message{kind: msgFinish, now: now})
		close(sh.in)
	}
	for _, sh := range j.shards {
		<-sh.done
	}
	j.finished = true
	if err := j.errNow(); err != nil {
		return fmt.Errorf("parallel: %s: %w", j.Name(), err)
	}
	j.merge.mu.Lock()
	eos, ts := j.merge.eosSeen, j.merge.maxTs
	j.merge.mu.Unlock()
	if eos != len(j.shards) {
		return fmt.Errorf("parallel: %s: %d of %d shards emitted EOS", j.Name(), eos, len(j.shards))
	}
	if now > ts {
		ts = now
	}
	if lv := j.instr.Live(); lv != nil {
		lv.Flush(ts) // final aggregated sample; all shards are drained
	}
	return j.out.Emit(stream.EOSItem(ts))
}

// Metrics returns the work counters summed across shards. PunctsIn is
// normalised back to stream-level counts (every shard sees every
// broadcast punctuation); PunctsOut is the number of punctuations that
// completed merge alignment and were forwarded downstream. While shards
// are mid-flight the snapshot is a consistent-per-shard approximation;
// after Finish it is exact.
func (j *ShardedPJoin) Metrics() joinbase.Metrics {
	var total joinbase.Metrics
	for _, sh := range j.shards {
		sh.mu.Lock()
		m := sh.pj.Metrics()
		sh.mu.Unlock()
		total.Add(m)
	}
	n := int64(len(j.shards))
	total.PunctsIn[0] /= n
	total.PunctsIn[1] /= n
	j.merge.mu.Lock()
	total.PunctsOut = j.merge.punctsOut
	j.merge.mu.Unlock()
	return total
}

// Latencies returns the join-wide latency view: Result, Purge,
// DiskChunk and DiskPass are the shard histograms merged (each result,
// purge run, disk chunk and disk pass belongs to exactly one shard, so
// the merged counts reconcile one-to-one with TuplesOut, PurgeRuns,
// DiskChunks and DiskPasses); PunctDelay is the router-level histogram — one sample per
// punctuation that completed merge alignment and was forwarded, so its
// count equals Metrics().PunctsOut exactly. Shard-local PunctDelay
// samples are intentionally excluded: they measure per-shard
// propagation, not the join-wide promise.
func (j *ShardedPJoin) Latencies() obs.LatSnapshot {
	var out obs.LatSnapshot
	for _, sh := range j.shards {
		sh.mu.Lock()
		s := sh.pj.Latencies()
		sh.mu.Unlock()
		out.Result.Merge(s.Result)
		out.Purge.Merge(s.Purge)
		out.DiskChunk.Merge(s.DiskChunk)
		out.DiskPass.Merge(s.DiskPass)
	}
	// PunctDelay and BatchFill are router-owned: the join-wide delay is
	// arrival → alignment-complete, and the join-wide batch fill is the
	// router's delivered batches (shard-local sub-batches would inflate
	// the sample count by the fan-out).
	snap := j.lat.Snapshot()
	out.PunctDelay = snap.PunctDelay
	out.BatchFill = snap.BatchFill
	return out
}

// ShardLatencies snapshots each shard's own histograms (shard-local
// PunctDelay included) for skew diagnostics.
func (j *ShardedPJoin) ShardLatencies() []obs.LatSnapshot {
	out := make([]obs.LatSnapshot, len(j.shards))
	for i, sh := range j.shards {
		sh.mu.Lock()
		out[i] = sh.pj.Latencies()
		sh.mu.Unlock()
	}
	return out
}

// StateTuples returns the total tuples held across all shard states.
func (j *ShardedPJoin) StateTuples() int {
	total := 0
	for _, sh := range j.shards {
		sh.mu.Lock()
		total += sh.pj.StateTuples()
		sh.mu.Unlock()
	}
	return total
}

// MemGroups returns the number of distinct join keys resident in memory
// across all shard states (both sides).
func (j *ShardedPJoin) MemGroups() int {
	total := 0
	for _, sh := range j.shards {
		sh.mu.Lock()
		a, b := sh.pj.StateStats()
		sh.mu.Unlock()
		total += a.MemGroups + b.MemGroups
	}
	return total
}

// ShardStats is the per-shard monitoring view of a sharded join.
type ShardStats struct {
	Shard          int
	Routed         int64            // data tuples routed to this shard
	QueueHighWater int              // max observed input queue depth
	StateTuples    int              // tuples currently in the shard's state
	Join           joinbase.Metrics // the shard's own work counters
}

// ShardStats snapshots every shard.
func (j *ShardedPJoin) ShardStats() []ShardStats {
	out := make([]ShardStats, len(j.shards))
	for i, sh := range j.shards {
		sh.mu.Lock()
		m := sh.pj.Metrics()
		st := sh.pj.StateTuples()
		sh.mu.Unlock()
		out[i] = ShardStats{
			Shard:          i,
			Routed:         sh.routed.Load(),
			QueueHighWater: int(sh.highWater.Load()),
			StateTuples:    st,
			Join:           m,
		}
	}
	return out
}

// Skew summarises routing balance: the ratio of the most-loaded shard's
// routed tuples to the mean (1.0 = perfectly balanced). Zero routed
// tuples yields 0.
func Skew(stats []ShardStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum, max int64
	for _, s := range stats {
		sum += s.Routed
		if s.Routed > max {
			max = s.Routed
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(stats))
	return float64(max) / mean
}

// merger is the fan-in stage: it serialises shard output into the
// downstream emitter and re-aligns propagated punctuations with a
// per-punctuation countdown.
type merger struct {
	out op.Emitter
	n   int
	in  *obs.Instr
	lat *obs.Lat // router-owned; PunctDelay recorded at forward

	mu        sync.Mutex //pjoin:lockrank 30
	pending   map[string]*pendingPunct
	punctsOut int64
	eosSeen   int
	maxTs     stream.Time
}

// pendingPunct is one punctuation's alignment state: how many shards
// have yet to propagate it and the latest shard emission timestamp
// (the forwarded punctuation carries the time the promise became true
// join-wide).
type pendingPunct struct {
	remaining int
	ts        stream.Time

	// arrivals is the FIFO of router arrival times noted before each
	// broadcast of this pattern (notePunctArrival). A punctuation
	// pattern can legitimately arrive more than once — a redundant
	// re-promise contained in an earlier one renders identically — and
	// alignments of the same key complete in arrival order, so each
	// completed countdown pops the front entry for its delay sample.
	arrivals []stream.Time
	// traces is the provenance-trace FIFO, popped in lockstep with
	// arrivals: the router allocates one trace per broadcast punctuation
	// (zero when spans are off) and the merger closes it with the
	// join-wide terminal punct_emit span at forward time.
	traces []uint64
}

// notePunctArrival records a broadcast punctuation's arrival time (and
// provenance trace, zero when spans are off) under its merge key,
// creating the countdown entry eagerly so the forward can measure
// arrival → alignment-complete delay.
func (m *merger) notePunctArrival(key string, ts stream.Time, trace uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pp := m.pending[key]
	if pp == nil {
		pp = &pendingPunct{remaining: m.n}
		m.pending[key] = pp
	}
	pp.arrivals = append(pp.arrivals, ts)
	pp.traces = append(pp.traces, trace)
}

// emitter returns the op.Emitter handed to one shard's PJoin. All
// shards' emitters share the merger; calls are serialised by merge.mu.
func (m *merger) emitter() op.Emitter {
	return op.EmitterFunc(func(it stream.Item) error {
		switch it.Kind {
		case stream.KindTuple:
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.out.Emit(it)
		case stream.KindPunct:
			m.mu.Lock()
			defer m.mu.Unlock()
			key := it.Punct.String()
			pp := m.pending[key]
			if pp == nil {
				pp = &pendingPunct{remaining: m.n}
				m.pending[key] = pp
			}
			pp.remaining--
			if it.Ts > pp.ts {
				pp.ts = it.Ts
			}
			if pp.remaining > 0 {
				return nil // some shard may still produce matching results
			}
			fwdTs := pp.ts
			m.punctsOut++
			var trace uint64
			arriveTs := fwdTs
			if len(pp.arrivals) > 0 {
				arriveTs = pp.arrivals[0]
				m.lat.RecordPunctDelay(fwdTs, arriveTs)
				pp.arrivals = pp.arrivals[1:]
			}
			if len(pp.traces) > 0 {
				trace = pp.traces[0]
				pp.traces = pp.traces[1:]
			}
			if len(pp.arrivals) > 0 {
				// Another alignment of the same pattern is already in
				// flight (a duplicate arrived before the first completed):
				// rearm the countdown instead of deleting, or the next
				// shard emission would recreate the entry without its
				// noted arrival time.
				pp.remaining = m.n
				pp.ts = 0
			} else {
				delete(m.pending, key)
			}
			m.in.Event(obs.KindShardMerge, fwdTs, -1, int64(m.n), 0)
			outIt := stream.PunctItem(it.Punct, fwdTs)
			if trace != 0 {
				// The join-wide terminal span (Shard = -1): the shards'
				// own punct_emit spans carry shard >= 0 and count shard
				// alignments, not downstream punctuations.
				outIt.Span = trace
				m.in.Span(span.KindPunctEmit, trace, fwdTs, -1, int64(m.n), 0, 0, int64(fwdTs)-int64(arriveTs))
			}
			return m.out.Emit(outIt)
		case stream.KindEOS:
			// Shard EOS is bookkeeping only; ShardedPJoin.Finish emits
			// the single downstream EOS after all shards drained.
			m.mu.Lock()
			m.eosSeen++
			if it.Ts > m.maxTs {
				m.maxTs = it.Ts
			}
			m.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("parallel: merge: unknown item kind %v", it.Kind)
		}
	})
}

// PendingPunctuations returns how many punctuations are currently held
// by the merge waiting for stragglers (propagated by some but not all
// shards) — a liveness metric for the alignment invariant.
func (j *ShardedPJoin) PendingPunctuations() int {
	j.merge.mu.Lock()
	defer j.merge.mu.Unlock()
	return len(j.merge.pending)
}
