package parallel

import (
	"fmt"
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/stream"
)

// TestShardedChunkedMatchesSingleBlocking is the sharding face of the
// incremental-disk-join equivalence: a sharded join whose shards run
// chunked background disk passes must emit exactly the output multiset
// of a single-instance blocking PJoin. The spilling configuration keeps
// every shard's disk task routinely in flight while the router
// interleaves tuples and punctuations, and the tiny budget splits each
// pass into many steps.
//
// RetainPropagated is set for the same reason the batched variant of
// TestShardedMatchesSingleProperty sets it (see the package doc), plus
// a chunked-specific one: without retention, the punctuation RELEASE
// schedule feeds back into pid assignment (a removed entry can no
// longer index late-read disk tuples), so two correct schedules can
// propagate slightly different punctuation sets. With retention the
// assignment is schedule-independent and the comparison is exact.
func TestShardedChunkedMatchesSingleBlocking(t *testing.T) {
	gc := gen.Config{
		MaxTuples: 1200, Duration: 1 << 62, WindowKeys: 16,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 30},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 30},
	}
	for _, disableIndex := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("index=%v/seed%d", !disableIndex, seed), func(t *testing.T) {
				gc := gc
				gc.Seed = seed
				arrs, err := gen.Synthetic(gc)
				if err != nil {
					t.Fatal(err)
				}
				cfg := baseConfig()
				cfg.Thresholds.MemoryBytes = 2 << 10 // force relocation even at 4 shards
				cfg.Thresholds.DiskJoinIdle = 1
				cfg.RetainPropagated = true
				cfg.DisableStateIndex = disableIndex
				want := runSingle(t, cfg, arrs)

				chunked := cfg
				chunked.DiskChunkBytes = 512
				for _, n := range []int{1, 2, 4} {
					got, j := runSharded(t, chunked, n, arrs)
					if d := diffMultisets(want.tuples, got.tuples); d != "" {
						t.Errorf("shards=%d: tuple multiset differs: %s", n, d)
					}
					if d := diffMultisets(want.puncts, got.puncts); d != "" {
						t.Errorf("shards=%d: punctuation multiset differs: %s", n, d)
					}
					m := j.Metrics()
					if m.Relocations > 0 && m.DiskChunks == 0 {
						t.Errorf("shards=%d: relocating chunked shards executed no chunks", n)
					}
					// The merged latency view must carry the shard chunk and
					// pass histograms one-to-one with the counters.
					lat := j.Latencies()
					if lat.DiskChunk.Count != m.DiskChunks {
						t.Errorf("shards=%d: merged DiskChunk samples %d != DiskChunks %d",
							n, lat.DiskChunk.Count, m.DiskChunks)
					}
					if lat.DiskPass.Count != m.DiskPasses {
						t.Errorf("shards=%d: merged DiskPass samples %d != DiskPasses %d",
							n, lat.DiskPass.Count, m.DiskPasses)
					}
				}
			})
		}
	}
}
