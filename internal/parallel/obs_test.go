package parallel

import (
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/obs"
	"pjoin/internal/stream"
)

// TestObsShardEvents checks the sharded join's trace: the router emits
// one route event per data tuple, the merger one merge event per
// forwarded punctuation, and every shard-originated event carries its
// shard index so a trace can be demultiplexed offline.
func TestObsShardEvents(t *testing.T) {
	gc := gen.Config{
		Seed: 3, MaxTuples: 600, Duration: 1 << 62, WindowKeys: 8,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
	}
	arrs, err := gen.Synthetic(gc)
	if err != nil {
		t.Fatal(err)
	}
	sum := gen.Summarize(arrs)

	const shards = 4
	rec := obs.NewRecorder()
	cfg := baseConfig()
	sink := &lockedCollector{}
	j, err := New(Config{Shards: shards, Join: cfg, Instr: obs.NewInstr(rec, nil, "sharded")}, sink)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, j, arrs)
	m := j.Metrics()

	wantTuples := int64(sum.Tuples[0] + sum.Tuples[1])
	if got := rec.Count(obs.KindShardRoute); got != wantTuples {
		t.Errorf("route events: got %d, want one per tuple (%d)", got, wantTuples)
	}
	if got := rec.Count(obs.KindShardMerge); got != m.PunctsOut {
		t.Errorf("merge events: got %d, want one per forwarded punctuation (%d)", got, m.PunctsOut)
	}
	// Route events name the target shard; every shard must have been hit
	// (8 keys over 4 shards with this seed).
	hit := map[int64]bool{}
	for _, e := range rec.Events() {
		if e.Kind == obs.KindShardRoute {
			if e.N < 0 || e.N >= shards {
				t.Fatalf("route event targets shard %d, want 0..%d", e.N, shards-1)
			}
			hit[e.N] = true
		}
	}
	if len(hit) != shards {
		t.Errorf("route events hit %d shards, want all %d", len(hit), shards)
	}
	// Shard-side events (arrivals, probes, purges...) are stamped with
	// their shard index and the derived operator name; router/merger
	// events are not shard-stamped.
	perShard := map[int32]int64{}
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindShardRoute, obs.KindShardMerge:
			if e.Shard >= 0 {
				t.Fatalf("router event %v stamped with shard %d", e.Kind, e.Shard)
			}
		case obs.KindTupleIn, obs.KindProbe, obs.KindPunctIn, obs.KindPurge, obs.KindPropagate:
			if e.Shard < 0 || e.Shard >= shards {
				t.Fatalf("shard event %v has shard %d, want 0..%d", e.Kind, e.Shard, shards-1)
			}
			perShard[e.Shard]++
		}
	}
	if len(perShard) != shards {
		t.Errorf("shard-stamped events from %d shards, want %d", len(perShard), shards)
	}
	// Per-shard tuple arrivals must sum to the stream total (each tuple
	// goes to exactly one shard).
	if got := rec.Count(obs.KindTupleIn); got != wantTuples {
		t.Errorf("shard tuple arrivals: got %d, want %d", got, wantTuples)
	}
	// Punctuations fan out to every shard.
	wantPuncts := int64(sum.Puncts[0]+sum.Puncts[1]) * shards
	if got := rec.Count(obs.KindPunctIn); got != wantPuncts {
		t.Errorf("shard punct arrivals: got %d, want %d (stream puncts x shards)", got, wantPuncts)
	}
}
