package parallel

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// lockedCollector is a goroutine-safe sink. Shard emitters call it
// under the merge mutex already, but the race detector rightly treats
// the final read from the test goroutine as a separate access.
type lockedCollector struct {
	mu    sync.Mutex
	items []stream.Item
}

func (c *lockedCollector) Emit(it stream.Item) error {
	c.mu.Lock()
	c.items = append(c.items, it)
	c.mu.Unlock()
	return nil
}

func (c *lockedCollector) snapshot() []stream.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]stream.Item, len(c.items))
	copy(out, c.items)
	return out
}

func baseConfig() core.Config {
	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	cfg.VerifyPunctuations = true
	return cfg
}

// drive feeds a schedule into any two-port operator, then EOS on both
// ports and Finish.
func drive(t *testing.T, j op.Operator, arrs []gen.Arrival) {
	t.Helper()
	var last stream.Time
	for i, a := range arrs {
		if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		last = a.Item.Ts
	}
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatalf("EOS port %d: %v", port, err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// multiset summarises collected output for equivalence comparison:
// tuples keyed by their full rendering (values + timestamp, both
// deterministic), punctuations by pattern only (propagation *time*
// legitimately differs between single and sharded execution).
type multiset struct {
	tuples map[string]int
	puncts map[string]int
	eos    int
}

func summarize(items []stream.Item) multiset {
	m := multiset{tuples: map[string]int{}, puncts: map[string]int{}}
	for _, it := range items {
		switch it.Kind {
		case stream.KindTuple:
			m.tuples[it.Tuple.String()]++
		case stream.KindPunct:
			m.puncts[it.Punct.String()]++
		case stream.KindEOS:
			m.eos++
		}
	}
	return m
}

func diffMultisets(a, b map[string]int) string {
	var d []string
	for k, n := range a {
		if b[k] != n {
			d = append(d, fmt.Sprintf("%s: %d vs %d", k, n, b[k]))
		}
	}
	for k, n := range b {
		if _, ok := a[k]; !ok {
			d = append(d, fmt.Sprintf("%s: 0 vs %d", k, n))
		}
	}
	if len(d) > 8 {
		d = append(d[:8], fmt.Sprintf("... and %d more", len(d)-8))
	}
	return strings.Join(d, "; ")
}

func runSingle(t *testing.T, cfg core.Config, arrs []gen.Arrival) multiset {
	t.Helper()
	sink := &op.Collector{}
	j, err := core.New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, j, arrs)
	return summarize(sink.Items)
}

func runSharded(t *testing.T, cfg core.Config, shards int, arrs []gen.Arrival) (multiset, *ShardedPJoin) {
	t.Helper()
	sink := &lockedCollector{}
	j, err := New(Config{Shards: shards, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, j, arrs)
	return summarize(sink.snapshot()), j
}

// TestShardedMatchesSingleProperty is the sharding equivalence
// property: over randomized workloads and configurations, the sharded
// join's output multiset (result tuples AND propagated punctuations)
// equals the single-instance PJoin's, for N in {1, 2, 4}.
func TestShardedMatchesSingleProperty(t *testing.T) {
	type variant struct {
		name   string
		mutate func(*core.Config)
		gen    gen.Config
	}
	variants := []variant{
		{
			name: "eager-symmetric",
			gen: gen.Config{
				MaxTuples: 1500, Duration: 1 << 62, WindowKeys: 12,
				A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
				B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
			},
		},
		{
			// Batched punctuations cover key RANGES that span shards, so
			// exact equivalence needs RetainPropagated (see the package
			// doc): without it, a shard that finishes its slice of a range
			// early forgets the punctuation while other slices are live.
			name: "lazy-purge-batched",
			mutate: func(c *core.Config) {
				c.Thresholds.Purge = 7
				c.Thresholds.PropagateCount = 3
				c.RetainPropagated = true
			},
			gen: gen.Config{
				MaxTuples: 1500, Duration: 1 << 62, WindowKeys: 10,
				A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 10},
				B: gen.SideSpec{TupleMean: 3 * stream.Millisecond, PunctMean: 25, Batched: true},
			},
		},
		{
			name: "spilling",
			mutate: func(c *core.Config) {
				c.Thresholds.MemoryBytes = 4 << 10 // force relocation + disk passes
				c.Thresholds.DiskJoinIdle = 1
			},
			gen: gen.Config{
				MaxTuples: 1200, Duration: 1 << 62, WindowKeys: 16,
				A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 30},
				B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 30},
			},
		},
		{
			name: "window",
			mutate: func(c *core.Config) {
				c.Window = 40 * stream.Millisecond
			},
			gen: gen.Config{
				MaxTuples: 1200, Duration: 1 << 62, WindowKeys: 12,
				A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 20},
				B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 20},
			},
		},
		{
			name: "no-propagation",
			mutate: func(c *core.Config) {
				c.DisablePropagation = true
			},
			gen: gen.Config{
				MaxTuples: 1200, Duration: 1 << 62, WindowKeys: 12,
				A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 20},
				B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 20},
			},
		},
	}

	for _, v := range variants {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", v.name, seed), func(t *testing.T) {
				gc := v.gen
				gc.Seed = seed
				arrs, err := gen.Synthetic(gc)
				if err != nil {
					t.Fatal(err)
				}
				if err := gen.Validate(arrs); err != nil {
					t.Fatal(err)
				}
				cfg := baseConfig()
				if v.mutate != nil {
					v.mutate(&cfg)
				}
				want := runSingle(t, cfg, arrs)
				for _, n := range []int{1, 2, 4} {
					got, j := runSharded(t, cfg, n, arrs)
					if d := diffMultisets(want.tuples, got.tuples); d != "" {
						t.Errorf("shards=%d: tuple multiset differs: %s", n, d)
					}
					if d := diffMultisets(want.puncts, got.puncts); d != "" {
						t.Errorf("shards=%d: punctuation multiset differs: %s", n, d)
					}
					if got.eos != 1 {
						t.Errorf("shards=%d: want exactly 1 EOS, got %d", n, got.eos)
					}
					// The routed tuple counts must add up to the input.
					stats := j.ShardStats()
					var routed int64
					for _, s := range stats {
						routed += s.Routed
					}
					sum := gen.Summarize(arrs)
					if routed != int64(sum.Tuples[0]+sum.Tuples[1]) {
						t.Errorf("shards=%d: routed %d of %d tuples", n, routed, sum.Tuples[0]+sum.Tuples[1])
					}
				}
			})
		}
	}
}

// TestPunctuationAlignment exercises the merge countdown directly: a
// punctuation is forwarded only after the LAST shard propagates it, and
// result tuples are never held behind pending punctuations.
func TestPunctuationAlignment(t *testing.T) {
	cfg := baseConfig()
	sink := &lockedCollector{}
	j, err := New(Config{Shards: 4, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}

	// Tuples for keys 0..7 on both sides; every key joins once.
	var ts stream.Time
	next := func() stream.Time { ts++; return ts }
	for k := int64(0); k < 8; k++ {
		ta := stream.MustTuple(gen.SchemaA, next(), value.Int(k), value.Str("a"))
		if err := j.Process(0, stream.TupleItem(ta), ta.Ts); err != nil {
			t.Fatal(err)
		}
		tb := stream.MustTuple(gen.SchemaB, next(), value.Int(k), value.Str("b"))
		if err := j.Process(1, stream.TupleItem(tb), tb.Ts); err != nil {
			t.Fatal(err)
		}
	}
	// Punctuate key 3 on side A only: side A's state still holds the
	// tuple for key 3 (count > 0 in the owning shard), so nothing may be
	// forwarded; the other shards have already promised.
	pa := punct.MustKeyOnly(gen.SchemaA.Width(), gen.KeyAttr, punct.Const(value.Int(3)))
	if err := j.Process(0, stream.PunctItem(pa, next()), ts); err != nil {
		t.Fatal(err)
	}
	// Punctuating key 3 on side B purges A's key-3 tuple (cross-stream
	// purge), driving the owning shard's count to zero so both
	// punctuations complete their countdown by Finish.
	pb := punct.MustKeyOnly(gen.SchemaB.Width(), gen.KeyAttr, punct.Const(value.Int(3)))
	if err := j.Process(1, stream.PunctItem(pb, next()), ts); err != nil {
		t.Fatal(err)
	}
	for port := 0; port < 2; port++ {
		if err := j.Process(port, stream.EOSItem(next()), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(next()); err != nil {
		t.Fatal(err)
	}

	m := summarize(sink.snapshot())
	if len(m.tuples) != 8 {
		t.Errorf("want 8 distinct join results, got %d", len(m.tuples))
	}
	if len(m.puncts) != 2 {
		t.Errorf("want both punctuations forwarded after alignment, got %v", m.puncts)
	}
	if got := j.PendingPunctuations(); got != 0 {
		t.Errorf("want no pending punctuations after Finish, got %d", got)
	}
}

// TestPunctuationHeldWhileShardOwes verifies the alignment invariant
// mid-stream: while the owning shard still holds a matching tuple, the
// punctuation must NOT be forwarded even though the other shards have
// propagated it.
func TestPunctuationHeldWhileShardOwes(t *testing.T) {
	cfg := baseConfig()
	sink := &lockedCollector{}
	j, err := New(Config{Shards: 4, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	var ts stream.Time
	next := func() stream.Time { ts++; return ts }

	// One A-side tuple for key 5; no B punctuation ever purges it.
	ta := stream.MustTuple(gen.SchemaA, next(), value.Int(5), value.Str("a"))
	if err := j.Process(0, stream.TupleItem(ta), ta.Ts); err != nil {
		t.Fatal(err)
	}
	pa := punct.MustKeyOnly(gen.SchemaA.Width(), gen.KeyAttr, punct.Const(value.Int(5)))
	if err := j.Process(0, stream.PunctItem(pa, next()), ts); err != nil {
		t.Fatal(err)
	}
	for port := 0; port < 2; port++ {
		if err := j.Process(port, stream.EOSItem(next()), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(next()); err != nil {
		t.Fatal(err)
	}
	m := summarize(sink.snapshot())
	if len(m.puncts) != 0 {
		t.Errorf("punctuation with a live matching tuple must not be forwarded, got %v", m.puncts)
	}
	if got := j.PendingPunctuations(); got != 1 {
		t.Errorf("want 1 straggler-pending punctuation, got %d", got)
	}
}

// TestRoutingDeterminism: all tuples of one key land in one shard.
func TestRoutingDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.DisablePropagation = true
	sink := &lockedCollector{}
	j, err := New(Config{Shards: 4, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	var ts stream.Time
	for i := 0; i < 100; i++ {
		ts++
		tp := stream.MustTuple(gen.SchemaA, ts, value.Int(7), value.Str("x"))
		if err := j.Process(0, stream.TupleItem(tp), ts); err != nil {
			t.Fatal(err)
		}
	}
	for port := 0; port < 2; port++ {
		ts++
		if err := j.Process(port, stream.EOSItem(ts), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(ts + 1); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, s := range j.ShardStats() {
		if s.Routed > 0 {
			nonEmpty++
			if s.Routed != 100 {
				t.Errorf("shard %d got %d of 100 same-key tuples", s.Shard, s.Routed)
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("a single key must map to a single shard, got %d shards", nonEmpty)
	}
}

// TestMetricsAggregation: the sharded Metrics view sums shard work and
// normalises broadcast punctuation counts back to stream level.
func TestMetricsAggregation(t *testing.T) {
	gc := gen.Config{
		Seed: 2, MaxTuples: 800, Duration: 1 << 62, WindowKeys: 8,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
	}
	arrs, err := gen.Synthetic(gc)
	if err != nil {
		t.Fatal(err)
	}
	sum := gen.Summarize(arrs)

	cfg := baseConfig()
	got, j := runSharded(t, cfg, 4, arrs)
	m := j.Metrics()
	if m.TuplesIn[0] != int64(sum.Tuples[0]) || m.TuplesIn[1] != int64(sum.Tuples[1]) {
		t.Errorf("TuplesIn = %v, want %v", m.TuplesIn, sum.Tuples)
	}
	if m.PunctsIn[0] != int64(sum.Puncts[0]) || m.PunctsIn[1] != int64(sum.Puncts[1]) {
		t.Errorf("PunctsIn = %v, want %v (stream-level, not per-shard)", m.PunctsIn, sum.Puncts)
	}
	var wantOut int64
	for _, n := range got.tuples {
		wantOut += int64(n)
	}
	if m.TuplesOut != wantOut {
		t.Errorf("TuplesOut = %d, want %d", m.TuplesOut, wantOut)
	}
	var wantPuncts int64
	for _, n := range got.puncts {
		wantPuncts += int64(n)
	}
	if m.PunctsOut != wantPuncts {
		t.Errorf("PunctsOut = %d, want %d forwarded punctuations", m.PunctsOut, wantPuncts)
	}
	if j.StateTuples() != 0 {
		// Fully punctuated symmetric workload drains to ~0; at minimum
		// the call must be race-free, but with eager purge and final
		// disk passes leftover state means a purge bug.
		t.Logf("residual state tuples: %d", j.StateTuples())
	}
}

// TestShardFailurePropagates: an operator error inside a shard surfaces
// on the driver goroutine.
func TestShardFailurePropagates(t *testing.T) {
	cfg := baseConfig()
	// Keep the punctuation in the set (propagation would release and
	// remove it before the violating tuple arrives).
	cfg.DisablePropagation = true
	sink := &lockedCollector{}
	j, err := New(Config{Shards: 2, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// VerifyPunctuations: a tuple matching an earlier own-side
	// punctuation is a stream-integrity error inside the owning shard.
	p := punct.MustKeyOnly(gen.SchemaA.Width(), gen.KeyAttr, punct.Const(value.Int(1)))
	if err := j.Process(0, stream.PunctItem(p, 1), 1); err != nil {
		t.Fatal(err)
	}
	bad := stream.MustTuple(gen.SchemaA, 2, value.Int(1), value.Str("late"))
	if err := j.Process(0, stream.TupleItem(bad), 2); err != nil {
		t.Fatal(err) // queued; the failure is asynchronous
	}
	for port := 0; port < 2; port++ {
		if err := j.Process(port, stream.EOSItem(stream.Time(3+port)), stream.Time(3+port)); err != nil {
			// The router may already have observed the failure.
			return
		}
	}
	if err := j.Finish(6); err == nil {
		t.Fatal("want shard failure surfaced by Finish")
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Join: baseConfig()}, &op.Collector{}); err == nil {
		t.Error("want error for zero shards")
	}
	if _, err := New(Config{Shards: 2, Join: baseConfig()}, nil); err == nil {
		t.Error("want error for nil emitter")
	}
	cfg := baseConfig()
	cfg.SchemaB = nil
	if _, err := New(Config{Shards: 2, Join: cfg}, &op.Collector{}); err == nil {
		t.Error("want error for invalid join config")
	}
}

// TestSkew sanity-checks the skew summary.
func TestSkew(t *testing.T) {
	if s := Skew(nil); s != 0 {
		t.Errorf("Skew(nil) = %v", s)
	}
	balanced := []ShardStats{{Routed: 10}, {Routed: 10}}
	if s := Skew(balanced); s != 1 {
		t.Errorf("balanced skew = %v, want 1", s)
	}
	skewed := []ShardStats{{Routed: 30}, {Routed: 10}}
	if s := Skew(skewed); s != 1.5 {
		t.Errorf("skewed = %v, want 1.5", s)
	}
}

// TestDuplicateEOS: the router rejects protocol violations without
// involving the shards.
func TestDuplicateEOS(t *testing.T) {
	cfg := baseConfig()
	j, err := New(Config{Shards: 2, Join: cfg}, &lockedCollector{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Process(0, stream.EOSItem(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("want duplicate EOS error")
	}
	if err := j.Finish(3); err == nil {
		t.Error("want Finish-before-EOS error")
	}
	if err := j.Process(1, stream.EOSItem(3), 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(4); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(5); err == nil {
		t.Error("want double Finish error")
	}
}
