package parallel

import (
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/stream"
)

// TestShardedLatencyReconciliation is the histogram-count contract for
// the sharded join: the merged Result histogram holds one sample per
// result tuple the merger emitted, the router-level PunctDelay
// histogram one sample per merged (join-wide) punctuation, and the
// merged Purge histogram one sample per shard purge run.
func TestShardedLatencyReconciliation(t *testing.T) {
	gc := gen.Config{
		Seed: 7, MaxTuples: 1200, Duration: 1 << 62, WindowKeys: 12,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 15},
	}
	arrs, err := gen.Synthetic(gc)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(shardName(shards), func(t *testing.T) {
			sink := &lockedCollector{}
			j, err := New(Config{Shards: shards, Join: baseConfig()}, sink)
			if err != nil {
				t.Fatal(err)
			}
			drive(t, j, arrs)

			m := j.Metrics()
			lat := j.Latencies()
			if m.TuplesOut == 0 || m.PunctsOut == 0 || m.PurgeRuns == 0 {
				t.Fatalf("workload vacuous: %+v", m)
			}
			if lat.Result.Count != m.TuplesOut {
				t.Errorf("Result samples %d != TuplesOut %d", lat.Result.Count, m.TuplesOut)
			}
			if lat.PunctDelay.Count != m.PunctsOut {
				t.Errorf("PunctDelay samples %d != PunctsOut %d", lat.PunctDelay.Count, m.PunctsOut)
			}
			if lat.Purge.Count != m.PurgeRuns {
				t.Errorf("Purge samples %d != PurgeRuns %d", lat.Purge.Count, m.PurgeRuns)
			}
			sum := summarize(sink.snapshot())
			var results, puncts int64
			for _, n := range sum.tuples {
				results += int64(n)
			}
			for _, n := range sum.puncts {
				puncts += int64(n)
			}
			if lat.Result.Count != results {
				t.Errorf("Result samples %d != collected results %d", lat.Result.Count, results)
			}
			if lat.PunctDelay.Count != puncts {
				t.Errorf("PunctDelay samples %d != collected punctuations %d", lat.PunctDelay.Count, puncts)
			}

			// The merged Result/Purge view is exactly the sum of the shard
			// views; shard-local PunctDelay is excluded by design (it would
			// give one sample per shard per punctuation, measuring
			// shard-local rather than join-wide delay).
			var shardResults, shardPurges int64
			for _, s := range j.ShardLatencies() {
				shardResults += s.Result.Count
				shardPurges += s.Purge.Count
			}
			if shardResults != lat.Result.Count {
				t.Errorf("shard Result samples sum %d != merged %d", shardResults, lat.Result.Count)
			}
			if shardPurges != lat.Purge.Count {
				t.Errorf("shard Purge samples sum %d != merged %d", shardPurges, lat.Purge.Count)
			}
		})
	}
}

func shardName(n int) string {
	return map[int]string{1: "shards1", 2: "shards2", 4: "shards4"}[n]
}

// TestShardedLatencyNoPropagation: with propagation off the router
// registers nothing and the PunctDelay histogram stays empty.
func TestShardedLatencyNoPropagation(t *testing.T) {
	gc := gen.Config{
		Seed: 3, MaxTuples: 600, Duration: 1 << 62, WindowKeys: 8,
		A: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
		B: gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 12},
	}
	arrs, err := gen.Synthetic(gc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.DisablePropagation = true
	sink := &lockedCollector{}
	j, err := New(Config{Shards: 2, Join: cfg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, j, arrs)
	if n := j.Latencies().PunctDelay.Count; n != 0 {
		t.Errorf("PunctDelay samples = %d, want 0 with propagation disabled", n)
	}
	if j.PendingPunctuations() != 0 {
		t.Errorf("pending punctuation entries leaked: %d", j.PendingPunctuations())
	}
}
