package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).IntVal(); got != 42 {
		t.Errorf("Int(42).IntVal() = %d", got)
	}
	if got := Float(2.5).FloatVal(); got != 2.5 {
		t.Errorf("Float(2.5).FloatVal() = %g", got)
	}
	if got := Str("abc").StrVal(); got != "abc" {
		t.Errorf("Str(abc).StrVal() = %q", got)
	}
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Errorf("Bool round-trip broken")
	}
}

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		name string
	}{
		{Int(1), KindInt, "int"},
		{Float(1), KindFloat, "float"},
		{Str("x"), KindString, "string"},
		{Bool(true), KindBool, "bool"},
		{Value{}, KindInvalid, "invalid"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v.Kind() = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Kind().String() != c.name {
			t.Errorf("Kind.String() = %q, want %q", c.v.Kind().String(), c.name)
		}
	}
}

func TestIsValid(t *testing.T) {
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) should be valid")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("IntVal on string", func() { Str("x").IntVal() })
	mustPanic("FloatVal on int", func() { Int(1).FloatVal() })
	mustPanic("StrVal on bool", func() { Bool(true).StrVal() })
	mustPanic("BoolVal on float", func() { Float(1).BoolVal() })
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(-5), Int(5), -1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Str("ba"), Str("b"), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedKindErrors(t *testing.T) {
	pairs := [][2]Value{
		{Int(1), Float(1)},
		{Int(1), Str("1")},
		{Bool(true), Int(1)},
		{Value{}, Value{}},
	}
	for _, p := range pairs {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%v, %v): expected error", p[0], p[1])
		}
	}
}

func TestLess(t *testing.T) {
	if !Int(1).Less(Int(2)) {
		t.Error("1 < 2 expected")
	}
	if Int(2).Less(Int(1)) {
		t.Error("2 < 1 unexpected")
	}
	if Int(1).Less(Str("x")) {
		t.Error("mixed-kind Less must be false")
	}
}

func TestEqual(t *testing.T) {
	if !Int(7).Equal(Int(7)) {
		t.Error("Int(7) != Int(7)")
	}
	if Int(7).Equal(Float(7)) {
		t.Error("Int(7) == Float(7) should be false")
	}
	if !Str("").Equal(Str("")) {
		t.Error("empty strings should be equal")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(99), Int(99)},
		{Str("hello"), Str("hel" + "lo")},
		{Float(0.0), Float(math.Copysign(0, -1))}, // +0.0 vs -0.0
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v)", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	// Not a statistical test, just a smoke check: sequential ints should
	// not all collide modulo a small bucket count.
	buckets := map[uint64]int{}
	for i := int64(0); i < 1024; i++ {
		buckets[Int(i).Hash()%16]++
	}
	if len(buckets) < 8 {
		t.Errorf("hash uses only %d of 16 buckets for sequential ints", len(buckets))
	}
}

func TestHashKindSeparation(t *testing.T) {
	if Int(1).Hash() == Float(1).Hash() && Int(2).Hash() == Float(2).Hash() {
		t.Error("int and float hashes should generally differ")
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-17), Int(math.MaxInt64), Int(math.MinInt64),
		Float(3.25), Float(-0.5), Float(1e100),
		Str(""), Str("hello world"), Str("with \"quotes\" and \n newline"),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		got, err := Parse(v.String())
		if err != nil {
			t.Errorf("Parse(%s): %v", v.String(), err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, v.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "  ", "\"unterminated", "12a", "--3", "1.2.3"}
	for _, s := range bad {
		if v, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %v, expected error", s, v)
		}
	}
}

func TestParseNumberKinds(t *testing.T) {
	v, err := Parse("10")
	if err != nil || v.Kind() != KindInt {
		t.Errorf("Parse(10) = %v (%v), want int", v, err)
	}
	v, err = Parse("10.0")
	if err != nil || v.Kind() != KindFloat {
		t.Errorf("Parse(10.0) = %v (%v), want float", v, err)
	}
	v, err = Parse("1e3")
	if err != nil || v.Kind() != KindFloat {
		t.Errorf("Parse(1e3) = %v (%v), want float", v, err)
	}
}

func TestInvalidString(t *testing.T) {
	if got := (Value{}).String(); !strings.Contains(got, "invalid") {
		t.Errorf("zero Value String() = %q", got)
	}
}

func TestSucc(t *testing.T) {
	if s, ok := Int(5).Succ(); !ok || s.IntVal() != 6 {
		t.Errorf("Succ(5) = %v, %v", s, ok)
	}
	if _, ok := Int(math.MaxInt64).Succ(); ok {
		t.Error("Succ(MaxInt64) should not exist")
	}
	if s, ok := Bool(false).Succ(); !ok || !s.BoolVal() {
		t.Error("Succ(false) should be true")
	}
	if _, ok := Bool(true).Succ(); ok {
		t.Error("Succ(true) should not exist")
	}
	if _, ok := Str("a").Succ(); ok {
		t.Error("strings have no successor")
	}
	if _, ok := Float(1).Succ(); ok {
		t.Error("floats have no discrete successor")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-1), Int(math.MaxInt64),
		Float(math.Pi), Float(math.Inf(1)),
		Str(""), Str("x"), Str(strings.Repeat("long", 100)),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		enc := v.AppendBinary(nil)
		if len(enc) != v.EncodedSize() {
			t.Errorf("EncodedSize(%v) = %d, actual %d", v, v.EncodedSize(), len(enc))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Errorf("Decode(%v): %v", v, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("Decode(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if !got.Equal(v) {
			t.Errorf("binary round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeWithTrailingBytes(t *testing.T) {
	enc := Int(9).AppendBinary(nil)
	enc = append(enc, 0xAA, 0xBB)
	v, n, err := Decode(enc)
	if err != nil || n != 9 || v.IntVal() != 9 {
		t.Errorf("Decode with trailer = %v, %d, %v", v, n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindInt)},                // truncated int
		{byte(KindInt), 1, 2, 3},       // truncated int
		{byte(KindBool)},               // truncated bool
		{byte(KindBool), 2},            // bad bool payload
		{byte(KindString)},             // missing length
		{byte(KindString), 5, 'a'},     // truncated string
		{0xFF, 0, 0},                   // unknown kind
		{byte(KindInvalid), 1, 2, 3},   // invalid kind
		Str("x").AppendBinary(nil)[:2], // cut mid-string
	}
	for i, b := range bad {
		if v, _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode(% x) = %v, expected error", i, b, v)
		}
	}
}

func TestQuickBinaryRoundTripInts(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		got, n, err := Decode(v.AppendBinary(nil))
		return err == nil && n == v.EncodedSize() && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTripStrings(t *testing.T) {
	f := func(s string) bool {
		v := Str(s)
		got, n, err := Decode(v.AppendBinary(nil))
		return err == nil && n == v.EncodedSize() && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v := Str(s)
		got, err := Parse(v.String())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		ca, err1 := Int(a).Compare(Int(b))
		cb, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && ca == -cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHashConsistentWithEqual(t *testing.T) {
	f := func(a int64) bool {
		return Int(a).Hash() == Int(a).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
