package value

import (
	"encoding/binary"
	"fmt"
)

// AppendBinary appends a compact binary encoding of v to dst and returns
// the extended slice. The format is one kind byte followed by the payload:
// 8 little-endian bytes for int/float, 1 byte for bool, and a uvarint
// length-prefixed byte string for strings. Decode reverses it.
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt, KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindBool:
		dst = append(dst, byte(v.num))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	}
	return dst
}

// Decode decodes one value from the front of b, returning the value and
// the number of bytes consumed.
func Decode(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("value: decode: empty buffer")
	}
	k := Kind(b[0])
	rest := b[1:]
	switch k {
	case KindInt, KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("value: decode: truncated %s payload", k)
		}
		return Value{kind: k, num: binary.LittleEndian.Uint64(rest)}, 9, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("value: decode: truncated bool payload")
		}
		if rest[0] > 1 {
			return Value{}, 0, fmt.Errorf("value: decode: bad bool payload %d", rest[0])
		}
		return Value{kind: k, num: uint64(rest[0])}, 2, nil
	case KindString:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("value: decode: bad string length")
		}
		if uint64(len(rest)-sz) < n {
			return Value{}, 0, fmt.Errorf("value: decode: truncated string payload")
		}
		s := string(rest[sz : sz+int(n)])
		return Str(s), 1 + sz + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("value: decode: unknown kind byte %d", b[0])
	}
}

// EncodedSize returns the number of bytes AppendBinary will emit for v.
// The store uses it for memory/disk accounting without materialising the
// encoding.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindInt, KindFloat:
		return 9
	case KindBool:
		return 2
	case KindString:
		return 1 + uvarintLen(uint64(len(v.str))) + len(v.str)
	default:
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
