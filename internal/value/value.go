// Package value defines the scalar value model used for tuple attributes
// and punctuation patterns. Values are small immutable variants over the
// four kinds a punctuated stream carries in this system: 64-bit integers,
// 64-bit floats, strings, and booleans.
//
// Values of the same kind are totally ordered (booleans order false < true),
// which is what range patterns and sorted enumeration patterns rely on.
// Values of different kinds never compare equal and have no defined order;
// operations across kinds report an error instead of guessing a coercion.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindInvalid is the zero Kind and marks the
// zero Value, which is not a usable attribute value.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is an immutable scalar. The zero Value is invalid; use the
// constructors Int, Float, Str and Bool.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or 0/1 for bool
	str  string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v is a constructed value (not the zero Value).
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// IntVal returns the integer payload. It panics if v is not an int.
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: IntVal on %s value", v.kind))
	}
	return int64(v.num)
}

// FloatVal returns the float payload. It panics if v is not a float.
func (v Value) FloatVal() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: FloatVal on %s value", v.kind))
	}
	return math.Float64frombits(v.num)
}

// StrVal returns the string payload. It panics if v is not a string.
func (v Value) StrVal() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: StrVal on %s value", v.kind))
	}
	return v.str
}

// BoolVal returns the boolean payload. It panics if v is not a bool.
func (v Value) BoolVal() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: BoolVal on %s value", v.kind))
	}
	return v.num != 0
}

// Equal reports whether v and w are the same kind and payload.
//
//pjoin:hotpath
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders two values of the same kind: -1 if v < w, 0 if equal,
// +1 if v > w. It returns an error for mixed kinds or invalid values.
//
//pjoin:hotpath
func (v Value) Compare(w Value) (int, error) {
	if v.kind != w.kind {
		//pjoin:allow hotpath mixed-kind error path: never taken when both sides come from one schema-checked stream
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case KindInt:
		return cmpOrdered(int64(v.num), int64(w.num)), nil
	case KindFloat:
		return cmpOrdered(math.Float64frombits(v.num), math.Float64frombits(w.num)), nil
	case KindString:
		return strings.Compare(v.str, w.str), nil
	case KindBool:
		return cmpOrdered(v.num, w.num), nil
	default:
		//pjoin:allow hotpath invalid-value error path: unreachable for values built by the constructors
		return 0, fmt.Errorf("value: cannot compare invalid values")
	}
}

// Less reports v < w for same-kind values, and false (with no error
// surfaced) otherwise. It is a convenience for sorting homogeneous slices
// whose kind has already been validated.
//
//pjoin:hotpath
func (v Value) Less(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c < 0
}

func cmpOrdered[T int64 | uint64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash of the value, suitable for hash partitioning.
// Equal values hash equal; values of different kinds hash differently with
// high probability.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(v.kind)
	h *= prime64
	if v.kind == KindString {
		for i := 0; i < len(v.str); i++ {
			h ^= uint64(v.str[i])
			h *= prime64
		}
		return h
	}
	n := v.num
	// Normalise float payloads so +0.0 and -0.0 hash identically, matching
	// Equal-after-Compare semantics used by enumeration patterns.
	if v.kind == KindFloat && math.Float64frombits(n) == 0 {
		n = 0
	}
	for i := 0; i < 8; i++ {
		h ^= n & 0xff
		h *= prime64
		n >>= 8
	}
	return h
}

// String renders the value as it appears in punctuation syntax: integers
// and floats in decimal, strings double-quoted, booleans as true/false.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		f := math.Float64frombits(v.num)
		t := strconv.FormatFloat(f, 'g', -1, 64)
		// Keep the text unambiguously a float so Parse round-trips:
		// "-2" would re-parse as an int. Inf/NaN are already
		// unambiguous (and must not grow a ".0" suffix).
		if !math.IsInf(f, 0) && !math.IsNaN(f) && !strings.ContainsAny(t, ".eE") {
			t += ".0"
		}
		return t
	case KindString:
		return strconv.Quote(v.str)
	case KindBool:
		return strconv.FormatBool(v.num != 0)
	default:
		return "<invalid>"
	}
}

// Parse parses the textual form produced by String: a quoted string, the
// literals true/false, or a number (an int unless it contains '.', 'e',
// or 'E').
func Parse(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	if s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad string literal %s: %w", s, err)
		}
		return Str(u), nil
	}
	switch s {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	case "Inf", "+Inf", "-Inf", "NaN":
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad float literal %q: %w", s, err)
		}
		return Float(f), nil
	}
	if strings.ContainsAny(s, ".eE") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad float literal %q: %w", s, err)
		}
		return Float(f), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("value: bad int literal %q: %w", s, err)
	}
	return Int(i), nil
}

// Succ returns the smallest representable value strictly greater than v
// for discrete kinds (int, bool) and reports whether such a value exists.
// It is used to decide adjacency when merging integer range patterns.
func (v Value) Succ() (Value, bool) {
	switch v.kind {
	case KindInt:
		i := int64(v.num)
		if i == math.MaxInt64 {
			return Value{}, false
		}
		return Int(i + 1), true
	case KindBool:
		if v.num == 0 {
			return Bool(true), true
		}
		return Value{}, false
	default:
		return Value{}, false
	}
}
