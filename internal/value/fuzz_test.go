package value

import (
	"testing"
)

// FuzzParse checks that Parse never panics and that everything it
// accepts round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "0", "-17", "3.5", "1e9", `"hello"`, `"a,b"`, "true", "false",
		"NaN", "-Inf", `"unterminated`, "9999999999999999999999", "- 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(v.String())
		if err != nil {
			t.Fatalf("accepted %q -> %v, but String() %q does not re-parse: %v", s, v, v.String(), err)
		}
		// NaN is the one value that is not Equal to itself.
		if !back.Equal(v) && !(v.Kind() == KindFloat && v.FloatVal() != v.FloatVal()) {
			t.Fatalf("round trip %q -> %v -> %v", s, v, back)
		}
	})
}

// FuzzDecode checks the binary decoder never panics and that everything
// it accepts re-encodes to the bytes it consumed.
func FuzzDecode(f *testing.F) {
	for _, v := range []Value{Int(-1), Float(3.5), Str("abc"), Bool(true)} {
		f.Add(v.AppendBinary(nil))
	}
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := Decode(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// The decoder tolerates non-minimal varints, so canonical bytes
		// are not guaranteed — but the re-encoding must decode to the
		// same value.
		re := v.AppendBinary(nil)
		v2, n2, err := Decode(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encoding of %v does not decode: %v", v, err)
		}
		same := v2.Equal(v) ||
			(v.Kind() == KindFloat && v.FloatVal() != v.FloatVal() && v2.FloatVal() != v2.FloatVal())
		if !same {
			t.Fatalf("round trip %v -> %v", v, v2)
		}
	})
}
