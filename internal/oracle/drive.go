package oracle

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pjoin/internal/joinbase"
	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// lockedCollector is an op.Emitter safe for concurrent emission
// (ShardedPJoin's merger emits from shard goroutines).
type lockedCollector struct {
	mu    sync.Mutex
	items []stream.Item
}

func (c *lockedCollector) Emit(it stream.Item) error {
	c.mu.Lock()
	c.items = append(c.items, it)
	c.mu.Unlock()
	return nil
}

// Outcome is one run's audited output: the result-tuple multiset
// (keyed by full rendering — values and timestamp, both deterministic
// because a result's timestamp is the max of its constituents'), the
// propagated-punctuation multiset (keyed by pattern only — propagation
// *time* legitimately differs across schedules), emission order
// bookkeeping, and the operator's own accounting.
type Outcome struct {
	Tuples map[string]int
	Puncts map[string]int
	EOS    int

	Metrics joinbase.Metrics
	Lat     obs.LatSnapshot
	HasObs  bool // shj exposes no Metrics/Latencies

	// Fed counts what the driver actually delivered, for reconciliation
	// against the operator's Metrics.
	FedTuples [2]int64
	FedPuncts [2]int64

	Err error // first operator error (faulted runs: must be ErrInjectedFault)
}

func summarize(items []stream.Item) (tuples, puncts map[string]int, eos int) {
	tuples, puncts = map[string]int{}, map[string]int{}
	for _, it := range items {
		switch it.Kind {
		case stream.KindTuple:
			tuples[it.Tuple.String()]++
		case stream.KindPunct:
			puncts[it.Punct.String()]++
		case stream.KindEOS:
			eos++
		}
	}
	return
}

// Run drives the variant over the scenario and returns the audited
// outcome. disableFault reruns a faulted variant with injection off
// (the recovery half of the fault check).
func Run(sc *Scenario, v Variant, disableFault bool) *Outcome {
	sink := &lockedCollector{}
	j, err := build(sc, v, sink, disableFault, nil)
	if err != nil {
		return &Outcome{Err: err}
	}
	out := drive(j, sc, v)
	out.Tuples, out.Puncts, out.EOS = summarize(sink.items)
	if jj, ok := j.(joinOp); ok {
		out.Metrics = jj.Metrics()
		out.Lat = jj.Latencies()
		out.HasObs = true
	}
	return out
}

// RunOracle drives the brute-force shj join over the scenario.
func RunOracle(sc *Scenario) *Outcome {
	sink := &lockedCollector{}
	j, err := buildOracle(sink)
	if err != nil {
		return &Outcome{Err: err}
	}
	out := drive(j, sc, Variant{})
	out.Tuples, out.Puncts, out.EOS = summarize(sink.items)
	return out
}

// drive runs the shared schedule: every arrival at its own timestamp,
// deterministic OnIdle pulses every IdleEvery arrivals (so the
// reactive disk join and chunk pump run identically across variants),
// EOS appended for any port the schedule left open (the shrinker cuts
// prefixes), then Finish. All operators are held to the same contract
// (documented in internal/op): items in timestamp order, EOS once per
// port, Finish only after EOS on both ports. Variants with Batch > 1
// take the batched delivery path instead (driveBatched).
func drive(j op.Operator, sc *Scenario, v Variant) *Outcome {
	if v.Batch > 1 {
		return driveBatched(j, sc, v)
	}
	out := &Outcome{}
	var last stream.Time
	var eos [2]bool
	fail := func(err error) *Outcome { out.Err = err; return out }
	for i, a := range sc.Arrivals {
		if sc.IdleEvery > 0 && i%sc.IdleEvery == sc.IdleEvery-1 && a.Item.Ts > last+1 {
			if _, err := j.OnIdle(a.Item.Ts - 1); err != nil {
				return fail(fmt.Errorf("OnIdle before arrival %d: %w", i, err))
			}
		}
		if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
			return fail(fmt.Errorf("arrival %d (%v): %w", i, a.Item.Kind, err))
		}
		last = a.Item.Ts
		switch a.Item.Kind {
		case stream.KindTuple:
			out.FedTuples[a.Port]++
		case stream.KindPunct:
			out.FedPuncts[a.Port]++
		case stream.KindEOS:
			eos[a.Port] = true
		}
	}
	for port := 0; port < 2; port++ {
		if eos[port] {
			continue
		}
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			return fail(fmt.Errorf("EOS port %d: %w", port, err))
		}
	}
	if err := j.Finish(last + 1); err != nil {
		return fail(fmt.Errorf("Finish: %w", err))
	}
	return out
}

// driveBatched delivers the same schedule through op.ProcessAll in
// batches of up to v.Batch consecutive same-port items — the oracle's
// analogue of the executor's batched edges. Cut rules mirror exec:
// non-tuple items (punctuations, EOS) always terminate their batch, a
// port change cuts (the executor never mixes ports in one batch), a
// positive Linger bounds the virtual-time span one batch may cover
// (Linger 0 leaves the span unbounded, so size is the only cap), and
// OnIdle pulses fire only between batches, after everything earlier in
// the schedule has been delivered. op.BatchProcessor's equivalence
// contract makes this observably identical to drive(); the differential
// checks against the per-item shj oracle and the per-item reference
// punctuation multiset are the enforcement.
func driveBatched(j op.Operator, sc *Scenario, v Variant) *Outcome {
	out := &Outcome{}
	var (
		last    stream.Time
		eos     [2]bool
		buf     []stream.Item
		bufPort int
	)
	fail := func(err error) *Outcome { out.Err = err; return out }
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := op.ProcessAll(j, bufPort, buf)
		last = buf[len(buf)-1].Ts
		buf = buf[:0]
		return err
	}
	for i, a := range sc.Arrivals {
		idleDue := sc.IdleEvery > 0 && i%sc.IdleEvery == sc.IdleEvery-1
		if len(buf) > 0 && (idleDue || a.Port != bufPort ||
			(v.Linger > 0 && a.Item.Ts-buf[0].Ts > v.Linger)) {
			if err := flush(); err != nil {
				return fail(fmt.Errorf("batch before arrival %d: %w", i, err))
			}
		}
		if idleDue && a.Item.Ts > last+1 {
			if _, err := j.OnIdle(a.Item.Ts - 1); err != nil {
				return fail(fmt.Errorf("OnIdle before arrival %d: %w", i, err))
			}
		}
		if len(buf) == 0 {
			bufPort = a.Port
		}
		buf = append(buf, a.Item)
		switch a.Item.Kind {
		case stream.KindTuple:
			out.FedTuples[a.Port]++
		case stream.KindPunct:
			out.FedPuncts[a.Port]++
		case stream.KindEOS:
			eos[a.Port] = true
		}
		if a.Item.Kind != stream.KindTuple || len(buf) >= v.Batch {
			if err := flush(); err != nil {
				return fail(fmt.Errorf("batch at arrival %d (%v): %w", i, a.Item.Kind, err))
			}
		}
	}
	if err := flush(); err != nil {
		return fail(fmt.Errorf("final batch: %w", err))
	}
	for port := 0; port < 2; port++ {
		if eos[port] {
			continue
		}
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			return fail(fmt.Errorf("EOS port %d: %w", port, err))
		}
	}
	if err := j.Finish(last + 1); err != nil {
		return fail(fmt.Errorf("Finish: %w", err))
	}
	return out
}

// Divergence is one failed check from a comparison.
type Divergence struct {
	Variant Variant
	Check   string // "results", "puncts", "obs", "error", "fault"
	Detail  string
}

func (d Divergence) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Variant, d.Check, d.Detail)
}

func diffMultisets(a, b map[string]int) string {
	var keys []string
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var d []string
	for _, k := range keys {
		if a[k] != b[k] {
			d = append(d, fmt.Sprintf("%s: got %d want %d", k, a[k], b[k]))
		}
	}
	if len(d) > 8 {
		d = append(d[:8], fmt.Sprintf("... and %d more", len(d)-8))
	}
	return strings.Join(d, "; ")
}

// checkObs reconciles the operator's own accounting against the
// driver's ground truth and the latency histograms against the work
// counters. A mismatch means the observability layer is lying about
// the work done — the same class of bug as a wrong result, for anyone
// operating the system off its metrics.
func checkObs(v Variant, out *Outcome) []Divergence {
	if !out.HasObs {
		return nil
	}
	var ds []Divergence
	bad := func(f string, args ...any) {
		ds = append(ds, Divergence{Variant: v, Check: "obs", Detail: fmt.Sprintf(f, args...)})
	}
	m := out.Metrics
	for p := 0; p < 2; p++ {
		if m.TuplesIn[p] != out.FedTuples[p] {
			bad("TuplesIn[%d]=%d, driver fed %d", p, m.TuplesIn[p], out.FedTuples[p])
		}
	}
	var emitted int64
	for _, n := range out.Tuples {
		emitted += int64(n)
	}
	if m.TuplesOut != emitted {
		bad("TuplesOut=%d, sink saw %d", m.TuplesOut, emitted)
	}
	var punctsOut int64
	for _, n := range out.Puncts {
		punctsOut += int64(n)
	}
	if v.Op == "pjoin" && m.PunctsOut != punctsOut {
		bad("PunctsOut=%d, sink saw %d", m.PunctsOut, punctsOut)
	}
	// PunctsIn: the sharded router broadcasts every punctuation to all
	// shards and Metrics() normalises by /shards, so both shapes must
	// equal the fed count.
	for p := 0; p < 2; p++ {
		if v.Op == "pjoin" && m.PunctsIn[p] != out.FedPuncts[p] {
			bad("PunctsIn[%d]=%d, driver fed %d", p, m.PunctsIn[p], out.FedPuncts[p])
		}
	}
	// Histogram/counter reconciliation: every emitted result, propagated
	// punctuation, disk chunk and disk pass records exactly one sample.
	if got := out.Lat.Result.Count; got != m.TuplesOut {
		bad("Lat.Result.Count=%d, Metrics.TuplesOut=%d", got, m.TuplesOut)
	}
	if v.Op == "pjoin" {
		if got := out.Lat.PunctDelay.Count; got != m.PunctsOut {
			bad("Lat.PunctDelay.Count=%d, Metrics.PunctsOut=%d", got, m.PunctsOut)
		}
	}
	if got := out.Lat.DiskChunk.Count; got != m.DiskChunks {
		bad("Lat.DiskChunk.Count=%d, Metrics.DiskChunks=%d", got, m.DiskChunks)
	}
	if got := out.Lat.DiskPass.Count; got != m.DiskPasses {
		bad("Lat.DiskPass.Count=%d, Metrics.DiskPasses=%d", got, m.DiskPasses)
	}
	// Batched delivery records one BatchFill sample per ProcessBatch
	// call. The sharded router's Metrics sums per-shard sub-batches while
	// its BatchFill histogram counts router-level batches, so the
	// identity holds only for single-instance operators (and trivially —
	// zero on both sides — for per-item rows).
	if v.Shards <= 1 {
		if got := out.Lat.BatchFill.Count; got != m.Batches {
			bad("Lat.BatchFill.Count=%d, Metrics.Batches=%d", got, m.Batches)
		}
	}
	return ds
}
