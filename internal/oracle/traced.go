package oracle

import (
	"fmt"

	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
)

// TracedSlice is the mechanism-diverse variant slice the provenance
// reconciliation runs over: every purge mechanism (indexed and scan),
// blocking and chunked disk passes, cached spills, 2- and 4-shard
// parallel runs, batched delivery, and the XJoin baseline (pass traces
// only — XJoin has no punctuation lifecycle). Small by design: the
// full 120-row matrix is the correctness net; this slice is the
// provenance net, and each row exercises a distinct span-emission
// path.
func TracedSlice() []Variant {
	return []Variant{
		{Op: "pjoin", Index: true, Shards: 1},
		{Op: "pjoin", Index: false, Shards: 1},
		{Op: "pjoin", Index: true, Chunk: 512, Shards: 1},
		{Op: "pjoin", Index: true, Chunk: 512, Shards: 1, Cache: true},
		{Op: "pjoin", Index: true, Shards: 4},
		{Op: "pjoin", Index: true, Chunk: 512, Shards: 2},
		{Op: "pjoin", Index: true, Shards: 1, Batch: 256},
		{Op: "xjoin", Index: true, Chunk: 512, Shards: 1},
	}
}

// RunTraced is Run with a span recorder attached: the operator's
// punctuation-lifecycle, purge-attribution and disk-pass spans are
// captured in memory for reconciliation against its Metrics.
func RunTraced(sc *Scenario, v Variant) (*Outcome, *span.Recorder) {
	rec := &span.Recorder{}
	sink := &lockedCollector{}
	j, err := build(sc, v, sink, false, obs.NewInstrSpans(nil, nil, rec, v.Op))
	if err != nil {
		return &Outcome{Err: err}, rec
	}
	out := drive(j, sc, v)
	out.Tuples, out.Puncts, out.EOS = summarize(sink.items)
	if jj, ok := j.(joinOp); ok {
		out.Metrics = jj.Metrics()
		out.Lat = jj.Latencies()
		out.HasObs = true
	}
	return out, rec
}

// checkSpans reconciles a traced run's span stream against the
// operator's own accounting — the provenance analogue of checkObs. The
// identities are exact, not statistical, because punctuation and pass
// spans are never sampled:
//
//   - Σ punct_purge_mem.N + Σ punct_purge_disk.N == Metrics.Purged:
//     every purged tuple is attributed to exactly one punctuation
//     (purge-buffer parkings ride the M field and are NOT in Purged);
//   - Σ punct_drop_fly.N == Metrics.DroppedOnFly (parked drops again
//     ride M);
//   - join-wide punct_emit spans (Shard < 0: the single instance, or
//     the sharded merger's terminal span) == Metrics.PunctsOut;
//   - every punctuation trace is a closed lifecycle: it has an arrive
//     span and ends in punct_emit or punct_eos_close (no orphans, no
//     dangling lifecycles), across all shards of a trace;
//   - every disk-pass trace has matching start/io/end spans;
//   - no span is traceless (Trace == 0 means the record cannot be
//     attributed to anything — a lost lifecycle).
func checkSpans(v Variant, out *Outcome, rec *span.Recorder) []Divergence {
	var ds []Divergence
	bad := func(f string, args ...any) {
		ds = append(ds, Divergence{Variant: v, Check: "spans", Detail: fmt.Sprintf(f, args...)})
	}
	var purgeMem, purgeDisk, dropFly, emits int64
	for _, s := range rec.Spans() {
		if s.Trace == 0 {
			bad("traceless %s span (id %d)", s.Kind, s.ID)
			continue
		}
		switch s.Kind {
		case span.KindPunctPurgeMem:
			purgeMem += s.N
		case span.KindPunctPurgeDisk:
			purgeDisk += s.N
		case span.KindPunctDropFly:
			dropFly += s.N
		case span.KindPunctEmit:
			if s.Shard < 0 {
				emits++
			}
		}
	}
	m := out.Metrics
	if purgeMem+purgeDisk != m.Purged {
		bad("purge spans account %d+%d tuples, Metrics.Purged=%d", purgeMem, purgeDisk, m.Purged)
	}
	if dropFly != m.DroppedOnFly {
		bad("drop-fly spans account %d tuples, Metrics.DroppedOnFly=%d", dropFly, m.DroppedOnFly)
	}
	if v.Op == "pjoin" && emits != m.PunctsOut {
		bad("join-wide punct_emit spans=%d, Metrics.PunctsOut=%d", emits, m.PunctsOut)
	}
	for trace, ss := range rec.ByTrace() {
		var hasPunct, hasArrive, punctClosed bool
		var passStarts, passEnds, passIOs int
		for _, s := range ss {
			switch {
			case s.Kind.IsPunct():
				hasPunct = true
				if s.Kind == span.KindPunctArrive {
					hasArrive = true
				}
				if s.Kind == span.KindPunctEmit || s.Kind == span.KindPunctEOSClose {
					punctClosed = true
				}
			case s.Kind.IsPass():
				switch s.Kind {
				case span.KindPassStart:
					passStarts++
				case span.KindPassEnd:
					passEnds++
				case span.KindPassIO:
					passIOs++
				}
			}
		}
		if hasPunct && !hasArrive {
			bad("trace %d: punctuation spans without an arrive span (orphan)", trace)
		}
		if hasPunct && !punctClosed {
			bad("trace %d: punctuation lifecycle never closed (no emit/eos_close)", trace)
		}
		if passStarts > 0 || passEnds > 0 {
			if passStarts != 1 || passEnds != 1 || passIOs != 1 {
				bad("trace %d: pass trace has %d start / %d io / %d end spans, want 1/1/1",
					trace, passStarts, passIOs, passEnds)
			}
		}
	}
	return ds
}

// CheckSeedTraced runs the traced slice over one seed's scenario and
// reconciles every run's span stream. The traced counterpart of
// CheckSeed, used by the CI traced-oracle job.
func CheckSeedTraced(seed uint64) []Divergence {
	sc := FromSeed(seed)
	if err := sc.Validate(); err != nil {
		return []Divergence{{Check: "generator", Detail: err.Error()}}
	}
	var ds []Divergence
	for _, v := range TracedSlice() {
		out, rec := RunTraced(sc, v)
		if out.Err != nil {
			ds = append(ds, Divergence{Variant: v, Check: "error", Detail: out.Err.Error()})
			continue
		}
		ds = append(ds, checkSpans(v, out, rec)...)
	}
	return ds
}
