package oracle

import (
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// soakSeeds is how many seeds TestSoak checks. `make oracle` raises it
// via the ORACLE_SEEDS environment variable (200 by default there);
// plain `go test ./...` keeps a smaller always-on allotment so the
// differential harness runs on every test invocation.
func soakSeeds(t *testing.T) int {
	if s := os.Getenv("ORACLE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ORACLE_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 32
}

// TestSoak is the differential soak: seeded scenarios, every matrix
// variant, shrunk-on-failure. A failure prints the minimized replay
// spec — feed it to `pjoinbench -oracle-replay` or Spec.Replay.
func TestSoak(t *testing.T) {
	n := soakSeeds(t)
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed []string
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1)
				if seed > int64(n) {
					return
				}
				ds := CheckSeed(uint64(seed))
				if len(ds) == 0 {
					continue
				}
				spec := Shrink(uint64(seed), ds[0])
				mu.Lock()
				failed = append(failed, "replay spec: "+spec.String()+"\n"+Report(ds))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, f := range failed {
		t.Error(f)
	}
}

// TestRegressionSeeds pins the minimized replay specs of bugs the
// oracle found, so each stays fixed. Each spec must replay clean.
//
//   - seed 4 (sharded PunctDelay undercount): duplicate punctuation
//     patterns in flight through ShardedPJoin's merger shared one
//     alignment entry; completing the first deleted the entry and the
//     second forwarded untracked, so Lat.PunctDelay.Count fell short of
//     Metrics.PunctsOut. Fixed with an arrival-time FIFO per pattern.
//   - seed 42 (Finish-time purge gap): a punctuation whose matching
//     state happened to be memory-resident at Finish was never purged —
//     single-instance runs relocated the state to disk (purged by the
//     final pass) while sharded runs kept it in memory, so they
//     propagated different sets. Fixed by a final memory purge in
//     Finish (under RetainPropagated).
//
// The third bug of the burn-down — removal-on-propagation making the
// final purge schedule-dependent without RetainPropagated — is pinned
// by internal/core's TestChunkedBlockingEquivalence.
func TestRegressionSeeds(t *testing.T) {
	specs := []string{
		"seed=4 variant=pjoin/idx/shards=2 check=obs",
		"seed=4 variant=pjoin/idx/chunk=512/shards=4/cache check=obs",
		"seed=42 variant=pjoin/idx/shards=2 check=puncts",
		"seed=42 variant=pjoin/idx/shards=2 check=puncts prefix=107 " +
			"drop=0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24," +
			"25,26,27,28,29,30,31,32,33,34,35,36,37,38,66,67,68,69,70,71,84,85,87," +
			"88,89,90,91,92,93,94,95,96,97,98,103",
	}
	for _, raw := range specs {
		spec, err := ParseSpec(raw)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", raw, err)
		}
		if ds := spec.Replay(); len(ds) != 0 {
			t.Errorf("pinned spec %q regressed:\n%s", raw, Report(ds))
		}
	}
}

// TestGeneratorInvariants: every decoded scenario must satisfy its own
// invariants (honesty, nested-or-disjoint, increasing timestamps) —
// cheap to check densely since no operators run.
func TestGeneratorInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		sc := FromSeed(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(sc.Arrivals); got < 10 {
			t.Fatalf("seed %d: only %d arrivals", seed, got)
		}
	}
	// Byte-steered decoding obeys the same invariants.
	if err := FromBytes([]byte("adversarial entropy bytes \x00\xff\x80")).Validate(); err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
}

func TestMatrixShape(t *testing.T) {
	vs := Matrix()
	if len(vs) != 120 {
		t.Fatalf("matrix rows = %d, want 120", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		s := v.String()
		if seen[s] {
			t.Fatalf("duplicate matrix row %s", s)
		}
		seen[s] = true
		back, err := ParseVariant(s)
		if err != nil {
			t.Fatalf("ParseVariant(%s): %v", s, err)
		}
		if back != v {
			t.Fatalf("variant round-trip: %s -> %+v, want %+v", s, back, v)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Seed: 42, Variant: RefVariant, Check: "puncts", Prefix: -1},
		{Seed: 7, Variant: Variant{Op: "pjoin", Chunk: 512, Shards: 4, Cache: true, Fault: true},
			Check: "results", Prefix: 57, Drop: []int{3, 9, 14}},
	}
	for _, s := range specs {
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("spec round-trip: %q -> %+v, want %+v", s.String(), back, s)
		}
	}
	if _, err := ParseSpec("seed=x"); err == nil {
		t.Error("bad seed accepted")
	}
	if _, err := ParseSpec("variant=nope"); err == nil {
		t.Error("bad variant accepted")
	}
}

// TestShrinkMinimizes drives the shrinker core with a synthetic
// predicate — "the failure needs arrivals 10 and 20 both present" —
// and requires it to find exactly that minimum: prefix 21, everything
// else dropped.
func TestShrinkMinimizes(t *testing.T) {
	d := Divergence{Variant: RefVariant, Check: "results"}
	calls := 0
	spec := shrinkWith(99, d, 200, func(prefix int, drop []int) bool {
		calls++
		if prefix < 0 {
			prefix = 200
		}
		alive := func(i int) bool {
			if i >= prefix {
				return false
			}
			for _, dr := range drop {
				if dr == i {
					return false
				}
			}
			return true
		}
		return alive(10) && alive(20)
	})
	if spec.Prefix != 21 {
		t.Fatalf("shrunk prefix = %d, want 21", spec.Prefix)
	}
	if got := spec.Prefix - len(spec.Drop); got != 2 {
		t.Fatalf("kept %d arrivals, want 2 (spec %s)", got, spec)
	}
	for _, dr := range spec.Drop {
		if dr == 10 || dr == 20 {
			t.Fatalf("dropped a required arrival: %s", spec)
		}
	}
	if calls > 600 {
		t.Fatalf("shrinker used %d predicate calls for n=200", calls)
	}
	// A non-reproducing divergence comes back unshrunk with the seed pinned.
	unshrunk := shrinkWith(7, d, 50, func(int, []int) bool { return false })
	if unshrunk.Prefix != -1 || unshrunk.Drop != nil || unshrunk.Seed != 7 {
		t.Fatalf("non-reproducing shrink = %+v", unshrunk)
	}
}
