package oracle

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pjoin/internal/gen"
)

// Spec is a minimal replayable failure: the seed regenerates the full
// scenario deterministically, Prefix truncates the schedule, Drop
// removes individual arrivals (original indices), and Variant/Check
// name the matrix row and the property that diverged. Its String form
// is what CI prints and what `pjoinbench -oracle -replay` accepts:
//
//	seed=42 variant=pjoin/shards=2 check=puncts prefix=57 drop=3,9,14
type Spec struct {
	Seed    uint64
	Variant Variant
	Check   string
	Prefix  int   // number of leading arrivals kept (-1 = all)
	Drop    []int // indices within the prefix removed, ascending
}

func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d variant=%s check=%s", s.Seed, s.Variant, s.Check)
	if s.Prefix >= 0 {
		fmt.Fprintf(&b, " prefix=%d", s.Prefix)
	}
	if len(s.Drop) > 0 {
		strs := make([]string, len(s.Drop))
		for i, d := range s.Drop {
			strs[i] = strconv.Itoa(d)
		}
		fmt.Fprintf(&b, " drop=%s", strings.Join(strs, ","))
	}
	return b.String()
}

// ParseSpec is the inverse of Spec.String.
func ParseSpec(in string) (Spec, error) {
	s := Spec{Prefix: -1}
	for _, field := range strings.Fields(in) {
		k, val, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("oracle: bad spec field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "variant":
			s.Variant, err = ParseVariant(val)
		case "check":
			s.Check = val
		case "prefix":
			s.Prefix, err = strconv.Atoi(val)
		case "drop":
			for _, d := range strings.Split(val, ",") {
				n, derr := strconv.Atoi(d)
				if derr != nil {
					return s, fmt.Errorf("oracle: bad drop index %q in %q", d, in)
				}
				s.Drop = append(s.Drop, n)
			}
		default:
			return s, fmt.Errorf("oracle: unknown spec field %q", field)
		}
		if err != nil {
			return s, fmt.Errorf("oracle: bad spec field %q: %v", field, err)
		}
	}
	if s.Seed == 0 && len(s.Drop) == 0 && s.Prefix < 0 {
		return s, fmt.Errorf("oracle: empty spec %q", in)
	}
	return s, nil
}

// Scenario materialises the spec: regenerate from the seed, truncate
// to the prefix, drop the dropped indices. Dropping arrivals preserves
// every generator invariant — timestamps stay increasing and removing
// items only weakens punctuation promises, never falsifies them.
func (s Spec) Scenario() *Scenario {
	sc := FromSeed(s.Seed)
	sc.Arrivals = applyEdit(sc.Arrivals, s.Prefix, s.Drop)
	return sc
}

// Replay re-runs the spec's variant checks over its minimized
// scenario. Empty result = the failure no longer reproduces.
func (s Spec) Replay() []Divergence {
	return CheckOne(s.Scenario(), s.Variant)
}

func applyEdit(arrs []gen.Arrival, prefix int, drop []int) []gen.Arrival {
	if prefix >= 0 && prefix < len(arrs) {
		arrs = arrs[:prefix]
	}
	if len(drop) == 0 {
		return arrs
	}
	dropped := make(map[int]bool, len(drop))
	for _, d := range drop {
		dropped[d] = true
	}
	kept := make([]gen.Arrival, 0, len(arrs))
	for i, a := range arrs {
		if !dropped[i] {
			kept = append(kept, a)
		}
	}
	return kept
}

// Shrink minimizes a failing scenario to a Spec: first a binary search
// for the shortest failing arrival prefix, then greedy ddmin-style
// chunk removal (halving chunk sizes down to single items) over the
// surviving indices. The predicate is "CheckOne still reports a
// divergence with the original check kind for the original variant" —
// shrinking never trades one bug for a different-looking one.
//
// Each predicate call replays the full variant checks, so shrinking a
// scenario of n arrivals costs O(log n + n) check runs in the worst
// case; scenarios are a few hundred arrivals, so this is seconds.
func Shrink(seed uint64, d Divergence) Spec {
	n := len(FromSeed(seed).Arrivals)
	return shrinkWith(seed, d, n, func(prefix int, drop []int) bool {
		sc := FromSeed(seed)
		sc.Arrivals = applyEdit(sc.Arrivals, prefix, drop)
		for _, got := range CheckOne(sc, d.Variant) {
			if got.Check == d.Check {
				return true
			}
		}
		return false
	})
}

// shrinkWith is the predicate-generic shrinker core: n is the full
// schedule length, fails reports whether the (prefix, drop) edit still
// reproduces the divergence. Split from Shrink so the minimization
// machinery is testable against synthetic predicates.
func shrinkWith(seed uint64, d Divergence, n int, fails func(prefix int, drop []int) bool) Spec {
	spec := Spec{Seed: seed, Variant: d.Variant, Check: d.Check, Prefix: -1}
	if !fails(-1, nil) {
		// Not reproducible in isolation (e.g. flaky under sharding):
		// return the unshrunk spec so the seed is still pinned.
		return spec
	}
	// Phase 1: binary-search the smallest failing prefix. fails(p) is
	// not necessarily monotone in p, but the classic bisection still
	// converges on *a* failing prefix boundary, which is all we need.
	lo, hi := 0, n // invariant: fails(hi), !fails(lo) assumed
	if fails(0, nil) {
		hi = 0
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if fails(mid, nil) {
			hi = mid
		} else {
			lo = mid
		}
	}
	spec.Prefix = hi
	// Phase 2: ddmin over the surviving arrivals — try removing chunks,
	// halving the chunk size until single items, keeping any removal
	// that still fails.
	kept := make([]int, hi)
	for i := range kept {
		kept[i] = i
	}
	dropOf := func(keep []int) []int {
		keepSet := make(map[int]bool, len(keep))
		for _, k := range keep {
			keepSet[k] = true
		}
		var drop []int
		for i := 0; i < hi; i++ {
			if !keepSet[i] {
				drop = append(drop, i)
			}
		}
		return drop
	}
	for chunk := len(kept) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(kept); {
			end := start + chunk
			if end > len(kept) {
				end = len(kept)
			}
			candidate := append(append([]int{}, kept[:start]...), kept[end:]...)
			if len(candidate) < len(kept) && fails(spec.Prefix, dropOf(candidate)) {
				kept = candidate // removal kept the failure: retry same start
			} else {
				start = end
			}
		}
	}
	spec.Drop = dropOf(kept)
	sort.Ints(spec.Drop)
	return spec
}

// ShrinkFirst checks the seed and, if it fails, shrinks the first
// divergence. The (Spec, divergences) pair is what soak loops report.
func ShrinkFirst(seed uint64) (Spec, []Divergence) {
	ds := CheckSeed(seed)
	if len(ds) == 0 {
		return Spec{}, nil
	}
	return Shrink(seed, ds[0]), ds
}
