package oracle

import (
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestPurgePlanAdversarial property-checks punct.Set.PurgePlan against
// a brute-force model, over the same adversarial mixed pattern streams
// the oracle's generator feeds the joins: interleaved constants, enums,
// prefix ranges, wildcards, and off-attribute (non-exhaustive)
// punctuations, at every `after` watermark.
//
// The contract under test: a key value is covered by the plan (member
// of the direct list, or matched by a scan entry's pattern) exactly
// when some entry with PID > after is exhaustive on the attribute and
// its pattern matches the value. Unsound coverage purges live state
// (lost results); incomplete coverage strands purgeable tuples (the
// root of the stuck-memory bug the oracle's seed 42 exposed).
func TestPurgePlanAdversarial(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		sc := FromSeed(seed)
		for side := 0; side < 2; side++ {
			set := punct.NewKeyedSet(gen.KeyAttr, true)
			var entries []*punct.Entry
			maxKey := int64(0)
			for _, a := range sc.Arrivals {
				switch a.Item.Kind {
				case stream.KindTuple:
					if a.Port == side {
						if k := a.Item.Tuple.Values[gen.KeyAttr].IntVal(); k > maxKey {
							maxKey = k
						}
					}
				case stream.KindPunct:
					if a.Port != side {
						continue
					}
					e, err := set.Add(a.Item.Punct)
					if err != nil {
						t.Fatalf("seed %d side %d: %v", seed, side, err)
					}
					entries = append(entries, e)
				}
			}
			if len(entries) == 0 {
				continue
			}
			afters := []punct.PID{punct.NoPID, entries[0].PID,
				entries[len(entries)/2].PID, set.MaxPID()}
			for _, after := range afters {
				direct, scan := set.PurgePlan(gen.KeyAttr, after)
				inDirect := map[value.Value]bool{}
				for _, v := range direct {
					inDirect[v] = true
				}
				for k := int64(0); k <= maxKey+2; k++ {
					v := value.Int(k)
					planned := inDirect[v]
					for _, e := range scan {
						if e.P.PatternAt(gen.KeyAttr).Matches(v) {
							planned = true
							break
						}
					}
					want := false
					for _, e := range entries {
						if e.PID <= after || !exhaustiveOnKey(e.P) {
							continue
						}
						if e.P.PatternAt(gen.KeyAttr).Matches(v) {
							want = true
							break
						}
					}
					if planned != want {
						t.Fatalf("seed %d side %d after=%d key=%d: plan covers=%v, model says %v\n(direct=%d scan=%d entries=%d)",
							seed, side, after, k, planned, want, len(direct), len(scan), len(entries))
					}
				}
			}
		}
	}
}

// exhaustiveOnKey mirrors the planner's exhaustiveness rule: the
// punctuation has purge power on the key attribute only if every other
// attribute's pattern is a wildcard (a constraint elsewhere means
// matching the key does not imply matching the punctuation).
func exhaustiveOnKey(p punct.Punctuation) bool {
	for i := 0; i < p.Width(); i++ {
		if i == gen.KeyAttr {
			continue
		}
		if p.PatternAt(i).Kind() != punct.Wildcard {
			return false
		}
	}
	return true
}
