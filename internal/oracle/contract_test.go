package oracle

import (
	"strings"
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// TestOperatorLifecycleContract pins the driver contract documented on
// op.Operator: every join the oracle drives — the shj result oracle,
// single-instance PJoin, XJoin, and the sharded wrapper — must reject
// the same lifecycle violations with errors instead of corrupting
// state. One differential driver (drive) is only sound if every
// operator means the same thing by Process/EOS/Finish.
func TestOperatorLifecycleContract(t *testing.T) {
	sc := FromSeed(1)
	builders := map[string]func(out op.Emitter) (op.Operator, error){
		"shj": func(out op.Emitter) (op.Operator, error) { return buildOracle(out) },
		"pjoin": func(out op.Emitter) (op.Operator, error) {
			return build(sc, Variant{Op: "pjoin", Index: true, Shards: 1}, out, false, nil)
		},
		"xjoin": func(out op.Emitter) (op.Operator, error) {
			return build(sc, Variant{Op: "xjoin", Shards: 1}, out, false, nil)
		},
		"sharded": func(out op.Emitter) (op.Operator, error) {
			return build(sc, Variant{Op: "pjoin", Index: true, Shards: 2}, out, false, nil)
		},
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			fresh := func() op.Operator {
				j, err := mk(&lockedCollector{})
				if err != nil {
					t.Fatal(err)
				}
				return j
			}
			mustErr := func(what string, err error) {
				t.Helper()
				if err == nil {
					t.Errorf("%s: accepted, want error", what)
				}
			}
			// Finish before EOS on both ports.
			mustErr("Finish before EOS", fresh().Finish(1))
			// Duplicate EOS on a port.
			j := fresh()
			if err := j.Process(0, stream.EOSItem(1), 1); err != nil {
				t.Fatal(err)
			}
			mustErr("duplicate EOS", j.Process(0, stream.EOSItem(2), 2))
			// Finish still premature with only one port ended.
			mustErr("Finish with one EOS", j.Finish(3))
			// Clean completion, then double Finish and Process after Finish.
			sink := &lockedCollector{}
			j2, err := mk(sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.Process(0, stream.EOSItem(1), 1); err != nil {
				t.Fatal(err)
			}
			if err := j2.Process(1, stream.EOSItem(2), 2); err != nil {
				t.Fatal(err)
			}
			if err := j2.Finish(3); err != nil {
				t.Fatal(err)
			}
			var eos int
			for _, it := range sink.items {
				if it.Kind == stream.KindEOS {
					eos++
				}
			}
			if eos != 1 {
				t.Errorf("emitted %d downstream EOS, want exactly 1", eos)
			}
			mustErr("double Finish", j2.Finish(4))
			err = j2.Process(0, stream.EOSItem(5), 5)
			mustErr("Process after Finish", err)
			if err != nil && !strings.Contains(err.Error(), "Finish") {
				t.Errorf("Process-after-Finish error does not name Finish: %v", err)
			}
		})
	}
}
