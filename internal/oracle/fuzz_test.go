package oracle

import "testing"

// fuzzVariants is the diverse slice of the matrix each fuzz input is
// checked against: full-matrix checking (CheckScenario) costs ~1s per
// input, which starves the mutation engine, so the fuzz target covers
// each mechanism once — indexed and scan-fallback state, blocking and
// chunked disk passes, sharding, spill cache and fault injection — and
// the seed soak (TestSoak / make oracle) covers the cross-product.
var fuzzVariants = []Variant{
	{Op: "pjoin", Index: true, Shards: 1},
	{Op: "pjoin", Index: false, Chunk: 512, Shards: 1, Cache: true},
	{Op: "pjoin", Index: true, Chunk: 512, Shards: 2, Fault: true},
	{Op: "pjoin", Index: true, Shards: 4},
	{Op: "xjoin", Index: true, Chunk: 512},
}

// FuzzOracle feeds raw fuzz bytes through the same scenario decoder as
// the seeded soak (the bytes steer generation directly; the PRNG picks
// up where they run out) and differential-checks the decoded workload.
// Any reported divergence is a real bug, not a malformed input: the
// decoder only emits schedules that pass Scenario.Validate, and the
// target re-validates to keep the generator itself honest under
// mutation.
func FuzzOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte("range-heavy \x1b\x1b\x1b\x1b\x1b\x1b"))
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01, 0x00, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return // entropy beyond the decoder's appetite just repeats coverage
		}
		sc := FromBytes(data)
		ref, punctRef, ds := checkPrologue(sc)
		if ds != nil {
			t.Fatalf("input %x:\n%s", data, Report(ds))
		}
		for _, v := range fuzzVariants {
			if ds := checkVariant(sc, v, ref, punctRef); len(ds) != 0 {
				t.Fatalf("input %x:\n%s", data, Report(ds))
			}
		}
	})
}
