package oracle

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pjoin/internal/core"
	"pjoin/internal/event"
	"pjoin/internal/gen"
	"pjoin/internal/joinbase"
	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/parallel"
	"pjoin/internal/shj"
	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/xjoin"
)

// ErrInjectedFault is the sentinel injected by faulted variants' spill
// stores. A faulted run must either never hit it (the scenario spilled
// too little) or surface exactly it — any other error, or silent
// swallowing, is a bug in the operator's spill error handling.
var ErrInjectedFault = errors.New("oracle: injected spill fault")

// Variant is one operator configuration in the differential matrix.
type Variant struct {
	Op     string      // "pjoin" or "xjoin"
	Index  bool        // key-grouped state index on (off = scan fallback)
	Chunk  int         // DiskChunkBytes: 0 blocking, else incremental passes
	Shards int         // 1 = single instance; >1 = parallel.ShardedPJoin (pjoin only)
	Cache  bool        // wrap spills in store.CachedSpill
	Fault  bool        // wrap spills in store.NewFaultSpill(failAt = Scenario.FaultAt)
	Batch  int         // ≤1 = per-item delivery; >1 = drive via ProcessBatch, batches up to this size
	Linger stream.Time // virtual span a batch may cover (0 = unbounded); only meaningful with Batch > 1
}

// String renders the variant in the replay-spec grammar, e.g.
// "pjoin/idx/chunk=512/shards=2/cache/batch=256/linger=1000000"
// (flags omitted when off).
func (v Variant) String() string {
	parts := []string{v.Op}
	if v.Index {
		parts = append(parts, "idx")
	}
	if v.Chunk > 0 {
		parts = append(parts, "chunk="+strconv.Itoa(v.Chunk))
	}
	if v.Shards > 1 {
		parts = append(parts, "shards="+strconv.Itoa(v.Shards))
	}
	if v.Cache {
		parts = append(parts, "cache")
	}
	if v.Fault {
		parts = append(parts, "fault")
	}
	if v.Batch > 1 {
		parts = append(parts, "batch="+strconv.Itoa(v.Batch))
		if v.Linger > 0 {
			parts = append(parts, "linger="+strconv.FormatInt(int64(v.Linger), 10))
		}
	}
	return strings.Join(parts, "/")
}

// ParseVariant is the inverse of Variant.String.
func ParseVariant(s string) (Variant, error) {
	var v Variant
	parts := strings.Split(s, "/")
	if len(parts) == 0 || (parts[0] != "pjoin" && parts[0] != "xjoin") {
		return v, fmt.Errorf("oracle: bad variant %q (want pjoin/... or xjoin/...)", s)
	}
	v.Op = parts[0]
	v.Shards = 1
	for _, p := range parts[1:] {
		switch {
		case p == "idx":
			v.Index = true
		case p == "cache":
			v.Cache = true
		case p == "fault":
			v.Fault = true
		case strings.HasPrefix(p, "chunk="):
			n, err := strconv.Atoi(p[len("chunk="):])
			if err != nil || n < 0 {
				return v, fmt.Errorf("oracle: bad variant part %q in %q", p, s)
			}
			v.Chunk = n
		case strings.HasPrefix(p, "shards="):
			n, err := strconv.Atoi(p[len("shards="):])
			if err != nil || n < 1 {
				return v, fmt.Errorf("oracle: bad variant part %q in %q", p, s)
			}
			v.Shards = n
		case strings.HasPrefix(p, "batch="):
			n, err := strconv.Atoi(p[len("batch="):])
			if err != nil || n < 1 {
				return v, fmt.Errorf("oracle: bad variant part %q in %q", p, s)
			}
			v.Batch = n
		case strings.HasPrefix(p, "linger="):
			n, err := strconv.ParseInt(p[len("linger="):], 10, 64)
			if err != nil || n < 0 {
				return v, fmt.Errorf("oracle: bad variant part %q in %q", p, s)
			}
			v.Linger = stream.Time(n)
		default:
			return v, fmt.Errorf("oracle: bad variant part %q in %q", p, s)
		}
	}
	return v, nil
}

// Matrix returns the full configuration matrix the tentpole names:
// PJoin × {index on/off} × {DiskChunkBytes ∈ {0, small, large}} ×
// {1,2,4 shards} × {CachedSpill on/off} × {FaultSpill off/on}, plus
// XJoin over the same non-sharded dimensions (XJoin has no sharded
// wrapper): 72 PJoin rows + 24 XJoin rows, all driven per item. On top
// of those, batched delivery (ProcessBatch with batch ∈ {8, 256} ×
// linger ∈ {0, 1ms virtual}) over six representative configurations —
// including a sharded row (router batching), a chunked+cached row, and
// a fault row (the injected sentinel must surface identically through
// the batch path): 24 more rows, 120 total.
func Matrix() []Variant {
	var vs []Variant
	for _, index := range []bool{true, false} {
		for _, chunk := range []int{0, 512, 64 << 10} {
			for _, cache := range []bool{false, true} {
				for _, fault := range []bool{false, true} {
					for _, shards := range []int{1, 2, 4} {
						vs = append(vs, Variant{Op: "pjoin", Index: index, Chunk: chunk,
							Shards: shards, Cache: cache, Fault: fault})
					}
					vs = append(vs, Variant{Op: "xjoin", Index: index, Chunk: chunk,
						Shards: 1, Cache: cache, Fault: fault})
				}
			}
		}
	}
	reps := []Variant{
		{Op: "pjoin", Index: true, Shards: 1},
		{Op: "pjoin", Index: false, Shards: 1},
		{Op: "pjoin", Index: true, Chunk: 512, Shards: 1, Cache: true},
		{Op: "pjoin", Index: true, Shards: 2},
		{Op: "pjoin", Index: true, Shards: 1, Fault: true},
		{Op: "xjoin", Index: true, Shards: 1},
	}
	for _, batch := range []int{8, 256} {
		for _, linger := range []stream.Time{0, stream.Millisecond} {
			for _, r := range reps {
				r.Batch, r.Linger = batch, linger
				vs = append(vs, r)
			}
		}
	}
	return vs
}

// spillStack assembles one side's spill store for the variant:
// MemSpill at the bottom, fault injection above it (faults surface
// from the "device"), LRU cache on top (cache hits must not mask a
// faulted device's read errors on misses — matching production
// layering cache-over-disk).
func spillStack(sc *Scenario, v Variant) store.SpillStore {
	var s store.SpillStore = store.NewMemSpill()
	if v.Fault {
		s = store.NewFaultSpill(s, store.FaultAny, sc.FaultAt, ErrInjectedFault)
	}
	if v.Cache {
		s = store.NewCachedSpill(s, 1<<20)
	}
	return s
}

func (sc *Scenario) thresholds() event.Thresholds {
	return event.Thresholds{
		Purge:          sc.Purge,
		MemoryBytes:    sc.MemoryBytes,
		DiskJoinIdle:   sc.DiskJoinIdle,
		PropagateCount: sc.PropagateCount,
	}
}

// joinOp is the slice of the operator surface the harness drives and
// audits; core.PJoin, xjoin.XJoin and parallel.ShardedPJoin all
// implement it (shj.SHJ implements only op.Operator and is driven
// separately as the result oracle).
type joinOp interface {
	op.Operator
	Metrics() joinbase.Metrics
	Latencies() obs.LatSnapshot
}

// build constructs the variant's operator over the scenario's shared
// thresholds, emitting into out. disableFault builds the
// fault-recovery rerun: same variant, fault injection off. instr (nil
// for plain runs) threads an observability handle through — the traced
// oracle attaches a span recorder this way; sharded variants hand it
// to parallel.Config so shards derive their own handles.
func build(sc *Scenario, v Variant, out op.Emitter, disableFault bool, instr *obs.Instr) (op.Operator, error) {
	fv := v
	if disableFault {
		fv.Fault = false
	}
	switch v.Op {
	case "pjoin":
		cfg := core.Config{
			SchemaA:    gen.SchemaA,
			SchemaB:    gen.SchemaB,
			AttrA:      gen.KeyAttr,
			AttrB:      gen.KeyAttr,
			NumBuckets: sc.NumBuckets,
			Thresholds: sc.thresholds(),
			EagerIndex: sc.EagerIndex,

			DiskChunkBytes:    fv.Chunk,
			DisableStateIndex: !fv.Index,

			// The cross-variant punctuation comparison needs the exact
			// propagation multiset to be schedule-independent: without
			// retention, the release schedule feeds back into pid
			// assignment and correct chunked/sharded runs can propagate
			// different (still sound) sets.
			RetainPropagated:   true,
			VerifyPunctuations: true,
		}
		if fv.Shards > 1 {
			pcfg := parallel.Config{Shards: fv.Shards, Join: cfg, Instr: instr}
			if fv.Cache || fv.Fault {
				pcfg.SpillFactory = func(int, int) store.SpillStore { return spillStack(sc, fv) }
			}
			return parallel.New(pcfg, out)
		}
		cfg.Instr = instr
		cfg.SpillA = spillStack(sc, fv)
		cfg.SpillB = spillStack(sc, fv)
		return core.New(cfg, out)
	case "xjoin":
		cfg := xjoin.Config{
			SchemaA:           gen.SchemaA,
			SchemaB:           gen.SchemaB,
			AttrA:             gen.KeyAttr,
			AttrB:             gen.KeyAttr,
			NumBuckets:        sc.NumBuckets,
			MemoryBytes:       sc.MemoryBytes,
			DiskJoinIdle:      sc.DiskJoinIdle,
			DiskChunkBytes:    fv.Chunk,
			DisableStateIndex: !fv.Index,
			Instr:             instr,
			SpillA:            spillStack(sc, fv),
			SpillB:            spillStack(sc, fv),
		}
		return xjoin.New(cfg, out)
	default:
		return nil, fmt.Errorf("oracle: unknown variant op %q", v.Op)
	}
}

// buildOracle constructs the brute-force shj result oracle.
func buildOracle(out op.Emitter) (op.Operator, error) {
	return shj.New(gen.SchemaA, gen.SchemaB, gen.KeyAttr, gen.KeyAttr, out)
}
