package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pjoin/internal/obs/span"
)

// TestTracedOracle is the provenance soak: seeded scenarios through the
// traced slice (blocking/chunked disk, scan/indexed purge, cached
// spills, 2/4 shards, batched delivery), every run's span stream
// reconciled against the operator's own accounting by checkSpans —
// purge attribution sums exactly to Metrics.Purged, drop-on-the-fly to
// DroppedOnFly, join-wide emits to PunctsOut, and every punctuation
// lifecycle closes with no orphans.
func TestTracedOracle(t *testing.T) {
	n := soakSeeds(t)
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed []string
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1)
				if seed > int64(n) {
					return
				}
				ds := CheckSeedTraced(uint64(seed))
				if len(ds) == 0 {
					continue
				}
				mu.Lock()
				failed = append(failed, fmt.Sprintf("seed %d:\n%s", seed, Report(ds)))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, f := range failed {
		t.Error(f)
	}
}

// TestTracedRunEmitsLifecycles sanity-pins the traced runner itself on
// one seed: a run with punctuations must actually produce punctuation
// lifecycles (a reconciliation that trivially passes on zero spans
// would be vacuous), and sharded runs must carry shard-local spans of
// one trace from more than one place.
func TestTracedRunEmitsLifecycles(t *testing.T) {
	sc := FromSeed(1)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	out, rec := RunTraced(sc, Variant{Op: "pjoin", Index: true, Shards: 1})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.FedPuncts[0]+out.FedPuncts[1] == 0 {
		t.Skip("seed 1 generated no punctuations; lifecycle pin is vacuous")
	}
	counts := map[span.Kind]int{}
	for _, s := range rec.Spans() {
		counts[s.Kind]++
	}
	if counts[span.KindPunctArrive] == 0 {
		t.Fatal("no punct_arrive spans despite punctuations being fed")
	}
	if counts[span.KindPunctEmit]+counts[span.KindPunctEOSClose] == 0 {
		t.Fatal("no terminal punctuation spans")
	}
	if got := int64(counts[span.KindPunctArrive]); got != out.FedPuncts[0]+out.FedPuncts[1] {
		t.Fatalf("punct_arrive spans=%d, driver fed %d punctuations",
			got, out.FedPuncts[0]+out.FedPuncts[1])
	}

	// Sharded: the router's trace groups spans from router AND shards.
	out4, rec4 := RunTraced(sc, Variant{Op: "pjoin", Index: true, Shards: 4})
	if out4.Err != nil {
		t.Fatal(out4.Err)
	}
	multi := false
	for _, ss := range rec4.ByTrace() {
		shards := map[int32]bool{}
		punct := false
		for _, s := range ss {
			if s.Kind.IsPunct() {
				punct = true
				shards[s.Shard] = true
			}
		}
		if punct && len(shards) > 1 {
			multi = true
			break
		}
	}
	if !multi {
		t.Fatal("no sharded punctuation trace spans more than one emitter (router trace not shared with shards)")
	}
}
