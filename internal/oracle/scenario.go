// Package oracle is the randomized differential correctness harness:
// it generates seeded adversarial workloads (skewed keys, mixed
// constant/range/enum/wildcard punctuation patterns, bursty
// interleavings, early end-of-stream) and drives every operator
// configuration — PJoin and XJoin, index on/off, blocking and chunked
// disk passes, 1..N shards, cached and fault-injected spill stores —
// over the same schedule, comparing each against the brute-force
// symmetric hash join (internal/shj, the exact equi-join oracle) and
// the PJoin variants against each other.
//
// The paper's correctness claims are checked as machine-verifiable
// invariants on every run:
//
//   - exact results: each variant's result-tuple multiset (values and
//     timestamps) is bit-identical to the shj oracle's;
//   - exactly-once emission: multiset equality catches both lost and
//     duplicated results, the classic failure modes of disk-pass
//     duplicate avoidance;
//   - safe purging and propagation: every PJoin variant propagates the
//     same punctuation multiset as the reference variant, so a
//     configuration that purges too eagerly (losing results) or
//     propagates too early (emitting an unsafe promise) diverges;
//   - truthful observability: work counters and latency histograms
//     reconcile against the driver's own accounting (see checkObs).
//
// Any divergence is shrunk to a minimal replayable spec (see shrink.go)
// that pins the bug as a regression seed.
package oracle

import (
	"fmt"

	"pjoin/internal/gen"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

// Scenario is one fully decoded workload plus the operator thresholds
// shared by every variant run over it. Everything is derived
// deterministically from Seed (or from raw fuzz bytes — see
// FromBytes), so a scenario is replayable from its seed alone.
type Scenario struct {
	Seed uint64

	// Arrivals is the merged two-port schedule, strictly increasing in
	// Item.Ts, including the per-port EOS items at their scheduled
	// positions (early EOS on one port while the other keeps flowing is
	// a generated case). The shrinker may remove any non-EOS item.
	Arrivals []gen.Arrival

	// Shared operator thresholds (identical across variants so outputs
	// are comparable).
	NumBuckets     int
	Purge          int
	PropagateCount int
	MemoryBytes    int64
	DiskJoinIdle   stream.Time
	EagerIndex     bool

	// IdleEvery is the driver's OnIdle cadence in arrivals (0 = never).
	IdleEvery int

	// FaultAt is the 1-based spill operation index at which faulted
	// variants inject an I/O error.
	FaultAt int64
}

// entropy is the scenario decoder's randomness source: it first
// consumes raw bytes (the fuzz engine's mutations steer generation
// directly), then falls back to a PRNG seeded from the same data so
// short inputs still decode to full scenarios. Seeded mode is the
// byte-free special case, making `-oracle` soak runs and `go test
// -fuzz` share one decoder.
type entropy struct {
	data []byte
	rng  *vtime.RNG
}

func newEntropy(seed uint64, data []byte) *entropy {
	for _, b := range data { // fold the bytes into the PRNG fallback seed
		seed = seed*0x100000001b3 ^ uint64(b)
	}
	return &entropy{data: data, rng: vtime.NewRNG(seed ^ 0x9E3779B97F4A7C15)}
}

func (e *entropy) byte() uint64 {
	if len(e.data) > 0 {
		b := e.data[0]
		e.data = e.data[1:]
		return uint64(b)
	}
	return e.rng.Uint64() & 0xFF
}

// intn returns a draw in [0, n).
func (e *entropy) intn(n int) int {
	if n <= 1 {
		return 0
	}
	// Two bytes of entropy bound the draw; n is always small here.
	return int((e.byte()<<8 | e.byte()) % uint64(n))
}

func (e *entropy) bool(percent int) bool { return e.intn(100) < percent }

// FromSeed decodes the scenario identified by seed.
func FromSeed(seed uint64) *Scenario { return decode(seed, nil) }

// FromBytes decodes a scenario from raw fuzz input. The same decoder
// as FromSeed, with the bytes consumed as the leading entropy.
func FromBytes(data []byte) *Scenario { return decode(1, data) }

// decode derives every scenario parameter and the full schedule from
// the entropy stream.
func decode(seed uint64, data []byte) *Scenario {
	e := newEntropy(seed, data)
	sc := &Scenario{
		Seed:           seed,
		NumBuckets:     []int{4, 8, 16, 64}[e.intn(4)],
		Purge:          []int{1, 1, 2, 5, 16}[e.intn(5)],
		PropagateCount: 1,
		IdleEvery:      []int{0, 16, 48, 128}[e.intn(4)],
		EagerIndex:     e.bool(30),
		FaultAt:        int64(1 + e.intn(48)),
	}
	// Most scenarios force relocation so the disk join, spill cache and
	// fault injection paths actually run.
	switch e.intn(4) {
	case 0:
		sc.MemoryBytes = 0 // memory-only: disk machinery must stay inert
	case 1:
		sc.MemoryBytes = 1 << 10
	case 2:
		sc.MemoryBytes = 2 << 10
	default:
		sc.MemoryBytes = 8 << 10
	}
	if sc.MemoryBytes > 0 {
		sc.DiskJoinIdle = 1 // any idle pulse activates the reactive pass
	}
	g := &generator{e: e, sc: sc}
	g.run()
	return sc
}

// generator holds the workload-construction state: the global key
// population, each side's open (not yet punctuated) keys, and the
// bookkeeping that keeps generated punctuation sets inside the paper's
// nested-or-disjoint assumption (§2.2) while still mixing constant,
// range, enumeration and wildcard patterns adversarially.
type generator struct {
	e  *entropy
	sc *Scenario

	nextKey int64
	lastTs  stream.Time
	seq     [2]int

	// Per side: open keys (emittable), the prefix-range frontier (all
	// keys <= frontier are closed by a range punctuation), spans of
	// keys closed by enum punctuations (a later range must not cut
	// through one), and whether a wildcard punctuation closed the side.
	open     [2][]int64
	frontier [2]int64
	spans    [2][][2]int64
	closed   [2]bool // wildcard-punctuated: no tuples may follow
	eosSent  [2]bool
}

// stamp returns the next strictly increasing timestamp.
func (g *generator) stamp() stream.Time {
	g.lastTs += stream.Time(1 + g.e.intn(2000))
	return g.lastTs
}

func (g *generator) openKey() {
	for s := 0; s < 2; s++ {
		if !g.closed[s] {
			g.open[s] = append(g.open[s], g.nextKey)
		}
	}
	g.nextKey++
}

// pickKey draws an open key for side s with a skew toward the oldest
// keys (Zipf-ish: repeated halving), reproducing hot-key pile-ups.
func (g *generator) pickKey(s int) int64 {
	n := len(g.open[s])
	idx := g.e.intn(n)
	for hops := g.e.intn(3); hops > 0 && idx > 0; hops-- {
		idx /= 2
	}
	return g.open[s][idx]
}

func (g *generator) schema(s int) *stream.Schema {
	if s == 0 {
		return gen.SchemaA
	}
	return gen.SchemaB
}

func (g *generator) emit(port int, it stream.Item) {
	g.sc.Arrivals = append(g.sc.Arrivals, gen.Arrival{Port: port, Item: it})
}

func (g *generator) emitTuple(s int) {
	for len(g.open[s]) == 0 {
		g.openKey()
	}
	key := g.pickKey(s)
	sch := g.schema(s)
	tp := stream.MustTuple(sch, g.stamp(),
		value.Int(key), value.Str(fmt.Sprintf("%s%d", sch.Name(), g.seq[s])))
	g.seq[s]++
	g.emit(s, stream.TupleItem(tp))
}

// closeKeyAt removes key k from side s's open set.
func (g *generator) closeKeyAt(s int, k int64) {
	for i, o := range g.open[s] {
		if o == k {
			g.open[s] = append(g.open[s][:i], g.open[s][i+1:]...)
			return
		}
	}
}

// emitPunct generates one punctuation on side s, choosing the pattern
// shape adversarially while honouring honesty (the side never emits a
// tuple matching an earlier own-side punctuation) and §2.2's
// nested-or-disjoint assumption on the join attribute:
//
//   - constants and enums close open keys individually (pairwise
//     disjoint with everything else still open);
//   - ranges are prefixes [0, hi] — any two prefixes nest, a prefix
//     contains every earlier constant/enum below it and is disjoint
//     from everything above; hi is bumped past any enum span it would
//     otherwise cut through;
//   - wildcard closes the whole side (contains everything; the side
//     then stops emitting tuples);
//   - off-attribute punctuations constrain only the payload with a
//     value no tuple ever carries — they exercise non-exhaustive set
//     entries (no purge power, propagate on count zero).
func (g *generator) emitPunct(s int) {
	width := g.schema(s).Width()
	switch pick := g.e.intn(100); {
	case g.closed[s] || pick < 4: // wildcard: close the whole side
		if !g.closed[s] {
			g.closed[s] = true
			g.open[s] = nil
			g.emit(s, stream.PunctItem(punct.MustKeyOnly(width, gen.KeyAttr, punct.Star()), g.stamp()))
		}
	case pick < 10: // off-attribute: payload-only promise, never matched
		p := punct.MustKeyOnly(width, 1, punct.Const(value.Str(fmt.Sprintf("#nohit%d", g.e.intn(8)))))
		g.emit(s, stream.PunctItem(p, g.stamp()))
	case pick < 28 && g.frontier[s] < g.nextKey-1: // prefix range [0, hi]
		hi := g.frontier[s] + 1 + int64(g.e.intn(int(g.nextKey-1-g.frontier[s])))
		// Never cut through an enum-closed span: partial overlap with a
		// multi-member enum would violate nested-or-disjoint.
		for changed := true; changed; {
			changed = false
			for _, sp := range g.spans[s] {
				if sp[0] <= hi && hi < sp[1] {
					hi = sp[1]
					changed = true
				}
			}
		}
		pat := punct.MustRange(value.Int(0), value.Int(hi))
		g.frontier[s] = hi
		kept := g.open[s][:0]
		for _, k := range g.open[s] {
			if k > hi {
				kept = append(kept, k)
			}
		}
		g.open[s] = kept
		g.emit(s, stream.PunctItem(punct.MustKeyOnly(width, gen.KeyAttr, pat), g.stamp()))
	case pick < 45 && len(g.open[s]) >= 2: // enum over 2-4 open keys
		n := 2 + g.e.intn(3)
		if n > len(g.open[s]) {
			n = len(g.open[s])
		}
		members := make([]value.Value, 0, n)
		lo, hi := int64(1<<62), int64(-1)
		for i := 0; i < n; i++ {
			k := g.pickKey(s)
			g.closeKeyAt(s, k)
			members = append(members, value.Int(k))
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		g.spans[s] = append(g.spans[s], [2]int64{lo, hi})
		pat, err := punct.NewEnum(members...)
		if err != nil {
			panic(err) // n >= 1 distinct members; cannot happen
		}
		g.emit(s, stream.PunctItem(punct.MustKeyOnly(width, gen.KeyAttr, pat), g.stamp()))
	default: // constant: close one key (oldest-biased)
		if len(g.open[s]) == 0 {
			g.openKey()
		}
		k := g.open[s][0]
		if g.e.bool(40) {
			k = g.pickKey(s)
		}
		g.closeKeyAt(s, k)
		g.spans[s] = append(g.spans[s], [2]int64{k, k})
		g.emit(s, stream.PunctItem(punct.MustKeyOnly(width, gen.KeyAttr, punct.Const(value.Int(k))), g.stamp()))
	}
}

// run produces the schedule: a bursty interleaving of tuples and
// punctuations with per-side punctuation rates, early-EOS cases and
// trailing EOS for whichever port is still open at the end.
func (g *generator) run() {
	e := g.e
	budget := 60 + e.intn(340)
	windowKeys := 3 + e.intn(20)
	for i := 0; i < windowKeys; i++ {
		g.openKey()
	}
	// Per-side punctuation probability (percent per tuple); one side may
	// punctuate never or rarely (the asymmetric-rate regime).
	punctPct := [2]int{[]int{0, 4, 10, 25}[e.intn(4)], []int{0, 4, 10, 25}[e.intn(4)]}
	// Early EOS: a port may stop partway while the other keeps flowing.
	stopAt := [2]int{budget, budget}
	if e.bool(25) {
		stopAt[e.intn(2)] = budget / (2 + e.intn(3))
	}
	burstSide, burstLeft := 0, 0
	for i := 0; i < budget; i++ {
		s := e.intn(2)
		if burstLeft > 0 {
			s, burstLeft = burstSide, burstLeft-1
		} else if e.bool(15) {
			burstSide, burstLeft = s, 2+e.intn(12)
		}
		if i >= stopAt[s] || g.closed[s] {
			s = 1 - s
		}
		if i >= stopAt[s] || g.closed[s] {
			break // both sides done with tuples
		}
		// Send the port's EOS the moment its tuple budget is exhausted,
		// so post-EOS drain on the other port is exercised.
		g.emitTuple(s)
		if e.intn(100) < punctPct[s] && !g.closed[s] {
			g.emitPunct(s)
		}
		if e.intn(100) < punctPct[1-s]/2 && !g.closed[1-s] && i < stopAt[1-s] {
			g.emitPunct(1 - s)
		}
		for p := 0; p < 2; p++ {
			if !g.eosSent[p] && (i+1 >= stopAt[p] || g.closed[p]) && e.bool(60) {
				g.eosSent[p] = true
				g.emit(p, stream.EOSItem(g.stamp()))
			}
		}
	}
	for p := 0; p < 2; p++ {
		if !g.eosSent[p] {
			g.eosSent[p] = true
			g.emit(p, stream.EOSItem(g.stamp()))
		}
	}
}

// Validate checks the generated schedule's own invariants: strictly
// increasing timestamps, per-port honesty (no tuple after a matching
// own-port punctuation), the nested-or-disjoint assumption on the join
// attribute, and no items after a port's EOS. The harness runs it on
// every decoded scenario — a violation is a generator bug, reported
// loudly rather than laundered into an operator divergence.
func (sc *Scenario) Validate() error {
	var last stream.Time = -1
	sets := [2]*punct.Set{
		punct.NewKeyedSet(gen.KeyAttr, true),
		punct.NewKeyedSet(gen.KeyAttr, true),
	}
	var eos [2]bool
	for i, a := range sc.Arrivals {
		if a.Port != 0 && a.Port != 1 {
			return fmt.Errorf("oracle: arrival %d: bad port %d", i, a.Port)
		}
		if a.Item.Ts <= last {
			return fmt.Errorf("oracle: arrival %d: timestamp %d not increasing (prev %d)", i, a.Item.Ts, last)
		}
		last = a.Item.Ts
		if eos[a.Port] {
			return fmt.Errorf("oracle: arrival %d: item after EOS on port %d", i, a.Port)
		}
		switch a.Item.Kind {
		case stream.KindTuple:
			if sets[a.Port].SetMatchAttr(gen.KeyAttr, a.Item.Tuple.Values[gen.KeyAttr]) {
				return fmt.Errorf("oracle: arrival %d: tuple %s violates an earlier punctuation on port %d",
					i, a.Item.Tuple, a.Port)
			}
		case stream.KindPunct:
			if _, err := sets[a.Port].Add(a.Item.Punct); err != nil {
				return fmt.Errorf("oracle: arrival %d: %w", i, err)
			}
		case stream.KindEOS:
			eos[a.Port] = true
		}
	}
	return nil
}

// Stats summarises the schedule for reports.
func (sc *Scenario) Stats() (tuples, puncts [2]int) {
	for _, a := range sc.Arrivals {
		switch a.Item.Kind {
		case stream.KindTuple:
			tuples[a.Port]++
		case stream.KindPunct:
			puncts[a.Port]++
		}
	}
	return
}
