package oracle

import (
	"errors"
	"fmt"
	"strings"
)

// RefVariant is the canonical PJoin configuration whose propagated
// punctuation multiset every other PJoin variant is compared against:
// single instance, indexed, blocking disk passes, plain spills.
var RefVariant = Variant{Op: "pjoin", Index: true, Shards: 1}

// CheckScenario runs the full differential matrix over the scenario:
// the shj brute-force oracle once, then every Matrix() variant,
// asserting
//
//   - result-tuple multisets bit-identical to the oracle's,
//   - propagated-punctuation multisets identical across all PJoin
//     variants (XJoin ignores punctuations and must propagate none),
//   - exactly one output EOS per successful run,
//   - obs counters and latency histograms reconciled (checkObs),
//   - faulted variants either surface exactly ErrInjectedFault and
//     then succeed on a fault-free rerun (recovery), or never reach
//     the fault and pass the full checks.
//
// The returned divergences are empty iff the scenario passes.
func CheckScenario(sc *Scenario) []Divergence {
	ref, punctRef, ds := checkPrologue(sc)
	if ds != nil {
		return ds
	}
	for _, v := range Matrix() {
		ds = append(ds, checkVariant(sc, v, ref, punctRef)...)
	}
	return ds
}

// CheckOne runs the checks for a single variant (plus the oracle and
// reference runs they compare against). The shrinker's predicate.
func CheckOne(sc *Scenario, v Variant) []Divergence {
	ref, punctRef, ds := checkPrologue(sc)
	if ds != nil {
		return ds
	}
	return checkVariant(sc, v, ref, punctRef)
}

// checkPrologue validates the scenario and produces the two shared
// baselines: the shj oracle outcome and the reference PJoin's
// punctuation multiset. A non-nil divergence slice short-circuits.
func checkPrologue(sc *Scenario) (ref *Outcome, punctRef map[string]int, ds []Divergence) {
	if err := sc.Validate(); err != nil {
		return nil, nil, []Divergence{{Check: "generator", Detail: err.Error()}}
	}
	ref = RunOracle(sc)
	if ref.Err != nil {
		return nil, nil, []Divergence{{Check: "oracle", Detail: ref.Err.Error()}}
	}
	pref := Run(sc, RefVariant, false)
	if pref.Err != nil {
		return nil, nil, []Divergence{{Variant: RefVariant, Check: "error", Detail: pref.Err.Error()}}
	}
	return ref, pref.Puncts, nil
}

// checkVariant runs one matrix row and returns its divergences.
func checkVariant(sc *Scenario, v Variant, ref *Outcome, punctRef map[string]int) []Divergence {
	var ds []Divergence
	out := Run(sc, v, false)
	if v.Fault && out.Err != nil {
		// The injected fault fired. The operator must have surfaced the
		// sentinel (not swallowed or replaced it) ...
		if !errors.Is(out.Err, ErrInjectedFault) {
			return []Divergence{{Variant: v, Check: "fault",
				Detail: fmt.Sprintf("spill fault surfaced as a different error: %v", out.Err)}}
		}
		// ... and a fresh fault-free instance must recover: same inputs,
		// clean run, oracle-identical results.
		out = Run(sc, v, true)
		if out.Err != nil {
			return []Divergence{{Variant: v, Check: "fault",
				Detail: fmt.Sprintf("fault-free recovery rerun failed: %v", out.Err)}}
		}
	}
	if out.Err != nil {
		return []Divergence{{Variant: v, Check: "error", Detail: out.Err.Error()}}
	}
	if d := diffMultisets(out.Tuples, ref.Tuples); d != "" {
		ds = append(ds, Divergence{Variant: v, Check: "results", Detail: d})
	}
	if out.EOS != 1 {
		ds = append(ds, Divergence{Variant: v, Check: "results",
			Detail: fmt.Sprintf("emitted %d EOS items, want exactly 1", out.EOS)})
	}
	switch v.Op {
	case "pjoin":
		if d := diffMultisets(out.Puncts, punctRef); d != "" {
			ds = append(ds, Divergence{Variant: v, Check: "puncts",
				Detail: fmt.Sprintf("vs %s: %s", RefVariant, d)})
		}
	case "xjoin":
		if len(out.Puncts) != 0 {
			ds = append(ds, Divergence{Variant: v, Check: "puncts",
				Detail: fmt.Sprintf("xjoin propagated %d punctuations, want 0", len(out.Puncts))})
		}
	}
	return append(ds, checkObs(v, out)...)
}

// CheckSeed decodes and checks one seed. The convenience entry point
// for soak loops and pinned regression tests.
func CheckSeed(seed uint64) []Divergence {
	return CheckScenario(FromSeed(seed))
}

// Report renders divergences for humans, one per line.
func Report(ds []Divergence) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
