package bench

// This file implements the flight-recorder acceptance scenario behind
// `pjoinbench -flight-sample` and the fault-injection regression test:
// a PJoin whose spill device fails on read wedges mid-run; input keeps
// arriving while propagation is stuck, punctuation lag grows past the
// SLO, the stall detector fires, and the last trace events + histogram
// snapshots are dumped as a JSONL flight record.

import (
	"errors"
	"fmt"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/obs"
	"pjoin/internal/obs/health"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// FlightOutcome is what the fault-injection run produced.
type FlightOutcome struct {
	// Report is the detector's firing report (Reason "lag_slo").
	Report health.Report
	// WedgedAt is the arrival timestamp at which the injected fault
	// surfaced from the operator.
	WedgedAt stream.Time
	// PunctsOut is how many punctuations had propagated before the
	// wedge (nonzero: the run was healthy first).
	PunctsOut int64
	// RingEvents is how many trace events the flight ring held at dump
	// time.
	RingEvents int64
}

// RunFlight drives the scenario and, if path is non-empty, writes the
// flight dump there (gzip-compressed for a .gz suffix). The returned
// outcome lets callers assert the shape: healthy propagation first,
// then a read fault, then a lag-SLO violation.
func RunFlight(path string) (*FlightOutcome, error) {
	const (
		lagSLO  = 200 * stream.Millisecond
		horizon = 4_000 * stream.Millisecond
	)
	ring := obs.NewRing(128)
	boom := errors.New("injected: unreadable spill sector")

	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
		Instr: obs.NewInstr(ring, nil, "pjoin"),
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	cfg.Thresholds.MemoryBytes = 2 << 10 // relocate early so purges need the disk
	cfg.SpillA = store.NewFaultSpill(store.NewMemSpill(), store.FaultRead, 1, boom)
	cfg.SpillB = store.NewFaultSpill(store.NewMemSpill(), store.FaultRead, 1, boom)

	// The supervisor's view of propagation progress: the timestamp of
	// the newest punctuation seen downstream. Its staleness against the
	// arrival clock is the punctuation lag a downstream SLO monitor
	// would measure.
	var lastPunctOut stream.Time
	j, err := core.New(cfg, op.EmitterFunc(func(it stream.Item) error {
		if it.Kind == stream.KindPunct && it.Ts > lastPunctOut {
			lastPunctOut = it.Ts
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}

	arrs, err := gen.Synthetic(gen.Config{
		Seed: 1, Duration: horizon,
		A:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 10},
		B:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 10},
		AlignedPunctuation: true,
	})
	if err != nil {
		return nil, err
	}

	d := health.NewDetector(health.Config{LagSLO: lagSLO})
	out := &FlightOutcome{}
	var wedged bool
	var fired bool
	for _, a := range arrs {
		if !wedged {
			if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
				if !errors.Is(err, boom) {
					return nil, fmt.Errorf("flight: unexpected operator error: %w", err)
				}
				wedged = true
				out.WedgedAt = a.Item.Ts
				out.PunctsOut = j.Metrics().PunctsOut
			}
		}
		// Input keeps arriving whether or not the operator can keep up;
		// the probe samples its counters from outside.
		m := j.Metrics()
		r, f := d.Observe(health.Progress{
			Now:       a.Item.Ts,
			TuplesIn:  m.TuplesIn[0] + m.TuplesIn[1],
			TuplesOut: m.TuplesOut,
			PunctsOut: m.PunctsOut,
			PunctLag:  a.Item.Ts - lastPunctOut,
		})
		if f {
			out.Report = r
			fired = true
			break
		}
	}
	if !wedged {
		return nil, fmt.Errorf("flight: injected fault never surfaced (workload too small?)")
	}
	if !fired {
		return nil, fmt.Errorf("flight: detector never fired (lag stayed under %v after the wedge)", lagSLO)
	}
	out.RingEvents = ring.Total()
	if out.RingEvents > 128 {
		out.RingEvents = 128
	}
	if path != "" {
		if err := health.DumpToFile(path, out.Report, ring, j.Latencies()); err != nil {
			return nil, err
		}
	}
	return out, nil
}
