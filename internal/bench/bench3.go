package bench

// This file implements the machine-readable performance summary behind
// `make bench` (BENCH_3.json): store-level micro-benchmarks of the
// key-grouped index against the pre-index scan, plus every simulated
// reproduction experiment's wall time, allocation rate and final work
// counters in both state regimes. The per-experiment rows are the
// receipt for the index's contract — identical TuplesOut/Purged with
// Examined and PurgeScanned collapsed.

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"pjoin/internal/gen"
	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Bench3Probe is the probe micro-benchmark: one bucket at the given
// occupancy, a key with the given number of matches.
type Bench3Probe struct {
	Occupancy       int     `json:"occupancy"`
	Matches         int     `json:"matches"`
	IndexedNsOp     int64   `json:"indexed_ns_op"`
	IndexedAllocsOp int64   `json:"indexed_allocs_op"`
	ScanNsOp        int64   `json:"scan_ns_op"`
	ScanAllocsOp    int64   `json:"scan_allocs_op"`
	Speedup         float64 `json:"speedup"`
}

// Bench3Work is one simulated operator's final work counters in one run.
type Bench3Work struct {
	Op           string `json:"op"`
	TuplesOut    int64  `json:"tuples_out"`
	Purged       int64  `json:"purged"`
	PurgeRuns    int64  `json:"purge_runs"`
	Examined     int64  `json:"examined"`
	PurgeScanned int64  `json:"purge_scanned"`
	DroppedOnFly int64  `json:"dropped_on_fly"`
}

// Bench3Mode is one state regime's measurement of an experiment: the
// quick-horizon run benchmarked for wall time and allocations, and the
// per-operator work counters of one such run.
type Bench3Mode struct {
	NsOp     int64        `json:"ns_op"`
	AllocsOp int64        `json:"allocs_op"`
	Work     []Bench3Work `json:"work"`
}

// Bench3Experiment is one reproduction experiment measured in both
// regimes (scan = pre-index physics the figures are rendered under,
// indexed = the key-grouped index).
type Bench3Experiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Scan    Bench3Mode `json:"scan"`
	Indexed Bench3Mode `json:"indexed"`
}

// Bench3 is the full report.
type Bench3 struct {
	Note        string             `json:"note"`
	Seed        uint64             `json:"seed"`
	Probe       Bench3Probe        `json:"probe_micro"`
	Experiments []Bench3Experiment `json:"experiments"`
}

// bench3ProbeState builds the micro-benchmark state: a single bucket
// holding occupancy tuples, matches of which carry the probed key,
// spread through the arrival order.
func bench3ProbeState(occupancy, matches int) (*store.State, value.Value, error) {
	st, err := store.NewState("A", 0, 1, store.NewMemSpill())
	if err != nil {
		return nil, value.Value{}, err
	}
	const hot = int64(1 << 40)
	stride := occupancy / matches
	for i := 0; i < occupancy; i++ {
		k := int64(i)
		if i%stride == stride/2 && i/stride < matches {
			k = hot
		}
		tp, err := stream.NewTuple(gen.SchemaA, stream.Time(i+1), value.Int(k), value.Str("p"))
		if err != nil {
			return nil, value.Value{}, err
		}
		if _, err := st.Insert(tp); err != nil {
			return nil, value.Value{}, err
		}
	}
	return st, value.Int(hot), nil
}

func bench3Probe() (Bench3Probe, error) {
	const occupancy, matches = 1024, 4
	st, key, err := bench3ProbeState(occupancy, matches)
	if err != nil {
		return Bench3Probe{}, err
	}
	dst := make([]*store.StoredTuple, 0, 8)
	run := func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst, _ = st.ProbeMem(key, dst[:0])
			}
		})
	}
	indexed := run()
	st.SetScanFallback(true)
	scan := run()
	return Bench3Probe{
		Occupancy:       occupancy,
		Matches:         matches,
		IndexedNsOp:     indexed.NsPerOp(),
		IndexedAllocsOp: indexed.AllocsPerOp(),
		ScanNsOp:        scan.NsPerOp(),
		ScanAllocsOp:    scan.AllocsPerOp(),
		Speedup:         float64(scan.NsPerOp()) / float64(indexed.NsPerOp()),
	}, nil
}

func bench3Mode(e Experiment, seed uint64, indexed bool) (Bench3Mode, error) {
	rc := RunConfig{Seed: seed, Quick: true, Indexed: indexed}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(rc); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Bench3Mode{}, runErr
	}
	rc.Work = &WorkLog{}
	if _, err := e.Run(rc); err != nil {
		return Bench3Mode{}, err
	}
	mode := Bench3Mode{NsOp: res.NsPerOp(), AllocsOp: res.AllocsPerOp(), Work: []Bench3Work{}}
	for _, row := range rc.Work.Rows {
		mode.Work = append(mode.Work, Bench3Work{
			Op:           row.Op,
			TuplesOut:    row.M.TuplesOut,
			Purged:       row.M.Purged,
			PurgeRuns:    row.M.PurgeRuns,
			Examined:     row.M.Examined,
			PurgeScanned: row.M.PurgeScanned,
			DroppedOnFly: row.M.DroppedOnFly,
		})
	}
	return mode, nil
}

// RunBench3 runs the full performance summary at the given workload
// seed. progress (optional) receives one line per experiment.
func RunBench3(seed uint64, progress io.Writer) (*Bench3, error) {
	if progress == nil {
		progress = io.Discard
	}
	out := &Bench3{
		Note: "quick-horizon runs; scan = pre-index full-bucket physics (the regime the " +
			"figures are rendered under), indexed = key-grouped state index. " +
			"TuplesOut/Purged must agree across regimes; Examined/PurgeScanned shrink.",
		Seed: seed,
	}
	fmt.Fprintln(progress, "probe micro-benchmark (1024-occupancy bucket, 4 matches)...")
	probe, err := bench3Probe()
	if err != nil {
		return nil, err
	}
	out.Probe = probe
	for _, e := range Experiments() {
		if e.ID == "scale1" {
			// scale1 measures real wall clock across shard counts (and
			// always runs indexed); it has no simulated work counters to
			// compare, so it stays out of this report — `make
			// bench-scaling` covers it.
			continue
		}
		fmt.Fprintf(progress, "%s: scan + indexed quick runs...\n", e.ID)
		scan, err := bench3Mode(e, seed, false)
		if err != nil {
			return nil, fmt.Errorf("bench3: %s (scan): %w", e.ID, err)
		}
		indexed, err := bench3Mode(e, seed, true)
		if err != nil {
			return nil, fmt.Errorf("bench3: %s (indexed): %w", e.ID, err)
		}
		out.Experiments = append(out.Experiments, Bench3Experiment{
			ID: e.ID, Title: e.Title, Scan: scan, Indexed: indexed,
		})
	}
	return out, nil
}

// WriteJSON renders the report as indented JSON.
func (b *Bench3) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
