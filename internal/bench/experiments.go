package bench

import (
	"fmt"

	"pjoin/internal/core"
	"pjoin/internal/event"
	"pjoin/internal/gen"
	"pjoin/internal/metrics"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// Default virtual horizons per experiment. The paper runs minutes of
// wall time; one virtual minute at 2 ms/tuple ≈ 30k tuples per stream is
// enough to show every trend.
const (
	defShort = 60_000 * stream.Millisecond
	defLong  = 120_000 * stream.Millisecond
	// defAsym is the Fig. 12/13 horizon: short enough that XJoin's
	// growing probe cost has not yet overtaken PJoin-1's purge overhead,
	// which is the regime the paper's chart shows.
	defAsym = 10_000 * stream.Millisecond
)

func init() {
	register(Experiment{ID: "fig5", Title: "PJoin vs XJoin, memory overhead (punct inter-arrival 40)", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "PJoin state size vs punctuation inter-arrival (10/20/30)", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "PJoin vs XJoin, tuple output over time", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Eager vs lazy purge, memory overhead (punct inter-arrival 10)", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Purge threshold vs tuple output (1/100/400/800)", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Asymmetric punctuation rates, memory overhead", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Asymmetric punctuation rates, tuple output", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "PJoin-1 vs lazy PJoin vs XJoin, asymmetric rates, output", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "PJoin-1 vs lazy PJoin vs XJoin, asymmetric rates, memory", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "Punctuation propagation output over time", Run: runFig14})
	register(Experiment{ID: "table1", Title: "Event-listener registry configuration", Run: runTable1})
}

// runFig5 — paper Fig. 5: with punctuations every 40 tuples, the memory
// requirement of the PJoin state is insignificant compared to XJoin's.
func runFig5(rc RunConfig) (*Report, error) {
	arrs, horizon, err := symmetricWorkload(rc, defShort, 40)
	if err != nil {
		return nil, err
	}
	pj, err := pjoinFor(rc, "pjoin", 1, nil)
	if err != nil {
		return nil, err
	}
	resP, err := rc.simulate(pj, arrs, horizon)
	if err != nil {
		return nil, err
	}
	xj, err := xjoinFor(rc)
	if err != nil {
		return nil, err
	}
	resX, err := rc.simulate(xj, arrs, horizon)
	if err != nil {
		return nil, err
	}
	sp := stateSeries("PJoin-1", resP)
	sx := stateSeries("XJoin", resX)
	return &Report{
		ID:     "fig5",
		Title:  "PJoin vs XJoin, memory overhead, punct inter-arrival 40 tuples/punct",
		Paper:  "PJoin state is almost insignificant compared to XJoin; XJoin grows with the stream",
		Series: []metrics.Series{sp, sx},
		Rows: [][]string{
			{"operator", "avg state (tuples)", "max state", "final state", "results"},
			{"PJoin-1", f1(sp.Mean()), f1(sp.Max()), f1(sp.Last()), i64(resP.Final.TuplesOut)},
			{"XJoin", f1(sx.Mean()), f1(sx.Max()), f1(sx.Last()), i64(resX.Final.TuplesOut)},
		},
		Notes: []string{fmt.Sprintf("PJoin/XJoin average state ratio: %.3f", sp.Mean()/sx.Mean())},
	}, nil
}

// runFig6 — paper Fig. 6: the PJoin state grows with the punctuation
// inter-arrival (10 < 20 < 30 tuples/punctuation).
func runFig6(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "fig6",
		Title: "PJoin state size vs punctuation inter-arrival",
		Paper: "larger punctuation inter-arrival => larger average state",
		Rows:  [][]string{{"punct inter-arrival", "avg state (tuples)", "max state"}},
	}
	for _, pm := range []float64{10, 20, 30} {
		arrs, horizon, err := symmetricWorkload(rc, defShort, pm)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-pm%g", pm), 1, nil)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		s := stateSeries(fmt.Sprintf("punct=%g", pm), res)
		report.Series = append(report.Series, s)
		report.Rows = append(report.Rows, []string{f1(pm), f1(s.Mean()), f1(s.Max())})
	}
	return report, nil
}

// runFig7 — paper Fig. 7: PJoin sustains a steady output rate while
// XJoin's declines as its growing state makes probing slower.
func runFig7(rc RunConfig) (*Report, error) {
	arrs, horizon, err := symmetricWorkload(rc, defLong, 40)
	if err != nil {
		return nil, err
	}
	pj, err := pjoinFor(rc, "pjoin", 1, nil)
	if err != nil {
		return nil, err
	}
	resP, err := rc.simulate(pj, arrs, horizon)
	if err != nil {
		return nil, err
	}
	xj, err := xjoinFor(rc)
	if err != nil {
		return nil, err
	}
	resX, err := rc.simulate(xj, arrs, horizon)
	if err != nil {
		return nil, err
	}
	op1 := outputSeries("PJoin-1", resP)
	ox := outputSeries("XJoin", resX)
	// Output rate over the first vs second half shows the decline.
	halfRate := func(s metrics.Series) (first, second float64) {
		r := s.Rate("r")
		if r.Len() < 2 {
			return 0, 0
		}
		half := r.Len() / 2
		var a, b float64
		for i, p := range r.Points {
			if i < half {
				a += p.V
			} else {
				b += p.V
			}
		}
		return a / float64(half), b / float64(r.Len()-half)
	}
	pf, ps := halfRate(op1)
	xf, xs := halfRate(ox)
	return &Report{
		ID:     "fig7",
		Title:  "PJoin vs XJoin, cumulative tuple output",
		Paper:  "PJoin output rate steady; XJoin output rate drops as its state grows",
		Series: []metrics.Series{op1, ox},
		Rows: [][]string{
			{"operator", "rate 1st half (tuples/s)", "rate 2nd half", "done at (ms)", "results"},
			{"PJoin-1", f1(pf), f1(ps), f1(float64(resP.Done) / 1e6), i64(resP.Final.TuplesOut)},
			{"XJoin", f1(xf), f1(xs), f1(float64(resX.Done) / 1e6), i64(resX.Final.TuplesOut)},
		},
	}, nil
}

// runFig8 — paper Fig. 8: eager purge minimises the state; lazy purge
// (threshold 10) needs more memory.
func runFig8(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "fig8",
		Title: "Eager vs lazy purge, memory overhead, punct inter-arrival 10",
		Paper: "PJoin-1 state <= PJoin-10 state at all times",
		Rows:  [][]string{{"strategy", "avg state (tuples)", "max state"}},
	}
	for _, th := range []int{1, 10} {
		arrs, horizon, err := symmetricWorkload(rc, defShort, 10)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-%d", th), th, nil)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		s := stateSeries(fmt.Sprintf("PJoin-%d", th), res)
		report.Series = append(report.Series, s)
		report.Rows = append(report.Rows, []string{fmt.Sprintf("PJoin-%d", th), f1(s.Mean()), f1(s.Max())})
	}
	return report, nil
}

// runFig9 — paper Fig. 9: raising the purge threshold first raises the
// output rate (fewer purge scans), then lowers it again (probing a
// bigger state); purge thresholds 1, 100, 400, 800.
func runFig9(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "fig9",
		Title: "Purge threshold vs tuple output, punct inter-arrival 10",
		Paper: "output rises from threshold 1 to ~100, then falls again at 400/800",
		Rows:  [][]string{{"strategy", "done at (ms)", "avg rate (tuples/s)", "avg state"}},
	}
	for _, th := range []int{1, 100, 400, 800} {
		arrs, horizon, err := symmetricWorkload(rc, defLong, 10)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-%d", th), th, nil)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		o := outputSeries(fmt.Sprintf("PJoin-%d", th), res)
		st := stateSeries("", res)
		rate := o.Last() / (float64(res.Done) / 1e9)
		report.Series = append(report.Series, o)
		report.Rows = append(report.Rows, []string{
			fmt.Sprintf("PJoin-%d", th),
			f1(float64(res.Done) / 1e6), f1(rate), f1(st.Mean()),
		})
	}
	return report, nil
}

// runFig10 — paper Fig. 10: with A's punctuation inter-arrival fixed at
// 10, slower punctuations from B leave the A state larger.
func runFig10(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "fig10",
		Title: "Asymmetric punctuation inter-arrival, memory overhead (A=10 fixed)",
		Paper: "larger B inter-arrival => larger state; B state stays insignificant (drop-on-the-fly)",
		Rows:  [][]string{{"B punct inter-arrival", "avg state", "final A state", "final B state", "dropped on fly"}},
	}
	for _, pb := range []float64{10, 20, 40} {
		arrs, horizon, err := asymmetricWorkload(rc, defShort, 10, pb, 4)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-pb%g", pb), 1, nil)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		aStats, bStats := pj.StateStats()
		s := stateSeries(fmt.Sprintf("B=%g", pb), res)
		report.Series = append(report.Series, s)
		report.Rows = append(report.Rows, []string{
			f1(pb), f1(s.Mean()),
			fmt.Sprintf("%d", aStats.TotalTuples()),
			fmt.Sprintf("%d", bStats.TotalTuples()),
			i64(res.Final.DroppedOnFly),
		})
	}
	return report, nil
}

// runFig11 — paper Fig. 11: the slower the punctuations, the higher the
// tuple output (fewer purges, less purge overhead).
func runFig11(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "fig11",
		Title: "Asymmetric punctuation inter-arrival, tuple output (A=10 fixed)",
		Paper: "slower B punctuations => slightly higher output (less purge overhead)",
		Rows:  [][]string{{"B punct inter-arrival", "done at (ms)", "avg rate (tuples/s)", "purge scans"}},
	}
	for _, pb := range []float64{10, 20, 40} {
		arrs, horizon, err := asymmetricWorkload(rc, defShort, 10, pb, 4)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-pb%g", pb), 1, nil)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		o := outputSeries(fmt.Sprintf("B=%g", pb), res)
		rate := o.Last() / (float64(res.Done) / 1e9)
		report.Series = append(report.Series, o)
		report.Rows = append(report.Rows, []string{
			f1(pb), f1(float64(res.Done) / 1e6), f1(rate), i64(res.Final.PurgeScanned),
		})
	}
	return report, nil
}

// runFig12 — paper Fig. 12: under asymmetric punctuation (A=10, B=20)
// PJoin-1's purge overhead makes it lag XJoin; a lazy threshold closes
// the gap.
func runFig12(rc RunConfig) (*Report, error) {
	rep, _, err := fig1213(rc)
	return rep, err
}

// runFig13 — paper Fig. 13: state sizes for the Fig. 12 configuration:
// either PJoin variant needs far less memory than XJoin.
func runFig13(rc RunConfig) (*Report, error) {
	_, rep, err := fig1213(rc)
	return rep, err
}

func fig1213(rc RunConfig) (*Report, *Report, error) {
	out := &Report{
		ID:    "fig12",
		Title: "PJoin-1 vs lazy PJoin vs XJoin, output, A=10 B=20",
		Paper: "PJoin-1 lags XJoin (purge overhead); lazy PJoin matches or beats XJoin",
		Rows:  [][]string{{"operator", "done at (ms)", "avg rate (tuples/s)", "results"}},
	}
	mem := &Report{
		ID:    "fig13",
		Title: "PJoin-1 vs lazy PJoin vs XJoin, memory, A=10 B=20",
		Paper: "both PJoin variants keep the state far below XJoin",
		Rows:  [][]string{{"operator", "avg state (tuples)", "max state"}},
	}
	run := func(name string, j simJoin) error {
		arrs, horizon, err := asymmetricWorkload(rc, defAsym, 10, 20, 16)
		if err != nil {
			return err
		}
		res, err := rc.simulate(j, arrs, horizon)
		if err != nil {
			return err
		}
		o := outputSeries(name, res)
		s := stateSeries(name, res)
		rate := o.Last() / (float64(res.Done) / 1e9)
		out.Series = append(out.Series, o)
		out.Rows = append(out.Rows, []string{name, f1(float64(res.Done) / 1e6), f1(rate), i64(res.Final.TuplesOut)})
		mem.Series = append(mem.Series, s)
		mem.Rows = append(mem.Rows, []string{name, f1(s.Mean()), f1(s.Max())})
		return nil
	}
	pj1, err := pjoinFor(rc, "pjoin-1", 1, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := run("PJoin-1", pj1); err != nil {
		return nil, nil, err
	}
	pjLazy, err := pjoinFor(rc, "pjoin-40", 40, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := run("PJoin-40", pjLazy); err != nil {
		return nil, nil, err
	}
	xj, err := xjoinFor(rc)
	if err != nil {
		return nil, nil, err
	}
	if err := run("XJoin", xj); err != nil {
		return nil, nil, err
	}
	return out, mem, nil
}

// runFig14 — paper Fig. 14: with aligned punctuations every 40 tuples
// and propagation configured to fire after each pair, the number of
// propagated punctuations grows steadily over time.
func runFig14(rc RunConfig) (*Report, error) {
	horizon := rc.horizon(defShort)
	arrs, err := gen.Synthetic(gen.Config{
		Seed:               rc.seed(),
		Duration:           horizon,
		A:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		B:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		AlignedPunctuation: true,
	})
	if err != nil {
		return nil, err
	}
	pj, err := pjoinFor(rc, "pjoin", 1, func(c *core.Config) {
		c.DisablePropagation = false
		// Start propagation after a pair of equivalent punctuations has
		// been received from both input streams (§4.4).
		c.Thresholds.PropagateCount = 2
	})
	if err != nil {
		return nil, err
	}
	res, err := rc.simulate(pj, arrs, horizon)
	if err != nil {
		return nil, err
	}
	s := punctOutSeries("punctuations out", res)
	rate := s.Rate("rate")
	return &Report{
		ID:     "fig14",
		Title:  "Punctuation propagation, aligned punctuations every 40 tuples",
		Paper:  "steady punctuation output rate over time",
		Series: []metrics.Series{s},
		Rows: [][]string{
			{"metric", "value"},
			{"punctuations in", i64(res.Final.PunctsIn[0] + res.Final.PunctsIn[1])},
			{"punctuations out", i64(res.Final.PunctsOut)},
			{"mean output rate (puncts/s)", f1(rate.Mean())},
		},
	}, nil
}

// runTable1 — paper Table 1: the event-listener registry of the lazy
// purge + lazy index build + push-mode propagation configuration.
func runTable1(rc RunConfig) (*Report, error) {
	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
	}
	cfg.Thresholds = event.Thresholds{
		Purge:          10,
		MemoryBytes:    64 << 20,
		DiskJoinIdle:   50 * stream.Millisecond,
		PropagateCount: 100,
	}
	j, err := core.New(cfg, &op.Collector{})
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"event -> listeners"}}
	table := j.Registry().String()
	for _, line := range splitLines(table) {
		rows = append(rows, []string{line})
	}
	return &Report{
		ID:    "table1",
		Title: "Event-listener registry (lazy purge, lazy index build, push propagation)",
		Paper: "Table 1 lists the registry rows for this configuration",
		Rows:  rows,
	}, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
