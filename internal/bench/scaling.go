package bench

import (
	"fmt"
	"runtime"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/metrics"
	"pjoin/internal/parallel"
	"pjoin/internal/sim"
	"pjoin/internal/stream"
)

func init() {
	register(Experiment{ID: "scale1", Title: "ShardedPJoin scaling, 1/2/4/8 shards (fig5 workload)", Run: runScale1})
}

// Router and merge stage prices for the pipeline makespan. Routing is a
// single hash plus a queue append — an order of magnitude cheaper than
// PerTuple, which prices a full engine dispatch + state insert; the
// merge forwards an already-built result under one lock.
const (
	perRoute = 10 * stream.Time(1_000) // 10 µs per routed/broadcast item
	perMerge = 5 * stream.Time(1_000)  // 5 µs per merged output item
)

// scaleRow is one shard count's measurement.
type scaleRow struct {
	shards     int
	wall       time.Duration
	wallTput   float64     // tuples/s of wall time
	makespan   stream.Time // cost-model pipeline makespan
	modelTput  float64     // tuples/s of model makespan
	speedup    float64     // single-instance model time / makespan
	skew       float64
	highWater  int
	punctsOut  int64
	resultsOut int64
}

// runScale1 measures ShardedPJoin's throughput scaling on the fig5-style
// high-rate symmetric workload at 1, 2, 4 and 8 shards.
//
// Two numbers are reported per shard count. Wall time is the honest
// end-to-end time to drive the whole schedule through the operator on
// this machine — it depends on GOMAXPROCS and shows real parallel
// speedup only when cores are available. The cost-model makespan is the
// machine-independent counterpart, consistent with the repository's
// virtual-time methodology (internal/sim): each shard's actual recorded
// work (its joinbase.Metrics after the run — probes, purge scans, purge
// runs, punctuations) is priced with sim.DefaultCosts, the router and
// merge stages are priced per item, and the pipeline makespan is the
// slowest stage: max(router, slowest shard, merge). Data-tuple work
// divides across shards; broadcast punctuation handling and per-shard
// purge runs do not — which is exactly the Amdahl term that caps the
// measured speedup as shards grow.
func runScale1(rc RunConfig) (*Report, error) {
	arrs, _, err := symmetricWorkload(rc, defShort, 40)
	if err != nil {
		return nil, err
	}
	var tuples int64
	for _, a := range arrs {
		if a.Item.Kind == stream.KindTuple {
			tuples++
		}
	}
	costs := sim.DefaultCosts()

	var rows []scaleRow
	for _, n := range rc.shardCounts() {
		cfg := core.Config{
			SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
			AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
		}
		cfg.Thresholds.Purge = 1
		cfg.Thresholds.PropagateCount = 1
		j, err := parallel.New(parallel.Config{Shards: n, Join: cfg, Instr: rc.instr(fmt.Sprintf("sharded-%d", n))}, &nullEmitter{})
		if err != nil {
			return nil, err
		}

		start := time.Now()
		var last stream.Time
		for i, a := range arrs {
			if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
				return nil, fmt.Errorf("scale1: shards=%d arrival %d: %w", n, i, err)
			}
			last = a.Item.Ts
		}
		for port := 0; port < 2; port++ {
			last++
			if err := j.Process(port, stream.EOSItem(last), last); err != nil {
				return nil, fmt.Errorf("scale1: shards=%d EOS: %w", n, err)
			}
		}
		if err := j.Finish(last + 1); err != nil {
			return nil, fmt.Errorf("scale1: shards=%d Finish: %w", n, err)
		}
		wall := time.Since(start)

		stats := j.ShardStats()
		var maxShard stream.Time
		var routed, highWater int64
		for _, s := range stats {
			if c := costs.Charge(s.Join); c > maxShard {
				maxShard = c
			}
			routed += s.Routed
			if int64(s.QueueHighWater) > highWater {
				highWater = int64(s.QueueHighWater)
			}
		}
		m := j.Metrics()
		// The router handles every data tuple once and every punctuation
		// n times (broadcast); the merge forwards results + punctuations.
		routerWork := perRoute * stream.Time(routed+int64(n)*(m.PunctsIn[0]+m.PunctsIn[1]))
		mergeWork := perMerge * stream.Time(m.TuplesOut+m.PunctsOut)
		makespan := maxShard
		if routerWork > makespan {
			makespan = routerWork
		}
		if mergeWork > makespan {
			makespan = mergeWork
		}
		rows = append(rows, scaleRow{
			shards:     n,
			wall:       wall,
			wallTput:   float64(tuples) / wall.Seconds(),
			makespan:   makespan,
			modelTput:  float64(tuples) / (float64(makespan) / 1e9),
			skew:       parallel.Skew(stats),
			highWater:  int(highWater),
			punctsOut:  m.PunctsOut,
			resultsOut: m.TuplesOut,
		})
	}

	base := rows[0]
	rep := &Report{
		ID:    "scale1",
		Title: "ShardedPJoin throughput scaling (fig5 workload: 2 ms/tuple, punct every 40)",
		Paper: "beyond the paper: partition-parallel stream joins scale near-linearly until broadcast work dominates",
		Rows: [][]string{{
			"shards", "wall ms", "wall tuples/s",
			"model makespan ms", "model tuples/s", "model speedup",
			"skew", "queue high-water",
		}},
	}
	speedupSeries := metrics.Series{Name: "model-speedup"}
	tputSeries := metrics.Series{Name: "model-tuples-per-s"}
	for i := range rows {
		r := &rows[i]
		r.speedup = float64(base.makespan) / float64(r.makespan)
		rep.Rows = append(rep.Rows, []string{
			i64(int64(r.shards)),
			f1(float64(r.wall.Milliseconds())),
			f1(r.wallTput),
			f1(float64(r.makespan) / 1e6),
			f1(r.modelTput),
			fmt.Sprintf("%.2f", r.speedup),
			fmt.Sprintf("%.2f", r.skew),
			i64(int64(r.highWater)),
		})
		// x = shard count so the CSV rows read (shards, value).
		speedupSeries.Add(float64(r.shards), r.speedup)
		tputSeries.Add(float64(r.shards), r.modelTput)
	}
	rep.Series = []metrics.Series{speedupSeries, tputSeries}
	skewNote := "shard skew (max/mean tuples routed):"
	for _, r := range rows {
		skewNote += fmt.Sprintf(" %d shards → %.2f;", r.shards, r.skew)
	}
	rep.Notes = []string{
		skewNote,
		fmt.Sprintf("results %d, propagated punctuations %d per run (identical across shard counts)",
			base.resultsOut, base.punctsOut),
		fmt.Sprintf("wall time measured at GOMAXPROCS=%d; the model makespan is machine-independent "+
			"(per-shard recorded work priced with sim.DefaultCosts, makespan = slowest pipeline stage)",
			runtime.GOMAXPROCS(0)),
		"broadcast punctuations and per-shard purge runs are the serial fraction: they repeat in every shard, capping speedup as shards grow",
	}
	return rep, nil
}

// nullEmitter discards output; scale1 measures operator cost, not sink
// cost. It must still be race-safe: shard goroutines emit concurrently
// through the merge lock, so there is no state to protect.
type nullEmitter struct{}

func (nullEmitter) Emit(stream.Item) error { return nil }
