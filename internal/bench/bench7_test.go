package bench

import (
	"testing"

	"pjoin/internal/obs/span"
)

// TestBench7CellsReconcile runs the tracing-overhead sweep's three
// modes (detached, sampled 1-in-64, full) in quick mode and checks the
// invariants the overhead figures rest on: tracing must be pure
// observation — identical tuples in/out and punctuations propagated in
// every mode — and the span accounting must reconcile with itself:
// the sampler's admitted + dropped counters cover every input tuple,
// the 1-in-64 admission count is exact, punctuation spans are never
// sampled (identical across traced modes), and full mode emits at
// least ingest+cut+deliver+probe spans per input tuple. Wall-clock
// ratios are deliberately NOT asserted here — the ≤10% overhead bar is
// a best-of-3 benchmark figure (BENCH_7.json), not a CI invariant.
func TestBench7CellsReconcile(t *testing.T) {
	rc := RunConfig{Seed: 1, Quick: true, Indexed: true}
	var cells []Bench7Cell
	for _, m := range Bench7Modes {
		cell, err := bench7Once(rc, 256, m.SampleEvery)
		if err != nil {
			t.Fatalf("%s: %v", m.Mode, err)
		}
		cell.Mode = m.Mode
		cells = append(cells, cell)
	}
	detached := cells[0]
	if detached.Spans != 0 || detached.SampledIn != 0 || detached.DroppedIn != 0 {
		t.Errorf("detached: spans=%d sampled=%d dropped=%d, want all 0",
			detached.Spans, detached.SampledIn, detached.DroppedIn)
	}
	for _, c := range cells {
		if c.TuplesIn != detached.TuplesIn || c.TuplesOut != detached.TuplesOut ||
			c.PunctsOut != detached.PunctsOut {
			t.Errorf("%s: in/out/puncts = %d/%d/%d, detached %d/%d/%d — tracing changed the computation",
				c.Mode, c.TuplesIn, c.TuplesOut, c.PunctsOut,
				detached.TuplesIn, detached.TuplesOut, detached.PunctsOut)
		}
	}
	sampled, full := cells[1], cells[2]
	for _, c := range []Bench7Cell{sampled, full} {
		if c.SampledIn+c.DroppedIn != c.TuplesIn {
			t.Errorf("%s: sampled %d + dropped %d != tuples in %d",
				c.Mode, c.SampledIn, c.DroppedIn, c.TuplesIn)
		}
		if c.PunctSpans == 0 || c.TupleSpans == 0 {
			t.Errorf("%s: punct_spans=%d tuple_spans=%d, want both > 0",
				c.Mode, c.PunctSpans, c.TupleSpans)
		}
	}
	if want := (sampled.TuplesIn + 63) / 64; sampled.SampledIn != want {
		t.Errorf("sampled_64: admitted %d of %d tuples, want %d",
			sampled.SampledIn, sampled.TuplesIn, want)
	}
	if full.SampledIn != full.TuplesIn || full.DroppedIn != 0 {
		t.Errorf("full: admitted %d dropped %d of %d tuples, want all admitted",
			full.SampledIn, full.DroppedIn, full.TuplesIn)
	}
	// Punctuation spans must not be sampled. Aggregate punct-span counts
	// can differ by a few across runs (drop-on-fly vs insert-then-purge
	// depends on source interleaving), so compare the kinds that are
	// fixed by the workload: one arrive span per punctuation entering
	// the join, one emit span per punctuation propagated.
	for _, k := range []span.Kind{span.KindPunctArrive, span.KindPunctEmit} {
		if s, f := sampled.kinds[k], full.kinds[k]; s != f || s == 0 {
			t.Errorf("%s spans: sampled_64 %d, full %d — want equal and non-zero (punct spans are never sampled)",
				k, s, f)
		}
	}
	if min := 4 * full.TuplesIn; full.TupleSpans < min {
		t.Errorf("full: %d tuple spans for %d tuples, want >= %d (ingest+cut+deliver+probe each)",
			full.TupleSpans, full.TuplesIn, min)
	}
	if sampled.TupleSpans >= full.TupleSpans {
		t.Errorf("sampled_64 tuple spans (%d) not below full (%d)",
			sampled.TupleSpans, full.TupleSpans)
	}
}
