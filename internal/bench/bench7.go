package bench

// This file implements the tracing-overhead sweep behind `pjoinbench
// -bench7` (BENCH_7.json). The provenance layer (internal/obs/span)
// promises that observability is effectively free until you ask for it:
// detached tracing (instrumentation compiled in, no tracer attached)
// must cost one predicted branch per call site and zero allocations —
// the AllocsPerRun guards in internal/obs pin that — and attached
// tracing must be cheap enough to leave on in production, bounded by
// the tuple sampler. This sweep is the throughput receipt: the bench6
// live pipeline (two sources → PJoin → sink, batch 256) run detached,
// sampled 1-in-64, and with every tuple traced, all spans encoded to a
// discarded JSONL stream (the encoding work is paid, the disk is not,
// so the number isolates tracing cost from device speed).
//
// The acceptance bar recorded in the note: full tracing ≤ 10% tuples/s
// regression against detached at batch 256; the sampled mode should be
// indistinguishable from detached.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/exec"
	"pjoin/internal/gen"
	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/stream"
)

// Bench7Cell is one tracing mode's pipeline measurement.
type Bench7Cell struct {
	Mode         string  `json:"mode"` // "detached", "sampled_64", "full"
	SampleEvery  int     `json:"sample_every"`
	WallMs       float64 `json:"wall_ms"`
	TuplesIn     int64   `json:"tuples_in"`
	TuplesOut    int64   `json:"tuples_out"`
	PunctsOut    int64   `json:"puncts_out"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	Spans        int64   `json:"spans"`
	PunctSpans   int64   `json:"punct_spans"`
	TupleSpans   int64   `json:"tuple_spans"`
	SampledIn    int64   `json:"sampled_in"`
	DroppedIn    int64   `json:"dropped_in"`
	OverheadPct  float64 `json:"overhead_pct"` // vs the detached cell

	// kinds holds the per-kind span counts, indexed by span.Kind. Test
	// detail (the reconciliation test needs interleaving-independent
	// kinds like punct_arrive/punct_emit); not part of the JSON report.
	kinds []int64
}

// Bench7 is the full tracing-overhead report.
type Bench7 struct {
	Note  string       `json:"note"`
	Seed  uint64       `json:"seed"`
	Batch int          `json:"batch"`
	Cells []Bench7Cell `json:"cells"`
}

// Bench7Modes is the sweep: detached baseline, the production sampling
// rate, and every tuple traced. SampleEvery 0 means no tracer attached.
var Bench7Modes = []struct {
	Mode        string
	SampleEvery int
}{
	{"detached", 0},
	{"sampled_64", 64},
	{"full", 1},
}

// bench7Once runs one tracing mode over the bench6 live pipeline.
func bench7Once(rc RunConfig, batch int, sampleEvery int) (Bench7Cell, error) {
	arrs, _, err := symmetricWorkload(rc, defShort, 50)
	if err != nil {
		return Bench7Cell{}, err
	}
	var itemsA, itemsB []stream.Item
	for _, a := range arrs {
		if a.Port == 0 {
			itemsA = append(itemsA, a.Item)
		} else {
			itemsB = append(itemsB, a.Item)
		}
	}
	p := exec.NewPipeline()
	p.BatchSize = batch
	var spans *span.JSONL
	var sampler *span.Sampler
	if sampleEvery > 0 {
		spans = span.NewJSONL(io.Discard)
		sampler = span.NewSampler(sampleEvery)
		p.Obs = obs.NewInstrSpans(nil, nil, spans, "exec")
		p.SpanSampler = sampler
	}
	srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	if spans != nil {
		cfg.Instr = obs.NewInstrSpans(nil, nil, spans, "pjoin")
	}
	pj, err := core.New(cfg, out)
	if err != nil {
		return Bench7Cell{}, err
	}
	if err := p.Spawn(pj, srcA, srcB); err != nil {
		return Bench7Cell{}, err
	}
	p.Sink(out)
	p.SourceItems(srcA, itemsA, false)
	p.SourceItems(srcB, itemsB, false)
	start := time.Now()
	if err := p.Run(context.Background()); err != nil {
		return Bench7Cell{}, err
	}
	wall := time.Since(start)
	m := pj.Metrics()
	in := m.TuplesIn[0] + m.TuplesIn[1]
	cell := Bench7Cell{
		SampleEvery:  sampleEvery,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		TuplesIn:     in,
		TuplesOut:    m.TuplesOut,
		PunctsOut:    m.PunctsOut,
		TuplesPerSec: float64(in) / wall.Seconds(),
	}
	if spans != nil {
		if err := spans.Flush(); err != nil {
			return Bench7Cell{}, err
		}
		counts := spans.Counts()
		cell.kinds = counts[:]
		for k, c := range counts {
			cell.Spans += c
			switch {
			case span.Kind(k).IsPunct():
				cell.PunctSpans += c
			case span.Kind(k).IsTuple():
				cell.TupleSpans += c
			}
		}
		cell.SampledIn = sampler.Sampled()
		cell.DroppedIn = sampler.Dropped()
	}
	return cell, nil
}

// RunBench7 runs the tracing-overhead sweep at batch 256 (or rc.Batch
// when set). progress (optional) receives one line per round.
//
// The sweep is an A/B ratio against the detached cell, so rep order
// matters more than rep count: running each mode's reps back-to-back
// lets the baseline and a traced mode land in different machine-noise
// regimes, and the "overhead" then measures the machine, not the
// tracer. Reps are therefore interleaved round-robin — every round
// runs all three modes in sequence, the fastest rep per mode wins —
// after one unrecorded detached warm-up rep that absorbs first-run
// costs (page faults, heap growth).
func RunBench7(rc RunConfig, progress io.Writer) (*Bench7, error) {
	if progress == nil {
		progress = io.Discard
	}
	batch := 256
	if rc.Batch > 1 {
		batch = rc.Batch
	}
	rc.Indexed = true
	out := &Bench7{
		Note: "provenance tracing overhead sweep. The bench6 live pipeline (two sources -> " +
			"pjoin -> sink, indexed, eager purge) run detached (no tracer attached; the " +
			"disabled call sites must cost one branch and zero allocations — pinned by the " +
			"AllocsPerRun guards in internal/obs), sampled 1-in-64 (the production rate), and " +
			"full (every tuple traced). Spans are JSONL-encoded to a discarded stream so the " +
			"figure isolates tracing cost from device speed. Punctuation spans are never " +
			"sampled; tuple spans scale with the sampling rate. overhead_pct is the tuples/s " +
			"regression vs detached; the acceptance bar is <= 10% for full tracing at batch " +
			"256 and ~0% sampled. Cells are the fastest of 5 interleaved rounds (all modes " +
			"run once per round); overhead_pct is the median of the per-round paired " +
			"ratios, so machine noise that drifts across rounds cancels instead of " +
			"masquerading as tracer cost.",
		Seed:  rc.seed(),
		Batch: batch,
	}
	reps := 5
	if rc.Quick {
		reps = 1
	}
	if _, err := bench7Once(rc, batch, 0); err != nil { // warm-up, unrecorded
		return nil, fmt.Errorf("bench7: warm-up: %w", err)
	}
	best := make([]Bench7Cell, len(Bench7Modes))
	ratios := make([][]float64, len(Bench7Modes))
	for r := 0; r < reps; r++ {
		fmt.Fprintf(progress, "bench7: round %d/%d...\n", r+1, reps)
		var roundDetached float64
		for i, m := range Bench7Modes {
			cell, err := bench7Once(rc, batch, m.SampleEvery)
			if err != nil {
				return nil, fmt.Errorf("bench7: %s: %w", m.Mode, err)
			}
			if i == 0 {
				roundDetached = cell.TuplesPerSec
			} else if roundDetached > 0 {
				ratios[i] = append(ratios[i], 100*(roundDetached-cell.TuplesPerSec)/roundDetached)
			}
			if r == 0 || cell.WallMs < best[i].WallMs {
				best[i] = cell
			}
		}
	}
	for i, m := range Bench7Modes {
		cell := best[i]
		cell.Mode = m.Mode
		cell.OverheadPct = medianFloat(ratios[i])
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// medianFloat returns the median of vs (0 when empty — the detached
// cell has no ratios).
func medianFloat(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// WriteJSON renders the report as indented JSON.
func (b *Bench7) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
