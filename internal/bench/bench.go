// Package bench defines the reproduction experiments: one runnable
// experiment per table and figure of the paper's evaluation (§4), plus
// ablations for the design choices DESIGN.md calls out. Each experiment
// generates its workload with internal/gen, runs the operators under the
// cost-model simulator (internal/sim), and reports the same series the
// paper's chart plots.
package bench

import (
	"fmt"
	"io"
	"sort"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/joinbase"
	"pjoin/internal/metrics"
	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/sim"
	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/xjoin"
)

// RunConfig controls an experiment run.
type RunConfig struct {
	// Seed selects the workload randomness (default 1).
	Seed uint64
	// Duration overrides the experiment's default virtual horizon.
	Duration stream.Time
	// Quick shortens the run for tests and smoke benches.
	Quick bool
	// Shards overrides the shard counts of the scaling experiments
	// (default 1, 2, 4, 8).
	Shards []int
	// Tracer, when set, receives trace events from every operator the
	// experiment builds (pjoinbench -trace).
	Tracer obs.Tracer
	// Live, when set, samples every operator's live gauges on its tick
	// (pjoinbench -live). Operators register gauges under distinct names,
	// so one sampler serves a whole experiment.
	Live *obs.Live
	// Indexed runs the joins with the key-grouped state index enabled.
	// The default (false) keeps the paper-reproduction figures in the
	// pre-index regime: probes and purge runs scan buckets and the cost
	// model prices that scanning — the physics the paper's shapes
	// (XJoin's declining rate, the purge sweet spot) are made of. The
	// indexed runs produce the same TuplesOut with far less work
	// examined; `pjoinbench -bench3` records both so the saving is
	// visible per experiment. The wall-clock scaling experiments always
	// use the indexed path.
	Indexed bool
	// Work, when set, collects each simulated operator's final metrics
	// (pjoinbench -bench3).
	Work *WorkLog
	// DiskChunkKB, when positive, runs every operator's disk passes as
	// incremental background tasks with this per-step read budget in
	// KiB (core.Config.DiskChunkBytes). 0 keeps passes blocking.
	DiskChunkKB int
	// SpillCacheMB, when positive, wraps each operator's spill stores in
	// an LRU block cache of this many MiB (store.CachedSpill), so hot
	// spilled partitions are re-joined from memory.
	SpillCacheMB int
	// Batch, when > 1, selects exec-level batch delivery for the
	// wall-clock pipeline measurements (pjoinbench -batch); the simulated
	// reproduction figures always run per item — the paper's regime.
	Batch int
	// BatchLingerMs bounds how long a tuple may wait in an edge buffer
	// before its batch is cut (pjoinbench -batch-linger-ms). 0 flushes on
	// every emit. Only meaningful with Batch > 1.
	BatchLingerMs int
}

// WorkRow is one simulated operator run's final work counters.
type WorkRow struct {
	Op string
	M  joinbase.Metrics
}

// WorkLog accumulates the WorkRows of one experiment run in simulate
// order.
type WorkLog struct {
	Rows []WorkRow
}

// instr builds the observability handle for one operator instance; nil
// (free to carry) when the run has neither tracer nor sampler.
func (rc RunConfig) instr(name string) *obs.Instr {
	return obs.NewInstr(rc.Tracer, rc.Live, name)
}

func (rc RunConfig) shardCounts() []int {
	if len(rc.Shards) > 0 {
		return rc.Shards
	}
	return []int{1, 2, 4, 8}
}

func (rc RunConfig) seed() uint64 {
	if rc.Seed == 0 {
		return 1
	}
	return rc.Seed
}

func (rc RunConfig) horizon(def stream.Time) stream.Time {
	if rc.Duration > 0 {
		return rc.Duration
	}
	if rc.Quick {
		return def / 10
	}
	return def
}

// Report is an experiment's outcome: chart series (what the paper's
// figure plots) plus a summary table.
type Report struct {
	ID     string
	Title  string
	Paper  string // the shape the paper reports
	Series []metrics.Series
	Rows   [][]string
	Notes  []string
}

// Render writes the report (table, chart, notes) to w.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.Paper != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n\n", r.Paper); err != nil {
			return err
		}
	}
	if len(r.Rows) > 0 {
		if err := metrics.Table(w, r.Rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if len(r.Series) > 0 {
		if err := metrics.Chart(w, 72, 16, r.Series...); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(RunConfig) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q; try one of %v", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// --- shared run helpers ---

// pjoinFor builds a PJoin over the synthetic schemas with the given
// purge threshold (1 = eager) and otherwise experiment-default settings.
// name identifies the instance in traces and live-gauge series; it must
// be unique within one experiment run.
func pjoinFor(rc RunConfig, name string, purge int, mutate func(*core.Config)) (*core.PJoin, error) {
	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
		Instr: rc.instr(name),
	}
	cfg.Thresholds.Purge = purge
	cfg.DisablePropagation = true // most experiments measure join-only behaviour
	cfg.DisableStateIndex = !rc.Indexed
	cfg.DiskChunkBytes = rc.DiskChunkKB << 10
	cfg.SpillA, cfg.SpillB = rc.spillPair()
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg, &op.Collector{})
}

// spillPair builds the spill stores for one operator: plain in-memory
// stores, wrapped in an LRU block cache when the run asks for one.
func (rc RunConfig) spillPair() (store.SpillStore, store.SpillStore) {
	if rc.SpillCacheMB <= 0 {
		return nil, nil // operator defaults (plain MemSpill)
	}
	capBytes := int64(rc.SpillCacheMB) << 20
	return store.NewCachedSpill(store.NewMemSpill(), capBytes),
		store.NewCachedSpill(store.NewMemSpill(), capBytes)
}

func xjoinFor(rc RunConfig) (*xjoin.XJoin, error) {
	cfg := xjoin.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
		Instr:             rc.instr("xjoin"),
		DisableStateIndex: !rc.Indexed,
		DiskChunkBytes:    rc.DiskChunkKB << 10,
	}
	cfg.SpillA, cfg.SpillB = rc.spillPair()
	return xjoin.New(cfg, &op.Collector{})
}

// simulate runs the join over the workload with default costs and a
// sampling rate that yields a readable chart, logging the operator's
// final work counters when the run collects them (rc.Work).
func (rc RunConfig) simulate(j sim.MeteredJoin, arrs []gen.Arrival, horizon stream.Time) (*sim.Result, error) {
	sampleEvery := horizon / 60
	if sampleEvery < stream.Millisecond {
		sampleEvery = stream.Millisecond
	}
	res, err := sim.Run(j, arrs, sim.Config{SampleEvery: sampleEvery})
	if err == nil && rc.Work != nil {
		rc.Work.Rows = append(rc.Work.Rows, WorkRow{Op: j.Name(), M: res.Final})
	}
	return res, err
}

// stateSeries extracts the join-state-size-over-time series (the y axis
// of the paper's memory-overhead figures).
func stateSeries(name string, res *sim.Result) metrics.Series {
	s := metrics.Series{Name: name}
	for _, p := range res.Samples {
		s.Add(float64(p.T)/1e6, float64(p.StateTuples))
	}
	return s
}

// outputSeries extracts the cumulative-output-tuples series (the y axis
// of the paper's output-rate figures).
func outputSeries(name string, res *sim.Result) metrics.Series {
	s := metrics.Series{Name: name}
	for _, p := range res.Samples {
		s.Add(float64(p.T)/1e6, float64(p.TuplesOut))
	}
	return s
}

// punctOutSeries extracts the cumulative propagated-punctuation series
// (Fig. 14's y axis).
func punctOutSeries(name string, res *sim.Result) metrics.Series {
	s := metrics.Series{Name: name}
	for _, p := range res.Samples {
		s.Add(float64(p.T)/1e6, float64(p.PunctsOut))
	}
	return s
}

// symmetricWorkload builds the standard §4 workload: both streams at
// 2 ms mean tuple inter-arrival, punctuations every punctMean tuples.
func symmetricWorkload(rc RunConfig, def stream.Time, punctMean float64) ([]gen.Arrival, stream.Time, error) {
	horizon := rc.horizon(def)
	arrs, err := gen.Synthetic(gen.Config{
		Seed:     rc.seed(),
		Duration: horizon,
		A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctMean},
		B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctMean},
	})
	return arrs, horizon, err
}

// asymmetricWorkload builds the §4.3 workload: A punctuates every
// punctA tuples with per-key constant punctuations; B punctuates every
// punctB tuples with batched range punctuations, so a slower B rate
// means coarser punctuations (not an unbounded backlog) — see
// gen.SideSpec.Batched.
func asymmetricWorkload(rc RunConfig, def stream.Time, punctA, punctB float64, window int) ([]gen.Arrival, stream.Time, error) {
	horizon := rc.horizon(def)
	arrs, err := gen.Synthetic(gen.Config{
		Seed:       rc.seed(),
		Duration:   horizon,
		WindowKeys: window,
		A:          gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctA},
		B:          gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctB, Batched: true},
	})
	return arrs, horizon, err
}

// simJoin is the operator contract the experiment helpers drive.
type simJoin = sim.MeteredJoin

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }
