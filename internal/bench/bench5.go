package bench

// This file implements the incremental-disk-join latency sweep behind
// `pjoinbench -bench5` (BENCH_5.json). BENCH_4 exposed the cost of
// under-punctuating: at sparse punctuation (mean 160 tuples) the state
// outgrows the 32 KiB memory threshold, results ride blocking disk
// passes, and the result-latency tail stretches to seconds — the
// operator stalls for a whole pass while arrivals queue. This sweep
// measures the fix: the same workload with the disk join running as an
// incremental background task (Config.DiskChunkBytes), crossed over
// per-step chunk budgets, in both state regimes, with the spill stores
// wrapped in an LRU block cache (store.CachedSpill). The chunk budget
// bounds how long any single scheduling step can occupy the operator,
// so the latency tail is set by pass *progress rate* instead of pass
// *duration*; the cache absorbs re-reads of hot spilled partitions, and
// its hit ratio is reported per cell. Chunk budget 0 is the blocking
// baseline. Result multisets are invariant across every cell of one
// rate (the equivalence tests prove it; the sweep re-checks TuplesOut).

import (
	"encoding/json"
	"fmt"
	"io"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/sim"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// Bench5Cell is one (punct rate, regime, chunk budget) measurement.
type Bench5Cell struct {
	// ChunkKB is the per-step disk read budget in KiB; 0 = blocking.
	ChunkKB       int        `json:"chunk_kb"`
	TuplesOut     int64      `json:"tuples_out"`
	PunctsOut     int64      `json:"puncts_out"`
	DiskPasses    int64      `json:"disk_passes"`
	DiskChunks    int64      `json:"disk_chunks"`
	SpilledTuples int64      `json:"spilled_tuples"`
	ResultLatency Bench4Dist `json:"result_latency"`
	// Cache behaviour: lookup counters of the two states' block caches
	// and the post-cache spill traffic (only what the cache didn't
	// absorb is charged by the simulator).
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	SpillReadOps   int64   `json:"spill_read_ops"`
	SpillBytesRead int64   `json:"spill_bytes_read"`
}

// Bench5Rate is one punctuation inter-arrival setting swept over chunk
// budgets in both state regimes.
type Bench5Rate struct {
	PunctMean int          `json:"punct_mean"`
	Scan      []Bench5Cell `json:"scan"`
	Indexed   []Bench5Cell `json:"indexed"`
}

// Bench5 is the full incremental-disk-join report.
type Bench5 struct {
	Note  string       `json:"note"`
	Seed  uint64       `json:"seed"`
	Rates []Bench5Rate `json:"rates"`
}

// Bench5Rates is the punctuation sweep: the moderate setting where
// memory mostly keeps up, and BENCH_4's sparse setting where the
// blocking disk join stalled for ~2 virtual seconds.
var Bench5Rates = []int{40, 160}

// Bench5ChunkKBs is the chunk-budget sweep (KiB per step; 0 = blocking
// baseline).
var Bench5ChunkKBs = []int{0, 16, 64, 256}

// bench5SpillCacheMB is the block-cache budget per spill store.
const bench5SpillCacheMB = 4

func bench5Cell(rc RunConfig, punctMean, chunkKB int, indexed bool) (Bench5Cell, error) {
	horizon := rc.horizon(defShort)
	arrs, err := gen.Synthetic(gen.Config{
		Seed:     rc.seed(),
		Duration: horizon,
		A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: float64(punctMean)},
		B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: float64(punctMean)},
	})
	if err != nil {
		return Bench5Cell{}, err
	}
	capBytes := int64(bench5SpillCacheMB) << 20
	spillA := store.NewCachedSpill(store.NewMemSpill(), capBytes)
	spillB := store.NewCachedSpill(store.NewMemSpill(), capBytes)
	rc.Indexed = indexed
	name := fmt.Sprintf("pjoin-pm%d-c%dk", punctMean, chunkKB)
	pj, err := pjoinFor(rc, name, 1, func(c *core.Config) {
		c.DisablePropagation = false
		c.Thresholds.PropagateCount = 1 // propagate as soon as the state allows
		c.Thresholds.MemoryBytes = 32 << 10
		c.DiskChunkBytes = chunkKB << 10
		c.SpillA, c.SpillB = spillA, spillB
	})
	if err != nil {
		return Bench5Cell{}, err
	}
	// Unlike bench4, spill traffic is charged (sim.Config.Spills): a
	// blocking pass's re-reads land on the virtual clock, so the cache's
	// absorbed reads are visible in the latency column, not only in the
	// hit ratio. CachedSpill.Stats reports the inner store's traffic —
	// exactly the reads the cache did not absorb.
	sampleEvery := horizon / 60
	if sampleEvery < stream.Millisecond {
		sampleEvery = stream.Millisecond
	}
	res, err := sim.Run(pj, arrs, sim.Config{
		SampleEvery: sampleEvery,
		Spills:      []store.SpillStore{spillA, spillB},
	})
	if err != nil {
		return Bench5Cell{}, err
	}
	if rc.Work != nil {
		rc.Work.Rows = append(rc.Work.Rows, WorkRow{Op: pj.Name(), M: res.Final})
	}
	lat := pj.Latencies()
	csA, csB := spillA.CacheStats(), spillB.CacheStats()
	merged := store.CacheStats{
		Hits:      csA.Hits + csB.Hits,
		Misses:    csA.Misses + csB.Misses,
		Evictions: csA.Evictions + csB.Evictions,
	}
	return Bench5Cell{
		ChunkKB:        chunkKB,
		TuplesOut:      res.Final.TuplesOut,
		PunctsOut:      res.Final.PunctsOut,
		DiskPasses:     res.Final.DiskPasses,
		DiskChunks:     res.Final.DiskChunks,
		SpilledTuples:  res.Final.SpilledTuples,
		ResultLatency:  bench4Dist(lat.Result),
		CacheHitRatio:  merged.HitRatio(),
		CacheHits:      merged.Hits,
		CacheMisses:    merged.Misses,
		CacheEvictions: merged.Evictions,
		SpillReadOps:   res.IO.ReadOps,
		SpillBytesRead: res.IO.BytesRead,
	}, nil
}

// RunBench5 runs the chunk-budget sweep at the given workload seed.
// progress (optional) receives one line per cell.
func RunBench5(seed uint64, quick bool, progress io.Writer) (*Bench5, error) {
	if progress == nil {
		progress = io.Discard
	}
	out := &Bench5{
		Note: "incremental disk join sweep over BENCH_4's workload (eager purge, " +
			"PropagateCount=1, 32KiB memory threshold), spill stores behind a " +
			fmt.Sprintf("%dMiB LRU block cache, spill I/O charged by the simulator. ", bench5SpillCacheMB) +
			"chunk_kb = per-step disk read budget (0 = blocking pass). " +
			"result latency is virtual-time ns; tuples_out must agree across every " +
			"cell of one rate (chunking reschedules left-over joins, never changes them). " +
			"The blocking cell reproduces BENCH_4's stall at punct-mean 160; the " +
			"chunked cells bound it by pass progress rate instead of pass duration.",
		Seed: seed,
	}
	rc := RunConfig{Seed: seed, Quick: quick}
	for _, pm := range Bench5Rates {
		rate := Bench5Rate{PunctMean: pm}
		for _, ckb := range Bench5ChunkKBs {
			fmt.Fprintf(progress, "punct-mean %d chunk %dKiB: scan + indexed runs...\n", pm, ckb)
			scan, err := bench5Cell(rc, pm, ckb, false)
			if err != nil {
				return nil, fmt.Errorf("bench5: punct-mean %d chunk %dKiB (scan): %w", pm, ckb, err)
			}
			indexed, err := bench5Cell(rc, pm, ckb, true)
			if err != nil {
				return nil, fmt.Errorf("bench5: punct-mean %d chunk %dKiB (indexed): %w", pm, ckb, err)
			}
			rate.Scan = append(rate.Scan, scan)
			rate.Indexed = append(rate.Indexed, indexed)
		}
		out.Rates = append(out.Rates, rate)
	}
	return out, nil
}

// WriteJSON renders the report as indented JSON.
func (b *Bench5) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
