package bench

import (
	"strconv"
	"strings"
	"testing"

	"pjoin/internal/stream"
)

// msT is one millisecond of stream time.
const msT = stream.Millisecond

// quick runs an experiment at a reduced horizon; shapes must already
// hold there (the full horizons only sharpen them).
func quick(t *testing.T, id string) *Report {
	t.Helper()
	return runAt(t, id, RunConfig{Quick: true})
}

// runAt runs an experiment with an explicit config; used where the
// quick horizon is too short for the effect to be established.
func runAt(t *testing.T, id string, rc RunConfig) *Report {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID == "" || rep.Title == "" {
		t.Error("report missing identity")
	}
	return rep
}

// cell parses a numeric table cell.
func cell(t *testing.T, rep *Report, row, col int) float64 {
	t.Helper()
	if row >= len(rep.Rows) || col >= len(rep.Rows[row]) {
		t.Fatalf("no cell (%d,%d) in %v", row, col, rep.Rows)
	}
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, rep.Rows[row][col])
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "table1",
		"abl-dropfly", "abl-index", "abl-purge", "abl-compact", "ext-window",
		"scale1",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestExperimentsSorted(t *testing.T) {
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if exps[i-1].ID > exps[i].ID {
			t.Fatal("Experiments() not sorted")
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rep := quick(t, "fig5")
	pjAvg, xjAvg := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
	if pjAvg*4 > xjAvg {
		t.Errorf("PJoin avg state %.1f not well below XJoin %.1f", pjAvg, xjAvg)
	}
	// Same result counts: the purge never loses results.
	if rep.Rows[1][4] != rep.Rows[2][4] {
		t.Errorf("result counts differ: %s vs %s", rep.Rows[1][4], rep.Rows[2][4])
	}
}

func TestFig6Shape(t *testing.T) {
	rep := quick(t, "fig6")
	s10, s20, s30 := cell(t, rep, 1, 1), cell(t, rep, 2, 1), cell(t, rep, 3, 1)
	if !(s10 < s20 && s20 < s30) {
		t.Errorf("state not ordered by inter-arrival: %g %g %g", s10, s20, s30)
	}
}

func TestFig7Shape(t *testing.T) {
	rep := runAt(t, "fig7", RunConfig{Duration: 60_000 * msT})
	// PJoin 2nd-half rate close to 1st half; XJoin clearly declining.
	p1, p2 := cell(t, rep, 1, 1), cell(t, rep, 1, 2)
	x1, x2 := cell(t, rep, 2, 1), cell(t, rep, 2, 2)
	if p2 < p1*0.7 {
		t.Errorf("PJoin rate not steady: %g -> %g", p1, p2)
	}
	if x2 > x1*0.85 {
		t.Errorf("XJoin rate not declining: %g -> %g", x1, x2)
	}
	if rep.Rows[1][4] != rep.Rows[2][4] {
		t.Error("result counts differ")
	}
}

func TestFig8Shape(t *testing.T) {
	rep := quick(t, "fig8")
	eager, lazy := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
	if eager >= lazy {
		t.Errorf("eager purge state %g should be below lazy %g", eager, lazy)
	}
}

func TestFig9Shape(t *testing.T) {
	rep := quick(t, "fig9")
	r1, r100 := cell(t, rep, 1, 2), cell(t, rep, 2, 2)
	r400, r800 := cell(t, rep, 3, 2), cell(t, rep, 4, 2)
	if !(r1 < r100) {
		t.Errorf("eager purge should be slower than threshold 100: %g vs %g", r1, r100)
	}
	if !(r100 > r400 && r400 > r800) {
		t.Errorf("rates should fall beyond the sweet spot: %g %g %g", r100, r400, r800)
	}
	// Memory ordered the other way.
	m1, m800 := cell(t, rep, 1, 3), cell(t, rep, 4, 3)
	if m1 >= m800 {
		t.Errorf("state should grow with threshold: %g vs %g", m1, m800)
	}
}

func TestFig10Shape(t *testing.T) {
	rep := quick(t, "fig10")
	s10, s20, s40 := cell(t, rep, 1, 1), cell(t, rep, 2, 1), cell(t, rep, 3, 1)
	if !(s10 < s40 && s20 < s40) {
		t.Errorf("state not increasing with B inter-arrival: %g %g %g", s10, s20, s40)
	}
	// Drop-on-the-fly counts grow with the rate gap.
	d10, d40 := cell(t, rep, 1, 4), cell(t, rep, 3, 4)
	if d40 <= d10 {
		t.Errorf("dropped-on-fly should grow with asymmetry: %g vs %g", d10, d40)
	}
}

func TestFig11Shape(t *testing.T) {
	rep := runAt(t, "fig11", RunConfig{Duration: 30_000 * msT})
	r10, r40 := cell(t, rep, 1, 2), cell(t, rep, 3, 2)
	if r40 <= r10 {
		t.Errorf("slower punctuation should give higher output: %g vs %g", r10, r40)
	}
	p10, p40 := cell(t, rep, 1, 3), cell(t, rep, 3, 3)
	if p40 >= p10 {
		t.Errorf("slower punctuation should scan less: %g vs %g", p10, p40)
	}
}

func TestFig12And13Shape(t *testing.T) {
	out := runAt(t, "fig12", RunConfig{Duration: 10_000 * msT})
	rP1, rLazy, rX := cell(t, out, 1, 2), cell(t, out, 2, 2), cell(t, out, 3, 2)
	if rP1 >= rX {
		t.Errorf("PJoin-1 (%g) should lag XJoin (%g) here", rP1, rX)
	}
	if rLazy < rX {
		t.Errorf("lazy PJoin (%g) should match or beat XJoin (%g)", rLazy, rX)
	}
	mem := runAt(t, "fig13", RunConfig{Duration: 10_000 * msT})
	mP1, mLazy, mX := cell(t, mem, 1, 1), cell(t, mem, 2, 1), cell(t, mem, 3, 1)
	if mP1*2 > mX || mLazy*2 > mX {
		t.Errorf("PJoin states (%g, %g) not well below XJoin (%g)", mP1, mLazy, mX)
	}
}

func TestFig14Shape(t *testing.T) {
	rep := quick(t, "fig14")
	in, out := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
	if out == 0 {
		t.Fatal("no punctuations propagated")
	}
	// In the ideal aligned case nearly everything propagates by EOS.
	if out < in*0.95 {
		t.Errorf("propagated %g of %g punctuations", out, in)
	}
	// Steady output: the cumulative series should be roughly linear —
	// the last quarter must contain some propagation activity.
	s := rep.Series[0]
	if s.Len() < 8 {
		t.Fatal("series too short")
	}
	q3 := s.Points[s.Len()*3/4].V
	if s.Last() <= q3 {
		t.Error("propagation stalled in the last quarter")
	}
}

func TestTable1(t *testing.T) {
	rep := quick(t, "table1")
	joined := ""
	for _, r := range rep.Rows {
		joined += strings.Join(r, " ") + "\n"
	}
	for _, want := range []string{"state-purge", "state-relocation", "index-build", "punctuation-propagation", "disk-join"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table1 missing %s:\n%s", want, joined)
		}
	}
}

func TestAblationDropFly(t *testing.T) {
	rep := quick(t, "abl-dropfly")
	dropped := cell(t, rep, 1, 2)
	if dropped == 0 {
		t.Error("drop-on-the-fly never triggered")
	}
	if rep.Rows[1][4] != rep.Rows[2][4] {
		t.Error("ablation changed the result set")
	}
}

func TestAblationPurge(t *testing.T) {
	rep := quick(t, "abl-purge")
	on, off := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
	if on*2 > off {
		t.Errorf("disabling purge should blow up the state: %g vs %g", on, off)
	}
}

func TestAblationCompact(t *testing.T) {
	rep := quick(t, "abl-compact")
	off, on := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
	if on*10 > off {
		t.Errorf("compaction left %g of %g entries", on, off)
	}
	if rep.Rows[1][3] != rep.Rows[2][3] {
		t.Error("compaction changed the result count")
	}
}

func TestAblationIndex(t *testing.T) {
	rep := quick(t, "abl-index")
	if rep.Rows[1][1] != rep.Rows[2][1] {
		t.Errorf("eager and lazy index build must propagate the same punctuations: %v", rep.Rows)
	}
}

func TestExtensionWindowShape(t *testing.T) {
	rep := quick(t, "ext-window")
	punctOnly, windowOnly, both := cell(t, rep, 1, 1), cell(t, rep, 2, 1), cell(t, rep, 3, 1)
	if both > punctOnly || both > windowOnly {
		t.Errorf("combined state %g should be <= each single mechanism (%g, %g)",
			both, punctOnly, windowOnly)
	}
	// The two windowed variants must agree on results (same join
	// semantics); the punctuation-only variant joins across the window.
	if rep.Rows[2][3] != rep.Rows[3][3] {
		t.Errorf("windowed variants disagree: %v", rep.Rows)
	}
}

func TestReportRender(t *testing.T) {
	rep := quick(t, "fig8")
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig8", "paper:", "PJoin-1", "PJoin-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSeedChangesWorkloadNotShape(t *testing.T) {
	e, _ := Get("fig6")
	r1, err := e.Run(RunConfig{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s10, s20, s30 := cell(t, r1, 1, 1), cell(t, r1, 2, 1), cell(t, r1, 3, 1)
	if !(s10 < s20 && s20 < s30) {
		t.Errorf("fig6 ordering lost at seed 7: %g %g %g", s10, s20, s30)
	}
}

// The headline shapes must hold for every seed, not just the default:
// fig5's memory gap and fig12's three-way ordering are re-checked on
// two extra seeds.
func TestShapesRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{2, 3} {
		rep := runAt(t, "fig5", RunConfig{Quick: true, Seed: seed})
		pj, xj := cell(t, rep, 1, 1), cell(t, rep, 2, 1)
		if pj*4 > xj {
			t.Errorf("seed %d: fig5 gap lost: %g vs %g", seed, pj, xj)
		}
		out := runAt(t, "fig12", RunConfig{Duration: 10_000 * msT, Seed: seed})
		rP1, rLazy, rX := cell(t, out, 1, 2), cell(t, out, 2, 2), cell(t, out, 3, 2)
		if !(rP1 < rX && rX < rLazy) {
			t.Errorf("seed %d: fig12 ordering lost: %g %g %g", seed, rP1, rX, rLazy)
		}
	}
}

// TestScale1Shape asserts the tentpole acceptance criterion: 4 shards
// reach at least 2x the single-instance model throughput, and more
// shards never reduce it. Wall-clock columns are machine-dependent and
// not asserted; the model speedup (column 5) is deterministic.
func TestScale1Shape(t *testing.T) {
	rep := quick(t, "scale1")
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want header + 4 shard counts", len(rep.Rows))
	}
	s1 := cell(t, rep, 1, 5)
	s2 := cell(t, rep, 2, 5)
	s4 := cell(t, rep, 3, 5)
	s8 := cell(t, rep, 4, 5)
	if s1 != 1.0 {
		t.Errorf("single-shard speedup = %.2f, want 1.00", s1)
	}
	if s4 < 2.0 {
		t.Errorf("4-shard model speedup = %.2f, want >= 2x single instance", s4)
	}
	if !(s1 < s2 && s2 < s4 && s4 < s8) {
		t.Errorf("speedup not monotone: %v %v %v %v", s1, s2, s4, s8)
	}
	// Routing balance: hash partitioning keeps skew near 1.
	for row := 1; row <= 4; row++ {
		if skew := cell(t, rep, row, 6); skew > 1.5 {
			t.Errorf("row %d: shard skew %.2f too high", row, skew)
		}
	}
	// The custom shard sweep is honoured.
	rep2 := runAt(t, "scale1", RunConfig{Quick: true, Shards: []int{1, 3}})
	if len(rep2.Rows) != 3 {
		t.Fatalf("custom sweep rows = %d, want header + 2", len(rep2.Rows))
	}
	if got := cell(t, rep2, 2, 0); got != 3 {
		t.Errorf("custom sweep shard count = %v, want 3", got)
	}
}
