package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBench5QuickRun checks the chunk-budget sweep's structural
// invariants on the quick horizon: result counts invariant across chunk
// budgets and regimes at every rate (scheduling never changes results),
// chunked cells actually chunking, the cache observing lookups whenever
// passes ran, and — the headline — the sparse-punctuation latency tail
// of every chunked cell staying below the blocking baseline's stall.
func TestBench5QuickRun(t *testing.T) {
	rep, err := RunBench5(1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rates) != len(Bench5Rates) {
		t.Fatalf("swept %d rates, want %d", len(rep.Rates), len(Bench5Rates))
	}
	for _, r := range rep.Rates {
		if len(r.Scan) != len(Bench5ChunkKBs) || len(r.Indexed) != len(Bench5ChunkKBs) {
			t.Fatalf("punct-mean %d: %d scan / %d indexed cells, want %d",
				r.PunctMean, len(r.Scan), len(r.Indexed), len(Bench5ChunkKBs))
		}
		base := r.Scan[0]
		if base.ChunkKB != 0 {
			t.Fatalf("first cell is chunk %dKiB, want the blocking baseline", base.ChunkKB)
		}
		for i, c := range r.Scan {
			ci := r.Indexed[i]
			t.Logf("pm=%d chunk=%dKiB: scan out=%d max=%.1fms p99=%.1fms passes=%d chunks=%d hit=%.2f | indexed max=%.1fms hit=%.2f",
				r.PunctMean, c.ChunkKB, c.TuplesOut,
				float64(c.ResultLatency.Max)/1e6, float64(c.ResultLatency.P99)/1e6,
				c.DiskPasses, c.DiskChunks, c.CacheHitRatio,
				float64(ci.ResultLatency.Max)/1e6, ci.CacheHitRatio)
			// Chunking and indexing reschedule left-over joins; the results
			// and propagated punctuations must not move.
			if c.TuplesOut != base.TuplesOut || ci.TuplesOut != base.TuplesOut {
				t.Errorf("punct-mean %d chunk %dKiB: TuplesOut scan=%d indexed=%d, want %d",
					r.PunctMean, c.ChunkKB, c.TuplesOut, ci.TuplesOut, base.TuplesOut)
			}
			if c.PunctsOut != base.PunctsOut || ci.PunctsOut != base.PunctsOut {
				t.Errorf("punct-mean %d chunk %dKiB: PunctsOut scan=%d indexed=%d, want %d",
					r.PunctMean, c.ChunkKB, c.PunctsOut, ci.PunctsOut, base.PunctsOut)
			}
			checkDist(t, "result_latency", c.ResultLatency)
			if c.ChunkKB == 0 && c.DiskChunks != 0 {
				t.Errorf("punct-mean %d: blocking cell executed %d chunks", r.PunctMean, c.DiskChunks)
			}
			if c.ChunkKB > 0 && c.DiskPasses > 0 && c.DiskChunks < c.DiskPasses {
				t.Errorf("punct-mean %d chunk %dKiB: %d chunks over %d passes",
					r.PunctMean, c.ChunkKB, c.DiskChunks, c.DiskPasses)
			}
			// Any run with disk passes went through the block cache.
			if c.DiskPasses > 0 && c.CacheHits+c.CacheMisses == 0 {
				t.Errorf("punct-mean %d chunk %dKiB: passes ran but the cache saw no lookups",
					r.PunctMean, c.ChunkKB)
			}
		}
	}
	// The headline claim on the sparse rate: the blocking baseline
	// stalls (its max result latency is set by whole-pass duration), and
	// every chunked budget keeps the tail strictly below it.
	sparse := rep.Rates[len(rep.Rates)-1]
	blockMax := sparse.Scan[0].ResultLatency.Max
	for _, c := range sparse.Scan[1:] {
		if c.ResultLatency.Max >= blockMax {
			t.Errorf("punct-mean %d chunk %dKiB: max latency %dns not below blocking %dns",
				sparse.PunctMean, c.ChunkKB, c.ResultLatency.Max, blockMax)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Bench5
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Rates) != len(rep.Rates) {
		t.Errorf("round-trip lost rates: %d vs %d", len(back.Rates), len(rep.Rates))
	}
}
