package bench

import (
	"fmt"
	"testing"
)

// TestBench6ExecCellsReconcile runs the bench6 live pipeline at
// per-item, batched-linger-0 and batched-linger-1ms in BOTH index
// regimes and checks the invariants the sweep's numbers rest on:
// identical outputs across cells (batching must not change what the
// join computes), punctuation-delay histogram count == propagated
// punctuation count (every propagation is measured), batch accounting
// only on the batched cells, and the linger-0 punctuation p99 within
// the documented 2× of per-item (punctuations cut batches, so
// latency-neutral batching stays latency-neutral). The deterministic
// halves of the latency bound live in internal/exec
// (TestPunctuationCutsBatch, TestLingerBoundsTupleDelay); this test
// covers the wall-clock reconciliation across regimes.
func TestBench6ExecCellsReconcile(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		t.Run(fmt.Sprintf("indexed=%v", indexed), func(t *testing.T) {
			rc := RunConfig{Seed: 1, Quick: true, Indexed: indexed}
			perItem, err := bench6Exec(rc, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			cells := []Bench6Exec{perItem}
			for _, c := range []struct{ batch, lingerMs int }{{256, 0}, {256, 1}} {
				cell, err := bench6Exec(rc, c.batch, c.lingerMs)
				if err != nil {
					t.Fatal(err)
				}
				cells = append(cells, cell)
			}
			for _, c := range cells {
				name := fmt.Sprintf("batch=%d linger=%dms", c.Batch, c.LingerMs)
				if c.TuplesIn != perItem.TuplesIn || c.TuplesOut != perItem.TuplesOut ||
					c.PunctsOut != perItem.PunctsOut {
					t.Errorf("%s: in/out/puncts = %d/%d/%d, per-item %d/%d/%d",
						name, c.TuplesIn, c.TuplesOut, c.PunctsOut,
						perItem.TuplesIn, perItem.TuplesOut, perItem.PunctsOut)
				}
				if c.PunctDelay.Count != c.PunctsOut {
					t.Errorf("%s: PunctDelay.Count=%d, PunctsOut=%d — propagation not fully measured",
						name, c.PunctDelay.Count, c.PunctsOut)
				}
				if c.Batch > 1 {
					if c.Batches <= 0 || c.BatchFillMean < 1 {
						t.Errorf("%s: batches=%d fill=%.2f — batched cell saw no batch accounting",
							name, c.Batches, c.BatchFillMean)
					}
				} else if c.Batches != 0 {
					t.Errorf("per-item cell recorded %d batches", c.Batches)
				}
			}
			// Latency-neutral claim: linger 0 cuts a batch on every emit, so
			// its punctuation-propagation p99 must stay within 2× of the
			// per-item run (plus absolute slack for wall-clock noise — both
			// sides are real scheduler-timed runs).
			const slackNs = 250e6
			b0 := cells[1]
			if float64(b0.PunctDelay.P99) > 2*float64(perItem.PunctDelay.P99)+slackNs {
				t.Errorf("linger-0 punct p99 = %dns, per-item p99 = %dns — batching broke the latency-neutral bound",
					b0.PunctDelay.P99, perItem.PunctDelay.P99)
			}
		})
	}
}
