package bench

import (
	"fmt"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/stream"
)

// Ablation experiments for the design choices DESIGN.md calls out. They
// are not paper figures but quantify what each PJoin mechanism buys.
func init() {
	register(Experiment{ID: "abl-dropfly", Title: "Ablation: drop-on-the-fly on/off (asymmetric rates)", Run: runAblDropFly})
	register(Experiment{ID: "abl-index", Title: "Ablation: eager vs lazy punctuation index building", Run: runAblIndex})
	register(Experiment{ID: "abl-purge", Title: "Ablation: purge disabled (PJoin degenerates to XJoin-like state)", Run: runAblPurge})
	register(Experiment{ID: "abl-compact", Title: "Ablation: punctuation-set compaction on/off", Run: runAblCompact})
	register(Experiment{ID: "ext-window", Title: "Extension (§6): sliding window combined with punctuations", Run: runExtWindow})
}

// runAblDropFly compares PJoin with and without drop-on-the-fly under
// the asymmetric workload where the mechanism matters most (§4.3: "most
// B tuples never become a part of the state").
func runAblDropFly(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "abl-dropfly",
		Title: "Drop-on-the-fly ablation, A=10, B=40",
		Paper: "with the optimisation, tuples already covered by an opposite punctuation never enter the state",
		Rows:  [][]string{{"variant", "avg state", "dropped on fly", "purged", "results"}},
	}
	for _, disable := range []bool{false, true} {
		arrs, horizon, err := asymmetricWorkload(rc, defShort, 10, 40, 4)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-nodrop-%t", disable), 1, func(c *core.Config) { c.DisableDropOnTheFly = disable })
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		name := "drop-on-the-fly"
		if disable {
			name = "no drop-on-the-fly"
		}
		s := stateSeries(name, res)
		report.Series = append(report.Series, s)
		report.Rows = append(report.Rows, []string{
			name, f1(s.Mean()), i64(res.Final.DroppedOnFly), i64(res.Final.Purged), i64(res.Final.TuplesOut),
		})
	}
	return report, nil
}

// runAblIndex compares eager and lazy punctuation index building under
// the propagation workload (§3.5): both propagate everything; eager
// building spreads the scan cost while lazy batches it.
func runAblIndex(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "abl-index",
		Title: "Eager vs lazy index building, aligned punctuations every 40 tuples",
		Paper: "same punctuation output; different index-scan placement",
		Rows:  [][]string{{"variant", "puncts out", "index scans", "done at (ms)"}},
	}
	for _, eager := range []bool{false, true} {
		horizon := rc.horizon(defShort)
		arrs, err := alignedWorkload(rc, horizon)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-eager-%t", eager), 1, func(c *core.Config) {
			c.DisablePropagation = false
			c.Thresholds.PropagateCount = 2
			c.EagerIndex = eager
		})
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		name := "lazy index build"
		if eager {
			name = "eager index build"
		}
		report.Series = append(report.Series, punctOutSeries(name, res))
		report.Rows = append(report.Rows, []string{
			name, i64(res.Final.PunctsOut), i64(res.Final.IndexScanned), f1(float64(res.Done) / 1e6),
		})
	}
	return report, nil
}

// runAblPurge shows that PJoin with purging disabled accumulates state
// like XJoin: the purge rules are what keeps the state bounded.
func runAblPurge(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "abl-purge",
		Title: "Purge ablation, punct inter-arrival 40",
		Paper: "without the purge component the punctuations are useless for memory",
		Rows:  [][]string{{"variant", "avg state", "max state"}},
	}
	for _, disable := range []bool{false, true} {
		arrs, horizon, err := symmetricWorkload(rc, defShort, 40)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-nopurge-%t", disable), 1, func(c *core.Config) { c.DisablePurge = disable })
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		name := "purge enabled"
		if disable {
			name = "purge disabled"
		}
		s := stateSeries(name, res)
		report.Series = append(report.Series, s)
		report.Rows = append(report.Rows, []string{name, f1(s.Mean()), f1(s.Max())})
	}
	if len(report.Series) == 2 {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"state ratio disabled/enabled: %.1fx", report.Series[1].Mean()/report.Series[0].Mean()))
	}
	return report, nil
}

// runAblCompact quantifies punctuation-set compaction (an extension
// beyond the paper): in a long propagation-less run the sets otherwise
// hold one entry per punctuation ever received.
func runAblCompact(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "abl-compact",
		Title: "Punctuation-set compaction, punct inter-arrival 10, no propagation",
		Paper: "compaction collapses per-key constants into ranges; results unchanged",
		Rows:  [][]string{{"variant", "punct set entries (A+B)", "puncts in", "results"}},
	}
	for _, compact := range []bool{false, true} {
		arrs, horizon, err := symmetricWorkload(rc, defShort, 10)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-compact-%t", compact), 1, func(c *core.Config) { c.CompactSets = compact })
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		a, b := pj.PunctSetSizes()
		name := "no compaction"
		if compact {
			name = "compaction"
		}
		report.Series = append(report.Series, outputSeries(name, res))
		report.Rows = append(report.Rows, []string{
			name, fmt.Sprintf("%d", a+b),
			i64(res.Final.PunctsIn[0] + res.Final.PunctsIn[1]),
			i64(res.Final.TuplesOut),
		})
	}
	return report, nil
}

// runExtWindow demonstrates the §6 sliding-window extension: state
// bounds from punctuations alone, from a time window alone, and from
// their combination — the combination is bounded by whichever mechanism
// bites first.
func runExtWindow(rc RunConfig) (*Report, error) {
	report := &Report{
		ID:    "ext-window",
		Title: "Punctuations vs window vs both, punct inter-arrival 40, window 1s",
		Paper: "§6: window invalidation composes with punctuation purge",
		Rows:  [][]string{{"variant", "avg state", "max state", "results"}},
	}
	const window = 1_000 * stream.Millisecond
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"punctuations only", nil},
		{"window only", func(c *core.Config) {
			c.DisablePurge = true
			c.Window = window
		}},
		{"window + punctuations", func(c *core.Config) {
			c.Window = window
		}},
	}
	for vi, v := range variants {
		arrs, horizon, err := symmetricWorkload(rc, defShort, 40)
		if err != nil {
			return nil, err
		}
		pj, err := pjoinFor(rc, fmt.Sprintf("pjoin-v%d", vi), 1, v.mutate)
		if err != nil {
			return nil, err
		}
		res, err := rc.simulate(pj, arrs, horizon)
		if err != nil {
			return nil, err
		}
		st := stateSeries(v.name, res)
		report.Series = append(report.Series, st)
		report.Rows = append(report.Rows, []string{
			v.name, f1(st.Mean()), f1(st.Max()), i64(res.Final.TuplesOut),
		})
	}
	report.Notes = append(report.Notes,
		"window-only results differ from the punctuation variants by design: the window drops pairs wider than 1s")
	return report, nil
}

// alignedWorkload builds the Fig. 14 workload (both sides punctuate the
// same keys in the same order, every 40 tuples).
func alignedWorkload(rc RunConfig, horizon stream.Time) ([]gen.Arrival, error) {
	return gen.Synthetic(gen.Config{
		Seed:               rc.seed(),
		Duration:           horizon,
		A:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		B:                  gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 40},
		AlignedPunctuation: true,
	})
}
