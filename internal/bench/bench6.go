package bench

// This file implements the batched-dataflow sweep behind `pjoinbench
// -bench6` (BENCH_6.json). The batch path exists to amortize per-tuple
// overhead — channel sends, operator wakeups, and repeated hash+lookup
// work for runs of identical keys — without changing what the operator
// computes (the oracle's batched matrix rows are the semantics proof;
// this report is the performance receipt). Two measurements:
//
//   - Probe micro: the BENCH_3 probe workload (1024-occupancy bucket,
//     4 matches on the hot key) probed per item (fresh ProbeMem per
//     call) vs through the seq-guarded memoizing probe
//     (store.ProbeMemCached) over same-key runs of batch length N —
//     one real probe plus N−1 cache hits per batch, the store-level
//     saving a vectorized batch probe realizes. The acceptance bar is
//     ≥ 1.5× per-probe speedup at batch 256.
//
//   - Exec sweep: a live two-source → PJoin → sink pipeline
//     (internal/exec) over the standard symmetric workload, swept over
//     batch size × linger. Reports wall-clock tuples/sec, the
//     punctuation-propagation delay distribution (linger 0 must stay
//     within 2× of per-item — punctuations always cut batches), and the
//     realized batch fill.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/exec"
	"pjoin/internal/gen"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// Bench6Probe is one probe-micro cell: per-probe cost per item vs
// through the memoizing probe over same-key runs of the given length.
type Bench6Probe struct {
	Batch           int     `json:"batch"`
	PerItemNsProbe  float64 `json:"per_item_ns_probe"`
	BatchedNsProbe  float64 `json:"batched_ns_probe"`
	Speedup         float64 `json:"speedup"`
	BatchedAllocsOp int64   `json:"batched_allocs_op"`
}

// Bench6Exec is one live-pipeline cell of the batch × linger sweep.
type Bench6Exec struct {
	Batch         int        `json:"batch"`
	LingerMs      int        `json:"linger_ms"`
	WallMs        float64    `json:"wall_ms"`
	TuplesIn      int64      `json:"tuples_in"`
	TuplesOut     int64      `json:"tuples_out"`
	PunctsOut     int64      `json:"puncts_out"`
	TuplesPerSec  float64    `json:"tuples_per_sec"`
	PunctDelay    Bench4Dist `json:"punct_delay"`
	Batches       int64      `json:"batches"`
	BatchFillMean float64    `json:"batch_fill_mean"`
}

// Bench6 is the full batched-dataflow report.
type Bench6 struct {
	Note  string        `json:"note"`
	Seed  uint64        `json:"seed"`
	Probe []Bench6Probe `json:"probe_micro"`
	Exec  []Bench6Exec  `json:"exec_sweep"`
}

// Bench6Batches is the probe-run / pipeline batch-size sweep (1 = the
// per-item baseline in the exec sweep).
var Bench6Batches = []int{8, 64, 256}

// Bench6ExecCells is the pipeline sweep: per-item baseline, then batch ×
// linger. Linger 0 flushes every Emit (latency-neutral batching), 1 ms
// trades bounded added latency for fill.
var Bench6ExecCells = []struct{ Batch, LingerMs int }{
	{1, 0}, {8, 0}, {8, 1}, {256, 0}, {256, 1},
}

func bench6Probe(n int) (Bench6Probe, error) {
	st, key, err := bench3ProbeState(1024, 4)
	if err != nil {
		return Bench6Probe{}, err
	}
	dst := make([]*store.StoredTuple, 0, 8)
	perItem := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				dst, _ = st.ProbeMem(key, dst[:0])
			}
		}
	})
	var mp store.MemProbe
	batched := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// One batch boundary per run of n: the driver invalidates the
			// memoized probe between batches (joinbase.InvalidateProbeCache),
			// so each run pays one real probe and n−1 cache hits.
			mp.Release()
			for j := 0; j < n; j++ {
				st.ProbeMemCached(key, &mp)
			}
		}
	})
	pi := float64(perItem.NsPerOp()) / float64(n)
	ba := float64(batched.NsPerOp()) / float64(n)
	return Bench6Probe{
		Batch:           n,
		PerItemNsProbe:  pi,
		BatchedNsProbe:  ba,
		Speedup:         pi / ba,
		BatchedAllocsOp: batched.AllocsPerOp(),
	}, nil
}

// bench6Exec measures one exec cell. Full runs repeat the cell and keep
// the fastest rep — these are second-scale wall-clock pipeline runs on
// a shared machine, and best-of-N is the standard way to strip
// scheduler noise and cold-start effects from a throughput figure (the
// output invariants hold on every rep regardless; bench6_test.go pins
// them). Quick runs do one rep.
func bench6Exec(rc RunConfig, batch, lingerMs int) (Bench6Exec, error) {
	reps := 3
	if rc.Quick {
		reps = 1
	}
	var best Bench6Exec
	for r := 0; r < reps; r++ {
		cell, err := bench6ExecOnce(rc, batch, lingerMs)
		if err != nil {
			return Bench6Exec{}, err
		}
		if r == 0 || cell.WallMs < best.WallMs {
			best = cell
		}
	}
	return best, nil
}

func bench6ExecOnce(rc RunConfig, batch, lingerMs int) (Bench6Exec, error) {
	arrs, _, err := symmetricWorkload(rc, defShort, 50)
	if err != nil {
		return Bench6Exec{}, err
	}
	var itemsA, itemsB []stream.Item
	for _, a := range arrs {
		if a.Port == 0 {
			itemsA = append(itemsA, a.Item)
		} else {
			itemsB = append(itemsB, a.Item)
		}
	}
	p := exec.NewPipeline()
	p.BatchSize = batch
	p.BatchLinger = time.Duration(lingerMs) * time.Millisecond
	srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
		AttrA: gen.KeyAttr, AttrB: gen.KeyAttr,
	}
	cfg.Thresholds.Purge = 1          // eager purge: state stays small, per-tuple overhead dominates
	cfg.Thresholds.PropagateCount = 1 // propagate as soon as the state allows
	cfg.DisableStateIndex = !rc.Indexed
	pj, err := core.New(cfg, out)
	if err != nil {
		return Bench6Exec{}, err
	}
	if err := p.Spawn(pj, srcA, srcB); err != nil {
		return Bench6Exec{}, err
	}
	p.Sink(out)
	p.SourceItems(srcA, itemsA, false)
	p.SourceItems(srcB, itemsB, false)
	start := time.Now()
	if err := p.Run(context.Background()); err != nil {
		return Bench6Exec{}, err
	}
	wall := time.Since(start)
	m := pj.Metrics()
	lat := pj.Latencies()
	in := m.TuplesIn[0] + m.TuplesIn[1]
	return Bench6Exec{
		Batch:         batch,
		LingerMs:      lingerMs,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		TuplesIn:      in,
		TuplesOut:     m.TuplesOut,
		PunctsOut:     m.PunctsOut,
		TuplesPerSec:  float64(in) / wall.Seconds(),
		PunctDelay:    bench4Dist(lat.PunctDelay),
		Batches:       m.Batches,
		BatchFillMean: lat.BatchFill.Mean(),
	}, nil
}

// RunBench6 runs the batched-dataflow sweep at the given workload seed.
// When rc.Batch > 1, the exec sweep runs only the {rc.Batch,
// rc.BatchLingerMs} cell next to the per-item baseline (`pjoinbench
// -bench6 out.json -batch 256 -batch-linger-ms 1`); otherwise it runs
// the full grid. progress (optional) receives one line per cell.
func RunBench6(rc RunConfig, progress io.Writer) (*Bench6, error) {
	if progress == nil {
		progress = io.Discard
	}
	out := &Bench6{
		Note: "batched dataflow sweep. probe_micro: BENCH_3's probe workload per item vs " +
			"the seq-guarded memoizing probe over same-key runs (one real probe + N-1 cache " +
			"hits per batch); speedup at batch 256 must be >= 1.5x. exec_sweep: live " +
			"two-source -> pjoin -> sink pipeline (eager purge, PropagateCount=1, indexed), " +
			"wall-clock throughput and punct-propagation delay per batch x linger cell; " +
			"linger 0 cuts a batch on every emit so its punct delay must stay within 2x of " +
			"per-item, linger 1ms trades that bound for fill. batch_fill_mean is items per " +
			"delivered batch as the operator saw them. exec cells are best-of-3 reps " +
			"(fastest wall clock) to strip scheduler noise; outputs are identical on every rep.",
		Seed: rc.seed(),
	}
	for _, n := range Bench6Batches {
		fmt.Fprintf(progress, "probe micro: batch %d...\n", n)
		cell, err := bench6Probe(n)
		if err != nil {
			return nil, fmt.Errorf("bench6: probe batch %d: %w", n, err)
		}
		out.Probe = append(out.Probe, cell)
	}
	cells := Bench6ExecCells
	if rc.Batch > 1 {
		cells = []struct{ Batch, LingerMs int }{{1, 0}, {rc.Batch, rc.BatchLingerMs}}
	}
	erc := rc
	erc.Indexed = true
	for _, c := range cells {
		fmt.Fprintf(progress, "exec sweep: batch %d linger %dms...\n", c.Batch, c.LingerMs)
		cell, err := bench6Exec(erc, c.Batch, c.LingerMs)
		if err != nil {
			return nil, fmt.Errorf("bench6: exec batch %d linger %dms: %w", c.Batch, c.LingerMs, err)
		}
		out.Exec = append(out.Exec, cell)
	}
	return out, nil
}

// WriteJSON renders the report as indented JSON.
func (b *Bench6) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
