package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"pjoin/internal/stream"
)

func checkDist(t *testing.T, name string, d Bench4Dist) {
	t.Helper()
	if d.Count == 0 {
		t.Fatalf("%s: empty distribution", name)
	}
	if !(d.P50 <= d.P95 && d.P95 <= d.P99 && d.P99 <= d.Max) {
		t.Errorf("%s: quantiles not monotone: p50=%d p95=%d p99=%d max=%d",
			name, d.P50, d.P95, d.P99, d.Max)
	}
	if d.Mean < 0 || float64(d.Max) < d.Mean {
		t.Errorf("%s: mean %f outside [0, max=%d]", name, d.Mean, d.Max)
	}
}

func TestBench4QuickRun(t *testing.T) {
	rep, err := RunBench4(1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rates) < 3 {
		t.Fatalf("swept %d punctuation rates, want >= 3", len(rep.Rates))
	}
	for _, r := range rep.Rates {
		// Index regime changes work done, never results or punctuations:
		// the distributions must agree in count.
		if r.Scan.TuplesOut != r.Indexed.TuplesOut {
			t.Errorf("punct-mean %d: TuplesOut scan %d != indexed %d",
				r.PunctMean, r.Scan.TuplesOut, r.Indexed.TuplesOut)
		}
		if r.Scan.PunctsOut != r.Indexed.PunctsOut {
			t.Errorf("punct-mean %d: PunctsOut scan %d != indexed %d",
				r.PunctMean, r.Scan.PunctsOut, r.Indexed.PunctsOut)
		}
		for _, reg := range []struct {
			name string
			r    Bench4Regime
		}{{"scan", r.Scan}, {"indexed", r.Indexed}} {
			checkDist(t, reg.name+" result_latency", reg.r.ResultLatency)
			checkDist(t, reg.name+" punct_delay", reg.r.PunctDelay)
			if reg.r.ResultLatency.Count != reg.r.TuplesOut {
				t.Errorf("punct-mean %d %s: latency samples %d != TuplesOut %d",
					r.PunctMean, reg.name, reg.r.ResultLatency.Count, reg.r.TuplesOut)
			}
			if reg.r.PunctDelay.Count != reg.r.PunctsOut {
				t.Errorf("punct-mean %d %s: delay samples %d != PunctsOut %d",
					r.PunctMean, reg.name, reg.r.PunctDelay.Count, reg.r.PunctsOut)
			}
		}
	}
	// The sweep's story: sparser punctuation means fewer propagations,
	// and — because the state outgrows memory between purges — results
	// that ride disk passes instead of memory probes. Assert both
	// orderings between the densest and sparsest settings.
	first, last := rep.Rates[0], rep.Rates[len(rep.Rates)-1]
	if first.PunctMean >= last.PunctMean {
		t.Fatalf("sweep not ordered by punct rate: %d .. %d", first.PunctMean, last.PunctMean)
	}
	if first.Scan.PunctsOut <= last.Scan.PunctsOut {
		t.Errorf("punct-mean %d propagated %d, punct-mean %d propagated %d: want fewer at the sparser rate",
			first.PunctMean, first.Scan.PunctsOut, last.PunctMean, last.Scan.PunctsOut)
	}
	if first.Scan.ResultLatency.Mean >= last.Scan.ResultLatency.Mean {
		t.Errorf("mean result latency did not grow with punctuation sparsity: %.0fns at punct-mean %d vs %.0fns at %d",
			first.Scan.ResultLatency.Mean, first.PunctMean, last.Scan.ResultLatency.Mean, last.PunctMean)
	}
	// The delay tail is the cross-stream punctuation skew: the earlier
	// punct of each matched pair genuinely waits for its partner.
	for _, r := range rep.Rates {
		if r.Scan.PunctDelay.Max < int64(stream.Millisecond) {
			t.Errorf("punct-mean %d: max delay %dns — no punctuation ever waited for its partner",
				r.PunctMean, r.Scan.PunctDelay.Max)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Bench4
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Rates) != len(rep.Rates) {
		t.Errorf("round-trip lost rates: %d vs %d", len(back.Rates), len(rep.Rates))
	}
}
