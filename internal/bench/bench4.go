package bench

// This file implements the latency summary behind `make bench`
// (BENCH_4.json): a sweep over punctuation inter-arrival rates,
// recording result-latency and punctuation-propagation-delay
// distributions (p50/p95/p99/max) from the operators' histograms
// (internal/obs/hist) in both state regimes. It is the quantitative
// half of the paper's responsiveness story. Punctuation delay: a
// punctuation can only propagate once the partner stream has
// punctuated the same subset, so the later punct of each matched pair
// is instant (median 0) and the earlier one's wait is the cross-stream
// punctuation skew (the tail). Result latency: dense punctuation keeps
// the state purged and every result is an instant memory probe; sparse
// punctuation lets the state outgrow the memory threshold, and results
// ride spill + disk passes — the latency tail IS the cost of
// under-punctuating. The two sides punctuate independently (not
// aligned — aligned pairs arrive back-to-back and the wait collapses
// to the pair gap).

import (
	"encoding/json"
	"fmt"
	"io"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/obs/hist"
	"pjoin/internal/stream"
)

// Bench4Dist summarises one latency histogram (all values virtual-time
// nanoseconds except Purge's, which are wall-clock).
type Bench4Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
}

func bench4Dist(s hist.Snapshot) Bench4Dist {
	return Bench4Dist{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// Bench4Regime is one state regime's measurement at one punctuation
// rate.
type Bench4Regime struct {
	TuplesOut     int64      `json:"tuples_out"`
	PunctsOut     int64      `json:"puncts_out"`
	PurgeRuns     int64      `json:"purge_runs"`
	ResultLatency Bench4Dist `json:"result_latency"`
	PunctDelay    Bench4Dist `json:"punct_delay"`
}

// Bench4Rate is one punctuation inter-arrival setting measured in both
// regimes.
type Bench4Rate struct {
	// PunctMean is the mean number of tuples between punctuations on
	// each input (aligned across the two sides).
	PunctMean int          `json:"punct_mean"`
	Scan      Bench4Regime `json:"scan"`
	Indexed   Bench4Regime `json:"indexed"`
}

// Bench4 is the full latency report.
type Bench4 struct {
	Note  string       `json:"note"`
	Seed  uint64       `json:"seed"`
	Rates []Bench4Rate `json:"rates"`
}

func bench4Regime(rc RunConfig, punctMean int, indexed bool) (Bench4Regime, error) {
	horizon := rc.horizon(defShort)
	arrs, err := gen.Synthetic(gen.Config{
		Seed:     rc.seed(),
		Duration: horizon,
		A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: float64(punctMean)},
		B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: float64(punctMean)},
	})
	if err != nil {
		return Bench4Regime{}, err
	}
	rc.Indexed = indexed
	pj, err := pjoinFor(rc, "pjoin", 1, func(c *core.Config) {
		c.DisablePropagation = false
		c.Thresholds.PropagateCount = 1 // propagate as soon as the state allows
		c.Thresholds.MemoryBytes = 32 << 10
	})
	if err != nil {
		return Bench4Regime{}, err
	}
	res, err := rc.simulate(pj, arrs, horizon)
	if err != nil {
		return Bench4Regime{}, err
	}
	lat := pj.Latencies()
	return Bench4Regime{
		TuplesOut:     res.Final.TuplesOut,
		PunctsOut:     res.Final.PunctsOut,
		PurgeRuns:     res.Final.PurgeRuns,
		ResultLatency: bench4Dist(lat.Result),
		PunctDelay:    bench4Dist(lat.PunctDelay),
	}, nil
}

// Bench4Rates is the default punctuation inter-arrival sweep (mean
// tuples between punctuations per side).
var Bench4Rates = []int{10, 40, 160}

// RunBench4 runs the latency sweep at the given workload seed. progress
// (optional) receives one line per setting.
func RunBench4(seed uint64, quick bool, progress io.Writer) (*Bench4, error) {
	if progress == nil {
		progress = io.Discard
	}
	out := &Bench4{
		Note: "independently punctuated symmetric workload, eager purge, PropagateCount=1, " +
			"32KiB memory threshold (some results ride disk passes); " +
			"result latency = emit time minus result timestamp (0 for memory probes), " +
			"punct delay = propagation time minus arrival; virtual-time ns. " +
			"scan = pre-index physics, indexed = key-grouped state index — the " +
			"distributions must agree in count (same results, same punctuations).",
		Seed: seed,
	}
	rc := RunConfig{Seed: seed, Quick: quick}
	for _, pm := range Bench4Rates {
		fmt.Fprintf(progress, "punct-mean %d: scan + indexed runs...\n", pm)
		scan, err := bench4Regime(rc, pm, false)
		if err != nil {
			return nil, fmt.Errorf("bench4: punct-mean %d (scan): %w", pm, err)
		}
		indexed, err := bench4Regime(rc, pm, true)
		if err != nil {
			return nil, fmt.Errorf("bench4: punct-mean %d (indexed): %w", pm, err)
		}
		out.Rates = append(out.Rates, Bench4Rate{PunctMean: pm, Scan: scan, Indexed: indexed})
	}
	return out, nil
}

// WriteJSON renders the report as indented JSON.
func (b *Bench4) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
