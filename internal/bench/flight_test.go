package bench

import (
	"bufio"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"pjoin/internal/obs"
)

// TestFlightRegression is the fault-injection acceptance test for the
// stall detector + flight recorder: a spill device that fails on read
// wedges the join's purge passes, punctuation lag grows past the SLO
// while input keeps arriving, the detector fires, and the dump is
// parseable JSONL containing the spill-error trace events.
func TestFlightRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	out, err := RunFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Reason != "lag_slo" {
		t.Errorf("reason = %q, want lag_slo", out.Report.Reason)
	}
	if out.PunctsOut == 0 {
		t.Error("no punctuations propagated before the wedge: the healthy phase is vacuous")
	}
	if out.Report.At <= out.WedgedAt {
		t.Errorf("fired at %v, not after the wedge at %v", out.Report.At, out.WedgedAt)
	}
	if out.Report.Lag < 200_000_000 {
		t.Errorf("reported lag %v below the 200ms SLO", out.Report.Lag)
	}

	// The dump must round-trip through the gzip sink as JSONL: a flight
	// header, the ring's events, then histogram summaries.
	src, err := obs.OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var (
		header    map[string]any
		events    int
		histsSeen []string
		spillErrs int
	)
	sc := bufio.NewScanner(src)
	for i := 0; sc.Scan(); i++ {
		line := sc.Text()
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		switch m["type"] {
		case "flight":
			if i != 0 {
				t.Errorf("flight header on line %d, want 0", i)
			}
			header = m
		case "hist":
			histsSeen = append(histsSeen, m["name"].(string))
		default:
			events++
			if m["ev"] == "spill_error" {
				spillErrs++
				if !strings.Contains(m["err"].(string), "injected") {
					t.Errorf("spill_error event lost the error text: %v", m["err"])
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if header == nil {
		t.Fatal("no flight header line")
	}
	if header["reason"] != "lag_slo" {
		t.Errorf("header reason = %v", header["reason"])
	}
	if got := int(header["events"].(float64)); got != events {
		t.Errorf("header says %d events, dump has %d", got, events)
	}
	if int64(events) != out.RingEvents {
		t.Errorf("dumped %d events, ring held %d", events, out.RingEvents)
	}
	if spillErrs == 0 {
		t.Error("flight ring contains no spill_error events — the recorder missed the fault")
	}
	want := []string{"result_latency_ns", "punct_delay_ns", "purge_duration_ns"}
	if len(histsSeen) != len(want) {
		t.Fatalf("hist lines = %v, want %v", histsSeen, want)
	}
	for i, n := range want {
		if histsSeen[i] != n {
			t.Errorf("hist %d = %q, want %q", i, histsSeen[i], n)
		}
	}
}
