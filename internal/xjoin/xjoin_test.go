package xjoin

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/punct"
	"pjoin/internal/shj"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

var (
	schemaA = stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "pa", Kind: value.KindString},
	)
	schemaB = stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "pb", Kind: value.KindString},
	)
)

type feedItem struct {
	port int
	item stream.Item
}

func tupA(key int64, payload string, ts stream.Time) feedItem {
	return feedItem{0, stream.TupleItem(stream.MustTuple(schemaA, ts, value.Int(key), value.Str(payload)))}
}

func tupB(key int64, payload string, ts stream.Time) feedItem {
	return feedItem{1, stream.TupleItem(stream.MustTuple(schemaB, ts, value.Int(key), value.Str(payload)))}
}

func run(t *testing.T, j op.Operator, items []feedItem) {
	t.Helper()
	var last stream.Time
	for _, fi := range items {
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatalf("Process(%d, %v): %v", fi.port, fi.item, err)
		}
		last = fi.item.Ts
	}
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatalf("EOS port %d: %v", port, err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func resultKey(tp *stream.Tuple) string {
	parts := make([]string, len(tp.Values))
	for i, v := range tp.Values {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

func multiset(tuples []*stream.Tuple) map[string]int {
	m := map[string]int{}
	for _, tp := range tuples {
		m[resultKey(tp)]++
	}
	return m
}

func sameMultiset(t *testing.T, got, want map[string]int) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("result %q: got %d, want %d", k, got[k], want[k])
		}
	}
}

func TestNewValidation(t *testing.T) {
	sink := &op.Collector{}
	cases := []struct {
		name string
		cfg  Config
		out  op.Emitter
	}{
		{"nil schemas", Config{}, sink},
		{"nil emitter", Config{SchemaA: schemaA, SchemaB: schemaB}, nil},
		{"bad attrA", Config{SchemaA: schemaA, SchemaB: schemaB, AttrA: 9}, sink},
		{"bad attrB", Config{SchemaA: schemaA, SchemaB: schemaB, AttrB: 9}, sink},
		{"kind mismatch", Config{SchemaA: schemaA, SchemaB: schemaB, AttrA: 1, AttrB: 0}, sink},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBasicJoinInMemory(t *testing.T) {
	sink := &op.Collector{}
	j, err := New(Config{SchemaA: schemaA, SchemaB: schemaB}, sink)
	if err != nil {
		t.Fatal(err)
	}
	run(t, j, []feedItem{
		tupA(1, "a1", 1),
		tupB(1, "b1", 2),
		tupA(1, "a2", 3),
		tupB(2, "b2", 4),
	})
	want := map[string]int{
		`1|"a1"|1|"b1"`: 1,
		`1|"a2"|1|"b1"`: 1,
	}
	sameMultiset(t, multiset(sink.Tuples()), want)
}

func TestPunctuationsIgnored(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(Config{SchemaA: schemaA, SchemaB: schemaB}, sink)
	p := stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(1))), 1)
	if err := j.Process(0, p, 1); err != nil {
		t.Fatal(err)
	}
	fi := tupA(1, "a", 2)
	if err := j.Process(fi.port, fi.item, 2); err != nil {
		t.Fatal(err)
	}
	// State keeps growing: no constraint exploitation.
	if got := j.StateTuples(); got != 1 {
		t.Errorf("state = %d", got)
	}
	if m := j.Metrics(); m.PunctsIn[0] != 1 {
		t.Errorf("PunctsIn = %v", m.PunctsIn)
	}
	if got := len(sink.Puncts()); got != 0 {
		t.Error("XJoin must not propagate punctuations")
	}
}

func TestStateGrowsWithoutBound(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(Config{SchemaA: schemaA, SchemaB: schemaB}, sink)
	for i := 0; i < 100; i++ {
		fi := tupA(int64(i), "a", stream.Time(i+1))
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StateTuples(); got != 100 {
		t.Errorf("state = %d, want 100", got)
	}
}

func TestSpillAndCleanupCompleteness(t *testing.T) {
	sink := &op.Collector{}
	j, err := New(Config{
		SchemaA: schemaA, SchemaB: schemaB,
		NumBuckets:  4,
		MemoryBytes: 250,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	oracleSink := &op.Collector{}
	oracle, _ := shj.New(schemaA, schemaB, 0, 0, oracleSink)

	rng := vtime.NewRNG(7)
	var items []feedItem
	for i := 0; i < 300; i++ {
		key := int64(rng.Intn(8))
		ts := stream.Time(i + 1)
		if rng.Intn(2) == 0 {
			items = append(items, tupA(key, fmt.Sprintf("a%d", i), ts))
		} else {
			items = append(items, tupB(key, fmt.Sprintf("b%d", i), ts))
		}
	}
	run(t, j, items)
	run(t, oracle, items)

	if j.Metrics().Relocations == 0 {
		t.Fatal("relocation never triggered; test ineffective")
	}
	sameMultiset(t, multiset(sink.Tuples()), multiset(oracleSink.Tuples()))
}

func TestReactiveDiskJoinDuringStall(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(Config{
		SchemaA: schemaA, SchemaB: schemaB,
		NumBuckets:   2,
		MemoryBytes:  200,
		DiskJoinIdle: 10,
	}, sink)
	var ts stream.Time
	for i := 0; i < 40; i++ {
		ts++
		var fi feedItem
		if i%2 == 0 {
			fi = tupA(int64(i%3), "a", ts)
		} else {
			fi = tupB(int64(i%3), "b", ts)
		}
		if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
			t.Fatal(err)
		}
	}
	if j.Metrics().Relocations == 0 {
		t.Fatal("no relocation; lower the threshold")
	}
	before := len(sink.Tuples())
	did, err := j.OnIdle(ts + 50)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("idle stall should trigger the reactive disk join")
	}
	if got := len(sink.Tuples()); got <= before {
		t.Error("reactive disk join produced no left-over results")
	}
	// Results so far plus cleanup must equal the oracle.
	var last stream.Time = ts + 100
	for port := 0; port < 2; port++ {
		last++
		if err := j.Process(port, stream.EOSItem(last), last); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(last + 1); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialWithIdlePassesAgainstOracle(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := vtime.NewRNG(seed)
		sink := &op.Collector{}
		j, _ := New(Config{
			SchemaA: schemaA, SchemaB: schemaB,
			NumBuckets:   4,
			MemoryBytes:  300,
			DiskJoinIdle: 5,
		}, sink)
		oracleSink := &op.Collector{}
		oracle, _ := shj.New(schemaA, schemaB, 0, 0, oracleSink)

		var ts stream.Time
		for i := 0; i < 250; i++ {
			ts++
			key := int64(rng.Intn(10))
			var fi feedItem
			if rng.Intn(2) == 0 {
				fi = tupA(key, fmt.Sprintf("a%d", i), ts)
			} else {
				fi = tupB(key, fmt.Sprintf("b%d", i), ts)
			}
			if err := j.Process(fi.port, fi.item, fi.item.Ts); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Process(fi.port, fi.item, fi.item.Ts); err != nil {
				t.Fatal(err)
			}
			// Random stalls let the reactive stage interleave with
			// arrivals — the hardest case for duplicate avoidance.
			if rng.Intn(20) == 0 {
				ts += 10
				if _, err := j.OnIdle(ts); err != nil {
					t.Fatal(err)
				}
			}
		}
		for port := 0; port < 2; port++ {
			ts++
			j.Process(port, stream.EOSItem(ts), ts)
			oracle.Process(port, stream.EOSItem(ts), ts)
		}
		if err := j.Finish(ts + 1); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Finish(ts + 1); err != nil {
			t.Fatal(err)
		}
		sameMultiset(t, multiset(sink.Tuples()), multiset(oracleSink.Tuples()))
		if t.Failed() {
			t.Fatalf("seed %d mismatch", seed)
		}
	}
}

func TestEOSProtocol(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(Config{SchemaA: schemaA, SchemaB: schemaB}, sink)
	if err := j.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	j.Process(0, stream.EOSItem(1), 1)
	if err := j.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("duplicate EOS should error")
	}
	j.Process(1, stream.EOSItem(3), 3)
	if err := j.Finish(4); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(5); err == nil {
		t.Error("double Finish should error")
	}
	if err := j.Process(0, tupA(1, "x", 6).item, 6); err == nil {
		t.Error("Process after Finish should error")
	}
	if err := j.Process(5, tupA(1, "x", 7).item, 7); err == nil {
		t.Error("invalid port should error")
	}
}

func TestOperatorMetadata(t *testing.T) {
	sink := &op.Collector{}
	j, _ := New(Config{SchemaA: schemaA, SchemaB: schemaB}, sink)
	if j.Name() != "xjoin" || j.NumPorts() != 2 {
		t.Error("metadata wrong")
	}
	if j.OutSchema().Width() != 4 {
		t.Errorf("out schema = %v", j.OutSchema())
	}
}
