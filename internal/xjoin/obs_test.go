package xjoin

import (
	"errors"
	"testing"

	"pjoin/internal/obs"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

func obsConfig(rec obs.Tracer) Config {
	return Config{
		SchemaA: schemaA, SchemaB: schemaB,
		AttrA: 0, AttrB: 0,
		MemoryBytes: 256,
		Instr:       obs.NewInstr(rec, nil, "xjoin"),
	}
}

func obsWorkload() []feedItem {
	var items []feedItem
	ts := stream.Time(1)
	for k := int64(0); k < 30; k++ {
		items = append(items, tupA(k, "a", ts))
		ts++
		items = append(items, tupB(k, "b", ts))
		ts++
	}
	return items
}

// TestObsEventsReconcileWithMetrics: the baseline traces the same
// arrival/probe/spill events as PJoin (minus anything
// punctuation-related — XJoin has no purge or propagation).
func TestObsEventsReconcileWithMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	j, err := New(obsConfig(rec), &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	run(t, j, obsWorkload())

	m := j.Metrics()
	if m.Relocations == 0 || m.DiskPasses == 0 {
		t.Fatalf("workload missed the spill path: %+v", m)
	}
	checks := []struct {
		kind obs.Kind
		want int64
	}{
		{obs.KindTupleIn, m.TuplesIn[0] + m.TuplesIn[1]},
		{obs.KindProbe, m.TuplesIn[0] + m.TuplesIn[1]},
		{obs.KindRelocate, m.Relocations},
		{obs.KindDiskPass, m.DiskPasses},
		{obs.KindPurge, 0},
		{obs.KindPropagate, 0},
	}
	for _, c := range checks {
		if got := rec.Count(c.kind); got != c.want {
			t.Errorf("%v events: got %d, want %d", c.kind, got, c.want)
		}
	}
}

// TestSpillAppendErrorSurfaces: a failing spill device during XJoin's
// state relocation surfaces as a Process error and a spill-error event.
func TestSpillAppendErrorSurfaces(t *testing.T) {
	rec := obs.NewRecorder()
	boom := errors.New("disk gone")
	cfg := obsConfig(rec)
	cfg.SpillA = store.NewFaultSpill(store.NewMemSpill(), store.FaultAppend, 1, boom)
	cfg.SpillB = store.NewFaultSpill(store.NewMemSpill(), store.FaultAppend, 1, boom)
	j, err := New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	var procErr error
	for _, fi := range obsWorkload() {
		if procErr = j.Process(fi.port, fi.item, fi.item.Ts); procErr != nil {
			break
		}
	}
	if !errors.Is(procErr, boom) {
		t.Fatalf("Process error: got %v, want injected %v", procErr, boom)
	}
	if rec.Count(obs.KindSpillError) == 0 {
		t.Error("no spill-error event recorded")
	}
}
