// Package xjoin implements the XJoin operator (Urhan & Franklin) as the
// paper's comparison baseline: a symmetric hash join that resolves
// memory overflow by relocating partitions to secondary storage,
// reactively schedules background disk joins while the inputs are
// stalled, and runs a final clean-up pass at end-of-stream. XJoin has no
// constraint-exploiting mechanism: punctuations are consumed and
// discarded, and the state grows with the streams.
//
// The duplicate-avoidance machinery (residence intervals + per-bucket
// pass watermarks) is shared with PJoin via internal/joinbase; it is the
// moral equivalent of XJoin's ATS/DTS timestamps and probe history
// lists.
package xjoin

import (
	"fmt"
	"time"

	"pjoin/internal/event"
	"pjoin/internal/joinbase"
	"pjoin/internal/obs"
	"pjoin/internal/obs/span"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// Config configures an XJoin instance.
type Config struct {
	// SchemaA and SchemaB describe the two inputs (ports 0 and 1).
	SchemaA, SchemaB *stream.Schema
	// AttrA and AttrB are the join attribute positions.
	AttrA, AttrB int
	// OutName names the result schema (default "join").
	OutName string
	// NumBuckets is the hash table size per state (default 64).
	NumBuckets int
	// SpillA and SpillB provide secondary storage (default in-memory
	// simulated disks).
	SpillA, SpillB store.SpillStore
	// MemoryBytes is the memory threshold that triggers state
	// relocation; 0 disables spilling (the state grows unboundedly).
	MemoryBytes int64
	// DiskJoinIdle is the reactive disk-join activation threshold: how
	// long the inputs must stall before a background disk pass runs.
	DiskJoinIdle stream.Time
	// DiskChunkBytes, when positive, makes the disk join incremental:
	// passes run as a resumable background task reading spill data in
	// chunks of at most this many bytes, stepped once per input item, so
	// the hot path never stalls for a whole pass. 0 keeps the blocking
	// pass. See core.Config.DiskChunkBytes.
	DiskChunkBytes int
	// DisableStateIndex reverts the join states to the pre-index probe
	// behaviour (full-bucket scans, examined = occupancy). The paper-
	// reproduction experiments run in this mode so the simulator prices
	// the scan-based physics the paper's figures exhibit; see
	// core.Config.DisableStateIndex.
	DisableStateIndex bool
	// Instr is the observability handle (tracing + live metrics); nil
	// disables observability (see internal/obs).
	Instr *obs.Instr
}

// XJoin is the baseline stream join. It implements op.Operator with two
// input ports.
type XJoin struct {
	cfg   Config
	base  *joinbase.Base
	out   op.Emitter
	mon   *event.Monitor
	attrs [2]int
	outSc *stream.Schema
	// lat holds the latency histograms (see core.PJoin.lat). XJoin never
	// propagates, so its PunctDelay histogram stays empty — the missing
	// signal is the baseline's story, same as the absent punct-lag gauge.
	lat *obs.Lat

	// diskTask is the in-flight incremental disk pass (nil when none or
	// in blocking mode); see core.PJoin.diskTask.
	diskTask      *joinbase.ChunkPass
	diskTaskStart time.Time
	// passTrace/passBase: provenance trace of the current disk pass and
	// the I/O + work counters at its start (spans on only). XJoin has no
	// punctuation lifecycle — punctuations are discarded — so its span
	// output is tuple and pass provenance only; the missing punct traces
	// are, like the absent punct-lag gauge, the baseline's story.
	passTrace    uint64
	passIOBase   passIO
	passStepIO   passIO
	passExamBase int64
	passJoinBase int64
	// resultSpanBudget caps tuple_result spans per probe burst at
	// span.ResultCap; reset before each probe and disk-pass step.
	resultSpanBudget int

	now      stream.Time
	eos      [2]bool
	finished bool
}

var (
	_ op.Operator       = (*XJoin)(nil)
	_ op.BatchProcessor = (*XJoin)(nil)
)

// New builds an XJoin bound to out.
func New(cfg Config, out op.Emitter) (*XJoin, error) {
	if cfg.SchemaA == nil || cfg.SchemaB == nil {
		return nil, fmt.Errorf("xjoin: both input schemas required")
	}
	if out == nil {
		return nil, fmt.Errorf("xjoin: output emitter required")
	}
	if cfg.AttrA < 0 || cfg.AttrA >= cfg.SchemaA.Width() {
		return nil, fmt.Errorf("xjoin: join attribute A %d out of range for %s", cfg.AttrA, cfg.SchemaA)
	}
	if cfg.AttrB < 0 || cfg.AttrB >= cfg.SchemaB.Width() {
		return nil, fmt.Errorf("xjoin: join attribute B %d out of range for %s", cfg.AttrB, cfg.SchemaB)
	}
	if ka, kb := cfg.SchemaA.FieldAt(cfg.AttrA).Kind, cfg.SchemaB.FieldAt(cfg.AttrB).Kind; ka != kb {
		return nil, fmt.Errorf("xjoin: join attribute kinds differ: %s vs %s", ka, kb)
	}
	if cfg.OutName == "" {
		cfg.OutName = "join"
	}
	if cfg.NumBuckets == 0 {
		cfg.NumBuckets = 64
	}
	if cfg.SpillA == nil {
		cfg.SpillA = store.NewMemSpill()
	}
	if cfg.SpillB == nil {
		cfg.SpillB = store.NewMemSpill()
	}

	outSc, err := cfg.SchemaA.Concat(cfg.OutName, cfg.SchemaB)
	if err != nil {
		return nil, err
	}
	stA, err := store.NewState(cfg.SchemaA.Name(), cfg.AttrA, cfg.NumBuckets, cfg.SpillA)
	if err != nil {
		return nil, err
	}
	stB, err := store.NewState(cfg.SchemaB.Name(), cfg.AttrB, cfg.NumBuckets, cfg.SpillB)
	if err != nil {
		return nil, err
	}
	if cfg.DisableStateIndex {
		stA.SetScanFallback(true)
		stB.SetScanFallback(true)
	}
	x := &XJoin{cfg: cfg, out: out, attrs: [2]int{cfg.AttrA, cfg.AttrB}, outSc: outSc, lat: obs.NewLat()}
	x.base, err = joinbase.New(stA, stB, outSc, func(t *stream.Tuple) error {
		x.lat.RecordResult(x.now, t.Ts)
		if t.Span != 0 && x.resultSpanBudget > 0 && x.cfg.Instr.SpansEnabled() {
			x.resultSpanBudget--
			x.cfg.Instr.Span(span.KindTupleResult, t.Span, x.now, -1, 0, 0, 0, int64(x.now-t.Ts))
		}
		return out.Emit(stream.TupleItem(t))
	})
	if err != nil {
		return nil, err
	}
	x.base.Obs = cfg.Instr
	x.registerGauges()

	reg := event.NewRegistry()
	relocate := event.ListenerFunc{ID: "state-relocation", Fn: func(e event.Event) error {
		return x.base.Relocate(e.At+1, x.cfg.MemoryBytes, nil)
	}}
	diskJoin := event.ListenerFunc{ID: "disk-join", Fn: func(e event.Event) error {
		return x.diskPass(e.At)
	}}
	if err := reg.Register(event.StateFull, nil, "memory threshold reached", relocate); err != nil {
		return nil, err
	}
	if err := reg.Register(event.DiskJoinActivate, nil, "inputs stalled", diskJoin); err != nil {
		return nil, err
	}
	if err := reg.Register(event.StreamEmpty, nil, "both inputs ended", diskJoin); err != nil {
		return nil, err
	}
	x.mon, err = event.NewMonitor(reg, event.Thresholds{
		MemoryBytes:  cfg.MemoryBytes,
		DiskJoinIdle: cfg.DiskJoinIdle,
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// registerGauges exposes XJoin's live metrics through the attached
// sampler; gauges run on the operator's own goroutine (see obs.Live).
// XJoin never propagates punctuations, so there is no punct-lag gauge —
// its absence IS the baseline's story.
func (x *XJoin) registerGauges() {
	lv := x.cfg.Instr.Live()
	if lv == nil {
		return
	}
	name := x.cfg.Instr.Op()
	if name == "" {
		name = x.Name()
	}
	lv.Register(name+".mem_bytes.a", func() float64 { return float64(x.base.States[0].MemBytes()) })
	lv.Register(name+".mem_bytes.b", func() float64 { return float64(x.base.States[1].MemBytes()) })
	lv.Register(name+".disk_bytes", func() float64 {
		a, b := x.StateStats()
		return float64(a.DiskBytes + b.DiskBytes)
	})
	lv.Register(name+".state_tuples", func() float64 { return float64(x.StateTuples()) })
	lv.Register(name+".bucket_skew", func() float64 {
		sk := x.base.States[0].MemBucketSkew()
		if s1 := x.base.States[1].MemBucketSkew(); s1 > sk {
			sk = s1
		}
		return sk
	})
	lv.Register(name+".mem_groups", func() float64 {
		a, b := x.StateStats()
		return float64(a.MemGroups + b.MemGroups)
	})
	lv.Register(name+".tuples_out", func() float64 { return float64(x.base.M.TuplesOut) })
	lv.Register(name+".tuples_in", func() float64 {
		return float64(x.base.M.TuplesIn[0] + x.base.M.TuplesIn[1])
	})
}

// Name implements op.Operator.
func (x *XJoin) Name() string { return "xjoin" }

// NumPorts implements op.Operator.
func (x *XJoin) NumPorts() int { return 2 }

// OutSchema implements op.Operator.
func (x *XJoin) OutSchema() *stream.Schema { return x.outSc }

// Metrics returns the accumulated work counters.
func (x *XJoin) Metrics() joinbase.Metrics { return x.base.M }

// Latencies returns a snapshot of the operator's latency histograms.
// PunctDelay and Purge are always empty for XJoin (it neither
// propagates nor purges). Safe from any goroutine while running.
func (x *XJoin) Latencies() obs.LatSnapshot { return x.lat.Snapshot() }

// StateStats returns the size accounting of both states.
func (x *XJoin) StateStats() (a, b store.Stats) {
	return x.base.States[0].Stats(), x.base.States[1].Stats()
}

// StateTuples returns the total tuples held in the join state.
func (x *XJoin) StateTuples() int {
	a, b := x.StateStats()
	return a.TotalTuples() + b.TotalTuples()
}

// chunked reports whether the disk join runs incrementally.
func (x *XJoin) chunked() bool { return x.cfg.DiskChunkBytes > 0 }

// diskPass runs the disk-join stage: the whole blocking pass, or — in
// chunked mode — one bounded step of the background task.
func (x *XJoin) diskPass(now stream.Time) error {
	if x.chunked() {
		return x.stepDiskTask(now)
	}
	if !x.base.NeedsPass() {
		return nil
	}
	start := time.Now()
	x.beginPassTrace(now, false)
	if err := x.base.DiskPass(now, joinbase.PassHooks{}); err != nil {
		return err
	}
	wall := time.Since(start).Nanoseconds()
	x.lat.RecordDiskPass(wall)
	x.endPassTrace(now, wall)
	return nil
}

// passIO mirrors core.PJoin's pass-attribution snapshot: spill read
// operations, cache hits and bytes read, summed over both states.
type passIO struct {
	reads, hits, bytes int64
}

func (x *XJoin) passIOSnapshot() passIO {
	var p passIO
	for s := 0; s < 2; s++ {
		st := x.base.States[s]
		if io, err := st.IOStats(); err == nil {
			p.reads += io.ReadOps + io.ChunkReads
			p.bytes += io.BytesRead
		}
		p.hits += st.SpillCacheStats().Hits
	}
	return p
}

// beginPassTrace opens a provenance trace for a disk pass. No-op with
// spans disabled, so call sites stay unconditional (spanpair pairs
// them on all paths).
//
//pjoin:span begin pass
func (x *XJoin) beginPassTrace(now stream.Time, chunked bool) {
	if !x.cfg.Instr.SpansEnabled() {
		return
	}
	x.passTrace = span.NewID()
	x.passIOBase = x.passIOSnapshot()
	x.passExamBase = x.base.M.DiskExamined
	x.passJoinBase = x.base.M.DiskJoins
	var n int64
	if chunked {
		n = 1
	}
	x.cfg.Instr.Span(span.KindPassStart, x.passTrace, now, -1, n, 0, 0, 0)
}

// endPassTrace closes a pass trace. No-op with spans disabled.
//
//pjoin:span end pass
func (x *XJoin) endPassTrace(now stream.Time, wall int64) {
	if !x.cfg.Instr.SpansEnabled() {
		return
	}
	io := x.passIOSnapshot()
	x.cfg.Instr.Span(span.KindPassIO, x.passTrace, now, -1,
		io.reads-x.passIOBase.reads, io.hits-x.passIOBase.hits,
		io.bytes-x.passIOBase.bytes, 0)
	x.cfg.Instr.Span(span.KindPassEnd, x.passTrace, now, -1,
		x.base.M.DiskExamined-x.passExamBase, x.base.M.DiskJoins-x.passJoinBase,
		io.bytes-x.passIOBase.bytes, wall)
}

// stepDiskTask advances the incremental disk pass by one bounded step,
// starting a fresh pass if none is in flight and left-over work exists.
func (x *XJoin) stepDiskTask(now stream.Time) error {
	spansOn := x.cfg.Instr.SpansEnabled()
	if x.diskTask == nil {
		if !x.base.NeedsPass() {
			return nil
		}
		x.diskTask = x.base.StartChunkPass(joinbase.PassHooks{}, x.cfg.DiskChunkBytes)
		x.diskTaskStart = time.Now()
		x.beginPassTrace(now, true)
	}
	if spansOn {
		x.passStepIO = x.passIOSnapshot()
	}
	stepExam, stepJoin := x.base.M.DiskExamined, x.base.M.DiskJoins
	start := time.Now()
	x.resultSpanBudget = span.ResultCap
	done, err := x.diskTask.Step(now)
	if err != nil {
		x.diskTask = nil
		return err
	}
	stepWall := time.Since(start).Nanoseconds()
	if spansOn {
		io := x.passIOSnapshot()
		x.cfg.Instr.Span(span.KindPassChunk, x.passTrace, now, -1,
			x.base.M.DiskExamined-stepExam, x.base.M.DiskJoins-stepJoin,
			io.bytes-x.passStepIO.bytes, stepWall)
	}
	if !done {
		x.lat.RecordDiskChunk(stepWall)
		//pjoin:allow spanpair a resumable pass stays open across steps by design; the completing step closes it, EOS-close covers aborts
		return nil
	}
	x.diskTask = nil
	passWall := time.Since(x.diskTaskStart).Nanoseconds()
	x.lat.RecordDiskPass(passWall)
	x.endPassTrace(now, passWall)
	return nil
}

// pumpDisk gives the incremental pass one step of background progress;
// Process calls it after every input item.
func (x *XJoin) pumpDisk(now stream.Time) error {
	if !x.chunked() {
		return nil
	}
	if x.diskTask == nil && !x.base.NeedsPass() {
		return nil
	}
	return x.stepDiskTask(now)
}

// Process implements op.Operator. Timestamps must be strictly
// increasing across all items (see core.PJoin.Process).
func (x *XJoin) Process(port int, it stream.Item, now stream.Time) error {
	if err := op.ValidatePort(x.Name(), port, 2); err != nil {
		return err
	}
	if x.finished {
		return fmt.Errorf("xjoin: Process after Finish")
	}
	x.now = max(x.now, now)
	x.base.Obs.Tick(x.now)
	switch it.Kind {
	case stream.KindTuple:
		x.base.M.TuplesIn[port]++
		x.base.Obs.Event(obs.KindTupleIn, it.Tuple.Ts, port, 0, 0)
		if err := x.mon.TupleArrived(it.Tuple.Ts); err != nil {
			return err
		}
		examBefore := x.base.M.Examined
		x.resultSpanBudget = span.ResultCap
		matches, err := x.base.ProbeOpposite(port, it.Tuple)
		if err != nil {
			return err
		}
		x.base.Obs.Event(obs.KindProbe, it.Tuple.Ts, port, int64(matches), 0)
		if it.Tuple.Span != 0 && x.cfg.Instr.SpansEnabled() {
			x.cfg.Instr.Span(span.KindTupleProbe, it.Tuple.Span, it.Tuple.Ts, port,
				int64(matches), x.base.M.Examined-examBefore, 0, 0)
		}
		if _, err := x.base.States[port].Insert(it.Tuple); err != nil {
			return err
		}
		if err := x.mon.StateSize(x.base.States[0].MemBytes()+x.base.States[1].MemBytes(), it.Tuple.Ts); err != nil {
			return err
		}
		return x.pumpDisk(x.now)
	case stream.KindPunct:
		// No constraint-exploiting mechanism: punctuations are ignored.
		x.base.M.PunctsIn[port]++
		x.base.Obs.Event(obs.KindPunctIn, it.Ts, port, 0, 0)
		return x.pumpDisk(x.now)
	case stream.KindEOS:
		if x.eos[port] {
			return fmt.Errorf("xjoin: duplicate EOS on port %d", port)
		}
		x.eos[port] = true
		if x.eos[0] && x.eos[1] {
			return x.mon.StreamsEnded(x.now)
		}
		return nil
	default:
		return fmt.Errorf("xjoin: unknown item kind %v", it.Kind)
	}
}

// ProcessBatch implements op.BatchProcessor: per-item semantics, one
// driver wakeup per batch. See core.PJoin.ProcessBatch.
func (x *XJoin) ProcessBatch(port int, items []stream.Item, now stream.Time) error {
	x.base.M.Batches++
	x.lat.RecordBatchFill(len(items))
	for _, it := range items {
		if err := x.Process(port, it, it.Ts); err != nil {
			return err
		}
	}
	x.base.InvalidateProbeCache()
	return nil
}

// OnIdle implements op.Operator: XJoin's reactive background stage.
func (x *XJoin) OnIdle(now stream.Time) (bool, error) {
	x.now = max(x.now, now)
	if x.chunked() {
		before := x.base.M.DiskChunks
		if err := x.mon.Idle(x.now); err != nil {
			return false, err
		}
		if err := x.pumpDisk(x.now); err != nil {
			return false, err
		}
		return x.base.M.DiskChunks > before, nil
	}
	before := x.base.M.DiskPasses
	if err := x.mon.Idle(x.now); err != nil {
		return false, err
	}
	return x.base.M.DiskPasses > before, nil
}

// Finish implements op.Operator: the clean-up stage joins everything
// still owed from disk, then forwards EOS.
func (x *XJoin) Finish(now stream.Time) error {
	if x.finished {
		return fmt.Errorf("xjoin: double Finish")
	}
	if !x.eos[0] || !x.eos[1] {
		return fmt.Errorf("xjoin: Finish before EOS on both ports")
	}
	x.now = max(x.now, now)
	if x.chunked() {
		// Drain the in-flight pass, then run one final pass to
		// completion — the same single pass the blocking path runs.
		for x.diskTask != nil {
			if err := x.stepDiskTask(x.now); err != nil {
				return err
			}
		}
		if x.base.NeedsPass() {
			if err := x.stepDiskTask(x.now); err != nil {
				return err
			}
			for x.diskTask != nil {
				if err := x.stepDiskTask(x.now); err != nil {
					return err
				}
			}
		}
	} else if x.base.NeedsPass() {
		start := time.Now()
		x.beginPassTrace(x.now, false)
		if err := x.base.DiskPass(x.now, joinbase.PassHooks{}); err != nil {
			return err
		}
		wall := time.Since(start).Nanoseconds()
		x.lat.RecordDiskPass(wall)
		x.endPassTrace(x.now, wall)
	}
	x.finished = true
	if lv := x.cfg.Instr.Live(); lv != nil {
		lv.Flush(x.now) // final sample so the series ends at the run's last state
	}
	return x.out.Emit(stream.EOSItem(x.now))
}
