package xjoin

import (
	"testing"

	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// latencyConfig exercises both emit paths: memory probes plus a spill +
// final disk pass (low memory threshold), in the chosen index regime.
func latencyConfig(indexed bool) Config {
	return Config{
		SchemaA: schemaA, SchemaB: schemaB,
		AttrA: 0, AttrB: 0,
		NumBuckets:        8,
		MemoryBytes:       256,
		DisableStateIndex: !indexed,
	}
}

// TestLatencyReconciliation is the histogram-count contract for XJoin:
// one Result sample per emitted result across memory and disk-pass emit
// paths; PunctDelay and Purge stay empty (XJoin neither propagates nor
// purges — the empty histograms are the baseline's story).
func TestLatencyReconciliation(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "scan"
		}
		t.Run(name, func(t *testing.T) {
			sink := &op.Collector{}
			x, err := New(latencyConfig(indexed), sink)
			if err != nil {
				t.Fatal(err)
			}
			var items []feedItem
			ts := stream.Time(1)
			for k := int64(0); k < 40; k++ {
				items = append(items, tupA(k%8, "a", ts))
				ts++
				items = append(items, tupB(k%8, "b", ts))
				ts++
			}
			run(t, x, items)

			m := x.Metrics()
			lat := x.Latencies()
			if m.TuplesOut == 0 || m.Relocations == 0 || m.DiskPasses == 0 {
				t.Fatalf("workload vacuous (no spill exercised): %+v", m)
			}
			if lat.Result.Count != m.TuplesOut {
				t.Errorf("Result samples %d != TuplesOut %d", lat.Result.Count, m.TuplesOut)
			}
			var results int64
			for _, it := range sink.Items {
				if it.Kind == stream.KindTuple {
					results++
				}
			}
			if lat.Result.Count != results {
				t.Errorf("Result samples %d != collected results %d", lat.Result.Count, results)
			}
			if lat.PunctDelay.Count != 0 || lat.Purge.Count != 0 {
				t.Errorf("XJoin recorded PunctDelay=%d Purge=%d samples, want 0/0",
					lat.PunctDelay.Count, lat.Purge.Count)
			}
			// Disk-pass results carry positive latency (the spilled partner
			// waited); the distribution must reflect that.
			if lat.Result.Max <= 0 {
				t.Errorf("max result latency = %d, want > 0 (disk-pass results wait)", lat.Result.Max)
			}
		})
	}
}
