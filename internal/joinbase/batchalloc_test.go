package joinbase

import (
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestBatchedProbeRunDoesNotAllocate pins the batched hot path to the
// PR 1 zero-alloc budget: a batch-shaped run — one cache invalidation
// (the batch boundary) followed by a run of probe misses served through
// the seq-guarded memoizing probe — performs no allocation at batch
// length 8. The first probe after the boundary memoizes into the
// per-Base scratch; the rest are cache hits.
func TestBatchedProbeRunDoesNotAllocate(t *testing.T) {
	base := benchBase(&testing.B{})
	for i := 0; i < 256; i++ {
		tp := stream.MustTuple(benchSchemaB, stream.Time(i+1),
			value.Int(int64(i)), value.Str("x"))
		if _, err := base.States[1].Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	probe := stream.MustTuple(benchSchemaA, 1<<40, value.Int(1<<30), value.Str("p"))
	// Warm up the scratch buffers to steady state.
	if _, err := base.ProbeOpposite(0, probe); err != nil {
		t.Fatal(err)
	}
	base.InvalidateProbeCache()
	allocs := testing.AllocsPerRun(100, func() {
		base.InvalidateProbeCache()
		for j := 0; j < 8; j++ {
			if _, err := base.ProbeOpposite(0, probe); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("batched probe run allocates %.1f objects per 8-probe batch, want 0", allocs)
	}
}
