package joinbase

import (
	"testing"

	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

var (
	scA = stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "p", Kind: value.KindString},
	)
	scB = stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "q", Kind: value.KindString},
	)
)

func newBase(t *testing.T, nbuckets int) (*Base, *[]*stream.Tuple) {
	t.Helper()
	stA, err := store.NewState("A", 0, nbuckets, store.NewMemSpill())
	if err != nil {
		t.Fatal(err)
	}
	stB, err := store.NewState("B", 0, nbuckets, store.NewMemSpill())
	if err != nil {
		t.Fatal(err)
	}
	out, err := scA.Concat("out", scB)
	if err != nil {
		t.Fatal(err)
	}
	results := &[]*stream.Tuple{}
	b, err := New(stA, stB, out, func(tp *stream.Tuple) error {
		*results = append(*results, tp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, results
}

func aTup(k int64, ts stream.Time) *stream.Tuple {
	return stream.MustTuple(scA, ts, value.Int(k), value.Str("a"))
}

func bTup(k int64, ts stream.Time) *stream.Tuple {
	return stream.MustTuple(scB, ts, value.Int(k), value.Str("b"))
}

func TestNewValidation(t *testing.T) {
	stA, _ := store.NewState("A", 0, 4, store.NewMemSpill())
	stB, _ := store.NewState("B", 0, 8, store.NewMemSpill())
	if _, err := New(nil, stB, nil, func(*stream.Tuple) error { return nil }); err == nil {
		t.Error("nil state should error")
	}
	if _, err := New(stA, stB, nil, func(*stream.Tuple) error { return nil }); err == nil {
		t.Error("bucket count mismatch should error")
	}
	stB2, _ := store.NewState("B", 0, 4, store.NewMemSpill())
	if _, err := New(stA, stB2, nil, nil); err == nil {
		t.Error("nil emit should error")
	}
}

func TestProbeOppositeOrientation(t *testing.T) {
	b, results := newBase(t, 4)
	b.States[0].Insert(aTup(1, 1))
	// A B-side arrival probes side 0: result must be A-values first.
	n, err := b.ProbeOpposite(1, bTup(1, 2))
	if err != nil || n != 1 {
		t.Fatalf("probe = %d, %v", n, err)
	}
	r := (*results)[0]
	if !r.Values[1].Equal(value.Str("a")) || !r.Values[3].Equal(value.Str("b")) {
		t.Errorf("orientation wrong: %v", r)
	}
	// An A-side arrival probing side 1 keeps the same orientation.
	b.States[1].Insert(bTup(2, 3))
	if _, err := b.ProbeOpposite(0, aTup(2, 4)); err != nil {
		t.Fatal(err)
	}
	r = (*results)[1]
	if !r.Values[1].Equal(value.Str("a")) || !r.Values[3].Equal(value.Str("b")) {
		t.Errorf("orientation wrong for A arrival: %v", r)
	}
	if b.M.TuplesOut != 2 {
		t.Errorf("TuplesOut = %d", b.M.TuplesOut)
	}
}

func TestRelocateSpillsUntilUnderThreshold(t *testing.T) {
	b, _ := newBase(t, 4)
	for i := int64(0); i < 40; i++ {
		b.States[i%2].Insert(aTupOrB(int(i%2), i, stream.Time(i+1)))
	}
	total := b.States[0].MemBytes() + b.States[1].MemBytes()
	if err := b.Relocate(100, total/2, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.States[0].MemBytes() + b.States[1].MemBytes(); got >= total/2 {
		t.Errorf("memory %d still >= threshold %d", got, total/2)
	}
	if b.M.Relocations == 0 || b.M.SpilledTuples == 0 {
		t.Error("relocation metrics not recorded")
	}
	// Disabled threshold is a no-op.
	before := b.M.Relocations
	if err := b.Relocate(200, 0, nil); err != nil {
		t.Fatal(err)
	}
	if b.M.Relocations != before {
		t.Error("Relocate with zero threshold spilled")
	}
}

func aTupOrB(side int, k int64, ts stream.Time) *stream.Tuple {
	if side == 0 {
		return aTup(k, ts)
	}
	return bTup(k, ts)
}

func TestRelocateBeforeSpillHook(t *testing.T) {
	b, _ := newBase(t, 2)
	for i := int64(0); i < 10; i++ {
		b.States[0].Insert(aTup(i, stream.Time(i+1)))
	}
	var calls [][2]int
	err := b.Relocate(50, 1, func(side, bucket int) error {
		calls = append(calls, [2]int{side, bucket})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Error("beforeSpill hook never invoked")
	}
}

func TestDiskPassJoinsSpilledAgainstLater(t *testing.T) {
	b, results := newBase(t, 1)
	// a1 arrives and is spilled before b1 arrives.
	b.States[0].Insert(aTup(1, 1))
	if _, err := b.States[0].SpillBucket(0, 2); err != nil {
		t.Fatal(err)
	}
	// b1 arrives at t=3: probes memory, finds nothing, inserts.
	if _, err := b.ProbeOpposite(1, bTup(1, 3)); err != nil {
		t.Fatal(err)
	}
	b.States[1].Insert(bTup(1, 3))
	if len(*results) != 0 {
		t.Fatal("memory probe should have missed the spilled tuple")
	}
	if !b.NeedsPass() {
		t.Fatal("NeedsPass should be true with disk data")
	}
	if err := b.DiskPass(10, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Fatalf("disk pass produced %d results, want 1", len(*results))
	}
	// A second pass must not duplicate the pair.
	if err := b.DiskPass(20, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Errorf("second pass duplicated: %d results", len(*results))
	}
}

func TestDiskPassSkipsMemoryJoinedPairs(t *testing.T) {
	b, results := newBase(t, 1)
	// a1 and b1 overlap in memory: the memory join pairs them.
	b.States[0].Insert(aTup(1, 1))
	if _, err := b.ProbeOpposite(0, aTup(1, 1)); err != nil { // simulate a1's arrival probe (no match)
		t.Fatal(err)
	}
	if _, err := b.ProbeOpposite(1, bTup(1, 2)); err != nil {
		t.Fatal(err)
	}
	b.States[1].Insert(bTup(1, 2))
	if len(*results) != 1 {
		t.Fatalf("memory join results = %d", len(*results))
	}
	// Later, a1 spills. The disk pass must NOT rejoin the pair.
	if _, err := b.States[0].SpillBucket(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.DiskPass(10, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Errorf("disk pass duplicated a memory-joined pair: %d results", len(*results))
	}
}

func TestDiskPassBothSidesSpilled(t *testing.T) {
	b, results := newBase(t, 1)
	// a1 spills at t=2; b1 arrives at t=3 and spills at t=4.
	b.States[0].Insert(aTup(1, 1))
	b.States[0].SpillBucket(0, 2)
	b.States[1].Insert(bTup(1, 3))
	b.States[1].SpillBucket(0, 4)
	if err := b.DiskPass(10, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Fatalf("disk-disk pair: %d results, want 1", len(*results))
	}
	if err := b.DiskPass(20, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Errorf("disk-disk pair duplicated: %d", len(*results))
	}
}

func TestDiskPassIncrementalBetweenPasses(t *testing.T) {
	b, results := newBase(t, 1)
	b.States[0].Insert(aTup(1, 1))
	b.States[0].SpillBucket(0, 2)
	// First pass with no opposite tuples: nothing.
	if err := b.DiskPass(5, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 0 {
		t.Fatal("nothing to join yet")
	}
	// b1 arrives after the first pass.
	b.States[1].Insert(bTup(1, 7))
	if err := b.DiskPass(10, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 1 {
		t.Fatalf("pair arriving between passes: %d results", len(*results))
	}
}

func TestDiskPassHooks(t *testing.T) {
	b, _ := newBase(t, 1)
	b.States[0].Insert(aTup(1, 1))
	b.States[0].Insert(aTup(2, 2))
	b.States[0].SpillBucket(0, 3)

	var indexed, discarded []int64
	hooks := PassHooks{
		IndexDisk: func(side int, s *store.StoredTuple) {
			indexed = append(indexed, s.T.Values[0].IntVal())
		},
		DropDisk: func(side int, s *store.StoredTuple) bool {
			return s.T.Values[0].IntVal() == 1
		},
		OnDiscard: func(side int, s *store.StoredTuple) {
			discarded = append(discarded, s.T.Values[0].IntVal())
		},
	}
	if err := b.DiskPass(10, hooks); err != nil {
		t.Fatal(err)
	}
	if len(indexed) != 2 {
		t.Errorf("IndexDisk saw %d tuples", len(indexed))
	}
	if len(discarded) != 1 || discarded[0] != 1 {
		t.Errorf("OnDiscard = %v", discarded)
	}
	if got := b.States[0].Stats().DiskTuples; got != 1 {
		t.Errorf("disk tuples after drop = %d", got)
	}
	if b.M.Purged != 1 {
		t.Errorf("Purged = %d", b.M.Purged)
	}
}

func TestDiskPassClearsPurgeBuffers(t *testing.T) {
	b, results := newBase(t, 1)
	// b1 spilled; a1 arrives later, then is purged into the buffer.
	b.States[1].Insert(bTup(1, 1))
	b.States[1].SpillBucket(0, 2)
	a := aTup(1, 3)
	sd, _ := b.States[0].Insert(a)
	removed := b.States[0].FilterMem(0, func(x *store.StoredTuple) bool { return x == sd })
	if len(removed) != 1 {
		t.Fatal("setup failed")
	}
	b.States[0].AddToPurgeBuffer(0, sd, 4)

	dropped := 0
	err := b.DiskPass(10, PassHooks{
		OnDiscard: func(int, *store.StoredTuple) { dropped++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The left-over join a1 x b1 happened, then a1 was discarded.
	if len(*results) != 1 {
		t.Errorf("purge-buffer left-over join missing: %d results", len(*results))
	}
	if dropped != 1 {
		t.Errorf("OnDiscard calls = %d", dropped)
	}
	if b.States[0].Stats().PurgeTuples != 0 {
		t.Error("purge buffer not cleared")
	}
	if b.NeedsPass() != true { // B still has disk data
		t.Error("NeedsPass should remain true while disk data exists")
	}
}

func TestNeedsPassFalseWhenClean(t *testing.T) {
	b, _ := newBase(t, 2)
	if b.NeedsPass() {
		t.Error("fresh base needs no pass")
	}
	b.States[0].Insert(aTup(1, 1))
	if b.NeedsPass() {
		t.Error("memory-only state needs no pass")
	}
}

func TestReachable(t *testing.T) {
	mk := func(ats, dts stream.Time) *store.StoredTuple {
		return &store.StoredTuple{T: aTup(1, ats), DTS: dts}
	}
	cases := []struct {
		name string
		x, y *store.StoredTuple
		t    stream.Time
		want bool
	}{
		{"disk vs later mem", mk(1, 5), mk(8, store.InMemory), 10, true},
		{"disk vs not yet arrived", mk(1, 5), mk(20, store.InMemory), 10, false},
		{"both mem", mk(1, store.InMemory), mk(2, store.InMemory), 10, false},
		{"both disk", mk(1, 3), mk(5, 8), 10, true},
		{"y disk x mem", mk(9, store.InMemory), mk(1, 4), 10, true},
	}
	for _, c := range cases {
		if got := reachable(c.x, c.y, c.t); got != c.want {
			t.Errorf("%s: reachable = %v, want %v", c.name, got, c.want)
		}
	}
}
