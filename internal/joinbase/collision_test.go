package joinbase

import (
	"fmt"
	"sort"
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestDiskPassFullHashCollisions forces every key onto one full 64-bit
// hash (and therefore one bucket) and runs the memory-join/spill/disk-
// pass cycle: the equi-join must still emit exactly the equal-key pairs,
// each exactly once — the group index's collision handling must not leak
// into residence-interval bookkeeping or disk-pass candidate checks.
func TestDiskPassFullHashCollisions(t *testing.T) {
	b, results := newBase(t, 4)
	for side := 0; side < 2; side++ {
		b.States[side].SetHashFuncForTest(func(value.Value) uint64 { return 7 })
	}

	var ts stream.Time
	arrive := func(side int, tp *stream.Tuple) {
		t.Helper()
		if _, err := b.ProbeOpposite(side, tp); err != nil {
			t.Fatal(err)
		}
		if _, err := b.States[side].Insert(tp); err != nil {
			t.Fatal(err)
		}
	}

	// Interleave arrivals of keys 0..3 on both sides, spilling side A
	// mid-stream so later B arrivals owe disk joins.
	for i := 0; i < 8; i++ {
		ts++
		arrive(0, aTup(int64(i%4), ts))
	}
	ts++
	if v := b.States[0].LargestMemBucket(); v < 0 {
		t.Fatal("no spill victim")
	} else if _, err := b.States[0].SpillBucket(v, ts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ts++
		arrive(1, bTup(int64(i%4), ts))
	}
	ts++
	if !b.NeedsPass() {
		t.Fatal("disk pass not owed")
	}
	if err := b.DiskPass(ts, PassHooks{}); err != nil {
		t.Fatal(err)
	}

	// Every key appears twice per side: the exact join is 4 pairs per key.
	var got []string
	for _, tp := range *results {
		got = append(got, fmt.Sprintf("%s-%s", tp.Values[0], tp.Values[2]))
	}
	sort.Strings(got)
	var want []string
	for k := 0; k < 4; k++ {
		for n := 0; n < 4; n++ {
			want = append(want, fmt.Sprintf("%d-%d", k, k))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d pairs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair multiset diverges at %d: got %v", i, got)
		}
	}
}
