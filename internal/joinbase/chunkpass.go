package joinbase

import (
	"pjoin/internal/obs"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// ChunkPass is the incremental form of DiskPass: the same joins, purges
// and rewrites, split into bounded steps that interleave with the memory
// join instead of one stop-the-world pass. Each Step does one unit of
// work — reads one spill chunk, checks one batch of candidate pairs, or
// finalises one bucket — so the operator's hot path never stalls for
// longer than the chunk budget.
//
// # Correctness under interleaving
//
// A bucket is opened at some time tPass: its purge buffer is taken, its
// memory portion snapshotted, and a spill cursor fixed over its on-disk
// bytes. Everything that happens to the bucket while the pass is in
// flight keeps the snapshot's pair decisions exact:
//
//   - New arrivals are not in the snapshot. Their ATS > tPass, so no
//     pair involving them is reachable at tPass — they are the next
//     pass's responsibility, which sees them because lastPass[i] is set
//     to tPass, not to a later time.
//   - Tuples that leave the memory portion mid-pass (relocation or
//     purge) only have their DTS stamped — the snapshot still holds the
//     pointers, and a DTS moving from InMemory to some T' > tPass
//     changes neither reachability at tPass nor overlap with any
//     snapshot tuple (overlap compares intervals that both started
//     before tPass).
//   - Spills that race with the pass append to the partition after the
//     cursor's snapshot end; the cursor never returns them (duplicate
//     safety) and the rewrite preserves them via the cursor's tail.
//
// Since reachability is monotone, every non-overlapping pair is still
// emitted exactly once: by the first (chunked or blocking) pass whose
// bucket-open time reaches it.
type ChunkPass struct {
	b      *Base
	hooks  PassHooks
	budget int // bytes per chunk read
	pairs  int // pair checks per join step

	startExamined int64
	startJoins    int64

	bucket int // next bucket index to open
	cur    *chunkBucket

	// Scratch reused across buckets: only one bucket is in flight at a
	// time, and nothing below escapes a bucket's finalise.
	diskBuf [2][]*store.StoredTuple
	memBuf  [2][]*store.StoredTuple
	sideBuf [2][]*store.StoredTuple
}

// chunkBucket is the in-flight state of one bucket's pass.
type chunkBucket struct {
	i     int
	tPass stream.Time // bucket-open time: the pass's "now" for this bucket
	last  stream.Time // lastPass watermark when the bucket opened

	scans      [2]*store.DiskScan
	disk       [2][]*store.StoredTuple
	purge      [2][]*store.StoredTuple
	mem        [2][]*store.StoredTuple // snapshotted at open (see doc above)
	sides      [2][]*store.StoredTuple // disk ++ purge ++ mem, same order as DiskPass
	indexDirty [2]bool                 // IndexDisk assigned a pid → rewrite must persist it

	readSide  int // 0, 1 while reading chunks; 2 = join phase
	assembled bool
	xi, yi    int // resumable nested-loop position
}

// pairsPerStep converts the byte budget into a pair-check budget for the
// join phase, so CPU-bound steps are bounded like I/O-bound ones.
func pairsPerStep(budget int) int {
	p := budget / 8
	if p < 64 {
		p = 64
	}
	return p
}

// StartChunkPass begins an incremental disk pass with the given chunk
// budget in bytes (<= 0 falls back to store.DefaultScanChunk). The pass
// counts as one DiskPass; the caller drives it with Step until done.
func (b *Base) StartChunkPass(hooks PassHooks, budget int) *ChunkPass {
	if budget <= 0 {
		budget = store.DefaultScanChunk
	}
	b.M.DiskPasses++
	return &ChunkPass{
		b: b, hooks: hooks, budget: budget, pairs: pairsPerStep(budget),
		startExamined: b.M.DiskExamined,
		startJoins:    b.M.DiskJoins,
	}
}

// Step performs one bounded unit of the pass at time now and reports
// whether the pass is complete. Cheap bookkeeping (skipping empty
// buckets, assembling sides) rides along with the next real unit.
func (p *ChunkPass) Step(now stream.Time) (bool, error) {
	b := p.b
	exBefore, joBefore := b.M.DiskExamined, b.M.DiskJoins
	for {
		if p.cur == nil {
			if p.bucket >= b.States[0].NumBuckets() {
				b.Obs.Event(obs.KindDiskPass, now, -1,
					b.M.DiskExamined-p.startExamined, b.M.DiskJoins-p.startJoins)
				return true, nil
			}
			cb, err := p.openBucket(p.bucket, now)
			if err != nil {
				return false, err
			}
			p.bucket++
			if cb == nil {
				continue
			}
			p.cur = cb
		}
		cb := p.cur

		// Read phase: one spill chunk per step, side 0 then side 1,
		// indexing disk tuples in the same order as the blocking pass.
		if cb.readSide < 2 {
			s := cb.readSide
			ds := cb.scans[s]
			if ds == nil {
				cb.readSide++
				continue
			}
			before := len(cb.disk[s])
			var done bool
			var err error
			cb.disk[s], done, err = ds.Next(p.budget, cb.disk[s])
			if err != nil {
				b.Obs.SpillError(now, s, err)
				return false, err
			}
			if p.hooks.IndexDisk != nil {
				for _, dt := range cb.disk[s][before:] {
					pid := dt.PID
					p.hooks.IndexDisk(s, dt)
					if dt.PID != pid {
						cb.indexDirty[s] = true
					}
				}
			}
			if done {
				cb.readSide++
			}
			p.step(now, exBefore, joBefore)
			return false, nil
		}

		if !cb.assembled {
			for s := 0; s < 2; s++ {
				all := p.sideBuf[s][:0]
				all = append(all, cb.disk[s]...)
				all = append(all, cb.purge[s]...)
				all = append(all, cb.mem[s]...)
				cb.sides[s] = all
				p.sideBuf[s] = all
			}
			cb.assembled = true
		}

		// Join phase: one batch of pair checks per step, resuming the
		// nested loop where the last step left off. Identical predicates
		// and iteration order to the blocking pass at time tPass.
		if cb.xi < len(cb.sides[0]) && len(cb.sides[1]) > 0 {
			pairs := p.pairs
			for cb.xi < len(cb.sides[0]) && pairs > 0 {
				x := cb.sides[0][cb.xi]
				kx := b.States[0].Key(x.T)
				ys := cb.sides[1]
				for cb.yi < len(ys) && pairs > 0 {
					y := ys[cb.yi]
					cb.yi++
					pairs--
					b.M.DiskExamined++
					if !b.States[1].Key(y.T).Equal(kx) {
						continue
					}
					if x.Overlaps(y) {
						continue // already joined by the memory join
					}
					if reachable(x, y, cb.last) {
						continue // already joined by an earlier pass
					}
					if !reachable(x, y, cb.tPass) {
						continue // a later pass's responsibility
					}
					if err := b.emitPair(0, x, y); err != nil {
						return false, err
					}
					b.M.DiskJoins++
				}
				if cb.yi >= len(ys) {
					cb.xi++
					cb.yi = 0
				}
			}
			if cb.xi < len(cb.sides[0]) {
				p.step(now, exBefore, joBefore)
				return false, nil
			}
		}

		// Bucket complete: discard the purge snapshot and rewrite the
		// disk portions — one finalise step per bucket.
		if err := p.finishBucket(cb, now); err != nil {
			return false, err
		}
		p.cur = nil
		p.step(now, exBefore, joBefore)
		return false, nil
	}
}

// step records one executed chunk step.
func (p *ChunkPass) step(now stream.Time, exBefore, joBefore int64) {
	p.b.M.DiskChunks++
	p.b.Obs.Event(obs.KindDiskChunk, now, -1,
		p.b.M.DiskExamined-exBefore, p.b.M.DiskJoins-joBefore)
}

// openBucket snapshots bucket i for the pass, or returns nil if the
// bucket has nothing to do (no disk data, no purge buffer).
func (p *ChunkPass) openBucket(i int, now stream.Time) (*chunkBucket, error) {
	b := p.b
	a, bb := b.States[0], b.States[1]
	if !a.HasDisk(i) && !bb.HasDisk(i) &&
		len(a.Bucket(i).PurgeBuf) == 0 && len(bb.Bucket(i).PurgeBuf) == 0 {
		return nil, nil
	}
	cb := &chunkBucket{i: i, tPass: now, last: b.lastPass[i]}
	if p.hooks.OnBucketOpen != nil {
		p.hooks.OnBucketOpen()
	}
	for s := 0; s < 2; s++ {
		st := b.States[s]
		ds, err := st.OpenDiskScan(i)
		if err != nil {
			b.Obs.SpillError(now, s, err)
			return nil, err
		}
		cb.scans[s] = ds
		cb.purge[s] = st.TakePurgeBuffer(i)
		cb.mem[s] = st.Bucket(i).AppendMem(p.memBuf[s][:0])
		p.memBuf[s] = cb.mem[s]
		cb.disk[s] = p.diskBuf[s][:0]
	}
	return cb, nil
}

// finishBucket discards the purge snapshot, filters the disk snapshot
// through DropDisk, and rewrites the on-disk portion when needed.
func (p *ChunkPass) finishBucket(cb *chunkBucket, now stream.Time) error {
	b := p.b
	for s := 0; s < 2; s++ {
		for _, pt := range cb.purge[s] {
			if p.hooks.OnDiscard != nil {
				p.hooks.OnDiscard(s, pt)
			}
		}
	}
	for s := 0; s < 2; s++ {
		ds := cb.scans[s]
		if ds == nil {
			continue
		}
		keep := cb.disk[s][:0]
		dropped := false
		for _, dt := range cb.disk[s] {
			if p.hooks.DropDisk != nil && p.hooks.DropDisk(s, dt) {
				if p.hooks.OnDiscard != nil {
					p.hooks.OnDiscard(s, dt)
				}
				b.M.Purged++
				dropped = true
				continue
			}
			keep = append(keep, dt)
		}
		// Rewrite when tuples were dropped or a pid assignment must
		// persist; a pure re-scan leaves the partition untouched (unlike
		// the blocking pass, which rewrites whenever IndexDisk is set —
		// incremental passes run far more often, so they only pay the
		// write when the bytes actually changed).
		rewrite := dropped || cb.indexDirty[s]
		if err := b.States[s].FinishDiskScan(ds, keep, rewrite); err != nil {
			b.Obs.SpillError(now, s, err)
			return err
		}
		p.diskBuf[s] = cb.disk[s][:0]
	}
	b.lastPass[cb.i] = cb.tPass
	return nil
}
