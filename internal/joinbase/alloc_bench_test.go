package joinbase

import (
	"fmt"
	"testing"

	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Allocation micro-benchmarks for the memory-join hot path. The probe
// machinery itself (key extraction, bucket scan, match collection) must
// not allocate: ProbeOpposite reuses a per-Base match buffer and
// arrival scratch. Result construction inevitably allocates (one output
// tuple per match), so the zero-allocation claim is benchmarked on the
// probe-miss path, where no result is built.

var benchSchemaA = stream.MustSchema("a",
	stream.Field{Name: "k", Kind: value.KindInt},
	stream.Field{Name: "pa", Kind: value.KindString},
)
var benchSchemaB = stream.MustSchema("b",
	stream.Field{Name: "k", Kind: value.KindInt},
	stream.Field{Name: "pb", Kind: value.KindString},
)

func benchBase(b *testing.B) *Base {
	b.Helper()
	sa, err := store.NewState("a", 0, 64, store.NewMemSpill())
	if err != nil {
		b.Fatal(err)
	}
	sb, err := store.NewState("b", 0, 64, store.NewMemSpill())
	if err != nil {
		b.Fatal(err)
	}
	base, err := New(sa, sb, nil, func(*stream.Tuple) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	return base
}

// BenchmarkProbeMiss measures the probe machinery alone: the opposite
// state holds 1024 tuples across 64 buckets, and the probed key never
// matches. Expected: 0 allocs/op.
func BenchmarkProbeMiss(b *testing.B) {
	base := benchBase(b)
	for i := 0; i < 1024; i++ {
		tp := stream.MustTuple(benchSchemaB, stream.Time(i+1),
			value.Int(int64(i)), value.Str("x"))
		if _, err := base.States[1].Insert(tp); err != nil {
			b.Fatal(err)
		}
	}
	probe := stream.MustTuple(benchSchemaA, 1<<40, value.Int(1<<30), value.Str("p"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.ProbeOpposite(0, probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeHit measures a probe that matches `fanout` stored
// tuples: per op this is fanout result tuples built and emitted, with
// the match collection itself served from the reused scratch buffer.
func BenchmarkProbeHit(b *testing.B) {
	for _, fanout := range []int{1, 8} {
		b.Run(fmt.Sprintf("fanout%d", fanout), func(b *testing.B) {
			base := benchBase(b)
			for i := 0; i < fanout; i++ {
				tp := stream.MustTuple(benchSchemaB, stream.Time(i+1),
					value.Int(7), value.Str("x"))
				if _, err := base.States[1].Insert(tp); err != nil {
					b.Fatal(err)
				}
			}
			probe := stream.MustTuple(benchSchemaA, 1<<40, value.Int(7), value.Str("p"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := base.ProbeOpposite(0, probe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsert measures state insertion (group index append +
// stats). StoredTuple boxes come from a slab (one allocation per
// storedChunk inserts) and index nodes from a free list once the state
// has churned; the benchmark tracks that steady-state insertion stays
// near one small object per tuple at worst.
func BenchmarkInsert(b *testing.B) {
	base := benchBase(b)
	tuples := make([]*stream.Tuple, 4096)
	for i := range tuples {
		tuples[i] = stream.MustTuple(benchSchemaA, stream.Time(i+1),
			value.Int(int64(i%512)), value.Str("x"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.States[0].Insert(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
		// Keep the state bounded so the benchmark measures insertion,
		// not an ever-growing scan space.
		if i%4096 == 4095 {
			b.StopTimer()
			nb := benchBase(b)
			base.States[0] = nb.States[0]
			b.StartTimer()
		}
	}
}

// TestProbeMissDoesNotAllocate enforces the zero-allocation probe path:
// the match buffer and the arrival's StoredTuple box are per-Base
// scratch, not per-tuple garbage.
func TestProbeMissDoesNotAllocate(t *testing.T) {
	base := benchBase(&testing.B{})
	for i := 0; i < 256; i++ {
		tp := stream.MustTuple(benchSchemaB, stream.Time(i+1),
			value.Int(int64(i)), value.Str("x"))
		if _, err := base.States[1].Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	probe := stream.MustTuple(benchSchemaA, 1<<40, value.Int(1<<30), value.Str("p"))
	// Warm up so the scratch buffer reaches steady-state capacity.
	if _, err := base.ProbeOpposite(0, probe); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := base.ProbeOpposite(0, probe); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("probe-miss path allocates %.1f objects per probe, want 0", allocs)
	}
}
