// Package joinbase holds the machinery shared by the binary hash joins
// (PJoin and the XJoin baseline): the symmetric two-state layout, memory
// probing, memory-overflow relocation, and the duplicate-free disk pass
// that finishes the joins left over by state relocation.
//
// # Duplicate avoidance
//
// Every stored tuple carries its memory-residence interval [ATS, DTS):
// ATS is the arrival time, DTS the moment it left the memory-resident
// portion (spill to disk, or move to the purge buffer); DTS is InMemory
// while resident. The memory join handles exactly the pairs whose
// residence intervals overlap — when the later tuple arrived, the
// earlier one was memory-resident and got probed. Every other matching
// pair must be produced by a disk pass, exactly once.
//
// A pair (a, b) is "reachable" by a disk pass at time T when one side
// had already departed memory and the other had arrived:
//
//	reachable(a,b,T) = (a.DTS <= T && b.ATS <= T) || (b.DTS <= T && a.ATS <= T)
//
// A disk pass over a bucket at time T joins the pairs that are reachable
// now but were not reachable at the bucket's previous pass, skipping
// overlapping pairs (already joined in memory). Since reachability is
// monotone in T, each non-overlapping pair is emitted by exactly the
// first pass at which it becomes reachable. A final pass at end-of-
// stream reaches everything left.
package joinbase

import (
	"fmt"

	"pjoin/internal/obs"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// EmitFunc receives one join result (the A-side tuple's values followed
// by the B-side tuple's values).
type EmitFunc func(*stream.Tuple) error

// Metrics counts the work a join performed; the simulator charges costs
// from these and the benches report them.
type Metrics struct {
	TuplesIn      [2]int64 // data tuples consumed per side
	PunctsIn      [2]int64 // punctuations consumed per side
	TuplesOut     int64    // join results emitted
	PunctsOut     int64    // punctuations propagated
	Examined      int64    // stored tuples examined by memory probes
	DiskExamined  int64    // pair checks performed by disk passes
	DiskJoins     int64    // results produced by disk passes
	Relocations   int64    // buckets spilled
	SpilledTuples int64    // tuples moved to disk
	DiskPasses    int64    // disk passes executed
	DiskChunks    int64    // bounded steps executed by incremental disk passes
	Purged        int64    // tuples purged from the state (PJoin)
	PurgeScanned  int64    // tuples examined by purge scans (PJoin)
	PurgeRuns     int64    // purge component invocations (PJoin)
	DroppedOnFly  int64    // tuples never inserted thanks to punctuations
	IndexScanned  int64    // tuples examined by punctuation index builds
	Batches       int64    // ProcessBatch invocations (0 on the per-item path)
}

// Add accumulates o into m field by field. Parallel joins (a sharded
// PJoin is N independent instances over a partitioned key space) sum
// their shards' counters through it; each shard's Metrics value is a
// snapshot taken under that shard's lock, so the aggregation itself
// involves no shared mutable state.
func (m *Metrics) Add(o Metrics) {
	for s := 0; s < 2; s++ {
		m.TuplesIn[s] += o.TuplesIn[s]
		m.PunctsIn[s] += o.PunctsIn[s]
	}
	m.TuplesOut += o.TuplesOut
	m.PunctsOut += o.PunctsOut
	m.Examined += o.Examined
	m.DiskExamined += o.DiskExamined
	m.DiskJoins += o.DiskJoins
	m.Relocations += o.Relocations
	m.SpilledTuples += o.SpilledTuples
	m.DiskPasses += o.DiskPasses
	m.DiskChunks += o.DiskChunks
	m.Purged += o.Purged
	m.PurgeScanned += o.PurgeScanned
	m.PurgeRuns += o.PurgeRuns
	m.DroppedOnFly += o.DroppedOnFly
	m.IndexScanned += o.IndexScanned
	m.Batches += o.Batches
}

// Base is the symmetric two-state core of a binary equi-join.
type Base struct {
	States [2]*store.State
	Out    *stream.Schema
	Emit   EmitFunc
	M      Metrics

	// Obs is the owning operator's instrumentation handle; nil (the
	// default) disables observability. Base records the events it owns:
	// spill relocations, disk-join passes, and spill-store failures.
	Obs *obs.Instr

	lastPass []stream.Time // per bucket; both states share the bucket space

	// probeCache and arrival are per-probe scratch reused across
	// ProbeOpposite calls so the memory-join hot path performs no
	// allocation of its own (result construction still allocates, the
	// probe machinery does not). probeCache[s] memoizes the last probe
	// of States[s] (seq-guarded, see store.MemProbe), which turns a run
	// of same-key probes against an unchanged state — the common shape
	// inside a batch — into one hash + group lookup. Base is
	// single-goroutine by contract (operators are serialised by their
	// driver), so one scratch set per Base suffices.
	probeCache [2]store.MemProbe
	arrival    store.StoredTuple
}

// New builds a Base over two freshly created states with the same bucket
// count (required: a join key must land in the same bucket index on both
// sides).
func New(a, b *store.State, out *stream.Schema, emit EmitFunc) (*Base, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("joinbase: nil state")
	}
	if a.NumBuckets() != b.NumBuckets() {
		return nil, fmt.Errorf("joinbase: bucket counts differ: %d vs %d", a.NumBuckets(), b.NumBuckets())
	}
	if emit == nil {
		return nil, fmt.Errorf("joinbase: nil emit function")
	}
	return &Base{
		States:   [2]*store.State{a, b},
		Out:      out,
		Emit:     emit,
		lastPass: make([]stream.Time, a.NumBuckets()),
	}, nil
}

// emitPair emits the result for the pair, putting the side-0 tuple's
// values first regardless of which side is "a" in the caller.
func (b *Base) emitPair(sideOfX int, x, y *store.StoredTuple) error {
	var res *stream.Tuple
	if sideOfX == 0 {
		res = x.T.Join(y.T)
	} else {
		res = y.T.Join(x.T)
	}
	b.M.TuplesOut++
	return b.Emit(res)
}

// ProbeOpposite joins a new arrival on side s against the opposite
// state's memory-resident portion, emitting all results. It returns the
// number of matches produced. Probes are memoized through the opposite
// state's seq-guarded MemProbe: an identical-key probe with no state
// mutation in between (a hot-key run inside a batch) is answered from
// the cache, with the examined count a fresh probe would have reported.
//
// The probe machinery itself is zero-alloc; result construction
// (Tuple.Join inside emitPair) allocates the output tuple by design
// and lives outside this package's call graph.
//
//pjoin:hotpath
func (b *Base) ProbeOpposite(s int, t *stream.Tuple) (int, error) {
	opp := b.States[1-s]
	key := b.States[s].Key(t)
	matches, examined := opp.ProbeMemCached(key, &b.probeCache[1-s])
	b.M.Examined += int64(examined)
	b.arrival = store.StoredTuple{T: t, DTS: store.InMemory}
	for _, m := range matches {
		if err := b.emitPair(1-s, m, &b.arrival); err != nil {
			return 0, err
		}
	}
	return len(matches), nil
}

// InvalidateProbeCache releases both sides' memoized probes so the
// cache never pins tuples the states have purged or spilled. Owners
// call it at batch boundaries and from Finish; correctness does not
// depend on it (the seq guard already rejects stale hits), only GC
// hygiene does.
//
//pjoin:hotpath
func (b *Base) InvalidateProbeCache() {
	b.probeCache[0].Release()
	b.probeCache[1].Release()
}

// Relocate implements the memory-overflow resolution (paper §3.3,
// following XJoin): while the combined memory-resident size is at or
// above memBytes, spill the largest bucket of the larger state to disk.
// beforeSpill, if non-nil, is invoked with (side, bucket) before each
// spill so the caller can index the bucket's tuples first (PJoin needs
// disk-resident tuples to carry their pids).
func (b *Base) Relocate(now stream.Time, memBytes int64, beforeSpill func(side, bucket int) error) error {
	if memBytes <= 0 {
		return nil
	}
	for b.States[0].MemBytes()+b.States[1].MemBytes() >= memBytes {
		side := 0
		if b.States[1].MemBytes() > b.States[0].MemBytes() {
			side = 1
		}
		victim := b.States[side].LargestMemBucket()
		if victim < 0 {
			// Fall back to the other side before giving up.
			side = 1 - side
			victim = b.States[side].LargestMemBucket()
			if victim < 0 {
				return nil // nothing resident anywhere
			}
		}
		if beforeSpill != nil {
			if err := beforeSpill(side, victim); err != nil {
				return err
			}
		}
		n, err := b.States[side].SpillBucket(victim, now)
		if err != nil {
			b.Obs.SpillError(now, side, err)
			return err
		}
		b.M.Relocations++
		b.M.SpilledTuples += int64(n)
		b.Obs.Event(obs.KindRelocate, now, side, int64(n), int64(victim))
	}
	return nil
}

// PassHooks customise a disk pass. All fields may be nil.
type PassHooks struct {
	// OnBucketOpen is called when the pass opens a bucket for
	// processing, before any of its tuples are read or joined. An
	// incremental pass interleaves with arrivals, so hooks that consult
	// operator state which can move mid-pass (PJoin's disk purge
	// consults the punctuation sets) capture their decision basis here:
	// a bucket's drops may only be justified by punctuations already
	// present at its open, because later punctuations' left-over joins
	// against tuples parked after the bucket's snapshot belong to the
	// NEXT pass — dropping on their account would lose those pairs.
	OnBucketOpen func()
	// IndexDisk is called for every disk-resident tuple read by the
	// pass, letting PJoin assign pids to tuples that were spilled before
	// a matching punctuation arrived.
	IndexDisk func(side int, s *store.StoredTuple)
	// DropDisk reports whether a disk-resident tuple should be purged
	// instead of written back after the pass (PJoin's disk-side purge).
	DropDisk func(side int, s *store.StoredTuple) bool
	// OnDiscard is called for every tuple that leaves the state during
	// the pass: purge-buffer tuples (always discarded) and disk tuples
	// for which DropDisk returned true. PJoin decrements punctuation
	// counts here.
	OnDiscard func(side int, s *store.StoredTuple)
}

// NeedsPass reports whether a disk pass would do anything: some bucket
// has disk-resident data or a non-empty purge buffer.
func (b *Base) NeedsPass() bool {
	for s := 0; s < 2; s++ {
		st := b.States[s]
		if st.AnyDisk() {
			return true
		}
		for i := 0; i < st.NumBuckets(); i++ {
			if len(st.Bucket(i).PurgeBuf) > 0 {
				return true
			}
		}
	}
	return false
}

// DiskPass performs one full disk pass at time now: for every bucket
// with disk-resident data or purge-buffer tuples on either side, it
// finishes all newly reachable left-over joins (see the package comment
// for the exactly-once argument), clears the purge buffers, and rewrites
// the disk portions (minus tuples DropDisk rejects).
func (b *Base) DiskPass(now stream.Time, hooks PassHooks) error {
	b.M.DiskPasses++
	examinedBefore, joinsBefore := b.M.DiskExamined, b.M.DiskJoins
	for i := 0; i < b.States[0].NumBuckets(); i++ {
		if err := b.passBucket(i, now, hooks); err != nil {
			return err
		}
	}
	b.Obs.Event(obs.KindDiskPass, now, -1,
		b.M.DiskExamined-examinedBefore, b.M.DiskJoins-joinsBefore)
	return nil
}

func (b *Base) passBucket(i int, now stream.Time, hooks PassHooks) error {
	a, bb := b.States[0], b.States[1]
	if !a.HasDisk(i) && !bb.HasDisk(i) &&
		len(a.Bucket(i).PurgeBuf) == 0 && len(bb.Bucket(i).PurgeBuf) == 0 {
		return nil
	}
	last := b.lastPass[i]
	if hooks.OnBucketOpen != nil {
		hooks.OnBucketOpen()
	}

	// Assemble each side's full population of the bucket: disk portion,
	// purge buffer, and memory portion.
	var sides [2][]*store.StoredTuple
	var disk [2][]*store.StoredTuple
	for s := 0; s < 2; s++ {
		st := b.States[s]
		d, err := st.ReadDisk(i)
		if err != nil {
			b.Obs.SpillError(now, s, err)
			return err
		}
		if hooks.IndexDisk != nil {
			for _, dt := range d {
				hooks.IndexDisk(s, dt)
			}
		}
		disk[s] = d
		all := make([]*store.StoredTuple, 0, len(d)+st.Bucket(i).MemLen()+len(st.Bucket(i).PurgeBuf))
		all = append(all, d...)
		all = append(all, st.Bucket(i).PurgeBuf...)
		all = st.Bucket(i).AppendMem(all)
		sides[s] = all
	}

	// Join every newly reachable, non-overlapping pair.
	for _, x := range sides[0] {
		kx := b.States[0].Key(x.T)
		for _, y := range sides[1] {
			b.M.DiskExamined++
			if !b.States[1].Key(y.T).Equal(kx) {
				continue
			}
			if x.Overlaps(y) {
				continue // already joined by the memory join
			}
			if reachable(x, y, last) {
				continue // already joined by an earlier pass
			}
			if !reachable(x, y, now) {
				continue // not this pass's responsibility (cannot happen for now >= all stamps, kept for safety)
			}
			if err := b.emitPair(0, x, y); err != nil {
				return err
			}
			b.M.DiskJoins++
		}
	}

	// The pass completed every join the purge-buffer tuples could still
	// owe: discard them.
	for s := 0; s < 2; s++ {
		for _, pt := range b.States[s].TakePurgeBuffer(i) {
			if hooks.OnDiscard != nil {
				hooks.OnDiscard(s, pt)
			}
		}
	}

	// Rewrite the disk portions, dropping what DropDisk rejects.
	for s := 0; s < 2; s++ {
		if len(disk[s]) == 0 {
			continue
		}
		keep := disk[s][:0]
		dropped := false
		for _, dt := range disk[s] {
			if hooks.DropDisk != nil && hooks.DropDisk(s, dt) {
				if hooks.OnDiscard != nil {
					hooks.OnDiscard(s, dt)
				}
				b.M.Purged++
				dropped = true
				continue
			}
			keep = append(keep, dt)
		}
		// Rewrite when tuples were dropped, or when IndexDisk may have
		// updated pids that must persist.
		if dropped || hooks.IndexDisk != nil {
			if err := b.States[s].RewriteDisk(i, keep); err != nil {
				b.Obs.SpillError(now, s, err)
				return err
			}
		}
	}

	b.lastPass[i] = now
	return nil
}

// reachable reports whether pair (x, y) was reachable by a disk pass at
// time T: one tuple had departed memory and the other had arrived.
func reachable(x, y *store.StoredTuple, t stream.Time) bool {
	return (x.DTS <= t && y.ATS() <= t) || (y.DTS <= t && x.ATS() <= t)
}
