package joinbase

import (
	"runtime"
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// spilledBase builds a Base with nTuples per side spread over the bucket
// space, then relocates until everything memory-resident is on disk, so
// a disk pass has real work on every bucket.
func spilledBase(tb testing.TB, nTuples int) *Base {
	tb.Helper()
	var b testing.B
	base := benchBase(&b)
	for i := 0; i < nTuples; i++ {
		ta := stream.MustTuple(benchSchemaA, stream.Time(2*i+1),
			value.Int(int64(i%97)), value.Str("a"))
		tbp := stream.MustTuple(benchSchemaB, stream.Time(2*i+2),
			value.Int(int64(i%89)), value.Str("b"))
		if _, err := base.States[0].Insert(ta); err != nil {
			tb.Fatal(err)
		}
		if _, err := base.States[1].Insert(tbp); err != nil {
			tb.Fatal(err)
		}
	}
	if err := base.Relocate(stream.Time(10*nTuples), 1, nil); err != nil {
		tb.Fatal(err)
	}
	if !base.NeedsPass() {
		tb.Fatal("setup produced no disk-resident work")
	}
	return base
}

// passMallocs runs fn under a heap-allocation meter and returns the
// number of objects it allocated.
func passMallocs(tb testing.TB, fn func() error) uint64 {
	tb.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := fn(); err != nil {
		tb.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestChunkedPassAllocsNoWorseThanBlocking is the allocation guard for
// the incremental disk join: over the same spilled state, a chunked
// pass driven step-by-step must not allocate materially more than the
// equivalent blocking pass. The chunked form carries bounded extra
// fixed overhead (the ChunkPass struct, one snapshot bundle and scan
// cursor per bucket) but its per-tuple hot path — read, decode, index,
// pair checks, rewrite — must be allocation-identical to blocking; the
// 15% + constant envelope below fails if per-step or per-tuple garbage
// sneaks in.
func TestChunkedPassAllocsNoWorseThanBlocking(t *testing.T) {
	const tuples = 4096
	now := stream.Time(100 * tuples)

	blockingBase := spilledBase(t, tuples)
	blocking := passMallocs(t, func() error {
		return blockingBase.DiskPass(now, PassHooks{})
	})

	chunkedBase := spilledBase(t, tuples)
	chunked := passMallocs(t, func() error {
		p := chunkedBase.StartChunkPass(PassHooks{}, 512)
		for {
			done, err := p.Step(now)
			if err != nil || done {
				return err
			}
		}
	})

	if blockingBase.M.DiskExamined != chunkedBase.M.DiskExamined ||
		blockingBase.M.DiskJoins != chunkedBase.M.DiskJoins {
		t.Fatalf("passes did different work: blocking examined=%d joins=%d, chunked examined=%d joins=%d",
			blockingBase.M.DiskExamined, blockingBase.M.DiskJoins,
			chunkedBase.M.DiskExamined, chunkedBase.M.DiskJoins)
	}
	if chunkedBase.M.DiskChunks < 2 {
		t.Fatalf("budget did not split the pass: %d chunks", chunkedBase.M.DiskChunks)
	}
	// Fixed allowance: a few small objects per bucket (snapshot bundle,
	// cursors) on top of blocking's own per-bucket slices.
	buckets := chunkedBase.States[0].NumBuckets()
	limit := blocking + blocking*15/100 + uint64(8*buckets)
	if chunked > limit {
		t.Errorf("chunked pass allocated %d objects vs blocking %d (limit %d over %d chunks)",
			chunked, blocking, limit, chunkedBase.M.DiskChunks)
	}
	t.Logf("allocs: blocking=%d chunked=%d (%d chunks, %d buckets)",
		blocking, chunked, chunkedBase.M.DiskChunks, buckets)
}
