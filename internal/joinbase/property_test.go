package joinbase

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

// TestRandomScheduleExactlyOnce drives Base through random interleavings
// of arrivals, spills, purges-to-buffer and disk passes, and checks the
// emitted pair multiset equals the exact equi-join: every matching pair
// exactly once, regardless of when residence intervals were cut.
func TestRandomScheduleExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := vtime.NewRNG(seed)
			b, results := newBase(t, 2)

			type ref struct {
				side int
				id   int
				key  int64
			}
			var all []ref
			nextID := [2]int{}
			var ts stream.Time
			// banned[s][k]: side s may no longer emit key k, because a
			// tuple with key k on the OTHER side was purge-buffered —
			// the purge buffer contract is "no future opposite arrivals
			// match" (it exists for punctuation-purged tuples).
			banned := [2]map[int64]bool{{}, {}}

			mkTuple := func(side int, key int64) *stream.Tuple {
				ts++
				id := nextID[side]
				nextID[side]++
				all = append(all, ref{side: side, id: id, key: key})
				payload := fmt.Sprintf("%d#%d", side, id)
				if side == 0 {
					return stream.MustTuple(scA, ts, value.Int(key), value.Str(payload))
				}
				return stream.MustTuple(scB, ts, value.Int(key), value.Str(payload))
			}

			const steps = 120
			for i := 0; i < steps; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // arrival
					side := rng.Intn(2)
					key := int64(rng.Intn(5))
					if banned[side][key] {
						continue
					}
					tp := mkTuple(side, key)
					if _, err := b.ProbeOpposite(side, tp); err != nil {
						t.Fatal(err)
					}
					if _, err := b.States[side].Insert(tp); err != nil {
						t.Fatal(err)
					}
				case 6, 7: // spill a random victim bucket
					side := rng.Intn(2)
					if v := b.States[side].LargestMemBucket(); v >= 0 {
						ts++
						if _, err := b.States[side].SpillBucket(v, ts); err != nil {
							t.Fatal(err)
						}
					}
				case 8: // move a random memory tuple to the purge buffer
					side := rng.Intn(2)
					st := b.States[side]
					for bu := 0; bu < st.NumBuckets(); bu++ {
						if st.Bucket(bu).MemLen() == 0 {
							continue
						}
						victim := st.Bucket(bu).AppendMem(nil)[0]
						removed := st.FilterMem(bu, func(s *store.StoredTuple) bool { return s == victim })
						ts++
						st.AddToPurgeBuffer(bu, removed[0], ts)
						// Honour the purge-buffer contract: the other
						// side will never emit this key again.
						banned[1-side][victim.T.Values[0].IntVal()] = true
						break
					}
				case 9: // disk pass
					ts++
					if err := b.DiskPass(ts, PassHooks{}); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Final pass reaches everything left over. Note purge-buffer
			// tuples must be fully joined BEFORE they were buffered for
			// this schedule to be join-preserving; since this test
			// buffers arbitrary tuples (no punctuation guarantees), run
			// the final pass first, which completes their left-over
			// joins before discarding them.
			ts++
			if err := b.DiskPass(ts, PassHooks{}); err != nil {
				t.Fatal(err)
			}

			// Oracle: every (A-tuple, B-tuple) pair with equal keys.
			want := map[string]int{}
			for _, x := range all {
				if x.side != 0 {
					continue
				}
				for _, y := range all {
					if y.side != 1 || y.key != x.key {
						continue
					}
					want[fmt.Sprintf("%d#%d|%d#%d", 0, x.id, 1, y.id)]++
				}
			}
			got := map[string]int{}
			for _, r := range *results {
				got[fmt.Sprintf("%s|%s", r.Values[1].StrVal(), r.Values[3].StrVal())]++
			}
			var keys []string
			for k := range want {
				keys = append(keys, k)
			}
			for k := range got {
				if _, ok := want[k]; !ok {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			bad := 0
			for _, k := range keys {
				if got[k] != want[k] {
					bad++
					if bad <= 5 {
						t.Errorf("pair %q: got %d, want %d", k, got[k], want[k])
					}
				}
			}
			if bad > 5 {
				t.Errorf("... and %d more mismatches", bad-5)
			}
		})
	}
}

// TestPurgeBufferTupleNotProbedByLaterArrivals documents the contract
// that purge-buffered tuples are invisible to the memory join: probing
// only sees the Mem portion.
func TestPurgeBufferTupleNotProbedByLaterArrivals(t *testing.T) {
	b, results := newBase(t, 1)
	sd, _ := b.States[0].Insert(aTup(1, 1))
	removed := b.States[0].FilterMem(0, func(x *store.StoredTuple) bool { return x == sd })
	b.States[0].AddToPurgeBuffer(0, removed[0], 2)
	if _, err := b.ProbeOpposite(1, bTup(1, 3)); err != nil {
		t.Fatal(err)
	}
	if len(*results) != 0 {
		t.Error("purge-buffered tuple was probed")
	}
}

// Metrics must be internally consistent after a random run.
func TestMetricsConsistency(t *testing.T) {
	b, results := newBase(t, 2)
	rng := vtime.NewRNG(3)
	var ts stream.Time
	for i := 0; i < 200; i++ {
		side := rng.Intn(2)
		ts++
		var tp *stream.Tuple
		if side == 0 {
			tp = aTup(int64(rng.Intn(4)), ts)
		} else {
			tp = bTup(int64(rng.Intn(4)), ts)
		}
		if _, err := b.ProbeOpposite(side, tp); err != nil {
			t.Fatal(err)
		}
		b.States[side].Insert(tp)
		if i%37 == 0 {
			ts++
			// Spill through Relocate so the metrics are exercised.
			if err := b.Relocate(ts, 1, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	ts++
	if err := b.DiskPass(ts, PassHooks{}); err != nil {
		t.Fatal(err)
	}
	m := b.M
	if int(m.TuplesOut) != len(*results) {
		t.Errorf("TuplesOut %d != emitted %d", m.TuplesOut, len(*results))
	}
	if m.DiskJoins > m.DiskExamined {
		t.Error("more disk joins than pair checks")
	}
	if m.SpilledTuples == 0 || m.Relocations == 0 {
		t.Error("spills not recorded")
	}
	if m.DiskPasses != 1 {
		t.Errorf("DiskPasses = %d", m.DiskPasses)
	}
}

// A quick sanity check that results render with both sides' payloads,
// guarding the orientation contract the property test depends on.
func TestResultPayloadPositions(t *testing.T) {
	b, results := newBase(t, 1)
	b.States[0].Insert(aTup(9, 1))
	if _, err := b.ProbeOpposite(1, bTup(9, 2)); err != nil {
		t.Fatal(err)
	}
	r := (*results)[0]
	if !strings.Contains(r.Values[1].StrVal(), "a") || !strings.Contains(r.Values[3].StrVal(), "b") {
		t.Errorf("payload positions wrong: %v", r)
	}
}
