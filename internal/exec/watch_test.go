package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pjoin/internal/gen"
	"pjoin/internal/obs/health"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// TestWatchStopsWithPipeline is the lifecycle regression: a watcher
// that never fires must not keep Run from returning once the operators
// drain (watchers are joined AFTER the drain, not counted in it).
func TestWatchStopsWithPipeline(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	sel, err := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	if err != nil {
		t.Fatal(err)
	}
	p.SourceItems(src, items(t, 20), false)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	sink := p.Sink(out)

	var probes atomic.Int64
	d := health.NewDetector(health.Config{StallWindow: stream.Time(time.Hour)})
	p.Watch(d, time.Millisecond, func() health.Progress {
		n := probes.Add(1)
		// Output keeps advancing: never a stall.
		return health.Progress{Now: stream.Time(n), TuplesIn: n, TuplesOut: n}
	}, func(health.Report) { t.Error("healthy pipeline fired the detector") })

	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return: watcher kept the pipeline alive")
	}
	if got := len(sink.Tuples()); got != 20 {
		t.Errorf("tuples through = %d", got)
	}
	if d.Fired() {
		t.Error("detector fired on a healthy pipeline")
	}
}

// TestWatchFiresOnStall feeds the watcher fabricated progress samples
// showing input flowing while output is stuck; the detector must fire
// exactly once and deliver the report to onFire.
func TestWatchFiresOnStall(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	sel, err := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	if err != nil {
		t.Fatal(err)
	}
	// A paced source parks the pipeline long enough for several probe
	// ticks before the (instant) items flow.
	its := items(t, 5)
	for i := range its {
		tu := *its[i].Tuple
		tu.Ts = stream.Time(200+i) * stream.Millisecond
		its[i] = stream.TupleItem(&tu)
	}
	p.SourceItems(src, its, true)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)

	var (
		mu      sync.Mutex
		reports []health.Report
		probes  atomic.Int64
	)
	d := health.NewDetector(health.Config{StallWindow: 3})
	p.Watch(d, time.Millisecond, func() health.Progress {
		n := probes.Add(1)
		// Input advances, output frozen: a stall from the first sample.
		return health.Progress{Now: stream.Time(n), TuplesIn: n, TuplesOut: 0}
	}, func(r health.Report) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 {
		t.Fatalf("onFire invoked %d times, want 1", len(reports))
	}
	if reports[0].Reason != "stall" {
		t.Errorf("reason = %q, want stall", reports[0].Reason)
	}
	if !d.Fired() {
		t.Error("detector not latched after firing")
	}
}
