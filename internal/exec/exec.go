// Package exec runs operator pipelines live: one goroutine per operator,
// items flowing through buffered channels, back-pressure by channel
// blocking. It is the runtime half of the mini query engine (the
// simulator in internal/sim is the measurement half — both drive the
// same op.Operator implementations).
//
// The executor owns arrival timestamping: every item entering an
// operator is restamped with a strictly increasing timestamp (never
// below the wall-clock elapsed time), which is the property the join
// operators' duplicate-avoidance bookkeeping requires.
//
// The restamping contract is shard-safe: a parallel operator such as
// parallel.ShardedPJoin receives one strictly increasing sequence on its
// driver goroutine, routes items to internal workers over FIFO queues,
// and therefore hands every worker a subsequence that is again strictly
// increasing — no shared clock or further coordination is needed.
package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pjoin/internal/obs"
	"pjoin/internal/obs/health"
	"pjoin/internal/obs/span"
	"pjoin/internal/op"
	"pjoin/internal/stream"
)

// Edge is a channel between pipeline stages. It implements op.Emitter
// for the upstream operator; the downstream operator reads from it.
//
// An edge runs in one of two modes, fixed at creation (Pipeline.Edge
// reads BatchSize): per-item (ch carries one stream.Item per send — the
// default, and the paper-figure regime) or batched (bch carries pooled
// []stream.Item slices; Emit accumulates under mu and a cut sends the
// whole buffer in one channel operation). Batch boundaries never cross
// punctuations or EOS: any non-tuple item flushes the buffer with
// itself as the last element, so constraint information is never
// delayed behind buffered data. With BatchLinger > 0, tuples may wait
// in the buffer for at most that long (a one-shot timer cuts the
// batch); with linger zero every Emit flushes, which keeps batch-mode
// latency identical to per-item at the cost of fill.
type Edge struct {
	p  *Pipeline
	ch chan stream.Item
	// Batched mode (nil ch):
	bch    chan []stream.Item
	size   int
	linger time.Duration

	mu     sync.Mutex //pjoin:lockrank leaf
	buf    []stream.Item
	armed  bool // a linger timer callback is pending
	closed bool
	// sink marks an edge consumed by Sink rather than an operator. Sink
	// edges skip tuple_cut spans: result tuples inherit their sampled
	// ancestor's trace, so a join's output edge would otherwise emit one
	// cut span per result — span volume scaling with output rate — and
	// the emit → sink hop is already measured by tuple_result's D.
	sink bool
}

// batched reports the edge's mode.
func (e *Edge) batched() bool { return e.bch != nil }

// Emit implements op.Emitter. It blocks under back-pressure and fails
// when the pipeline has been cancelled.
func (e *Edge) Emit(it stream.Item) error {
	if !e.batched() {
		select {
		case e.ch <- it:
			return nil
		case <-e.p.ctx.Done():
			return fmt.Errorf("exec: pipeline cancelled: %w", context.Cause(e.p.ctx))
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.buf == nil {
		e.buf = e.p.getBatch()
	}
	e.buf = append(e.buf, it)
	switch {
	case it.Kind != stream.KindTuple:
		// Punctuations and EOS are batch boundaries: flush immediately
		// so downstream purge/propagation latency is never queued
		// behind buffered tuples.
		return e.flushLocked(true)
	case len(e.buf) >= e.size:
		return e.flushLocked(false)
	case e.linger <= 0:
		// No linger budget: every Emit flushes. Fill comes only from
		// multi-item emitters upstream of the same cut, so latency is
		// per-item-identical.
		return e.flushLocked(true)
	default:
		if !e.armed {
			e.armed = true
			time.AfterFunc(e.linger, e.onLinger)
		}
		return nil
	}
}

// onLinger is the linger timer callback: cut whatever accumulated. A
// tuple appended at time t is flushed no later than t + linger — the
// callback pending at arming time fires within linger of the oldest
// buffered tuple, and flushes everything buffered after it too.
func (e *Edge) onLinger() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.armed = false
	if e.closed {
		return
	}
	_ = e.flushLocked(true) // a cancelled pipeline drops the cut; Run reports the cause
}

// flushLocked cuts the buffer and sends it as one batch, holding e.mu
// across the send so cut order equals channel order (the consumer never
// takes e.mu, so this cannot deadlock). Empty cuts are no-ops. forced
// marks cuts not caused by the batch filling (punctuation/EOS boundary,
// linger expiry, close) for the provenance cut spans.
func (e *Edge) flushLocked(forced bool) error {
	if len(e.buf) == 0 {
		return nil
	}
	b := e.buf
	e.buf = nil
	if !e.sink && e.p.Obs.SpansEnabled() {
		m := int64(0)
		if forced {
			m = 1
		}
		for _, it := range b {
			if it.Kind == stream.KindTuple && it.Tuple.Span != 0 {
				e.p.Obs.Span(span.KindTupleCut, it.Tuple.Span, it.Ts, -1, int64(len(b)), m, 0, 0)
			}
		}
	}
	select {
	case e.bch <- b:
		return nil
	case <-e.p.ctx.Done():
		return fmt.Errorf("exec: pipeline cancelled: %w", context.Cause(e.p.ctx))
	}
}

// close ends the edge's stream: sources call it when they are done. In
// batched mode the remaining buffer is flushed first; a concurrently
// firing linger callback observes closed under the mutex and cannot
// send after the channel closes.
func (e *Edge) close() {
	if !e.batched() {
		close(e.ch)
		return
	}
	e.mu.Lock()
	e.closed = true
	_ = e.flushLocked(true)
	e.mu.Unlock()
	close(e.bch)
}

// Pipeline assembles sources, operators and sinks, then runs them all
// concurrently.
type Pipeline struct {
	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup
	// watchers holds health-watcher goroutines (see Watch); they outlive
	// the operator drain and are joined after cancellation in Run.
	watchers sync.WaitGroup
	start    time.Time

	errOnce sync.Once
	err     error

	// IdlePoll is how often an operator with stalled inputs gets an
	// OnIdle call (0 disables; default 5ms). Set before Run.
	IdlePoll time.Duration

	// BufferSize is the channel capacity for new edges (default 256).
	BufferSize int

	// BatchSize selects the dataflow granularity for edges created after
	// it is set: ≤ 1 (the default) keeps today's per-item path exactly;
	// > 1 makes edges carry batches of up to BatchSize items. Batch-mode
	// semantics are observably identical to per-item — punctuations and
	// EOS always cut batches, and operators see the same call sequence
	// through op.ProcessAll — only the per-item channel and wakeup
	// overhead is amortized. Set before creating edges.
	BatchSize int

	// BatchLinger bounds how long a tuple may wait in an edge buffer
	// before the batch is cut (0, the default, flushes on every Emit, so
	// batching adds no latency; fill then comes only from bursts already
	// queued upstream). Only meaningful when BatchSize > 1. Set before
	// creating edges.
	BatchLinger time.Duration

	// batchPool recycles batch buffers between edge cuts and consumers.
	batchPool sync.Pool

	// Obs is the pipeline's observability handle; each spawned operator
	// gets a derived handle stamped with its name, and the executor
	// records operator lifecycle events (start, finish) on it. nil
	// disables observability. Set before Run.
	Obs *obs.Instr

	// SpanSampler admits source tuples into provenance tracing (see
	// internal/obs/span): a sampled tuple is copied, stamped with a
	// fresh trace ID in Tuple.Span, and followed through edge cuts,
	// driver delivery, probes and result emission. nil admits nothing.
	// Only effective when Obs carries a span tracer. Set before Run.
	SpanSampler *span.Sampler

	// Clock returns the elapsed offset since pipeline start used for
	// restamping and for idle/pull timestamps. nil (the default) reads
	// the wall clock; tests inject a fake to pin timing-dependent
	// behaviour. Set before Run.
	Clock func() time.Duration

	launched []func()
	pulls    map[op.Operator]*PullHandle
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &Pipeline{
		ctx: ctx, cancel: cancel,
		IdlePoll: 5 * time.Millisecond, BufferSize: 256,
		pulls: make(map[op.Operator]*PullHandle),
	}
}

// Edge allocates a new channel edge — per-item, or batched when
// BatchSize > 1 (the mode is fixed at creation).
func (p *Pipeline) Edge() *Edge {
	n := p.BufferSize
	if n <= 0 {
		n = 256
	}
	if p.BatchSize > 1 {
		return &Edge{p: p, bch: make(chan []stream.Item, n), size: p.BatchSize, linger: p.BatchLinger}
	}
	return &Edge{p: p, ch: make(chan stream.Item, n)}
}

// getBatch returns an empty batch buffer with capacity for a full batch.
//
//pjoin:pool get
func (p *Pipeline) getBatch() []stream.Item {
	if b, ok := p.batchPool.Get().(*[]stream.Item); ok {
		return (*b)[:0]
	}
	n := p.BatchSize
	if n < 1 {
		n = 1
	}
	return make([]stream.Item, 0, n)
}

// putBatch recycles a consumed batch buffer, clearing the tuple pointers
// so the pool does not pin them.
//
//pjoin:pool put
func (p *Pipeline) putBatch(b []stream.Item) {
	for i := range b {
		b[i] = stream.Item{}
	}
	b = b[:0]
	p.batchPool.Put(&b)
}

// elapsed is the offset since pipeline start on the configured clock.
func (p *Pipeline) elapsed() time.Duration {
	if p.Clock != nil {
		return p.Clock()
	}
	return time.Since(p.start)
}

// sysNow converts the clock offset into the operator's time domain:
// never at or below lastTs, the timestamp of the last item the operator
// processed. Every timestamp handed to an operator — item restamps,
// OnIdle pulses, pull-mode propagation — must come through this clamp;
// feeding raw wall-clock to OnIdle while items carry clamped timestamps
// would let the operator's clock run backwards whenever restamping had
// pushed item times ahead of the wall.
func (p *Pipeline) sysNow(lastTs stream.Time) stream.Time {
	//pjoin:allow opcontract sysNow IS the sanctioned wall-to-stream clamp: every executor timestamp funnels through here
	now := stream.Time(p.elapsed())
	if now <= lastTs {
		now = lastTs + 1
	}
	return now
}

func (p *Pipeline) fail(err error) {
	if err == nil {
		return
	}
	p.errOnce.Do(func() {
		p.err = err
		p.cancel(err)
	})
}

// Source feeds the given items into out in order and closes it. If paced
// is true, each item is released no earlier than its own timestamp
// (interpreted as an offset from pipeline start); otherwise items flow
// as fast as downstream accepts them. The source does NOT append an EOS
// item: include one (or use SourceItems which does).
func (p *Pipeline) Source(out *Edge, items []stream.Item, paced bool) {
	p.launched = append(p.launched, func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer out.close()
			sin := p.Obs.Derive("source", -1)
			for _, it := range items {
				if paced {
					target := p.start.Add(time.Duration(it.Ts))
					if d := time.Until(target); d > 0 {
						select {
						case <-time.After(d):
						case <-p.ctx.Done():
							return
						}
					}
				}
				if it.Kind == stream.KindTuple && sin.SpansEnabled() && p.SpanSampler.Sample() {
					// Copy before stamping the trace: the caller owns the
					// tuple and may share it across sources or replays.
					t := *it.Tuple
					t.Span = span.NewID()
					it = stream.TupleItem(&t)
					sin.Span(span.KindTupleIngest, t.Span, it.Ts, -1, 0, 0, 0, 0)
				}
				if err := out.Emit(it); err != nil {
					return
				}
			}
		}()
	})
}

// SourceItems is Source plus an automatic trailing EOS.
func (p *Pipeline) SourceItems(out *Edge, items []stream.Item, paced bool) {
	withEOS := make([]stream.Item, 0, len(items)+1)
	withEOS = append(withEOS, items...)
	var last stream.Time
	if len(items) > 0 {
		last = items[len(items)-1].Ts
	}
	withEOS = append(withEOS, stream.EOSItem(last+1))
	p.Source(out, withEOS, paced)
}

// portItem tags an item with the input port it arrived on.
type portItem struct {
	port int
	item stream.Item
}

// portBatch tags a batch with the input port it arrived on.
type portBatch struct {
	port  int
	items []stream.Item
}

// PropagationPuller is implemented by operators that can be asked to
// release propagable punctuations on demand (core.PJoin's pull mode,
// paper §3.5).
type PropagationPuller interface {
	RequestPropagation(now stream.Time) error
}

// PullHandle requests propagation from a spawned operator. The request
// is delivered to the operator's own driver goroutine and serviced
// there, so callers on other goroutines (typically a downstream
// operator's emitter path) never touch the operator directly. Requests
// coalesce: while one is pending, further Request calls are no-ops.
type PullHandle struct {
	ch chan struct{}
}

// Request asks for a propagation round. It never blocks.
func (h *PullHandle) Request() {
	select {
	case h.ch <- struct{}{}:
	default:
	}
}

// Pull returns a handle that asks the (already spawned) operator to
// propagate punctuations. The operator must implement
// PropagationPuller.
func (p *Pipeline) Pull(o op.Operator) (*PullHandle, error) {
	if _, ok := o.(PropagationPuller); !ok {
		return nil, fmt.Errorf("exec: %s does not support pull-mode propagation", o.Name())
	}
	h, ok := p.pulls[o]
	if !ok {
		return nil, fmt.Errorf("exec: %s was not spawned on this pipeline", o.Name())
	}
	return h, nil
}

// Spawn wires the operator to its input edges (one per port, in port
// order) and schedules it to run. The operator's emitter must already
// point at an Edge created from this pipeline (or any op.Emitter).
func (p *Pipeline) Spawn(o op.Operator, inputs ...*Edge) error {
	if o == nil {
		return fmt.Errorf("exec: Spawn of nil operator")
	}
	if len(inputs) != o.NumPorts() {
		return fmt.Errorf("exec: %s has %d ports, got %d inputs", o.Name(), o.NumPorts(), len(inputs))
	}
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("exec: %s: nil input edge %d", o.Name(), i)
		}
	}
	ins := make([]*Edge, len(inputs))
	copy(ins, inputs)
	h := &PullHandle{ch: make(chan struct{}, 1)}
	p.pulls[o] = h
	p.launched = append(p.launched, func() { p.runOperator(o, ins, h) })
	return nil
}

func (p *Pipeline) runOperator(o op.Operator, inputs []*Edge, pull *PullHandle) {
	for _, in := range inputs {
		if in.batched() {
			p.runOperatorBatched(o, inputs, pull)
			return
		}
	}
	merged := make(chan portItem, len(inputs))
	var fanIn sync.WaitGroup
	for port, in := range inputs {
		fanIn.Add(1)
		go func(port int, in *Edge) {
			defer fanIn.Done()
			for it := range in.ch {
				select {
				case merged <- portItem{port: port, item: it}:
				case <-p.ctx.Done():
					return
				}
			}
		}(port, in)
	}
	go func() {
		fanIn.Wait()
		close(merged)
	}()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		oin := p.Obs.Derive(o.Name(), -1)
		//pjoin:allow opcontract op-start is an executor lifecycle event stamped before any item exists to clamp against
		oin.Event(obs.KindOpStart, stream.Time(p.elapsed()), -1, 0, 0)
		var lastTs stream.Time
		// stamp assigns the system arrival timestamp: strictly
		// increasing, at least the wall-clock offset since start. Item
		// rebuilds preserve provenance: the tuple copy carries
		// Tuple.Span, and the punctuation item's trace (Item.Span) is
		// restamped onto the rebuilt item. A sampled tuple gets a
		// deliver span whose D is the restamp delta — its time queued
		// on the edge (plus batch linger).
		stamp := func(port int, it stream.Item) stream.Item {
			ts := p.sysNow(lastTs)
			lastTs = ts
			switch it.Kind {
			case stream.KindTuple:
				t := *it.Tuple
				t.Ts = ts
				if t.Span != 0 && oin.SpansEnabled() {
					d := int64(ts) - int64(it.Tuple.Ts)
					if d < 0 {
						d = 0
					}
					oin.Span(span.KindTupleDeliver, t.Span, ts, port, 0, 0, 0, d)
				}
				return stream.TupleItem(&t)
			case stream.KindPunct:
				out := stream.PunctItem(it.Punct, ts)
				out.Span = it.Span
				return out
			default:
				return stream.EOSItem(ts)
			}
		}
		eosSeen := 0
		var idleTimer *time.Timer
		var idleC <-chan time.Time
		resetIdle := func() {
			if p.IdlePoll <= 0 {
				return
			}
			if idleTimer == nil {
				idleTimer = time.NewTimer(p.IdlePoll)
			} else {
				idleTimer.Reset(p.IdlePoll)
			}
			idleC = idleTimer.C
		}
		resetIdle()
		for {
			select {
			case pi, ok := <-merged:
				if !ok {
					// All input channels closed before every port sent
					// EOS: a protocol violation upstream.
					p.fail(fmt.Errorf("exec: %s: inputs closed with %d of %d EOS seen",
						o.Name(), eosSeen, o.NumPorts()))
					return
				}
				it := stamp(pi.port, pi.item)
				if it.Kind == stream.KindEOS {
					eosSeen++
				}
				if err := o.Process(pi.port, it, it.Ts); err != nil {
					p.fail(fmt.Errorf("exec: %s: %w", o.Name(), err))
					return
				}
				if eosSeen == o.NumPorts() {
					// Every port ended; flush and emit our own EOS.
					if err := o.Finish(lastTs + 1); err != nil {
						p.fail(fmt.Errorf("exec: %s: %w", o.Name(), err))
						return
					}
					oin.Event(obs.KindOpFinish, lastTs+1, -1, 0, 0)
					return
				}
				resetIdle()
			case <-pull.ch:
				pp, ok := o.(PropagationPuller)
				if !ok {
					break // requests to non-pullers are ignored
				}
				if err := pp.RequestPropagation(p.sysNow(lastTs)); err != nil {
					p.fail(fmt.Errorf("exec: %s pull: %w", o.Name(), err))
					return
				}
			case <-idleC:
				if _, err := o.OnIdle(p.sysNow(lastTs)); err != nil {
					p.fail(fmt.Errorf("exec: %s idle: %w", o.Name(), err))
					return
				}
				resetIdle()
			case <-p.ctx.Done():
				return
			}
		}
	}()
}

// runOperatorBatched is the batch-granular driver: one wakeup drains a
// whole input batch, restamps its items in place (the buffer is owned by
// the consumer once received), and dispatches through op.ProcessAll — an
// op.BatchProcessor gets the slice in one call, any other operator sees
// exactly the per-item call sequence. Mixed wiring (a per-item edge into
// an operator that also has batched inputs) is handled by wrapping each
// item as a one-item batch at the fan-in.
func (p *Pipeline) runOperatorBatched(o op.Operator, inputs []*Edge, pull *PullHandle) {
	merged := make(chan portBatch, len(inputs))
	var fanIn sync.WaitGroup
	for port, in := range inputs {
		fanIn.Add(1)
		go func(port int, in *Edge) {
			defer fanIn.Done()
			if in.batched() {
				for b := range in.bch {
					select {
					case merged <- portBatch{port: port, items: b}:
					case <-p.ctx.Done():
						return
					}
				}
				return
			}
			for it := range in.ch {
				b := append(p.getBatch(), it)
				select {
				case merged <- portBatch{port: port, items: b}:
				case <-p.ctx.Done():
					p.putBatch(b)
					return
				}
			}
		}(port, in)
	}
	go func() {
		fanIn.Wait()
		close(merged)
	}()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		oin := p.Obs.Derive(o.Name(), -1)
		//pjoin:allow opcontract op-start is an executor lifecycle event stamped before any item exists to clamp against
		oin.Event(obs.KindOpStart, stream.Time(p.elapsed()), -1, 0, 0)
		var lastTs stream.Time
		// stamp mirrors the per-item driver: strictly increasing system
		// arrival timestamps, at least the wall-clock offset since start.
		// Items in one batch get consecutive clamped stamps, exactly the
		// sequence per-item delivery of the same burst would produce.
		// Provenance survives the rebuild exactly as in the per-item
		// driver (Tuple.Span via the copy, Item.Span restamped).
		stamp := func(port int, it stream.Item) stream.Item {
			ts := p.sysNow(lastTs)
			lastTs = ts
			switch it.Kind {
			case stream.KindTuple:
				t := *it.Tuple
				t.Ts = ts
				if t.Span != 0 && oin.SpansEnabled() {
					d := int64(ts) - int64(it.Tuple.Ts)
					if d < 0 {
						d = 0
					}
					oin.Span(span.KindTupleDeliver, t.Span, ts, port, 0, 0, 0, d)
				}
				return stream.TupleItem(&t)
			case stream.KindPunct:
				out := stream.PunctItem(it.Punct, ts)
				out.Span = it.Span
				return out
			default:
				return stream.EOSItem(ts)
			}
		}
		eosSeen := 0
		var idleTimer *time.Timer
		var idleC <-chan time.Time
		resetIdle := func() {
			if p.IdlePoll <= 0 {
				return
			}
			if idleTimer == nil {
				idleTimer = time.NewTimer(p.IdlePoll)
			} else {
				idleTimer.Reset(p.IdlePoll)
			}
			idleC = idleTimer.C
		}
		resetIdle()
		for {
			select {
			case pb, ok := <-merged:
				if !ok {
					p.fail(fmt.Errorf("exec: %s: inputs closed with %d of %d EOS seen",
						o.Name(), eosSeen, o.NumPorts()))
					return
				}
				for i := range pb.items {
					it := stamp(pb.port, pb.items[i])
					pb.items[i] = it
					if it.Kind == stream.KindEOS {
						eosSeen++
					}
				}
				err := op.ProcessAll(o, pb.port, pb.items)
				p.putBatch(pb.items)
				if err != nil {
					p.fail(fmt.Errorf("exec: %s: %w", o.Name(), err))
					return
				}
				if eosSeen == o.NumPorts() {
					if err := o.Finish(lastTs + 1); err != nil {
						p.fail(fmt.Errorf("exec: %s: %w", o.Name(), err))
						return
					}
					oin.Event(obs.KindOpFinish, lastTs+1, -1, 0, 0)
					return
				}
				resetIdle()
			case <-pull.ch:
				pp, ok := o.(PropagationPuller)
				if !ok {
					break
				}
				if err := pp.RequestPropagation(p.sysNow(lastTs)); err != nil {
					p.fail(fmt.Errorf("exec: %s pull: %w", o.Name(), err))
					return
				}
			case <-idleC:
				if _, err := o.OnIdle(p.sysNow(lastTs)); err != nil {
					p.fail(fmt.Errorf("exec: %s idle: %w", o.Name(), err))
					return
				}
				resetIdle()
			case <-p.ctx.Done():
				return
			}
		}
	}()
}

// Watch polls probe on a wall-clock cadence and feeds the samples to
// the stall detector d; the first sample that fires invokes onFire
// (once — the detector is latched) on the watcher goroutine. probe must
// be safe to call concurrently with the running operators: build it
// from concurrent-safe surfaces such as obs.Live.LastValues or
// parallel.ShardedPJoin.Metrics-style locked snapshots, not from a
// single-goroutine method like core.PJoin.Metrics. The watcher stops
// when the pipeline drains or is cancelled.
func (p *Pipeline) Watch(d *health.Detector, every time.Duration, probe func() health.Progress, onFire func(health.Report)) {
	if d == nil || probe == nil || every <= 0 {
		return
	}
	p.launched = append(p.launched, func() {
		// Watchers live on their own wait group: they run until the
		// pipeline is done, so counting them in p.wg would deadlock Run
		// (which waits for p.wg BEFORE cancelling the context).
		p.watchers.Add(1)
		go func() {
			defer p.watchers.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if r, fired := d.Observe(probe()); fired {
						if onFire != nil {
							onFire(r)
						}
						return
					}
				case <-p.ctx.Done():
					return
				}
			}
		}()
	})
}

// Sink attaches a draining collector to an edge and returns it. The
// collector's contents are complete once Run returns.
func (p *Pipeline) Sink(in *Edge) *op.Collector {
	in.sink = true
	c := &op.Collector{}
	p.launched = append(p.launched, func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if in.batched() {
				for {
					select {
					case b, ok := <-in.bch:
						if !ok {
							return
						}
						c.Grow(len(b))
						err := c.EmitBatch(b)
						sawEOS := len(b) > 0 && b[len(b)-1].Kind == stream.KindEOS
						p.putBatch(b)
						if err != nil || sawEOS {
							return
						}
					case <-p.ctx.Done():
						return
					}
				}
			}
			for {
				select {
				case it, ok := <-in.ch:
					if !ok {
						return
					}
					c.Emit(it)
					if it.Kind == stream.KindEOS {
						return
					}
				case <-p.ctx.Done():
					return
				}
			}
		}()
	})
	return c
}

// Run launches everything and blocks until the pipeline drains or the
// context is cancelled. It returns the first operator error, if any.
func (p *Pipeline) Run(ctx context.Context) error {
	p.start = time.Now()
	stop := context.AfterFunc(ctx, func() {
		p.fail(fmt.Errorf("exec: external cancellation: %w", context.Cause(ctx)))
	})
	defer stop()
	for _, launch := range p.launched {
		launch()
	}
	p.launched = nil
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-p.ctx.Done():
		<-done
	}
	p.cancel(nil)
	p.watchers.Wait()
	return p.err
}
