package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/parallel"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

func items(t *testing.T, n int) []stream.Item {
	t.Helper()
	var out []stream.Item
	for i := 0; i < n; i++ {
		out = append(out, stream.TupleItem(stream.MustTuple(gen.SchemaA, stream.Time(i+1),
			value.Int(int64(i%5)), value.Str(fmt.Sprintf("a%d", i)))))
	}
	return out
}

func TestPassThroughPipeline(t *testing.T) {
	p := NewPipeline()
	src := p.Edge()
	out := p.Edge()
	sel, err := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	if err != nil {
		t.Fatal(err)
	}
	p.SourceItems(src, items(t, 50), false)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	sink := p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 50 {
		t.Errorf("tuples through = %d", got)
	}
	last := sink.Items[len(sink.Items)-1]
	if last.Kind != stream.KindEOS {
		t.Error("missing EOS at sink")
	}
}

func TestTimestampsStrictlyIncreaseAcrossPorts(t *testing.T) {
	p := NewPipeline()
	srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
	j, err := core.New(core.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
	}, out)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []stream.Item
	for i := 0; i < 100; i++ {
		a = append(a, stream.TupleItem(stream.MustTuple(gen.SchemaA, 0, value.Int(int64(i%7)), value.Str("a"))))
		b = append(b, stream.TupleItem(stream.MustTuple(gen.SchemaB, 0, value.Int(int64(i%7)), value.Str("b"))))
	}
	p.SourceItems(srcA, a, false)
	p.SourceItems(srcB, b, false)
	if err := p.Spawn(j, srcA, srcB); err != nil {
		t.Fatal(err)
	}
	sink := p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 100 x 100 over 7 keys: floor/ceil split; just verify plenty of
	// results and strictly increasing result availability.
	if got := len(sink.Tuples()); got < 1000 {
		t.Errorf("results = %d", got)
	}
}

func TestLiveFig1Plan(t *testing.T) {
	// The paper's Fig. 1(c): Open JOIN Bid on item_id, then group-by
	// item_id summing bid_increase, with punctuations driving early
	// emission all the way through.
	arrs, err := gen.Auction(gen.AuctionConfig{
		Seed:            5,
		Items:           30,
		OpenMean:        stream.Time(200_000), // 0.2ms: fast for a live test
		AuctionLength:   stream.Time(3_000_000),
		BidMean:         stream.Time(500_000),
		UniqueOpenPunct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var open, bid []stream.Item
	var bids int
	for _, a := range arrs {
		if a.Port == gen.AuctionPortOpen {
			open = append(open, a.Item)
		} else {
			bid = append(bid, a.Item)
			if a.Item.Kind == stream.KindTuple {
				bids++
			}
		}
	}

	p := NewPipeline()
	srcO, srcB, joined, grouped := p.Edge(), p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{
		SchemaA: gen.OpenSchema, SchemaB: gen.BidSchema,
		AttrA: 0, AttrB: 0,
	}
	cfg.Thresholds.Purge = 1
	cfg.Thresholds.PropagateCount = 1
	j, err := core.New(cfg, joined)
	if err != nil {
		t.Fatal(err)
	}
	outSchema := j.OutSchema()
	incAttr := outSchema.MustIndexOf("bid_increase")
	gb, err := op.NewGroupBy(outSchema, 0, incAttr, op.AggSum, grouped)
	if err != nil {
		t.Fatal(err)
	}
	p.SourceItems(srcO, open, false)
	p.SourceItems(srcB, bid, false)
	if err := p.Spawn(j, srcO, srcB); err != nil {
		t.Fatal(err)
	}
	if err := p.Spawn(gb, joined); err != nil {
		t.Fatal(err)
	}
	sink := p.Sink(grouped)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One aggregate row per item that received at least one bid.
	rows := sink.Tuples()
	if len(rows) == 0 || len(rows) > 30 {
		t.Fatalf("group rows = %d", len(rows))
	}
	// Punctuations propagated through join AND group-by.
	if len(sink.Puncts()) == 0 {
		t.Error("no punctuations made it downstream")
	}
	// Early emission: the group-by released results before EOS.
	if gb.EarlyEmitted() == 0 {
		t.Error("punctuations did not drive early group emission")
	}
	// The join state should be fully purged by the auction punctuations.
	if got := j.StateTuples(); got != 0 {
		t.Errorf("join state = %d at end", got)
	}
}

func TestOperatorErrorPropagates(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	boom := errors.New("boom")
	bad := op.EmitterFunc(func(stream.Item) error { return boom })
	sel, _ := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, bad)
	p.SourceItems(src, items(t, 5), false)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	_ = out
	err := p.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestSpawnValidation(t *testing.T) {
	p := NewPipeline()
	src := p.Edge()
	sel, _ := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, p.Edge())
	if err := p.Spawn(nil, src); err == nil {
		t.Error("nil operator should error")
	}
	if err := p.Spawn(sel); err == nil {
		t.Error("port count mismatch should error")
	}
	if err := p.Spawn(sel, nil); err == nil {
		t.Error("nil edge should error")
	}
}

func TestExternalCancellation(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	sel, _ := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	// A paced source far in the future keeps the pipeline alive.
	far := []stream.Item{stream.TupleItem(stream.MustTuple(gen.SchemaA,
		stream.Time(time.Hour), value.Int(1), value.Str("never")))}
	p.SourceItems(src, far, true)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Run(ctx)
	if err == nil {
		t.Error("cancelled run should report an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation took too long")
	}
}

func TestIncompleteEOSDetected(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	sel, _ := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	// Source WITHOUT EOS: channel closes early.
	p.Source(src, items(t, 3), false)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)
	err := p.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "EOS") {
		t.Errorf("err = %v", err)
	}
}

func TestLivePunctuationPropagation(t *testing.T) {
	p := NewPipeline()
	srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
	cfg.Thresholds.PropagateCount = 1
	j, err := core.New(cfg, out)
	if err != nil {
		t.Fatal(err)
	}
	keyP := func(k int64) stream.Item {
		return stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(k))), 0)
	}
	a := []stream.Item{
		stream.TupleItem(stream.MustTuple(gen.SchemaA, 0, value.Int(1), value.Str("a"))),
		keyP(1),
	}
	b := []stream.Item{
		stream.TupleItem(stream.MustTuple(gen.SchemaB, 0, value.Int(1), value.Str("b"))),
		keyP(1),
	}
	p.SourceItems(srcA, a, false)
	p.SourceItems(srcB, b, false)
	if err := p.Spawn(j, srcA, srcB); err != nil {
		t.Fatal(err)
	}
	sink := p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 1 {
		t.Errorf("results = %d", got)
	}
	if got := len(sink.Puncts()); got != 2 {
		t.Errorf("live propagation emitted %d punctuations, want 2", got)
	}
}

// TestPullModePropagationThroughPipeline wires §3.5's pull mode live:
// the join has NO push propagation configured; the group-by requests
// punctuations whenever it holds too many open groups, and the request
// is serviced by the join's own goroutine.
func TestPullModePropagationThroughPipeline(t *testing.T) {
	arrs, err := gen.Synthetic(gen.Config{
		Seed:     4,
		Duration: 300 * stream.Millisecond,
		A:        gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 5},
		B:        gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []stream.Item
	for _, ar := range arrs {
		if ar.Port == 0 {
			a = append(a, ar.Item)
		} else {
			b = append(b, ar.Item)
		}
	}

	p := NewPipeline()
	srcA, srcB, joined, grouped := p.Edge(), p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
	// Propagation machinery on, but no push thresholds: only pull
	// requests (and the final flush) release punctuations.
	j, err := core.New(cfg, joined)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := op.NewGroupBy(j.OutSchema(), 0, 1, op.AggCount, grouped)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Spawn(j, srcA, srcB); err != nil {
		t.Fatal(err)
	}
	if err := p.Spawn(gb, joined); err != nil {
		t.Fatal(err)
	}
	pull, err := p.Pull(j)
	if err != nil {
		t.Fatal(err)
	}
	gb.RequestPunctuations(3, pull.Request)
	sink := p.Sink(grouped)
	// Paced sources keep the join alive long enough for pull requests to
	// be serviced mid-stream.
	p.SourceItems(srcA, a, true)
	p.SourceItems(srcB, b, true)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sink.Tuples()) == 0 {
		t.Fatal("no group rows")
	}
	if gb.EarlyEmitted() == 0 {
		t.Error("pull-mode propagation never released a group before EOS")
	}
}

func TestPullValidation(t *testing.T) {
	p := NewPipeline()
	src, out := p.Edge(), p.Edge()
	sel, _ := op.NewSelect(gen.SchemaA, func(*stream.Tuple) bool { return true }, out)
	if err := p.Spawn(sel, src); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pull(sel); err == nil {
		t.Error("select is not a puller; Pull should error")
	}
	other, _ := core.New(core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}, out)
	if _, err := p.Pull(other); err == nil {
		t.Error("unspawned operator should error")
	}
}

// TestShardedPJoinPipeline drives a 4-shard parallel join through the
// live executor: restamping happens on the operator's driver goroutine,
// so each shard sees a strictly increasing subsequence (the shard-safe
// restamping contract). The joined values must match a single-instance
// pipeline run value-for-value (live restamps differ, so timestamps are
// excluded from the comparison).
func TestShardedPJoinPipeline(t *testing.T) {
	arrs, err := gen.Synthetic(gen.Config{
		Seed:      11,
		MaxTuples: 600,
		Duration:  1 << 62,
		A:         gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 8},
		B:         gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []stream.Item
	for _, ar := range arrs {
		if ar.Port == 0 {
			a = append(a, ar.Item)
		} else {
			b = append(b, ar.Item)
		}
	}

	run := func(shards int) map[string]int {
		p := NewPipeline()
		srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
		cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
		cfg.Thresholds.PropagateCount = 1
		var j op.Operator
		if shards > 1 {
			j, err = parallel.New(parallel.Config{Shards: shards, Join: cfg}, out)
		} else {
			j, err = core.New(cfg, out)
		}
		if err != nil {
			t.Fatal(err)
		}
		p.SourceItems(srcA, a, false)
		p.SourceItems(srcB, b, false)
		if err := p.Spawn(j, srcA, srcB); err != nil {
			t.Fatal(err)
		}
		sink := p.Sink(out)
		if err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		vals := map[string]int{}
		for _, tp := range sink.Tuples() {
			key := ""
			for _, v := range tp.Values {
				key += v.String() + "|"
			}
			vals[key]++
		}
		if len(sink.Puncts()) == 0 {
			t.Errorf("shards=%d: no punctuations propagated live", shards)
		}
		return vals
	}

	single := run(1)
	sharded := run(4)
	if len(single) == 0 {
		t.Fatal("no join results")
	}
	for k, n := range single {
		if sharded[k] != n {
			t.Errorf("result %q: single %d, sharded %d", k, n, sharded[k])
		}
	}
	if len(sharded) != len(single) {
		t.Errorf("distinct results: single %d, sharded %d", len(single), len(sharded))
	}
}

// TestShardedPullPropagation wires the sharded join into pull mode: the
// request is broadcast to every shard and serviced asynchronously.
func TestShardedPullPropagation(t *testing.T) {
	p := NewPipeline()
	srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
	cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
	j, err := parallel.New(parallel.Config{Shards: 2, Join: cfg}, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Spawn(j, srcA, srcB); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pull(j); err != nil {
		t.Fatalf("ShardedPJoin must be pullable: %v", err)
	}
	keyP := func(w int, k int64) stream.Item {
		return stream.PunctItem(punct.MustKeyOnly(w, 0, punct.Const(value.Int(k))), 0)
	}
	a := []stream.Item{
		stream.TupleItem(stream.MustTuple(gen.SchemaA, 0, value.Int(1), value.Str("a"))),
		keyP(2, 1),
	}
	b := []stream.Item{
		stream.TupleItem(stream.MustTuple(gen.SchemaB, 0, value.Int(1), value.Str("b"))),
		keyP(2, 1),
	}
	p.SourceItems(srcA, a, false)
	p.SourceItems(srcB, b, false)
	sink := p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 1 {
		t.Errorf("results = %d", got)
	}
	if got := len(sink.Puncts()); got != 2 {
		t.Errorf("propagated punctuations = %d, want 2", got)
	}
}

// clockAudit records every timestamp an operator is handed, tagged by
// which entry point delivered it, so tests can assert the executor
// keeps one monotone time domain across Process, OnIdle and Finish.
type clockAudit struct {
	mu    sync.Mutex
	calls []struct {
		kind string // "process", "idle", "finish"
		now  stream.Time
	}
	out op.Emitter
}

func (c *clockAudit) record(kind string, now stream.Time) {
	c.mu.Lock()
	c.calls = append(c.calls, struct {
		kind string
		now  stream.Time
	}{kind, now})
	c.mu.Unlock()
}

func (c *clockAudit) Name() string              { return "clock-audit" }
func (c *clockAudit) NumPorts() int             { return 1 }
func (c *clockAudit) OutSchema() *stream.Schema { return gen.SchemaA }

func (c *clockAudit) Process(port int, it stream.Item, now stream.Time) error {
	c.record("process", now)
	return nil
}

func (c *clockAudit) OnIdle(now stream.Time) (bool, error) {
	c.record("idle", now)
	return false, nil
}

func (c *clockAudit) Finish(now stream.Time) error {
	c.record("finish", now)
	return c.out.Emit(stream.EOSItem(now))
}

// TestOnIdleClockNeverRunsBackwards pins the executor's time-domain
// contract: OnIdle pulses use the same clamped clock as item restamping,
// so an operator never observes time moving backwards between a Process
// call and a following idle pulse. A frozen injected clock makes the
// hazard deterministic: restamping pushes item timestamps ahead of the
// wall (the strictly-increasing bump), and an unclamped idle pulse would
// then deliver wall-clock zero — i.e. the past.
func TestOnIdleClockNeverRunsBackwards(t *testing.T) {
	p := NewPipeline()
	p.Clock = func() time.Duration { return 0 } // wall frozen at start
	p.IdlePoll = time.Millisecond
	src, out := p.Edge(), p.Edge()
	audit := &clockAudit{out: out}

	// Feed a burst, stall long enough for idle pulses, then EOS. With
	// the clock frozen, every item restamp rides the +1 bump, so item
	// timestamps (1, 2, 3, ...) run ahead of the reported wall time (0).
	p.launched = append(p.launched, func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer close(src.ch)
			for _, it := range items(t, 5) {
				if src.Emit(it) != nil {
					return
				}
			}
			time.Sleep(20 * time.Millisecond) // let idle pulses fire
			src.Emit(stream.EOSItem(0))
		}()
	})
	if err := p.Spawn(audit, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	audit.mu.Lock()
	defer audit.mu.Unlock()
	var idles int
	var last stream.Time
	var lastKind string
	for i, call := range audit.calls {
		if call.kind == "idle" {
			idles++
		}
		if call.now < last {
			t.Fatalf("call %d: %s at t=%d after %s at t=%d — operator clock ran backwards",
				i, call.kind, call.now, lastKind, last)
		}
		last, lastKind = call.now, call.kind
	}
	if idles == 0 {
		t.Skip("no idle pulse fired during the stall window; nothing to check")
	}
	if audit.calls[len(audit.calls)-1].kind != "finish" {
		t.Fatalf("last call = %q, want finish", audit.calls[len(audit.calls)-1].kind)
	}
}
