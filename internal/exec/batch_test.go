package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/parallel"
	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// TestBatchedPipelineEquivalence pins the tentpole claim: batch-granular
// delivery is observably identical to per-item delivery. The same
// workload runs through per-item, batched (several batch × linger
// cells), and sharded-batched pipelines; joined value multisets and
// propagated punctuation multisets must match exactly (live restamps
// differ, so timestamps are excluded — the same comparison
// TestShardedPJoinPipeline uses).
func TestBatchedPipelineEquivalence(t *testing.T) {
	arrs, err := gen.Synthetic(gen.Config{
		Seed:      17,
		MaxTuples: 600,
		Duration:  1 << 62,
		A:         gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 8},
		B:         gen.SideSpec{TupleMean: stream.Millisecond, PunctMean: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []stream.Item
	for _, ar := range arrs {
		if ar.Port == 0 {
			a = append(a, ar.Item)
		} else {
			b = append(b, ar.Item)
		}
	}

	run := func(batch int, linger time.Duration, shards int) (map[string]int, map[string]int) {
		p := NewPipeline()
		p.BatchSize = batch
		p.BatchLinger = linger
		srcA, srcB, out := p.Edge(), p.Edge(), p.Edge()
		cfg := core.Config{SchemaA: gen.SchemaA, SchemaB: gen.SchemaB}
		cfg.Thresholds.PropagateCount = 1
		// Racing live sources interleave differently per run; retaining
		// propagated punctuations makes the propagated multiset
		// schedule-independent so it can be compared across cells.
		cfg.RetainPropagated = true
		var j op.Operator
		if shards > 1 {
			j, err = parallel.New(parallel.Config{Shards: shards, Join: cfg}, out)
		} else {
			j, err = core.New(cfg, out)
		}
		if err != nil {
			t.Fatal(err)
		}
		p.SourceItems(srcA, a, false)
		p.SourceItems(srcB, b, false)
		if err := p.Spawn(j, srcA, srcB); err != nil {
			t.Fatal(err)
		}
		sink := p.Sink(out)
		if err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if last := sink.Items[len(sink.Items)-1]; last.Kind != stream.KindEOS {
			t.Errorf("batch=%d linger=%v shards=%d: last sink item is %v, want EOS",
				batch, linger, shards, last.Kind)
		}
		vals := map[string]int{}
		for _, tp := range sink.Tuples() {
			key := ""
			for _, v := range tp.Values {
				key += v.String() + "|"
			}
			vals[key]++
		}
		puncts := map[string]int{}
		for _, it := range sink.Puncts() {
			puncts[it.Punct.String()]++
		}
		return vals, puncts
	}

	wantVals, wantPuncts := run(1, 0, 1)
	if len(wantVals) == 0 || len(wantPuncts) == 0 {
		t.Fatalf("per-item baseline: %d results, %d punct patterns", len(wantVals), len(wantPuncts))
	}
	cells := []struct {
		batch  int
		linger time.Duration
		shards int
	}{
		{8, 0, 1},
		{8, time.Millisecond, 1},
		{256, 0, 1},
		{256, time.Millisecond, 1},
		{64, time.Millisecond, 2},
	}
	diff := func(t *testing.T, name string, got, want map[string]int) {
		t.Helper()
		for k, n := range want {
			if got[k] != n {
				t.Errorf("%s %q: per-item %d, batched %d", name, k, n, got[k])
			}
		}
		if len(got) != len(want) {
			t.Errorf("distinct %s: per-item %d, batched %d", name, len(want), len(got))
		}
	}
	for _, c := range cells {
		vals, puncts := run(c.batch, c.linger, c.shards)
		t.Run(fmt.Sprintf("batch%d_linger%v_shards%d", c.batch, c.linger, c.shards), func(t *testing.T) {
			diff(t, "result", vals, wantVals)
			diff(t, "punct", puncts, wantPuncts)
		})
	}
}

// wallLog records the wall-clock instant it first processes an item of
// each kind, so batching tests can assert when the executor actually
// delivered something — independent of restamped item timestamps, which
// deliberately hide edge queueing.
type wallLog struct {
	mu    sync.Mutex
	first map[stream.ItemKind]time.Time
	out   op.Emitter
}

func newWallLog(out op.Emitter) *wallLog {
	return &wallLog{first: map[stream.ItemKind]time.Time{}, out: out}
}

func (w *wallLog) Name() string              { return "wall-log" }
func (w *wallLog) NumPorts() int             { return 1 }
func (w *wallLog) OutSchema() *stream.Schema { return gen.SchemaA }

func (w *wallLog) Process(port int, it stream.Item, now stream.Time) error {
	w.mu.Lock()
	if _, ok := w.first[it.Kind]; !ok {
		w.first[it.Kind] = time.Now()
	}
	w.mu.Unlock()
	return nil
}

func (w *wallLog) OnIdle(stream.Time) (bool, error) { return false, nil }

func (w *wallLog) Finish(now stream.Time) error {
	return w.out.Emit(stream.EOSItem(now))
}

func (w *wallLog) firstAt(k stream.ItemKind) time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.first[k]
}

// TestPunctuationCutsBatch pins the propagation-latency rule:
// punctuations never wait in an edge buffer. With a huge batch size and
// a linger far beyond the test's lifetime, a buffered tuple run would
// sit until EOS — but the punctuation must flush the batch the moment
// it is emitted, so the operator sees it a source-stall earlier than
// the EOS.
func TestPunctuationCutsBatch(t *testing.T) {
	const stall = 300 * time.Millisecond
	p := NewPipeline()
	p.BatchSize = 1 << 20
	p.BatchLinger = time.Hour
	src, out := p.Edge(), p.Edge()
	w := newWallLog(out)
	p.launched = append(p.launched, func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer src.close()
			for _, it := range items(t, 5) {
				if src.Emit(it) != nil {
					return
				}
			}
			pi := stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(1))), 0)
			if src.Emit(pi) != nil {
				return
			}
			time.Sleep(stall)
			src.Emit(stream.EOSItem(0))
		}()
	})
	if err := p.Spawn(w, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	punctAt, eosAt := w.firstAt(stream.KindPunct), w.firstAt(stream.KindEOS)
	if punctAt.IsZero() || eosAt.IsZero() {
		t.Fatalf("operator missed items: punct %v, eos %v", punctAt, eosAt)
	}
	if gap := eosAt.Sub(punctAt); gap < stall/2 {
		t.Errorf("punctuation was processed only %v before EOS; it waited in the "+
			"batch buffer through the %v source stall instead of cutting the batch", gap, stall)
	}
	// The tuples ahead of the punctuation ride the same cut.
	if tupAt := w.firstAt(stream.KindTuple); eosAt.Sub(tupAt) < stall/2 {
		t.Error("tuples before the punctuation were not flushed with it")
	}
}

// TestLingerBoundsTupleDelay pins the other half of the latency bound:
// with no punctuation to cut the batch and a batch size never reached,
// the linger timer alone must flush a waiting tuple within ~linger —
// not hold it until EOS.
func TestLingerBoundsTupleDelay(t *testing.T) {
	const (
		linger = 20 * time.Millisecond
		stall  = 400 * time.Millisecond
	)
	p := NewPipeline()
	p.BatchSize = 1 << 20
	p.BatchLinger = linger
	src, out := p.Edge(), p.Edge()
	w := newWallLog(out)
	p.launched = append(p.launched, func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer src.close()
			for _, it := range items(t, 3) {
				if src.Emit(it) != nil {
					return
				}
			}
			time.Sleep(stall)
			src.Emit(stream.EOSItem(0))
		}()
	})
	if err := p.Spawn(w, src); err != nil {
		t.Fatal(err)
	}
	p.Sink(out)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tupAt, eosAt := w.firstAt(stream.KindTuple), w.firstAt(stream.KindEOS)
	if tupAt.IsZero() || eosAt.IsZero() {
		t.Fatal("operator missed items")
	}
	if gap := eosAt.Sub(tupAt); gap < stall/2 {
		t.Errorf("first tuple was processed only %v before EOS; the %v linger "+
			"timer did not flush it during the %v source stall", gap, linger, stall)
	}
}
