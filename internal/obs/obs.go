// Package obs is the operator observability layer: low-overhead
// structured tracing plus live, tick-sampled metrics, threaded through
// every operator (PJoin, XJoin, ShardedPJoin, the executor).
//
// The paper's whole argument rests on measuring what punctuations buy —
// state size over time, purge work, output rate, disk I/O (§4 figures).
// This package makes those quantities visible while an operator runs
// instead of only as post-hoc bench CSVs, in the spirit of the
// inter-operator feedback and adaptive-partitioning lines of follow-on
// work (PAPERS.md), which both presuppose runtime-visible signals.
//
// # Design
//
// Two complementary facilities share one handle (Instr):
//
//   - Tracing: typed Events (tuple/punctuation arrival, probe, purge,
//     propagation, spill relocation, disk-join pass, shard route/merge,
//     spill errors, operator lifecycle) carrying virtual timestamps,
//     written to a Tracer. The JSONL sink renders one JSON object per
//     event; the Recorder collects events for tests.
//
//   - Live metrics: gauges registered by the operators (state bytes,
//     disk bytes, bucket skew, punctuation lag, cumulative output) and
//     sampled by Live on a configurable virtual-time tick, exported as
//     metrics.Series so the existing CSV/chart tooling renders them.
//
// # Overhead budget
//
// Operators call Instr methods unconditionally from their hot paths, so
// the disabled path must be free: a nil *Instr (observability off) or a
// disabled tracer short-circuits after one branch and performs ZERO
// allocations — enforced by AllocsPerRun guards in alloc_test.go,
// matching the hot-path convention of internal/joinbase and
// internal/punct. Events are plain value structs handed to the Tracer by
// value; building one allocates nothing.
package obs

import (
	"time"

	"pjoin/internal/obs/span"
	"pjoin/internal/stream"
)

// Kind discriminates trace events.
type Kind uint8

// The event taxonomy. N/M carry kind-specific payloads (documented per
// kind); Side is the input side where meaningful, -1 otherwise.
const (
	// KindTupleIn: a data tuple arrived. Side = port.
	KindTupleIn Kind = iota
	// KindPunctIn: a punctuation arrived. Side = port.
	KindPunctIn
	// KindProbe: a memory probe completed. Side = probing side,
	// N = matches emitted.
	KindProbe
	// KindPurge: one state-purge run completed. Side = victim state,
	// N = tuples purged or parked this run, M = tuples scanned.
	KindPurge
	// KindPropagate: one punctuation was released downstream.
	// Side = the input side the punctuation came from.
	KindPropagate
	// KindRelocate: one bucket was spilled to disk. Side = spilled
	// state, N = tuples moved, M = bucket index.
	KindRelocate
	// KindDiskPass: one full disk-join pass completed. N = candidate
	// pairs examined, M = results produced.
	KindDiskPass
	// KindSpillError: a spill-store operation failed. Side = state if
	// known; Err carries the error text. The operator surfaces the same
	// error to its caller — this event is the trace-side record.
	KindSpillError
	// KindShardRoute: the sharded router dispatched a data tuple.
	// Side = port, N = target shard.
	KindShardRoute
	// KindShardMerge: a punctuation completed merge alignment (the last
	// shard propagated it) and was forwarded. N = shard count.
	KindShardMerge
	// KindOpStart: the executor started driving an operator.
	KindOpStart
	// KindOpFinish: the operator finished (post-EOS flush done).
	KindOpFinish
	// KindDiskChunk: one bounded step of an incremental disk pass
	// completed. N = candidate pairs examined this step, M = results
	// produced this step.
	KindDiskChunk

	numKinds = int(KindDiskChunk) + 1
)

var kindNames = [numKinds]string{
	"tuple_in", "punct_in", "probe", "purge", "propagate", "relocate",
	"disk_pass", "spill_error", "shard_route", "shard_merge",
	"op_start", "op_finish", "disk_chunk",
}

// String returns the kind's wire name (the "ev" field of the JSONL sink).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. At is a virtual timestamp: stream time
// under the simulator, wall-clock offset under the live executor —
// whichever clock stamped the items the operator processed.
type Event struct {
	Kind  Kind
	At    stream.Time
	Op    string // operator instance name
	Shard int32  // shard index, -1 when unsharded
	Side  int8   // input side / port, -1 when not applicable
	N     int64  // kind-specific payload (see Kind docs)
	M     int64  // kind-specific payload (see Kind docs)
	Err   string // error text, KindSpillError only
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use: shards and the executor emit from several goroutines.
type Tracer interface {
	// Enabled reports whether Trace does anything; operators skip event
	// construction entirely when false.
	Enabled() bool
	// Trace records one event.
	Trace(Event)
}

type nopTracer struct{}

func (nopTracer) Enabled() bool { return false }
func (nopTracer) Trace(Event)   {}

// Nop is the no-op default Tracer.
var Nop Tracer = nopTracer{}

// Instr is the instrumentation handle an operator carries: a tracer,
// an optional live sampler, an optional span tracer (provenance — see
// internal/obs/span), and the operator's identity (name + shard). A
// nil *Instr is fully inert — every method is a cheap no-op — so
// operators call unconditionally.
type Instr struct {
	tr    Tracer
	live  *Live
	sp    span.Tracer
	op    string
	shard int32
}

// NewInstr builds a handle for the named operator. tr may be nil (no
// tracing); live may be nil (no sampling). Returns nil when both are
// nil, so "observability off" stays a single nil check.
func NewInstr(tr Tracer, live *Live, op string) *Instr {
	return NewInstrSpans(tr, live, nil, op)
}

// NewInstrSpans is NewInstr with a provenance span tracer attached.
// Any argument may be nil; returns nil when all three are nil.
func NewInstrSpans(tr Tracer, live *Live, sp span.Tracer, op string) *Instr {
	if tr == nil && live == nil && sp == nil {
		return nil
	}
	if tr == nil {
		tr = Nop
	}
	return &Instr{tr: tr, live: live, sp: sp, op: op, shard: -1}
}

// Derive returns a handle for a sub-component (e.g. one shard) sharing
// the parent's tracer, sampler and span tracer. shard < 0 means
// unsharded. Deriving from a nil handle yields nil.
func (in *Instr) Derive(op string, shard int) *Instr {
	if in == nil {
		return nil
	}
	return &Instr{tr: in.tr, live: in.live, sp: in.sp, op: op, shard: int32(shard)}
}

// WithoutLive returns a copy whose live sampler is detached (tracing
// and spans kept). The sharded join hands this to its shards: shard
// goroutines must not run the aggregated gauges, which take the shard
// locks.
func (in *Instr) WithoutLive() *Instr {
	if in == nil {
		return nil
	}
	if in.live == nil {
		return in
	}
	if in.tr == Nop && in.sp == nil {
		return nil
	}
	return &Instr{tr: in.tr, sp: in.sp, op: in.op, shard: in.shard}
}

// Op returns the operator name ("" on a nil handle).
func (in *Instr) Op() string {
	if in == nil {
		return ""
	}
	return in.op
}

// Live returns the live sampler, or nil.
func (in *Instr) Live() *Live {
	if in == nil {
		return nil
	}
	return in.live
}

// Enabled reports whether tracing is active. The disabled path is one
// nil check plus one interface call; zero allocations.
func (in *Instr) Enabled() bool {
	return in != nil && in.tr.Enabled()
}

// Event records a trace event with the handle's identity filled in.
// No-op (and allocation-free) when tracing is disabled.
//
//pjoin:hotpath
func (in *Instr) Event(k Kind, at stream.Time, side int, n, m int64) {
	if in == nil || !in.tr.Enabled() {
		return
	}
	in.tr.Trace(Event{Kind: k, At: at, Op: in.op, Shard: in.shard, Side: int8(side), N: n, M: m})
}

// SpillError records a spill-store failure alongside the error the
// operator returns to its caller.
func (in *Instr) SpillError(at stream.Time, side int, err error) {
	if in == nil || !in.tr.Enabled() || err == nil {
		return
	}
	in.tr.Trace(Event{Kind: KindSpillError, At: at, Op: in.op, Shard: in.shard, Side: int8(side), Err: err.Error()})
}

// Spans returns the attached span tracer, or nil.
func (in *Instr) Spans() span.Tracer {
	if in == nil {
		return nil
	}
	return in.sp
}

// SpansEnabled reports whether provenance spans are active. Like
// Enabled, the disabled path is branches only — zero allocations — so
// operators gate span bookkeeping (attribution maps, byte sums) on it
// from hot paths.
func (in *Instr) SpansEnabled() bool {
	return in != nil && in.sp != nil && in.sp.Enabled()
}

// Span emits a provenance span with the handle's identity filled in,
// allocating a fresh span ID. Punctuation and pass spans are stamped
// with the process wall clock (purge wall time and cross-shard ordering
// need it, and those spans are rare); tuple spans are not — they are
// the volume class under full sampling, their analysis runs on At and D
// alone, and a time.Now per result span is measurable against the
// bench7 overhead budget. No-op (and allocation-free) when spans are
// disabled.
//
//pjoin:hotpath
func (in *Instr) Span(k span.Kind, trace uint64, at stream.Time, side int, n, m, bytes, dur int64) {
	if in == nil || in.sp == nil || !in.sp.Enabled() {
		return
	}
	var wall int64
	if !k.IsTuple() {
		//pjoin:allow hotpath non-tuple spans (punct, pass) are rare and need real wall time for purge latency and cross-shard ordering
		wall = time.Now().UnixNano()
	}
	in.sp.Emit(span.Span{
		ID: span.NewID(), Trace: trace, Kind: k, At: at, Wall: wall,
		Op: in.op, Shard: in.shard, Side: int8(side), N: n, M: m, B: bytes, D: dur,
	})
}

// Tick offers the live sampler a chance to sample at the given virtual
// time. Free when no sampler is attached or the tick is not yet due.
func (in *Instr) Tick(now stream.Time) {
	if in == nil || in.live == nil {
		return
	}
	in.live.Tick(now)
}
