package hist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestBucketLayout proves the log-linear layout is a partition: bucket
// ranges are contiguous, non-overlapping, and bucketIndex agrees with
// BucketBounds at every edge.
func TestBucketLayout(t *testing.T) {
	var prevHi int64
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo %d, want %d (contiguity)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d, %d)", i, lo, hi)
		}
		if got := bucketIndex(uint64(lo)); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(uint64(hi - 1)); got != i {
			t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
		prevHi = hi
	}
	// The layout must cover every positive int64.
	if got := bucketIndex(uint64(math.MaxInt64)); got != NumBuckets-1 {
		t.Fatalf("MaxInt64 lands in bucket %d, want last (%d)", got, NumBuckets-1)
	}
}

// TestRelativeError checks the layout's resolution promise: for any
// value, the bucket width is at most 1/subBuckets of the value.
func TestRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		v := rng.Int63()
		lo, hi := BucketBounds(bucketIndex(uint64(v)))
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d outside its bucket [%d, %d)", v, lo, hi)
		}
		if width := hi - lo; v >= subBuckets && float64(width) > float64(v)/float64(subBuckets)+1 {
			t.Fatalf("value %d: bucket width %d exceeds %d-th of value", v, width, subBuckets)
		}
	}
}

func TestQuantilesAndStats(t *testing.T) {
	h := New()
	// 1..1000 (ns): exact small-value buckets up to 31, ~3% above.
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Max != 1000 {
		t.Fatalf("Max = %d", s.Max)
	}
	if want := 1000 * 1001 / 2; s.Sum != int64(want) {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	if mean := s.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Fatalf("Mean = %g", mean)
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}}
	for _, c := range checks {
		got := float64(s.Quantile(c.q))
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Errorf("q%.2f = %g, want ~%g", c.q, got, c.want)
		}
	}
	if s.Quantile(1.0) != s.Max {
		t.Errorf("q1.0 = %d, want exact max %d", s.Quantile(1.0), s.Max)
	}
}

func TestEmptyAndNil(t *testing.T) {
	var nilH *Hist
	nilH.Record(5) // must not panic
	s := nilH.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	h := New()
	h.Record(-100) // clamps to 0
	if got := h.Snapshot(); got.Count != 1 || got.Max != 0 || got.Sum != 0 {
		t.Errorf("negative clamp: %+v", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for v := int64(0); v < 100; v++ {
		a.Record(v)
		b.Record(v * 1000)
	}
	var m Snapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	m.Merge(Snapshot{}) // empty merge is a no-op
	if m.Count != 200 {
		t.Fatalf("merged Count = %d", m.Count)
	}
	if m.Max != 99_000 {
		t.Fatalf("merged Max = %d", m.Max)
	}
	if want := a.Snapshot().Sum + b.Snapshot().Sum; m.Sum != want {
		t.Fatalf("merged Sum = %d, want %d", m.Sum, want)
	}
	// The merged bucket array is the element-wise sum.
	var total int64
	for _, c := range m.Counts {
		total += c
	}
	if total != 200 {
		t.Fatalf("merged bucket total = %d", total)
	}
}

func TestCumulativeAtOrBelow(t *testing.T) {
	h := New()
	for _, v := range []int64{1, 10, 100, 1000, 100_000} {
		h.Record(v)
	}
	s := h.Snapshot()
	cases := []struct {
		bound int64
		want  int64
	}{{0, 0}, {1, 1}, {16, 2}, {1 << 10, 4}, {1 << 20, 5}, {-1, 0}}
	for _, c := range cases {
		if got := s.CumulativeAtOrBelow(c.bound); got != c.want {
			t.Errorf("CumulativeAtOrBelow(%d) = %d, want %d", c.bound, got, c.want)
		}
	}
	// Power-of-two bounds must be monotone non-decreasing (the
	// Prometheus bucket invariant).
	var prev int64
	for k := 0; k < 63; k++ {
		got := s.CumulativeAtOrBelow(int64(1) << uint(k))
		if got < prev {
			t.Fatalf("cumulative counts decreased at 2^%d: %d < %d", k, got, prev)
		}
		prev = got
	}
	if prev != s.Count {
		t.Fatalf("cumulative at 2^62 = %d, want total %d", prev, s.Count)
	}
}

// TestRecordDoesNotAllocate is the record-path budget: operators record
// one sample per result on their hot paths, so Record must be 0 allocs.
func TestRecordDoesNotAllocate(t *testing.T) {
	h := New()
	v := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f/op, want 0", allocs)
	}
	var nilH *Hist
	allocs = testing.AllocsPerRun(1000, func() { nilH.Record(1) })
	if allocs != 0 {
		t.Errorf("nil Record allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentSnapshotWhileRecording exercises the lock-free contract
// under the race detector: a writer records while readers snapshot.
func TestConcurrentSnapshotWhileRecording(t *testing.T) {
	h := New()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := int64(0)
		for {
			select {
			case <-done:
				return
			default:
				h.Record(v % 1_000_000)
				v++
			}
		}
	}()
	var lastCount int64
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		if s.Count < lastCount {
			t.Fatalf("snapshot count went backwards: %d -> %d", lastCount, s.Count)
		}
		lastCount = s.Count
	}
	close(done)
	wg.Wait()
	final := h.Snapshot()
	var total int64
	for _, c := range final.Counts {
		total += c
	}
	if total != final.Count {
		t.Fatalf("bucket total %d != Count %d", total, final.Count)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 31)
	}
}
