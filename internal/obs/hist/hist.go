// Package hist provides the fixed-bucket, log-scaled latency histogram
// behind the operator latency metrics (internal/obs.Lat): an HDR-style
// log-linear layout — 32 sub-buckets per power-of-two octave, ≤ ~3%
// relative quantile error — over non-negative int64 values (nanoseconds
// by convention).
//
// # Record-path contract
//
// Record is allocation-free and lock-free: one bounds clamp, one
// bit-length bucket computation, three atomic adds and (only when a new
// maximum is observed) a CAS. Operators therefore record one sample per
// emitted result / propagated punctuation / purge run unconditionally on
// their hot paths. The intended discipline is single-writer per
// histogram (each operator instance owns its histograms; shards own
// theirs and a router merges snapshots), but because every counter is
// atomic the structure degrades gracefully — concurrent writers are safe,
// never lost, merely unordered.
//
// Readers call Snapshot from any goroutine (the Prometheus endpoint, the
// flight recorder, the bench harness) without stopping the writer. A
// snapshot taken mid-run may tear slightly between the bucket counts and
// Sum/Max (they are separate atomics); Count is always internally
// consistent with the buckets because it is derived from them.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// subBits fixes the resolution: 1<<subBits sub-buckets per octave.
	subBits    = 5
	subBuckets = 1 << subBits

	// NumBuckets is the fixed bucket count. Values 0..subBuckets-1 map
	// one-to-one onto the first subBuckets buckets; every later octave
	// [2^k, 2^(k+1)) for k >= subBits contributes subBuckets log-linear
	// buckets. Positive int64 needs octaves up to 2^62, i.e. bit lengths
	// subBits+1 .. 63.
	NumBuckets = subBuckets + (63-subBits)*subBuckets
)

// Hist is the histogram. The zero value is NOT ready; use New (the
// struct is large and meant to live behind a pointer).
type Hist struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(u uint64) int {
	if u < subBuckets {
		return int(u)
	}
	n := bits.Len64(u) // 2^(n-1) <= u < 2^n, n > subBits
	shift := uint(n - 1 - subBits)
	sub := int((u >> shift) & (subBuckets - 1))
	return (n-subBits)*subBuckets + sub
}

// BucketBounds returns bucket i's value range [lo, hi): samples v with
// lo <= v < hi land in bucket i. The final bucket's upper edge would be
// 2^63, which overflows int64; it is clamped to MaxInt64, making the
// last range [lo, MaxInt64] inclusive.
func BucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	b := i / subBuckets // octave ordinal, >= 1
	sub := int64(i % subBuckets)
	width := int64(1) << uint(b-1)
	lo = (subBuckets + sub) << uint(b-1)
	hi = lo + width
	if hi < lo { // 2^63 overflowed: last bucket
		hi = math.MaxInt64
	}
	return lo, hi
}

// Record adds one sample. Negative values clamp to zero (latencies are
// non-negative by construction; the clamp keeps a clock anomaly from
// panicking the hot path). Record on a nil histogram is a no-op.
//
//pjoin:hotpath
func (h *Hist) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a histogram, safe to read, merge
// and serialise at leisure. The zero value is an empty snapshot.
type Snapshot struct {
	Count  int64
	Sum    int64
	Max    int64
	Counts []int64 // len NumBuckets when non-empty
}

// Snapshot copies the histogram. It allocates (one slice) — it is the
// read path, not the record path.
func (h *Hist) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{Counts: make([]int64, NumBuckets)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge accumulates o into s (bucket-wise sum, max of maxes). Merging
// into an empty snapshot copies o. This is how a sharded operator's
// router builds the global view from per-shard snapshots.
func (s *Snapshot) Merge(o Snapshot) {
	if len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Counts = make([]int64, NumBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of
// the recorded samples: the upper edge of the bucket holding the
// rank-⌈q·count⌉ sample, clamped to Max. Returns 0 for an empty
// snapshot. The bucket layout bounds the relative error at ~3%.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			_, hi := BucketBounds(i)
			// The bucket's upper edge is exclusive; Max is the exact
			// largest sample, so never report beyond it.
			v := hi - 1
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CumulativeAtOrBelow returns how many samples fall in buckets whose
// entire range lies at or below bound — the cumulative count backing a
// Prometheus `le` bucket. Bounds that are exact bucket edges (powers of
// two are always edges) make this exact; other bounds are rounded down
// to the previous edge.
func (s Snapshot) CumulativeAtOrBelow(bound int64) int64 {
	if len(s.Counts) == 0 || bound < 0 {
		return 0
	}
	var n int64
	for i, c := range s.Counts {
		if _, hi := BucketBounds(i); hi-1 > bound {
			break
		}
		n += c
	}
	return n
}
