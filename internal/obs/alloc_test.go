package obs

import (
	"testing"

	"pjoin/internal/obs/span"
	"pjoin/internal/stream"
)

// The observability layer's contract: operators call Instr methods
// unconditionally from their probe/insert hot paths, so the disabled
// path must not allocate. Same convention as the hot-path guards in
// internal/joinbase and internal/punct.

func TestNilInstrDoesNotAllocate(t *testing.T) {
	var in *Instr
	allocs := testing.AllocsPerRun(1000, func() {
		if in.Enabled() {
			t.Fatal("unreachable")
		}
		in.Event(KindProbe, 1, 0, 2, 3)
		in.Tick(1)
	})
	if allocs != 0 {
		t.Errorf("nil Instr hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestNopTracerInstrDoesNotAllocate(t *testing.T) {
	in := NewInstr(Nop, nil, "pjoin")
	allocs := testing.AllocsPerRun(1000, func() {
		if in.Enabled() {
			t.Fatal("unreachable")
		}
		in.Event(KindProbe, 1, 0, 2, 3)
		in.SpillError(1, 0, nil)
	})
	if allocs != 0 {
		t.Errorf("Nop-tracer hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestDetachedSpansDoNotAllocate(t *testing.T) {
	// Detached provenance: span call sites are compiled in and called
	// unconditionally, but no span tracer is attached. This is the
	// bench7 "detached" cell's contract — one branch, zero allocations.
	in := NewInstr(Nop, nil, "pjoin")
	var smp *span.Sampler
	allocs := testing.AllocsPerRun(1000, func() {
		if in.SpansEnabled() {
			t.Fatal("unreachable")
		}
		in.Span(span.KindTupleProbe, 7, 1, 0, 3, 12, 0, 0)
		in.Span(span.KindPunctPurgeMem, 7, 1, 0, 42, 0, 2048, 91000)
		if smp.Sample() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Errorf("detached span hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestLiveTickNotDueDoesNotAllocate(t *testing.T) {
	lv := NewLive(stream.Time(1 << 60)) // never due after the first claim
	lv.Register("g", func() float64 { return 0 })
	in := NewInstr(nil, lv, "pjoin")
	in.Tick(0) // consume the initial sample
	allocs := testing.AllocsPerRun(1000, func() {
		in.Tick(1)
	})
	if allocs != 0 {
		t.Errorf("not-due Tick allocates %.1f/op, want 0", allocs)
	}
}
