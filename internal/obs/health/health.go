// Package health watches a running join operator for the two anomalies
// a punctuated stream system can actually detect from the outside:
//
//   - Stall: input keeps arriving but neither results nor punctuation
//     propagations make progress for a configurable window. Under the
//     paper's model this is the signature of a wedged purge/disk path —
//     state grows, nothing leaves.
//
//   - Punctuation-lag SLO: the operator's punctuation lag (newest input
//     timestamp minus newest propagated punctuation) exceeds a bound.
//     Lag is the paper's cleanliness signal: it bounds how stale the
//     downstream view of "this subset is complete" can get, which is
//     exactly the feedback quantity the inter-operator-feedback line of
//     work wants operators to export.
//
// When either trips, the Detector fires ONCE (latched) and the caller
// dumps a flight-recorder bundle: the last N trace events from an
// obs.Ring plus latency-histogram snapshots, as JSONL, for post-mortem.
package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"pjoin/internal/obs"
	"pjoin/internal/obs/hist"
	"pjoin/internal/stream"
)

// Progress is one observation of an operator's externally visible
// counters. The probe that builds it must be safe on the goroutine it
// runs on (auctiond reads Live.LastValues; the simulator reads operator
// metrics between drive steps).
type Progress struct {
	Now       stream.Time // operator virtual clock
	TuplesIn  int64       // data tuples consumed (both sides)
	TuplesOut int64       // results emitted
	PunctsOut int64       // punctuations propagated
	PunctLag  stream.Time // now − newest propagated punctuation ts
}

// Config bounds the detector. Zero StallWindow disables stall
// detection; zero LagSLO disables lag detection.
type Config struct {
	// StallWindow: fire if input advanced but neither TuplesOut nor
	// PunctsOut did for at least this much virtual time.
	StallWindow stream.Time
	// LagSLO: fire if PunctLag exceeds this bound.
	LagSLO stream.Time
}

// Report describes why the detector fired.
type Report struct {
	Reason string      // "stall" or "lag_slo"
	At     stream.Time // observation time of the firing sample
	Window stream.Time // how long output had been frozen (stall only)
	Lag    stream.Time // punctuation lag at firing
	Last   Progress    // the firing observation
}

func (r Report) String() string {
	switch r.Reason {
	case "stall":
		return fmt.Sprintf("stall: no output progress for %v (input flowing, lag %v)", r.Window, r.Lag)
	case "lag_slo":
		return fmt.Sprintf("lag_slo: punctuation lag %v exceeds SLO", r.Lag)
	default:
		return r.Reason
	}
}

// Detector is the latched anomaly detector. Observe it periodically
// with fresh Progress samples; the first anomalous sample returns
// (report, true), every later call returns (zero, false) — one flight
// dump per incident, not one per poll.
type Detector struct {
	cfg Config

	mu       sync.Mutex //pjoin:lockrank leaf
	started  bool
	fired    bool
	anchor   Progress    // sample at the last output/propagation advance
	anchorAt stream.Time // Now of that sample
}

// NewDetector returns a detector with the given bounds.
func NewDetector(cfg Config) *Detector { return &Detector{cfg: cfg} }

// Observe feeds one sample. Returns (report, true) exactly once, on the
// first sample that violates a bound. Safe for concurrent use.
func (d *Detector) Observe(p Progress) (Report, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired {
		return Report{}, false
	}
	if !d.started {
		d.started = true
		d.anchor, d.anchorAt = p, p.Now
		return Report{}, false
	}
	if d.cfg.LagSLO > 0 && p.PunctLag > d.cfg.LagSLO {
		d.fired = true
		return Report{Reason: "lag_slo", At: p.Now, Lag: p.PunctLag, Last: p}, true
	}
	// Output or propagation advanced — or nothing arrived at all — so
	// the operator is not stalled; re-anchor the window.
	if p.TuplesOut > d.anchor.TuplesOut || p.PunctsOut > d.anchor.PunctsOut ||
		p.TuplesIn == d.anchor.TuplesIn {
		d.anchor, d.anchorAt = p, p.Now
		return Report{}, false
	}
	if d.cfg.StallWindow > 0 && p.Now-d.anchorAt >= d.cfg.StallWindow {
		d.fired = true
		return Report{
			Reason: "stall", At: p.Now, Window: p.Now - d.anchorAt,
			Lag: p.PunctLag, Last: p,
		}, true
	}
	return Report{}, false
}

// Fired reports whether the detector has latched.
func (d *Detector) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// Dump writes the flight-recorder bundle as JSONL:
//
//	{"type":"flight","reason":...}   — one header line
//	{"ev":...}                       — the ring's retained trace events,
//	                                   oldest → newest (obs.JSONL format)
//	{"type":"hist","name":...}       — one summary per latency histogram
//
// ring may be nil (no events section); every line is independently
// parseable JSON, so a truncated dump still yields its prefix.
func Dump(w io.Writer, r Report, ring *obs.Ring, lat obs.LatSnapshot) error {
	var events []obs.Event
	if ring != nil {
		events = ring.Snapshot()
	}
	header := struct {
		Type      string `json:"type"`
		Reason    string `json:"reason"`
		AtNs      int64  `json:"at_ns"`
		WindowNs  int64  `json:"window_ns"`
		LagNs     int64  `json:"lag_ns"`
		TuplesIn  int64  `json:"tuples_in"`
		TuplesOut int64  `json:"tuples_out"`
		PunctsOut int64  `json:"puncts_out"`
		Events    int    `json:"events"`
	}{
		Type: "flight", Reason: r.Reason, AtNs: int64(r.At),
		WindowNs: int64(r.Window), LagNs: int64(r.Lag),
		TuplesIn: r.Last.TuplesIn, TuplesOut: r.Last.TuplesOut,
		PunctsOut: r.Last.PunctsOut, Events: len(events),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(header); err != nil {
		return err
	}
	sink := obs.NewJSONL(w)
	for _, e := range events {
		sink.Trace(e)
	}
	if err := sink.Flush(); err != nil {
		return err
	}
	for _, h := range []struct {
		name string
		s    hist.Snapshot
	}{
		{"result_latency_ns", lat.Result},
		{"punct_delay_ns", lat.PunctDelay},
		{"purge_duration_ns", lat.Purge},
	} {
		line := struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Count int64  `json:"count"`
			Sum   int64  `json:"sum"`
			Max   int64  `json:"max"`
			P50   int64  `json:"p50"`
			P95   int64  `json:"p95"`
			P99   int64  `json:"p99"`
		}{
			Type: "hist", Name: h.name, Count: h.s.Count, Sum: h.s.Sum,
			Max: h.s.Max, P50: h.s.Quantile(0.5), P95: h.s.Quantile(0.95),
			P99: h.s.Quantile(0.99),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// DumpToFile writes the bundle to path via obs.CreateSink, so a ".gz"
// path produces a gzip-compressed dump.
func DumpToFile(path string, r Report, ring *obs.Ring, lat obs.LatSnapshot) error {
	w, err := obs.CreateSink(path)
	if err != nil {
		return err
	}
	if err := Dump(w, r, ring, lat); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
