package health

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"pjoin/internal/obs"
	"pjoin/internal/stream"
)

const ms = stream.Millisecond

func TestDetectorStall(t *testing.T) {
	d := NewDetector(Config{StallWindow: 100 * ms})
	// t=0: baseline.
	if _, fired := d.Observe(Progress{Now: 0, TuplesIn: 10, TuplesOut: 5}); fired {
		t.Fatal("fired on first sample")
	}
	// Input flows, output frozen, but window not yet elapsed.
	if _, fired := d.Observe(Progress{Now: 50 * ms, TuplesIn: 100, TuplesOut: 5}); fired {
		t.Fatal("fired before window elapsed")
	}
	// Window elapsed with input flowing and output frozen: stall.
	r, fired := d.Observe(Progress{Now: 120 * ms, TuplesIn: 200, TuplesOut: 5})
	if !fired {
		t.Fatal("stall not detected")
	}
	if r.Reason != "stall" || r.Window != 120*ms || r.At != 120*ms {
		t.Fatalf("report = %+v", r)
	}
	if !d.Fired() {
		t.Fatal("detector not latched")
	}
	// Latched: no second fire.
	if _, fired := d.Observe(Progress{Now: 500 * ms, TuplesIn: 999, TuplesOut: 5}); fired {
		t.Fatal("fired twice")
	}
}

func TestDetectorOutputProgressResetsWindow(t *testing.T) {
	d := NewDetector(Config{StallWindow: 100 * ms})
	d.Observe(Progress{Now: 0, TuplesIn: 0, TuplesOut: 0})
	// Results keep trickling — never a stall, however long it runs.
	for i := 1; i <= 10; i++ {
		p := Progress{Now: stream.Time(i) * 80 * ms, TuplesIn: int64(i * 100), TuplesOut: int64(i)}
		if _, fired := d.Observe(p); fired {
			t.Fatalf("fired at sample %d despite output progress", i)
		}
	}
	// Punctuation propagation alone also counts as progress.
	d2 := NewDetector(Config{StallWindow: 100 * ms})
	d2.Observe(Progress{Now: 0})
	for i := 1; i <= 10; i++ {
		p := Progress{Now: stream.Time(i) * 80 * ms, TuplesIn: int64(i * 100), PunctsOut: int64(i)}
		if _, fired := d2.Observe(p); fired {
			t.Fatalf("fired at sample %d despite propagation progress", i)
		}
	}
}

func TestDetectorIdleInputIsNotAStall(t *testing.T) {
	d := NewDetector(Config{StallWindow: 100 * ms})
	d.Observe(Progress{Now: 0, TuplesIn: 50, TuplesOut: 5})
	// No new input, no output: the stream is idle, not stalled.
	for i := 1; i <= 10; i++ {
		p := Progress{Now: stream.Time(i) * 200 * ms, TuplesIn: 50, TuplesOut: 5}
		if _, fired := d.Observe(p); fired {
			t.Fatalf("fired at idle sample %d", i)
		}
	}
}

func TestDetectorLagSLO(t *testing.T) {
	d := NewDetector(Config{LagSLO: 500 * ms})
	d.Observe(Progress{Now: 0})
	if _, fired := d.Observe(Progress{Now: 100 * ms, PunctLag: 400 * ms}); fired {
		t.Fatal("fired under SLO")
	}
	r, fired := d.Observe(Progress{Now: 200 * ms, PunctLag: 600 * ms})
	if !fired || r.Reason != "lag_slo" || r.Lag != 600*ms {
		t.Fatalf("fired=%v report=%+v", fired, r)
	}
	if !strings.Contains(r.String(), "lag_slo") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestDetectorDisabledBounds(t *testing.T) {
	d := NewDetector(Config{}) // both bounds off
	d.Observe(Progress{Now: 0})
	for i := 1; i <= 5; i++ {
		p := Progress{Now: stream.Time(i) * 1000 * ms, TuplesIn: int64(i * 1000), PunctLag: stream.Time(i) * 1000 * ms}
		if _, fired := d.Observe(p); fired {
			t.Fatal("disabled detector fired")
		}
	}
}

// TestDumpParseable: the bundle is line-by-line parseable JSON with the
// documented sections in order.
func TestDumpParseable(t *testing.T) {
	ring := obs.NewRing(4)
	for i := 0; i < 9; i++ { // overflow the ring: keep newest 4
		ring.Trace(obs.Event{Kind: obs.KindSpillError, At: stream.Time(i), Op: "pjoin", Shard: -1, Side: 0, Err: "disk gone"})
	}
	lat := obs.NewLat()
	lat.RecordResult(100*ms, 40*ms)
	lat.RecordPurge(12345)
	rep := Report{Reason: "stall", At: 120 * ms, Window: 100 * ms, Lag: 80 * ms,
		Last: Progress{TuplesIn: 200, TuplesOut: 5, PunctsOut: 1}}

	var buf bytes.Buffer
	if err := Dump(&buf, rep, ring, lat.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	// 1 header + 4 ring events + 3 hist summaries.
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	h := lines[0]
	if h["type"] != "flight" || h["reason"] != "stall" || h["events"] != float64(4) {
		t.Fatalf("header = %v", h)
	}
	for i, l := range lines[1:5] {
		if l["ev"] != "spill_error" || l["err"] != "disk gone" {
			t.Fatalf("event line %d = %v", i, l)
		}
		if l["t_ns"] != float64(5+i) { // newest 4 of 9, oldest first
			t.Fatalf("event line %d t_ns = %v, want %d", i, l["t_ns"], 5+i)
		}
	}
	names := []string{"result_latency_ns", "punct_delay_ns", "purge_duration_ns"}
	for i, l := range lines[5:] {
		if l["type"] != "hist" || l["name"] != names[i] {
			t.Fatalf("hist line %d = %v", i, l)
		}
	}
	if lines[5]["count"] != float64(1) || lines[5]["sum"] != float64(60*ms) {
		t.Fatalf("result hist summary = %v", lines[5])
	}
}

func TestDumpToFileGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl.gz")
	ring := obs.NewRing(2)
	ring.Trace(obs.Event{Kind: obs.KindPurge, At: 1, Shard: -1, Side: 0})
	if err := DumpToFile(path, Report{Reason: "lag_slo", At: 5}, ring, obs.LatSnapshot{}); err != nil {
		t.Fatal(err)
	}
	r, err := obs.OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sc := bufio.NewScanner(r)
	var n int
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d unparseable: %v", n, err)
		}
		n++
	}
	if n != 5 { // header + 1 event + 3 hists
		t.Fatalf("got %d lines, want 5", n)
	}
}
