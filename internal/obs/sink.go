package obs

import (
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// CreateSink opens (creating/truncating) a trace output file. Paths
// ending in ".gz" write through a gzip.Writer — JSONL traces compress
// roughly 10x, which matters for long `pjoinbench -trace` runs and for
// flight-recorder dumps shipped off-box. Close flushes the gzip stream
// before closing the file; callers must Close to get a valid archive.
func CreateSink(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipSink{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipSink struct {
	zw *gzip.Writer
	f  *os.File
}

func (s *gzipSink) Write(p []byte) (int, error) { return s.zw.Write(p) }

func (s *gzipSink) Close() error {
	zerr := s.zw.Close()
	ferr := s.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// OpenSink opens a trace file for reading, transparently ungzipping
// ".gz" paths — the read-side counterpart of CreateSink, used by tests
// and post-mortem tooling.
func OpenSink(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipSource{zr: zr, f: f}, nil
}

type gzipSource struct {
	zr *gzip.Reader
	f  *os.File
}

func (s *gzipSource) Read(p []byte) (int, error) { return s.zr.Read(p) }

func (s *gzipSource) Close() error {
	zerr := s.zr.Close()
	ferr := s.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// OpenSinkTolerant is OpenSink for traces that may be missing their
// gzip trailer: a process that crashed (or was flight-recorded) mid-run
// leaves a stream whose deflate tail and CRC/length footer never hit
// the disk, which the strict reader surfaces as io.ErrUnexpectedEOF on
// the very last read. Tolerant mode returns every byte that decoded
// cleanly and then reports a clean EOF, so `pjointrace` can analyze a
// crashed run's prefix. Corruption mid-stream is still surfaced: only
// errors at the point the file itself is exhausted are forgiven.
func OpenSinkTolerant(path string) (io.ReadCloser, error) {
	if !strings.HasSuffix(path, ".gz") {
		return os.Open(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &tolerantGzipSource{zr: zr, f: f}, nil
}

type tolerantGzipSource struct {
	zr   *gzip.Reader
	f    *os.File
	done bool
}

func (s *tolerantGzipSource) Read(p []byte) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	n, err := s.zr.Read(p)
	if err == io.ErrUnexpectedEOF {
		// Truncated trailer: the compressed payload ran out before the
		// footer. Whatever decoded up to here is complete lines of the
		// prefix; end the stream cleanly.
		s.done = true
		if n > 0 {
			return n, nil
		}
		return 0, io.EOF
	}
	return n, err
}

func (s *tolerantGzipSource) Close() error {
	// zr.Close on a truncated stream reports the missing checksum; the
	// whole point of tolerant mode is to forgive exactly that.
	_ = s.zr.Close()
	return s.f.Close()
}
