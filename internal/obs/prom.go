package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pjoin/internal/obs/hist"
	"pjoin/internal/obs/span"
)

// Prometheus text exposition (version 0.0.4) for the latency histograms
// and live gauges — what `auctiond -http` serves at /metrics alongside
// the existing expvar endpoint. Everything is rendered from snapshots
// (hist atomics, Live.LastValues), so a scrape never touches operator
// state and is safe while the operator runs.

// promHistBounds are the cumulative `le` bucket bounds, in ns. Powers
// of two are exact edges of the hist bucket layout, so each cumulative
// count is exact, not interpolated. The range spans 1µs–~18min; +Inf is
// appended by the writer.
var promHistBounds = func() []int64 {
	var b []int64
	for k := uint(10); k <= 40; k += 2 {
		b = append(b, int64(1)<<k)
	}
	return b
}()

// writePromHist renders one histogram as a full Prometheus histogram
// family: _bucket (cumulative, ending at +Inf), _sum, _count.
func writePromHist(w io.Writer, name, help string, s hist.Snapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for _, bound := range promHistBounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, s.CumulativeAtOrBelow(bound)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count); err != nil {
		return err
	}
	return nil
}

// promSanitize maps an arbitrary gauge name onto the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promSanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

// WriteProm renders the full /metrics payload: the latency histograms
// under <prefix>_result_latency_ns / <prefix>_punct_delay_ns /
// <prefix>_purge_duration_ns / <prefix>_disk_chunk_duration_ns /
// <prefix>_disk_pass_duration_ns / <prefix>_batch_fill, then one gauge
// per live sample, sorted by name for deterministic scrapes.
func WriteProm(w io.Writer, prefix string, lat LatSnapshot, gauges map[string]float64) error {
	prefix = promSanitize(prefix)
	if err := writePromHist(w, prefix+"_result_latency_ns",
		"Tuple-arrival to result-emit latency (virtual ns).", lat.Result); err != nil {
		return err
	}
	if err := writePromHist(w, prefix+"_punct_delay_ns",
		"Punctuation-arrival to downstream-propagation delay (virtual ns).", lat.PunctDelay); err != nil {
		return err
	}
	if err := writePromHist(w, prefix+"_purge_duration_ns",
		"Wall-clock duration of one state-purge pass (ns).", lat.Purge); err != nil {
		return err
	}
	if err := writePromHist(w, prefix+"_disk_chunk_duration_ns",
		"Wall-clock duration of one incremental disk-join step (ns).", lat.DiskChunk); err != nil {
		return err
	}
	if err := writePromHist(w, prefix+"_disk_pass_duration_ns",
		"Wall-clock duration of one complete disk-join pass (ns).", lat.DiskPass); err != nil {
		return err
	}
	if err := writePromHist(w, prefix+"_batch_fill",
		"Items per delivered input batch (count; empty on the per-item path).", lat.BatchFill); err != nil {
		return err
	}
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		mn := prefix + "_" + promSanitize(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", mn, mn,
			strconv.FormatFloat(gauges[n], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// WritePromSpans renders the provenance-span counter families:
// per-group span emission totals (punctuation lifecycle, disk-pass,
// sampled-tuple) plus the tuple sampler's admit/drop decisions — the
// drop count is what tells an operator how much provenance the sample
// rate is leaving on the floor. counts is indexed by span.Kind (as
// span.JSONL.Counts() returns); nil/short slices read as zero, so the
// scrape schema is stable whether or not a span tracer is attached.
// Counter families only — CheckPromFormat applies unchanged.
func WritePromSpans(w io.Writer, prefix string, counts []int64, sampled, dropped int64) error {
	prefix = promSanitize(prefix)
	var punct, pass, tuple int64
	for i, c := range counts {
		if i >= span.NumKinds() {
			break
		}
		switch k := span.Kind(i); {
		case k.IsPunct():
			punct += c
		case k.IsPass():
			pass += c
		default:
			tuple += c
		}
	}
	families := []struct {
		name string
		help string
		val  int64
	}{
		{"span_punct_total", "Punctuation-lifecycle provenance spans emitted (arrive/purge/defer/emit).", punct},
		{"span_pass_total", "Disk-pass provenance spans emitted (start/chunk/io/end).", pass},
		{"span_tuple_total", "Sampled-tuple provenance spans emitted (ingest/cut/deliver/probe/result).", tuple},
		{"span_sampler_sampled_total", "Tuples admitted into provenance tracing by the span sampler.", sampled},
		{"span_sampler_dropped_total", "Tuples passed over by the span sampler (provenance left unrecorded).", dropped},
	}
	for _, f := range families {
		n := prefix + "_" + f.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			n, f.help, n, n, f.val); err != nil {
			return err
		}
	}
	return nil
}

var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(?:\+Inf|[0-9]+)"\})? (-?[0-9.eE+-]+|NaN)$`)
	promHelpRe   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
)

// CheckPromFormat strictly validates a Prometheus text-exposition
// payload as WriteProm produces it: every line is a well-formed HELP,
// TYPE or sample line; every histogram's cumulative buckets are
// monotone non-decreasing, end at le="+Inf", and agree with _count; no
// series appears twice. Used by the format tests here and by the
// /metrics endpoint test in cmd/auctiond.
func CheckPromFormat(data []byte) error {
	type histState struct {
		lastLe    float64
		lastCount int64
		infCount  int64
		sawInf    bool
	}
	hists := map[string]*histState{}
	counts := map[string]int64{}
	seen := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promHelpRe.MatchString(line) {
				return fmt.Errorf("line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", i+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		if seen[name+labels] {
			return fmt.Errorf("line %d: duplicate series %s%s", i+1, name, labels)
		}
		seen[name+labels] = true
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", i+1, valStr, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			h := hists[base]
			if h == nil {
				h = &histState{lastLe: -1}
				hists[base] = h
			}
			le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
			if le == "+Inf" {
				h.sawInf = true
				h.infCount = int64(val)
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q", i+1, le)
			}
			if h.sawInf {
				return fmt.Errorf("line %d: bucket after +Inf for %s", i+1, base)
			}
			if bound <= h.lastLe {
				return fmt.Errorf("line %d: le bounds not increasing for %s", i+1, base)
			}
			if int64(val) < h.lastCount {
				return fmt.Errorf("line %d: cumulative count decreased for %s", i+1, base)
			}
			h.lastLe, h.lastCount = bound, int64(val)
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] = int64(val)
		}
	}
	for base, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", base)
		}
		if h.infCount < h.lastCount {
			return fmt.Errorf("histogram %s: +Inf bucket %d below last bound %d", base, h.infCount, h.lastCount)
		}
		c, ok := counts[base]
		if !ok {
			return fmt.Errorf("histogram %s missing _count", base)
		}
		if c != h.infCount {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", base, c, h.infCount)
		}
	}
	return nil
}
