package obs

import (
	"sync"
	"sync/atomic"
)

// Recorder is a Tracer that keeps every event in memory, for tests and
// for reconciling trace counts against operator metrics.
type Recorder struct {
	mu     sync.Mutex //pjoin:lockrank leaf
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(k Kind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

var _ Tracer = (*Recorder)(nil)

// Ring is a bounded Tracer holding the most recent `capacity` events —
// the flight recorder's event store. Older events are overwritten in
// place, so a long run costs a fixed amount of memory and the tail of
// the trace is always available for a post-mortem dump.
//
// Detach atomically turns the ring off: Enabled flips to false, which
// the Instr fast path reads before building an Event, so a detached
// ring stops costing anything on the record path. Detach may race with
// in-flight Trace calls; those either land or don't, but never corrupt
// the buffer (writes stay under the mutex).
type Ring struct {
	detached atomic.Bool

	mu    sync.Mutex //pjoin:lockrank leaf
	buf   []Event
	next  int   // next write slot
	total int64 // events ever offered (not capped)
}

// NewRing returns a ring keeping the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Enabled implements Tracer.
func (r *Ring) Enabled() bool { return !r.detached.Load() }

// Trace implements Tracer.
func (r *Ring) Trace(e Event) {
	if r.detached.Load() {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest → newest.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events were ever offered to the ring,
// including those since overwritten.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Detach turns the ring off. Safe to call from any goroutine, including
// concurrently with Trace.
func (r *Ring) Detach() { r.detached.Store(true) }

var _ Tracer = (*Ring)(nil)
