package obs

import "sync"

// Recorder is a Tracer that keeps every event in memory, for tests and
// for reconciling trace counts against operator metrics.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(k Kind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

var _ Tracer = (*Recorder)(nil)
