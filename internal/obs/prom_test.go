package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pjoin/internal/obs/span"
)

func promFixture() (LatSnapshot, map[string]float64) {
	lat := NewLat()
	for i := int64(1); i <= 100; i++ {
		lat.Result.Record(i * 1000)      // 1µs..100µs
		lat.PunctDelay.Record(i * 50000) // 50µs..5ms
	}
	lat.Purge.Record(1 << 20)
	gauges := map[string]float64{
		"state_bytes": 4096,
		"punct-lag":   1.5e6, // needs sanitizing
		"skew":        0.25,
	}
	return lat.Snapshot(), gauges
}

func TestWritePromFormat(t *testing.T) {
	snap, gauges := promFixture()
	var buf bytes.Buffer
	if err := WriteProm(&buf, "pjoin", snap, gauges); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckPromFormat(buf.Bytes()); err != nil {
		t.Fatalf("format check failed: %v\n%s", err, out)
	}
	// The three histogram families and the sanitized gauge are present.
	for _, want := range []string{
		"# TYPE pjoin_result_latency_ns histogram",
		"# TYPE pjoin_punct_delay_ns histogram",
		"# TYPE pjoin_purge_duration_ns histogram",
		`pjoin_result_latency_ns_bucket{le="+Inf"} 100`,
		"pjoin_result_latency_ns_count 100",
		"pjoin_punct_delay_ns_count 100",
		"pjoin_purge_duration_ns_count 1",
		"# TYPE pjoin_punct_lag gauge",
		"pjoin_state_bytes 4096",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Exact cumulative counts at power-of-two edges: results are
	// i*1000 ns for i in 1..100, so le=65536 covers i <= 65.
	if !strings.Contains(out, `pjoin_result_latency_ns_bucket{le="65536"} 65`) {
		t.Errorf("wrong cumulative count at le=65536:\n%s", out)
	}
	// _sum is the exact sum: 1000 * (100*101/2).
	if !strings.Contains(out, fmt.Sprintf("pjoin_result_latency_ns_sum %d", 1000*100*101/2)) {
		t.Errorf("wrong _sum:\n%s", out)
	}
}

func TestWritePromEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, "op", LatSnapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := CheckPromFormat(buf.Bytes()); err != nil {
		t.Fatalf("empty payload fails format check: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `op_result_latency_ns_bucket{le="+Inf"} 0`) {
		t.Errorf("empty histogram should still expose zero buckets:\n%s", buf.String())
	}
}

// TestWritePromSpansFormat: the provenance-span counter families pass
// the strict format check, expose HELP/TYPE for every family, group the
// per-kind counts correctly, and compose with WriteProm in one payload
// (as the auctiond /metrics handler emits them).
func TestWritePromSpansFormat(t *testing.T) {
	counts := make([]int64, span.NumKinds())
	counts[span.KindPunctArrive] = 3
	counts[span.KindPunctPurgeMem] = 2
	counts[span.KindPunctEmit] = 3
	counts[span.KindPassStart] = 1
	counts[span.KindPassEnd] = 1
	counts[span.KindTupleIngest] = 7
	counts[span.KindTupleResult] = 5

	var buf bytes.Buffer
	snap, gauges := promFixture()
	if err := WriteProm(&buf, "pjoin", snap, gauges); err != nil {
		t.Fatal(err)
	}
	if err := WritePromSpans(&buf, "pjoin", counts, 7, 441); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckPromFormat(buf.Bytes()); err != nil {
		t.Fatalf("format check failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# HELP pjoin_span_punct_total ",
		"# TYPE pjoin_span_punct_total counter",
		"pjoin_span_punct_total 8",
		"# TYPE pjoin_span_pass_total counter",
		"pjoin_span_pass_total 2",
		"# TYPE pjoin_span_tuple_total counter",
		"pjoin_span_tuple_total 12",
		"# TYPE pjoin_span_sampler_sampled_total counter",
		"pjoin_span_sampler_sampled_total 7",
		"# TYPE pjoin_span_sampler_dropped_total counter",
		"pjoin_span_sampler_dropped_total 441",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}

	// No span tracer attached: nil counts still expose the full schema.
	buf.Reset()
	if err := WritePromSpans(&buf, "pjoin", nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := CheckPromFormat(buf.Bytes()); err != nil {
		t.Fatalf("nil-counts payload fails format check: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "pjoin_span_punct_total 0") {
		t.Errorf("nil counts should render zero families:\n%s", buf.String())
	}
}

func TestCheckPromFormatRejectsGarbage(t *testing.T) {
	bad := []string{
		"not a metric line at all!",
		"x_bucket{le=\"8\"} 5\nx_bucket{le=\"4\"} 6\nx_bucket{le=\"+Inf\"} 6\nx_count 6", // le not increasing
		"x_bucket{le=\"4\"} 5\nx_bucket{le=\"8\"} 3\nx_bucket{le=\"+Inf\"} 5\nx_count 5", // count decreased
		"x_bucket{le=\"4\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_count 3",                       // count mismatch
		"x_bucket{le=\"4\"} 1\nx_count 1",                                                // missing +Inf
		"dup 1\ndup 2",                                                                   // duplicate series
		"# BADCOMMENT x y",                                                               // malformed comment
	}
	for i, payload := range bad {
		if err := CheckPromFormat([]byte(payload)); err == nil {
			t.Errorf("case %d: garbage accepted:\n%s", i, payload)
		}
	}
}

func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"state_bytes": "state_bytes",
		"punct-lag":   "punct_lag",
		"9lives":      "_lives",
		"a.b/c":       "a_b_c",
		"":            "_",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
