package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"pjoin/internal/stream"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Trace(Event{Kind: KindPurge, At: 120 * stream.Millisecond, Op: "pjoin", Shard: -1, Side: 1, N: 42, M: 900})
	j.Trace(Event{Kind: KindSpillError, At: 5, Op: "x\"join", Shard: 3, Side: -1, Err: `disk "gone"`})
	j.Trace(Event{Kind: KindTupleIn, At: 0, Shard: -1, Side: 0})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != 3 {
		t.Errorf("Events = %d", j.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	// Every line must be valid JSON that encoding/json agrees with.
	type rec struct {
		Ev    string `json:"ev"`
		TNs   int64  `json:"t_ns"`
		Op    string `json:"op"`
		Shard *int   `json:"shard"`
		Side  *int   `json:"side"`
		N     int64  `json:"n"`
		M     int64  `json:"m"`
		Err   string `json:"err"`
	}
	var r rec
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("line 0 not JSON: %v (%s)", err, lines[0])
	}
	if r.Ev != "purge" || r.TNs != int64(120*stream.Millisecond) || r.Op != "pjoin" || r.N != 42 || r.M != 900 {
		t.Errorf("line 0 = %+v", r)
	}
	if r.Shard != nil {
		t.Error("shard -1 should be omitted")
	}
	if r.Side == nil || *r.Side != 1 {
		t.Error("side 1 should be present")
	}
	r = rec{}
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil {
		t.Fatalf("line 1 not JSON: %v (%s)", err, lines[1])
	}
	if r.Ev != "spill_error" || r.Op != `x"join` || r.Err != `disk "gone"` {
		t.Errorf("line 1 = %+v", r)
	}
	if r.Shard == nil || *r.Shard != 3 {
		t.Error("shard 3 should be present")
	}
	r = rec{}
	if err := json.Unmarshal([]byte(lines[2]), &r); err != nil {
		t.Fatalf("line 2 not JSON: %v (%s)", err, lines[2])
	}
	if r.Ev != "tuple_in" || r.N != 0 {
		t.Errorf("line 2 = %+v", r)
	}
}

// failWriter fails after n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLSurfacesWriteError(t *testing.T) {
	j := NewJSONL(&failWriter{n: 8})
	for i := 0; i < 10000; i++ {
		j.Trace(Event{Kind: KindTupleIn, At: stream.Time(i), Shard: -1, Side: -1})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("Flush should report the sink error")
	}
}

func TestRecorderCounts(t *testing.T) {
	r := NewRecorder()
	r.Trace(Event{Kind: KindPurge})
	r.Trace(Event{Kind: KindPurge})
	r.Trace(Event{Kind: KindPropagate})
	if r.Count(KindPurge) != 2 || r.Count(KindPropagate) != 1 || r.Count(KindDiskPass) != 0 {
		t.Errorf("counts wrong: %+v", r.Events())
	}
	if len(r.Events()) != 3 {
		t.Errorf("Events = %d", len(r.Events()))
	}
}

func TestInstrNilSafe(t *testing.T) {
	var in *Instr
	if in.Enabled() {
		t.Error("nil Instr reports enabled")
	}
	in.Event(KindPurge, 0, 0, 1, 2)
	in.SpillError(0, 0, errors.New("x"))
	in.Tick(0)
	if in.Derive("child", 2) != nil {
		t.Error("Derive on nil should be nil")
	}
	if in.WithoutLive() != nil {
		t.Error("WithoutLive on nil should be nil")
	}
	if in.Op() != "" || in.Live() != nil {
		t.Error("nil accessors")
	}
	if NewInstr(nil, nil, "x") != nil {
		t.Error("NewInstr(nil, nil) should be nil")
	}
}

func TestInstrIdentityStamping(t *testing.T) {
	r := NewRecorder()
	in := NewInstr(r, nil, "pjoin")
	in.Event(KindProbe, 7, 1, 3, 0)
	sh := in.Derive("pjoin.shard", 4)
	sh.Event(KindPurge, 9, 0, 10, 20)
	sh.SpillError(11, 1, errors.New("boom"))
	sh.SpillError(11, 1, nil) // nil error is dropped
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Op != "pjoin" || evs[0].Shard != -1 || evs[0].Side != 1 || evs[0].N != 3 {
		t.Errorf("ev0 = %+v", evs[0])
	}
	if evs[1].Op != "pjoin.shard" || evs[1].Shard != 4 {
		t.Errorf("ev1 = %+v", evs[1])
	}
	if evs[2].Kind != KindSpillError || evs[2].Err != "boom" {
		t.Errorf("ev2 = %+v", evs[2])
	}
}

func TestWithoutLiveKeepsTracingDropsSampling(t *testing.T) {
	r := NewRecorder()
	lv := NewLive(stream.Millisecond)
	in := NewInstr(r, lv, "op")
	bare := in.WithoutLive()
	if bare == nil || bare.Live() != nil {
		t.Fatal("WithoutLive should keep a live-less handle")
	}
	bare.Event(KindProbe, 1, 0, 1, 0)
	if r.Count(KindProbe) != 1 {
		t.Error("tracing lost")
	}
	// Live-only handle: stripping live leaves nothing worth keeping.
	liveOnly := NewInstr(nil, lv, "op")
	if liveOnly.WithoutLive() != nil {
		t.Error("live-only handle minus live should be nil")
	}
	// No live attached: same handle comes back.
	noLive := NewInstr(r, nil, "op")
	if noLive.WithoutLive() != noLive {
		t.Error("handle without live should be returned unchanged")
	}
}

func TestLiveSampling(t *testing.T) {
	lv := NewLive(10 * stream.Millisecond)
	var state float64
	lv.Register("state_bytes", func() float64 { return state })
	lv.Register("disk_bytes", func() float64 { return state * 2 })

	state = 5
	lv.Tick(0) // first tick samples (deadline starts at 0)
	state = 7
	lv.Tick(3 * stream.Millisecond) // not due
	state = 9
	lv.Tick(12 * stream.Millisecond) // due
	state = 11
	lv.Flush(15 * stream.Millisecond) // forced

	series := lv.Series()
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	// Sorted by name: disk_bytes, state_bytes.
	sb := series[1]
	if sb.Name != "state_bytes" {
		t.Fatalf("series order: %q", sb.Name)
	}
	if sb.Len() != 4 {
		t.Fatalf("points = %d, want 4 (register@0, tick@0, tick@12, flush@15)", sb.Len())
	}
	want := []float64{0, 5, 9, 11}
	for i, w := range want {
		if sb.Points[i].V != w {
			t.Errorf("point %d = %g, want %g", i, sb.Points[i].V, w)
		}
	}
	last, at := lv.LastValues()
	if last["state_bytes"] != 11 || last["disk_bytes"] != 22 {
		t.Errorf("LastValues = %v", last)
	}
	if at != 15*stream.Millisecond {
		t.Errorf("lastAt = %v", at)
	}
}

func TestLiveConcurrentTickSamplesOnce(t *testing.T) {
	lv := NewLive(10 * stream.Millisecond)
	calls := 0
	lv.Register("g", func() float64 { calls++; return 0 })
	if calls != 1 {
		t.Fatalf("registration should sample once, got %d calls", calls)
	}
	calls = 0
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			lv.Tick(5 * stream.Millisecond)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	lv.mu.Lock()
	got := calls
	lv.mu.Unlock()
	if got != 1 {
		t.Errorf("gauge ran %d times for one due tick", got)
	}
}
