package span

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"

	"pjoin/internal/stream"
)

// JSONL is a Tracer that renders each span as one JSON object per line:
//
//	{"sp":"punct_purge_mem","id":17,"tr":3,"t_ns":120000000,"w_ns":...,
//	 "op":"pjoin","side":0,"n":42,"b":2048,"d_ns":91000}
//
// Zero-valued optional fields (shard < 0, side < 0, n/m/b/d zero, op
// empty) are omitted. Encoding is hand-rolled with strconv.Append* so
// a traced run pays no encoding/json reflection per span; the hot cost
// is one mutex and a buffered write. Span lines are deliberately
// disjoint from the obs.JSONL event encoding ("sp" vs "ev"), so both
// tracers may share one output stream and pjointrace can split them.
type JSONL struct {
	mu    sync.Mutex //pjoin:lockrank leaf
	w     *bufio.Writer
	buf   []byte
	kinds [numKinds]int64
	err   error
}

// NewJSONL returns a tracer writing to w. Call Flush before reading
// the underlying writer's output.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Emit implements Tracer.
func (j *JSONL) Emit(s Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := appendSpan(j.buf[:0], s)
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	if int(s.Kind) < numKinds {
		j.kinds[s.Kind]++
	}
}

// appendSpan renders one span as a JSON line.
func appendSpan(b []byte, s Span) []byte {
	b = append(b, `{"sp":"`...)
	b = append(b, s.Kind.String()...)
	b = append(b, `","id":`...)
	b = strconv.AppendUint(b, s.ID, 10)
	if s.Trace != 0 {
		b = append(b, `,"tr":`...)
		b = strconv.AppendUint(b, s.Trace, 10)
	}
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, int64(s.At), 10)
	if s.Wall != 0 {
		b = append(b, `,"w_ns":`...)
		b = strconv.AppendInt(b, s.Wall, 10)
	}
	if s.Op != "" {
		b = append(b, `,"op":`...)
		b = appendOpString(b, s.Op)
	}
	if s.Shard >= 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(s.Shard), 10)
	}
	if s.Side >= 0 {
		b = append(b, `,"side":`...)
		b = strconv.AppendInt(b, int64(s.Side), 10)
	}
	if s.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, s.N, 10)
	}
	if s.M != 0 {
		b = append(b, `,"m":`...)
		b = strconv.AppendInt(b, s.M, 10)
	}
	if s.B != 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, s.B, 10)
	}
	if s.D != 0 {
		b = append(b, `,"d_ns":`...)
		b = strconv.AppendInt(b, s.D, 10)
	}
	return append(b, '}', '\n')
}

// appendOpString quotes an operator name. Operator names are plain
// ASCII identifiers in practice, so the common case skips
// strconv.AppendQuote's per-rune escape analysis — under full sampling
// this runs once per span and shows up in the bench7 profile.
func appendOpString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Counts returns how many spans of each kind were written successfully,
// indexed by Kind. The total feeds the Prometheus span families.
func (j *JSONL) Counts() [numKinds]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.kinds
}

// Events returns the total number of spans written successfully.
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int64
	for _, c := range j.kinds {
		n += c
	}
	return n
}

// Flush drains the buffer and returns the first error seen on the
// underlying writer, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

var _ Tracer = (*JSONL)(nil)

// ParseLine decodes one JSONL span line. Lines that are not span lines
// (no "sp" key — e.g. obs event lines sharing the stream) return
// ok == false with a nil error; malformed span lines return an error.
// The parser is hand-rolled for the fixed field set appendSpan emits:
// pjointrace reads multi-gigabyte traces, and encoding/json per line
// is the difference between seconds and minutes there.
func ParseLine(line []byte) (Span, bool, error) {
	var s Span
	s.Shard, s.Side = -1, -1
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return s, false, nil
	}
	if !bytes.HasPrefix(line, []byte(`{"sp":"`)) {
		return s, false, nil
	}
	rest := line[len(`{"sp":"`):]
	q := bytes.IndexByte(rest, '"')
	if q < 0 {
		return s, false, fmt.Errorf("span: unterminated kind in %q", line)
	}
	k, ok := ParseKind(string(rest[:q]))
	if !ok {
		return s, false, fmt.Errorf("span: unknown kind %q", rest[:q])
	}
	s.Kind = k
	rest = rest[q+1:]
	for len(rest) > 0 {
		if rest[0] == '}' {
			return s, true, nil
		}
		if rest[0] != ',' {
			return s, false, fmt.Errorf("span: bad separator in %q", line)
		}
		rest = rest[1:]
		if rest[0] != '"' {
			return s, false, fmt.Errorf("span: bad key in %q", line)
		}
		q = bytes.IndexByte(rest[1:], '"')
		if q < 0 {
			return s, false, fmt.Errorf("span: unterminated key in %q", line)
		}
		key := string(rest[1 : 1+q])
		rest = rest[q+2:]
		if len(rest) == 0 || rest[0] != ':' {
			return s, false, fmt.Errorf("span: missing value for %q in %q", key, line)
		}
		rest = rest[1:]
		if key == "op" {
			if len(rest) == 0 || rest[0] != '"' {
				return s, false, fmt.Errorf("span: bad op in %q", line)
			}
			end := bytes.IndexByte(rest[1:], '"')
			if end < 0 {
				return s, false, fmt.Errorf("span: unterminated op in %q", line)
			}
			op, err := strconv.Unquote(string(rest[:end+2]))
			if err != nil {
				return s, false, fmt.Errorf("span: bad op in %q: %v", line, err)
			}
			s.Op = op
			rest = rest[end+2:]
			continue
		}
		end := 0
		for end < len(rest) && rest[end] != ',' && rest[end] != '}' {
			end++
		}
		v, err := strconv.ParseInt(string(rest[:end]), 10, 64)
		if err != nil {
			return s, false, fmt.Errorf("span: bad %q value in %q: %v", key, line, err)
		}
		switch key {
		case "id":
			s.ID = uint64(v)
		case "tr":
			s.Trace = uint64(v)
		case "t_ns":
			s.At = stream.Time(v)
		case "w_ns":
			s.Wall = v
		case "shard":
			s.Shard = int32(v)
		case "side":
			s.Side = int8(v)
		case "n":
			s.N = v
		case "m":
			s.M = v
		case "b":
			s.B = v
		case "d_ns":
			s.D = v
		default:
			// Unknown keys are skipped so the format can grow.
		}
		rest = rest[end:]
	}
	return s, false, fmt.Errorf("span: unterminated object in %q", line)
}
