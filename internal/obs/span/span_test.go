package span

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pjoin/internal/stream"
)

// TestNewIDUniqueConcurrent hammers the ID allocator from many
// goroutines (shards, the router, the merger and the executor all
// allocate concurrently in a sharded traced run) and requires every ID
// to be unique and non-zero. Run under -race by `make race`.
func TestNewIDUniqueConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]uint64, perWorker)
			for i := range out {
				out[i] = NewID()
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]struct{}, workers*perWorker)
	for w := range ids {
		for _, id := range ids[w] {
			if id == 0 {
				t.Fatal("NewID returned zero (zero means 'no trace')")
			}
			if _, dup := seen[id]; dup {
				t.Fatalf("duplicate span ID %d", id)
			}
			seen[id] = struct{}{}
		}
	}
}

// TestKindRoundTrip: String/ParseKind are inverses over the whole
// taxonomy, and the IsPunct/IsPass/IsTuple predicates partition it.
func TestKindRoundTrip(t *testing.T) {
	for i := 0; i < NumKinds(); i++ {
		k := Kind(i)
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", i)
		}
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, back, ok, k)
		}
		groups := 0
		for _, in := range []bool{k.IsPunct(), k.IsPass(), k.IsTuple()} {
			if in {
				groups++
			}
		}
		if groups != 1 {
			t.Fatalf("kind %v belongs to %d groups, want exactly 1", k, groups)
		}
	}
	if _, ok := ParseKind("no_such_span"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

// TestJSONLRoundTrip: spans with every field populated, and with the
// optional fields zeroed, survive Emit → ParseLine unchanged; counts
// track per kind; foreign (obs event) lines are skipped, not errors.
func TestJSONLRoundTrip(t *testing.T) {
	full := Span{
		ID: 42, Trace: 7, Kind: KindPunctPurgeMem, At: 123456, Wall: 1700000000000000000,
		Op: "pjoin", Shard: 3, Side: 1, N: 10, M: 2, B: 4096, D: 91000,
	}
	sparse := Span{ID: 43, Kind: KindTupleIngest, At: 5, Shard: -1, Side: -1}

	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(full)
	j.Emit(sparse)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := j.Events(); got != 2 {
		t.Fatalf("Events() = %d, want 2", got)
	}
	counts := j.Counts()
	if counts[KindPunctPurgeMem] != 1 || counts[KindTupleIngest] != 1 {
		t.Fatalf("Counts() = %v", counts)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, want := range []Span{full, sparse} {
		got, ok, err := ParseLine([]byte(lines[i]))
		if err != nil || !ok {
			t.Fatalf("line %d: ParseLine ok=%v err=%v", i, ok, err)
		}
		if got != want {
			t.Fatalf("line %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}

	// Lines from the obs event tracer sharing the stream are not spans.
	for _, foreign := range []string{
		`{"ev":"purge","t_ns":1,"op":"pjoin","n":3}`,
		``,
		`   `,
	} {
		if _, ok, err := ParseLine([]byte(foreign)); ok || err != nil {
			t.Fatalf("foreign line %q: ok=%v err=%v, want skipped", foreign, ok, err)
		}
	}

	// Malformed span lines are errors, not silent skips.
	for _, bad := range []string{
		`{"sp":"nope","id":1,"t_ns":0}`,
		`{"sp":"punct_arrive","id":xx}`,
		`{"sp":"punct_arrive","id":1`,
	} {
		if _, _, err := ParseLine([]byte(bad)); err == nil {
			t.Fatalf("malformed line %q accepted", bad)
		}
	}
}

// TestSampler: the 1-in-N admission pattern, the decision counters, and
// the nil no-op contract.
func TestSampler(t *testing.T) {
	s := NewSampler(4)
	admitted := 0
	for i := 0; i < 100; i++ {
		if s.Sample() {
			admitted++
		}
	}
	if admitted != 25 {
		t.Fatalf("1-in-4 over 100 admitted %d, want 25", admitted)
	}
	if s.Sampled() != 25 || s.Dropped() != 75 {
		t.Fatalf("counters = %d/%d, want 25/75", s.Sampled(), s.Dropped())
	}

	all := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !all.Sample() {
			t.Fatal("rate-1 sampler rejected a tuple")
		}
	}
	if NewSampler(0).every != 1 {
		t.Fatal("rate 0 should clamp to 1")
	}

	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler admitted a tuple")
	}
	if nilS.Sampled() != 0 || nilS.Dropped() != 0 {
		t.Fatal("nil sampler counted decisions")
	}
}

// TestRecorder: spans group by trace and order is preserved.
func TestRecorder(t *testing.T) {
	r := &Recorder{}
	if !r.Enabled() {
		t.Fatal("recorder should be enabled")
	}
	r.Emit(Span{ID: 1, Trace: 10, Kind: KindPunctArrive, At: stream.Time(1)})
	r.Emit(Span{ID: 2, Trace: 11, Kind: KindPunctArrive, At: stream.Time(2)})
	r.Emit(Span{ID: 3, Trace: 10, Kind: KindPunctEmit, At: stream.Time(3)})
	if r.Count() != 3 {
		t.Fatalf("Count() = %d", r.Count())
	}
	byTrace := r.ByTrace()
	if len(byTrace[10]) != 2 || len(byTrace[11]) != 1 {
		t.Fatalf("ByTrace() = %v", byTrace)
	}
	if byTrace[10][0].Kind != KindPunctArrive || byTrace[10][1].Kind != KindPunctEmit {
		t.Fatal("trace 10 out of order")
	}
}
