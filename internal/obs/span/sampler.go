package span

import "sync/atomic"

// Sampler decides which tuples get a provenance trace. Punctuation and
// pass spans are never sampled (they are rare and the reconciliation
// guarantees need every one); tuple spans go through a Sampler so full
// tracing of a million-tuple run stays optional. Admission is a single
// atomic add — safe from concurrent sources, zero allocations.
type Sampler struct {
	every   uint64
	ctr     atomic.Uint64
	sampled atomic.Int64
	dropped atomic.Int64
}

// NewSampler returns a sampler admitting one in every tuples (every
// <= 1 admits all). A nil *Sampler admits nothing, so "tuple tracing
// off" stays a single nil check.
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether the next tuple should carry a trace, and
// counts the decision either way.
//
//pjoin:hotpath
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	c := s.ctr.Add(1)
	if s.every <= 1 || (c-1)%s.every == 0 {
		s.sampled.Add(1)
		return true
	}
	s.dropped.Add(1)
	return false
}

// Sampled returns how many tuples were admitted.
func (s *Sampler) Sampled() int64 {
	if s == nil {
		return 0
	}
	return s.sampled.Load()
}

// Dropped returns how many tuples were passed over — the
// `span_sampler_dropped_total` Prometheus family, so a scrape shows
// how much provenance the sample rate is leaving on the floor.
func (s *Sampler) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}
