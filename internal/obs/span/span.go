// Package span is the provenance layer of the obs stack: causally
// linked spans with process-unique IDs that follow (a) every
// punctuation through its lifecycle — arrival, each memory/disk purge
// step, deferred propagation, final emit — with per-span tuples-dropped
// and bytes-reclaimed attribution, (b) sampled tuples through
// ingest → edge batch → operator delivery → probe → result emit, and
// (c) disk-join passes, so spill/cache I/O is attributed to the pass
// that caused it.
//
// The flat counters and histograms of PRs 2/4 say *how much* state was
// purged and *how long* results took; spans say *which punctuation*
// purged *what* and *where* a tuple's latency went. `cmd/pjointrace`
// reads the JSONL output offline and reconstructs lifecycles.
//
// # Trace model
//
// Every span carries a Trace ID grouping it with its cause:
//
//   - A punctuation trace is allocated when the punctuation first
//     enters the join graph (the sharded router, else the join core)
//     and rides stream.Item.Span across operator edges, so shard-local
//     spans from all shards group under the one trace. Every purge
//     span attributes its freed tuples to the earliest-arrived
//     matching punctuation — the same entry the purge logic resolves.
//   - A tuple trace is allocated by the source-side sampler and rides
//     stream.Tuple.Span; Tuple.Join propagates it to result tuples.
//   - A pass trace is allocated per disk-join pass (blocking or
//     chunked) and groups its start/chunk/io/end spans.
//
// # Overhead budget
//
// The conventions of package obs apply: a nil handle or disabled
// tracer must cost one branch and ZERO allocations on hot paths
// (guarded by AllocsPerRun tests), spans are plain value structs, and
// tuple-side cost is bounded by the Sampler. Punctuation spans are not
// sampled — punctuations are rare relative to tuples, and the
// reconciliation guarantees (Σ purge-span drops == Metrics.Purged)
// need every one.
package span

import (
	"sync/atomic"

	"pjoin/internal/stream"
)

// Kind discriminates span records.
type Kind uint8

// The span taxonomy. N/M/B/D carry kind-specific payloads, documented
// per kind; B is always bytes, D always a duration in nanoseconds.
const (
	// KindPunctArrive: a punctuation entered an operator. Side = input
	// side, N = the PID the punctuation set assigned. The sharded
	// router also emits one (Shard = -1, N = 0) when it allocates the
	// trace, before broadcasting to shards.
	KindPunctArrive Kind = iota
	// KindPunctPurgeMem: one punctuation's share of one memory-purge
	// run. Side = victim state, N = tuples freed (counted in
	// Metrics.Purged), M = tuples parked to the purge buffer for a
	// later disk pass, B = bytes reclaimed by the freed tuples,
	// D = wall time of the whole purge run (shared by the run's spans).
	KindPunctPurgeMem
	// KindPunctDropFly: a tuple was dropped on the fly (§4.3). Side =
	// the tuple's port, N = 1 if dropped immediately, M = 1 if parked
	// to the purge buffer instead (disk portion pending), B = bytes.
	KindPunctDropFly
	// KindPunctPurgeDisk: one tuple dropped from the disk portion
	// during a pass, attributed to the punctuation in force at bucket
	// open. Side = victim state, N = 1, B = bytes.
	KindPunctPurgeDisk
	// KindPunctDefer: propagation of a ready punctuation was deferred.
	// Side = punctuation's input side, N = PID, M = reason: 1 = a disk
	// pass is in flight, 2 = the punctuation's own disk purge is
	// pending.
	KindPunctDefer
	// KindPunctEmit: the punctuation was released downstream — the
	// terminal span of a healthy lifecycle. Side = input side, N = PID,
	// D = propagation delay in stream time (emit At − arrival At). The
	// countdown merger of the sharded join emits the join-wide terminal
	// span with Shard = -1 after the last shard propagates; shard-local
	// emits carry their shard index.
	KindPunctEmit
	// KindPunctEOSClose: the run ended (Finish) while the punctuation
	// had not propagated; the trace is closed administratively so no
	// lifecycle dangles. Side = input side, N = PID.
	KindPunctEOSClose

	// KindPassStart: a disk-join pass began. N = 1 for a chunked
	// (resumable) pass, 0 for a blocking one.
	KindPassStart
	// KindPassChunk: one bounded step of a chunked pass. N = candidate
	// pairs examined this step, M = results produced this step,
	// B = spill bytes read this step (both sides), D = step wall ns.
	KindPassChunk
	// KindPassIO: the pass's spill/cache traffic, emitted once at pass
	// end. N = read ops + chunk reads, M = spill-cache hits during the
	// pass, B = bytes read from the spill stores (post-cache).
	KindPassIO
	// KindPassEnd: the pass completed. N = candidate pairs examined,
	// M = results produced, B = bytes read total, D = pass wall ns
	// (for a chunked pass: from first step to last, including time the
	// event loop spent elsewhere between pumps).
	KindPassEnd

	// KindTupleIngest: a source admitted a sampled tuple. Side = -1 (a
	// source does not know its consumer's port; the deliver span does).
	KindTupleIngest
	// KindTupleCut: the batch holding a sampled tuple was cut and sent
	// on an edge. N = batch length, M = 1 if the cut was forced by a
	// punctuation/EOS/flush rather than the batch filling.
	KindTupleCut
	// KindTupleDeliver: the operator driver delivered the sampled tuple
	// (restamped). Side = port. The gap from ingest/cut to deliver is
	// the queue + batch-linger component of result latency.
	KindTupleDeliver
	// KindTupleProbe: the sampled tuple's probe completed. Side =
	// probing side, N = matches emitted, M = tuples examined.
	KindTupleProbe
	// KindTupleResult: a join result descending from the sampled tuple
	// was emitted. D = result latency (emit At − result tuple Ts). At
	// most ResultCap result spans are emitted per probe burst: a hot key
	// can match thousands of partners, and a span per match is the one
	// place span volume scales with output rather than input (the bench7
	// overhead budget is where that bites). The probe span's N still
	// carries the exact match count; result spans are latency samples.
	KindTupleResult

	numKinds = int(KindTupleResult) + 1
)

// ResultCap bounds KindTupleResult spans per probe burst (one tuple's
// memory probe, or one disk-pass step). See the KindTupleResult docs.
const ResultCap = 4

var kindNames = [numKinds]string{
	"punct_arrive", "punct_purge_mem", "punct_drop_fly", "punct_purge_disk",
	"punct_defer", "punct_emit", "punct_eos_close",
	"pass_start", "pass_chunk", "pass_io", "pass_end",
	"tuple_ingest", "tuple_cut", "tuple_deliver", "tuple_probe", "tuple_result",
}

// String returns the kind's wire name (the "sp" field of the JSONL sink).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind is the inverse of String. ok is false for unknown names.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// NumKinds returns the size of the taxonomy (for per-kind counters).
func NumKinds() int { return numKinds }

// IsPunct reports whether k belongs to a punctuation lifecycle.
func (k Kind) IsPunct() bool { return k <= KindPunctEOSClose }

// IsPass reports whether k belongs to a disk-pass trace.
func (k Kind) IsPass() bool { return k >= KindPassStart && k <= KindPassEnd }

// IsTuple reports whether k belongs to a sampled-tuple trace.
func (k Kind) IsTuple() bool { return k >= KindTupleIngest }

// Span is one provenance record. At is the virtual timestamp of the
// event (stream time under the simulator, wall-clock offset under the
// live executor — the same clock as obs.Event.At); Wall is the
// emitting process's wall clock in Unix nanoseconds, so purge wall
// time and cross-shard ordering survive into offline analysis.
type Span struct {
	ID    uint64 // process-unique span ID
	Trace uint64 // the punctuation/tuple/pass trace this span belongs to
	Kind  Kind
	At    stream.Time
	Wall  int64
	Op    string // operator instance name
	Shard int32  // shard index, -1 when unsharded / join-wide
	Side  int8   // input side / port, -1 when not applicable
	N     int64  // kind-specific count (see Kind docs)
	M     int64  // kind-specific count (see Kind docs)
	B     int64  // bytes (see Kind docs)
	D     int64  // duration in nanoseconds (see Kind docs)
}

var idCounter atomic.Uint64

// NewID returns a process-unique, non-zero ID. Safe for concurrent use
// from any number of shards; IDs are dense but carry no ordering
// meaning beyond uniqueness.
//
//pjoin:hotpath
func NewID() uint64 { return idCounter.Add(1) }

// Tracer receives spans. Implementations must be safe for concurrent
// use: shards, the router, the merger and the executor all emit.
type Tracer interface {
	// Enabled reports whether Emit does anything; instrumentation skips
	// span construction entirely when false.
	Enabled() bool
	// Emit records one span.
	Emit(Span)
}

type nopTracer struct{}

func (nopTracer) Enabled() bool { return false }
func (nopTracer) Emit(Span)     {}

// Nop is the no-op default Tracer.
var Nop Tracer = nopTracer{}
