package span

import "sync"

// Recorder is a Tracer that collects spans in memory, for tests and
// the oracle's reconciliation checks.
type Recorder struct {
	mu    sync.Mutex //pjoin:lockrank leaf
	spans []Span
}

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Emit implements Tracer.
func (r *Recorder) Emit(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Count returns the number of recorded spans.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// ByTrace groups the recorded spans by trace ID, preserving emission
// order within each trace.
func (r *Recorder) ByTrace() map[uint64][]Span {
	out := map[uint64][]Span{}
	for _, s := range r.Spans() {
		out[s.Trace] = append(out[s.Trace], s)
	}
	return out
}

var _ Tracer = (*Recorder)(nil)
