package obs

import (
	"testing"

	"pjoin/internal/stream"
)

// TestLiveRegisterSamplesImmediately is the regression test for the
// first-tick fix: a run shorter than one sampling period used to end
// with completely empty series because the first sample waited for the
// first due tick. Registration now samples at t=0, so even a zero-tick
// run has one point per series.
func TestLiveRegisterSamplesImmediately(t *testing.T) {
	lv := NewLive(100 * stream.Millisecond)
	state := 42.0
	lv.Register("state_bytes", func() float64 { return state })

	// No ticks at all — the run "ended" before the first period.
	series := lv.Series()
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	s := series[0]
	if s.Len() != 1 {
		t.Fatalf("points = %d, want 1 (the registration sample)", s.Len())
	}
	if s.Points[0].T != 0 || s.Points[0].V != 42 {
		t.Fatalf("registration point = (%v, %g), want (0, 42)", s.Points[0].T, s.Points[0].V)
	}
	last, _ := lv.LastValues()
	if last["state_bytes"] != 42 {
		t.Fatalf("LastValues missing registration sample: %v", last)
	}
}

// TestLiveLateRegistrationStampsLastSampleTime: a gauge registered
// mid-run gets its immediate sample at the sampler's last sample time,
// not at zero, keeping per-series timestamps monotone.
func TestLiveLateRegistrationStampsLastSampleTime(t *testing.T) {
	lv := NewLive(10 * stream.Millisecond)
	lv.Register("a", func() float64 { return 1 })
	lv.Tick(0)
	lv.Tick(20 * stream.Millisecond)

	lv.Register("b", func() float64 { return 2 })
	for _, s := range lv.Series() {
		if s.Name != "b" {
			continue
		}
		if s.Len() != 1 {
			t.Fatalf("b has %d points, want 1", s.Len())
		}
		if s.Points[0].T != (20*stream.Millisecond).Millis() || s.Points[0].V != 2 {
			t.Fatalf("late registration point = (%g, %g), want (20, 2)", s.Points[0].T, s.Points[0].V)
		}
		return
	}
	t.Fatal("series b missing")
}
