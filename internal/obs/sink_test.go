package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pjoin/internal/stream"
)

// traceSome writes a small JSONL trace through the sink and closes it.
func traceSome(t *testing.T, path string, n int) {
	t.Helper()
	w, err := CreateSink(path)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJSONL(w)
	for i := 0; i < n; i++ {
		j.Trace(Event{Kind: KindTupleIn, At: stream.Time(i), Op: "pjoin", Shard: -1, Side: int8(i % 2)})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	r, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var lines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSinkGzipRoundTrip: a trace written to a .gz path comes back
// identical through OpenSink, and the file really is a gzip stream.
func TestSinkGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "trace.jsonl")
	zipped := filepath.Join(dir, "trace.jsonl.gz")
	const n = 500
	traceSome(t, plain, n)
	traceSome(t, zipped, n)

	plainLines := readLines(t, plain)
	zipLines := readLines(t, zipped)
	if len(plainLines) != n || len(zipLines) != n {
		t.Fatalf("line counts: plain %d, gz %d, want %d", len(plainLines), len(zipLines), n)
	}
	for i := range plainLines {
		if plainLines[i] != zipLines[i] {
			t.Fatalf("line %d differs:\nplain: %s\ngz:    %s", i, plainLines[i], zipLines[i])
		}
	}
	// Every line is valid JSON with the expected fields.
	var rec struct {
		Ev  string `json:"ev"`
		TNs int64  `json:"t_ns"`
	}
	if err := json.Unmarshal([]byte(zipLines[n-1]), &rec); err != nil {
		t.Fatalf("last line not JSON: %v", err)
	}
	if rec.Ev != "tuple_in" || rec.TNs != n-1 {
		t.Fatalf("last line = %+v", rec)
	}

	// The .gz file must be a real gzip stream (magic header + smaller
	// than the plain trace), not a plain file with a misleading name.
	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("missing gzip magic header")
	}
	plainInfo, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) >= plainInfo.Size() {
		t.Fatalf("gzip trace (%d bytes) not smaller than plain (%d bytes)", len(raw), plainInfo.Size())
	}
	// And stdlib gzip must agree it is well-formed end-to-end.
	f, err := os.Open(zipped)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(zr).ReadBytes(0); err != nil && err.Error() != "EOF" {
		t.Fatalf("corrupt gzip stream: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("gzip checksum: %v", err)
	}
}

func TestSinkPlainPassThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	traceSome(t, path, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] != '{' {
		t.Fatalf("plain sink should write JSONL directly, got %q", raw)
	}
}
