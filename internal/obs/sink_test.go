package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pjoin/internal/stream"
)

// traceSome writes a small JSONL trace through the sink and closes it.
func traceSome(t *testing.T, path string, n int) {
	t.Helper()
	w, err := CreateSink(path)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJSONL(w)
	for i := 0; i < n; i++ {
		j.Trace(Event{Kind: KindTupleIn, At: stream.Time(i), Op: "pjoin", Shard: -1, Side: int8(i % 2)})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	r, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var lines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSinkGzipRoundTrip: a trace written to a .gz path comes back
// identical through OpenSink, and the file really is a gzip stream.
func TestSinkGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "trace.jsonl")
	zipped := filepath.Join(dir, "trace.jsonl.gz")
	const n = 500
	traceSome(t, plain, n)
	traceSome(t, zipped, n)

	plainLines := readLines(t, plain)
	zipLines := readLines(t, zipped)
	if len(plainLines) != n || len(zipLines) != n {
		t.Fatalf("line counts: plain %d, gz %d, want %d", len(plainLines), len(zipLines), n)
	}
	for i := range plainLines {
		if plainLines[i] != zipLines[i] {
			t.Fatalf("line %d differs:\nplain: %s\ngz:    %s", i, plainLines[i], zipLines[i])
		}
	}
	// Every line is valid JSON with the expected fields.
	var rec struct {
		Ev  string `json:"ev"`
		TNs int64  `json:"t_ns"`
	}
	if err := json.Unmarshal([]byte(zipLines[n-1]), &rec); err != nil {
		t.Fatalf("last line not JSON: %v", err)
	}
	if rec.Ev != "tuple_in" || rec.TNs != n-1 {
		t.Fatalf("last line = %+v", rec)
	}

	// The .gz file must be a real gzip stream (magic header + smaller
	// than the plain trace), not a plain file with a misleading name.
	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("missing gzip magic header")
	}
	plainInfo, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) >= plainInfo.Size() {
		t.Fatalf("gzip trace (%d bytes) not smaller than plain (%d bytes)", len(raw), plainInfo.Size())
	}
	// And stdlib gzip must agree it is well-formed end-to-end.
	f, err := os.Open(zipped)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(zr).ReadBytes(0); err != nil && err.Error() != "EOF" {
		t.Fatalf("corrupt gzip stream: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("gzip checksum: %v", err)
	}
}

// TestSinkCloseFlushesGzipFooter pins the Close contract: everything
// written before Close — including data still sitting in the gzip
// compressor — must be decodable by a STRICT reader afterwards, which
// requires Close to flush the deflate tail and write the 8-byte
// CRC/length footer. A sink that only closed the file would pass the
// round-trip test above whenever the payload happened to be flushed;
// this test reads the trailer bytes directly.
func TestSinkCloseFlushesGzipFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	w, err := CreateSink(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"ev":"probe","t_ns":1}` + "\n")
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// RFC 1952: the member ends with CRC32 then ISIZE (uncompressed
	// length mod 2^32), both little-endian. ISIZE is the cheap footer
	// probe: it must equal the payload length.
	if len(raw) < 8 {
		t.Fatalf("gzip file too short for a footer: %d bytes", len(raw))
	}
	isize := uint32(raw[len(raw)-4]) | uint32(raw[len(raw)-3])<<8 |
		uint32(raw[len(raw)-2])<<16 | uint32(raw[len(raw)-1])<<24
	if isize != uint32(len(payload)) {
		t.Fatalf("gzip ISIZE footer = %d, want %d (footer not flushed on Close)", isize, len(payload))
	}
	// And the strict reader must decode the full payload with a clean
	// checksum — gzip.Reader verifies the footer on EOF.
	r, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("strict read after Close: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

// TestSinkTolerantTruncatedTrailer: a gzip trace missing its trailer
// (crash mid-write) fails the strict reader but yields its decodable
// prefix through OpenSinkTolerant; genuine mid-stream corruption is
// still reported.
func TestSinkTolerantTruncatedTrailer(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl.gz")
	const n = 200
	traceSome(t, full, n)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the 8-byte footer (and a little of the deflate tail, as a
	// real crash would).
	trunc := filepath.Join(dir, "trunc.jsonl.gz")
	if err := os.WriteFile(trunc, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict reader: the truncation must surface as an error.
	sr, err := OpenSink(trunc)
	if err != nil {
		t.Fatal(err)
	}
	_, strictErr := io.ReadAll(sr)
	sr.Close()
	if strictErr == nil {
		t.Fatal("strict reader accepted a truncated gzip stream")
	}

	// Tolerant reader: a clean EOF after the decodable prefix. The tail
	// may end mid-line; every complete line must match the original.
	tr, err := OpenSinkTolerant(trunc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(tr)
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tolerant close: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("tolerant reader recovered nothing")
	}
	fullR, err := OpenSink(full)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(fullR)
	fullR.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want[:len(got)]) {
		t.Fatal("recovered prefix diverges from the original trace")
	}
	lines := strings.Count(string(got), "\n")
	if lines < n/2 {
		t.Fatalf("recovered only %d of %d lines", lines, n)
	}

	// Tolerant mode must not mask mid-stream corruption: flip a byte in
	// the deflate payload (past the 10-byte header) and expect an error.
	corrupt := filepath.Join(dir, "corrupt.jsonl.gz")
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	cr, err := OpenSinkTolerant(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	if _, err := io.ReadAll(cr); err == nil {
		t.Fatal("tolerant reader swallowed mid-stream corruption")
	}
}

func TestSinkPlainPassThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	traceSome(t, path, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] != '{' {
		t.Fatalf("plain sink should write JSONL directly, got %q", raw)
	}
}
