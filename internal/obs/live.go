package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"pjoin/internal/metrics"
	"pjoin/internal/stream"
)

// Live samples a set of registered gauges on a virtual-time tick and
// accumulates the samples as metrics.Series.
//
// Concurrency model: Tick is called from the operator's own processing
// path (via Instr.Tick), so gauge closures run on the goroutine that owns
// the operator state — they may read that state without extra locking.
// The tick claim is a single atomic compare-and-swap, so concurrent
// callers (several shards offering the same tick) sample at most once,
// and a not-yet-due tick costs one atomic load and zero allocations.
// Readers (Series, LastValues) take the sample mutex and may run on any
// goroutine — that is how the expvar endpoint observes a running
// operator without touching operator state.
type Live struct {
	every int64        // sampling period, ns of virtual time
	next  atomic.Int64 // virtual deadline of the next sample

	mu     sync.Mutex //pjoin:lockrank 10
	gauges []gauge
	series map[string]*metrics.Series
	last   map[string]float64
	lastAt stream.Time
}

type gauge struct {
	name string
	fn   func() float64
}

// NewLive returns a sampler that takes one sample per `every` of virtual
// time (e.g. 100*stream.Millisecond). every <= 0 defaults to 100ms.
func NewLive(every stream.Time) *Live {
	if every <= 0 {
		every = 100 * stream.Millisecond
	}
	return &Live{
		every:  int64(every),
		series: make(map[string]*metrics.Series),
		last:   make(map[string]float64),
	}
}

// Register adds a named gauge. Gauges run on the ticking operator's
// goroutine (see type doc); register before the operator starts.
//
// The gauge is sampled once immediately, timestamped with the sampler's
// last sample time (t=0 for a fresh sampler), so every series has at
// least one point even when the run ends before the first period
// elapses — a run shorter than `every` used to produce empty series.
func (l *Live) Register(name string, fn func() float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gauges = append(l.gauges, gauge{name: name, fn: fn})
	if _, ok := l.series[name]; !ok {
		l.series[name] = &metrics.Series{Name: name}
	}
	v := fn()
	l.series[name].Add(l.lastAt.Millis(), v)
	l.last[name] = v
}

// Tick samples every gauge if the sampling period has elapsed since the
// last sample. Cheap when not due: one atomic load + compare.
func (l *Live) Tick(now stream.Time) {
	for {
		due := l.next.Load()
		if int64(now) < due {
			return
		}
		// Claim this sample; losers of the race skip it.
		if l.next.CompareAndSwap(due, int64(now)+l.every) {
			break
		}
	}
	l.sample(now)
}

// sample runs the gauges and appends one point per series.
func (l *Live) sample(now stream.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := now.Millis()
	for _, g := range l.gauges {
		v := g.fn()
		l.series[g.name].Add(t, v)
		l.last[g.name] = v
	}
	l.lastAt = now
}

// Flush forces a final sample at the given time regardless of the tick,
// so a run's last state is always represented.
func (l *Live) Flush(now stream.Time) {
	l.next.Store(int64(now) + l.every)
	l.sample(now)
}

// Series returns the accumulated series, sorted by name.
func (l *Live) Series() []metrics.Series {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]metrics.Series, 0, len(l.series))
	for _, s := range l.series {
		cp := metrics.Series{Name: s.Name, Points: make([]metrics.Point, len(s.Points))}
		copy(cp.Points, s.Points)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LastValues returns the most recent sample of every gauge and its
// virtual timestamp — what the expvar endpoint publishes.
func (l *Live) LastValues() (map[string]float64, stream.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.last))
	for k, v := range l.last {
		out[k] = v
	}
	return out, l.lastAt
}
