package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONL is a Tracer that renders each event as one JSON object per line:
//
//	{"ev":"purge","t_ns":120000000,"op":"pjoin","side":0,"n":42,"m":900}
//
// Zero-valued optional fields (shard < 0, side < 0, n/m/err zero) are
// omitted to keep traces compact. Encoding is hand-rolled with
// strconv.Append* so a traced run does not pay encoding/json reflection
// per event; the hot cost is one mutex and a buffered write.
type JSONL struct {
	mu     sync.Mutex //pjoin:lockrank leaf
	w      *bufio.Writer
	buf    []byte
	events int64
	err    error
}

// NewJSONL returns a tracer writing to w. Call Flush before reading the
// underlying writer's output.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Trace implements Tracer.
func (j *JSONL) Trace(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","t_ns":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	if e.Op != "" {
		b = append(b, `,"op":`...)
		b = strconv.AppendQuote(b, e.Op)
	}
	if e.Shard >= 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(e.Shard), 10)
	}
	if e.Side >= 0 {
		b = append(b, `,"side":`...)
		b = strconv.AppendInt(b, int64(e.Side), 10)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, e.N, 10)
	}
	if e.M != 0 {
		b = append(b, `,"m":`...)
		b = strconv.AppendInt(b, e.M, 10)
	}
	if e.Err != "" {
		b = append(b, `,"err":`...)
		b = strconv.AppendQuote(b, e.Err)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.events++
}

// Events returns how many events were written successfully.
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Flush drains the buffer and returns the first error seen on the
// underlying writer, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

var _ Tracer = (*JSONL)(nil)
