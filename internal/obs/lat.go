package obs

import (
	"pjoin/internal/obs/hist"
	"pjoin/internal/stream"
)

// Lat bundles the three latency histograms every join operator keeps.
// All values are nanoseconds; Result and PunctDelay are *virtual* time
// (the stream clock the operator advances on arrivals), Purge is wall
// clock (purge passes run inside one operator call, so virtual time
// cannot advance across them).
//
// A nil *Lat is a valid "not measuring" handle: every method no-ops, so
// operators record unconditionally and an un-instrumented run pays only
// a nil check. Recording is allocation-free and lock-free (see
// internal/obs/hist); snapshots may be taken from any goroutine while
// the operator runs.
type Lat struct {
	// Result: tuple-arrival → result-emit latency. A result tuple's
	// timestamp is the max of its inputs' timestamps (stream.Tuple.Join),
	// so operator-now minus result-timestamp is exactly how long the
	// older constituent waited in state before the match was emitted.
	Result *hist.Hist
	// PunctDelay: punctuation-arrival → downstream-propagation delay.
	PunctDelay *hist.Hist
	// Purge: wall-clock duration of one purge pass.
	Purge *hist.Hist
	// DiskChunk: wall-clock duration of one bounded step of an
	// incremental disk pass (a chunk read, a batch of pair checks, or a
	// bucket finalise). The chunk budget caps these — the histogram is
	// the evidence the hot path never stalls longer than one chunk.
	DiskChunk *hist.Hist
	// DiskPass: wall-clock duration of one complete disk pass, blocking
	// or chunked (start of the pass to its last chunk).
	DiskPass *hist.Hist
	// BatchFill: items per delivered batch (a count, not nanoseconds).
	// One sample per ProcessBatch call; empty on the per-item path. Mean
	// fill vs. the configured batch size shows whether the linger window
	// or the size cap is cutting batches.
	BatchFill *hist.Hist
}

// NewLat returns a Lat with all histograms allocated.
func NewLat() *Lat {
	return &Lat{
		Result: hist.New(), PunctDelay: hist.New(), Purge: hist.New(),
		DiskChunk: hist.New(), DiskPass: hist.New(), BatchFill: hist.New(),
	}
}

// RecordResult records one emitted result's latency (now − result ts).
func (l *Lat) RecordResult(now, ts stream.Time) {
	if l == nil {
		return
	}
	l.Result.Record(int64(now) - int64(ts))
}

// RecordPunctDelay records one propagated punctuation's delay
// (now − arrival ts).
func (l *Lat) RecordPunctDelay(now, arrived stream.Time) {
	if l == nil {
		return
	}
	l.PunctDelay.Record(int64(now) - int64(arrived))
}

// RecordPurge records one purge pass's wall-clock duration in ns.
func (l *Lat) RecordPurge(ns int64) {
	if l == nil {
		return
	}
	l.Purge.Record(ns)
}

// RecordDiskChunk records one incremental-disk-pass step's wall-clock
// duration in ns.
func (l *Lat) RecordDiskChunk(ns int64) {
	if l == nil {
		return
	}
	l.DiskChunk.Record(ns)
}

// RecordDiskPass records one complete disk pass's wall-clock duration in
// ns (blocking passes and chunked passes alike).
func (l *Lat) RecordDiskPass(ns int64) {
	if l == nil {
		return
	}
	l.DiskPass.Record(ns)
}

// RecordBatchFill records one delivered batch's item count.
func (l *Lat) RecordBatchFill(n int) {
	if l == nil {
		return
	}
	l.BatchFill.Record(int64(n))
}

// LatSnapshot is a point-in-time copy of a Lat, safe to merge and
// serialise. The zero value is empty and merge-ready.
type LatSnapshot struct {
	Result     hist.Snapshot
	PunctDelay hist.Snapshot
	Purge      hist.Snapshot
	DiskChunk  hist.Snapshot
	DiskPass   hist.Snapshot
	BatchFill  hist.Snapshot
}

// Snapshot copies all histograms. Nil-safe (returns an empty snapshot).
func (l *Lat) Snapshot() LatSnapshot {
	if l == nil {
		return LatSnapshot{}
	}
	return LatSnapshot{
		Result:     l.Result.Snapshot(),
		PunctDelay: l.PunctDelay.Snapshot(),
		Purge:      l.Purge.Snapshot(),
		DiskChunk:  l.DiskChunk.Snapshot(),
		DiskPass:   l.DiskPass.Snapshot(),
		BatchFill:  l.BatchFill.Snapshot(),
	}
}

// Merge accumulates o into s — how a sharded operator's router builds
// the global latency view from per-shard snapshots.
func (s *LatSnapshot) Merge(o LatSnapshot) {
	s.Result.Merge(o.Result)
	s.PunctDelay.Merge(o.PunctDelay)
	s.Purge.Merge(o.Purge)
	s.DiskChunk.Merge(o.DiskChunk)
	s.DiskPass.Merge(o.DiskPass)
	s.BatchFill.Merge(o.BatchFill)
}
