package obs

import (
	"sync"
	"testing"

	"pjoin/internal/stream"
)

func TestRecorderEventsAndCount(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder must be enabled")
	}
	r.Trace(Event{Kind: KindTupleIn, At: 1})
	r.Trace(Event{Kind: KindPurge, At: 2})
	r.Trace(Event{Kind: KindTupleIn, At: 3})
	if got := r.Count(KindTupleIn); got != 2 {
		t.Fatalf("Count(tuple_in) = %d, want 2", got)
	}
	if got := r.Count(KindPropagate); got != 0 {
		t.Fatalf("Count(propagate) = %d, want 0", got)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Events len = %d, want 3", len(evs))
	}
	// Events returns a copy — mutating it must not affect the recorder.
	evs[0].Kind = KindPurge
	if got := r.Count(KindPurge); got != 1 {
		t.Fatalf("Events() aliases internal storage: Count(purge) = %d", got)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Trace(Event{Kind: KindTupleIn, At: stream.Time(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot len = %d, want 5", len(snap))
	}
	for i, e := range snap {
		if e.At != stream.Time(i) {
			t.Fatalf("snap[%d].At = %d, want %d", i, e.At, i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

// TestRingWrapAround fills the ring several times over and checks that
// exactly the newest `capacity` events survive, oldest first.
func TestRingWrapAround(t *testing.T) {
	const capacity, n = 8, 27
	r := NewRing(capacity)
	for i := 0; i < n; i++ {
		r.Trace(Event{Kind: KindTupleIn, At: stream.Time(i)})
	}
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot len = %d, want %d", len(snap), capacity)
	}
	for i, e := range snap {
		want := stream.Time(n - capacity + i)
		if e.At != want {
			t.Fatalf("snap[%d].At = %d, want %d (oldest→newest order)", i, e.At, want)
		}
	}
	if r.Total() != n {
		t.Fatalf("Total = %d, want %d", r.Total(), n)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0) // clamps to 1
	r.Trace(Event{At: 1})
	r.Trace(Event{At: 2})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].At != 2 {
		t.Fatalf("snapshot = %+v, want just the newest event", snap)
	}
}

// TestRingConcurrentDetach hammers a ring from writer goroutines while
// another goroutine detaches it and snapshots — the -race proof that
// Detach is safe against in-flight Trace calls.
func TestRingConcurrentDetach(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 5000; i++ {
				if !r.Enabled() {
					return
				}
				r.Trace(Event{Kind: KindProbe, At: stream.Time(i), Shard: int32(w)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
		r.Detach()
	}()
	close(start)
	wg.Wait()
	if r.Enabled() {
		t.Fatal("ring still enabled after Detach")
	}
	totalAtDetach := r.Total()
	// Post-detach traces are dropped.
	r.Trace(Event{At: 999})
	if r.Total() != totalAtDetach {
		t.Fatalf("Trace after Detach recorded: total %d -> %d", totalAtDetach, r.Total())
	}
	if len(r.Snapshot()) > 64 {
		t.Fatalf("snapshot exceeds capacity: %d", len(r.Snapshot()))
	}
}
