package op

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// Select filters tuples by a predicate. Punctuations pass through
// unchanged (the pass rule for selection: dropping tuples can only make
// a punctuation's promise easier to keep).
type Select struct {
	name     string
	in       *stream.Schema
	pred     func(*stream.Tuple) bool
	emit     Emitter
	eos      bool
	finished bool
	now      stream.Time
}

var _ Operator = (*Select)(nil)

// NewSelect builds a selection with the given predicate.
func NewSelect(in *stream.Schema, pred func(*stream.Tuple) bool, emit Emitter) (*Select, error) {
	if in == nil || pred == nil || emit == nil {
		return nil, fmt.Errorf("op: select: schema, predicate and emitter are all required")
	}
	return &Select{name: "select", in: in, pred: pred, emit: emit}, nil
}

// Name implements Operator.
func (s *Select) Name() string { return s.name }

// NumPorts implements Operator.
func (s *Select) NumPorts() int { return 1 }

// OutSchema implements Operator.
func (s *Select) OutSchema() *stream.Schema { return s.in }

// Process implements Operator.
func (s *Select) Process(port int, it stream.Item, now stream.Time) error {
	if err := ValidatePort(s.name, port, 1); err != nil {
		return err
	}
	if s.finished {
		return fmt.Errorf("op: select: Process after Finish")
	}
	if now > s.now {
		s.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		if s.pred(it.Tuple) {
			return s.emit.Emit(it)
		}
		return nil
	case stream.KindPunct:
		return s.emit.Emit(it)
	case stream.KindEOS:
		if s.eos {
			return fmt.Errorf("op: select: duplicate EOS")
		}
		s.eos = true
		return nil
	default:
		return fmt.Errorf("op: select: unknown item kind %v", it.Kind)
	}
}

// OnIdle implements Operator.
func (s *Select) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements Operator.
func (s *Select) Finish(now stream.Time) error {
	if s.finished {
		return fmt.Errorf("op: select: double Finish")
	}
	if !s.eos {
		return fmt.Errorf("op: select: Finish before EOS")
	}
	if now > s.now {
		s.now = now
	}
	s.finished = true
	return s.emit.Emit(stream.EOSItem(s.now))
}

// Project keeps a subset of attributes. A punctuation is propagated
// (projected onto the kept attributes) only when every dropped
// attribute's pattern is wildcard — otherwise the projected punctuation
// would over-promise and is dropped instead (the projection rule of
// Tucker et al.).
type Project struct {
	name     string
	in, out  *stream.Schema
	keep     []int
	emit     Emitter
	eos      bool
	finished bool
	now      stream.Time
	dropped  int64 // punctuations that could not be projected
}

var _ Operator = (*Project)(nil)

// NewProject builds a projection keeping the attributes at the given
// positions, in the given order.
func NewProject(in *stream.Schema, keep []int, emit Emitter) (*Project, error) {
	if in == nil || emit == nil {
		return nil, fmt.Errorf("op: project: schema and emitter required")
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("op: project: must keep at least one attribute")
	}
	fields := make([]stream.Field, len(keep))
	seen := map[int]bool{}
	for i, k := range keep {
		if k < 0 || k >= in.Width() {
			return nil, fmt.Errorf("op: project: attribute %d out of range", k)
		}
		if seen[k] {
			return nil, fmt.Errorf("op: project: attribute %d kept twice", k)
		}
		seen[k] = true
		fields[i] = in.FieldAt(k)
	}
	out, err := stream.NewSchema("project", fields...)
	if err != nil {
		return nil, err
	}
	ks := make([]int, len(keep))
	copy(ks, keep)
	return &Project{name: "project", in: in, out: out, keep: ks, emit: emit}, nil
}

// Name implements Operator.
func (p *Project) Name() string { return p.name }

// NumPorts implements Operator.
func (p *Project) NumPorts() int { return 1 }

// OutSchema implements Operator.
func (p *Project) OutSchema() *stream.Schema { return p.out }

// DroppedPuncts returns how many punctuations could not be projected.
func (p *Project) DroppedPuncts() int64 { return p.dropped }

// Process implements Operator.
func (p *Project) Process(port int, it stream.Item, now stream.Time) error {
	if err := ValidatePort(p.name, port, 1); err != nil {
		return err
	}
	if p.finished {
		return fmt.Errorf("op: project: Process after Finish")
	}
	if now > p.now {
		p.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		t := it.Tuple
		if len(t.Values) != p.in.Width() {
			return fmt.Errorf("op: project: tuple width %d", len(t.Values))
		}
		vs := make([]value.Value, 0, len(p.keep))
		for _, k := range p.keep {
			vs = append(vs, t.Values[k])
		}
		nt := &stream.Tuple{Values: vs, Ts: t.Ts}
		return p.emit.Emit(stream.TupleItem(nt))
	case stream.KindPunct:
		pt := it.Punct
		if pt.Width() != p.in.Width() {
			return fmt.Errorf("op: project: punctuation width %d", pt.Width())
		}
		kept := map[int]bool{}
		for _, k := range p.keep {
			kept[k] = true
		}
		for i := 0; i < pt.Width(); i++ {
			if !kept[i] && pt.PatternAt(i).Kind() != punct.Wildcard {
				p.dropped++
				return nil
			}
		}
		pats := make([]punct.Pattern, len(p.keep))
		for i, k := range p.keep {
			pats[i] = pt.PatternAt(k)
		}
		np, err := punct.New(pats...)
		if err != nil {
			return err
		}
		return p.emit.Emit(stream.PunctItem(np, it.Ts))
	case stream.KindEOS:
		if p.eos {
			return fmt.Errorf("op: project: duplicate EOS")
		}
		p.eos = true
		return nil
	default:
		return fmt.Errorf("op: project: unknown item kind %v", it.Kind)
	}
}

// OnIdle implements Operator.
func (p *Project) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements Operator.
func (p *Project) Finish(now stream.Time) error {
	if p.finished {
		return fmt.Errorf("op: project: double Finish")
	}
	if !p.eos {
		return fmt.Errorf("op: project: Finish before EOS")
	}
	if now > p.now {
		p.now = now
	}
	p.finished = true
	return p.emit.Emit(stream.EOSItem(p.now))
}

// Union merges two streams with identical schemas. A punctuation can
// only be released once BOTH inputs have promised it: on each arrival of
// a punctuation on one input, the conjunction with every punctuation
// from the other input that yields a non-empty punctuation is emitted.
type Union struct {
	name     string
	in       *stream.Schema
	emit     Emitter
	sets     [2]*punct.Set
	eos      [2]bool
	finished bool
	now      stream.Time
}

var _ Operator = (*Union)(nil)

// NewUnion builds a union of two streams sharing schema in.
func NewUnion(in *stream.Schema, emit Emitter) (*Union, error) {
	if in == nil || emit == nil {
		return nil, fmt.Errorf("op: union: schema and emitter required")
	}
	return &Union{
		name: "union", in: in, emit: emit,
		sets: [2]*punct.Set{punct.NewSet(), punct.NewSet()},
	}, nil
}

// Name implements Operator.
func (u *Union) Name() string { return u.name }

// NumPorts implements Operator.
func (u *Union) NumPorts() int { return 2 }

// OutSchema implements Operator.
func (u *Union) OutSchema() *stream.Schema { return u.in }

// Process implements Operator.
func (u *Union) Process(port int, it stream.Item, now stream.Time) error {
	if err := ValidatePort(u.name, port, 2); err != nil {
		return err
	}
	if u.finished {
		return fmt.Errorf("op: union: Process after Finish")
	}
	if now > u.now {
		u.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		return u.emit.Emit(it)
	case stream.KindPunct:
		if it.Punct.Width() != u.in.Width() {
			return fmt.Errorf("op: union: punctuation width %d", it.Punct.Width())
		}
		if _, err := u.sets[port].Add(it.Punct); err != nil {
			return err
		}
		// If the other input already ended, its punctuation promise is
		// total: the new punctuation passes as-is.
		if u.eos[1-port] {
			return u.emit.Emit(it)
		}
		for _, e := range u.sets[1-port].Entries() {
			both, err := it.Punct.And(e.P)
			if err != nil {
				return err
			}
			if both.IsEmpty() {
				continue
			}
			if err := u.emit.Emit(stream.PunctItem(both, it.Ts)); err != nil {
				return err
			}
		}
		return nil
	case stream.KindEOS:
		if u.eos[port] {
			return fmt.Errorf("op: union: duplicate EOS on port %d", port)
		}
		u.eos[port] = true
		// The ended side now promises everything: the other side's
		// pending punctuations become releasable as-is.
		for _, e := range u.sets[1-port].Entries() {
			if err := u.emit.Emit(stream.PunctItem(e.P, it.Ts)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("op: union: unknown item kind %v", it.Kind)
	}
}

// OnIdle implements Operator.
func (u *Union) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements Operator.
func (u *Union) Finish(now stream.Time) error {
	if u.finished {
		return fmt.Errorf("op: union: double Finish")
	}
	if !u.eos[0] || !u.eos[1] {
		return fmt.Errorf("op: union: Finish before EOS on both ports")
	}
	if now > u.now {
		u.now = now
	}
	u.finished = true
	return u.emit.Emit(stream.EOSItem(u.now))
}
