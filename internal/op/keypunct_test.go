package op

import (
	"strings"
	"testing"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

func TestKeyPunctuatorValidation(t *testing.T) {
	sink := &Collector{}
	if _, err := NewKeyPunctuator(nil, 0, sink); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := NewKeyPunctuator(inSchema, 0, nil); err == nil {
		t.Error("nil emitter should error")
	}
	if _, err := NewKeyPunctuator(inSchema, 5, sink); err == nil {
		t.Error("attr range should error")
	}
}

func TestKeyPunctuatorDerivesPunctuations(t *testing.T) {
	sink := &Collector{}
	k, err := NewKeyPunctuator(inSchema, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	k.Process(0, tup(t, 1, 10, 1), 1)
	k.Process(0, tup(t, 2, 20, 2), 2)
	if got := len(sink.Tuples()); got != 2 {
		t.Fatalf("tuples forwarded = %d", got)
	}
	ps := sink.Puncts()
	if len(ps) != 2 || k.Derived() != 2 {
		t.Fatalf("derived punctuations = %d", len(ps))
	}
	// Each punctuation is a constant on the key attribute, wildcard
	// elsewhere, timestamped with the tuple's timestamp.
	p0 := ps[0]
	if p0.Punct.PatternAt(0).Kind() != punct.Constant ||
		!p0.Punct.PatternAt(0).ConstVal().Equal(value.Int(1)) {
		t.Errorf("punctuation 0 = %v", p0.Punct)
	}
	if p0.Punct.PatternAt(1).Kind() != punct.Wildcard {
		t.Errorf("non-key pattern should be wildcard: %v", p0.Punct)
	}
	if p0.Ts != 1 {
		t.Errorf("punctuation ts = %d", p0.Ts)
	}
	// Ordering: tuple before its punctuation.
	if sink.Items[0].Kind != stream.KindTuple || sink.Items[1].Kind != stream.KindPunct {
		t.Error("punctuation must follow its tuple")
	}
}

func TestKeyPunctuatorDetectsDuplicates(t *testing.T) {
	sink := &Collector{}
	k, _ := NewKeyPunctuator(inSchema, 0, sink)
	k.Process(0, tup(t, 7, 1, 1), 1)
	err := k.Process(0, tup(t, 7, 2, 2), 2)
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Errorf("duplicate not detected: %v", err)
	}
}

func TestKeyPunctuatorPassesForeignPunctuations(t *testing.T) {
	sink := &Collector{}
	k, _ := NewKeyPunctuator(inSchema, 0, sink)
	k.Process(0, keyPunct(9, 1), 1)
	if got := len(sink.Puncts()); got != 1 {
		t.Errorf("foreign punctuation not forwarded: %d", got)
	}
	if k.Derived() != 0 {
		t.Error("foreign punctuation counted as derived")
	}
}

func TestKeyPunctuatorProtocol(t *testing.T) {
	sink := &Collector{}
	k, _ := NewKeyPunctuator(inSchema, 0, sink)
	if err := k.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	k.Process(0, stream.EOSItem(1), 1)
	if err := k.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("dup EOS should error")
	}
	if err := k.Finish(3); err != nil {
		t.Fatal(err)
	}
	if err := k.Finish(4); err == nil {
		t.Error("double Finish should error")
	}
	if sink.Items[len(sink.Items)-1].Kind != stream.KindEOS {
		t.Error("EOS not forwarded")
	}
	if did, _ := k.OnIdle(5); did {
		t.Error("no idle work expected")
	}
	if k.Name() == "" || k.NumPorts() != 1 || k.OutSchema() != inSchema {
		t.Error("metadata wrong")
	}
}

// End-to-end: KeyPunctuator in front of a group-by lets a blocking
// aggregate over a keyed stream emit every row early.
func TestKeyPunctuatorUnblocksDownstream(t *testing.T) {
	grouped := &Collector{}
	gb, err := NewGroupBy(inSchema, 0, 1, AggSum, grouped)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := NewKeyPunctuator(inSchema, 0, EmitterFunc(func(it stream.Item) error {
		if it.Kind == stream.KindEOS {
			if err := gb.Process(0, it, it.Ts); err != nil {
				return err
			}
			return gb.Finish(it.Ts)
		}
		return gb.Process(0, it, it.Ts)
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := kp.Process(0, tup(t, i, float64(i), stream.Time(i+1)), stream.Time(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Every group closed immediately: all rows emitted before EOS.
	if got := gb.EarlyEmitted(); got != 5 {
		t.Errorf("early emitted = %d, want 5", got)
	}
	kp.Process(0, stream.EOSItem(100), 100)
	if err := kp.Finish(101); err != nil {
		t.Fatal(err)
	}
	if got := len(grouped.Tuples()); got != 5 {
		t.Errorf("group rows = %d", got)
	}
}
