package op

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// AggKind selects a group-by aggregate.
type AggKind uint8

// The supported aggregates. Sum and Avg require a numeric aggregate
// attribute; Count ignores it.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// String returns the aggregate's SQL-ish name.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// GroupBy is a blocking group-by-and-aggregate operator that exploits
// punctuations for early output (the paper's Fig. 1 query plan: group-by
// over the join's output, producing the bid sum per item as soon as the
// join propagates the item's punctuation). Without punctuations it emits
// everything at end-of-stream.
type GroupBy struct {
	name      string
	in        *stream.Schema
	out       *stream.Schema
	groupAttr int
	aggAttr   int
	agg       AggKind
	emit      Emitter

	groups map[value.Value]*aggState
	order  []value.Value // group creation order, for deterministic flush
	closed *punct.Set    // punctuations already honoured (integrity check)

	eos      bool
	finished bool
	now      stream.Time
	early    int64 // groups emitted before EOS thanks to punctuations

	pullAt int    // open-group threshold that triggers pull requests
	pull   func() // upstream propagation request (§3.5 pull mode)
}

type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	minV  value.Value
	maxV  value.Value
}

var _ Operator = (*GroupBy)(nil)

// NewGroupBy builds a group-by over in, grouping on attribute groupAttr
// and aggregating agg over attribute aggAttr. The output schema is
// (group, <agg name>).
func NewGroupBy(in *stream.Schema, groupAttr, aggAttr int, agg AggKind, emit Emitter) (*GroupBy, error) {
	if in == nil {
		return nil, fmt.Errorf("op: group-by: nil input schema")
	}
	if emit == nil {
		return nil, fmt.Errorf("op: group-by: nil emitter")
	}
	if groupAttr < 0 || groupAttr >= in.Width() {
		return nil, fmt.Errorf("op: group-by: group attribute %d out of range", groupAttr)
	}
	if agg != AggCount {
		if aggAttr < 0 || aggAttr >= in.Width() {
			return nil, fmt.Errorf("op: group-by: aggregate attribute %d out of range", aggAttr)
		}
	}
	aggKind := value.KindInt
	switch agg {
	case AggSum, AggMin, AggMax:
		aggKind = in.FieldAt(aggAttr).Kind
		if agg == AggSum && aggKind != value.KindInt && aggKind != value.KindFloat {
			return nil, fmt.Errorf("op: group-by: sum needs numeric attribute, got %s", aggKind)
		}
	case AggAvg:
		k := in.FieldAt(aggAttr).Kind
		if k != value.KindInt && k != value.KindFloat {
			return nil, fmt.Errorf("op: group-by: avg needs numeric attribute, got %s", k)
		}
		aggKind = value.KindFloat
	}
	out, err := stream.NewSchema("groupby",
		stream.Field{Name: in.FieldAt(groupAttr).Name, Kind: in.FieldAt(groupAttr).Kind},
		stream.Field{Name: agg.String(), Kind: aggKind},
	)
	if err != nil {
		return nil, err
	}
	return &GroupBy{
		name:      fmt.Sprintf("groupby(%s,%s)", in.FieldAt(groupAttr).Name, agg),
		in:        in,
		out:       out,
		groupAttr: groupAttr,
		aggAttr:   aggAttr,
		agg:       agg,
		emit:      emit,
		groups:    make(map[value.Value]*aggState),
		closed:    punct.NewKeyedSet(groupAttr, false),
	}, nil
}

// Name implements Operator.
func (g *GroupBy) Name() string { return g.name }

// NumPorts implements Operator.
func (g *GroupBy) NumPorts() int { return 1 }

// OutSchema implements Operator.
func (g *GroupBy) OutSchema() *stream.Schema { return g.out }

// Groups returns the number of open (unemitted) groups — the operator's
// state size.
func (g *GroupBy) Groups() int { return len(g.groups) }

// EarlyEmitted returns how many groups punctuations allowed out before
// end-of-stream.
func (g *GroupBy) EarlyEmitted() int64 { return g.early }

// RequestPunctuations registers the paper's pull propagation mode
// (§3.5): whenever the number of open groups reaches threshold, f is
// invoked to ask the upstream operator for propagable punctuations
// (typically an exec.PullHandle.Request). f must be safe to call from
// the goroutine driving this operator.
func (g *GroupBy) RequestPunctuations(threshold int, f func()) {
	g.pullAt = threshold
	g.pull = f
}

// Process implements Operator.
func (g *GroupBy) Process(port int, it stream.Item, now stream.Time) error {
	if err := ValidatePort(g.name, port, 1); err != nil {
		return err
	}
	if g.finished {
		return fmt.Errorf("op: %s: Process after Finish", g.name)
	}
	if now > g.now {
		g.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		return g.processTuple(it.Tuple)
	case stream.KindPunct:
		return g.processPunct(it.Punct, it.Ts)
	case stream.KindEOS:
		if g.eos {
			return fmt.Errorf("op: %s: duplicate EOS", g.name)
		}
		g.eos = true
		return nil
	default:
		return fmt.Errorf("op: %s: unknown item kind %v", g.name, it.Kind)
	}
}

func (g *GroupBy) processTuple(t *stream.Tuple) error {
	if len(t.Values) != g.in.Width() {
		return fmt.Errorf("op: %s: tuple width %d, schema width %d", g.name, len(t.Values), g.in.Width())
	}
	key := t.Values[g.groupAttr]
	if g.closed.SetMatchAttr(g.groupAttr, key) {
		return fmt.Errorf("op: %s: tuple for group %s arrived after its punctuation", g.name, key)
	}
	st, ok := g.groups[key]
	if !ok {
		st = &aggState{}
		g.groups[key] = st
		g.order = append(g.order, key)
		if g.pull != nil && g.pullAt > 0 && len(g.groups) >= g.pullAt {
			g.pull()
		}
	}
	st.count++
	if g.agg == AggCount {
		return nil
	}
	v := t.Values[g.aggAttr]
	switch g.agg {
	case AggSum, AggAvg:
		if v.Kind() == value.KindInt {
			st.sumI += v.IntVal()
			st.sumF += float64(v.IntVal())
		} else {
			st.sumF += v.FloatVal()
		}
	case AggMin:
		if !st.minV.IsValid() || v.Less(st.minV) {
			st.minV = v
		}
	case AggMax:
		if !st.maxV.IsValid() || st.maxV.Less(v) {
			st.maxV = v
		}
	}
	return nil
}

// processPunct emits every group the punctuation closes, releases a
// matching punctuation downstream, and remembers the pattern so late
// tuples are detected. Only the group attribute's pattern matters; the
// other patterns must be wildcard for the punctuation to close whole
// groups (otherwise it only rules out part of a group and is dropped).
func (g *GroupBy) processPunct(p punct.Punctuation, ts stream.Time) error {
	if p.Width() != g.in.Width() {
		return fmt.Errorf("op: %s: punctuation width %d, schema width %d", g.name, p.Width(), g.in.Width())
	}
	for i := 0; i < p.Width(); i++ {
		if i != g.groupAttr && p.PatternAt(i).Kind() != punct.Wildcard {
			return nil // partial information: cannot close any group
		}
	}
	pat := p.PatternAt(g.groupAttr)
	if pat.Kind() == punct.Wildcard {
		// The whole stream is closed; equivalent to EOS for grouping.
		if err := g.flushAll(ts, true); err != nil {
			return err
		}
	} else {
		kept := g.order[:0]
		for _, key := range g.order {
			if !pat.Matches(key) {
				kept = append(kept, key)
				continue
			}
			if err := g.emitGroup(key, ts); err != nil {
				return err
			}
			g.early++
		}
		g.order = kept
	}
	if _, err := g.closed.Add(p); err != nil {
		return err
	}
	// Propagate: the group's result row is final, so the same pattern
	// holds over the output schema (group attribute, wildcard aggregate).
	outP, err := punct.New(pat, punct.Star())
	if err != nil {
		return err
	}
	return g.emit.Emit(stream.PunctItem(outP, ts))
}

func (g *GroupBy) emitGroup(key value.Value, ts stream.Time) error {
	st := g.groups[key]
	delete(g.groups, key)
	var res value.Value
	switch g.agg {
	case AggCount:
		res = value.Int(st.count)
	case AggSum:
		if g.out.FieldAt(1).Kind == value.KindInt {
			res = value.Int(st.sumI)
		} else {
			res = value.Float(st.sumF)
		}
	case AggMin:
		res = st.minV
	case AggMax:
		res = st.maxV
	case AggAvg:
		res = value.Float(st.sumF / float64(st.count))
	}
	t, err := stream.NewTuple(g.out, ts, key, res)
	if err != nil {
		return err
	}
	return g.emit.Emit(stream.TupleItem(t))
}

func (g *GroupBy) flushAll(ts stream.Time, early bool) error {
	for _, key := range g.order {
		if _, ok := g.groups[key]; !ok {
			continue
		}
		if err := g.emitGroup(key, ts); err != nil {
			return err
		}
		if early {
			g.early++
		}
	}
	g.order = nil
	return nil
}

// OnIdle implements Operator; group-by has no background work.
func (g *GroupBy) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements Operator: flush all remaining groups and forward EOS.
func (g *GroupBy) Finish(now stream.Time) error {
	if g.finished {
		return fmt.Errorf("op: %s: double Finish", g.name)
	}
	if !g.eos {
		return fmt.Errorf("op: %s: Finish before EOS", g.name)
	}
	if now > g.now {
		g.now = now
	}
	if err := g.flushAll(g.now, false); err != nil {
		return err
	}
	g.finished = true
	return g.emit.Emit(stream.EOSItem(g.now))
}
