// Package op defines the query-operator abstraction the mini engine runs
// (the paper hosts PJoin inside the Raindrop system; this package plus
// internal/exec is our minimal equivalent), together with the
// punctuation-aware relational operators used downstream of the join:
// select, project, group-by (with early emission on punctuations), and
// union.
//
// Operators are single-threaded state machines driven by Process calls;
// concurrency is the executor's business. This makes the same operator
// code runnable under the live channel executor and under the
// deterministic cost-model simulator.
package op

import (
	"fmt"

	"pjoin/internal/stream"
)

// Emitter receives an operator's output items.
type Emitter interface {
	Emit(stream.Item) error
}

// EmitterFunc adapts a function to Emitter.
type EmitterFunc func(stream.Item) error

// Emit implements Emitter.
func (f EmitterFunc) Emit(it stream.Item) error { return f(it) }

// Collector is an Emitter that stores everything it receives; the test
// suites and examples use it as a sink.
type Collector struct {
	Items []stream.Item
}

// Emit implements Emitter.
func (c *Collector) Emit(it stream.Item) error {
	c.Items = append(c.Items, it)
	return nil
}

// Grow pre-extends the collector's capacity for n more items, so a
// batched producer pays one growth instead of per-append doublings.
// Growth is geometric (at least double), never exact-fit: an exact-fit
// grow would leave zero spare after the batch lands and re-copy the
// whole collector on every subsequent batch — quadratic in total items.
func (c *Collector) Grow(n int) {
	if n <= 0 || cap(c.Items)-len(c.Items) >= n {
		return
	}
	newCap := 2 * cap(c.Items)
	if newCap < len(c.Items)+n {
		newCap = len(c.Items) + n
	}
	grown := make([]stream.Item, len(c.Items), newCap)
	copy(grown, c.Items)
	c.Items = grown
}

// EmitBatch stores a whole batch with a single append.
func (c *Collector) EmitBatch(items []stream.Item) error {
	c.Items = append(c.Items, items...)
	return nil
}

// Tuples returns only the data tuples received.
func (c *Collector) Tuples() []*stream.Tuple {
	var out []*stream.Tuple
	for _, it := range c.Items {
		if it.Kind == stream.KindTuple {
			out = append(out, it.Tuple)
		}
	}
	return out
}

// Puncts returns only the punctuation items received.
func (c *Collector) Puncts() []stream.Item {
	var out []stream.Item
	for _, it := range c.Items {
		if it.Kind == stream.KindPunct {
			out = append(out, it)
		}
	}
	return out
}

// Reset discards collected items.
func (c *Collector) Reset() { c.Items = nil }

// Operator is a stream query operator with one or more input ports.
// Implementations must be safe for single-goroutine use; the executor
// serialises calls.
//
// # Driver contract
//
// Every driver (the live executor, the simulator, the differential
// oracle's replay driver) holds every operator to the same lifecycle,
// and every operator — stateless relational ops and all four joins
// (shj, core.PJoin, xjoin, parallel.ShardedPJoin) — enforces it with
// errors rather than undefined behaviour:
//
//  1. Process delivers items with non-decreasing now across ALL ports;
//     an operator may clamp its internal clock to max(now seen).
//  2. EOS arrives exactly once per port (duplicate EOS is an error) and
//     is the last item on its port.
//  3. Finish is called exactly once, only after every port saw EOS
//     (early or double Finish is an error), with now at least the last
//     Process time. Finish flushes remaining state and emits exactly
//     one downstream EOS — operators never emit EOS from Process.
//  4. Process and OnIdle after Finish are errors.
//  5. OnIdle may be called at any point before Finish with the same
//     non-decreasing now domain as Process (the executor clamps idle
//     pulses so an operator's clock never runs backwards).
//
// Operators differ in what Finish means — shj ignores punctuations and
// just emits EOS; PJoin runs a final purge/disk pass and propagates
// what became propagable; xjoin drains its cleanup queue — but the
// observable lifecycle above is identical, which is what lets the
// differential oracle drive every configuration through one driver and
// compare outcomes. internal/oracle's contract test pins this.
type Operator interface {
	// Name identifies the operator instance in plans and errors.
	Name() string
	// NumPorts returns how many input ports the operator has.
	NumPorts() int
	// OutSchema describes the output tuples.
	OutSchema() *stream.Schema
	// Process consumes one input item on the given port at time now.
	// EOS items must be delivered exactly once per port; after every
	// port saw EOS the driver calls Finish.
	Process(port int, it stream.Item, now stream.Time) error
	// OnIdle is called when inputs are stalled, letting the operator do
	// background work (e.g. a reactive disk join). It reports whether it
	// did anything.
	OnIdle(now stream.Time) (bool, error)
	// Finish flushes remaining state after all ports reached EOS. The
	// operator must emit its own EOS downstream exactly once.
	Finish(now stream.Time) error
}

// BatchProcessor is optionally implemented by operators that can
// consume a whole batch of items per driver wakeup. ProcessBatch(port,
// items, now) must be observably identical to calling Process(port, it,
// it.Ts) for each item in order: same outputs, same errors, same
// metrics. Batches may mix kinds (a flush triggered by a punctuation or
// EOS carries it as the batch's last item), now is the timestamp of the
// last item (so the non-decreasing clock rule applies to whole
// batches), and the items slice is only valid for the duration of the
// call — drivers recycle batch buffers.
//
// Drivers probe for the interface and fall back to per-item Process
// (see ProcessAll), so implementing it is purely a performance
// statement: amortize per-call overhead, batch probe work.
type BatchProcessor interface {
	ProcessBatch(port int, items []stream.Item, now stream.Time) error
}

// ProcessAll delivers a batch to o: through ProcessBatch when o
// implements BatchProcessor, otherwise item by item. It is the generic
// shim batching drivers use so plain operators keep working unchanged.
func ProcessAll(o Operator, port int, items []stream.Item) error {
	if len(items) == 0 {
		return nil
	}
	if bp, ok := o.(BatchProcessor); ok {
		return bp.ProcessBatch(port, items, items[len(items)-1].Ts)
	}
	for _, it := range items {
		if err := o.Process(port, it, it.Ts); err != nil {
			return err
		}
	}
	return nil
}

// ValidatePort returns an error if port is outside [0, n).
func ValidatePort(name string, port, n int) error {
	if port < 0 || port >= n {
		return fmt.Errorf("op: %s: port %d out of range [0,%d)", name, port, n)
	}
	return nil
}
