// Package op defines the query-operator abstraction the mini engine runs
// (the paper hosts PJoin inside the Raindrop system; this package plus
// internal/exec is our minimal equivalent), together with the
// punctuation-aware relational operators used downstream of the join:
// select, project, group-by (with early emission on punctuations), and
// union.
//
// Operators are single-threaded state machines driven by Process calls;
// concurrency is the executor's business. This makes the same operator
// code runnable under the live channel executor and under the
// deterministic cost-model simulator.
package op

import (
	"fmt"

	"pjoin/internal/stream"
)

// Emitter receives an operator's output items.
type Emitter interface {
	Emit(stream.Item) error
}

// EmitterFunc adapts a function to Emitter.
type EmitterFunc func(stream.Item) error

// Emit implements Emitter.
func (f EmitterFunc) Emit(it stream.Item) error { return f(it) }

// Collector is an Emitter that stores everything it receives; the test
// suites and examples use it as a sink.
type Collector struct {
	Items []stream.Item
}

// Emit implements Emitter.
func (c *Collector) Emit(it stream.Item) error {
	c.Items = append(c.Items, it)
	return nil
}

// Tuples returns only the data tuples received.
func (c *Collector) Tuples() []*stream.Tuple {
	var out []*stream.Tuple
	for _, it := range c.Items {
		if it.Kind == stream.KindTuple {
			out = append(out, it.Tuple)
		}
	}
	return out
}

// Puncts returns only the punctuation items received.
func (c *Collector) Puncts() []stream.Item {
	var out []stream.Item
	for _, it := range c.Items {
		if it.Kind == stream.KindPunct {
			out = append(out, it)
		}
	}
	return out
}

// Reset discards collected items.
func (c *Collector) Reset() { c.Items = nil }

// Operator is a stream query operator with one or more input ports.
// Implementations must be safe for single-goroutine use; the executor
// serialises calls.
type Operator interface {
	// Name identifies the operator instance in plans and errors.
	Name() string
	// NumPorts returns how many input ports the operator has.
	NumPorts() int
	// OutSchema describes the output tuples.
	OutSchema() *stream.Schema
	// Process consumes one input item on the given port at time now.
	// EOS items must be delivered exactly once per port; after every
	// port saw EOS the driver calls Finish.
	Process(port int, it stream.Item, now stream.Time) error
	// OnIdle is called when inputs are stalled, letting the operator do
	// background work (e.g. a reactive disk join). It reports whether it
	// did anything.
	OnIdle(now stream.Time) (bool, error)
	// Finish flushes remaining state after all ports reached EOS. The
	// operator must emit its own EOS downstream exactly once.
	Finish(now stream.Time) error
}

// ValidatePort returns an error if port is outside [0, n).
func ValidatePort(name string, port, n int) error {
	if port < 0 || port >= n {
		return fmt.Errorf("op: %s: port %d out of range [0,%d)", name, port, n)
	}
	return nil
}
