package op

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// KeyPunctuator derives punctuations from a declared key constraint
// (paper §1.1: "since each tuple in the Open stream has a unique item_id
// value, the query system can then insert a punctuation after each tuple
// in this stream signaling no more tuple containing this specific
// item_id value will occur in the future"). It forwards every input item
// unchanged and inserts, after each tuple, a constant punctuation on the
// key attribute.
//
// The operator also enforces the constraint it exploits: a duplicate key
// value is an error (the derived punctuation would otherwise have been a
// lie).
type KeyPunctuator struct {
	in       *stream.Schema
	keyAttr  int
	emit     Emitter
	seen     map[value.Value]bool
	eos      bool
	finished bool
	now      stream.Time
	derived  int64
}

var _ Operator = (*KeyPunctuator)(nil)

// NewKeyPunctuator builds the operator for streams whose keyAttr
// attribute is a key (unique across the whole stream).
func NewKeyPunctuator(in *stream.Schema, keyAttr int, emit Emitter) (*KeyPunctuator, error) {
	if in == nil || emit == nil {
		return nil, fmt.Errorf("op: key-punctuator: schema and emitter required")
	}
	if keyAttr < 0 || keyAttr >= in.Width() {
		return nil, fmt.Errorf("op: key-punctuator: attribute %d out of range for %s", keyAttr, in)
	}
	return &KeyPunctuator{
		in: in, keyAttr: keyAttr, emit: emit,
		seen: make(map[value.Value]bool),
	}, nil
}

// Name implements Operator.
func (k *KeyPunctuator) Name() string { return "key-punctuator" }

// NumPorts implements Operator.
func (k *KeyPunctuator) NumPorts() int { return 1 }

// OutSchema implements Operator.
func (k *KeyPunctuator) OutSchema() *stream.Schema { return k.in }

// Derived returns the number of punctuations inserted so far.
func (k *KeyPunctuator) Derived() int64 { return k.derived }

// Process implements Operator.
func (k *KeyPunctuator) Process(port int, it stream.Item, now stream.Time) error {
	if err := ValidatePort(k.Name(), port, 1); err != nil {
		return err
	}
	if k.finished {
		return fmt.Errorf("op: key-punctuator: Process after Finish")
	}
	if now > k.now {
		k.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		t := it.Tuple
		if len(t.Values) != k.in.Width() {
			return fmt.Errorf("op: key-punctuator: tuple width %d", len(t.Values))
		}
		key := t.Values[k.keyAttr]
		if k.seen[key] {
			return fmt.Errorf("op: key-punctuator: duplicate key %s violates the declared constraint", key)
		}
		k.seen[key] = true
		if err := k.emit.Emit(it); err != nil {
			return err
		}
		p, err := punct.KeyOnly(k.in.Width(), k.keyAttr, punct.Const(key))
		if err != nil {
			return err
		}
		k.derived++
		return k.emit.Emit(stream.PunctItem(p, it.Ts))
	case stream.KindPunct:
		// Foreign punctuations pass through untouched.
		return k.emit.Emit(it)
	case stream.KindEOS:
		if k.eos {
			return fmt.Errorf("op: key-punctuator: duplicate EOS")
		}
		k.eos = true
		return nil
	default:
		return fmt.Errorf("op: key-punctuator: unknown item kind %v", it.Kind)
	}
}

// OnIdle implements Operator.
func (k *KeyPunctuator) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements Operator.
func (k *KeyPunctuator) Finish(now stream.Time) error {
	if k.finished {
		return fmt.Errorf("op: key-punctuator: double Finish")
	}
	if !k.eos {
		return fmt.Errorf("op: key-punctuator: Finish before EOS")
	}
	if now > k.now {
		k.now = now
	}
	k.finished = true
	return k.emit.Emit(stream.EOSItem(k.now))
}
