package op

import (
	"errors"
	"testing"

	"pjoin/internal/stream"
	"pjoin/internal/value"
)

var batchSchema = stream.MustSchema("bt",
	stream.Field{Name: "k", Kind: value.KindInt},
)

func batchItems(n int) []stream.Item {
	out := make([]stream.Item, n)
	for i := range out {
		out[i] = stream.TupleItem(stream.MustTuple(batchSchema,
			stream.Time(i+1), value.Int(int64(i))))
	}
	return out
}

// callLog is an Operator that records how it was driven; the batched
// variant also implements BatchProcessor.
type callLog struct {
	perItem []stream.Time // now of each Process call
	batches []int         // len of each ProcessBatch call
	nows    []stream.Time // now of each ProcessBatch call
	fail    error
}

func (c *callLog) Name() string                     { return "call-log" }
func (c *callLog) NumPorts() int                    { return 1 }
func (c *callLog) OutSchema() *stream.Schema        { return batchSchema }
func (c *callLog) OnIdle(stream.Time) (bool, error) { return false, nil }
func (c *callLog) Finish(stream.Time) error         { return nil }

func (c *callLog) Process(port int, it stream.Item, now stream.Time) error {
	c.perItem = append(c.perItem, now)
	return c.fail
}

type batchLog struct{ callLog }

func (c *batchLog) ProcessBatch(port int, items []stream.Item, now stream.Time) error {
	c.batches = append(c.batches, len(items))
	c.nows = append(c.nows, now)
	return c.fail
}

func TestProcessAllDispatchesToBatchProcessor(t *testing.T) {
	o := &batchLog{}
	its := batchItems(5)
	if err := ProcessAll(o, 0, its); err != nil {
		t.Fatal(err)
	}
	if len(o.batches) != 1 || o.batches[0] != 5 {
		t.Fatalf("batches = %v, want one batch of 5", o.batches)
	}
	if len(o.perItem) != 0 {
		t.Fatalf("per-item Process called %d times on a BatchProcessor", len(o.perItem))
	}
	// now is the last item's timestamp: the whole batch obeys the
	// non-decreasing clock rule as a unit.
	if o.nows[0] != its[len(its)-1].Ts {
		t.Errorf("batch now = %d, want last item ts %d", o.nows[0], its[len(its)-1].Ts)
	}
}

func TestProcessAllFallsBackPerItem(t *testing.T) {
	o := &callLog{}
	its := batchItems(4)
	if err := ProcessAll(o, 0, its); err != nil {
		t.Fatal(err)
	}
	if len(o.perItem) != 4 {
		t.Fatalf("Process called %d times, want 4", len(o.perItem))
	}
	for i, now := range o.perItem {
		if now != its[i].Ts {
			t.Errorf("call %d: now = %d, want item ts %d", i, now, its[i].Ts)
		}
	}
}

func TestProcessAllEmptyAndErrors(t *testing.T) {
	if err := ProcessAll(&batchLog{}, 0, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := ProcessAll(&batchLog{callLog{fail: boom}}, 0, batchItems(2)); !errors.Is(err, boom) {
		t.Errorf("batched err = %v", err)
	}
	o := &callLog{fail: boom}
	if err := ProcessAll(o, 0, batchItems(3)); !errors.Is(err, boom) {
		t.Errorf("per-item err = %v", err)
	}
	if len(o.perItem) != 1 {
		t.Errorf("per-item fallback kept going after an error: %d calls", len(o.perItem))
	}
}

func TestCollectorGrowAndEmitBatch(t *testing.T) {
	var c Collector
	c.Grow(4)
	if len(c.Items) != 0 || cap(c.Items) < 4 {
		t.Fatalf("after Grow(4): len=%d cap=%d", len(c.Items), cap(c.Items))
	}
	if err := c.EmitBatch(batchItems(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.EmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 3 {
		t.Fatalf("collected %d items, want 3", len(c.Items))
	}
	// Growth must be geometric: a long run of 1-item batches may copy
	// the backing array only O(log n) times, not once per batch. An
	// exact-fit Grow turns sink collection quadratic (this hung the
	// bench6 pipeline before the geometric rule).
	copies := 0
	for i := 0; i < 10_000; i++ {
		before := cap(c.Items)
		c.Grow(1)
		if cap(c.Items) != before {
			copies++
			if cap(c.Items) < 2*before {
				t.Fatalf("Grow(1) at cap %d grew to %d, want >= %d", before, cap(c.Items), 2*before)
			}
		}
		c.Items = append(c.Items, stream.Item{})
	}
	if copies > 20 {
		t.Errorf("10k 1-item grows copied the array %d times, want O(log n)", copies)
	}
}

// TestCollectorBatchEmitDoesNotAllocate pins the batched sink budget:
// once the collector has capacity, Grow + EmitBatch append without
// allocating — the per-batch cost the exec sink pays.
func TestCollectorBatchEmitDoesNotAllocate(t *testing.T) {
	var c Collector
	batch := batchItems(8)
	c.Grow(100 * len(batch))
	allocs := testing.AllocsPerRun(100, func() {
		c.Items = c.Items[:0]
		c.Grow(len(batch))
		if err := c.EmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batched emit allocates %.1f objects per batch, want 0", allocs)
	}
}
