package op

import (
	"errors"
	"testing"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

var inSchema = stream.MustSchema("Out1",
	stream.Field{Name: "item_id", Kind: value.KindInt},
	stream.Field{Name: "bid_increase", Kind: value.KindFloat},
)

func tup(t *testing.T, item int64, inc float64, ts stream.Time) stream.Item {
	t.Helper()
	return stream.TupleItem(stream.MustTuple(inSchema, ts, value.Int(item), value.Float(inc)))
}

func keyPunct(item int64, ts stream.Time) stream.Item {
	return stream.PunctItem(punct.MustKeyOnly(2, 0, punct.Const(value.Int(item))), ts)
}

func TestCollector(t *testing.T) {
	c := &Collector{}
	c.Emit(tup(t, 1, 1, 1))
	c.Emit(keyPunct(1, 2))
	c.Emit(stream.EOSItem(3))
	if len(c.Items) != 3 || len(c.Tuples()) != 1 || len(c.Puncts()) != 1 {
		t.Errorf("collector contents wrong: %v", c.Items)
	}
	c.Reset()
	if len(c.Items) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEmitterFunc(t *testing.T) {
	want := errors.New("sentinel")
	f := EmitterFunc(func(stream.Item) error { return want })
	if got := f.Emit(stream.Item{}); got != want {
		t.Errorf("EmitterFunc did not pass through: %v", got)
	}
}

func TestValidatePort(t *testing.T) {
	if err := ValidatePort("x", 0, 1); err != nil {
		t.Errorf("valid port rejected: %v", err)
	}
	if err := ValidatePort("x", 1, 1); err == nil {
		t.Error("port 1 of 1 should error")
	}
	if err := ValidatePort("x", -1, 1); err == nil {
		t.Error("negative port should error")
	}
}

// --- GroupBy ---

func TestGroupByValidation(t *testing.T) {
	sink := &Collector{}
	if _, err := NewGroupBy(nil, 0, 1, AggSum, sink); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := NewGroupBy(inSchema, 0, 1, AggSum, nil); err == nil {
		t.Error("nil emitter should error")
	}
	if _, err := NewGroupBy(inSchema, 7, 1, AggSum, sink); err == nil {
		t.Error("bad group attr should error")
	}
	if _, err := NewGroupBy(inSchema, 0, 7, AggSum, sink); err == nil {
		t.Error("bad agg attr should error")
	}
	strSchema := stream.MustSchema("s",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "v", Kind: value.KindString},
	)
	if _, err := NewGroupBy(strSchema, 0, 1, AggSum, sink); err == nil {
		t.Error("sum over strings should error")
	}
	if _, err := NewGroupBy(strSchema, 0, 1, AggAvg, sink); err == nil {
		t.Error("avg over strings should error")
	}
}

func TestGroupBySumWithEOSFlush(t *testing.T) {
	sink := &Collector{}
	g, err := NewGroupBy(inSchema, 0, 1, AggSum, sink)
	if err != nil {
		t.Fatal(err)
	}
	g.Process(0, tup(t, 1, 2.5, 1), 1)
	g.Process(0, tup(t, 1, 1.5, 2), 2)
	g.Process(0, tup(t, 2, 10, 3), 3)
	if len(sink.Tuples()) != 0 {
		t.Fatal("group-by emitted before punctuation or EOS")
	}
	g.Process(0, stream.EOSItem(4), 4)
	if err := g.Finish(5); err != nil {
		t.Fatal(err)
	}
	got := sink.Tuples()
	if len(got) != 2 {
		t.Fatalf("results = %d", len(got))
	}
	// Creation order: group 1 then group 2.
	if got[0].Values[1].FloatVal() != 4.0 || got[1].Values[1].FloatVal() != 10.0 {
		t.Errorf("sums wrong: %v %v", got[0], got[1])
	}
}

func TestGroupByEarlyEmissionOnPunctuation(t *testing.T) {
	sink := &Collector{}
	g, _ := NewGroupBy(inSchema, 0, 1, AggSum, sink)
	g.Process(0, tup(t, 1, 2, 1), 1)
	g.Process(0, tup(t, 1, 3, 2), 2)
	g.Process(0, tup(t, 2, 5, 3), 3)
	// Punctuation for item 1: its sum is final and must come out NOW.
	if err := g.Process(0, keyPunct(1, 4), 4); err != nil {
		t.Fatal(err)
	}
	tps := sink.Tuples()
	if len(tps) != 1 || tps[0].Values[1].FloatVal() != 5.0 {
		t.Fatalf("early emission wrong: %v", tps)
	}
	// The punctuation itself is propagated over the output schema.
	ps := sink.Puncts()
	if len(ps) != 1 || ps[0].Punct.Width() != 2 {
		t.Fatalf("propagated punctuation wrong: %v", ps)
	}
	if g.EarlyEmitted() != 1 || g.Groups() != 1 {
		t.Errorf("early=%d groups=%d", g.EarlyEmitted(), g.Groups())
	}
	// Late tuple for the closed group is a violation.
	if err := g.Process(0, tup(t, 1, 9, 5), 5); err == nil {
		t.Error("late tuple for closed group should error")
	}
}

func TestGroupByRangePunctuationClosesSeveral(t *testing.T) {
	sink := &Collector{}
	g, _ := NewGroupBy(inSchema, 0, 1, AggCount, sink)
	for i := int64(0); i < 6; i++ {
		g.Process(0, tup(t, i, 1, stream.Time(i+1)), stream.Time(i+1))
	}
	p := stream.PunctItem(punct.MustKeyOnly(2, 0, punct.MustRange(value.Int(0), value.Int(2))), 10)
	if err := g.Process(0, p, 10); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 3 {
		t.Errorf("range punctuation closed %d groups, want 3", got)
	}
	if g.Groups() != 3 {
		t.Errorf("open groups = %d", g.Groups())
	}
}

func TestGroupByNonWildcardOtherPatternIgnored(t *testing.T) {
	sink := &Collector{}
	g, _ := NewGroupBy(inSchema, 0, 1, AggSum, sink)
	g.Process(0, tup(t, 1, 2, 1), 1)
	// Punctuation constraining the aggregate attribute too: cannot close
	// a whole group; must be ignored.
	p := stream.PunctItem(punct.MustNew(punct.Const(value.Int(1)), punct.Const(value.Float(2))), 2)
	if err := g.Process(0, p, 2); err != nil {
		t.Fatal(err)
	}
	if len(sink.Tuples()) != 0 || len(sink.Puncts()) != 0 {
		t.Error("partial punctuation should not emit anything")
	}
}

func TestGroupByWildcardPunctuationFlushesAll(t *testing.T) {
	sink := &Collector{}
	g, _ := NewGroupBy(inSchema, 0, 1, AggSum, sink)
	g.Process(0, tup(t, 1, 1, 1), 1)
	g.Process(0, tup(t, 2, 2, 2), 2)
	p := stream.PunctItem(punct.MustNew(punct.Star(), punct.Star()), 3)
	if err := g.Process(0, p, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Tuples()); got != 2 {
		t.Errorf("wildcard punctuation flushed %d groups", got)
	}
}

func TestGroupByAggregates(t *testing.T) {
	cases := []struct {
		agg  AggKind
		want value.Value
	}{
		{AggCount, value.Int(3)},
		{AggMin, value.Float(1)},
		{AggMax, value.Float(4)},
		{AggAvg, value.Float(8.0 / 3.0)},
	}
	for _, c := range cases {
		sink := &Collector{}
		g, err := NewGroupBy(inSchema, 0, 1, c.agg, sink)
		if err != nil {
			t.Fatalf("%v: %v", c.agg, err)
		}
		for i, inc := range []float64{3, 1, 4} {
			g.Process(0, tup(t, 1, inc, stream.Time(i+1)), stream.Time(i+1))
		}
		g.Process(0, stream.EOSItem(9), 9)
		if err := g.Finish(10); err != nil {
			t.Fatal(err)
		}
		got := sink.Tuples()
		if len(got) != 1 || !got[0].Values[1].Equal(c.want) {
			t.Errorf("%v = %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestGroupByIntSumStaysInt(t *testing.T) {
	intSchema := stream.MustSchema("s",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "v", Kind: value.KindInt},
	)
	sink := &Collector{}
	g, _ := NewGroupBy(intSchema, 0, 1, AggSum, sink)
	g.Process(0, stream.TupleItem(stream.MustTuple(intSchema, 1, value.Int(1), value.Int(2))), 1)
	g.Process(0, stream.TupleItem(stream.MustTuple(intSchema, 2, value.Int(1), value.Int(3))), 2)
	g.Process(0, stream.EOSItem(3), 3)
	g.Finish(4)
	got := sink.Tuples()
	if len(got) != 1 || !got[0].Values[1].Equal(value.Int(5)) {
		t.Errorf("int sum = %v", got)
	}
}

func TestGroupByProtocol(t *testing.T) {
	sink := &Collector{}
	g, _ := NewGroupBy(inSchema, 0, 1, AggSum, sink)
	if err := g.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	if err := g.Process(1, tup(t, 1, 1, 1), 1); err == nil {
		t.Error("bad port should error")
	}
	g.Process(0, stream.EOSItem(1), 1)
	if err := g.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("dup EOS should error")
	}
	g.Finish(3)
	if err := g.Finish(4); err == nil {
		t.Error("double Finish should error")
	}
	if did, _ := g.OnIdle(5); did {
		t.Error("group-by has no idle work")
	}
}

// --- Select ---

func TestSelect(t *testing.T) {
	sink := &Collector{}
	s, err := NewSelect(inSchema, func(tp *stream.Tuple) bool {
		return tp.Values[1].FloatVal() >= 2
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	s.Process(0, tup(t, 1, 1, 1), 1)
	s.Process(0, tup(t, 1, 3, 2), 2)
	s.Process(0, keyPunct(1, 3), 3)
	if len(sink.Tuples()) != 1 {
		t.Errorf("select kept %d tuples", len(sink.Tuples()))
	}
	if len(sink.Puncts()) != 1 {
		t.Error("select must pass punctuations through")
	}
	s.Process(0, stream.EOSItem(4), 4)
	if err := s.Finish(5); err != nil {
		t.Fatal(err)
	}
	if sink.Items[len(sink.Items)-1].Kind != stream.KindEOS {
		t.Error("EOS not forwarded")
	}
	if s.OutSchema() != inSchema || s.NumPorts() != 1 {
		t.Error("metadata wrong")
	}
}

func TestSelectValidation(t *testing.T) {
	sink := &Collector{}
	if _, err := NewSelect(nil, func(*stream.Tuple) bool { return true }, sink); err == nil {
		t.Error("nil schema should error")
	}
	if _, err := NewSelect(inSchema, nil, sink); err == nil {
		t.Error("nil predicate should error")
	}
}

// --- Project ---

func TestProjectTuplesAndPunctuations(t *testing.T) {
	sink := &Collector{}
	p, err := NewProject(inSchema, []int{1}, sink)
	if err != nil {
		t.Fatal(err)
	}
	p.Process(0, tup(t, 1, 2.5, 1), 1)
	got := sink.Tuples()
	if len(got) != 1 || got[0].Width() != 1 || !got[0].Values[0].Equal(value.Float(2.5)) {
		t.Fatalf("projected tuple = %v", got)
	}
	// Punctuation constraining only the dropped attribute: must be dropped.
	p.Process(0, keyPunct(1, 2), 2)
	if len(sink.Puncts()) != 0 {
		t.Error("unprojectable punctuation leaked")
	}
	if p.DroppedPuncts() != 1 {
		t.Errorf("DroppedPuncts = %d", p.DroppedPuncts())
	}
	// Punctuation constraining only the kept attribute: projects cleanly.
	pi := stream.PunctItem(punct.MustNew(punct.Star(), punct.Const(value.Float(2.5))), 3)
	p.Process(0, pi, 3)
	ps := sink.Puncts()
	if len(ps) != 1 || ps[0].Punct.Width() != 1 {
		t.Fatalf("projected punctuation = %v", ps)
	}
	p.Process(0, stream.EOSItem(4), 4)
	if err := p.Finish(5); err != nil {
		t.Fatal(err)
	}
}

func TestProjectValidation(t *testing.T) {
	sink := &Collector{}
	if _, err := NewProject(inSchema, nil, sink); err == nil {
		t.Error("empty keep should error")
	}
	if _, err := NewProject(inSchema, []int{5}, sink); err == nil {
		t.Error("out of range keep should error")
	}
	if _, err := NewProject(inSchema, []int{0, 0}, sink); err == nil {
		t.Error("duplicate keep should error")
	}
	if _, err := NewProject(nil, []int{0}, sink); err == nil {
		t.Error("nil schema should error")
	}
}

// --- Union ---

func TestUnionTuplesPassThrough(t *testing.T) {
	sink := &Collector{}
	u, err := NewUnion(inSchema, sink)
	if err != nil {
		t.Fatal(err)
	}
	u.Process(0, tup(t, 1, 1, 1), 1)
	u.Process(1, tup(t, 2, 2, 2), 2)
	if len(sink.Tuples()) != 2 {
		t.Errorf("union passed %d tuples", len(sink.Tuples()))
	}
}

func TestUnionPunctuationNeedsBothSides(t *testing.T) {
	sink := &Collector{}
	u, _ := NewUnion(inSchema, sink)
	u.Process(0, keyPunct(5, 1), 1)
	if len(sink.Puncts()) != 0 {
		t.Fatal("one-sided punctuation must not pass")
	}
	// The other input punctuates the same key: conjunction is emitted.
	u.Process(1, keyPunct(5, 2), 2)
	ps := sink.Puncts()
	if len(ps) != 1 {
		t.Fatalf("puncts = %d", len(ps))
	}
	if ps[0].Punct.PatternAt(0).Kind() != punct.Constant {
		t.Errorf("conjunction punctuation = %v", ps[0].Punct)
	}
	// Disjoint keys produce nothing.
	sink.Reset()
	u.Process(0, keyPunct(6, 3), 3)
	u.Process(1, keyPunct(7, 4), 4)
	if len(sink.Puncts()) != 0 {
		t.Error("disjoint punctuations should not combine")
	}
}

func TestUnionEOSReleasesOtherSide(t *testing.T) {
	sink := &Collector{}
	u, _ := NewUnion(inSchema, sink)
	u.Process(0, keyPunct(1, 1), 1)
	u.Process(1, stream.EOSItem(2), 2)
	// Port 1 ended: its promise is total, so port 0's punctuation passes.
	if got := len(sink.Puncts()); got != 1 {
		t.Fatalf("after EOS, puncts = %d", got)
	}
	// New punctuations on the live side also pass directly now.
	u.Process(0, keyPunct(2, 3), 3)
	if got := len(sink.Puncts()); got != 2 {
		t.Errorf("live-side punctuation after EOS: %d", got)
	}
	u.Process(0, stream.EOSItem(4), 4)
	if err := u.Finish(5); err != nil {
		t.Fatal(err)
	}
}

func TestUnionProtocol(t *testing.T) {
	sink := &Collector{}
	u, _ := NewUnion(inSchema, sink)
	if err := u.Finish(1); err == nil {
		t.Error("Finish before EOS should error")
	}
	u.Process(0, stream.EOSItem(1), 1)
	if err := u.Process(0, stream.EOSItem(2), 2); err == nil {
		t.Error("dup EOS should error")
	}
	u.Process(1, stream.EOSItem(3), 3)
	if err := u.Finish(4); err != nil {
		t.Fatal(err)
	}
	if err := u.Finish(5); err == nil {
		t.Error("double Finish should error")
	}
}
