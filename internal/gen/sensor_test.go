package gen

import (
	"testing"

	"pjoin/internal/stream"
)

func sensorConfig() SensorConfig {
	return SensorConfig{
		Seed:        1,
		Epochs:      30,
		EpochLength: 10 * stream.Millisecond,
	}
}

func TestSensorsValidates(t *testing.T) {
	arrs, err := Sensors(sensorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
	st := Summarize(arrs)
	if st.Tuples[SensorPortReadings] == 0 {
		t.Error("no readings")
	}
	if st.Puncts[SensorPortReadings] != 30 || st.Puncts[SensorPortAlerts] != 30 {
		t.Errorf("punctuations per side = %d/%d, want 30/30",
			st.Puncts[SensorPortReadings], st.Puncts[SensorPortAlerts])
	}
	// Roughly half the epochs raise an alert at the default probability.
	if st.Tuples[SensorPortAlerts] < 5 || st.Tuples[SensorPortAlerts] > 25 {
		t.Errorf("alerts = %d", st.Tuples[SensorPortAlerts])
	}
}

func TestSensorsDeterministic(t *testing.T) {
	a, _ := Sensors(sensorConfig())
	b, _ := Sensors(sensorConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Port != b[i].Port || a[i].Item.Ts != b[i].Item.Ts || a[i].Item.Kind != b[i].Item.Kind {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestSensorsEpochOrdering(t *testing.T) {
	arrs, _ := Sensors(sensorConfig())
	// Every tuple for epoch e must precede that side's punctuation for e
	// (Validate covers honesty; here also check epochs are contiguous).
	maxSeen := int64(-1)
	for _, a := range arrs {
		if a.Item.Kind != stream.KindTuple {
			continue
		}
		e := a.Item.Tuple.Values[0].IntVal()
		if e > maxSeen {
			maxSeen = e
		}
		if e < maxSeen-1 {
			t.Fatalf("tuple for epoch %d after epoch %d items", e, maxSeen)
		}
	}
}

func TestSensorsConfigErrors(t *testing.T) {
	bad := []SensorConfig{
		{},
		{Epochs: 1},
		{Epochs: 1, EpochLength: 10, Sensors: -1},
		{Epochs: 1, EpochLength: 10, ReadingMean: -5},
		{Epochs: 1, EpochLength: 10, AlertProb: 101},
	}
	for i, cfg := range bad {
		if _, err := Sensors(cfg); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
}

func TestSensorsTimestampsReflectEpochs(t *testing.T) {
	cfg := sensorConfig()
	arrs, _ := Sensors(cfg)
	for _, a := range arrs {
		if a.Item.Kind != stream.KindTuple {
			continue
		}
		e := a.Item.Tuple.Values[0].IntVal()
		lo := stream.Time(e) * cfg.EpochLength
		hi := lo + cfg.EpochLength
		// The strict-monotonicity stamp can nudge by a few ns, so allow
		// a tiny margin past the epoch boundary.
		if a.Item.Ts < lo || a.Item.Ts > hi+100 {
			t.Fatalf("epoch %d tuple at ts %d outside [%d, %d]", e, a.Item.Ts, lo, hi)
		}
		if a.Item.Ts != a.Item.Tuple.Ts {
			t.Fatal("item ts and tuple ts diverge")
		}
	}
}
