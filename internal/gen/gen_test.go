package gen

import (
	"testing"

	"pjoin/internal/stream"
)

func baseConfig() Config {
	return Config{
		Seed:     1,
		Duration: 2_000 * stream.Millisecond,
		A:        SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 10},
		B:        SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: 10},
	}
}

func TestSyntheticValidates(t *testing.T) {
	arrs, err := Synthetic(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
	st := Summarize(arrs)
	if st.Tuples[0] == 0 || st.Tuples[1] == 0 {
		t.Fatalf("missing tuples: %+v", st)
	}
	if st.Puncts[0] == 0 || st.Puncts[1] == 0 {
		t.Fatalf("missing punctuations: %+v", st)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := Synthetic(baseConfig())
	b, _ := Synthetic(baseConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Port != b[i].Port || a[i].Item.Ts != b[i].Item.Ts || a[i].Item.Kind != b[i].Item.Kind {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	cfg := baseConfig()
	a, _ := Synthetic(cfg)
	cfg.Seed = 2
	b, _ := Synthetic(cfg)
	same := 0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Item.Ts == b[i].Item.Ts {
			same++
		}
	}
	if same == n {
		t.Error("different seeds gave identical schedules")
	}
}

func TestSyntheticTupleRate(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 10_000 * stream.Millisecond
	arrs, _ := Synthetic(cfg)
	st := Summarize(arrs)
	// Each side: ~10000ms / 2ms = 5000 tuples. Allow 10% slack.
	for s := 0; s < 2; s++ {
		if st.Tuples[s] < 4500 || st.Tuples[s] > 5500 {
			t.Errorf("side %d tuples = %d, want ~5000", s, st.Tuples[s])
		}
	}
}

func TestSyntheticPunctuationRate(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 10_000 * stream.Millisecond
	cfg.A.PunctMean = 40
	cfg.B.PunctMean = 40
	arrs, _ := Synthetic(cfg)
	st := Summarize(arrs)
	for s := 0; s < 2; s++ {
		ratio := float64(st.Tuples[s]) / float64(st.Puncts[s])
		if ratio < 30 || ratio > 55 {
			t.Errorf("side %d tuples/punct = %.1f, want ~40", s, ratio)
		}
	}
}

func TestSyntheticMaxTuplesCap(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 0
	cfg.MaxTuples = 100
	arrs, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(arrs)
	if got := st.Tuples[0] + st.Tuples[1]; got != 100 {
		t.Errorf("tuples = %d, want exactly 100", got)
	}
}

func TestSyntheticNoPunctuations(t *testing.T) {
	cfg := baseConfig()
	cfg.A.PunctMean = 0
	cfg.B.PunctMean = 0
	arrs, _ := Synthetic(cfg)
	st := Summarize(arrs)
	if st.Puncts[0] != 0 || st.Puncts[1] != 0 {
		t.Errorf("punctuations generated when disabled: %+v", st)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticAsymmetricHonesty(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 20_000 * stream.Millisecond
	cfg.A.PunctMean = 10
	cfg.B.PunctMean = 40
	arrs, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
	st := Summarize(arrs)
	if st.Puncts[0] <= st.Puncts[1]*2 {
		t.Errorf("side A should punctuate much faster: %d vs %d", st.Puncts[0], st.Puncts[1])
	}
}

func TestSyntheticAligned(t *testing.T) {
	cfg := baseConfig()
	cfg.A.PunctMean = 40
	cfg.B.PunctMean = 40
	cfg.AlignedPunctuation = true
	cfg.Duration = 20_000 * stream.Millisecond
	arrs, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
	// Punctuated key sequences per port must be identical.
	var keys [2][]int64
	for _, a := range arrs {
		if a.Item.Kind == stream.KindPunct {
			keys[a.Port] = append(keys[a.Port], a.Item.Punct.PatternAt(KeyAttr).ConstVal().IntVal())
		}
	}
	n := len(keys[0])
	if len(keys[1]) < n {
		n = len(keys[1])
	}
	if n == 0 {
		t.Fatal("no aligned punctuations generated")
	}
	for i := 0; i < n; i++ {
		if keys[0][i] != keys[1][i] {
			t.Fatalf("punctuation order differs at %d: %d vs %d", i, keys[0][i], keys[1][i])
		}
	}
	// Counts may differ by at most the in-flight tail.
	if d := len(keys[0]) - len(keys[1]); d < -2 || d > 2 {
		t.Errorf("aligned punctuation counts differ too much: %d vs %d", len(keys[0]), len(keys[1]))
	}
}

func TestSyntheticConfigErrors(t *testing.T) {
	bad := []Config{
		{},
		{Duration: 100, A: SideSpec{TupleMean: 0}, B: SideSpec{TupleMean: 1}},
		{Duration: 100, A: SideSpec{TupleMean: 1, PunctMean: -1}, B: SideSpec{TupleMean: 1}},
		{Duration: 100, A: SideSpec{TupleMean: 1}, B: SideSpec{TupleMean: 1}, WindowKeys: -5},
		{Duration: 100, A: SideSpec{TupleMean: 1, PunctMean: 5}, B: SideSpec{TupleMean: 1, PunctMean: 9}, AlignedPunctuation: true},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	arrs, _ := Synthetic(baseConfig())
	// Find a punctuation and replay its key as a later tuple.
	var pi int
	for i, a := range arrs {
		if a.Item.Kind == stream.KindPunct {
			pi = i
			break
		}
	}
	key := arrs[pi].Item.Punct.PatternAt(KeyAttr).ConstVal()
	bad := append([]Arrival{}, arrs...)
	tp := stream.MustTuple(SchemaA, arrs[len(arrs)-1].Item.Ts+1, key, arrs[0].Item.Tuple.Values[1])
	bad = append(bad, Arrival{Port: arrs[pi].Port, Item: stream.TupleItem(tp)})
	if err := Validate(bad); err == nil {
		t.Error("violation not detected")
	}
	// Non-increasing timestamps detected.
	bad2 := append([]Arrival{}, arrs...)
	bad2 = append(bad2, bad2[0])
	if err := Validate(bad2); err == nil {
		t.Error("timestamp regression not detected")
	}
}

func TestAuctionWorkload(t *testing.T) {
	arrs, err := Auction(AuctionConfig{
		Seed:            3,
		Items:           50,
		OpenMean:        5 * stream.Millisecond,
		AuctionLength:   100 * stream.Millisecond,
		BidMean:         10 * stream.Millisecond,
		UniqueOpenPunct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(arrs); err != nil {
		t.Fatal(err)
	}
	st := Summarize(arrs)
	if st.Tuples[AuctionPortOpen] != 50 {
		t.Errorf("open tuples = %d", st.Tuples[AuctionPortOpen])
	}
	if st.Puncts[AuctionPortOpen] != 50 {
		t.Errorf("open punctuations = %d (unique-key punctuation per item)", st.Puncts[AuctionPortOpen])
	}
	if st.Puncts[AuctionPortBid] != 50 {
		t.Errorf("bid punctuations = %d (one per auction close)", st.Puncts[AuctionPortBid])
	}
	if st.Tuples[AuctionPortBid] == 0 {
		t.Error("no bids generated")
	}
}

func TestAuctionBidsRespectClose(t *testing.T) {
	// Validate() already proves no bid follows its item's punctuation;
	// here we additionally check bids only exist for opened items.
	arrs, _ := Auction(AuctionConfig{
		Seed: 1, Items: 10,
		OpenMean: 10 * stream.Millisecond, AuctionLength: 50 * stream.Millisecond,
		BidMean: 5 * stream.Millisecond,
	})
	opened := map[int64]bool{}
	for _, a := range arrs {
		if a.Item.Kind != stream.KindTuple {
			continue
		}
		id := a.Item.Tuple.Values[0].IntVal()
		if a.Port == AuctionPortOpen {
			opened[id] = true
		} else if !opened[id] {
			t.Fatalf("bid for item %d before it opened", id)
		}
	}
}

func TestAuctionConfigErrors(t *testing.T) {
	bad := []AuctionConfig{
		{},
		{Items: 1},
		{Items: 1, OpenMean: 1, AuctionLength: 1},
	}
	for i, cfg := range bad {
		if _, err := Auction(cfg); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
}
