package gen

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

// Auction schemas, after the paper's running example (§1.1/§2.1): the
// sellers portal merges items for sale into the Open stream; the buyers
// portal merges bids into the Bid stream.
var (
	OpenSchema = stream.MustSchema("Open",
		stream.Field{Name: "item_id", Kind: value.KindInt},
		stream.Field{Name: "seller", Kind: value.KindString},
		stream.Field{Name: "open_price", Kind: value.KindFloat},
	)
	BidSchema = stream.MustSchema("Bid",
		stream.Field{Name: "item_id", Kind: value.KindInt},
		stream.Field{Name: "bidder", Kind: value.KindString},
		stream.Field{Name: "bid_increase", Kind: value.KindFloat},
	)
)

// AuctionConfig configures the online-auction workload.
type AuctionConfig struct {
	Seed uint64
	// Items is the number of auctions to run.
	Items int
	// OpenMean is the mean inter-arrival time between new items.
	OpenMean stream.Time
	// AuctionLength is how long each item accepts bids. When it
	// expires, the auction system inserts a punctuation into the Bid
	// stream for that item (§1.1).
	AuctionLength stream.Time
	// BidMean is the mean inter-arrival of bids per open item.
	BidMean stream.Time
	// UniqueOpenPunct, when set, inserts a punctuation after each Open
	// tuple: item_id is a key of Open, so the query system can derive
	// "no more Open tuples with this item_id" (§1.1).
	UniqueOpenPunct bool
}

// Auction ports: Open tuples arrive on port 0, Bid tuples on port 1.
const (
	AuctionPortOpen = 0
	AuctionPortBid  = 1
)

// Auction generates the online-auction workload: items open, receive
// Poisson bids while their auction runs, and are punctuated on the Bid
// stream when the auction expires.
func Auction(cfg AuctionConfig) ([]Arrival, error) {
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("gen: auction: Items must be positive")
	}
	if cfg.OpenMean <= 0 || cfg.AuctionLength <= 0 || cfg.BidMean <= 0 {
		return nil, fmt.Errorf("gen: auction: OpenMean, AuctionLength and BidMean must be positive")
	}
	rng := vtime.NewRNG(cfg.Seed)
	q := vtime.NewEventQueue()

	type openEv struct{ item int64 }
	type bidEv struct {
		item  int64
		close stream.Time
	}
	type closeEv struct{ item int64 }

	at := stream.Time(0)
	for i := 0; i < cfg.Items; i++ {
		at += rng.ExpDuration(cfg.OpenMean)
		q.Push(at, openEv{item: int64(i)})
	}

	sellers := []string{"ada", "bob", "cho", "dee", "eli", "fay"}
	bidders := []string{"gus", "hal", "ivy", "jon", "kim", "lou", "mia", "ned"}

	var (
		out    []Arrival
		lastTs stream.Time
		bidSeq int
	)
	stamp := func(t stream.Time) stream.Time {
		if t <= lastTs {
			t = lastTs + 1
		}
		lastTs = t
		return t
	}

	for q.Len() > 0 {
		ev := q.Pop()
		switch e := ev.Payload.(type) {
		case openEv:
			ts := stamp(ev.At)
			tp := stream.MustTuple(OpenSchema, ts,
				value.Int(e.item),
				value.Str(sellers[rng.Intn(len(sellers))]),
				value.Float(float64(5+rng.Intn(95))),
			)
			out = append(out, Arrival{Port: AuctionPortOpen, Item: stream.TupleItem(tp)})
			if cfg.UniqueOpenPunct {
				p := punct.MustKeyOnly(OpenSchema.Width(), 0, punct.Const(value.Int(e.item)))
				out = append(out, Arrival{Port: AuctionPortOpen, Item: stream.PunctItem(p, stamp(ts))})
			}
			closeAt := ev.At + cfg.AuctionLength
			q.Push(ev.At+rng.ExpDuration(cfg.BidMean), bidEv{item: e.item, close: closeAt})
			q.Push(closeAt, closeEv{item: e.item})
		case bidEv:
			if ev.At >= e.close {
				break // auction ended; bid suppressed
			}
			ts := stamp(ev.At)
			tp := stream.MustTuple(BidSchema, ts,
				value.Int(e.item),
				value.Str(bidders[rng.Intn(len(bidders))]),
				value.Float(float64(1+rng.Intn(20))),
			)
			bidSeq++
			out = append(out, Arrival{Port: AuctionPortBid, Item: stream.TupleItem(tp)})
			q.Push(ev.At+rng.ExpDuration(cfg.BidMean), bidEv{item: e.item, close: e.close})
		case closeEv:
			p := punct.MustKeyOnly(BidSchema.Width(), 0, punct.Const(value.Int(e.item)))
			out = append(out, Arrival{Port: AuctionPortBid, Item: stream.PunctItem(p, stamp(ev.At))})
		}
	}
	return out, nil
}
