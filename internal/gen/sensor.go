package gen

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

// Sensor-network schemas (the paper's §1 motivation): epoch-stamped
// readings joined with epoch-stamped zone alerts.
var (
	ReadingsSchema = stream.MustSchema("Readings",
		stream.Field{Name: "epoch", Kind: value.KindInt},
		stream.Field{Name: "sensor", Kind: value.KindString},
		stream.Field{Name: "temp", Kind: value.KindFloat},
	)
	AlertsSchema = stream.MustSchema("Alerts",
		stream.Field{Name: "epoch", Kind: value.KindInt},
		stream.Field{Name: "zone", Kind: value.KindString},
	)
)

// Sensor ports: readings arrive on port 0, alerts on port 1.
const (
	SensorPortReadings = 0
	SensorPortAlerts   = 1
)

// SensorConfig configures the sensor-network workload.
type SensorConfig struct {
	Seed uint64
	// Epochs is the number of observation epochs to generate.
	Epochs int
	// EpochLength is each epoch's duration. When an epoch ends, BOTH
	// streams punctuate it — the base station knows no more data for
	// that epoch will arrive.
	EpochLength stream.Time
	// Sensors is the number of sensors reporting each epoch (default 4).
	Sensors int
	// ReadingMean is the mean inter-arrival of readings within an epoch
	// (default EpochLength / 4).
	ReadingMean stream.Time
	// AlertProb is the probability (in percent, 0-100) that an epoch
	// raises a zone alert (default 50).
	AlertProb int
}

// Sensors generates the epoch-punctuated sensor workload. Punctuations
// are honest by construction: an epoch's punctuation appears only after
// the epoch's last item.
func Sensors(cfg SensorConfig) ([]Arrival, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("gen: sensors: Epochs must be positive")
	}
	if cfg.EpochLength <= 0 {
		return nil, fmt.Errorf("gen: sensors: EpochLength must be positive")
	}
	if cfg.Sensors == 0 {
		cfg.Sensors = 4
	}
	if cfg.Sensors < 0 {
		return nil, fmt.Errorf("gen: sensors: Sensors must be positive")
	}
	if cfg.ReadingMean == 0 {
		cfg.ReadingMean = cfg.EpochLength / 4
	}
	if cfg.ReadingMean < 0 {
		return nil, fmt.Errorf("gen: sensors: ReadingMean must be positive")
	}
	if cfg.AlertProb == 0 {
		cfg.AlertProb = 50
	}
	if cfg.AlertProb < 0 || cfg.AlertProb > 100 {
		return nil, fmt.Errorf("gen: sensors: AlertProb must be in [0,100]")
	}

	rng := vtime.NewRNG(cfg.Seed)
	zones := []string{"north", "south", "east", "west"}
	var (
		out    []Arrival
		lastTs stream.Time
	)
	stamp := func(t stream.Time) stream.Time {
		if t <= lastTs {
			t = lastTs + 1
		}
		lastTs = t
		return t
	}
	for epoch := int64(0); epoch < int64(cfg.Epochs); epoch++ {
		start := stream.Time(epoch) * cfg.EpochLength
		end := start + cfg.EpochLength
		// Readings at Poisson times within the epoch, per the mean.
		at := start + rng.ExpDuration(cfg.ReadingMean)
		var epochItems []Arrival
		for at < end {
			t := stream.MustTuple(ReadingsSchema, at,
				value.Int(epoch),
				value.Str(fmt.Sprintf("s%d", rng.Intn(cfg.Sensors)+1)),
				value.Float(15+10*rng.Float64()),
			)
			epochItems = append(epochItems, Arrival{Port: SensorPortReadings, Item: stream.TupleItem(t)})
			at += rng.ExpDuration(cfg.ReadingMean)
		}
		if rng.Intn(100) < cfg.AlertProb {
			aAt := start + stream.Time(rng.Int63n(int64(cfg.EpochLength)))
			t := stream.MustTuple(AlertsSchema, aAt,
				value.Int(epoch), value.Str(zones[rng.Intn(len(zones))]))
			epochItems = append(epochItems, Arrival{Port: SensorPortAlerts, Item: stream.TupleItem(t)})
		}
		// Emit the epoch's items in time order with strict stamps.
		sortArrivalsByTs(epochItems)
		for _, a := range epochItems {
			ts := stamp(a.Item.Ts)
			if a.Item.Kind == stream.KindTuple {
				a.Item.Tuple.Ts = ts
				a.Item = stream.TupleItem(a.Item.Tuple)
			}
			out = append(out, a)
		}
		// Both streams punctuate the finished epoch (fixed order so the
		// schedule is deterministic).
		for _, pw := range []struct{ port, width int }{
			{SensorPortReadings, ReadingsSchema.Width()},
			{SensorPortAlerts, AlertsSchema.Width()},
		} {
			p := punct.MustKeyOnly(pw.width, 0, punct.Const(value.Int(epoch)))
			out = append(out, Arrival{Port: pw.port, Item: stream.PunctItem(p, stamp(end))})
		}
	}
	return out, nil
}

func sortArrivalsByTs(arrs []Arrival) {
	for i := 1; i < len(arrs); i++ {
		for j := i; j > 0 && arrs[j].Item.Ts < arrs[j-1].Item.Ts; j-- {
			arrs[j], arrs[j-1] = arrs[j-1], arrs[j]
		}
	}
}
