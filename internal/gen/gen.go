// Package gen implements the benchmark system of the paper's
// experimental study (§4): synthetic punctuated data streams with
// controlled arrival patterns and rates. Tuples of both input streams
// have Poisson inter-arrival times (the paper uses a mean of 2 ms);
// punctuation inter-arrival is measured in tuples per punctuation, also
// Poisson-distributed.
//
// # Key model
//
// The two streams draw join keys from a shared, evolving population of
// "open" keys, mirroring the paper's online-auction motivation (§2.1):
// a key is opened globally (an item goes up for auction), each stream
// punctuates it independently (the stream promises it is done with that
// key), and a stream only ever emits tuples for keys it has not yet
// punctuated — so the generated punctuations are honest by construction.
// Key openings are driven by the faster-punctuating stream so it always
// keeps a window of WindowKeys open keys; the slower stream's open set
// then grows, which reproduces the paper's asymmetric-rate phenomena
// (Fig. 10: the slower side's punctuations let the opposite state grow;
// most tuples for long-closed keys are droppable on the fly).
package gen

import (
	"fmt"

	"pjoin/internal/punct"
	"pjoin/internal/stream"
	"pjoin/internal/value"
	"pjoin/internal/vtime"
)

// Arrival is one input event for a two-port operator: which port it
// enters on and the item itself. Schedules are ordered by strictly
// increasing Item.Ts.
type Arrival struct {
	Port int
	Item stream.Item
}

// SideSpec configures one input stream of the synthetic workload.
type SideSpec struct {
	// TupleMean is the Poisson mean inter-arrival time of data tuples
	// (default 2ms, the paper's setting).
	TupleMean stream.Time
	// PunctMean is the punctuation inter-arrival in tuples per
	// punctuation (Poisson; e.g. 40 means on average one punctuation
	// every 40 tuples). 0 disables punctuations for this stream.
	PunctMean float64
	// Batched makes each punctuation event close the stream's whole
	// backlog of due keys with a single range punctuation instead of
	// closing exactly one key with a constant punctuation. A slower
	// punctuation rate then means coarser (but equally covering)
	// punctuations rather than an ever-growing backlog — the regime of
	// the paper's asymmetric-rate experiments (§4.3), where the join
	// state stays bounded and the cost effect is "fewer purges, less
	// overhead".
	Batched bool
}

// Config configures the synthetic two-stream workload.
type Config struct {
	Seed uint64
	// Duration is the virtual time horizon; generation stops at the
	// first arrival past it.
	Duration stream.Time
	// MaxTuples optionally caps the total tuple count (0 = no cap).
	MaxTuples int
	// WindowKeys is the target number of keys the faster-punctuating
	// stream keeps open (default 16). Larger windows mean more
	// many-to-many matching per key.
	WindowKeys int
	A, B       SideSpec
	// AlignedPunctuation forces both streams to punctuate the same keys
	// in the same order at the pace of the slower stream — the "ideal
	// case" of the propagation experiment (Fig. 14). Requires equal
	// PunctMean on both sides.
	AlignedPunctuation bool
}

// Schemas of the synthetic workload: both sides are (k int, payload
// string) with the join attribute at position 0.
var (
	SchemaA = stream.MustSchema("A",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "payload", Kind: value.KindString},
	)
	SchemaB = stream.MustSchema("B",
		stream.Field{Name: "k", Kind: value.KindInt},
		stream.Field{Name: "payload", Kind: value.KindString},
	)
)

// KeyAttr is the join attribute position in both synthetic schemas.
const KeyAttr = 0

type sideState struct {
	spec      SideSpec
	schema    *stream.Schema
	punctRNG  *vtime.RNG
	nextTuple stream.Time
	// open keys this stream has not punctuated yet, oldest first
	open []int64
	// tuples remaining until the next punctuation fires
	untilPunct float64
	seq        int
}

// Synthetic generates the two-stream schedule. Arrivals are merged in
// time order with strictly increasing timestamps.
func Synthetic(cfg Config) ([]Arrival, error) {
	if cfg.Duration <= 0 && cfg.MaxTuples <= 0 {
		return nil, fmt.Errorf("gen: need Duration or MaxTuples")
	}
	if cfg.WindowKeys == 0 {
		cfg.WindowKeys = 16
	}
	if cfg.WindowKeys < 1 {
		return nil, fmt.Errorf("gen: WindowKeys must be >= 1")
	}
	for i, s := range []SideSpec{cfg.A, cfg.B} {
		if s.TupleMean <= 0 {
			return nil, fmt.Errorf("gen: side %d: TupleMean must be positive", i)
		}
		if s.PunctMean < 0 {
			return nil, fmt.Errorf("gen: side %d: PunctMean must be >= 0", i)
		}
	}
	if cfg.AlignedPunctuation {
		if cfg.A.PunctMean != cfg.B.PunctMean || cfg.A.PunctMean == 0 {
			return nil, fmt.Errorf("gen: aligned punctuation requires equal non-zero PunctMean")
		}
	}

	rng := vtime.NewRNG(cfg.Seed)
	var nextKey int64
	sides := [2]*sideState{
		{spec: cfg.A, schema: SchemaA},
		{spec: cfg.B, schema: SchemaB},
	}
	// Punctuation gap sequences come from dedicated sub-generators. When
	// both sides punctuate at the same mean rate they share one gap
	// sequence — the paper's benchmark closes a key on both streams in
	// response to the same logical event (an auction expiring), so the
	// two streams' punctuation progressions track each other instead of
	// drifting apart like two independent Poisson counters would.
	if cfg.A.PunctMean == cfg.B.PunctMean {
		shared := cfg.Seed ^ 0x9E3779B97F4A7C15
		sides[0].punctRNG = vtime.NewRNG(shared)
		sides[1].punctRNG = vtime.NewRNG(shared)
	} else {
		sides[0].punctRNG = vtime.NewRNG(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5)
		sides[1].punctRNG = vtime.NewRNG(cfg.Seed ^ 0x5A5A5A5A5A5A5A5A)
	}
	// Open the initial window on both sides.
	for k := 0; k < cfg.WindowKeys; k++ {
		for _, s := range sides {
			s.open = append(s.open, nextKey)
		}
		nextKey++
	}
	for _, s := range sides {
		s.nextTuple = rng.ExpDuration(s.spec.TupleMean)
		if s.spec.PunctMean > 0 {
			s.untilPunct = s.punctRNG.Exp(s.spec.PunctMean)
		}
	}

	openKey := func() {
		for _, s := range sides {
			s.open = append(s.open, nextKey)
		}
		nextKey++
	}

	var (
		out     []Arrival
		lastTs  stream.Time
		tuples  int
		pending [2][]stream.Item // punctuations to emit right after the tuple
	)
	stamp := func(t stream.Time) stream.Time {
		if t <= lastTs {
			t = lastTs + 1
		}
		lastTs = t
		return t
	}

	for {
		// Next side to emit a tuple.
		s := 0
		if sides[1].nextTuple < sides[0].nextTuple {
			s = 1
		}
		side := sides[s]
		at := side.nextTuple
		if cfg.Duration > 0 && at > cfg.Duration {
			break
		}
		if cfg.MaxTuples > 0 && tuples >= cfg.MaxTuples {
			break
		}

		// Keep the window populated: a side with no open keys gets new
		// global keys (both sides see openings).
		for len(side.open) == 0 {
			openKey()
		}
		key := side.open[rng.Intn(len(side.open))]
		ts := stamp(at)
		tp := stream.MustTuple(side.schema, ts,
			value.Int(key), value.Str(fmt.Sprintf("%s%d", side.schema.Name(), side.seq)))
		side.seq++
		tuples++
		out = append(out, Arrival{Port: s, Item: stream.TupleItem(tp)})
		side.nextTuple = at + rng.ExpDuration(side.spec.TupleMean)

		// Punctuation bookkeeping: counted in tuples.
		if side.spec.PunctMean > 0 {
			side.untilPunct--
			for side.untilPunct <= 0 {
				side.untilPunct += side.punctRNG.Exp(side.spec.PunctMean)
				if side.spec.Batched {
					// Close the whole backlog beyond the target window
					// with one range punctuation.
					excess := len(side.open) - cfg.WindowKeys
					if excess <= 0 {
						continue
					}
					lo, hi := side.open[0], side.open[excess-1]
					side.open = side.open[excess:]
					pat, err := punct.NewRange(value.Int(lo), value.Int(hi))
					if err != nil {
						return nil, err
					}
					p := punct.MustKeyOnly(side.schema.Width(), KeyAttr, pat)
					pending[s] = append(pending[s], stream.PunctItem(p, 0))
					continue
				}
				k := side.open[0]
				side.open = side.open[1:]
				p := punct.MustKeyOnly(side.schema.Width(), KeyAttr, punct.Const(value.Int(k)))
				pending[s] = append(pending[s], stream.PunctItem(p, 0))
				if cfg.AlignedPunctuation {
					// The other side punctuates the same key immediately
					// after (same order, same granularity).
					o := 1 - s
					other := sides[o]
					for len(other.open) > 0 && other.open[0] <= k {
						ko := other.open[0]
						other.open = other.open[1:]
						po := punct.MustKeyOnly(other.schema.Width(), KeyAttr, punct.Const(value.Int(ko)))
						pending[o] = append(pending[o], stream.PunctItem(po, 0))
					}
				}
				// Keep the faster-closing side's window at full size.
				for len(side.open) < cfg.WindowKeys {
					openKey()
				}
			}
		}
		for s2 := 0; s2 < 2; s2++ {
			for _, pi := range pending[s2] {
				pi.Ts = stamp(ts)
				out = append(out, Arrival{Port: s2, Item: pi})
			}
			pending[s2] = nil
		}
	}
	return out, nil
}

// Validate checks a schedule's invariants: strictly increasing
// timestamps and honest punctuations (no tuple follows a punctuation it
// matches on the same port). The tests and the harness run it on every
// generated workload.
func Validate(arrs []Arrival) error {
	var last stream.Time = -1
	sets := [2]*punct.Set{punct.NewKeyedSet(KeyAttr, false), punct.NewKeyedSet(KeyAttr, false)}
	for i, a := range arrs {
		if a.Item.Ts <= last {
			return fmt.Errorf("gen: arrival %d: timestamp %d not increasing (prev %d)", i, a.Item.Ts, last)
		}
		last = a.Item.Ts
		if a.Port != 0 && a.Port != 1 {
			return fmt.Errorf("gen: arrival %d: bad port %d", i, a.Port)
		}
		switch a.Item.Kind {
		case stream.KindTuple:
			key := a.Item.Tuple.Values[KeyAttr]
			if sets[a.Port].SetMatchAttr(KeyAttr, key) {
				return fmt.Errorf("gen: arrival %d: tuple %s violates an earlier punctuation on port %d",
					i, a.Item.Tuple, a.Port)
			}
		case stream.KindPunct:
			if _, err := sets[a.Port].Add(a.Item.Punct); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats summarises a schedule for reporting.
type Stats struct {
	Tuples [2]int
	Puncts [2]int
	Span   stream.Time
}

// Summarize computes schedule statistics.
func Summarize(arrs []Arrival) Stats {
	var st Stats
	for _, a := range arrs {
		switch a.Item.Kind {
		case stream.KindTuple:
			st.Tuples[a.Port]++
		case stream.KindPunct:
			st.Puncts[a.Port]++
		}
		st.Span = a.Item.Ts
	}
	return st
}
