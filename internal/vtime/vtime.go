// Package vtime provides the deterministic time and randomness substrate
// for workload generation and simulation: a seedable 64-bit RNG with
// exponential sampling (Poisson inter-arrival times, as the paper's
// benchmark system uses), a virtual clock, and a discrete-event queue.
//
// Everything here is deterministic given a seed, so every experiment in
// the harness is exactly reproducible.
package vtime

import (
	"container/heap"
	"math"

	"pjoin/internal/stream"
)

// RNG is a small, fast, seedable random number generator
// (splitmix64-seeded xorshift128+). It is NOT cryptographic; it exists so
// workloads are reproducible without importing math/rand state handling.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so nearby
// seeds give unrelated sequences.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xorshift state must be non-zero
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("vtime: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed float with the given mean —
// the inter-arrival time of a Poisson process with rate 1/mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("vtime: Exp with non-positive mean")
	}
	u := r.Float64()
	// Guard the log: Float64 can return exactly 0.
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponential stream.Time interval with the given
// mean, always at least 1ns so virtual time strictly advances.
func (r *RNG) ExpDuration(mean stream.Time) stream.Time {
	d := stream.Time(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Clock is a virtual clock. The zero Clock starts at time 0.
type Clock struct {
	now stream.Time
}

// Now returns the current virtual time.
func (c *Clock) Now() stream.Time { return c.now }

// Advance moves the clock forward by d. It panics on negative d: virtual
// time is monotonic.
func (c *Clock) Advance(d stream.Time) {
	if d < 0 {
		panic("vtime: Advance by negative duration")
	}
	c.now += d
}

// AdvanceTo moves the clock to t if t is later than now; earlier values
// are ignored (events processed at the current instant keep the clock).
func (c *Clock) AdvanceTo(t stream.Time) {
	if t > c.now {
		c.now = t
	}
}

// Event is an entry in the discrete-event queue: a time and a payload.
type Event struct {
	At      stream.Time
	Payload any
	seq     uint64 // insertion order, breaks At ties FIFO
}

// EventQueue is a min-heap of events ordered by time, with FIFO order for
// equal times so simulation is deterministic.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push schedules a payload at time at.
func (q *EventQueue) Push(at stream.Time, payload any) {
	q.seq++
	heap.Push(&q.h, Event{At: at, Payload: payload, seq: q.seq})
}

// Peek returns the earliest event without removing it. It panics on an
// empty queue; check Len first.
func (q *EventQueue) Peek() Event {
	if len(q.h) == 0 {
		panic("vtime: Peek on empty EventQueue")
	}
	return q.h[0]
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; check Len first.
func (q *EventQueue) Pop() Event {
	if len(q.h) == 0 {
		panic("vtime: Pop on empty EventQueue")
	}
	return heap.Pop(&q.h).(Event)
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
