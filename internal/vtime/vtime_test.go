package vtime

import (
	"math"
	"testing"

	"pjoin/internal/stream"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d of 100 draws", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed should still generate values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
		seen[n] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestInt63n(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		n := r.Int63n(1 << 40)
		if n < 0 || n >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(-1) should panic")
		}
	}()
	r.Int63n(-1)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	mean := 2.0
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("Exp returned negative %g", x)
		}
		sum += x
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("Exp sample mean = %g, want ~%g", got, mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestExpDurationPositive(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		if d := r.ExpDuration(2 * stream.Millisecond); d < 1 {
			t.Fatalf("ExpDuration returned %d", d)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("zero clock should start at 0")
	}
	c.Advance(10)
	c.Advance(0)
	if c.Now() != 10 {
		t.Errorf("Now = %d", c.Now())
	}
	c.AdvanceTo(5) // earlier: ignored
	if c.Now() != 10 {
		t.Errorf("AdvanceTo backwards moved clock to %d", c.Now())
	}
	c.AdvanceTo(25)
	if c.Now() != 25 {
		t.Errorf("AdvanceTo = %d", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) should panic")
		}
	}()
	c.Advance(-1)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEventQueueFIFOTies(t *testing.T) {
	q := NewEventQueue()
	for i := 0; i < 50; i++ {
		q.Push(100, i)
	}
	for i := 0; i < 50; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", got, i)
		}
	}
}

func TestEventQueuePeek(t *testing.T) {
	q := NewEventQueue()
	q.Push(5, "x")
	if e := q.Peek(); e.At != 5 || q.Len() != 1 {
		t.Error("Peek should not remove")
	}
}

func TestEventQueueEmptyPanics(t *testing.T) {
	q := NewEventQueue()
	for name, f := range map[string]func(){
		"Pop":  func() { q.Pop() },
		"Peek": func() { q.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEventQueueInterleaved(t *testing.T) {
	q := NewEventQueue()
	q.Push(10, 10)
	q.Push(5, 5)
	if e := q.Pop(); e.At != 5 {
		t.Fatalf("first pop at %d", e.At)
	}
	q.Push(7, 7)
	q.Push(3, 3) // earlier than an already popped event is still served next
	if e := q.Pop(); e.At != 3 {
		t.Fatalf("second pop at %d", e.At)
	}
	if e := q.Pop(); e.At != 7 {
		t.Fatalf("third pop at %d", e.At)
	}
	if e := q.Pop(); e.At != 10 {
		t.Fatalf("fourth pop at %d", e.At)
	}
}

// The empirical distribution of Exp should roughly match the exponential
// CDF at a few quantiles: P(X < mean) ≈ 1 - 1/e ≈ 0.632.
func TestExpShape(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	mean := 4.0
	below := 0
	for i := 0; i < n; i++ {
		if r.Exp(mean) < mean {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.632) > 0.01 {
		t.Errorf("P(X < mean) = %g, want ~0.632", frac)
	}
}
