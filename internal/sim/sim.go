// Package sim drives a join operator through a generated arrival
// schedule on a virtual clock, charging the operator's measured work
// (probes, purge scans, index scans, disk pairs, spill I/O) against a
// calibrated cost model. This reproduces the paper's experimental method
// — Poisson arrivals at a fixed mean with the join racing the streams —
// deterministically and independently of the host machine: when the
// operator's per-item work exceeds the inter-arrival gap it falls
// behind, its completion times lag the arrivals, and its output rate
// drops, exactly the effect the paper's Fig. 7/9/11/12 charts show.
package sim

import (
	"fmt"

	"pjoin/internal/gen"
	"pjoin/internal/joinbase"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
)

// CostModel prices each unit of operator work in virtual nanoseconds.
// The defaults are calibrated so that, at the paper's 2 ms mean tuple
// inter-arrival, a small-state join keeps up comfortably while an
// XJoin-like growing state pushes per-tuple cost past the arrival gap
// within about half a minute of virtual time.
type CostModel struct {
	PerTuple      stream.Time // fixed cost per data tuple (hash, insert, dispatch)
	PerPunct      stream.Time // fixed cost per punctuation (set insert, monitor)
	PerProbe      stream.Time // per stored tuple examined by a memory probe
	PerResult     stream.Time // per result tuple constructed and emitted
	PerPurgeScan  stream.Time // per tuple examined by a purge scan
	PerPurgeRun   stream.Time // fixed cost per purge invocation (full table walk)
	PerIndexScan  stream.Time // per tuple examined by index building
	PerDiskPair   stream.Time // per candidate pair checked in a disk pass
	PerDiskChunk  stream.Time // fixed cost per incremental disk-pass step (scheduling, cursor bookkeeping)
	PerSpillTuple stream.Time // per tuple serialised during relocation
	PerIOOp       stream.Time // per spill-store read/write operation (seek)
	PerIOByte     stream.Time // per byte moved to/from the spill store
	PerBatch      stream.Time // fixed cost per delivered batch (wakeup, dispatch); 0 by default — the simulator drives per item, so committed figures are unaffected
}

// DefaultCosts returns the calibrated cost model used by the paper
// reproduction experiments. Calibration notes:
//
//   - The paper's testbed (Java 1.4 on a 2.4 GHz Pentium-IV, inside the
//     Raindrop XQuery engine) was borderline CPU-bound at the 2 ms mean
//     inter-arrival — its output-rate charts differ across strategies,
//     which is only possible when processing cost is comparable to the
//     arrival gap. PerTuple reflects that per-element engine overhead.
//   - Purge scans evaluate punctuation predicates per stored tuple
//     (pattern interpretation), which is substantially dearer than a
//     hash-bucket equality probe; hence PerPurgeScan >> PerProbe. This
//     ratio is what makes eager purge visibly expensive (Fig. 9/12).
func DefaultCosts() CostModel {
	const us = stream.Time(1_000) // one microsecond
	return CostModel{
		PerTuple:      800 * us,
		PerPunct:      100 * us,
		PerProbe:      10 * us,
		PerResult:     5 * us,
		PerPurgeScan:  40 * us,
		PerPurgeRun:   4_000 * us, // a purge walks the whole hash table
		PerIndexScan:  10 * us,
		PerDiskPair:   2 * us,
		PerDiskChunk:  100 * us, // task switch + cursor resume per bounded step
		PerSpillTuple: 10 * us,
		PerIOOp:       5_000 * us, // 5 ms seek
		PerIOByte:     us / 100,   // 10 ns/byte ≈ 100 MB/s
	}
}

// Charge prices the cumulative work recorded in m from a zero baseline
// (spill-store I/O is charged separately, from store.IOStats). Because
// the model is linear, the cost of a work delta is the difference of
// two Charge values; parallel compositions use Charge directly to price
// each shard's work when computing pipeline makespans (bench scale1).
func (d CostModel) Charge(m joinbase.Metrics) stream.Time {
	var cost stream.Time
	cost += d.PerTuple * stream.Time(m.TuplesIn[0]+m.TuplesIn[1])
	cost += d.PerPunct * stream.Time(m.PunctsIn[0]+m.PunctsIn[1])
	cost += d.PerProbe * stream.Time(m.Examined)
	cost += d.PerResult * stream.Time(m.TuplesOut)
	cost += d.PerPurgeScan * stream.Time(m.PurgeScanned)
	cost += d.PerPurgeRun * stream.Time(m.PurgeRuns)
	cost += d.PerIndexScan * stream.Time(m.IndexScanned)
	cost += d.PerDiskPair * stream.Time(m.DiskExamined)
	cost += d.PerDiskChunk * stream.Time(m.DiskChunks)
	cost += d.PerSpillTuple * stream.Time(m.SpilledTuples)
	cost += d.PerBatch * stream.Time(m.Batches)
	return cost
}

// MeteredJoin is the operator contract the simulator drives: a two-port
// operator exposing its work counters and state size. core.PJoin and
// xjoin.XJoin both satisfy it.
type MeteredJoin interface {
	op.Operator
	Metrics() joinbase.Metrics
	StateTuples() int
}

// Config configures a simulation run.
type Config struct {
	// Costs is the cost model (DefaultCosts() if zero).
	Costs CostModel
	// SampleEvery is the sampling period for the time series (default
	// one virtual second).
	SampleEvery stream.Time
	// Spills are the operator's spill stores; their I/O counters are
	// charged through the cost model. Optional.
	Spills []store.SpillStore
}

// Sample is one point of the recorded time series.
type Sample struct {
	T           stream.Time // virtual time of the sample
	StateTuples int         // total tuples in the join state
	TuplesOut   int64       // cumulative result tuples emitted
	PunctsOut   int64       // cumulative punctuations propagated
	Lag         stream.Time // how far the operator trails the arrivals
}

// Result is the outcome of a simulation run.
type Result struct {
	Samples []Sample
	Final   joinbase.Metrics
	// Done is the virtual time at which the operator finished all work
	// including the end-of-stream flush.
	Done stream.Time
	// WorkTime is the total busy time charged to the operator.
	WorkTime stream.Time
	// IO is the cumulative spill-store traffic.
	IO store.IOStats
}

type costTracker struct {
	costs  CostModel
	spills []store.SpillStore
	prev   joinbase.Metrics
	prevIO store.IOStats
}

func (c *costTracker) ioNow() store.IOStats {
	var total store.IOStats
	for _, s := range c.spills {
		st, err := s.Stats()
		if err != nil {
			// A closed store's traffic was already charged while it was
			// open; it contributes nothing further.
			continue
		}
		total.ReadOps += st.ReadOps
		total.WriteOps += st.WriteOps
		// Chunk continuations are reporting-only: their bytes are charged
		// through BytesRead and their scheduling through PerDiskChunk, so
		// charging them as ops too would double-count the same work.
		total.ChunkReads += st.ChunkReads
		total.BytesRead += st.BytesRead
		total.BytesWritten += st.BytesWritten
	}
	return total
}

// charge computes the virtual cost of the work done since the last call.
func (c *costTracker) charge(m joinbase.Metrics) stream.Time {
	d := c.costs
	cost := d.Charge(m) - d.Charge(c.prev)
	c.prev = m

	io := c.ioNow()
	cost += d.PerIOOp * stream.Time(io.ReadOps+io.WriteOps-c.prevIO.ReadOps-c.prevIO.WriteOps)
	cost += d.PerIOByte * stream.Time(io.BytesRead+io.BytesWritten-c.prevIO.BytesRead-c.prevIO.BytesWritten)
	c.prevIO = io
	return cost
}

// Run simulates the operator against the schedule and returns the
// recorded series. The schedule must be time-ordered with strictly
// increasing timestamps (gen.Validate checks this).
func Run(j MeteredJoin, arrivals []gen.Arrival, cfg Config) (*Result, error) {
	if j == nil {
		return nil, fmt.Errorf("sim: nil operator")
	}
	if j.NumPorts() != 2 {
		return nil, fmt.Errorf("sim: operator must have 2 ports, has %d", j.NumPorts())
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1000 * stream.Millisecond
	}

	tracker := &costTracker{costs: cfg.Costs, spills: cfg.Spills}
	res := &Result{}
	var (
		busy       stream.Time // operator is busy until this instant
		nextSample = cfg.SampleEvery
		lastTs     stream.Time
	)

	record := func(now stream.Time, arrivalTs stream.Time) {
		for nextSample <= now {
			lag := now - arrivalTs
			if lag < 0 {
				lag = 0
			}
			m := j.Metrics()
			res.Samples = append(res.Samples, Sample{
				T:           nextSample,
				StateTuples: j.StateTuples(),
				TuplesOut:   m.TuplesOut,
				PunctsOut:   m.PunctsOut,
				Lag:         lag,
			})
			nextSample += cfg.SampleEvery
		}
	}

	for i, a := range arrivals {
		if a.Item.Ts <= lastTs {
			return nil, fmt.Errorf("sim: arrival %d: timestamps must strictly increase", i)
		}
		lastTs = a.Item.Ts

		// Idle gap before this arrival: give the operator a chance to do
		// reactive background work (disk join). The work is stamped just
		// before the arrival so residence-interval bookkeeping stays
		// consistent.
		if a.Item.Ts > busy+1 {
			if _, err := j.OnIdle(a.Item.Ts - 1); err != nil {
				return nil, fmt.Errorf("sim: OnIdle: %w", err)
			}
			if c := tracker.charge(j.Metrics()); c > 0 {
				busy += c
			}
		}

		start := busy
		if a.Item.Ts > start {
			start = a.Item.Ts
		}
		if err := j.Process(a.Port, a.Item, a.Item.Ts); err != nil {
			return nil, fmt.Errorf("sim: arrival %d: %w", i, err)
		}
		cost := tracker.charge(j.Metrics())
		busy = start + cost
		res.WorkTime += cost
		record(busy, a.Item.Ts)
	}

	// End of stream: deliver EOS on both ports and flush.
	for port := 0; port < 2; port++ {
		lastTs++
		if err := j.Process(port, stream.EOSItem(lastTs), lastTs); err != nil {
			return nil, fmt.Errorf("sim: EOS port %d: %w", port, err)
		}
	}
	lastTs++
	if err := j.Finish(lastTs); err != nil {
		return nil, fmt.Errorf("sim: Finish: %w", err)
	}
	cost := tracker.charge(j.Metrics())
	if busy < lastTs {
		busy = lastTs
	}
	busy += cost
	res.WorkTime += cost
	record(busy, lastTs)

	res.Final = j.Metrics()
	res.Done = busy
	res.IO = tracker.ioNow()
	return res, nil
}
