package sim

import (
	"testing"

	"pjoin/internal/core"
	"pjoin/internal/gen"
	"pjoin/internal/op"
	"pjoin/internal/store"
	"pjoin/internal/stream"
	"pjoin/internal/xjoin"
)

func workload(t *testing.T, dur stream.Time, punctMean float64) []gen.Arrival {
	t.Helper()
	arrs, err := gen.Synthetic(gen.Config{
		Seed:     42,
		Duration: dur,
		A:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctMean},
		B:        gen.SideSpec{TupleMean: 2 * stream.Millisecond, PunctMean: punctMean},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Validate(arrs); err != nil {
		t.Fatal(err)
	}
	return arrs
}

func newPJoin(t *testing.T, cfg core.Config) *core.PJoin {
	t.Helper()
	cfg.SchemaA, cfg.SchemaB = gen.SchemaA, gen.SchemaB
	cfg.AttrA, cfg.AttrB = gen.KeyAttr, gen.KeyAttr
	j, err := core.New(cfg, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, Config{}); err == nil {
		t.Error("nil operator should error")
	}
	arrs := workload(t, 100*stream.Millisecond, 10)
	j := newPJoin(t, core.Config{})
	// Duplicate timestamps rejected.
	bad := append([]gen.Arrival{}, arrs...)
	bad = append(bad, bad[len(bad)-1])
	if _, err := Run(j, bad, Config{}); err == nil {
		t.Error("non-increasing timestamps should error")
	}
}

func TestSimProducesSamplesAndResults(t *testing.T) {
	arrs := workload(t, 5000*stream.Millisecond, 10)
	j := newPJoin(t, core.Config{})
	res, err := Run(j, arrs, Config{SampleEvery: 500 * stream.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 8 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.Final.TuplesOut == 0 {
		t.Error("no join results")
	}
	if res.WorkTime <= 0 || res.Done <= 0 {
		t.Errorf("work=%d done=%d", res.WorkTime, res.Done)
	}
	// Samples are monotone in time and cumulative outputs.
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T <= res.Samples[i-1].T {
			t.Fatal("sample times not increasing")
		}
		if res.Samples[i].TuplesOut < res.Samples[i-1].TuplesOut {
			t.Fatal("cumulative output decreased")
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	arrs := workload(t, 2000*stream.Millisecond, 10)
	r1, err := Run(newPJoin(t, core.Config{}), arrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(newPJoin(t, core.Config{}), arrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Done != r2.Done || r1.WorkTime != r2.WorkTime || r1.Final.TuplesOut != r2.Final.TuplesOut {
		t.Error("simulation not deterministic")
	}
}

// The headline claim (paper Fig. 5): PJoin's state stays bounded while
// XJoin's grows with the stream.
func TestPJoinStateSmallerThanXJoin(t *testing.T) {
	arrs := workload(t, 20_000*stream.Millisecond, 40)

	pj := newPJoin(t, core.Config{})
	resP, err := Run(pj, arrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	xj, err := xjoin.New(xjoin.Config{
		SchemaA: gen.SchemaA, SchemaB: gen.SchemaB,
	}, &op.Collector{})
	if err != nil {
		t.Fatal(err)
	}
	resX, err := Run(xj, arrs, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Same results from both joins.
	if resP.Final.TuplesOut != resX.Final.TuplesOut {
		t.Fatalf("result counts differ: pjoin %d, xjoin %d", resP.Final.TuplesOut, resX.Final.TuplesOut)
	}
	// XJoin's final state holds everything; PJoin's is a small fraction.
	lastP := resP.Samples[len(resP.Samples)-2] // before the EOS flush
	lastX := resX.Samples[len(resX.Samples)-2]
	if lastP.StateTuples*5 > lastX.StateTuples {
		t.Errorf("PJoin state %d not ≪ XJoin state %d", lastP.StateTuples, lastX.StateTuples)
	}
	// XJoin's state grows monotonically with time (no purging).
	mid := resX.Samples[len(resX.Samples)/2]
	if lastX.StateTuples <= mid.StateTuples {
		t.Errorf("XJoin state did not grow: mid %d, last %d", mid.StateTuples, lastX.StateTuples)
	}
}

// Paper Fig. 6: the PJoin state grows with the punctuation inter-arrival.
func TestStateGrowsWithPunctuationInterArrival(t *testing.T) {
	var avg [3]float64
	for i, pm := range []float64{10, 20, 30} {
		arrs := workload(t, 20_000*stream.Millisecond, pm)
		res, err := Run(newPJoin(t, core.Config{}), arrs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var sum int
		for _, s := range res.Samples {
			sum += s.StateTuples
		}
		avg[i] = float64(sum) / float64(len(res.Samples))
	}
	if !(avg[0] < avg[1] && avg[1] < avg[2]) {
		t.Errorf("average state sizes not ordered by inter-arrival: %v", avg)
	}
}

func TestSimWithSpillingCharge(t *testing.T) {
	spillA, spillB := store.NewMemSpill(), store.NewMemSpill()
	cfg := core.Config{
		SpillA: spillA, SpillB: spillB,
		NumBuckets: 8,
	}
	cfg.Thresholds.MemoryBytes = 4 << 10 // 4 KiB: forces relocation
	cfg.Thresholds.DiskJoinIdle = 10 * stream.Millisecond
	j := newPJoin(t, cfg)
	arrs := workload(t, 5_000*stream.Millisecond, 0) // no punctuations: state builds up
	res, err := Run(j, arrs, Config{Spills: []store.SpillStore{spillA, spillB}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Relocations == 0 {
		t.Fatal("no relocations; threshold too high for this workload")
	}
	if res.IO.BytesWritten == 0 {
		t.Error("spill I/O not accounted")
	}
}

func TestLagAppearsWhenOverloaded(t *testing.T) {
	// Make probing brutally expensive so the join cannot keep up.
	costs := DefaultCosts()
	costs.PerProbe = 500_000 // 0.5 ms per examined tuple
	arrs := workload(t, 5_000*stream.Millisecond, 0)
	cfg := core.Config{NumBuckets: 2}
	j := newPJoin(t, cfg)
	res, err := Run(j, arrs, Config{Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Lag == 0 {
		t.Error("overloaded operator shows no lag")
	}
	if res.Done <= arrs[len(arrs)-1].Item.Ts {
		t.Error("overloaded run should finish after the last arrival")
	}
}

// The cost model must actually charge purge invocations: the same run
// with a higher PerPurgeRun must finish later.
func TestPurgeRunCostCharged(t *testing.T) {
	arrs := workload(t, 2_000*stream.Millisecond, 10)
	cheap := DefaultCosts()
	cheap.PerPurgeRun = 0
	dear := DefaultCosts()
	dear.PerPurgeRun = 10_000_000 // 10ms per purge

	r1, err := Run(newPJoin(t, core.Config{}), arrs, Config{Costs: cheap})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(newPJoin(t, core.Config{}), arrs, Config{Costs: dear})
	if err != nil {
		t.Fatal(err)
	}
	if r2.WorkTime <= r1.WorkTime {
		t.Errorf("purge-run cost not charged: %d vs %d", r1.WorkTime, r2.WorkTime)
	}
	if r1.Final.PurgeRuns == 0 {
		t.Error("no purge runs recorded")
	}
}
