// Package shj implements the plain symmetric hash join (Wilschut & Apers)
// over unbounded streams: every arrival probes the opposite hash table
// and is then inserted into its own. There is no overflow handling and
// no constraint exploitation, so the state grows without bound — it is
// the paper's motivating "basic stream join solution" (§1.1) and this
// repository's correctness oracle: on any finite input its result set is
// the exact equi-join.
package shj

import (
	"fmt"

	"pjoin/internal/op"
	"pjoin/internal/stream"
	"pjoin/internal/value"
)

// SHJ is the naive symmetric hash join. It implements op.Operator with
// two input ports.
type SHJ struct {
	out      op.Emitter
	attrs    [2]int
	schemas  [2]*stream.Schema
	outSc    *stream.Schema
	tables   [2]map[value.Value][]*stream.Tuple
	sizes    [2]int
	eos      [2]bool
	finished bool
	now      stream.Time
}

var _ op.Operator = (*SHJ)(nil)

// New builds a symmetric hash join of a.attrA = b.attrB.
func New(a, b *stream.Schema, attrA, attrB int, out op.Emitter) (*SHJ, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("shj: both schemas required")
	}
	if out == nil {
		return nil, fmt.Errorf("shj: output emitter required")
	}
	if attrA < 0 || attrA >= a.Width() || attrB < 0 || attrB >= b.Width() {
		return nil, fmt.Errorf("shj: join attributes (%d, %d) out of range", attrA, attrB)
	}
	if a.FieldAt(attrA).Kind != b.FieldAt(attrB).Kind {
		return nil, fmt.Errorf("shj: join attribute kinds differ")
	}
	outSc, err := a.Concat("join", b)
	if err != nil {
		return nil, err
	}
	return &SHJ{
		out:     out,
		attrs:   [2]int{attrA, attrB},
		schemas: [2]*stream.Schema{a, b},
		outSc:   outSc,
		tables: [2]map[value.Value][]*stream.Tuple{
			make(map[value.Value][]*stream.Tuple),
			make(map[value.Value][]*stream.Tuple),
		},
	}, nil
}

// Name implements op.Operator.
func (j *SHJ) Name() string { return "shj" }

// NumPorts implements op.Operator.
func (j *SHJ) NumPorts() int { return 2 }

// OutSchema implements op.Operator.
func (j *SHJ) OutSchema() *stream.Schema { return j.outSc }

// StateTuples returns the total number of stored tuples (both tables).
func (j *SHJ) StateTuples() int { return j.sizes[0] + j.sizes[1] }

// Process implements op.Operator. Punctuations are ignored.
func (j *SHJ) Process(port int, it stream.Item, now stream.Time) error {
	if err := op.ValidatePort(j.Name(), port, 2); err != nil {
		return err
	}
	if j.finished {
		return fmt.Errorf("shj: Process after Finish")
	}
	if now > j.now {
		j.now = now
	}
	switch it.Kind {
	case stream.KindTuple:
		t := it.Tuple
		key := t.Values[j.attrs[port]]
		for _, m := range j.tables[1-port][key] {
			var res *stream.Tuple
			if port == 0 {
				res = t.Join(m)
			} else {
				res = m.Join(t)
			}
			if err := j.out.Emit(stream.TupleItem(res)); err != nil {
				return err
			}
		}
		j.tables[port][key] = append(j.tables[port][key], t)
		j.sizes[port]++
		return nil
	case stream.KindPunct:
		return nil
	case stream.KindEOS:
		if j.eos[port] {
			return fmt.Errorf("shj: duplicate EOS on port %d", port)
		}
		j.eos[port] = true
		return nil
	default:
		return fmt.Errorf("shj: unknown item kind %v", it.Kind)
	}
}

// OnIdle implements op.Operator; SHJ has no background work.
func (j *SHJ) OnIdle(stream.Time) (bool, error) { return false, nil }

// Finish implements op.Operator.
func (j *SHJ) Finish(now stream.Time) error {
	if j.finished {
		return fmt.Errorf("shj: double Finish")
	}
	if !j.eos[0] || !j.eos[1] {
		return fmt.Errorf("shj: Finish before EOS on both ports")
	}
	if now > j.now {
		j.now = now
	}
	j.finished = true
	return j.out.Emit(stream.EOSItem(j.now))
}
